// Package repro is a production-quality Go reproduction of Wenfei Fan,
// "Dependencies Revisited for Improving Data Quality" (PODS 2008): the
// complete framework of conditional functional dependencies (CFDs),
// conditional inclusion dependencies (CINDs), extended CFDs, matching
// dependencies with relative candidate keys, their static analyses
// (consistency, implication, finite axiomatization, view propagation),
// and the three dependency-based approaches to inconsistent data —
// repairing, consistent query answering, and condensed representations of
// repairs — together with every substrate they need (in-memory relational
// engine, SPCU algebra, similarity operators, object identification,
// dependency discovery, synthetic dirty-data generators, and a parallel
// index-sharing violation-detection engine in internal/detect).
//
// See DESIGN.md for the system inventory and the per-experiment index,
// EXPERIMENTS.md for paper-vs-measured results, and the examples/
// directory for runnable walk-throughs. The root-level benchmarks in
// bench_test.go regenerate the scaling behaviour behind every table and
// figure of the paper; cmd/dqbench checks the qualitative claims.
package repro
