package repro_test

// Benchmarks for the parallel scatter-gather sync and the append-only
// snapshot fast path (DESIGN.md "Parallel scatter-gather",
// EXPERIMENTS.md E29):
//
//	BenchmarkShardSync/n=100k/shards=8/batch=B/workers=W
//
// One iteration applies a batch of B insert-only ops through a
// ShardedDBMonitor over an n-tuple customer base monitored by the
// constant-pattern halves of ϕ2, then syncs. Insert-only batches are
// the shape the append fast path serves: each shard's snapshot
// catch-up is an O(|Δ-shard|) tail append (shared columns, claim-based
// in-place extension, probe-table absorption) instead of an
// O(n/S) column splice, so per-batch cost should stay flat as n grows
// — that flatness across the n tiers is the O(|Δ|) claim under test.
// The workers axis pins the scatter parallelism: workers=1 runs the
// per-shard scan/apply/touch phases sequentially (the pre-change
// behavior), workers=max fans them across the engine pool. On a
// multi-core box the ratio is the scatter speedup; on the 1-CPU CI box
// the two lanes bound the coordination overhead instead. The 1M tier
// only runs without -short:
//
//	go test -run '^$' -bench ShardSync -benchmem .
import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/cfd"
	"repro/internal/detect"
	"repro/internal/gen"
	"repro/internal/relation"
)

// syncBenchInserts pregenerates pattern-free customer rows ((99, 555):
// no ϕ2 pattern matches, so the violation set stays empty and the
// measurement isolates sync work, not diff publication).
func syncBenchInserts(count int, seed int64) []detect.DBOp {
	pool := shardBenchOps(count, 1, count*2, seed)
	ops := make([]detect.DBOp, 0, count)
	for _, op := range pool {
		if op.Op.Kind == detect.OpInsert {
			ops = append(ops, op)
		}
		if len(ops) == count {
			break
		}
	}
	return ops
}

func BenchmarkShardSync(b *testing.B) {
	sizes := []struct {
		n    int
		name string
	}{{100_000, "100k"}}
	if !testing.Short() {
		sizes = append(sizes, struct {
			n    int
			name string
		}{1_000_000, "1M"})
	}
	workerLanes := []struct {
		w    int
		name string
	}{{1, "1"}, {runtime.GOMAXPROCS(0), "max"}}
	for _, size := range sizes {
		pool := syncBenchInserts(1<<15, 23)
		for _, batch := range []int{64, 1024} {
			for _, lane := range workerLanes {
				name := fmt.Sprintf("n=%s/shards=8/batch=%d/workers=%s", size.name, batch, lane.name)
				b.Run(name, func(b *testing.B) {
					in := gen.Customers(gen.CustomerConfig{N: size.n, Seed: 7, ErrorRate: 0})
					db := relation.NewDatabase()
					db.Add(in)
					s := in.Schema()
					phi := cfd.MustNew(s, []string{"CC", "AC", "phn"}, []string{"city"},
						cfd.Row([]cfd.Cell{cfd.Const(relation.Int(44)), cfd.Const(relation.Int(131)), cfd.Any()},
							[]cfd.Cell{cfd.Const(relation.Str("EDI"))}),
						cfd.Row([]cfd.Cell{cfd.Const(relation.Int(1)), cfd.Const(relation.Int(908)), cfd.Any()},
							[]cfd.Cell{cfd.Const(relation.Str("MH"))}))
					cs := detect.WrapCFDs([]*cfd.CFD{phi})
					p := relation.NewPartitioner(8)
					p.SetKey("customer", []int{2}) // phn: in the LHS, no migrations
					sdb, err := relation.Partition(db, p)
					if err != nil {
						b.Fatal(err)
					}
					m, err := detect.NewShardedDBMonitor(detect.New(lane.w), sdb, cs)
					if err != nil {
						b.Fatal(err)
					}
					b.ReportAllocs()
					b.ResetTimer()
					at := 0
					for i := 0; i < b.N; i++ {
						ops := make([]detect.DBOp, batch)
						for j := range ops {
							ops[j] = pool[at]
							at = (at + 1) % len(pool)
						}
						if _, _, err := m.Apply(ops); err != nil {
							b.Fatal(err)
						}
					}
					b.StopTimer()
					b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "ops/sec")
				})
			}
		}
	}
}
