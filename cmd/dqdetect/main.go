// Command dqdetect loads CSV relations and a CFD rule file and reports
// every violation — the Section 2 use of conditional dependencies:
// "catch inconsistencies and errors that emerge as violations of the
// dependencies".
//
// Usage:
//
//	dqdetect -data customer=customer.csv -rules rules.cfd [-max 20] [-workers 8]
//
// Detection runs on the internal/detect engine: each relation is frozen
// once into a columnar snapshot, rules over the same relation share LHS
// code indexes, and per-rule work fans out across a worker pool
// (-workers, default one per CPU). -legacy pins the engine to the
// string-keyed index path for comparison runs.
//
// The rule file uses the cfd text format:
//
//	cfd customer: [CC, zip] -> [street]
//	  44, _ || _
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/cfd"
	"repro/internal/detect"
	"repro/internal/relation"
)

// dataFlags collects repeated -data rel=path flags.
type dataFlags map[string]string

func (d dataFlags) String() string { return fmt.Sprint(map[string]string(d)) }

func (d dataFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want rel=path, got %q", v)
	}
	d[name] = path
	return nil
}

func main() {
	data := dataFlags{}
	flag.Var(data, "data", "relation=path.csv (repeatable)")
	rulesPath := flag.String("rules", "", "CFD rule file")
	max := flag.Int("max", 0, "max violations to print (0 = all)")
	workers := flag.Int("workers", 0, "detection worker pool size (0 = one per CPU)")
	legacy := flag.Bool("legacy", false, "use the string-keyed index path instead of columnar snapshots")
	flag.Parse()
	if len(data) == 0 || *rulesPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	instances := make(map[string]*relation.Instance)
	schemas := make(map[string]*relation.Schema)
	for name, path := range data {
		f, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		in, err := relation.ReadCSV(f, name)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		instances[name] = in
		schemas[name] = in.Schema()
		fmt.Printf("loaded %s: %d tuples\n", name, in.Len())
	}

	rf, err := os.Open(*rulesPath)
	if err != nil {
		log.Fatal(err)
	}
	rules, err := cfd.Parse(rf, schemas)
	rf.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d CFDs\n", len(rules))

	if ok, _ := cfd.Consistent(rules); !ok {
		log.Fatal("the rule set is inconsistent: no nonempty instance can satisfy it (fix the rules first)")
	}

	// Batch the rules per relation so the engine can share LHS indexes
	// across them. The stream delivers each CFD's violations as one
	// contiguous run in Σ order, so per-rule reports fall out without a
	// global re-sort.
	engine := &detect.Engine{Workers: *workers, Legacy: *legacy}
	byRel := make(map[string][]*cfd.CFD)
	for _, c := range rules {
		byRel[c.Schema().Name()] = append(byRel[c.Schema().Name()], c)
	}
	perCFD := make(map[*cfd.CFD][]cfd.Violation)
	for name, set := range byRel {
		in, ok := instances[name]
		if !ok {
			continue
		}
		engine.DetectAllStream(in, set, func(v cfd.Violation) {
			perCFD[v.CFD] = append(perCFD[v.CFD], v)
		})
	}
	total := 0
	for _, c := range rules {
		vs := perCFD[c]
		total += len(vs)
		if len(vs) > 0 {
			fmt.Printf("\n%v\n", c)
			for i, v := range vs {
				if *max > 0 && i >= *max {
					fmt.Printf("  ... and %d more\n", len(vs)-i)
					break
				}
				fmt.Printf("  %v\n", v)
			}
		}
	}
	fmt.Printf("\ntotal violations: %d\n", total)
	if total > 0 {
		os.Exit(1)
	}
}
