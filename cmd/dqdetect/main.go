// Command dqdetect loads CSV relations and a CFD rule file and reports
// every violation — the Section 2 use of conditional dependencies:
// "catch inconsistencies and errors that emerge as violations of the
// dependencies".
//
// Usage:
//
//	dqdetect -data customer=customer.csv -rules rules.cfd [-max 20] [-workers 8]
//	dqdetect -data customer=customer.csv -rules rules.cfd -follow updates.log
//
// Detection runs on the internal/detect engine: each relation is frozen
// once into a columnar snapshot, rules over the same relation share LHS
// code indexes, and per-rule work fans out across a worker pool
// (-workers, default one per CPU). -legacy pins the engine to the
// string-keyed index path for comparison runs.
//
// -follow switches from one-shot batch detection to monitoring: after
// the initial report, the update log is replayed batch by batch through
// a stateful detect.Monitor per relation, printing the violations each
// batch gained and cleared — steady-state cost proportional to the
// touched groups, not the instance. The log is line-oriented:
//
//	insert customer 44,131,1234567,Mike,Mayfield,NYC,EH4 8LE
//	update customer 3 city=EDI
//	delete customer 7
//	commit
//
// Comments (#) and blank lines are skipped; "commit" applies the batch
// accumulated so far (EOF commits the tail implicitly); values parse
// like the relation's CSV cells.
//
// The rule file uses the cfd text format:
//
//	cfd customer: [CC, zip] -> [street]
//	  44, _ || _
package main

import (
	"bufio"
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/cfd"
	"repro/internal/detect"
	"repro/internal/relation"
)

// dataFlags collects repeated -data rel=path flags.
type dataFlags map[string]string

func (d dataFlags) String() string { return fmt.Sprint(map[string]string(d)) }

func (d dataFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want rel=path, got %q", v)
	}
	d[name] = path
	return nil
}

func main() {
	data := dataFlags{}
	flag.Var(data, "data", "relation=path.csv (repeatable)")
	rulesPath := flag.String("rules", "", "CFD rule file")
	max := flag.Int("max", 0, "max violations to print (0 = all)")
	workers := flag.Int("workers", 0, "detection worker pool size (0 = one per CPU)")
	legacy := flag.Bool("legacy", false, "use the string-keyed index path instead of columnar snapshots")
	follow := flag.String("follow", "", "replay an update log through a stateful monitor after the initial report")
	flag.Parse()
	if len(data) == 0 || *rulesPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	instances := make(map[string]*relation.Instance)
	schemas := make(map[string]*relation.Schema)
	for name, path := range data {
		f, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		in, err := relation.ReadCSV(f, name)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		instances[name] = in
		schemas[name] = in.Schema()
		fmt.Printf("loaded %s: %d tuples\n", name, in.Len())
	}

	rf, err := os.Open(*rulesPath)
	if err != nil {
		log.Fatal(err)
	}
	rules, err := cfd.Parse(rf, schemas)
	rf.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d CFDs\n", len(rules))

	if ok, _ := cfd.Consistent(rules); !ok {
		log.Fatal("the rule set is inconsistent: no nonempty instance can satisfy it (fix the rules first)")
	}

	// Batch the rules per relation so the engine can share LHS indexes
	// across them. The stream delivers each CFD's violations as one
	// contiguous run in Σ order, so per-rule reports fall out without a
	// global re-sort. In -follow mode the monitors are seeded first and
	// the initial report reads their violation sets, so the full
	// detection is paid exactly once.
	engine := &detect.Engine{Workers: *workers, Legacy: *legacy}
	byRel := make(map[string][]*cfd.CFD)
	for _, c := range rules {
		byRel[c.Schema().Name()] = append(byRel[c.Schema().Name()], c)
	}
	perCFD := make(map[*cfd.CFD][]cfd.Violation)
	var monitors map[string]*detect.Monitor
	if *follow != "" {
		// One monitor per loaded relation; relations without rules get an
		// empty-Σ monitor so their ops still apply through the same path.
		monitors = make(map[string]*detect.Monitor)
		for name, in := range instances {
			monitors[name] = detect.NewMonitor(engine, in, byRel[name])
			for _, v := range monitors[name].Violations() {
				perCFD[v.CFD] = append(perCFD[v.CFD], v)
			}
		}
		// Match the batch-mode report: each CFD's run in per-CFD detect
		// order (Row, T1, T2, Attr), as DetectAllStream delivers it.
		for _, vs := range perCFD {
			sort.Slice(vs, func(i, j int) bool {
				if vs[i].Row != vs[j].Row {
					return vs[i].Row < vs[j].Row
				}
				if vs[i].T1 != vs[j].T1 {
					return vs[i].T1 < vs[j].T1
				}
				if vs[i].T2 != vs[j].T2 {
					return vs[i].T2 < vs[j].T2
				}
				return vs[i].Attr < vs[j].Attr
			})
		}
	} else {
		for name, set := range byRel {
			in, ok := instances[name]
			if !ok {
				continue
			}
			engine.DetectAllStream(in, set, func(v cfd.Violation) {
				perCFD[v.CFD] = append(perCFD[v.CFD], v)
			})
		}
	}
	total := 0
	for _, c := range rules {
		vs := perCFD[c]
		total += len(vs)
		if len(vs) > 0 {
			fmt.Printf("\n%v\n", c)
			for i, v := range vs {
				if *max > 0 && i >= *max {
					fmt.Printf("  ... and %d more\n", len(vs)-i)
					break
				}
				fmt.Printf("  %v\n", v)
			}
		}
	}
	fmt.Printf("\ntotal violations: %d\n", total)

	if *follow != "" {
		outstanding, err := followLog(*follow, monitors, instances, *max)
		if err != nil {
			log.Fatal(err)
		}
		if outstanding > 0 {
			os.Exit(1)
		}
		return
	}
	if total > 0 {
		os.Exit(1)
	}
}

// followLog replays the update log through the pre-seeded per-relation
// monitors, printing each batch's gained/cleared diff, and returns the
// number of violations outstanding at EOF.
func followLog(path string, monitors map[string]*detect.Monitor, instances map[string]*relation.Instance, max int) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()

	batches := make(map[string][]detect.Op) // relation -> pending ops
	batchNo := 0
	commit := func() error {
		if len(batches) == 0 {
			return nil
		}
		batchNo++
		// Deterministic per-relation order within a batch.
		names := make([]string, 0, len(batches))
		for name := range batches {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			ops := batches[name]
			m := monitors[name]
			gained, cleared, err := m.Apply(ops)
			if err != nil {
				return fmt.Errorf("batch %d: %v", batchNo, err)
			}
			fmt.Printf("batch %d: %s: %d op(s), +%d violation(s), -%d cleared, %d outstanding\n",
				batchNo, name, len(ops), len(gained), len(cleared), m.Len())
			printSome := func(label string, vs []cfd.Violation) {
				for i, v := range vs {
					if max > 0 && i >= max {
						fmt.Printf("  %s ... and %d more\n", label, len(vs)-i)
						break
					}
					fmt.Printf("  %s %v\n", label, v)
				}
			}
			printSome("+", gained)
			printSome("-", cleared)
		}
		batches = make(map[string][]detect.Op)
		return nil
	}

	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if text == "commit" {
			if err := commit(); err != nil {
				return 0, err
			}
			continue
		}
		op, rel, err := parseOp(text, instances)
		if err != nil {
			return 0, fmt.Errorf("%s:%d: %v", path, line, err)
		}
		batches[rel] = append(batches[rel], op)
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	if err := commit(); err != nil { // implicit commit of the tail
		return 0, err
	}
	outstanding := 0
	names := make([]string, 0, len(monitors))
	for name := range monitors {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m := monitors[name]
		if m.Len() > 0 {
			fmt.Printf("%s: %d violation(s) outstanding\n", name, m.Len())
		}
		outstanding += m.Len()
	}
	fmt.Printf("replayed %d batch(es); %d violation(s) outstanding\n", batchNo, outstanding)
	return outstanding, nil
}

// parseOp parses one update-log line (insert/update/delete) against the
// loaded relations' schemas.
func parseOp(text string, instances map[string]*relation.Instance) (detect.Op, string, error) {
	verb, rest, _ := strings.Cut(text, " ")
	rel, rest, _ := strings.Cut(strings.TrimSpace(rest), " ")
	in, ok := instances[rel]
	if !ok {
		return detect.Op{}, "", fmt.Errorf("unknown relation %q", rel)
	}
	s := in.Schema()
	rest = strings.TrimSpace(rest)
	switch verb {
	case "insert":
		// The remainder is one CSV record in schema order.
		cr := csv.NewReader(strings.NewReader(rest))
		rec, err := cr.Read()
		if err != nil {
			return detect.Op{}, "", fmt.Errorf("insert %s: %v", rel, err)
		}
		if len(rec) != s.Arity() {
			return detect.Op{}, "", fmt.Errorf("insert %s: %d fields, want %d", rel, len(rec), s.Arity())
		}
		t := make(relation.Tuple, len(rec))
		for i, cell := range rec {
			v, err := relation.ParseValue(s.Attr(i).Domain.Kind(), cell)
			if err != nil {
				return detect.Op{}, "", fmt.Errorf("insert %s column %s: %v", rel, s.Attr(i).Name, err)
			}
			t[i] = v
		}
		return detect.Insert(t), rel, nil
	case "delete":
		id, err := strconv.Atoi(rest)
		if err != nil {
			return detect.Op{}, "", fmt.Errorf("delete %s: bad TID %q", rel, rest)
		}
		return detect.Delete(relation.TID(id)), rel, nil
	case "update":
		idText, assign, ok := strings.Cut(rest, " ")
		if !ok {
			return detect.Op{}, "", fmt.Errorf("update %s: want \"update %s <tid> <attr>=<value>\"", rel, rel)
		}
		id, err := strconv.Atoi(idText)
		if err != nil {
			return detect.Op{}, "", fmt.Errorf("update %s: bad TID %q", rel, idText)
		}
		attr, valText, ok := strings.Cut(assign, "=")
		if !ok {
			return detect.Op{}, "", fmt.Errorf("update %s: want <attr>=<value>, got %q", rel, assign)
		}
		pos, ok := s.Lookup(strings.TrimSpace(attr))
		if !ok {
			return detect.Op{}, "", fmt.Errorf("update %s: no attribute %q", rel, attr)
		}
		v, err := relation.ParseValue(s.Attr(pos).Domain.Kind(), valText)
		if err != nil {
			return detect.Op{}, "", fmt.Errorf("update %s.%s: %v", rel, attr, err)
		}
		return detect.Update(relation.TID(id), pos, v), rel, nil
	default:
		return detect.Op{}, "", fmt.Errorf("unknown op %q (want insert/update/delete/commit)", verb)
	}
}
