// Command dqdetect loads CSV relations and rule files — CFDs, CINDs and
// eCFDs — and reports every violation: the Section 2 use of conditional
// dependencies, "catch inconsistencies and errors that emerge as
// violations of the dependencies", over the whole dependency family.
//
// Usage:
//
//	dqdetect -data customer=customer.csv -cfds rules.cfd [-max 20] [-workers 8]
//	dqdetect -data order=order.csv -data book=book.csv -cinds rules.cind -ecfds rules.ecfd
//	dqdetect -data customer=customer.csv -cfds rules.cfd -follow updates.log
//
// Detection runs on the internal/detect engine: the whole database is
// frozen once into a columnar DBSnapshot, rules of every class share
// group indexes by (relation, position set), and per-rule work fans out
// across a worker pool (-workers, default one per CPU). -legacy pins
// the engine to the string-keyed index path for comparison runs.
// -rules is an alias of -cfds, kept for compatibility.
//
// -follow switches from one-shot batch detection to monitoring: after
// the initial report, the update log is replayed batch by batch through
// one stateful detect.DBMonitor over the whole database, printing the
// violations each batch gained and cleared — steady-state cost
// proportional to the touched groups, not the instances. A batch may
// mix relations (a CIND's source and target in one commit); the log is
// line-oriented:
//
//	insert customer 44,131,1234567,Mike,Mayfield,NYC,EH4 8LE
//	update customer 3 city=EDI
//	delete customer 7
//	commit
//
// Comments (#) and blank lines are skipped; "commit" applies the batch
// accumulated so far (EOF commits the tail implicitly); values parse
// like the relation's CSV cells.
//
// -shards N hash-partitions the database across N shards and runs the
// scatter-gather engine paths — DetectBatchSharded one-shot, a
// ShardedDBMonitor under -follow — producing byte-identical reports.
// The partition key per relation is derived from the rules (the
// attributes every CFD/eCFD LHS on that relation shares) or pinned
// with repeatable -shard-key rel=attr1,attr2 flags.
//
// -checkpoint DIR loads the database from a dqserve checkpoint
// directory instead of -data CSVs: the manifest supplies the schemas,
// the columnar files the tuples, so offline audits run over exactly
// the state the service checkpointed.
//
// Rule files use the class text formats:
//
//	cfd customer: [CC, zip] -> [street]
//	  44, _ || _
//
//	cind order[title, price; type] <= book[title, price; format]
//	  book ||
//
//	ecfd customer: [city] -> [AC]
//	  notin{NYC,LI} || _
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strings"

	"repro/internal/cfd"
	"repro/internal/cind"
	"repro/internal/detect"
	"repro/internal/ecfd"
	"repro/internal/oplog"
	"repro/internal/relation"
)

// dataFlags collects repeated -data rel=path flags.
type dataFlags map[string]string

func (d dataFlags) String() string { return fmt.Sprint(map[string]string(d)) }

func (d dataFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want rel=path, got %q", v)
	}
	d[name] = path
	return nil
}

// shardKeyFlags collects repeated -shard-key rel=attr1,attr2 flags.
type shardKeyFlags map[string][]string

func (s shardKeyFlags) String() string { return fmt.Sprint(map[string][]string(s)) }

func (s shardKeyFlags) Set(v string) error {
	name, attrs, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want rel=attr1,attr2, got %q", v)
	}
	s[name] = strings.Split(attrs, ",")
	return nil
}

// resolveShardKeys maps -shard-key attribute names to schema positions.
func resolveShardKeys(keys shardKeyFlags, schemas map[string]*relation.Schema) map[string][]int {
	if len(keys) == 0 {
		return nil
	}
	out := make(map[string][]int, len(keys))
	for rel, attrs := range keys {
		sch, ok := schemas[rel]
		if !ok {
			log.Fatalf("-shard-key %s: no such relation", rel)
		}
		pos := make([]int, 0, len(attrs))
		for _, a := range attrs {
			p, ok := sch.Lookup(strings.TrimSpace(a))
			if !ok {
				log.Fatalf("-shard-key %s: no attribute %q", rel, a)
			}
			pos = append(pos, p)
		}
		out[rel] = pos
	}
	return out
}

func main() {
	data := dataFlags{}
	flag.Var(data, "data", "relation=path.csv (repeatable)")
	checkpoint := flag.String("checkpoint", "", "load the database from a dqserve checkpoint directory instead of -data CSVs")
	cfdsPath := flag.String("cfds", "", "CFD rule file")
	rulesPath := flag.String("rules", "", "alias of -cfds")
	cindsPath := flag.String("cinds", "", "CIND rule file")
	ecfdsPath := flag.String("ecfds", "", "eCFD rule file")
	max := flag.Int("max", 0, "max violations to print per rule (0 = all)")
	workers := flag.Int("workers", 0, "detection worker pool size (0 = one per CPU)")
	legacy := flag.Bool("legacy", false, "use the string-keyed index path instead of columnar snapshots")
	follow := flag.String("follow", "", "replay an update log through a stateful monitor after the initial report")
	shards := flag.Int("shards", 1, "hash-partition the database across N shards (scatter-gather detection)")
	shardKeys := shardKeyFlags{}
	flag.Var(shardKeys, "shard-key", "relation=attr1,attr2 partition key (repeatable; default: derived from the rules)")
	flag.Parse()
	if *cfdsPath == "" {
		*cfdsPath = *rulesPath
	}
	if (len(data) == 0 && *checkpoint == "") || (*cfdsPath == "" && *cindsPath == "" && *ecfdsPath == "") {
		flag.Usage()
		os.Exit(2)
	}
	if len(data) > 0 && *checkpoint != "" {
		log.Fatal("-data and -checkpoint are mutually exclusive: the checkpoint carries the full database")
	}

	db := relation.NewDatabase()
	schemas := make(map[string]*relation.Schema)
	if *checkpoint != "" {
		// Schemas come out of the checkpoint manifest; rules are then
		// parsed against the recovered schemas exactly as against CSVs.
		loaded, info, err := relation.LoadCheckpoint(*checkpoint, nil)
		if err != nil {
			log.Fatal(err)
		}
		db = loaded
		for _, name := range db.Names() {
			in := db.MustInstance(name)
			schemas[name] = in.Schema()
			fmt.Printf("loaded %s: %d tuples\n", name, in.Len())
		}
		fmt.Printf("checkpoint covers commit seq %d\n", info.Seq)
	}
	for name, path := range data {
		f, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		in, err := relation.ReadCSV(f, name)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		db.Add(in)
		schemas[name] = in.Schema()
		fmt.Printf("loaded %s: %d tuples\n", name, in.Len())
	}

	// Assemble the mixed batch Σ: CFDs, then CINDs, then eCFDs, each in
	// file order.
	var rules []detect.Constraint
	if *cfdsPath != "" {
		cfds := parseRules(*cfdsPath, schemas, cfd.Parse)
		fmt.Printf("loaded %d CFDs\n", len(cfds))
		if ok, _ := cfd.Consistent(cfds); !ok {
			log.Fatal("the CFD set is inconsistent: no nonempty instance can satisfy it (fix the rules first)")
		}
		rules = append(rules, detect.WrapCFDs(cfds)...)
	}
	if *cindsPath != "" {
		cinds := parseRules(*cindsPath, schemas, cind.Parse)
		fmt.Printf("loaded %d CINDs\n", len(cinds))
		rules = append(rules, detect.WrapCINDs(cinds)...)
	}
	if *ecfdsPath != "" {
		ecfds := parseRules(*ecfdsPath, schemas, ecfd.Parse)
		fmt.Printf("loaded %d eCFDs\n", len(ecfds))
		rules = append(rules, detect.WrapECFDs(ecfds)...)
	}

	// One detection pass for the whole mixed batch: every rule reads the
	// same DBSnapshot, rules sharing a (relation, position set) share one
	// group index, and the stream delivers each rule's violations as one
	// contiguous run in Σ order, so per-rule reports fall out without a
	// global re-sort. In -follow mode the monitor is seeded first and the
	// initial report reads its violation set, so the full detection is
	// paid exactly once.
	engine := &detect.Engine{Workers: *workers, Legacy: *legacy}

	// -shards hash-partitions the database up front; detection and the
	// -follow monitor then run the scatter-gather paths, byte-identical
	// to the single-partition engine.
	var sdb *relation.ShardedDB
	if *shards > 1 {
		keys := resolveShardKeys(shardKeys, schemas)
		if keys == nil {
			derived, err := detect.DeriveShardKeys(rules)
			if err != nil {
				log.Fatal(err)
			}
			keys = derived
		}
		p := relation.NewPartitioner(*shards)
		for rel, pos := range keys {
			p.SetKey(rel, pos)
		}
		var err error
		sdb, err = relation.Partition(db, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("partitioned into %d shards\n", *shards)
	} else if *shards < 1 {
		log.Fatal("-shards must be at least 1")
	}

	perDep := make(map[any][]detect.Violation)
	var monitor batchMonitor
	if *follow != "" {
		if sdb != nil {
			m, err := detect.NewShardedDBMonitor(engine, sdb, rules)
			if err != nil {
				log.Fatal(err)
			}
			monitor = m
		} else {
			monitor = detect.NewDBMonitor(engine, db, rules)
		}
		for _, v := range monitor.Violations() {
			perDep[depOf(v)] = append(perDep[depOf(v)], v)
		}
		// Match the batch-mode report: each rule's run in per-rule detect
		// order, as the stream delivers it.
		for _, vs := range perDep {
			sortDetectOrder(vs)
		}
	} else if sdb != nil {
		vs, err := engine.DetectBatchSharded(sdb, rules)
		if err != nil {
			log.Fatal(err)
		}
		for _, v := range vs {
			perDep[depOf(v)] = append(perDep[depOf(v)], v)
		}
		for _, vs := range perDep {
			sortDetectOrder(vs)
		}
	} else {
		engine.DetectBatchStream(db, rules, func(v detect.Violation) {
			perDep[depOf(v)] = append(perDep[depOf(v)], v)
		})
	}
	total := 0
	for _, c := range rules {
		vs := perDep[c.Dep()]
		total += len(vs)
		if len(vs) > 0 {
			fmt.Printf("\n%v\n", c.Dep())
			for i, v := range vs {
				if *max > 0 && i >= *max {
					fmt.Printf("  ... and %d more\n", len(vs)-i)
					break
				}
				fmt.Printf("  %v\n", v)
			}
		}
	}
	fmt.Printf("\ntotal violations: %d\n", total)

	if *follow != "" {
		outstanding, err := followLog(*follow, monitor, schemas, *max)
		if err != nil {
			log.Fatal(err)
		}
		if outstanding > 0 {
			os.Exit(1)
		}
		return
	}
	if total > 0 {
		os.Exit(1)
	}
}

// batchMonitor is the -follow surface both monitor flavours share:
// detect.DBMonitor over one database, detect.ShardedDBMonitor over a
// hash-partitioned one.
type batchMonitor interface {
	Apply(batch []detect.DBOp) (gained, cleared []detect.Violation, err error)
	Violations() []detect.Violation
	Len() int
}

// parseRules opens and parses one rule file with the class parser.
func parseRules[T any](path string, schemas map[string]*relation.Schema,
	parse func(r io.Reader, schemas map[string]*relation.Schema) ([]T, error)) []T {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	rules, err := parse(f, schemas)
	if err != nil {
		log.Fatal(err)
	}
	return rules
}

// depOf returns the dependency a violation is attributed to.
func depOf(v detect.Violation) any {
	switch v := v.(type) {
	case cfd.Violation:
		return v.CFD
	case cind.Violation:
		return v.CIND
	case ecfd.Violation:
		return v.ECFD
	}
	return nil
}

// sortDetectOrder sorts one rule's violations into its class's per-rule
// detect order — (Row, T1, T2, Attr), with a CIND's TID standing in for
// T1 — the order the engine stream delivers contiguous runs in.
func sortDetectOrder(vs []detect.Violation) {
	key := func(v detect.Violation) (int, relation.TID, relation.TID, int) {
		switch v := v.(type) {
		case cfd.Violation:
			return v.Row, v.T1, v.T2, v.Attr
		case cind.Violation:
			return v.Row, v.TID, 0, 0
		case ecfd.Violation:
			return v.Row, v.T1, v.T2, v.Attr
		}
		return 0, 0, 0, 0
	}
	sort.Slice(vs, func(i, j int) bool {
		r1, a1, b1, p1 := key(vs[i])
		r2, a2, b2, p2 := key(vs[j])
		if r1 != r2 {
			return r1 < r2
		}
		if a1 != a2 {
			return a1 < a2
		}
		if b1 != b2 {
			return b1 < b2
		}
		return p1 < p2
	})
}

// followLog replays the update log through the pre-seeded database
// monitor — each commit is one multi-relation batch, decoded by
// internal/oplog (the wire format cmd/dqserve's POST /batch shares) —
// printing each batch's gained/cleared diff, and returns the number of
// violations outstanding at EOF.
func followLog(path string, m batchMonitor, schemas map[string]*relation.Schema, max int) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()

	rd := oplog.NewReader(f, schemas)
	batchNo := 0
	for {
		batch, err := rd.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			var se *oplog.SyntaxError
			if errors.As(err, &se) {
				return 0, fmt.Errorf("%s:%d: %v", path, se.Line, se.Err)
			}
			return 0, err
		}
		batchNo++
		gained, cleared, err := m.Apply(batch)
		if err != nil {
			return 0, fmt.Errorf("batch %d: %v", batchNo, err)
		}
		rels := make(map[string]bool)
		for _, op := range batch {
			rels[op.Rel] = true
		}
		names := make([]string, 0, len(rels))
		for name := range rels {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Printf("batch %d: %s: %d op(s), +%d violation(s), -%d cleared, %d outstanding\n",
			batchNo, strings.Join(names, ","), len(batch), len(gained), len(cleared), m.Len())
		printSome := func(label string, vs []detect.Violation) {
			for i, v := range vs {
				if max > 0 && i >= max {
					fmt.Printf("  %s ... and %d more\n", label, len(vs)-i)
					break
				}
				fmt.Printf("  %s %v\n", label, v)
			}
		}
		printSome("+", gained)
		printSome("-", cleared)
	}
	fmt.Printf("replayed %d batch(es); %d violation(s) outstanding\n", batchNo, m.Len())
	return m.Len(), nil
}
