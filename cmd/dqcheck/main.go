// Command dqcheck runs the Section 4 static analyses on a CFD rule file:
// consistency ("are the rules themselves dirty?"), redundancy (minimal
// cover), and pairwise implication — the reasoning the paper argues must
// precede any validation against data.
//
// Usage:
//
//	dqcheck -data customer=customer.csv -rules rules.cfd [-validate]
//
// The -data CSVs are read for their schemas; with -validate the loaded
// instances are additionally checked against the rules on the parallel
// detection engine, streaming the violations into a per-relation count
// (full scan either way: a clean relation cannot be confirmed cheaper).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"repro/internal/cfd"
	"repro/internal/detect"
	"repro/internal/relation"
)

type dataFlags map[string]string

func (d dataFlags) String() string { return fmt.Sprint(map[string]string(d)) }

func (d dataFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want rel=path, got %q", v)
	}
	d[name] = path
	return nil
}

func main() {
	data := dataFlags{}
	flag.Var(data, "data", "relation=path.csv (schema source, repeatable)")
	rulesPath := flag.String("rules", "", "CFD rule file")
	validate := flag.Bool("validate", false, "also check the -data instances against the rules")
	workers := flag.Int("workers", 0, "validation worker pool size (0 = one per CPU)")
	flag.Parse()
	if len(data) == 0 || *rulesPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	schemas := make(map[string]*relation.Schema)
	instances := make(map[string]*relation.Instance)
	for name, path := range data {
		f, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		in, err := relation.ReadCSV(f, name)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		schemas[name] = in.Schema()
		instances[name] = in
	}

	rf, err := os.Open(*rulesPath)
	if err != nil {
		log.Fatal(err)
	}
	rules, err := cfd.Parse(rf, schemas)
	rf.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d CFDs (%d normal-form rows)\n", len(rules), len(cfd.NormalizeSet(rules)))

	fmt.Println("\n=== Consistency (Theorem 4.1) ===")
	ok, witness := cfd.Consistent(rules)
	if !ok {
		fmt.Println("INCONSISTENT: no nonempty instance satisfies the rules")
		os.Exit(1)
	}
	fmt.Printf("consistent; witness tuple: %v\n", witness)

	fmt.Println("\n=== Minimal cover (implication, Theorem 4.2) ===")
	cover := cfd.MinimalCover(rules)
	fmt.Printf("minimal cover: %d rows (removed %d redundant)\n",
		len(cover), len(cfd.NormalizeSet(rules))-len(cover))

	fmt.Println("\n=== Pairwise implication matrix ===")
	for i, a := range rules {
		rest := make([]*cfd.CFD, 0, len(rules)-1)
		rest = append(rest, rules[:i]...)
		rest = append(rest, rules[i+1:]...)
		if len(rest) == 0 {
			continue
		}
		if cfd.Implies(rest, a) {
			fmt.Printf("rule %d is implied by the others: %v\n", i+1, a)
		}
	}
	if *validate {
		fmt.Println("\n=== Validation (D ⊨ Σ) ===")
		engine := detect.New(*workers)
		byRel := make(map[string][]*cfd.CFD)
		for _, c := range rules {
			byRel[c.Schema().Name()] = append(byRel[c.Schema().Name()], c)
		}
		names := make([]string, 0, len(instances))
		for name := range instances {
			names = append(names, name)
		}
		sort.Strings(names)
		dirty := false
		for _, name := range names {
			in, set := instances[name], byRel[name]
			if len(set) == 0 {
				continue
			}
			// One streamed pass serves both outcomes without buffering
			// or sorting violations that are only ever counted.
			count := 0
			engine.DetectAllStream(in, set, func(cfd.Violation) { count++ })
			if count == 0 {
				fmt.Printf("%s: satisfies all %d rules\n", name, len(set))
				continue
			}
			dirty = true
			fmt.Printf("%s: VIOLATED (%d violations; run dqdetect for the full report)\n", name, count)
		}
		if dirty {
			os.Exit(1)
		}
	}
	fmt.Println("done")
}
