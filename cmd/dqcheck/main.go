// Command dqcheck runs the Section 4 static analyses on a CFD rule file:
// consistency ("are the rules themselves dirty?"), redundancy (minimal
// cover), and pairwise implication — the reasoning the paper argues must
// precede any validation against data.
//
// Usage:
//
//	dqcheck -data customer=customer.csv -rules rules.cfd
//
// The -data CSVs are only read for their schemas.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/cfd"
	"repro/internal/relation"
)

type dataFlags map[string]string

func (d dataFlags) String() string { return fmt.Sprint(map[string]string(d)) }

func (d dataFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want rel=path, got %q", v)
	}
	d[name] = path
	return nil
}

func main() {
	data := dataFlags{}
	flag.Var(data, "data", "relation=path.csv (schema source, repeatable)")
	rulesPath := flag.String("rules", "", "CFD rule file")
	flag.Parse()
	if len(data) == 0 || *rulesPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	schemas := make(map[string]*relation.Schema)
	for name, path := range data {
		f, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		in, err := relation.ReadCSV(f, name)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		schemas[name] = in.Schema()
	}

	rf, err := os.Open(*rulesPath)
	if err != nil {
		log.Fatal(err)
	}
	rules, err := cfd.Parse(rf, schemas)
	rf.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d CFDs (%d normal-form rows)\n", len(rules), len(cfd.NormalizeSet(rules)))

	fmt.Println("\n=== Consistency (Theorem 4.1) ===")
	ok, witness := cfd.Consistent(rules)
	if !ok {
		fmt.Println("INCONSISTENT: no nonempty instance satisfies the rules")
		os.Exit(1)
	}
	fmt.Printf("consistent; witness tuple: %v\n", witness)

	fmt.Println("\n=== Minimal cover (implication, Theorem 4.2) ===")
	cover := cfd.MinimalCover(rules)
	fmt.Printf("minimal cover: %d rows (removed %d redundant)\n",
		len(cover), len(cfd.NormalizeSet(rules))-len(cover))

	fmt.Println("\n=== Pairwise implication matrix ===")
	for i, a := range rules {
		rest := make([]*cfd.CFD, 0, len(rules)-1)
		rest = append(rest, rules[:i]...)
		rest = append(rest, rules[i+1:]...)
		if len(rest) == 0 {
			continue
		}
		if cfd.Implies(rest, a) {
			fmt.Printf("rule %d is implied by the others: %v\n", i+1, a)
		}
	}
	fmt.Println("done")
}
