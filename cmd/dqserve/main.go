// Command dqserve runs violation detection as a long-lived monitoring
// service: it loads CSV relations and rule files — CFDs, CINDs and
// eCFDs — like dqdetect, pays one full detection to seed a
// detect.DBMonitor, and then serves HTTP:
//
//	POST /batch       ingest mutations in the dqdetect -follow op-log
//	                  wire format (internal/oplog); each commit marker
//	                  closes one atomic batch
//	GET  /violations  the full current violation list (JSON; one line
//	                  per violation with ?format=text)
//	GET  /stream      Server-Sent Events: per-commit gained/cleared
//	                  deltas ("hello", then "delta" events; a slow
//	                  consumer is dropped with a terminal "resync")
//	GET  /stats       tuple/violation counts, per-class and
//	                  per-constraint breakdowns, ingest counters
//	POST /check       evaluate posted rule texts against the current
//	                  snapshot ({"cfds": "...", "cinds": "...",
//	                  "ecfds": "..."})
//	GET  /healthz     liveness (durable runs add checkpoint lag and
//	                  WAL size)
//	GET  /metrics     Prometheus text exposition: pipeline stage
//	                  latencies, commit/op/violation counters, WAL and
//	                  checkpoint gauges
//	GET  /trends      per-constraint violation time series with
//	                  change-point detections and window rates
//
// Usage:
//
//	dqserve -addr :8080 -data customer=customer.csv -cfds rules.cfd
//	dqserve -data order=o.csv -data book=b.csv -cinds rules.cind
//
// Ingest is single-writer behind a bounded queue (-queue) that
// coalesces concurrent POST /batch commits into larger monitor batches
// (-maxbatch caps the coalesced op count); every read endpoint is
// served off the immutable snapshot published by the last commit, so
// reads never block ingest and ingest never blocks reads. SIGINT or
// SIGTERM stops accepting work, drains the queue and exits.
//
// With -data-dir the service is durable: every commit is appended to a
// write-ahead log and fsynced before its ack (-sync-every widens the
// group-commit window, -sync-interval bounds how long acks are held),
// and a background checkpointer persists snapshots every
// -checkpoint-every commits so restarts replay only the WAL tail. On
// startup dqserve loads the CSVs as the base state, then recovers the
// checkpoint and WAL from -data-dir — after a crash, every
// acknowledged commit is recovered exactly. -submit-timeout bounds how
// long POST /batch waits for queue space before shedding load with
// 503 + Retry-After.
//
// Logs are structured (log/slog) on stderr; -log-format json switches
// to JSON lines for log shippers. -pprof mounts net/http/pprof under
// /debug/pprof/ for CPU/heap profiling of a live instance.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cfd"
	"repro/internal/cind"
	"repro/internal/detect"
	"repro/internal/ecfd"
	"repro/internal/relation"
	"repro/internal/serve"
)

// logger is the process-wide structured logger, configured from
// -log-format before any load work starts.
var logger = slog.New(slog.NewTextHandler(os.Stderr, nil))

// fatalf logs at error level and exits: slog has no Fatal, and dqserve
// treats every startup failure as terminal.
func fatalf(format string, args ...any) {
	logger.Error(fmt.Sprintf(format, args...))
	os.Exit(1)
}

// dataFlags collects repeated -data rel=path flags.
type dataFlags map[string]string

func (d dataFlags) String() string { return fmt.Sprint(map[string]string(d)) }

func (d dataFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want rel=path, got %q", v)
	}
	d[name] = path
	return nil
}

// shardKeyFlags collects repeated -shard-key rel=attr1,attr2 flags.
type shardKeyFlags map[string][]string

func (s shardKeyFlags) String() string { return fmt.Sprint(map[string][]string(s)) }

func (s shardKeyFlags) Set(v string) error {
	name, attrs, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want rel=attr1,attr2, got %q", v)
	}
	s[name] = strings.Split(attrs, ",")
	return nil
}

// resolveShardKeys maps -shard-key attribute names to schema positions.
func resolveShardKeys(keys shardKeyFlags, schemas map[string]*relation.Schema) map[string][]int {
	if len(keys) == 0 {
		return nil
	}
	out := make(map[string][]int, len(keys))
	for rel, attrs := range keys {
		sch, ok := schemas[rel]
		if !ok {
			fatalf("-shard-key %s: no such relation", rel)
		}
		pos := make([]int, 0, len(attrs))
		for _, a := range attrs {
			p, ok := sch.Lookup(strings.TrimSpace(a))
			if !ok {
				fatalf("-shard-key %s: no attribute %q", rel, a)
			}
			pos = append(pos, p)
		}
		out[rel] = pos
	}
	return out
}

func main() {
	data := dataFlags{}
	flag.Var(data, "data", "relation=path.csv (repeatable)")
	cfdsPath := flag.String("cfds", "", "CFD rule file")
	rulesPath := flag.String("rules", "", "alias of -cfds")
	cindsPath := flag.String("cinds", "", "CIND rule file")
	ecfdsPath := flag.String("ecfds", "", "eCFD rule file")
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "detection worker pool size (0 = one per CPU)")
	queueCap := flag.Int("queue", serve.DefaultQueueCap, "bounded ingest queue capacity (pending batches)")
	maxBatch := flag.Int("maxbatch", serve.DefaultMaxBatchOps, "max ops coalesced into one monitor batch")
	subBuf := flag.Int("subbuf", serve.DefaultSubBuf, "per-subscriber delta buffer (commits a consumer may lag)")
	drain := flag.Duration("drain", 10*time.Second, "shutdown budget for draining requests and the ingest queue")
	shards := flag.Int("shards", 1, "hash-partition the database across N shards (per-shard writers, scatter-gather detection)")
	shardKeys := shardKeyFlags{}
	flag.Var(shardKeys, "shard-key", "relation=attr1,attr2 partition key (repeatable; default: derived from the rules)")
	dataDir := flag.String("data-dir", "", "durable data directory: WAL + checkpoints; restart recovers every acknowledged commit")
	syncEvery := flag.Int("sync-every", 1, "WAL group-commit window in commits (1 = fsync every commit before its ack)")
	syncInterval := flag.Duration("sync-interval", 0, "max time an ack is held for group commit when -sync-every > 1 (0 = 5ms default)")
	ckptEvery := flag.Int("checkpoint-every", 0, "commits between checkpoints (0 = default, negative disables checkpointing)")
	submitTimeout := flag.Duration("submit-timeout", 0, "how long POST /batch waits for queue space before 503 (0 = wait indefinitely)")
	maxBody := flag.Int64("max-body", serve.DefaultMaxBatchBytes, "POST /batch body cap in bytes (over the cap = 413)")
	logFormat := flag.String("log-format", "text", "structured log format on stderr: text or json")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof profiling handlers under /debug/pprof/")
	flag.Parse()
	switch *logFormat {
	case "text":
		// the package default
	case "json":
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	default:
		fatalf("-log-format %q: want text or json", *logFormat)
	}
	slog.SetDefault(logger)
	if *cfdsPath == "" {
		*cfdsPath = *rulesPath
	}
	if len(data) == 0 || (*cfdsPath == "" && *cindsPath == "" && *ecfdsPath == "") {
		flag.Usage()
		os.Exit(2)
	}

	db := relation.NewDatabase()
	schemas := make(map[string]*relation.Schema)
	for name, path := range data {
		f, err := os.Open(path)
		if err != nil {
			fatalf("%v", err)
		}
		in, err := relation.ReadCSV(f, name)
		f.Close()
		if err != nil {
			fatalf("%v", err)
		}
		db.Add(in)
		schemas[name] = in.Schema()
		logger.Info("loaded relation", "rel", name, "tuples", in.Len())
	}

	// Assemble the mixed batch Σ: CFDs, then CINDs, then eCFDs, each in
	// file order — the same Σ order dqdetect reports in.
	var rules []detect.Constraint
	if *cfdsPath != "" {
		cfds := parseRules(*cfdsPath, schemas, cfd.Parse)
		logger.Info("loaded rules", "class", "cfd", "count", len(cfds))
		if ok, _ := cfd.Consistent(cfds); !ok {
			fatalf("the CFD set is inconsistent: no nonempty instance can satisfy it (fix the rules first)")
		}
		rules = append(rules, detect.WrapCFDs(cfds)...)
	}
	if *cindsPath != "" {
		cinds := parseRules(*cindsPath, schemas, cind.Parse)
		logger.Info("loaded rules", "class", "cind", "count", len(cinds))
		rules = append(rules, detect.WrapCINDs(cinds)...)
	}
	if *ecfdsPath != "" {
		ecfds := parseRules(*ecfdsPath, schemas, ecfd.Parse)
		logger.Info("loaded rules", "class", "ecfd", "count", len(ecfds))
		rules = append(rules, detect.WrapECFDs(ecfds)...)
	}

	var durable *serve.DurableConfig
	if *dataDir != "" {
		durable = &serve.DurableConfig{
			Dir:             *dataDir,
			SyncEvery:       *syncEvery,
			SyncInterval:    *syncInterval,
			CheckpointEvery: *ckptEvery,
		}
	}
	svc, err := serve.New(serve.Config{
		Engine:        &detect.Engine{Workers: *workers},
		DB:            db,
		Constraints:   rules,
		QueueCap:      *queueCap,
		MaxBatchOps:   *maxBatch,
		SubBuf:        *subBuf,
		SubmitTimeout: *submitTimeout,
		Shards:        *shards,
		ShardKeys:     resolveShardKeys(shardKeys, schemas),
		Durable:       durable,
		Obs:           &serve.ObsConfig{},
		Logger:        logger,
	})
	if err != nil {
		fatalf("%v", err)
	}
	if *shards > 1 {
		logger.Info("sharding enabled", "shards", *shards)
	}
	if durable != nil {
		st := svc.State()
		if ds, ok := svc.Durability(); ok {
			logger.Info("durable mode", "dir", *dataDir, "seq", st.Seq,
				"checkpointSeq", ds.LastCheckpointSeq, "ops", st.Ops)
		}
	}
	logger.Info("seeded monitor", "rules", len(rules), "violations", len(svc.Violations()))

	handler := serve.NewHandler(svc)
	handler.MaxBatchBytes = *maxBody
	// The service handler owns "/"; pprof mounts beside it so profiling
	// never shadows an API route unless asked for.
	mux := http.NewServeMux()
	mux.Handle("/", handler)
	if *pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		logger.Info("pprof enabled", "path", "/debug/pprof/")
	}
	srv := &http.Server{
		Addr:    *addr,
		Handler: mux,
		// /stream responses are unbounded by design, so no WriteTimeout
		// (the stream handler clears its own deadlines); request reads
		// are bounded so a slow-drip client cannot pin a goroutine — a
		// capped /batch body always fits inside ReadTimeout on any
		// non-adversarial link.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Info("serving", "addr", *addr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		logger.Info("shutting down", "drainBudget", *drain)
	case err := <-errc:
		fatalf("%v", err)
	}

	// Two-stage graceful shutdown: finish in-flight HTTP requests (each
	// POST /batch waits for its commits), then drain whatever is still
	// queued inside the service.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		logger.Warn("http shutdown", "err", err)
	}
	if err := svc.Stop(shutdownCtx); err != nil {
		logger.Warn("service drain", "err", err)
	}
	st := svc.State()
	logger.Info("stopped", "seq", st.Seq, "ops", st.Ops, "violations", len(st.Violations))
}

// parseRules opens and parses one rule file with the class parser.
func parseRules[T any](path string, schemas map[string]*relation.Schema,
	parse func(r io.Reader, schemas map[string]*relation.Schema) ([]T, error)) []T {
	f, err := os.Open(path)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	rules, err := parse(f, schemas)
	if err != nil {
		fatalf("%s: %v", path, err)
	}
	return rules
}
