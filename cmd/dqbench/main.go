// Command dqbench regenerates every table and figure of Fan (PODS 2008)
// from this reproduction, printing the paper's claim next to the measured
// outcome for each experiment of the DESIGN.md index (E1–E20). Timing
// figures for the scaling rows live in the root bench_test.go benchmarks;
// this command checks the qualitative shape (who wins, what is decidable,
// where the exponential cliffs are).
//
// Usage:
//
//	dqbench [-experiment E5] [-quick] [-json] [-cpuprofile f] [-memprofile f]
//
// -json emits one machine-readable envelope (host parallelism, per-
// experiment status and timing) instead of the text report, for CI
// artifact diffing. The profile flags write pprof data covering the
// selected experiments, for chasing where an experiment's time goes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"
)

// experiment is one row of the harness.
type experiment struct {
	id    string
	title string
	claim string
	run   func(quick bool) (measured string, pass bool)
}

// result is one experiment's outcome in the -json envelope.
type result struct {
	ID       string `json:"id"`
	Title    string `json:"title"`
	Claim    string `json:"claim"`
	Measured string `json:"measured"`
	Pass     bool   `json:"pass"`
	Millis   int64  `json:"ms"`
}

// envelope is the -json output: host parallelism up front so a CI
// artifact records what the timings ran on.
type envelope struct {
	GOMAXPROCS int      `json:"gomaxprocs"`
	NumCPU     int      `json:"numcpu"`
	Quick      bool     `json:"quick"`
	Results    []result `json:"results"`
}

func main() {
	only := flag.String("experiment", "", "run only this experiment id (e.g. E5)")
	quick := flag.Bool("quick", false, "smaller sizes for a fast pass")
	jsonOut := flag.Bool("json", false, "emit a JSON envelope instead of the text report")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile after the run to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dqbench: cpuprofile: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "dqbench: cpuprofile: %v\n", err)
			os.Exit(2)
		}
		defer pprof.StopCPUProfile()
	}

	env := envelope{GOMAXPROCS: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(), Quick: *quick}
	failures := 0
	for _, e := range experiments {
		if *only != "" && !strings.EqualFold(*only, e.id) {
			continue
		}
		start := time.Now()
		measured, pass := e.run(*quick)
		elapsed := time.Since(start)
		if !pass {
			failures++
		}
		if *jsonOut {
			env.Results = append(env.Results, result{
				ID: e.id, Title: e.title, Claim: e.claim,
				Measured: measured, Pass: pass, Millis: elapsed.Milliseconds(),
			})
			continue
		}
		status := "ok"
		if !pass {
			status = "FAIL"
		}
		fmt.Printf("%-4s %-52s [%s, %v]\n", e.id, e.title, status, elapsed.Round(time.Millisecond))
		fmt.Printf("     paper:    %s\n", e.claim)
		for _, line := range strings.Split(measured, "\n") {
			fmt.Printf("     measured: %s\n", line)
		}
		fmt.Println()
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(env); err != nil {
			fmt.Fprintf(os.Stderr, "dqbench: %v\n", err)
			os.Exit(2)
		}
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dqbench: memprofile: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "dqbench: memprofile: %v\n", err)
			os.Exit(2)
		}
	}
	if failures > 0 {
		if !*jsonOut {
			fmt.Printf("%d experiment(s) FAILED\n", failures)
		}
		os.Exit(1)
	}
}
