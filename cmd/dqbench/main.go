// Command dqbench regenerates every table and figure of Fan (PODS 2008)
// from this reproduction, printing the paper's claim next to the measured
// outcome for each experiment of the DESIGN.md index (E1–E20). Timing
// figures for the scaling rows live in the root bench_test.go benchmarks;
// this command checks the qualitative shape (who wins, what is decidable,
// where the exponential cliffs are).
//
// Usage:
//
//	dqbench [-experiment E5] [-quick]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"
)

// experiment is one row of the harness.
type experiment struct {
	id    string
	title string
	claim string
	run   func(quick bool) (measured string, pass bool)
}

func main() {
	only := flag.String("experiment", "", "run only this experiment id (e.g. E5)")
	quick := flag.Bool("quick", false, "smaller sizes for a fast pass")
	flag.Parse()

	failures := 0
	for _, e := range experiments {
		if *only != "" && !strings.EqualFold(*only, e.id) {
			continue
		}
		start := time.Now()
		measured, pass := e.run(*quick)
		status := "ok"
		if !pass {
			status = "FAIL"
			failures++
		}
		fmt.Printf("%-4s %-52s [%s, %v]\n", e.id, e.title, status, time.Since(start).Round(time.Millisecond))
		fmt.Printf("     paper:    %s\n", e.claim)
		for _, line := range strings.Split(measured, "\n") {
			fmt.Printf("     measured: %s\n", line)
		}
		fmt.Println()
	}
	if failures > 0 {
		fmt.Printf("%d experiment(s) FAILED\n", failures)
		os.Exit(1)
	}
}
