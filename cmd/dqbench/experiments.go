package main

import (
	"context"
	"fmt"
	"time"

	"repro/internal/algebra"
	"repro/internal/cfd"
	"repro/internal/cind"
	"repro/internal/cqa"
	"repro/internal/denial"
	"repro/internal/detect"
	"repro/internal/discovery"
	"repro/internal/ecfd"
	"repro/internal/gen"
	"repro/internal/gen/drift"
	"repro/internal/match"
	"repro/internal/md"
	"repro/internal/obs"
	"repro/internal/paperdata"
	"repro/internal/propagate"
	"repro/internal/relation"
	"repro/internal/repair"
	"repro/internal/repr"
	"repro/internal/serve"
	"repro/internal/similarity"
)

// The experiment registry mirrors the DESIGN.md index.
var experiments = []experiment{
	{
		id:    "E1",
		title: "Figure 1: D0 satisfies the traditional FDs f1, f2",
		claim: "D0 ⊨ f1, f2 — no errors found with FDs alone",
		run: func(bool) (string, bool) {
			d0 := paperdata.Figure1()
			s := d0.Schema()
			ok1 := cfd.Satisfies(d0, paperdata.F1(s))
			ok2 := cfd.Satisfies(d0, paperdata.F2(s))
			return fmt.Sprintf("D0 ⊨ f1: %v, D0 ⊨ f2: %v", ok1, ok2), ok1 && ok2
		},
	},
	{
		id:    "E2",
		title: "Figure 2: CFDs expose errors in every tuple of D0",
		claim: "D0 ⊭ ϕ1 (t1,t2 clash on street), D0 ⊭ ϕ2 (city ≠ EDI/MH), D0 ⊨ ϕ3",
		run: func(bool) (string, bool) {
			d0 := paperdata.Figure1()
			s := d0.Schema()
			v1 := cfd.Detect(d0, paperdata.Phi1(s))
			v2 := cfd.Detect(d0, paperdata.Phi2(s))
			ok3 := cfd.Satisfies(d0, paperdata.Phi3(s))
			dirty := cfd.ViolatingTIDs(append(append([]cfd.Violation(nil), v1...), v2...))
			pass := len(v1) == 1 && len(v2) >= 3 && ok3 && len(dirty) == 3
			return fmt.Sprintf("ϕ1: %d violation(s), ϕ2: %d, ϕ3 holds: %v, dirty tuples: %d/3",
				len(v1), len(v2), ok3, len(dirty)), pass
		},
	},
	{
		id:    "E3",
		title: "Figure 3: the order/book/CD instance D1",
		claim: "D1 as printed (2 orders, 2 books, 2 CDs)",
		run: func(bool) (string, bool) {
			db := paperdata.Figure3()
			o := db.MustInstance("order").Len()
			b := db.MustInstance("book").Len()
			c := db.MustInstance("CD").Len()
			return fmt.Sprintf("order: %d, book: %d, CD: %d tuples", o, b, c), o == 2 && b == 2 && c == 2
		},
	},
	{
		id:    "E4",
		title: "Figure 4: D1 ⊨ ϕ4, ϕ5 but D1 ⊭ ϕ6 (tuple t9)",
		claim: "t9 (a-book Snow White) has no audio-format book match",
		run: func(bool) (string, bool) {
			db := paperdata.Figure3()
			phi4, phi5, phi6 := figure4CINDs()
			ok4 := cind.Satisfies(db, phi4)
			ok5 := cind.Satisfies(db, phi5)
			vs := cind.Detect(db, phi6)
			pass := ok4 && ok5 && len(vs) == 1 && vs[0].TID == 1
			return fmt.Sprintf("ϕ4: %v, ϕ5: %v, ϕ6 violations: %v", ok4, ok5, vs), pass
		},
	},
	{
		id:    "E5",
		title: "Table 1: CFD consistency is NP-complete (Ex. 4.1)",
		claim: "finite domains make consistency nontrivial; Example 4.1 is inconsistent",
		run: func(quick bool) (string, bool) {
			_, bad := paperdata.Example41()
			ok41, _ := cfd.Consistent(bad)
			// Scaling probe: random bool-domain CFD families.
			n := 14
			if quick {
				n = 8
			}
			t0 := time.Now()
			consistent := 0
			for seed := 0; seed < n; seed++ {
				set := randomBoolCFDs(seed, 6)
				if ok, _ := cfd.ConsistentExact(set); ok {
					consistent++
				}
			}
			el := time.Since(t0)
			return fmt.Sprintf("Example 4.1 consistent: %v (want false); %d/%d random bool families consistent, exact search %v",
				ok41, consistent, n, el.Round(time.Millisecond)), !ok41
		},
	},
	{
		id:    "E6",
		title: "Table 1: CIND consistency is O(1) — always satisfiable",
		claim: "every CIND set has a nonempty witness",
		run: func(bool) (string, bool) {
			phi4, phi5, phi6 := figure4CINDs()
			sets := [][]*cind.CIND{{phi4}, {phi4, phi5, phi6}}
			for _, set := range sets {
				db, err := cind.BuildWitness(set, "", 0)
				if err != nil || !cind.SatisfiesAll(db, set) {
					return fmt.Sprintf("witness construction failed: %v", err), false
				}
			}
			return "witnesses built and verified for all probe sets", true
		},
	},
	{
		id:    "E7",
		title: "Table 1: CFD implication is coNP-complete",
		claim: "finite-domain case analysis yields consequences the infinite case lacks",
		run: func(bool) (string, bool) {
			boolImplied, strImplied := finiteCaseAnalysisProbe()
			return fmt.Sprintf("bool-domain case analysis implied: %v (want true); string-domain: %v (want false)",
				boolImplied, strImplied), boolImplied && !strImplied
		},
	},
	{
		id:    "E8",
		title: "Table 1: CIND implication via the chase (EXPTIME)",
		claim: "definite on acyclic families; Unknown past the bound on cyclic ones",
		run: func(bool) (string, bool) {
			yes, no, cyc := cindImplicationProbe()
			pass := yes == cind.Yes && no == cind.No && (cyc == cind.Unknown || cyc == cind.No)
			return fmt.Sprintf("transitive composition: %v, non-consequence: %v, cyclic probe: %v", yes, no, cyc), pass
		},
	},
	{
		id:    "E9",
		title: "Table 1: no finite domains ⇒ quadratic algorithms",
		claim: "consistency and implication drop to O(n²) (Theorem 4.3)",
		run: func(quick bool) (string, bool) {
			trials := 300
			if quick {
				trials = 60
			}
			agreeC, agreeI := fastVsExactProbe(trials)
			return fmt.Sprintf("fixpoint vs exact consistency agreement: %d/%d; chase vs exact implication: %d/%d",
				agreeC, trials, agreeI, trials), agreeC == trials && agreeI == trials
		},
	},
	{
		id:    "E10",
		title: "Table 1: eCFDs keep NP/coNP (Section 2.3 NY example)",
		claim: "disjunction and inequality cost nothing extra; ecfd1/ecfd2 behave as narrated",
		run: func(bool) (string, bool) {
			okClean, violAlbany, viol555 := nyECFDProbe()
			return fmt.Sprintf("clean NY data consistent with ecfd1+ecfd2: %v; second Albany AC flagged: %v; NYC AC 555 flagged: %v",
				okClean, violAlbany, viol555), okClean && violAlbany && viol555
		},
	},
	{
		id:    "E11",
		title: "Table 1: CFDs+CINDs together are undecidable",
		claim: "bounded semi-decision: Yes/No definite, Unknown past the bound",
		run: func(bool) (string, bool) {
			d0s := paperdata.CustomerSchema()
			custCFDs := []*cfd.CFD{paperdata.Phi1(d0s), paperdata.Phi2(d0s)}
			dir := relation.MustSchema("directory",
				relation.Attr("city", relation.KindString),
				relation.Attr("country", relation.KindString))
			toDir := cind.MustNew(d0s, dir, []string{"city"}, []string{"city"},
				nil, []string{"country"},
				cind.PatternRow{YpVals: []relation.Value{relation.Str("UK")}})
			resOK, _ := cind.InteractionConsistent(custCFDs, []*cind.CIND{toDir}, 0)
			_, bad := paperdata.Example41()
			resBad, _ := cind.InteractionConsistent(bad, []*cind.CIND{toDir}, 0)
			return fmt.Sprintf("compatible combination: %v (want yes); inconsistent CFDs: %v (want no)",
				resOK, resBad), resOK == cind.Yes && resBad == cind.No
		},
	},
	{
		id:    "E12",
		title: "Table 1: finite axiomatizability (sound inference systems)",
		claim: "CFD and CIND rules derive only semantic consequences (Theorem 4.6a)",
		run: func(bool) (string, bool) {
			nCFD, okCFD := cfdAxiomsSound()
			okCIND := cindAxiomsSound()
			return fmt.Sprintf("CFD closure: %d derivations, all implied: %v; CIND Permute/Transit sound: %v",
				nCFD, okCFD, okCIND), okCFD && okCIND
		},
	},
	{
		id:    "E13",
		title: "Example 4.2 / Theorem 4.7: propagation to union views",
		claim: "f3, AC→city do NOT propagate; ϕ7, ϕ8 DO",
		run: func(bool) (string, bool) {
			notF3, notAC, yes7, yes8 := example42Probe()
			pass := !notF3 && !notAC && yes7 && yes8
			return fmt.Sprintf("f3 propagates: %v (want false); AC→city: %v (want false); ϕ7: %v; ϕ8: %v",
				notF3, notAC, yes7, yes8), pass
		},
	},
	{
		id:    "E14",
		title: "Example 4.3 / Theorem 4.8: MD implication in PTIME",
		claim: "Σ1 ⊨m rck1, rck2, rck3",
		run: func(bool) (string, bool) {
			_, _, sigma := sigma1MDs()
			keys := paperRCKs()
			all := true
			for _, k := range keys {
				if !md.Implies(sigma, k) {
					all = false
				}
			}
			return fmt.Sprintf("all three RCKs implied: %v", all), all
		},
	},
	{
		id:    "E15",
		title: "Section 3: derived RCKs improve match quality",
		claim: "true matches missed by given rules are found by derived comparison vectors",
		run: func(quick bool) (string, bool) {
			n := 300
			if quick {
				n = 100
			}
			qGiven, qDerived := matchQualityProbe(n)
			pass := qDerived.Recall > qGiven.Recall && qDerived.Precision >= 0.99
			return fmt.Sprintf("given rules:   %v\nwith derived:  %v", qGiven, qDerived), pass
		},
	},
	{
		id:    "E16",
		title: "Example 5.1: Dn has exactly 2^n repairs",
		claim: "2n tuples, single key A→B ⇒ 2^n X-repairs",
		run: func(quick bool) (string, bool) {
			ns := []int{2, 4, 8, 10}
			if quick {
				ns = []int{2, 4, 6}
			}
			out := ""
			pass := true
			for _, n := range ns {
				in := gen.Example51(n)
				db := relation.NewDatabase()
				db.Add(in)
				dcs, _ := denial.Key(in.Schema(), []string{"A"})
				h, _ := repair.BuildHypergraph(db, dcs)
				got := h.CountXRepairs(0)
				if got != 1<<n {
					pass = false
				}
				out += fmt.Sprintf("n=%d: %d repairs (want %d); ", n, got, 1<<n)
			}
			return out, pass
		},
	},
	{
		id:    "E17",
		title: "Section 5.1: cost-based heuristic repair cleans dirty data",
		claim: "repair terminates with a Σ-satisfying instance at 1%–5% error rates",
		run: func(quick bool) (string, bool) {
			n := 800
			if quick {
				n = 200
			}
			s := paperdata.CustomerSchema()
			sigma := []*cfd.CFD{paperdata.Phi1(s), paperdata.Phi2(s)}
			out := ""
			pass := true
			for _, rate := range []float64{0.01, 0.05} {
				dirty := gen.Customers(gen.CustomerConfig{N: n, Seed: 77, ErrorRate: rate})
				before := len(cfd.DetectAll(dirty, sigma))
				rep, err := repair.RepairCFDs(dirty, sigma, repair.URepairOptions{})
				clean := err == nil && cfd.SatisfiesAll(dirty, sigma)
				if !clean {
					pass = false
				}
				out += fmt.Sprintf("rate %.0f%%: %d violations → clean=%v, %d changes, cost %.1f; ",
					rate*100, before, clean, len(rep.Changes), rep.Cost)
			}
			return out, pass
		},
	},
	{
		id:    "E18",
		title: "Section 5.2: certain answers, rewriting vs enumeration",
		claim: "the PTIME key rewriting equals exhaustive repair enumeration",
		run: func(bool) (string, bool) {
			agree, total := cqaProbe()
			return fmt.Sprintf("rewriting agrees with enumeration on %d/%d probe queries", agree, total), agree == total
		},
	},
	{
		id:    "E19",
		title: "Section 5.3: nucleus vs materialized repairs",
		claim: "condensed representation is linear while repairs are exponential; same certain answers",
		run: func(bool) (string, bool) {
			rows, vars, repairs, sameAnswers := nucleusProbe(10)
			pass := rows == 20 && vars == 10 && repairs == 1024 && sameAnswers
			return fmt.Sprintf("n=10: nucleus %d rows / %d vars vs %d repairs; certain answers agree: %v",
				rows, vars, repairs, sameAnswers), pass
		},
	},
	{
		id:    "E21",
		title: "Section 5.1 Remark: master-data repair via relative keys",
		claim: "repairing against reference data restores truth where consensus entrenches majority errors",
		run: func(bool) (string, bool) {
			consRestored, masterRestored, corrupted, ok := masterRepairProbe()
			pass := ok && masterRestored == corrupted && consRestored < masterRestored
			return fmt.Sprintf("corrupted cells: %d; consensus restored: %d; master-guided restored: %d",
				corrupted, consRestored, masterRestored), pass
		},
	},
	{
		id:    "E20",
		title: "Section 1: profiling discovers the cleaning rules",
		claim: "FDs and constant CFDs are re-discovered from clean data and catch injected errors",
		run: func(quick bool) (string, bool) {
			n := 300
			if quick {
				n = 120
			}
			rules, caught := discoveryProbe(n)
			return fmt.Sprintf("mined %d constant-CFD groups; violations caught in dirty data: %d", rules, caught),
				rules > 0 && caught > 0
		},
	},
	{
		id:    "E23",
		title: "Incremental monitoring: Monitor.Apply vs invalidate-and-rebuild",
		claim: "update batches cost the touched groups, not a full re-freeze; diffs stay exact",
		run: func(quick bool) (string, bool) {
			n := 20000
			if quick {
				n = 4000
			}
			monT, rebuildT, exact := monitorIncrProbe(n, 20, 10)
			ratio := float64(rebuildT) / float64(monT)
			return fmt.Sprintf("n=%d, 20 batches of 10 updates: monitor %v, rebuild+retouch %v (%.0fx); exact vs DetectAll: %v",
				n, monT.Round(time.Microsecond), rebuildT.Round(time.Microsecond), ratio, exact), exact && ratio > 3
		},
	},
	{
		id:    "E24",
		title: "Mixed-class detection: CFDs+CINDs+eCFDs on one engine",
		claim: "one DBSnapshot serves every class; CIND detection sheds its per-rule index builds and string probes",
		run: func(quick bool) (string, bool) {
			n := 20000
			if quick {
				n = 4000
			}
			engineT, legacyT, identical := mixedDetectProbe(n)
			ratio := float64(legacyT) / float64(engineT)
			// Identity gates; the ratio is reported, not asserted — this
			// row runs in CI, and a one-shot wall-clock ratio on a shared
			// runner is noise, not signal (BenchmarkDetectMixed carries
			// the measured speedup tables).
			return fmt.Sprintf("n=%d orders: mixed engine batch %v, per-class legacy detectors %v (%.1fx); per-class streams byte-identical: %v",
				n, engineT.Round(time.Microsecond), legacyT.Round(time.Microsecond), ratio, identical), identical
		},
	},
	{
		id:    "E30",
		title: "Observability: change-point detection on a drifting violation rate",
		claim: "an 8× violation-rate step is flagged within 5 commits with ≥0.95 confidence; a stationary control stream fires nothing",
		run: func(bool) (string, bool) {
			latency, conf, ctrlCPs, err := driftDetectProbe()
			if err != nil {
				return err.Error(), false
			}
			// Overhead is benchmarked, not gated here (E24 precedent:
			// one-shot wall clock on a shared runner is noise) —
			// BenchmarkMetricsOverhead carries the ops/sec table.
			pass := latency >= 0 && latency <= 5 && conf >= 0.95 && ctrlCPs == 0
			return fmt.Sprintf("8× step at commit 21: detected %d commit(s) later (confidence %.3f); control change points: %d",
				latency, conf, ctrlCPs), pass
		},
	},
}

// --- probe helpers -------------------------------------------------------

func figure4CINDs() (phi4, phi5, phi6 *cind.CIND) {
	order := paperdata.OrderSchema()
	book := paperdata.BookSchema()
	cdS := paperdata.CDSchema()
	phi4 = cind.MustNew(order, book,
		[]string{"title", "price"}, []string{"title", "price"},
		[]string{"type"}, nil,
		cind.PatternRow{XpVals: []relation.Value{relation.Str("book")}})
	phi5 = cind.MustNew(order, cdS,
		[]string{"title", "price"}, []string{"album", "price"},
		[]string{"type"}, nil,
		cind.PatternRow{XpVals: []relation.Value{relation.Str("CD")}})
	phi6 = cind.MustNew(cdS, book,
		[]string{"album", "price"}, []string{"title", "price"},
		[]string{"genre"}, []string{"format"},
		cind.PatternRow{
			XpVals: []relation.Value{relation.Str("a-book")},
			YpVals: []relation.Value{relation.Str("audio")},
		})
	return
}

// randomBoolCFDs builds deterministic pseudo-random CFD families over a
// bool attribute (the NP-hard regime).
func randomBoolCFDs(seed, n int) []*cfd.CFD {
	s := relation.MustSchema("r",
		relation.FiniteAttr("A", relation.BoolDom()),
		relation.Attr("B", relation.KindString),
	)
	vals := []relation.Value{relation.Str("x"), relation.Str("y")}
	var out []*cfd.CFD
	state := seed*2654435761 + 12345
	next := func(m int) int {
		state = state*1103515245 + 12345
		if state < 0 {
			state = -state
		}
		return state % m
	}
	for i := 0; i < n; i++ {
		if next(2) == 0 {
			out = append(out, cfd.MustNew(s, []string{"A"}, []string{"B"},
				cfd.Row([]cfd.Cell{cfd.Const(relation.Bool(next(2) == 0))},
					[]cfd.Cell{cfd.Const(vals[next(2)])})))
		} else {
			out = append(out, cfd.MustNew(s, []string{"B"}, []string{"A"},
				cfd.Row([]cfd.Cell{cfd.Const(vals[next(2)])},
					[]cfd.Cell{cfd.Const(relation.Bool(next(2) == 0))})))
		}
	}
	return out
}

func finiteCaseAnalysisProbe() (boolImplied, strImplied bool) {
	bs := relation.MustSchema("r",
		relation.FiniteAttr("A", relation.BoolDom()),
		relation.Attr("B", relation.KindString))
	z := relation.Str("z")
	bt := cfd.MustNew(bs, []string{"A"}, []string{"B"},
		cfd.Row([]cfd.Cell{cfd.Const(relation.Bool(true))}, []cfd.Cell{cfd.Const(z)}))
	bf := cfd.MustNew(bs, []string{"A"}, []string{"B"},
		cfd.Row([]cfd.Cell{cfd.Const(relation.Bool(false))}, []cfd.Cell{cfd.Const(z)}))
	bAll := cfd.MustNew(bs, []string{"A"}, []string{"B"},
		cfd.Row([]cfd.Cell{cfd.Any()}, []cfd.Cell{cfd.Const(z)}))
	boolImplied = cfd.Implies([]*cfd.CFD{bt, bf}, bAll)

	ss := relation.MustSchema("r",
		relation.Attr("A", relation.KindString),
		relation.Attr("B", relation.KindString))
	st := cfd.MustNew(ss, []string{"A"}, []string{"B"},
		cfd.Row([]cfd.Cell{cfd.Const(relation.Str("t"))}, []cfd.Cell{cfd.Const(z)}))
	sf := cfd.MustNew(ss, []string{"A"}, []string{"B"},
		cfd.Row([]cfd.Cell{cfd.Const(relation.Str("f"))}, []cfd.Cell{cfd.Const(z)}))
	sAll := cfd.MustNew(ss, []string{"A"}, []string{"B"},
		cfd.Row([]cfd.Cell{cfd.Any()}, []cfd.Cell{cfd.Const(z)}))
	strImplied = cfd.Implies([]*cfd.CFD{st, sf}, sAll)
	return
}

func cindImplicationProbe() (yes, no, cyc cind.Result) {
	order := paperdata.OrderSchema()
	cdS := paperdata.CDSchema()
	book := paperdata.BookSchema()
	strongPhi5 := cind.MustNew(order, cdS,
		[]string{"title", "price"}, []string{"album", "price"},
		[]string{"type"}, []string{"genre"},
		cind.PatternRow{
			XpVals: []relation.Value{relation.Str("CD")},
			YpVals: []relation.Value{relation.Str("a-book")},
		})
	_, _, phi6 := figure4CINDs()
	target := cind.MustNew(order, book,
		[]string{"title", "price"}, []string{"title", "price"},
		[]string{"type"}, []string{"format"},
		cind.PatternRow{
			XpVals: []relation.Value{relation.Str("CD")},
			YpVals: []relation.Value{relation.Str("audio")},
		})
	yes = cind.Implies([]*cind.CIND{strongPhi5, phi6}, target)
	phi4, phi5, _ := figure4CINDs()
	no = cind.Implies([]*cind.CIND{phi4, phi5}, target)

	r := relation.MustSchema("cr", relation.Attr("a", relation.KindString), relation.Attr("b", relation.KindString))
	t := relation.MustSchema("ct", relation.Attr("c", relation.KindString), relation.Attr("d", relation.KindString))
	c1 := cind.MustIND(r, t, []string{"a"}, []string{"c"})
	c2 := cind.MustIND(t, r, []string{"d"}, []string{"a"})
	cyc = cind.ImpliesBounded([]*cind.CIND{c1, c2}, cind.MustIND(r, t, []string{"a"}, []string{"d"}), 3)
	return
}

func fastVsExactProbe(trials int) (agreeC, agreeI int) {
	s := relation.MustSchema("r",
		relation.Attr("A", relation.KindString),
		relation.Attr("B", relation.KindString),
	)
	consts := []relation.Value{relation.Str("x"), relation.Str("y")}
	state := 98765
	next := func(m int) int {
		state = state*1103515245 + 12345
		if state < 0 {
			state = -state
		}
		return state % m
	}
	randCell := func() cfd.Cell {
		if next(3) == 0 {
			return cfd.Any()
		}
		return cfd.Const(consts[next(2)])
	}
	mk := func() *cfd.CFD {
		if next(2) == 0 {
			return cfd.MustNew(s, []string{"A"}, []string{"B"},
				cfd.Row([]cfd.Cell{randCell()}, []cfd.Cell{randCell()}))
		}
		return cfd.MustNew(s, []string{"B"}, []string{"A"},
			cfd.Row([]cfd.Cell{randCell()}, []cfd.Cell{randCell()}))
	}
	for i := 0; i < trials; i++ {
		var set []*cfd.CFD
		for j := 0; j <= next(3); j++ {
			set = append(set, mk())
		}
		f, _ := cfd.ConsistentFast(set)
		e, _ := cfd.ConsistentExact(set)
		if f == e {
			agreeC++
		}
		phi := mk()
		if cfd.Implies(set, phi) == cfd.ImpliesExact(set, phi) {
			agreeI++
		}
	}
	return
}

func nyECFDProbe() (okClean, violAlbany, viol555 bool) {
	s := relation.MustSchema("nycust",
		relation.Attr("CT", relation.KindString),
		relation.Attr("AC", relation.KindInt),
	)
	e1 := ecfd.MustNew(s, []string{"CT"}, []string{"AC"},
		ecfd.Row{LHS: []ecfd.Cell{ecfd.NotIn(relation.Str("NYC"), relation.Str("LI"))}, RHS: []ecfd.Cell{ecfd.Any()}})
	e2 := ecfd.MustNew(s, []string{"CT"}, []string{"AC"},
		ecfd.Row{LHS: []ecfd.Cell{ecfd.In(relation.Str("NYC"))},
			RHS: []ecfd.Cell{ecfd.In(relation.Int(212), relation.Int(718), relation.Int(646), relation.Int(347), relation.Int(917))}})
	in := relation.NewInstance(s)
	in.MustInsert(relation.Str("Albany"), relation.Int(518))
	in.MustInsert(relation.Str("NYC"), relation.Int(212))
	in.MustInsert(relation.Str("NYC"), relation.Int(718))
	okClean = ecfd.SatisfiesAll(in, []*ecfd.ECFD{e1, e2})
	d1 := in.Clone()
	d1.MustInsert(relation.Str("Albany"), relation.Int(838))
	violAlbany = !ecfd.Satisfies(d1, e1)
	d2 := in.Clone()
	d2.MustInsert(relation.Str("NYC"), relation.Int(555))
	viol555 = !ecfd.Satisfies(d2, e2)
	return
}

func cfdAxiomsSound() (int, bool) {
	s := relation.MustSchema("r",
		relation.Attr("A", relation.KindString),
		relation.Attr("B", relation.KindString),
		relation.Attr("C", relation.KindString),
	)
	ab := cfd.MustNew(s, []string{"A"}, []string{"B"},
		cfd.Row([]cfd.Cell{cfd.Const(relation.Str("a"))}, []cfd.Cell{cfd.Const(relation.Str("b"))}))
	bc := cfd.MustFD(s, []string{"B"}, []string{"C"})
	base := []*cfd.CFD{ab, bc}
	_, derivations := cfd.Closure(base, 40)
	for _, d := range derivations {
		if !cfd.ImpliesExact(base, d.Derived) {
			return len(derivations), false
		}
	}
	return len(derivations), true
}

func cindAxiomsSound() bool {
	phi4, _, phi6 := figure4CINDs()
	perm, err := cind.Permute(phi4, []int{1, 0})
	if err != nil || cind.Implies([]*cind.CIND{phi4}, perm) != cind.Yes {
		return false
	}
	order := paperdata.OrderSchema()
	cdS := paperdata.CDSchema()
	strongPhi5 := cind.MustNew(order, cdS,
		[]string{"title", "price"}, []string{"album", "price"},
		[]string{"type"}, []string{"genre"},
		cind.PatternRow{
			XpVals: []relation.Value{relation.Str("CD")},
			YpVals: []relation.Value{relation.Str("a-book")},
		})
	composed, err := cind.Transit(strongPhi5, phi6)
	return err == nil && cind.Implies([]*cind.CIND{strongPhi5, phi6}, composed) == cind.Yes
}

func example42Probe() (f3, acCity, phi7, phi8 bool) {
	mk := func(name string) *relation.Schema {
		return relation.MustSchema(name,
			relation.Attr("zip", relation.KindString),
			relation.Attr("street", relation.KindString),
			relation.Attr("AC", relation.KindInt),
			relation.Attr("city", relation.KindString),
		)
	}
	schemas := map[string]*relation.Schema{"R1": mk("R1"), "R2": mk("R2"), "R3": mk("R3")}
	sigma := []*cfd.CFD{
		cfd.MustFD(schemas["R1"], []string{"zip"}, []string{"street"}),
		cfd.MustFD(schemas["R1"], []string{"AC"}, []string{"city"}),
		cfd.MustFD(schemas["R2"], []string{"AC"}, []string{"city"}),
		cfd.MustFD(schemas["R3"], []string{"AC"}, []string{"city"}),
	}
	branch := func(rel string, cc int64) propagate.Branch {
		return propagate.Branch{
			Atoms: []algebra.Atom{{Rel: rel, Terms: []algebra.Term{
				algebra.V("z"), algebra.V("s"), algebra.V("a"), algebra.V("c")}}},
			Head: []algebra.Term{
				algebra.C(relation.Int(cc)), algebra.V("z"), algebra.V("s"), algebra.V("a"), algebra.V("c")},
		}
	}
	view := propagate.View{
		Name: "R",
		Cols: []string{"CC", "zip", "street", "AC", "city"},
		Branches: []propagate.Branch{
			branch("R1", 44), branch("R2", 1), branch("R3", 31),
		},
	}
	vs, _ := view.Schema(schemas)
	f3, _ = propagate.Propagates(schemas, sigma, view, cfd.MustFD(vs, []string{"zip"}, []string{"street"}))
	acCity, _ = propagate.Propagates(schemas, sigma, view, cfd.MustFD(vs, []string{"AC"}, []string{"city"}))
	p7 := cfd.MustNew(vs, []string{"CC", "zip"}, []string{"street"},
		cfd.Row([]cfd.Cell{cfd.Const(relation.Int(44)), cfd.Any()}, []cfd.Cell{cfd.Any()}))
	phi7, _ = propagate.Propagates(schemas, sigma, view, p7)
	p8 := cfd.MustNew(vs, []string{"CC", "AC"}, []string{"city"},
		cfd.Row([]cfd.Cell{cfd.Const(relation.Int(44)), cfd.Any()}, []cfd.Cell{cfd.Any()}),
		cfd.Row([]cfd.Cell{cfd.Const(relation.Int(1)), cfd.Any()}, []cfd.Cell{cfd.Any()}),
		cfd.Row([]cfd.Cell{cfd.Const(relation.Int(31)), cfd.Any()}, []cfd.Cell{cfd.Any()}))
	phi8, _ = propagate.Propagates(schemas, sigma, view, p8)
	return
}

func sigma1MDs() (*relation.Schema, *relation.Schema, []*md.MD) {
	card := paperdata.CardSchema()
	billing := paperdata.BillingSchema()
	eq := similarity.Eq()
	m := similarity.MatchOp()
	ed := similarity.EditOp(0.8)
	return card, billing, []*md.MD{
		md.MustNew(card, billing, []md.PremiseSpec{{Left: "tel", Right: "phn", Op: eq}},
			[]string{"addr"}, []string{"post"}, m),
		md.MustNew(card, billing, []md.PremiseSpec{{Left: "email", Right: "email", Op: m}},
			[]string{"FN", "LN"}, []string{"FN", "SN"}, m),
		md.MustNew(card, billing, []md.PremiseSpec{
			{Left: "LN", Right: "SN", Op: m}, {Left: "addr", Right: "post", Op: m}, {Left: "FN", Right: "FN", Op: m}},
			paperdata.Yc(), paperdata.Yb(), m),
		md.MustNew(card, billing, []md.PremiseSpec{
			{Left: "LN", Right: "SN", Op: m}, {Left: "addr", Right: "post", Op: m}, {Left: "FN", Right: "FN", Op: ed}},
			paperdata.Yc(), paperdata.Yb(), m),
	}
}

func paperRCKs() []*md.MD {
	card := paperdata.CardSchema()
	billing := paperdata.BillingSchema()
	eq := similarity.Eq()
	ed := similarity.EditOp(0.8)
	return []*md.MD{
		md.MustRelativeKey(card, billing,
			[]string{"email", "addr"}, []string{"email", "post"},
			[]similarity.Op{eq, eq}, paperdata.Yc(), paperdata.Yb()),
		md.MustRelativeKey(card, billing,
			[]string{"LN", "tel", "FN"}, []string{"SN", "phn", "FN"},
			[]similarity.Op{eq, eq, ed}, paperdata.Yc(), paperdata.Yb()),
		md.MustRelativeKey(card, billing,
			[]string{"LN", "addr", "FN"}, []string{"SN", "post", "FN"},
			[]similarity.Op{eq, eq, ed}, paperdata.Yc(), paperdata.Yb()),
	}
}

func matchQualityProbe(nPersons int) (qGiven, qDerived match.Quality) {
	cardS, billingS, sigma := sigma1MDs()
	cardIn, billingIn, truth := gen.CardBilling(gen.CardBillingConfig{
		NPersons: nPersons, Seed: 7,
		AbbrevRate: 0.15, TypoRate: 0.1, AddrDivergeRate: 0.3,
	})
	var truthPairs []match.Pair
	for _, p := range truth {
		truthPairs = append(truthPairs, match.Pair{L: p[0], R: p[1]})
	}
	eq := similarity.Eq()
	ed := similarity.EditOp(0.8)
	given := []*md.MD{
		md.MustRelativeKey(cardS, billingS,
			[]string{"email", "addr"}, []string{"email", "post"},
			[]similarity.Op{eq, eq}, paperdata.Yc(), paperdata.Yb()),
		md.MustRelativeKey(cardS, billingS,
			[]string{"LN", "addr", "FN"}, []string{"SN", "post", "FN"},
			[]similarity.Op{eq, eq, ed}, paperdata.Yc(), paperdata.Yb()),
	}
	run := func(rules []*md.MD) match.Quality {
		matcher := &match.Matcher{
			Left: cardIn, Right: billingIn, Rules: rules,
			TargetL: paperdata.Yc(), TargetR: paperdata.Yb(),
		}
		pairs, _ := matcher.Pairs()
		return match.Evaluate(pairs, truthPairs)
	}
	qGiven = run(given)
	derived, _ := md.DeriveRCKs(sigma, paperdata.Yc(), paperdata.Yb(), md.DeriveOptions{})
	qDerived = run(append(append([]*md.MD(nil), given...), derived...))
	return
}

func cqaProbe() (agree, total int) {
	s := relation.MustSchema("acct",
		relation.Attr("id", relation.KindInt),
		relation.Attr("owner", relation.KindString),
		relation.Attr("balance", relation.KindInt),
	)
	in := relation.NewInstance(s)
	in.MustInsert(relation.Int(1), relation.Str("ann"), relation.Int(100))
	in.MustInsert(relation.Int(1), relation.Str("ann"), relation.Int(250))
	in.MustInsert(relation.Int(2), relation.Str("bob"), relation.Int(80))
	in.MustInsert(relation.Int(3), relation.Str("cat"), relation.Int(10))
	in.MustInsert(relation.Int(3), relation.Str("dan"), relation.Int(10))
	db := relation.NewDatabase()
	db.Add(in)
	dcs, _ := denial.Key(s, []string{"id"})
	probes := []struct {
		pred algebra.Predicate
		out  []string
		v    string
	}{
		{nil, []string{"owner"}, "o"},
		{algebra.AttrConst{Attr: "balance", Op: algebra.OpGe, Const: relation.Int(50)}, []string{"id"}, "i"},
		{nil, []string{"owner", "balance"}, ""},
	}
	varOf := map[string]string{"id": "i", "owner": "o", "balance": "b"}
	for _, p := range probes {
		total++
		rew, err := cqa.CertainByKeyRewriting(in, []string{"id"}, p.pred, p.out)
		if err != nil {
			continue
		}
		var head []algebra.Term
		for _, a := range p.out {
			head = append(head, algebra.V(varOf[a]))
		}
		q := algebra.CQ{Head: head, Atoms: []algebra.Atom{{Rel: "acct",
			Terms: []algebra.Term{algebra.V("i"), algebra.V("o"), algebra.V("b")}}}}
		if p.pred != nil {
			ac := p.pred.(algebra.AttrConst)
			q.Conds = []algebra.Cond{{Left: algebra.V(varOf[ac.Attr]), Op: ac.Op, Right: algebra.C(ac.Const)}}
		}
		enum, _, err := cqa.CertainAnswers(db, dcs, q, 0)
		if err != nil {
			continue
		}
		if sortedKey(rew) == sortedKey(enum) {
			agree++
		}
	}
	return
}

func sortedKey(in *relation.Instance) string {
	out := ""
	for _, t := range algebra.SortedTuples(in) {
		out += t.Key() + ";"
	}
	return out
}

func nucleusProbe(n int) (rows, vars, repairs int, sameAnswers bool) {
	in := gen.Example51(n)
	key := cfd.MustFD(in.Schema(), []string{"A"}, []string{"B"})
	nuc, err := repr.Nucleus(in, []*cfd.CFD{key})
	if err != nil {
		return 0, 0, 0, false
	}
	rows, vars = nuc.Rows(), nuc.Vars()
	db := relation.NewDatabase()
	db.Add(in)
	dcs, _ := denial.Key(in.Schema(), []string{"A"})
	h, _ := repair.BuildHypergraph(db, dcs)
	repairs = h.CountXRepairs(0)
	q := algebra.CQ{
		Head:  []algebra.Term{algebra.V("a")},
		Atoms: []algebra.Atom{{Rel: "r", Terms: []algebra.Term{algebra.V("a"), algebra.V("b")}}},
	}
	fromNuc, err1 := nuc.CertainAnswers(q)
	fromEnum, _, err2 := cqa.CertainAnswers(db, dcs, q, 0)
	sameAnswers = err1 == nil && err2 == nil && sortedKey(fromNuc) == sortedKey(fromEnum)
	return
}

func discoveryProbe(n int) (rules, caught int) {
	clean := gen.Customers(gen.CustomerConfig{N: n, Seed: 21, ErrorRate: 0})
	dirty := gen.Customers(gen.CustomerConfig{N: n, Seed: 21, ErrorRate: 0.05})
	mined := discoverConstantCFDs(clean)
	rules = len(mined)
	for _, r := range mined {
		caught += len(cfd.Detect(dirty, r))
	}
	return
}

// discoverConstantCFDs wraps the discovery package (kept here to localize
// the import in one helper).
func discoverConstantCFDs(in *relation.Instance) []*cfd.CFD {
	return discovery.DiscoverConstantCFDs(in, discovery.Options{MaxLHS: 2, MinSupport: 5})
}

// masterRepairProbe builds a truth/master/dirty triple where the majority
// of one group is corrupted, and compares consensus vs master-guided
// repair accuracy.
func masterRepairProbe() (consRestored, masterRestored, corrupted int, ok bool) {
	s := paperdata.CustomerSchema()
	truth := relation.NewInstance(s)
	streets := []string{"Mayfield Rd", "Crichton St", "High St", "Park Ave"}
	for i := 0; i < 12; i++ {
		truth.MustInsert(
			relation.Int(44), relation.Int(131), relation.Int(int64(1000000+i)),
			relation.Str("Person"), relation.Str(streets[i%4]), relation.Str("EDI"),
			relation.Str("EH"+string(rune('0'+i%4))))
	}
	master := truth.Clone()
	dirty := truth.Clone()
	street := s.MustLookup("street")
	zipPos := s.MustLookup("zip")
	count := 0
	for _, id := range dirty.IDs() {
		tu, _ := dirty.Tuple(id)
		if tu[zipPos].StrVal() == "EH0" && count < 2 {
			dirty.Update(id, street, relation.Str("Wrong Way"))
			count++
		}
	}
	sigma := []*cfd.CFD{paperdata.Phi1(s), paperdata.Phi2(s)}
	key := md.MustRelativeKey(s, s,
		[]string{"phn"}, []string{"phn"},
		[]similarity.Op{similarity.Eq()},
		[]string{"street", "city", "zip"}, []string{"street", "city", "zip"})

	consensus := dirty.Clone()
	if _, err := repair.RepairCFDs(consensus, sigma, repair.URepairOptions{}); err != nil {
		return 0, 0, 0, false
	}
	consRestored, corrupted = repair.RestoredAccuracy(dirty, consensus, truth)

	guided := dirty.Clone()
	if _, err := repair.RepairWithMaster(guided, sigma, master, []*md.MD{key}, repair.URepairOptions{}); err != nil {
		return 0, 0, 0, false
	}
	masterRestored, _ = repair.RestoredAccuracy(dirty, guided, truth)
	return consRestored, masterRestored, corrupted, cfd.SatisfiesAll(guided, sigma)
}

// mixedDetectProbe measures one warm mixed-class engine batch against
// the per-class legacy detectors on an order/book/CD database, and
// verifies the engine's per-class streams are byte-identical to them.
func mixedDetectProbe(n int) (engine, legacy time.Duration, identical bool) {
	db := gen.Orders(gen.OrdersConfig{Books: n / 4, CDs: n / 4, Orders: n, Seed: 17, ViolationRate: 0.05})
	order := db.MustInstance("order")
	s := order.Schema()
	cfds := []*cfd.CFD{
		cfd.MustFD(s, []string{"title"}, []string{"price"}),
		cfd.MustFD(s, []string{"title", "price", "type"}, []string{"asin"}),
	}
	phi4, phi5, phi6 := figure4CINDs()
	cinds := []*cind.CIND{phi4, phi5, phi6}
	ecfds := []*ecfd.ECFD{
		ecfd.MustNew(s, []string{"title"}, []string{"type"},
			ecfd.Row{LHS: []ecfd.Cell{ecfd.Any()},
				RHS: []ecfd.Cell{ecfd.In(relation.Str("book"), relation.Str("CD"))}}),
	}
	var cs []detect.Constraint
	cs = append(cs, detect.WrapCFDs(cfds)...)
	cs = append(cs, detect.WrapCINDs(cinds)...)
	cs = append(cs, detect.WrapECFDs(ecfds)...)

	e := detect.New(1)
	e.DetectBatch(db, cs) // warm the DBSnapshot and shared indexes
	start := time.Now()
	got := e.DetectBatch(db, cs)
	engine = time.Since(start)

	start = time.Now()
	wantCFD := cfd.DetectAll(order, cfds)
	wantCIND := cind.DetectAll(db, cinds)
	wantECFD := ecfd.DetectAll(order, ecfds)
	legacy = time.Since(start)

	gotCFD, gotCIND, gotECFD := detect.SplitViolations(got)
	identical = len(gotCFD) == len(wantCFD) && len(gotCIND) == len(wantCIND) && len(gotECFD) == len(wantECFD)
	if identical {
		for i := range gotCFD {
			if gotCFD[i] != wantCFD[i] {
				identical = false
				break
			}
		}
		for i := range gotCIND {
			if gotCIND[i] != wantCIND[i] {
				identical = false
				break
			}
		}
		for i := range gotECFD {
			if gotECFD[i] != wantECFD[i] {
				identical = false
				break
			}
		}
	}
	return engine, legacy, identical
}

// monitorIncrProbe measures the steady-state monitoring cost: `batches`
// batches of `batchSize` street updates against an n-tuple dirty
// customer instance under 8 CFDs, once through a stateful
// detect.Monitor (incremental snapshot/index maintenance) and once
// through the invalidate-and-rebuild discipline (fresh snapshot + fresh
// group indexes + DetectTouched per batch). Exactness compares the
// monitor's maintained violation set against a fresh full DetectAll
// after every batch.
func monitorIncrProbe(n, batches, batchSize int) (monitor, rebuild time.Duration, exact bool) {
	mkSigma := func(s *relation.Schema) []*cfd.CFD {
		ccs := []int64{44, 1, 31, 49, 33, 39, 34, 46}
		out := make([]*cfd.CFD, 0, 8)
		for i := 0; i < 8; i++ {
			cc := cfd.Const(relation.Int(ccs[i]))
			if i%2 == 0 {
				out = append(out, cfd.MustNew(s, []string{"CC", "zip"}, []string{"street"},
					cfd.Row([]cfd.Cell{cc, cfd.Any()}, []cfd.Cell{cfd.Any()})))
			} else {
				out = append(out, cfd.MustNew(s, []string{"CC", "AC"}, []string{"city"},
					cfd.Row([]cfd.Cell{cc, cfd.Any()}, []cfd.Cell{cfd.Any()})))
			}
		}
		return out
	}
	mkOps := func(in *relation.Instance, round int) []detect.Op {
		street := in.Schema().MustLookup("street")
		ids := in.IDs()
		ops := make([]detect.Op, batchSize)
		for i := range ops {
			id := ids[(round*7919+i*104729)%len(ids)]
			ops[i] = detect.Update(id, street, relation.Str(fmt.Sprintf("St %d-%d", round, i)))
		}
		return ops
	}

	// Monitor path.
	inM := gen.Customers(gen.CustomerConfig{N: n, Seed: 17, ErrorRate: 0.05})
	sigma := mkSigma(inM.Schema())
	m := detect.NewMonitor(detect.New(1), inM, sigma)
	checker := detect.New(1)
	exact = true
	for r := 0; r < batches; r++ {
		ops := mkOps(inM, r)
		start := time.Now()
		if _, _, err := m.Apply(ops); err != nil {
			return 0, 0, false
		}
		monitor += time.Since(start)
		got := m.Violations()
		// Oracle on an independently frozen snapshot: DetectAll(inM)
		// would resolve SnapshotOf and re-use the monitor's own
		// incrementally-derived state, making the check circular.
		want := checker.DetectAllOn(relation.NewSnapshot(inM), sigma)
		if len(got) != len(want) {
			exact = false
		} else {
			for i := range got {
				if got[i] != want[i] {
					exact = false
					break
				}
			}
		}
	}

	// Invalidate-and-rebuild path: same updates on a twin instance; each
	// batch pays a fresh freeze + intern + index build before the
	// touched-group scan (PR 2's behavior after any mutation).
	inR := gen.Customers(gen.CustomerConfig{N: n, Seed: 17, ErrorRate: 0.05})
	e := detect.New(1)
	for r := 0; r < batches; r++ {
		ops := mkOps(inR, r)
		touched := make([]relation.TID, 0, len(ops))
		for _, op := range ops {
			if err := inR.Update(op.TID, op.Pos, op.Val); err != nil {
				return 0, 0, false
			}
			touched = append(touched, op.TID)
		}
		start := time.Now()
		snap := relation.NewSnapshot(inR) // invalidation: nothing carried over
		e.DetectTouchedOn(snap, sigma, touched)
		rebuild += time.Since(start)
	}
	return monitor, rebuild, exact
}

// driftDetectProbe is the E30 acceptance probe: drive the synthetic
// drift workload (internal/gen) through an observability-enabled
// service and read the change points back off the trend tracker.
// latency is detection seq minus first-post-change seq on the stepped
// stream; ctrlCPs counts change points (false positives) on a
// stationary control stream of the same length.
func driftDetectProbe() (latency int64, conf float64, ctrlCPs int, err error) {
	run := func(cfg drift.Config) ([]obs.ChangePoint, error) {
		in := drift.Customers(200, 1)
		db := relation.NewDatabase()
		db.Add(in)
		s := in.Schema()
		svc, err := serve.New(serve.Config{
			DB:          db,
			Constraints: detect.WrapCFDs([]*cfd.CFD{paperdata.Phi1(s), paperdata.Phi2(s)}),
			Obs:         &serve.ObsConfig{},
		})
		if err != nil {
			return nil, err
		}
		ctx := context.Background()
		defer svc.Stop(ctx)
		for _, ops := range drift.Batches(cfg) {
			if _, err := svc.Submit(ctx, ops); err != nil {
				return nil, err
			}
		}
		var cps []obs.ChangePoint
		for _, tr := range svc.Trends(0) {
			cps = append(cps, tr.ChangePoints...)
		}
		return cps, nil
	}

	step := drift.Config{
		Seed: 7, Batches: 40, OpsPerBatch: 25,
		BaseRate: 0.1, ChangeAt: 20, Factor: 8,
	}
	cps, err := run(step)
	if err != nil {
		return 0, 0, 0, err
	}
	if len(cps) != 1 {
		return 0, 0, 0, fmt.Errorf("stepped stream: %d change points, want exactly 1", len(cps))
	}
	const changeSeq = 21 // ChangeAt is 0-based; seed state is seq 0
	latency = int64(cps[0].DetectedSeq) - changeSeq
	conf = cps[0].Confidence

	control := step
	control.Seed, control.ChangeAt = 19, step.Batches // never shifts
	ctrl, err := run(control)
	if err != nil {
		return 0, 0, 0, err
	}
	return latency, conf, len(ctrl), nil
}
