// Command dqmatch runs the Section 3 object-identification pipeline on
// card/billing CSV files (in the schemas of dqgen -kind cardbilling):
// it derives relative candidate keys from the Example 3.1 MDs and prints
// the matched pairs and clusters.
//
// Usage:
//
//	dqmatch -card card.csv -billing billing.csv [-block]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/match"
	"repro/internal/md"
	"repro/internal/paperdata"
	"repro/internal/relation"
	"repro/internal/similarity"
)

func main() {
	cardPath := flag.String("card", "", "card CSV")
	billingPath := flag.String("billing", "", "billing CSV")
	rulesPath := flag.String("rules", "", "MD rule file (md text format); default: the Example 3.1 MDs")
	block := flag.Bool("block", false, "apply soundex blocking on LN/SN")
	showPairs := flag.Bool("pairs", false, "print every matched pair")
	flag.Parse()
	if *cardPath == "" || *billingPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	card := load(*cardPath, "card")
	billing := load(*billingPath, "billing")

	var sigma []*md.MD
	if *rulesPath != "" {
		rf, err := os.Open(*rulesPath)
		if err != nil {
			log.Fatal(err)
		}
		sigma, err = md.Parse(rf, map[string]*relation.Schema{
			"card": card.Schema(), "billing": billing.Schema(),
		})
		rf.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("loaded %d MDs from %s\n", len(sigma), *rulesPath)
	} else {
		eq := similarity.Eq()
		m := similarity.MatchOp()
		ed := similarity.EditOp(0.8)
		sigma = []*md.MD{
			md.MustNew(card.Schema(), billing.Schema(),
				[]md.PremiseSpec{{Left: "tel", Right: "phn", Op: eq}},
				[]string{"addr"}, []string{"post"}, m),
			md.MustNew(card.Schema(), billing.Schema(),
				[]md.PremiseSpec{{Left: "email", Right: "email", Op: m}},
				[]string{"FN", "LN"}, []string{"FN", "SN"}, m),
			md.MustNew(card.Schema(), billing.Schema(),
				[]md.PremiseSpec{
					{Left: "LN", Right: "SN", Op: m},
					{Left: "addr", Right: "post", Op: m},
					{Left: "FN", Right: "FN", Op: ed}},
				paperdata.Yc(), paperdata.Yb(), m),
		}
	}
	rcks, err := md.DeriveRCKs(sigma, paperdata.Yc(), paperdata.Yb(), md.DeriveOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("derived %d relative candidate keys:\n", len(rcks))
	for _, k := range rcks {
		fmt.Println("  ", k)
	}

	matcher := &match.Matcher{
		Left: card, Right: billing,
		Rules:   rcks,
		TargetL: paperdata.Yc(), TargetR: paperdata.Yb(),
	}
	if *block {
		blocker, err := match.SoundexBlocker(card.Schema(), billing.Schema(), "LN", "SN")
		if err != nil {
			log.Fatal(err)
		}
		matcher.Blocker = blocker
	}
	pairs, err := matcher.Pairs()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmatched pairs: %d\n", len(pairs))
	if *showPairs {
		for _, p := range pairs {
			ct, _ := card.Tuple(p.L)
			bt, _ := billing.Tuple(p.R)
			fmt.Printf("  card#%d %v ⇋ billing#%d %v\n", p.L, ct, p.R, bt)
		}
	}
	clusters := match.Cluster(pairs)
	fmt.Printf("clusters: %d\n", len(clusters))
}

func load(path, name string) *relation.Instance {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	in, err := relation.ReadCSV(f, name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %s: %d tuples\n", name, in.Len())
	return in
}
