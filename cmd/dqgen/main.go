// Command dqgen generates the synthetic workloads of the benchmark
// harness as CSV files: customer data with injected errors (Figure 1/2
// experiments), order/book/CD databases (Figure 3/4), card/billing source
// pairs (Section 3), and the Example 5.1 exponential-repair family.
//
// Usage:
//
//	dqgen -kind customer -n 1000 -rate 0.05 -seed 1 -out data/
//	dqgen -kind orders -n 500 -rate 0.1 -out data/
//	dqgen -kind cardbilling -n 300 -out data/
//	dqgen -kind example51 -n 8 -out data/
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/gen"
	"repro/internal/relation"
)

func main() {
	kind := flag.String("kind", "customer", "workload: customer | orders | cardbilling | example51")
	n := flag.Int("n", 1000, "size parameter (tuples, persons, or Example 5.1's n)")
	rate := flag.Float64("rate", 0.05, "error/violation rate")
	seed := flag.Int64("seed", 1, "RNG seed")
	out := flag.String("out", ".", "output directory")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	write := func(name string, in *relation.Instance) {
		path := filepath.Join(*out, name+".csv")
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := relation.WriteCSV(f, in); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d tuples)\n", path, in.Len())
	}

	switch *kind {
	case "customer":
		write("customer", gen.Customers(gen.CustomerConfig{N: *n, Seed: *seed, ErrorRate: *rate}))
	case "orders":
		db := gen.Orders(gen.OrdersConfig{Books: *n / 4, CDs: *n / 4, Orders: *n, Seed: *seed, ViolationRate: *rate})
		for _, name := range db.Names() {
			in, _ := db.Instance(name)
			write(name, in)
		}
	case "cardbilling":
		card, billing, truth := gen.CardBilling(gen.CardBillingConfig{
			NPersons: *n, Seed: *seed,
			AbbrevRate: *rate, TypoRate: *rate, AddrDivergeRate: *rate,
		})
		write("card", card)
		write("billing", billing)
		fmt.Printf("ground truth: %d matching pairs\n", len(truth))
	case "example51":
		write("example51", gen.Example51(*n))
	default:
		log.Fatalf("unknown kind %q", *kind)
	}
}
