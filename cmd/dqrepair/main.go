// Command dqrepair loads a CSV relation and a CFD rule file, repairs the
// data with the Section 5.1 cost-based heuristic, and writes the repaired
// relation back out.
//
// Usage:
//
//	dqrepair -data customer=dirty.csv -rules rules.cfd -out clean.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/cfd"
	"repro/internal/relation"
	"repro/internal/repair"
)

func main() {
	dataSpec := flag.String("data", "", "relation=path.csv")
	rulesPath := flag.String("rules", "", "CFD rule file")
	out := flag.String("out", "", "output CSV path (default: stdout)")
	verbose := flag.Bool("v", false, "print each change")
	flag.Parse()
	name, path, ok := strings.Cut(*dataSpec, "=")
	if !ok || *rulesPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	in, err := relation.ReadCSV(f, name)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	rf, err := os.Open(*rulesPath)
	if err != nil {
		log.Fatal(err)
	}
	rules, err := cfd.Parse(rf, map[string]*relation.Schema{name: in.Schema()})
	rf.Close()
	if err != nil {
		log.Fatal(err)
	}

	before := cfd.DetectAll(in, rules)
	fmt.Fprintf(os.Stderr, "%d tuples, %d violations before repair\n", in.Len(), len(before))
	report, err := repair.RepairCFDs(in, rules, repair.URepairOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintln(os.Stderr, report)
	if *verbose {
		for _, ch := range report.Changes {
			fmt.Fprintf(os.Stderr, "  %v\n", ch)
		}
	}
	if !cfd.SatisfiesAll(in, rules) {
		log.Fatal("internal error: repair left violations")
	}

	w := os.Stdout
	if *out != "" {
		w, err = os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer w.Close()
	}
	if err := relation.WriteCSV(w, in); err != nil {
		log.Fatal(err)
	}
}
