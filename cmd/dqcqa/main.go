// Command dqcqa answers queries consistently over an inconsistent CSV
// relation under a primary key (Section 5.2 of the paper): it returns the
// certain answers — tuples present in the answer over every repair —
// without editing the data, via the PTIME key rewriting, and optionally
// cross-checks by exhaustive X-repair enumeration. It also prints scalar
// aggregation ranges.
//
// Usage:
//
//	dqcqa -data acct=accounts.csv -key id -out owner,balance
//	dqcqa -data acct=accounts.csv -key id -out owner -where 'balance>=100'
//	dqcqa -data acct=accounts.csv -key id -agg sum:balance [-enum]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/algebra"
	"repro/internal/cqa"
	"repro/internal/denial"
	"repro/internal/relation"
)

func main() {
	dataSpec := flag.String("data", "", "relation=path.csv")
	keySpec := flag.String("key", "", "comma-separated primary key attributes")
	outSpec := flag.String("out", "", "comma-separated output attributes")
	where := flag.String("where", "", "selection 'attr OP value' with OP in =,!=,<,<=,>,>= (optional)")
	aggSpec := flag.String("agg", "", "aggregate 'kind:attr' with kind in count,sum,min,max (optional)")
	enum := flag.Bool("enum", false, "cross-check with exhaustive repair enumeration")
	maxRepairs := flag.Int("max-repairs", 10000, "repair-enumeration cap")
	flag.Parse()

	name, path, ok := strings.Cut(*dataSpec, "=")
	if !ok || *keySpec == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	in, err := relation.ReadCSV(f, name)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	keyAttrs := splitList(*keySpec)
	db := relation.NewDatabase()
	db.Add(in)
	dcs, err := denial.Key(in.Schema(), keyAttrs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %s: %d tuples, key (%s)\n", name, in.Len(), strings.Join(keyAttrs, ", "))
	if conflicts, err := denial.DetectAll(db, dcs, 0); err == nil {
		fmt.Printf("key conflicts: %d\n", len(conflicts))
	}

	var pred algebra.Predicate
	if *where != "" {
		pred, err = parseWhere(in.Schema(), *where)
		if err != nil {
			log.Fatal(err)
		}
	}

	if *aggSpec != "" {
		kindName, attr, ok := strings.Cut(*aggSpec, ":")
		if !ok {
			log.Fatalf("want -agg kind:attr, got %q", *aggSpec)
		}
		var kind cqa.AggKind
		switch strings.ToLower(kindName) {
		case "count":
			kind = cqa.Count
		case "sum":
			kind = cqa.Sum
		case "min":
			kind = cqa.Min
		case "max":
			kind = cqa.Max
		default:
			log.Fatalf("unknown aggregate %q", kindName)
		}
		r, err := cqa.AggregateRange(db, dcs, name, attr, kind, *maxRepairs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s(%s) ∈ [%g, %g] over all repairs\n", kind, attr, r.GLB, r.LUB)
		if kind == cqa.Sum {
			cf, err := cqa.SumRangeUnderKey(in, keyAttrs, attr)
			if err == nil {
				fmt.Printf("closed form agrees: [%g, %g]\n", cf.GLB, cf.LUB)
			}
		}
		return
	}

	if *outSpec == "" {
		log.Fatal("need -out or -agg")
	}
	outAttrs := splitList(*outSpec)
	ans, err := cqa.CertainByKeyRewriting(in, keyAttrs, pred, outAttrs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("certain answers (%d rows):\n", ans.Len())
	for _, t := range algebra.SortedTuples(ans) {
		fmt.Printf("  %v\n", t)
	}

	if *enum {
		q, err := buildCQ(in.Schema(), name, pred, outAttrs)
		if err != nil {
			log.Fatal(err)
		}
		enumAns, nRepairs, err := cqa.CertainAnswers(db, dcs, q, *maxRepairs)
		if err != nil {
			log.Fatal(err)
		}
		agree := instKey(enumAns) == instKey(ans)
		fmt.Printf("enumeration over %d repairs agrees: %v\n", nRepairs, agree)
		if !agree {
			os.Exit(1)
		}
	}
}

func splitList(s string) []string {
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if t := strings.TrimSpace(p); t != "" {
			out = append(out, t)
		}
	}
	return out
}

// parseWhere parses 'attr OP value'.
func parseWhere(s *relation.Schema, expr string) (algebra.Predicate, error) {
	for _, opTok := range []string{"<=", ">=", "!=", "<>", "=", "<", ">"} {
		if l, r, ok := strings.Cut(expr, opTok); ok {
			attr := strings.TrimSpace(l)
			pos, found := s.Lookup(attr)
			if !found {
				return nil, fmt.Errorf("unknown attribute %q", attr)
			}
			op, err := algebra.ParseCmpOp(opTok)
			if err != nil {
				return nil, err
			}
			v, err := relation.ParseValue(s.Attr(pos).Domain.Kind(), strings.TrimSpace(r))
			if err != nil {
				return nil, err
			}
			return algebra.AttrConst{Attr: attr, Op: op, Const: v}, nil
		}
	}
	return nil, fmt.Errorf("no comparison operator in %q", expr)
}

// buildCQ assembles the equivalent conjunctive query for enumeration.
func buildCQ(s *relation.Schema, rel string, pred algebra.Predicate, outAttrs []string) (algebra.CQ, error) {
	terms := make([]algebra.Term, s.Arity())
	varOf := make(map[string]string, s.Arity())
	for i, a := range s.Attrs() {
		v := fmt.Sprintf("v%d", i)
		varOf[a.Name] = v
		terms[i] = algebra.V(v)
	}
	var head []algebra.Term
	for _, a := range outAttrs {
		v, ok := varOf[a]
		if !ok {
			return algebra.CQ{}, fmt.Errorf("unknown output attribute %q", a)
		}
		head = append(head, algebra.V(v))
	}
	q := algebra.CQ{Head: head, Atoms: []algebra.Atom{{Rel: rel, Terms: terms}}, OutAttrs: outAttrs}
	if pred != nil {
		ac, ok := pred.(algebra.AttrConst)
		if !ok {
			return algebra.CQ{}, fmt.Errorf("only attr-constant selections supported for enumeration")
		}
		q.Conds = []algebra.Cond{{Left: algebra.V(varOf[ac.Attr]), Op: ac.Op, Right: algebra.C(ac.Const)}}
	}
	return q, nil
}

func instKey(in *relation.Instance) string {
	out := ""
	for _, t := range algebra.SortedTuples(in) {
		out += t.Key() + ";"
	}
	return out
}
