package repro_test

// Benchmarks for the internal/detect engine (DESIGN.md E22), four modes:
//
//	seq       legacy cfd.DetectAll — one string-keyed index build per CFD
//	shared    engine, 1 worker, string-keyed indexes shared per LHS group
//	parallel  engine, one worker per CPU, string-keyed indexes
//	codec     engine, 1 worker, columnar snapshot + CodeIndex (the
//	          default engine path); the version-keyed snapshot cache is
//	          warm, so this is the steady-state serving cost
//	codeccold codec with the cache defeated every iteration — the cost
//	          of freezing, interning and indexing a batch from scratch
//
// on gen-produced dirty customer instances of 10k–500k tuples and 1–64
// CFDs drawn from two LHS position sets. Every mode reports allocations;
// the speedup and allocs/op drop claimed in EXPERIMENTS.md are measured
// here, not asserted:
//
//	go test -run '^$' -bench EngineDetectAll -benchmem .
//
// The 500k-tuple tier is skipped under -short so the CI smoke stays fast.

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/cfd"
	"repro/internal/detect"
	"repro/internal/gen"
	"repro/internal/relation"
)

// engineBenchSigma builds k CFDs over the customer schema drawn from two
// LHS position sets — [CC, zip] → street and [CC, AC] → city — with
// rotating country-code pattern constants, so an engine plan of k CFDs
// needs only 2 index builds where the sequential path needs k.
func engineBenchSigma(s *relation.Schema, k int) []*cfd.CFD {
	ccs := []int64{44, 1, 31, 49, 33, 39, 34, 46}
	out := make([]*cfd.CFD, 0, k)
	for i := 0; i < k; i++ {
		cc := cfd.Const(relation.Int(ccs[i%len(ccs)]))
		if i%2 == 0 {
			out = append(out, cfd.MustNew(s, []string{"CC", "zip"}, []string{"street"},
				cfd.Row([]cfd.Cell{cc, cfd.Any()}, []cfd.Cell{cfd.Any()})))
		} else {
			out = append(out, cfd.MustNew(s, []string{"CC", "AC"}, []string{"city"},
				cfd.Row([]cfd.Cell{cc, cfd.Any()}, []cfd.Cell{cfd.Any()})))
		}
	}
	return out
}

func BenchmarkEngineDetectAll(b *testing.B) {
	for _, n := range []int{10000, 100000, 500000} {
		if n > 100000 && testing.Short() {
			continue
		}
		in := gen.Customers(gen.CustomerConfig{N: n, Seed: 17, ErrorRate: 0.05})
		s := in.Schema()
		for _, k := range []int{1, 8, 64} {
			sigma := engineBenchSigma(s, k)
			b.Run(fmt.Sprintf("n=%d/cfds=%d/seq", n, k), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					cfd.DetectAll(in, sigma)
				}
			})
			b.Run(fmt.Sprintf("n=%d/cfds=%d/shared", n, k), func(b *testing.B) {
				b.ReportAllocs()
				e := detect.NewLegacy(1)
				for i := 0; i < b.N; i++ {
					e.DetectAll(in, sigma)
				}
			})
			b.Run(fmt.Sprintf("n=%d/cfds=%d/parallel", n, k), func(b *testing.B) {
				b.ReportAllocs()
				e := detect.NewLegacy(runtime.GOMAXPROCS(0))
				for i := 0; i < b.N; i++ {
					e.DetectAll(in, sigma)
				}
			})
			b.Run(fmt.Sprintf("n=%d/cfds=%d/codec", n, k), func(b *testing.B) {
				b.ReportAllocs()
				e := detect.New(1)
				e.DetectAll(in, sigma) // warm the snapshot cache: this mode measures steady state
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					e.DetectAll(in, sigma)
				}
			})
			// codeccold defeats the version-keyed snapshot cache with a
			// no-op Update before each run: the cost of freezing the
			// snapshot and interning/indexing from scratch every batch.
			b.Run(fmt.Sprintf("n=%d/cfds=%d/codeccold", n, k), func(b *testing.B) {
				b.ReportAllocs()
				e := detect.New(1)
				t0, _ := in.Tuple(0)
				v := t0[0]
				for i := 0; i < b.N; i++ {
					in.Update(0, 0, v)
					e.DetectAll(in, sigma)
				}
			})
		}
	}
}

// incrOps builds one deterministic update batch for the incremental
// benchmarks: half the updates rewrite street (an RHS attribute — group
// structure untouched, the best case for index splicing), half rewrite
// zip (an LHS attribute of the [CC, zip] rules — tuples move between
// groups). Values rotate through bounded pools so dictionaries do not
// grow without bound across benchmark iterations.
func incrOps(in *relation.Instance, round, size int) []detect.Op {
	s := in.Schema()
	street, zip := s.MustLookup("street"), s.MustLookup("zip")
	ids := in.IDs()
	ops := make([]detect.Op, size)
	for i := range ops {
		id := ids[(round*7919+i*104729)%len(ids)]
		if i%2 == 0 {
			ops[i] = detect.Update(id, street, relation.Str(fmt.Sprintf("St %d", (round+i)%997)))
		} else {
			ops[i] = detect.Update(id, zip, relation.Str(fmt.Sprintf("EH%d %dLE", (round+i)%25+1, i%10)))
		}
	}
	return ops
}

// applyOps applies a batch directly to the instance (the non-monitor
// modes) and returns the touched TIDs.
func applyOps(b *testing.B, in *relation.Instance, ops []detect.Op) []relation.TID {
	touched := make([]relation.TID, len(ops))
	for i, op := range ops {
		if err := in.Update(op.TID, op.Pos, op.Val); err != nil {
			b.Fatal(err)
		}
		touched[i] = op.TID
	}
	return touched
}

// BenchmarkMonitorIncr measures the steady-state cost of absorbing one
// update batch, in three disciplines (DESIGN.md E23):
//
//	monitor  stateful detect.Monitor: snapshot and group indexes caught
//	         up via the changelog (structural sharing + O(|Δ|) intern),
//	         DetectTouched diffed on the touched groups only
//	rebuild  invalidate-and-rebuild (PR 2's behavior after a mutation):
//	         fresh snapshot freeze + column interning + index builds,
//	         then DetectTouched on the batch
//	full     fresh snapshot plus a full DetectAll — the batch-detection
//	         baseline with no incremental machinery at all
//
// across 100k/500k tuples × batch sizes {1, 10, 1000} × {1, 8, 64}
// CFDs. The 500k tier is skipped under -short.
func BenchmarkMonitorIncr(b *testing.B) {
	for _, n := range []int{100000, 500000} {
		if n > 100000 && testing.Short() {
			continue
		}
		s := gen.Customers(gen.CustomerConfig{N: 1, Seed: 1, ErrorRate: 0}).Schema()
		for _, k := range []int{1, 8, 64} {
			sigma := engineBenchSigma(s, k)
			for _, bs := range []int{1, 10, 1000} {
				b.Run(fmt.Sprintf("n=%d/cfds=%d/batch=%d/monitor", n, k, bs), func(b *testing.B) {
					b.ReportAllocs()
					in := gen.Customers(gen.CustomerConfig{N: n, Seed: 17, ErrorRate: 0.05})
					m := detect.NewMonitor(detect.New(1), in, sigma)
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if _, _, err := m.Apply(incrOps(in, i, bs)); err != nil {
							b.Fatal(err)
						}
					}
				})
				b.Run(fmt.Sprintf("n=%d/cfds=%d/batch=%d/rebuild", n, k, bs), func(b *testing.B) {
					b.ReportAllocs()
					in := gen.Customers(gen.CustomerConfig{N: n, Seed: 17, ErrorRate: 0.05})
					e := detect.New(1)
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						touched := applyOps(b, in, incrOps(in, i, bs))
						snap := relation.NewSnapshot(in) // nothing carried over
						e.DetectTouchedOn(snap, sigma, touched)
					}
				})
				b.Run(fmt.Sprintf("n=%d/cfds=%d/batch=%d/full", n, k, bs), func(b *testing.B) {
					b.ReportAllocs()
					in := gen.Customers(gen.CustomerConfig{N: n, Seed: 17, ErrorRate: 0.05})
					e := detect.New(1)
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						applyOps(b, in, incrOps(in, i, bs))
						e.DetectAllOn(relation.NewSnapshot(in), sigma)
					}
				})
			}
		}
	}
}

// BenchmarkEngineSatisfiesAll measures the early-cancel path: the dirty
// instance violates the very first rule, so the engine's cancellation
// skips almost the whole batch while the legacy loop at least pays one
// full index build and scan per preceding clean rule.
func BenchmarkEngineSatisfiesAll(b *testing.B) {
	n := 100000
	if testing.Short() {
		n = 10000
	}
	in := gen.Customers(gen.CustomerConfig{N: n, Seed: 17, ErrorRate: 0.05})
	sigma := engineBenchSigma(in.Schema(), 16)
	b.Run("legacy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cfd.SatisfiesAll(in, sigma)
		}
	})
	b.Run("engine", func(b *testing.B) {
		b.ReportAllocs()
		e := detect.NewLegacy(0)
		for i := 0; i < b.N; i++ {
			e.SatisfiesAll(in, sigma)
		}
	})
	b.Run("codec", func(b *testing.B) {
		b.ReportAllocs()
		e := detect.New(0)
		e.SatisfiesAll(in, sigma) // warm the snapshot cache: this mode measures steady state
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.SatisfiesAll(in, sigma)
		}
	})
}
