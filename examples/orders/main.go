// Command orders reproduces the Section 2.2 source-to-target scenario:
// the Figure 3 order/book/CD database, the Figure 4 CINDs, violation
// detection (t9's missing audio edition), the always-consistent witness
// construction of Theorem 4.1, chase-based implication, and repair by
// insertion.
package main

import (
	"fmt"
	"log"

	"repro/internal/cind"
	"repro/internal/paperdata"
	"repro/internal/relation"
	"repro/internal/repair"
)

func main() {
	db := paperdata.Figure3()
	order := paperdata.OrderSchema()
	book := paperdata.BookSchema()
	cdS := paperdata.CDSchema()

	phi4 := cind.MustNew(order, book,
		[]string{"title", "price"}, []string{"title", "price"},
		[]string{"type"}, nil,
		cind.PatternRow{XpVals: []relation.Value{relation.Str("book")}})
	phi5 := cind.MustNew(order, cdS,
		[]string{"title", "price"}, []string{"album", "price"},
		[]string{"type"}, nil,
		cind.PatternRow{XpVals: []relation.Value{relation.Str("CD")}})
	phi6 := cind.MustNew(cdS, book,
		[]string{"album", "price"}, []string{"title", "price"},
		[]string{"genre"}, []string{"format"},
		cind.PatternRow{
			XpVals: []relation.Value{relation.Str("a-book")},
			YpVals: []relation.Value{relation.Str("audio")},
		})
	sigma := []*cind.CIND{phi4, phi5, phi6}

	fmt.Println("=== Figure 4 CINDs over the Figure 3 database ===")
	for _, c := range sigma {
		fmt.Printf("%v\n  satisfied: %v\n", c, cind.Satisfies(db, c))
	}
	fmt.Println("\nviolations:")
	for _, v := range cind.DetectAll(db, sigma) {
		fmt.Println("  ", v)
	}

	fmt.Println("\n=== Theorem 4.1: CIND sets are always consistent ===")
	witness, err := cind.BuildWitness(sigma, "", 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("witness database with %d tuples satisfies all CINDs: %v\n",
		witness.Size(), cind.SatisfiesAll(witness, sigma))

	fmt.Println("\n=== Implication via the chase ===")
	proj := cind.MustNew(order, book, []string{"title"}, []string{"title"},
		[]string{"type"}, nil,
		cind.PatternRow{XpVals: []relation.Value{relation.Str("book")}})
	fmt.Printf("ϕ4 ⊨ order[title; type=book] ⊆ book[title]: %v\n",
		cind.Implies([]*cind.CIND{phi4}, proj))

	fmt.Println("\n=== Repair by insertion (the demanded audio edition) ===")
	n, err := repair.RepairCINDs(db, sigma, repair.InsertDemanded, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inserted %d tuple(s); all satisfied: %v\n", n, cind.SatisfiesAll(db, sigma))
	fmt.Println("\nbook relation after repair:")
	fmt.Print(db.MustInstance("book"))
}
