// Command cqa demonstrates the Section 5.2/5.3 side of the paper:
// consistent query answering over an inconsistent account database
// (certain answers by repair enumeration and by PTIME key rewriting),
// scalar aggregation ranges, and the condensed nucleus representation of
// all repairs including its exponential space savings on the Example 5.1
// family.
package main

import (
	"fmt"
	"log"

	"repro/internal/algebra"
	"repro/internal/cfd"
	"repro/internal/cqa"
	"repro/internal/denial"
	"repro/internal/gen"
	"repro/internal/relation"
	"repro/internal/repr"
)

func main() {
	s := relation.MustSchema("acct",
		relation.Attr("id", relation.KindInt),
		relation.Attr("owner", relation.KindString),
		relation.Attr("balance", relation.KindInt),
	)
	in := relation.NewInstance(s)
	in.MustInsert(relation.Int(1), relation.Str("ann"), relation.Int(100))
	in.MustInsert(relation.Int(1), relation.Str("ann"), relation.Int(250))
	in.MustInsert(relation.Int(2), relation.Str("bob"), relation.Int(80))
	in.MustInsert(relation.Int(3), relation.Str("cat"), relation.Int(10))
	in.MustInsert(relation.Int(3), relation.Str("dan"), relation.Int(10))
	db := relation.NewDatabase()
	db.Add(in)
	dcs, err := denial.Key(s, []string{"id"})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== The inconsistent account database ===")
	fmt.Print(in)
	fmt.Println("key: id")

	fmt.Println("\n=== Certain answers (Section 5.2) ===")
	q := algebra.CQ{
		Head:  []algebra.Term{algebra.V("o")},
		Atoms: []algebra.Atom{{Rel: "acct", Terms: []algebra.Term{algebra.V("i"), algebra.V("o"), algebra.V("b")}}},
	}
	ans, n, err := cqa.CertainAnswers(db, dcs, q, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query: %v\nrepairs enumerated: %d\ncertain owners:\n", q, n)
	for _, t := range ans.Tuples() {
		fmt.Println("  ", t)
	}

	rew, err := cqa.CertainByKeyRewriting(in, []string{"id"}, nil, []string{"owner"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PTIME rewriting agrees: %d rows\n", rew.Len())

	fmt.Println("\n=== Scalar aggregation ranges ===")
	for _, kind := range []cqa.AggKind{cqa.Sum, cqa.Min, cqa.Max, cqa.Count} {
		r, err := cqa.AggregateRange(db, dcs, "acct", "balance", kind, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s(balance) ∈ [%g, %g]\n", kind, r.GLB, r.LUB)
	}

	fmt.Println("\n=== Condensed representation (Section 5.3) ===")
	key := cfd.MustFD(s, []string{"id"}, []string{"owner", "balance"})
	nuc, err := repr.Nucleus(in, []*cfd.CFD{key})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(nuc)

	fmt.Println("\n=== Example 5.1: exponential repairs, linear nucleus ===")
	for _, k := range []int{4, 8, 12} {
		inst := gen.Example51(k)
		fdKey := cfd.MustFD(inst.Schema(), []string{"A"}, []string{"B"})
		nk, err := repr.Nucleus(inst, []*cfd.CFD{fdKey})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("n=%2d: 2^%d = %d repairs vs nucleus of %d rows / %d vars\n",
			k, k, 1<<k, nk.Rows(), nk.Vars())
	}
}
