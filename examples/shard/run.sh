#!/usr/bin/env bash
# examples/shard: the monitoring service, hash-partitioned.
#
# Same data, rules and update log as examples/serve, but dqserve runs
# with -shards 4 -shard-key customer=CC: the customer instance is hash-
# partitioned by country code across four per-shard monitors, and every
# answer (violations, deltas, stream events) must come back identical
# to the flat service — scatter-gather detection is an implementation
# detail, not a semantics change. What IS new is the /stats shards
# section: per-shard tuple and violation counts.
#
#   ./run.sh            # needs go and curl on PATH
#   PORT=9090 ./run.sh  # pick a port
set -euo pipefail
cd "$(dirname "$0")"

PORT="${PORT:-8080}"
BASE="http://127.0.0.1:$PORT"

echo "== building dqserve"
go build -o dqserve ../../cmd/dqserve

echo "== starting dqserve on :$PORT with 4 shards keyed on customer CC"
./dqserve -addr ":$PORT" -data customer=customer.csv -cfds rules.cfd \
  -shards 4 -shard-key customer=CC &
SERVER=$!
trap 'kill "$SERVER" 2>/dev/null || true; wait "$SERVER" 2>/dev/null || true; rm -f dqserve' EXIT

# Wait for the service to come up.
for _ in $(seq 1 50); do
  curl -sf "$BASE/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
echo "== healthz reports the shard count"
curl -sf "$BASE/healthz"; echo

echo
echo "== seeded violations (identical to the flat examples/serve run)"
curl -s "$BASE/violations?format=text"

echo
echo "== streaming deltas in the background"
curl -sN "$BASE/stream" > stream.out &
STREAM=$!
sleep 0.3

echo
echo "== POST /batch: replay updates.log (4 commits, routed per shard)"
curl -s -X POST --data-binary @updates.log "$BASE/batch"; echo

echo
echo "== violations now (same repairs, same fresh error)"
curl -s "$BASE/violations?format=text"

echo
echo "== stats: note the per-shard tuple and violation counts"
curl -s "$BASE/stats"; echo

sleep 0.3
kill "$STREAM" 2>/dev/null || true
wait "$STREAM" 2>/dev/null || true
echo
echo "== the deltas the stream saw"
cat stream.out
rm -f stream.out

echo
echo "== graceful shutdown"
kill -TERM "$SERVER"
wait "$SERVER" 2>/dev/null || true
trap 'rm -f dqserve' EXIT
echo "done"
