// Command fraud reproduces the Section 3.1 fraud-detection scenario:
// card and billing records for the same customers with unreliable
// representations, matched with matching dependencies. It derives
// relative candidate keys from the Example 3.1 MDs (Theorem 4.8's PTIME
// implication) and shows the paper's claim in action: derived RCKs catch
// true matches the given rules miss.
package main

import (
	"fmt"
	"log"

	"repro/internal/gen"
	"repro/internal/match"
	"repro/internal/md"
	"repro/internal/paperdata"
	"repro/internal/similarity"
)

func main() {
	card := paperdata.CardSchema()
	billing := paperdata.BillingSchema()
	eq := similarity.Eq()
	m := similarity.MatchOp()
	ed := similarity.EditOp(0.8)

	// Example 3.1's MDs φ1–φ4.
	sigma := []*md.MD{
		md.MustNew(card, billing, []md.PremiseSpec{{Left: "tel", Right: "phn", Op: eq}},
			[]string{"addr"}, []string{"post"}, m),
		md.MustNew(card, billing, []md.PremiseSpec{{Left: "email", Right: "email", Op: m}},
			[]string{"FN", "LN"}, []string{"FN", "SN"}, m),
		md.MustNew(card, billing, []md.PremiseSpec{
			{Left: "LN", Right: "SN", Op: m}, {Left: "addr", Right: "post", Op: m}, {Left: "FN", Right: "FN", Op: m}},
			paperdata.Yc(), paperdata.Yb(), m),
		md.MustNew(card, billing, []md.PremiseSpec{
			{Left: "LN", Right: "SN", Op: m}, {Left: "addr", Right: "post", Op: m}, {Left: "FN", Right: "FN", Op: ed}},
			paperdata.Yc(), paperdata.Yb(), m),
	}
	fmt.Println("=== Σ1: the Example 3.1 matching dependencies ===")
	for _, rule := range sigma {
		fmt.Println("  ", rule)
	}

	fmt.Println("\n=== Derived relative candidate keys (Section 3.3) ===")
	rcks, err := md.DeriveRCKs(sigma, paperdata.Yc(), paperdata.Yb(), md.DeriveOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for _, k := range rcks {
		fmt.Println("  ", k)
	}

	// Generated sources: 15% abbreviated first names, 10% typos, 30%
	// radically diverged postal addresses.
	cardIn, billingIn, truth := gen.CardBilling(gen.CardBillingConfig{
		NPersons: 500, Seed: 2026,
		AbbrevRate: 0.15, TypoRate: 0.1, AddrDivergeRate: 0.3,
	})
	var truthPairs []match.Pair
	for _, p := range truth {
		truthPairs = append(truthPairs, match.Pair{L: p[0], R: p[1]})
	}

	given := []*md.MD{
		md.MustRelativeKey(card, billing,
			[]string{"email", "addr"}, []string{"email", "post"},
			[]similarity.Op{eq, eq}, paperdata.Yc(), paperdata.Yb()),
		md.MustRelativeKey(card, billing,
			[]string{"LN", "addr", "FN"}, []string{"SN", "post", "FN"},
			[]similarity.Op{eq, eq, ed}, paperdata.Yc(), paperdata.Yb()),
	}

	run := func(name string, rules []*md.MD) match.Quality {
		matcher := &match.Matcher{
			Left: cardIn, Right: billingIn,
			Rules:   rules,
			TargetL: paperdata.Yc(), TargetR: paperdata.Yb(),
		}
		pairs, err := matcher.Pairs()
		if err != nil {
			log.Fatal(err)
		}
		q := match.Evaluate(pairs, truthPairs)
		fmt.Printf("%-22s %v\n", name, q)
		return q
	}

	fmt.Println("\n=== Match quality: given rules vs derived RCKs ===")
	qGiven := run("given rules (rck1,3):", given)
	qDerived := run("with derived RCKs:", append(append([]*md.MD(nil), given...), rcks...))
	fmt.Printf("\nrecall gain from derived rules: %.1f%% → %.1f%%\n",
		qGiven.Recall*100, qDerived.Recall*100)

	// Clusters via the transitive ⇋.
	matcher := &match.Matcher{
		Left: cardIn, Right: billingIn,
		Rules:   append(append([]*md.MD(nil), given...), rcks...),
		TargetL: paperdata.Yc(), TargetR: paperdata.Yb(),
	}
	pairs, _ := matcher.Pairs()
	fmt.Printf("clusters identified: %d\n", len(match.Cluster(pairs)))
}
