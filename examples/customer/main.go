// Command customer runs the profiling-to-cleaning loop on a synthetic
// customer workload at the paper's cited enterprise error rates (1%–5%):
// discover rules from a clean sample, detect violations in the dirty
// data, repair, and report the cost.
package main

import (
	"fmt"
	"log"

	"repro/internal/cfd"
	"repro/internal/discovery"
	"repro/internal/gen"
	"repro/internal/paperdata"
	"repro/internal/repair"
)

func main() {
	s := paperdata.CustomerSchema()

	fmt.Println("=== Profiling: discover rules from a clean sample ===")
	clean := gen.Customers(gen.CustomerConfig{N: 400, Seed: 11, ErrorRate: 0})
	mined := discovery.DiscoverConstantCFDs(clean, discovery.Options{MaxLHS: 2, MinSupport: 10})
	fmt.Printf("mined %d constant-CFD rule groups, e.g.:\n", len(mined))
	for i, c := range mined {
		if i == 3 {
			break
		}
		fmt.Println("  ", c)
	}

	fmt.Println("\n=== Curated rules: the Figure 2 CFDs ===")
	sigma := []*cfd.CFD{paperdata.Phi1(s), paperdata.Phi2(s)}
	for _, c := range sigma {
		fmt.Println("  ", c)
	}

	for _, rate := range []float64{0.01, 0.05} {
		fmt.Printf("\n=== Error rate %.0f%% ===\n", rate*100)
		dirty := gen.Customers(gen.CustomerConfig{N: 1000, Seed: 11, ErrorRate: rate})
		violations := cfd.DetectAll(dirty, sigma)
		fmt.Printf("violations detected: %d (tuples involved: %d)\n",
			len(violations), len(cfd.ViolatingTIDs(violations)))
		report, err := repair.RepairCFDs(dirty, sigma, repair.URepairOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(report)
		if !cfd.SatisfiesAll(dirty, sigma) {
			log.Fatal("repair left violations")
		}
		fmt.Println("instance now satisfies Σ")
	}
}
