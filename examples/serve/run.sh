#!/usr/bin/env bash
# examples/serve: drive cmd/dqserve end to end with curl.
#
# Starts dqserve over the Figure 1 customer data with the Figure 2
# CFDs, reads the seeded violation report, follows the delta stream
# while POSTing the update log, and shuts the server down gracefully.
#
#   ./run.sh            # needs go and curl on PATH
#   PORT=9090 ./run.sh  # pick a port
set -euo pipefail
cd "$(dirname "$0")"

PORT="${PORT:-8080}"
BASE="http://127.0.0.1:$PORT"

echo "== building dqserve"
go build -o dqserve ../../cmd/dqserve

echo "== starting dqserve on :$PORT"
./dqserve -addr ":$PORT" -data customer=customer.csv -cfds rules.cfd &
SERVER=$!
trap 'kill "$SERVER" 2>/dev/null || true; wait "$SERVER" 2>/dev/null || true; rm -f dqserve' EXIT

# Wait for the service to come up.
for _ in $(seq 1 50); do
  curl -sf "$BASE/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
curl -sf "$BASE/healthz"; echo

echo
echo "== seeded violations (the Figure 1 errors)"
curl -s "$BASE/violations?format=text"

echo
echo "== streaming deltas in the background"
curl -sN "$BASE/stream" > stream.out &
STREAM=$!
sleep 0.3

echo
echo "== POST /batch: replay updates.log (4 commits)"
curl -s -X POST --data-binary @updates.log "$BASE/batch"; echo

echo
echo "== violations now (the repairs landed, one new error)"
curl -s "$BASE/violations?format=text"

echo
echo "== stats"
curl -s "$BASE/stats"; echo

echo
echo "== probe: does [CC, AC] -> [city] hold with an empty pattern?"
curl -s -X POST -H 'Content-Type: application/json' \
  -d '{"cfds": "cfd customer: [CC, AC] -> [city]\n  _, _ || _\n"}' \
  "$BASE/check"; echo

echo
echo "== metrics: the dq_ core series (Prometheus text exposition)"
curl -s "$BASE/metrics" | grep -E '^dq_(commits_total|ops_total|violations|violations_gained_total|violations_cleared_total|seq|alerts_total) '

echo
echo "== stage latencies: p-ish view of the pipeline (bucketed histogram)"
curl -s "$BASE/metrics" | grep '^dq_stage_seconds_count'

echo
echo "== trends: per-constraint violation series and window rates"
curl -s "$BASE/trends?points=8"; echo

sleep 0.3
kill "$STREAM" 2>/dev/null || true
wait "$STREAM" 2>/dev/null || true
echo
echo "== the deltas the stream saw"
cat stream.out
rm -f stream.out

echo
echo "== graceful shutdown (SIGTERM drains the ingest queue)"
kill -TERM "$SERVER"
wait "$SERVER" 2>/dev/null || true
trap 'rm -f dqserve' EXIT
echo "done"
