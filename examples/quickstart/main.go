// Command quickstart walks the paper's running example end to end: the
// Figure 1 customer instance D0 looks clean under traditional FDs, the
// Figure 2 CFDs expose errors in every tuple, and the cost-based repair
// fixes them — the core loop of dependency-based data quality.
package main

import (
	"fmt"
	"log"

	"repro/internal/cfd"
	"repro/internal/core"
	"repro/internal/paperdata"
	"repro/internal/relation"
)

func main() {
	d0 := paperdata.Figure1()
	s := d0.Schema()
	fmt.Println("=== Figure 1: the customer instance D0 ===")
	fmt.Print(d0)

	fmt.Println("\n=== Traditional FDs find nothing ===")
	for _, f := range []*cfd.CFD{paperdata.F1(s), paperdata.F2(s)} {
		fmt.Printf("%v holds: %v\n", f, cfd.Satisfies(d0, f))
	}

	fmt.Println("\n=== The Figure 2 CFDs expose the errors ===")
	rules := &core.Ruleset{CFDs: []*cfd.CFD{
		paperdata.Phi1(s), paperdata.Phi2(s), paperdata.Phi3(s),
	}}
	static := core.Analyze(rules)
	fmt.Printf("static analysis:\n%s", static)

	db := relation.NewDatabase()
	db.Add(d0)
	report, err := core.Detect(db, rules)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report)
	for _, v := range report.CFD {
		fmt.Println("  ", v)
	}

	fmt.Println("\n=== Cost-based repair (Section 5.1) ===")
	clean, err := core.Clean(db, rules, core.CleanOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(clean)
	fmt.Println("\n=== D0 after repair ===")
	fmt.Print(d0)
}
