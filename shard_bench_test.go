package repro_test

// Benchmarks for the sharded ingest path (DESIGN.md "Sharding layer",
// EXPERIMENTS.md E26):
//
//	BenchmarkShardIngest/n=100k/shards=S/batch=B
//
// One iteration submits a batch of B ops — half fresh-row inserts,
// half single-cell updates of a fixed 1024-tuple hot set — to a
// serve.Service over an n-tuple customer instance monitored by the
// constant-pattern halves of ϕ2 — ([CC, AC, phn] → [city], {(44, 131,
// _ ‖ EDI), (01, 908, _ ‖ MH)}), cfd2/cfd3 of Figure 2 — and waits for
// the commit ack. The pure-FD row of ϕ2 is deliberately left out: at
// 1M tuples, random 7-digit phones birthday-collide into tens of
// thousands of same-(CC, AC, phn) pairs, and the resulting fixed
// violation mass would make every commit's O(V) publish dominate the
// measurement. Inserted rows carry (CC, AC) = (99, 555) — no pattern
// row matches, so they never violate — and the hot-set updates flip
// city values in and out of the patterns: every batch gains and clears
// violations, but the outstanding set stays small and stationary, so
// the O(V) publish cost every commit pays (mergeDiff, the State list)
// is a constant and the measurement isolates per-commit ingest work.
//
// shards=1 runs the plain single-writer service — the baseline — and
// shards>1 the hash-partitioned one, keyed on phn (contained in the
// LHS, so every shard evaluates the rule locally and no update ever
// migrates a tuple). What sharding divides is the structural snapshot
// rebuild: a commit containing an insert forces the monitor's
// incremental catch-up (internal/relation Snapshot.Apply) onto the
// non-structural path — new row arrays, spliced code columns and group
// indexes, all O(rows) — and while the flat service re-splices all n
// rows, a sharded service re-splices only the O(n/S) rows of the
// shards the batch actually hit. At batch=1 an insert lands on exactly
// one shard, so per-commit work drops S-fold — that localization, not
// parallelism (the CI box has one CPU), is where the speedup comes
// from, and why it widens with n. Large batches scatter inserts across
// every shard, so on one CPU the per-shard rebuilds sum back to O(n);
// concurrent shard writers reclaim that on multicore hardware. The 1M
// tier only runs without -short:
//
//	go test -run '^$' -bench ShardIngest -benchmem .
import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cfd"
	"repro/internal/detect"
	"repro/internal/gen"
	"repro/internal/relation"
	"repro/internal/serve"
)

// shardBenchOps pregenerates the ingest mix: alternating fresh-row
// inserts (pattern-free (99, 555) customers that never violate) and
// single-cell updates over a fixed hot set of hotN tuples — city flips
// among the ϕ2 pattern constants and their complements, streets
// reshuffle. Bounded update working set → bounded violation set,
// whatever b.N is.
func shardBenchOps(n, hotN, count int, seed int64) []detect.DBOp {
	r := rand.New(rand.NewSource(seed))
	hot := r.Perm(n)[:hotN]
	cities := []string{"EDI", "MH", "NYC", "LDN"}
	streets := []string{"Mayfield", "Crichton", "Mtn Ave", "Preston"}
	ops := make([]detect.DBOp, count)
	for i := range ops {
		if i%2 == 0 {
			ops[i] = detect.InsertInto("customer", relation.Tuple{
				relation.Int(99), relation.Int(555), relation.Int(int64(1000000 + r.Intn(9000000))),
				relation.Str("New Customer"), relation.Str(streets[r.Intn(len(streets))]),
				relation.Str(cities[r.Intn(len(cities))]), relation.Str("EH8 9AB"),
			})
			continue
		}
		id := relation.TID(hot[r.Intn(hotN)])
		if r.Intn(2) == 0 {
			ops[i] = detect.UpdateIn("customer", id, 5, relation.Str(cities[r.Intn(len(cities))]))
		} else {
			ops[i] = detect.UpdateIn("customer", id, 4, relation.Str(streets[r.Intn(len(streets))]))
		}
	}
	return ops
}

func BenchmarkShardIngest(b *testing.B) {
	sizes := []struct {
		n    int
		name string
	}{{100_000, "100k"}}
	if !testing.Short() {
		sizes = append(sizes, struct {
			n    int
			name string
		}{1_000_000, "1M"})
	}
	for _, size := range sizes {
		pool := shardBenchOps(size.n, 1024, 1<<16, 17)
		for _, shards := range []int{1, 2, 4, 8} {
			for _, batch := range []int{1, 10, 1000} {
				name := fmt.Sprintf("n=%s/shards=%d/batch=%d", size.name, shards, batch)
				b.Run(name, func(b *testing.B) {
					in := gen.Customers(gen.CustomerConfig{N: size.n, Seed: 7, ErrorRate: 0})
					db := relation.NewDatabase()
					db.Add(in)
					s := in.Schema()
					phi := cfd.MustNew(s, []string{"CC", "AC", "phn"}, []string{"city"},
						cfd.Row([]cfd.Cell{cfd.Const(relation.Int(44)), cfd.Const(relation.Int(131)), cfd.Any()},
							[]cfd.Cell{cfd.Const(relation.Str("EDI"))}),
						cfd.Row([]cfd.Cell{cfd.Const(relation.Int(1)), cfd.Const(relation.Int(908)), cfd.Any()},
							[]cfd.Cell{cfd.Const(relation.Str("MH"))}))
					cs := detect.WrapCFDs([]*cfd.CFD{phi})
					cfg := serve.Config{DB: db, Constraints: cs}
					if shards > 1 {
						cfg.Shards = shards
						cfg.ShardKeys = map[string][]int{"customer": {2}} // phn
					}
					svc, err := serve.New(cfg)
					if err != nil {
						b.Fatal(err)
					}
					ctx := context.Background()
					defer svc.Stop(ctx)

					b.ReportAllocs()
					b.ResetTimer()
					at := 0
					for i := 0; i < b.N; i++ {
						ops := make([]detect.DBOp, batch)
						for j := range ops {
							ops[j] = pool[at]
							at = (at + 1) % len(pool)
						}
						if _, err := svc.Submit(ctx, ops); err != nil {
							b.Fatal(err)
						}
					}
					b.StopTimer()
					b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "ops/sec")
				})
			}
		}
	}
}
