package repro_test

// Benchmarks for the observability layer's hot-path cost (DESIGN.md
// E30):
//
//	BenchmarkMetricsOverhead/n=20k/batch=B/obs={off,on}
//
// The same single-writer ingest loop as BenchmarkServeIngest, run once
// without an ObsConfig and once with the full metrics + trend tracker
// enabled while a background scraper renders the registry — the pair
// whose ops/sec ratio is the "within 3% of uninstrumented" acceptance
// claim:
//
//	go test -run '^$' -bench MetricsOverhead -benchmem .
import (
	"context"
	"fmt"
	"io"
	"testing"
	"time"

	"repro/internal/cfd"
	"repro/internal/detect"
	"repro/internal/gen"
	"repro/internal/paperdata"
	"repro/internal/relation"
	"repro/internal/serve"
)

func BenchmarkMetricsOverhead(b *testing.B) {
	const n = 20_000
	pool := serveBenchOps(n, 1<<16, 11)
	for _, batch := range []int{1, 10, 1000} {
		for _, obsOn := range []bool{false, true} {
			name := fmt.Sprintf("n=20k/batch=%d/obs=%v", batch, obsOn)
			b.Run(name, func(b *testing.B) {
				in := gen.Customers(gen.CustomerConfig{N: n, Seed: 3, ErrorRate: 0.02})
				db := relation.NewDatabase()
				db.Add(in)
				s := in.Schema()
				cfg := serve.Config{
					DB: db,
					Constraints: detect.WrapCFDs([]*cfd.CFD{
						paperdata.Phi1(s), paperdata.Phi2(s), paperdata.Phi3(s),
					}),
				}
				if obsOn {
					cfg.Obs = &serve.ObsConfig{}
				}
				svc, err := serve.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				ctx := context.Background()
				defer svc.Stop(ctx)

				// A scraper pulls the full exposition at a realistic 1s
				// cadence — scrape cost must not perturb the writer.
				stop := make(chan struct{})
				scraperDone := make(chan struct{})
				if obsOn {
					reg := svc.Metrics()
					go func() {
						defer close(scraperDone)
						tick := time.NewTicker(time.Second)
						defer tick.Stop()
						for {
							select {
							case <-stop:
								return
							case <-tick.C:
								reg.WritePrometheus(io.Discard)
							}
						}
					}()
				} else {
					close(scraperDone)
				}

				b.ReportAllocs()
				b.ResetTimer()
				at := 0
				for i := 0; i < b.N; i++ {
					ops := make([]detect.DBOp, batch)
					for j := range ops {
						ops[j] = pool[at]
						at = (at + 1) % len(pool)
					}
					if _, err := svc.Submit(ctx, ops); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "ops/sec")
				close(stop)
				<-scraperDone
				svc.Stop(ctx)
			})
		}
	}
}
