package repro_test

// Benchmarks for the serve layer's single-writer ingest loop
// (DESIGN.md E25):
//
//	BenchmarkServeIngest/n=20k/batch=B/subs=S/readers=R
//
// One iteration submits a batch of B update ops to a serve.Service over
// a 20k-tuple customer instance with the Figure 2 CFDs and waits for
// the commit ack, while S subscribers drain the delta stream and R
// readers serve a steady request load off the published state — 1k
// reads/sec each (ticker-paced, like HTTP requests, not a spin loop
// that would just measure CPU contention on small boxes): every read
// walks the full violation list, every 16th aggregates Counts, every
// 64th runs a SatisfiesBatchOn probe on the published snapshot. The
// acceptance claim of the serve layer — read endpoints are served off
// the immutable pre-published snapshot and never block the writer —
// is measured here as readers=8 ingest throughput staying within ~10%
// of readers=0:
//
//	go test -run '^$' -bench ServeIngest -benchmem .
import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/cfd"
	"repro/internal/detect"
	"repro/internal/gen"
	"repro/internal/paperdata"
	"repro/internal/relation"
	"repro/internal/serve"
)

// serveBenchOps pregenerates a cycle of single-cell update ops over the
// customer instance: city flips between the ϕ2/ϕ3 pattern constants
// (EDI/MH/NYC) and streets reshuffle, so every batch both gains and
// clears violations — the steady churn a live monitor sees.
func serveBenchOps(n, count int, seed int64) []detect.DBOp {
	r := rand.New(rand.NewSource(seed))
	cities := []string{"EDI", "MH", "NYC", "LDN"}
	streets := []string{"Mayfield", "Crichton", "Mtn Ave", "Preston"}
	ops := make([]detect.DBOp, count)
	for i := range ops {
		id := relation.TID(r.Intn(n))
		if r.Intn(2) == 0 {
			ops[i] = detect.UpdateIn("customer", id, 5, relation.Str(cities[r.Intn(len(cities))]))
		} else {
			ops[i] = detect.UpdateIn("customer", id, 4, relation.Str(streets[r.Intn(len(streets))]))
		}
	}
	return ops
}

func BenchmarkServeIngest(b *testing.B) {
	const n = 20_000
	pool := serveBenchOps(n, 1<<16, 11)
	for _, batch := range []int{1, 10, 1000} {
		for _, subs := range []int{1, 8} {
			for _, readers := range []int{0, 8} {
				name := fmt.Sprintf("n=20k/batch=%d/subs=%d/readers=%d", batch, subs, readers)
				b.Run(name, func(b *testing.B) {
					in := gen.Customers(gen.CustomerConfig{N: n, Seed: 3, ErrorRate: 0.02})
					db := relation.NewDatabase()
					db.Add(in)
					s := in.Schema()
					cs := detect.WrapCFDs([]*cfd.CFD{
						paperdata.Phi1(s), paperdata.Phi2(s), paperdata.Phi3(s),
					})
					svc, err := serve.New(serve.Config{DB: db, Constraints: cs})
					if err != nil {
						b.Fatal(err)
					}
					ctx := context.Background()
					defer svc.Stop(ctx)

					stop := make(chan struct{})
					var wg sync.WaitGroup
					// Subscribers drain their streams; big buffers so none
					// is dropped mid-measurement.
					for i := 0; i < subs; i++ {
						sub := svc.SubscribeBuf(1 << 16)
						wg.Add(1)
						go func() {
							defer wg.Done()
							for range sub.Events() {
							}
						}()
					}
					// Readers never touch the monitor: published state only.
					probe := detect.WrapCFDs([]*cfd.CFD{paperdata.Phi3(s)})
					for i := 0; i < readers; i++ {
						wg.Add(1)
						go func() {
							defer wg.Done()
							tick := time.NewTicker(time.Millisecond)
							defer tick.Stop()
							for i := 0; ; i++ {
								select {
								case <-stop:
									return
								case <-tick.C:
								}
								st := svc.State()
								for _, v := range st.Violations {
									_ = v
								}
								if i%16 == 0 {
									svc.Counts()
								}
								if i%64 == 0 {
									svc.Check(probe)
								}
							}
						}()
					}

					b.ReportAllocs()
					b.ResetTimer()
					at := 0
					for i := 0; i < b.N; i++ {
						ops := make([]detect.DBOp, batch)
						for j := range ops {
							ops[j] = pool[at]
							at = (at + 1) % len(pool)
						}
						if _, err := svc.Submit(ctx, ops); err != nil {
							b.Fatal(err)
						}
					}
					b.StopTimer()
					b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "ops/sec")
					close(stop)
					svc.Stop(ctx)
					wg.Wait()
				})
			}
		}
	}
}
