package repro_test

// End-to-end integration tests tying the packages together the way the
// paper's narrative does, plus cross-package property tests
// (testing/quick) on the framework invariants.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/algebra"
	"repro/internal/cfd"
	"repro/internal/cind"
	"repro/internal/core"
	"repro/internal/cqa"
	"repro/internal/denial"
	"repro/internal/gen"
	"repro/internal/match"
	"repro/internal/md"
	"repro/internal/paperdata"
	"repro/internal/relation"
	"repro/internal/repair"
	"repro/internal/similarity"
)

// TestPaperNarrativeEndToEnd follows the paper front to back on one
// database: FDs see nothing (Fig. 1), CFDs find the errors (Fig. 2),
// static analysis validates the rules (Sec. 4), repair cleans the data
// (Sec. 5.1), and the repaired instance answers queries consistently.
func TestPaperNarrativeEndToEnd(t *testing.T) {
	d0 := paperdata.Figure1()
	s := d0.Schema()

	// Section 2: FDs pass, CFDs fail.
	if !cfd.Satisfies(d0, paperdata.F1(s)) || !cfd.Satisfies(d0, paperdata.F2(s)) {
		t.Fatal("Figure 1 FDs must hold")
	}
	rules := &core.Ruleset{CFDs: []*cfd.CFD{paperdata.Phi1(s), paperdata.Phi2(s), paperdata.Phi3(s)}}

	// Section 4: the rules themselves are clean.
	static := core.Analyze(rules)
	if !static.CFDConsistent {
		t.Fatal("Figure 2 CFDs are consistent")
	}

	// Section 2: detection.
	db := relation.NewDatabase()
	db.Add(d0)
	found, err := core.Detect(db, rules)
	if err != nil {
		t.Fatal(err)
	}
	if found.Clean() {
		t.Fatal("D0 is dirty under the CFDs")
	}

	// Section 5.1: repair.
	cleanRep, err := core.Clean(db, rules, core.CleanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cleanRep.After != 0 {
		t.Fatalf("repair left %d violations", cleanRep.After)
	}

	// The repaired instance satisfies the paper's semantic expectations.
	city := s.MustLookup("city")
	for tid, want := range map[relation.TID]string{0: "EDI", 1: "EDI", 2: "MH"} {
		tu, _ := d0.Tuple(tid)
		if tu[city].StrVal() != want {
			t.Errorf("t%d city = %v, want %s", tid+1, tu[city], want)
		}
	}

	// Section 5.2 on the now-clean data: every answer is certain.
	dcs, err := denial.Key(s, []string{"CC", "AC", "phn"})
	if err != nil {
		t.Fatal(err)
	}
	q := algebra.CQ{
		Head: []algebra.Term{algebra.V("city")},
		Atoms: []algebra.Atom{{Rel: "customer", Terms: []algebra.Term{
			algebra.V("cc"), algebra.V("ac"), algebra.V("phn"), algebra.V("n"),
			algebra.V("st"), algebra.V("city"), algebra.V("z")}}},
	}
	certain, n, err := cqa.CertainAnswers(db, dcs, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("clean data has exactly one repair (itself); got %d", n)
	}
	if certain.Len() != 2 { // EDI and MH
		t.Errorf("certain cities = %d, want 2", certain.Len())
	}
}

// TestRepairPropertyAlwaysCleans: the heuristic repair is a total cleaner
// for the Figure 2 CFDs on arbitrary generated workloads.
func TestRepairPropertyAlwaysCleans(t *testing.T) {
	s := paperdata.CustomerSchema()
	sigma := []*cfd.CFD{paperdata.Phi1(s), paperdata.Phi2(s), paperdata.Phi3(s)}
	prop := func(seed int64, rateBits uint8) bool {
		rate := float64(rateBits%50) / 100 // 0%–49%
		in := gen.Customers(gen.CustomerConfig{N: 60, Seed: seed, ErrorRate: rate})
		if _, err := repair.RepairCFDs(in, sigma, repair.URepairOptions{}); err != nil {
			return false
		}
		return cfd.SatisfiesAll(in, sigma)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestCQAPropertyCertainAnswersAreAnswers: certain answers are contained
// in the answers over the original instance (a lower bound, as Section
// 5.3 puts it).
func TestCQAPropertyCertainAnswersAreAnswers(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := relation.MustSchema("p",
			relation.Attr("k", relation.KindInt),
			relation.Attr("v", relation.KindInt),
		)
		in := relation.NewInstance(s)
		for i := 0; i < 8; i++ {
			in.MustInsert(relation.Int(int64(rng.Intn(4))), relation.Int(int64(rng.Intn(3))))
		}
		db := relation.NewDatabase()
		db.Add(in)
		dcs, _ := denial.Key(s, []string{"k"})
		q := algebra.CQ{
			Head:  []algebra.Term{algebra.V("k"), algebra.V("v")},
			Atoms: []algebra.Atom{{Rel: "p", Terms: []algebra.Term{algebra.V("k"), algebra.V("v")}}},
		}
		certain, _, err := cqa.CertainAnswers(db, dcs, q, 0)
		if err != nil {
			return false
		}
		orig, err := q.Eval(db)
		if err != nil {
			return false
		}
		present := make(map[string]bool)
		for _, tu := range orig.Tuples() {
			present[tu.Key()] = true
		}
		for _, tu := range certain.Tuples() {
			if !present[tu.Key()] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestMDImplicationSoundOnData: whenever md.Implies(Σ, key) holds, any
// tuple pair whose values satisfy the key's premises is matched by the
// MD fixpoint over Σ — the dynamic reading of generic implication.
func TestMDImplicationSoundOnData(t *testing.T) {
	card := paperdata.CardSchema()
	billing := paperdata.BillingSchema()
	eq := similarity.Eq()
	m := similarity.MatchOp()
	ed := similarity.EditOp(0.8)
	sigma := []*md.MD{
		md.MustNew(card, billing, []md.PremiseSpec{{Left: "tel", Right: "phn", Op: eq}},
			[]string{"addr"}, []string{"post"}, m),
		md.MustNew(card, billing, []md.PremiseSpec{
			{Left: "LN", Right: "SN", Op: m}, {Left: "addr", Right: "post", Op: m}, {Left: "FN", Right: "FN", Op: ed}},
			paperdata.Yc(), paperdata.Yb(), m),
	}
	key := md.MustRelativeKey(card, billing,
		[]string{"LN", "tel", "FN"}, []string{"SN", "phn", "FN"},
		[]similarity.Op{eq, eq, ed}, paperdata.Yc(), paperdata.Yb())
	if !md.Implies(sigma, key) {
		t.Fatal("Σ ⊨ key expected")
	}
	cardIn, billingIn, truth := gen.CardBilling(gen.CardBillingConfig{
		NPersons: 80, Seed: 31, AddrDivergeRate: 0.5,
	})
	yl, _ := card.Positions(paperdata.Yc())
	yr, _ := billing.Positions(paperdata.Yb())
	for _, pair := range truth {
		t1, _ := cardIn.Tuple(pair[0])
		t2, _ := billingIn.Tuple(pair[1])
		if !match.EvaluateKey(key, t1, t2) {
			continue // the key's premises do not hold on this pair
		}
		facts := match.InferMatches(sigma, t1, t2)
		for i := range yl {
			if !facts[md.AttrPair{L: yl[i], R: yr[i]}] {
				t.Fatalf("implication unsound on data: pair %v lacks fact %d", pair, i)
			}
		}
	}
}

// TestCrossFormalismAgreement: an FD expressed as a CFD and as a denial
// constraint flags the same instances.
func TestCrossFormalismAgreement(t *testing.T) {
	s := paperdata.CustomerSchema()
	asCFD := paperdata.F2(s) // [CC,AC] → city
	asDC, err := denial.FromFD(s, []string{"CC", "AC"}, "city")
	if err != nil {
		t.Fatal(err)
	}
	prop := func(seed int64) bool {
		in := gen.Customers(gen.CustomerConfig{N: 40, Seed: seed, ErrorRate: 0.3})
		db := relation.NewDatabase()
		db.Add(in)
		return cfd.Satisfies(in, asCFD) == denial.Satisfies(db, asDC)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestCINDRepairModesConverge: both CIND repair modes reach consistency
// on generated order databases.
func TestCINDRepairModesConverge(t *testing.T) {
	order := paperdata.OrderSchema()
	book := paperdata.BookSchema()
	cdS := paperdata.CDSchema()
	sigma := []*cind.CIND{
		cind.MustNew(order, book, []string{"title", "price"}, []string{"title", "price"},
			[]string{"type"}, nil,
			cind.PatternRow{XpVals: []relation.Value{relation.Str("book")}}),
		cind.MustNew(order, cdS, []string{"title", "price"}, []string{"album", "price"},
			[]string{"type"}, nil,
			cind.PatternRow{XpVals: []relation.Value{relation.Str("CD")}}),
		cind.MustNew(cdS, book, []string{"album", "price"}, []string{"title", "price"},
			[]string{"genre"}, []string{"format"},
			cind.PatternRow{
				XpVals: []relation.Value{relation.Str("a-book")},
				YpVals: []relation.Value{relation.Str("audio")},
			}),
	}
	for _, mode := range []repair.RepairCINDMode{repair.InsertDemanded, repair.DeleteViolating} {
		db := gen.Orders(gen.OrdersConfig{Books: 30, CDs: 30, Orders: 60, Seed: 5, ViolationRate: 0.2})
		if _, err := repair.RepairCINDs(db, sigma, mode, 0); err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if !cind.SatisfiesAll(db, sigma) {
			t.Errorf("mode %v left violations", mode)
		}
	}
}
