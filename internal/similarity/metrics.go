// Package similarity implements the domain-specific similarity operators
// of Section 3.2 of Fan (PODS 2008): a fixed set Θ of binary relations on
// values that are reflexive, symmetric and subsume equality. The package
// provides the similarity metrics object-identification practice uses —
// edit distance, Jaro, Jaro-Winkler, q-grams (see the survey [32] the
// paper cites) plus Soundex — threshold operators ≈θ over them, the
// equality operator, the match operator ⇋ placeholder, and the containment
// partial order between operators that relative-candidate-key derivation
// relies on.
package similarity

import (
	"strings"
	"unicode"
)

// Levenshtein returns the edit distance between a and b (unit costs for
// insert, delete, substitute), computed over runes.
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// EditSimilarity returns 1 − dist/maxLen in [0, 1]; identical strings get
// 1, fully different strings approach 0. Two empty strings are identical
// (1).
func EditSimilarity(a, b string) float64 {
	if a == b {
		return 1
	}
	la, lb := len([]rune(a)), len([]rune(b))
	max := la
	if lb > max {
		max = lb
	}
	if max == 0 {
		return 1
	}
	return 1 - float64(Levenshtein(a, b))/float64(max)
}

// Jaro returns the Jaro similarity of a and b in [0, 1].
func Jaro(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	la, lb := len(ra), len(rb)
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	window := max2(la, lb)/2 - 1
	if window < 0 {
		window = 0
	}
	usedB := make([]bool, lb)
	var matches int
	matchA := make([]rune, 0, la)
	for i, c := range ra {
		lo := max2(0, i-window)
		hi := min2(lb-1, i+window)
		for j := lo; j <= hi; j++ {
			if !usedB[j] && rb[j] == c {
				usedB[j] = true
				matches++
				matchA = append(matchA, c)
				break
			}
		}
	}
	if matches == 0 {
		return 0
	}
	matchB := make([]rune, 0, matches)
	for j, used := range usedB {
		if used {
			matchB = append(matchB, rb[j])
		}
	}
	var transpositions int
	for i := range matchA {
		if matchA[i] != matchB[i] {
			transpositions++
		}
	}
	m := float64(matches)
	t := float64(transpositions) / 2
	return (m/float64(la) + m/float64(lb) + (m-t)/m) / 3
}

// JaroWinkler returns the Jaro-Winkler similarity with the standard
// prefix scale 0.1 over at most 4 common prefix runes.
func JaroWinkler(a, b string) float64 {
	j := Jaro(a, b)
	prefix := 0
	ra, rb := []rune(a), []rune(b)
	for prefix < len(ra) && prefix < len(rb) && prefix < 4 && ra[prefix] == rb[prefix] {
		prefix++
	}
	return j + float64(prefix)*0.1*(1-j)
}

// QGramDice returns the Dice coefficient over the multisets of q-grams of
// a and b (strings padded with q−1 '#' on both sides). q must be ≥ 1.
func QGramDice(a, b string, q int) float64 {
	if q < 1 {
		q = 2
	}
	if a == b {
		return 1
	}
	ga, gb := qgrams(a, q), qgrams(b, q)
	if len(ga) == 0 && len(gb) == 0 {
		return 1
	}
	if len(ga) == 0 || len(gb) == 0 {
		return 0
	}
	counts := make(map[string]int, len(ga))
	for _, g := range ga {
		counts[g]++
	}
	shared := 0
	for _, g := range gb {
		if counts[g] > 0 {
			counts[g]--
			shared++
		}
	}
	return 2 * float64(shared) / float64(len(ga)+len(gb))
}

func qgrams(s string, q int) []string {
	pad := strings.Repeat("#", q-1)
	padded := []rune(pad + s + pad)
	if len(padded) < q {
		return nil
	}
	out := make([]string, 0, len(padded)-q+1)
	for i := 0; i+q <= len(padded); i++ {
		out = append(out, string(padded[i:i+q]))
	}
	return out
}

// Soundex returns the classic 4-character American Soundex code of s
// ("" for strings without a leading letter).
func Soundex(s string) string {
	s = strings.ToUpper(strings.TrimSpace(s))
	var letters []rune
	for _, r := range s {
		if unicode.IsLetter(r) && r < 128 {
			letters = append(letters, r)
		}
	}
	if len(letters) == 0 {
		return ""
	}
	code := func(r rune) byte {
		switch r {
		case 'B', 'F', 'P', 'V':
			return '1'
		case 'C', 'G', 'J', 'K', 'Q', 'S', 'X', 'Z':
			return '2'
		case 'D', 'T':
			return '3'
		case 'L':
			return '4'
		case 'M', 'N':
			return '5'
		case 'R':
			return '6'
		default:
			return 0 // vowels, H, W, Y
		}
	}
	out := []byte{byte(letters[0])}
	prev := code(letters[0])
	for _, r := range letters[1:] {
		c := code(r)
		if c != 0 && c != prev {
			out = append(out, c)
			if len(out) == 4 {
				break
			}
		}
		if r == 'H' || r == 'W' {
			continue // H and W do not reset the previous code
		}
		prev = c
	}
	for len(out) < 4 {
		out = append(out, '0')
	}
	return string(out)
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}
