package similarity

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/relation"
)

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"John Smith", "J. Smith", 3}, // o→'.', delete h, delete n
		{"same", "same", 0},
		{"résumé", "resume", 2},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinProperties(t *testing.T) {
	type pair struct{ A, B string }
	gen := func(r *rand.Rand) string {
		letters := []byte("abcd")
		n := r.Intn(8)
		b := make([]byte, n)
		for i := range b {
			b[i] = letters[r.Intn(len(letters))]
		}
		return string(b)
	}
	cfg := &quick.Config{
		MaxCount: 500,
		Values: func(vs []reflect.Value, r *rand.Rand) {
			vs[0] = reflect.ValueOf(pair{gen(r), gen(r)})
		},
	}
	// Symmetry, identity, and triangle inequality via a third string.
	if err := quick.Check(func(p pair) bool {
		d1, d2 := Levenshtein(p.A, p.B), Levenshtein(p.B, p.A)
		if d1 != d2 {
			return false
		}
		if (d1 == 0) != (p.A == p.B) {
			return false
		}
		via := Levenshtein(p.A, "") + Levenshtein("", p.B)
		return d1 <= via
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestEditSimilarity(t *testing.T) {
	if got := EditSimilarity("", ""); got != 1 {
		t.Errorf("empty/empty = %v", got)
	}
	if got := EditSimilarity("abcd", "abcd"); got != 1 {
		t.Errorf("identical = %v", got)
	}
	if got := EditSimilarity("abcd", "wxyz"); got != 0 {
		t.Errorf("disjoint = %v", got)
	}
	got := EditSimilarity("John", "Jon")
	if got <= 0.7 || got >= 0.8 {
		t.Errorf("John/Jon = %v, want 0.75", got)
	}
}

func TestJaroAndJaroWinkler(t *testing.T) {
	if Jaro("", "") != 1 || Jaro("a", "") != 0 {
		t.Error("Jaro edge cases wrong")
	}
	// Classic test vector: MARTHA vs MARHTA = 0.944...
	if got := Jaro("MARTHA", "MARHTA"); got < 0.94 || got > 0.95 {
		t.Errorf("Jaro(MARTHA, MARHTA) = %v", got)
	}
	// DWAYNE vs DUANE = 0.822...
	if got := Jaro("DWAYNE", "DUANE"); got < 0.81 || got > 0.83 {
		t.Errorf("Jaro(DWAYNE, DUANE) = %v", got)
	}
	// Jaro-Winkler boosts common prefixes: MARTHA/MARHTA = 0.961...
	if got := JaroWinkler("MARTHA", "MARHTA"); got < 0.96 || got > 0.97 {
		t.Errorf("JW(MARTHA, MARHTA) = %v", got)
	}
	if jw, j := JaroWinkler("prefix", "prefax"), Jaro("prefix", "prefax"); jw < j {
		t.Error("JW must dominate Jaro")
	}
}

func TestQGramDice(t *testing.T) {
	if QGramDice("", "", 2) != 1 {
		t.Error("empty/empty should be 1")
	}
	if QGramDice("night", "night", 2) != 1 {
		t.Error("identical should be 1")
	}
	got := QGramDice("night", "nacht", 2)
	if got <= 0 || got >= 1 {
		t.Errorf("night/nacht = %v, want strictly between 0 and 1", got)
	}
	if QGramDice("ab", "xy", 2) != 0 {
		t.Error("disjoint bigrams should be 0")
	}
	// q < 1 falls back to q=2.
	if QGramDice("night", "nacht", 0) != got {
		t.Error("q fallback broken")
	}
}

func TestSoundex(t *testing.T) {
	cases := map[string]string{
		"Robert":   "R163",
		"Rupert":   "R163",
		"Ashcraft": "A261",
		"Ashcroft": "A261",
		"Tymczak":  "T522",
		"Pfister":  "P236",
		"Honeyman": "H555",
		"":         "",
		"123":      "",
	}
	for in, want := range cases {
		if got := Soundex(in); got != want {
			t.Errorf("Soundex(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestOperatorAxioms(t *testing.T) {
	// Section 3.2: every operator in Θ is reflexive, symmetric, and
	// subsumes equality.
	ops := []Op{Eq(), EditOp(0.8), JaroOp(0.9), JWOp(0.9), QGramOp(2, 0.6), SoundexOp(), MatchOp()}
	vals := []relation.Value{
		relation.Str("John Smith"), relation.Str("J. Smith"), relation.Str("Jon Smith"),
		relation.Str(""), relation.Int(42), relation.Null(),
	}
	for _, op := range ops {
		for _, v := range vals {
			if !op.Similar(v, v) {
				t.Errorf("%v not reflexive on %v", op, v)
			}
			for _, w := range vals {
				if op.Similar(v, w) != op.Similar(w, v) {
					t.Errorf("%v not symmetric on %v, %v", op, v, w)
				}
				if v.Equal(w) && !op.Similar(v, w) {
					t.Errorf("%v does not subsume equality on %v, %v", op, v, w)
				}
			}
		}
	}
}

func TestOperatorSimilar(t *testing.T) {
	ed := EditOp(0.7)
	if !ed.Similar(relation.Str("John"), relation.Str("Jon")) {
		t.Error("edit≥0.7 should accept John/Jon (0.75)")
	}
	if EditOp(0.8).Similar(relation.Str("John"), relation.Str("Jon")) {
		t.Error("edit≥0.8 should reject John/Jon")
	}
	if ed.Similar(relation.Int(1), relation.Int(2)) {
		t.Error("non-string values only relate by equality")
	}
	if !SoundexOp().Similar(relation.Str("Robert"), relation.Str("Rupert")) {
		t.Error("soundex should relate Robert/Rupert")
	}
	if SoundexOp().Similar(relation.Str("Robert"), relation.Str("Wilson")) {
		t.Error("soundex should separate Robert/Wilson")
	}
	if MatchOp().Similar(relation.Str("a"), relation.Str("b")) {
		t.Error("⇋'s known lower bound is equality only")
	}
}

func TestOperatorContainment(t *testing.T) {
	cases := []struct {
		big, small Op
		want       bool
	}{
		{EditOp(0.6), Eq(), true},         // equality in everything
		{EditOp(0.6), EditOp(0.8), true},  // lower threshold is weaker
		{EditOp(0.8), EditOp(0.6), false}, //
		{JaroOp(0.9), EditOp(0.9), false}, // incomparable families
		{JWOp(0.9), JaroOp(0.9), true},    // JW ≥ Jaro pointwise
		{JaroOp(0.9), JWOp(0.9), false},   //
		{Eq(), EditOp(0.5), false},        // equality contains nothing proper
		{QGramOp(2, 0.5), QGramOp(2, 0.7), true},
		{QGramOp(2, 0.5), QGramOp(3, 0.7), false}, // different q
		{EditOp(0.5), MatchOp(), false},           // proper ⇋ is not generically contained
		{MatchOp(), MatchOp(), true},
	}
	for _, c := range cases {
		if got := c.big.Contains(c.small); got != c.want {
			t.Errorf("%v.Contains(%v) = %v, want %v", c.big, c.small, got, c.want)
		}
	}
	// Containment soundness spot-check: if big.Contains(small) then every
	// related pair under small is related under big.
	pairs := [][2]string{{"John", "Jon"}, {"MARTHA", "MARHTA"}, {"abc", "abd"}, {"x", "x"}}
	bigs := []Op{EditOp(0.5), JWOp(0.85)}
	smalls := []Op{EditOp(0.9), JaroOp(0.85), Eq()}
	for _, big := range bigs {
		for _, small := range smalls {
			if !big.Contains(small) {
				continue
			}
			for _, p := range pairs {
				a, b := relation.Str(p[0]), relation.Str(p[1])
				if small.Similar(a, b) && !big.Similar(a, b) {
					t.Errorf("containment unsound: %v ⊇ %v but %q~%q differs", big, small, p[0], p[1])
				}
			}
		}
	}
}

func TestOperatorStrings(t *testing.T) {
	for _, c := range []struct {
		op   Op
		want string
	}{
		{Eq(), "="},
		{MatchOp(), "⇋"},
		{SoundexOp(), "soundex"},
		{EditOp(0.8), "edit≥0.8"},
		{QGramOp(2, 0.6), "qgram2≥0.6"},
		{JWOp(0.9), "jw≥0.9"},
	} {
		if got := c.op.String(); got != c.want {
			t.Errorf("%v.String() = %q, want %q", c.op.Metric, got, c.want)
		}
	}
	if Metric(99).String() == "" {
		t.Error("unknown metric must render")
	}
}
