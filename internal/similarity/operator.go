package similarity

import (
	"fmt"

	"repro/internal/relation"
)

// Metric identifies a similarity metric family.
type Metric uint8

// The metric families. Equality is the = operator (in Θ by definition);
// Match is the ⇋ operator, whose interpretation is inferred rather than
// given (Section 3.3 of the paper) — Similar on Match answers equality
// only, as the known lower bound of the relation.
const (
	Equality Metric = iota
	Edit
	JaroM
	JaroWinklerM
	QGram
	SoundexM
	Match
)

// String names the metric.
func (m Metric) String() string {
	switch m {
	case Equality:
		return "eq"
	case Edit:
		return "edit"
	case JaroM:
		return "jaro"
	case JaroWinklerM:
		return "jw"
	case QGram:
		return "qgram"
	case SoundexM:
		return "soundex"
	case Match:
		return "match"
	default:
		return fmt.Sprintf("metric(%d)", uint8(m))
	}
}

// Op is a similarity operator in Θ: a metric family with a threshold θ
// (for score-valued metrics, x ≈θ y iff score(x,y) ≥ θ) and a q-gram
// size. All operators are reflexive, symmetric and subsume equality —
// the generic axioms of Section 3.2.
type Op struct {
	Metric Metric
	Theta  float64 // threshold in [0,1] for score metrics
	Q      int     // q-gram size (QGram only)
}

// Eq returns the equality operator.
func Eq() Op { return Op{Metric: Equality} }

// EditOp returns edit-similarity ≥ θ (the paper's ≈d family).
func EditOp(theta float64) Op { return Op{Metric: Edit, Theta: theta} }

// JaroOp returns Jaro similarity ≥ θ.
func JaroOp(theta float64) Op { return Op{Metric: JaroM, Theta: theta} }

// JWOp returns Jaro-Winkler similarity ≥ θ.
func JWOp(theta float64) Op { return Op{Metric: JaroWinklerM, Theta: theta} }

// QGramOp returns q-gram Dice similarity ≥ θ.
func QGramOp(q int, theta float64) Op { return Op{Metric: QGram, Theta: theta, Q: q} }

// SoundexOp returns the same-soundex-code operator.
func SoundexOp() Op { return Op{Metric: SoundexM} }

// MatchOp returns the ⇋ operator placeholder.
func MatchOp() Op { return Op{Metric: Match} }

// IsMatch reports whether the operator is ⇋.
func (o Op) IsMatch() bool { return o.Metric == Match }

// String renders the operator, e.g. "edit≥0.8".
func (o Op) String() string {
	switch o.Metric {
	case Equality:
		return "="
	case Match:
		return "⇋"
	case SoundexM:
		return "soundex"
	case QGram:
		return fmt.Sprintf("qgram%d≥%g", o.Q, o.Theta)
	default:
		return fmt.Sprintf("%s≥%g", o.Metric, o.Theta)
	}
}

// score computes the metric's similarity score for two strings.
func (o Op) score(a, b string) float64 {
	switch o.Metric {
	case Edit:
		return EditSimilarity(a, b)
	case JaroM:
		return Jaro(a, b)
	case JaroWinklerM:
		return JaroWinkler(a, b)
	case QGram:
		return QGramDice(a, b, o.Q)
	default:
		return 0
	}
}

// Similar reports whether v ≈ w under the operator. Non-string values
// compare by equality for every metric (the metrics are string
// similarities; equality always subsumes). The Match operator answers
// its known lower bound: equality.
func (o Op) Similar(v, w relation.Value) bool {
	if v.Equal(w) {
		return true // every operator subsumes equality
	}
	switch o.Metric {
	case Equality, Match:
		return false
	case SoundexM:
		if v.Kind() != relation.KindString || w.Kind() != relation.KindString {
			return false
		}
		c1, c2 := Soundex(v.StrVal()), Soundex(w.StrVal())
		return c1 != "" && c1 == c2
	default:
		if v.Kind() != relation.KindString || w.Kind() != relation.KindString {
			return false
		}
		return o.score(v.StrVal(), w.StrVal()) >= o.Theta
	}
}

// Contains reports o ⊇ p: every pair related by p is related by o. The
// order is sound but conservative (incomparable metric families report
// false):
//
//   - equality is contained in every operator;
//   - within one score family, a lower threshold contains a higher one;
//   - Jaro-Winkler at θ contains Jaro at θ (JW ≥ Jaro pointwise);
//   - every operator contains ⇋-as-known (equality lower bound), and ⇋
//     contains only equality and itself.
func (o Op) Contains(p Op) bool {
	if o == p {
		return true
	}
	if p.Metric == Equality {
		return true
	}
	if o.Metric == Equality {
		return false
	}
	if p.Metric == Match {
		// Known ⇋ facts are equalities, already handled above; a proper
		// ⇋ is not contained in any similarity operator generically.
		return false
	}
	if o.Metric == Match {
		return false
	}
	if o.Metric == p.Metric && o.Q == p.Q {
		return o.Theta <= p.Theta
	}
	if o.Metric == JaroWinklerM && p.Metric == JaroM {
		return o.Theta <= p.Theta
	}
	return false
}
