package repr_test

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/cfd"
	"repro/internal/cqa"
	"repro/internal/denial"
	"repro/internal/gen"
	"repro/internal/relation"
	"repro/internal/repr"
)

// TestNucleusExample51 builds the nucleus of the Example 5.1 family: n
// variables summarize 2^n repairs in 2n rows.
func TestNucleusExample51(t *testing.T) {
	for _, n := range []int{1, 3, 6, 10} {
		in := gen.Example51(n)
		key := cfd.MustFD(in.Schema(), []string{"A"}, []string{"B"})
		nuc, err := repr.Nucleus(in, []*cfd.CFD{key})
		if err != nil {
			t.Fatal(err)
		}
		if nuc.Rows() != 2*n {
			t.Errorf("n=%d: rows = %d, want %d", n, nuc.Rows(), 2*n)
		}
		if nuc.Vars() != n {
			t.Errorf("n=%d: vars = %d, want %d (one per conflicting group)", n, nuc.Vars(), n)
		}
	}
}

// TestNucleusCertainAnswers: query answers on the nucleus coincide with
// certain answers by repair enumeration.
func TestNucleusCertainAnswers(t *testing.T) {
	in := gen.Example51(4)
	key := cfd.MustFD(in.Schema(), []string{"A"}, []string{"B"})
	nuc, err := repr.Nucleus(in, []*cfd.CFD{key})
	if err != nil {
		t.Fatal(err)
	}
	q := algebra.CQ{
		Head:  []algebra.Term{algebra.V("a")},
		Atoms: []algebra.Atom{{Rel: "r", Terms: []algebra.Term{algebra.V("a"), algebra.V("b")}}},
	}
	fromNucleus, err := nuc.CertainAnswers(q)
	if err != nil {
		t.Fatal(err)
	}
	db := relation.NewDatabase()
	db.Add(in)
	dcs, _ := denial.Key(in.Schema(), []string{"A"})
	fromEnum, _, err := cqa.CertainAnswers(db, dcs, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := keyOf(fromNucleus), keyOf(fromEnum); got != want {
		t.Errorf("nucleus answers %v vs enumeration %v", fromNucleus.Tuples(), fromEnum.Tuples())
	}
	// A query over the conflicting attribute B returns nothing certain.
	qb := algebra.CQ{
		Head:  []algebra.Term{algebra.V("b")},
		Atoms: []algebra.Atom{{Rel: "r", Terms: []algebra.Term{algebra.V("a"), algebra.V("b")}}},
	}
	ansB, err := nuc.CertainAnswers(qb)
	if err != nil {
		t.Fatal(err)
	}
	enumB, _, err := cqa.CertainAnswers(db, dcs, qb, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Under U-repairs (value modification) nothing about B is certain;
	// under X-repair enumeration both b and b' survive in some repair,
	// but neither in all. Both engines must agree on "nothing certain".
	if ansB.Len() != 0 || enumB.Len() != 0 {
		t.Errorf("B answers: nucleus %d, enum %d; want 0, 0", ansB.Len(), enumB.Len())
	}
}

func keyOf(in *relation.Instance) string {
	out := ""
	for _, t := range algebra.SortedTuples(in) {
		out += t.Key() + ";"
	}
	return out
}

// TestNucleusMixedCleanDirty: clean groups keep their constants; only
// dirty groups get variables.
func TestNucleusMixedCleanDirty(t *testing.T) {
	s := relation.MustSchema("r",
		relation.Attr("k", relation.KindString),
		relation.Attr("v", relation.KindString),
	)
	in := relation.NewInstance(s)
	in.MustInsert(relation.Str("clean"), relation.Str("x"))
	in.MustInsert(relation.Str("clean"), relation.Str("x"))
	in.MustInsert(relation.Str("dirty"), relation.Str("y"))
	in.MustInsert(relation.Str("dirty"), relation.Str("z"))
	key := cfd.MustFD(s, []string{"k"}, []string{"v"})
	nuc, err := repr.Nucleus(in, []*cfd.CFD{key})
	if err != nil {
		t.Fatal(err)
	}
	if nuc.Vars() != 1 {
		t.Fatalf("vars = %d, want 1", nuc.Vars())
	}
	varCount := 0
	for i := 0; i < nuc.Rows(); i++ {
		for _, c := range nuc.Row(i) {
			if c.IsVar {
				varCount++
				if c.String() == "" {
					t.Error("cell must render")
				}
			}
		}
	}
	if varCount != 2 {
		t.Errorf("variable cells = %d, want 2 (the dirty group)", varCount)
	}
	_ = nuc.String()
}

// TestNucleusTransitiveFDs: rewriting an attribute to a variable feeds
// FDs whose LHS contains it (variable cells group by identity).
func TestNucleusTransitiveFDs(t *testing.T) {
	s := relation.MustSchema("r",
		relation.Attr("a", relation.KindString),
		relation.Attr("b", relation.KindString),
		relation.Attr("c", relation.KindString),
	)
	in := relation.NewInstance(s)
	// a → b conflicts: b becomes ?0 on both rows; then b → c groups the
	// two rows (same variable) and c conflicts too: ?1.
	in.MustInsert(relation.Str("a1"), relation.Str("b1"), relation.Str("c1"))
	in.MustInsert(relation.Str("a1"), relation.Str("b2"), relation.Str("c2"))
	fds := []*cfd.CFD{
		cfd.MustFD(s, []string{"a"}, []string{"b"}),
		cfd.MustFD(s, []string{"b"}, []string{"c"}),
	}
	nuc, err := repr.Nucleus(in, fds)
	if err != nil {
		t.Fatal(err)
	}
	if nuc.Vars() != 2 {
		t.Errorf("vars = %d, want 2 (cascade through b → c)", nuc.Vars())
	}
}

func TestNucleusRejectsProperCFDs(t *testing.T) {
	in := gen.Example51(1)
	proper := cfd.MustNew(in.Schema(), []string{"A"}, []string{"B"},
		cfd.Row([]cfd.Cell{cfd.Const(relation.Str("a1"))}, []cfd.Cell{cfd.Any()}))
	if _, err := repr.Nucleus(in, []*cfd.CFD{proper}); err == nil {
		t.Error("nucleus construction is specified for traditional FDs")
	}
}

// TestValuateYieldsRepairs: every valuation of the nucleus over candidate
// values satisfies the FDs.
func TestValuateYieldsRepairs(t *testing.T) {
	in := gen.Example51(2)
	key := cfd.MustFD(in.Schema(), []string{"A"}, []string{"B"})
	nuc, err := repr.Nucleus(in, []*cfd.CFD{key})
	if err != nil {
		t.Fatal(err)
	}
	for _, v0 := range []string{"b", "b'"} {
		for _, v1 := range []string{"b", "b'"} {
			inst := nuc.Valuate(map[repr.Var]relation.Value{
				0: relation.Str(v0),
				1: relation.Str(v1),
			})
			if !cfd.Satisfies(inst, key) {
				t.Errorf("valuation (%s, %s) violates the key", v0, v1)
			}
			// Valuations deduplicate the two group rows into... the
			// tuples (a_i, chosen) appear; instance keeps duplicates as
			// separate TIDs, which is fine for satisfaction.
			if inst.Len() != 4 {
				t.Errorf("valuated rows = %d, want 4", inst.Len())
			}
		}
	}
	// Unassigned variables take placeholders and still satisfy the FD.
	inst := nuc.Valuate(nil)
	if !cfd.Satisfies(inst, key) {
		t.Error("placeholder valuation violates the key")
	}
}

// TestNucleusSizeVsRepairCount is the E19 economics check: nucleus size
// grows linearly while the repair count grows exponentially.
func TestNucleusSizeVsRepairCount(t *testing.T) {
	in := gen.Example51(12)
	key := cfd.MustFD(in.Schema(), []string{"A"}, []string{"B"})
	nuc, err := repr.Nucleus(in, []*cfd.CFD{key})
	if err != nil {
		t.Fatal(err)
	}
	if nuc.Rows() != 24 || nuc.Vars() != 12 {
		t.Errorf("nucleus = %d rows / %d vars; want 24 / 12", nuc.Rows(), nuc.Vars())
	}
	// 2^12 = 4096 repairs would need 8192 rows if materialized.
	if materialized := (1 << 12) * 12; nuc.Rows() >= materialized {
		t.Error("nucleus is not smaller than materialization?!")
	}
}
