package repr_test

import (
	"testing"

	"repro/internal/denial"
	"repro/internal/gen"
	"repro/internal/relation"
	"repro/internal/repair"
	"repro/internal/repr"
)

// TestWSDExample51: the Example 5.1 family decomposes into n independent
// binary components — linear size for 2^n worlds.
func TestWSDExample51(t *testing.T) {
	for _, n := range []int{1, 4, 10} {
		in := gen.Example51(n)
		w, err := repr.WSDFromKeyRepairs(in, []string{"A"})
		if err != nil {
			t.Fatal(err)
		}
		if w.Components() != n {
			t.Errorf("n=%d: components = %d", n, w.Components())
		}
		count, exact := w.WorldCount()
		if !exact || count != int64(1)<<n {
			t.Errorf("n=%d: worlds = %d (exact %v), want 2^%d", n, count, exact, n)
		}
		if w.Size() != 2*n {
			t.Errorf("n=%d: size = %d, want %d (linear)", n, w.Size(), 2*n)
		}
		_ = w.String()
	}
}

// TestWSDWorldsMatchXRepairs: the materialized worlds coincide with the
// hypergraph-enumerated X-repairs.
func TestWSDWorldsMatchXRepairs(t *testing.T) {
	in := gen.Example51(3)
	w, err := repr.WSDFromKeyRepairs(in, []string{"A"})
	if err != nil {
		t.Fatal(err)
	}
	worlds := w.Worlds(0)
	if len(worlds) != 8 {
		t.Fatalf("worlds = %d", len(worlds))
	}
	db := relation.NewDatabase()
	db.Add(in)
	dcs, _ := denial.Key(in.Schema(), []string{"A"})
	h, err := repair.BuildHypergraph(db, dcs)
	if err != nil {
		t.Fatal(err)
	}
	repairs := h.EnumerateXRepairs(0)
	if len(repairs) != len(worlds) {
		t.Fatalf("repairs = %d vs worlds = %d", len(repairs), len(worlds))
	}
	// Compare as sets of canonical tuple multisets.
	worldKeys := make(map[string]bool)
	for _, wd := range worlds {
		worldKeys[instKey(wd)] = true
	}
	for _, kept := range repairs {
		sub := relation.NewInstance(in.Schema())
		for _, ref := range kept {
			tu, _ := in.Tuple(ref.TID)
			sub.MustInsert(tu...)
		}
		if !worldKeys[instKey(sub)] {
			t.Errorf("repair %v not represented by the WSD", kept)
		}
	}
}

func instKey(in *relation.Instance) string {
	keys := make([]string, 0, in.Len())
	for _, t := range in.Tuples() {
		keys = append(keys, t.Key())
	}
	// Sort for canonical form.
	for i := 0; i < len(keys); i++ {
		for j := i + 1; j < len(keys); j++ {
			if keys[j] < keys[i] {
				keys[i], keys[j] = keys[j], keys[i]
			}
		}
	}
	out := ""
	for _, k := range keys {
		out += k + "|"
	}
	return out
}

// TestWSDMixedGroups: clean groups land in the base; duplicate classes
// survive together.
func TestWSDMixedGroups(t *testing.T) {
	s := relation.MustSchema("r",
		relation.Attr("k", relation.KindString),
		relation.Attr("v", relation.KindInt),
	)
	in := relation.NewInstance(s)
	in.MustInsert(relation.Str("clean"), relation.Int(1))
	in.MustInsert(relation.Str("dup"), relation.Int(5))
	in.MustInsert(relation.Str("dup"), relation.Int(5)) // same class
	in.MustInsert(relation.Str("dup"), relation.Int(7)) // conflicting class
	w, err := repr.WSDFromKeyRepairs(in, []string{"k"})
	if err != nil {
		t.Fatal(err)
	}
	if w.Components() != 1 {
		t.Fatalf("components = %d, want 1", w.Components())
	}
	count, _ := w.WorldCount()
	if count != 2 {
		t.Errorf("worlds = %d, want 2", count)
	}
	worlds := w.Worlds(0)
	sizes := map[int]bool{}
	for _, wd := range worlds {
		sizes[wd.Len()] = true
	}
	// One world keeps both (dup,5) tuples + clean = 3; the other keeps
	// (dup,7) + clean = 2.
	if !sizes[3] || !sizes[2] {
		t.Errorf("world sizes = %v, want {2,3}", sizes)
	}
	// Limit works.
	if got := w.Worlds(1); len(got) != 1 {
		t.Errorf("limited worlds = %d", len(got))
	}
	if _, err := repr.WSDFromKeyRepairs(in, []string{"ghost"}); err == nil {
		t.Error("want error for unknown key attribute")
	}
}
