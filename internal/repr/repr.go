// Package repr implements condensed representations of repairs
// (Section 5.3 of Fan, PODS 2008): instead of materializing the possibly
// exponential set of repairs, a single tableau with labeled variables —
// a nucleus in the sense of Wijsen — summarizes every U-repair of the FD
// violations of an instance. Each variable stands for the unknown
// consensus value of a violating group; every valuation of the variables
// is a repair, and certain answers to conjunctive queries can be read off
// the tableau directly. The package also reports the size economics that
// motivate condensed representations: the nucleus is linear in the data
// while the repair count grows exponentially (Example 5.1).
package repr

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/algebra"
	"repro/internal/cfd"
	"repro/internal/relation"
)

// Var is a labeled variable (a marked null) in a v-table cell.
type Var int

// Cell is a v-table cell: either a constant value or a variable.
type Cell struct {
	IsVar bool
	Var   Var
	Val   relation.Value
}

// String renders the cell.
func (c Cell) String() string {
	if c.IsVar {
		return fmt.Sprintf("?%d", c.Var)
	}
	return c.Val.String()
}

// VTable is a tableau with variables over a schema: the condensed
// representation of all U-repairs of an instance's FD violations.
type VTable struct {
	schema *relation.Schema
	rows   [][]Cell
	tids   []relation.TID
	nVars  int
}

// Schema returns the tableau's schema.
func (v *VTable) Schema() *relation.Schema { return v.schema }

// Rows returns the number of rows.
func (v *VTable) Rows() int { return len(v.rows) }

// Vars returns the number of distinct variables.
func (v *VTable) Vars() int { return v.nVars }

// Row returns the cells of row i (not to be modified).
func (v *VTable) Row(i int) []Cell { return v.rows[i] }

// String renders the tableau.
func (v *VTable) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s nucleus (%d rows, %d vars)\n", v.schema.Name(), len(v.rows), v.nVars)
	for i, row := range v.rows {
		parts := make([]string, len(row))
		for j, c := range row {
			parts[j] = c.String()
		}
		fmt.Fprintf(&b, "  t%d: (%s)\n", v.tids[i], strings.Join(parts, ", "))
	}
	return b.String()
}

// Nucleus builds the condensed representation of all U-repairs of the
// instance w.r.t. a set of traditional FDs (given as CFDs that pass
// IsFD): for every FD X → A and every X-group whose A-values disagree,
// the group's A-cells are replaced by one shared variable. The
// construction iterates to a fixpoint so that FDs whose LHS includes
// previously rewritten attributes see the variable cells (variable LHS
// cells group by variable identity).
func Nucleus(in *relation.Instance, fds []*cfd.CFD) (*VTable, error) {
	s := in.Schema()
	var raw []cfd.RawFD
	for _, c := range fds {
		fd, ok := cfd.AsRawFD(c)
		if !ok {
			return nil, fmt.Errorf("repr: %v is not a traditional FD", c)
		}
		raw = append(raw, fd)
	}
	v := &VTable{schema: s}
	for _, id := range in.IDs() {
		t, _ := in.Tuple(id)
		row := make([]Cell, len(t))
		for j, val := range t {
			row[j] = Cell{Val: val}
		}
		v.rows = append(v.rows, row)
		v.tids = append(v.tids, id)
	}
	// Fixpoint: group rows by LHS cells (constants by value, variables by
	// identity); on RHS disagreement merge into one variable.
	for changed := true; changed; {
		changed = false
		for _, fd := range raw {
			for _, a := range fd.RHS {
				groups := make(map[string][]int)
				for i, row := range v.rows {
					key := cellKey(row, fd.LHS)
					groups[key] = append(groups[key], i)
				}
				var keys []string
				for k := range groups {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				for _, k := range keys {
					idx := groups[k]
					if len(idx) < 2 || agreeOn(v.rows, idx, a) {
						continue
					}
					// Merge: if some member already carries a variable on
					// a, reuse the smallest such variable; else mint one.
					varID := Var(-1)
					for _, i := range idx {
						if c := v.rows[i][a]; c.IsVar && (varID < 0 || c.Var < varID) {
							varID = c.Var
						}
					}
					if varID < 0 {
						varID = Var(v.nVars)
						v.nVars++
					}
					for _, i := range idx {
						old := v.rows[i][a]
						if !old.IsVar || old.Var != varID {
							v.rows[i][a] = Cell{IsVar: true, Var: varID}
							changed = true
						}
					}
				}
			}
		}
	}
	// Renumber variables densely (merging may strand labels).
	seen := make(map[Var]Var)
	for i := range v.rows {
		for j := range v.rows[i] {
			if v.rows[i][j].IsVar {
				nv, ok := seen[v.rows[i][j].Var]
				if !ok {
					nv = Var(len(seen))
					seen[v.rows[i][j].Var] = nv
				}
				v.rows[i][j].Var = nv
			}
		}
	}
	v.nVars = len(seen)
	return v, nil
}

func cellKey(row []Cell, pos []int) string {
	var b strings.Builder
	for _, p := range pos {
		c := row[p]
		if c.IsVar {
			fmt.Fprintf(&b, "?%d|", c.Var)
		} else {
			b.WriteString(c.Val.Key())
			b.WriteByte('|')
		}
	}
	return b.String()
}

func agreeOn(rows [][]Cell, idx []int, a int) bool {
	first := rows[idx[0]][a]
	for _, i := range idx[1:] {
		c := rows[i][a]
		if c.IsVar != first.IsVar {
			return false
		}
		if c.IsVar {
			if c.Var != first.Var {
				return false
			}
		} else if !c.Val.Equal(first.Val) {
			return false
		}
	}
	return true
}

// Valuate instantiates the tableau under a variable assignment, yielding
// one U-repair. Missing variables keep a deterministic placeholder
// derived from the variable index.
func (v *VTable) Valuate(assign map[Var]relation.Value) *relation.Instance {
	out := relation.NewInstance(v.schema)
	for _, row := range v.rows {
		t := make(relation.Tuple, len(row))
		for j, c := range row {
			if !c.IsVar {
				t[j] = c.Val
				continue
			}
			if val, ok := assign[c.Var]; ok {
				t[j] = val
			} else {
				t[j] = relation.Str(fmt.Sprintf("?%d", c.Var))
			}
		}
		if _, err := out.Insert(t); err == nil {
			continue
		}
	}
	return out
}

// CertainAnswers evaluates a conjunctive query on the tableau and returns
// the answers guaranteed in every valuation (hence in every represented
// U-repair): the query runs with each variable frozen as a distinct fresh
// constant, and answer rows mentioning a frozen variable are dropped.
// Frozen variables only ever join with themselves, so every reported
// answer survives any valuation (soundness); completeness holds for
// queries whose certain derivations need no variable cells, and is
// checked against repair enumeration in the tests.
func (v *VTable) CertainAnswers(q algebra.CQ) (*relation.Instance, error) {
	frozen := relation.NewDatabase()
	in := relation.NewInstance(v.schema)
	marker := "\x02var:"
	for _, row := range v.rows {
		t := make(relation.Tuple, len(row))
		for j, c := range row {
			if c.IsVar {
				t[j] = relation.Str(fmt.Sprintf("%s%d", marker, c.Var))
			} else {
				t[j] = c.Val
			}
		}
		if _, err := in.Insert(t); err != nil {
			// Frozen variables may not fit non-string domains; fall back
			// to a domain-compatible marker.
			t2 := make(relation.Tuple, len(row))
			for j, c := range row {
				if c.IsVar {
					t2[j] = freezeAs(v.schema.Attr(j), int(c.Var))
				} else {
					t2[j] = c.Val
				}
			}
			if _, err := in.Insert(t2); err != nil {
				return nil, fmt.Errorf("repr: cannot freeze row: %v", err)
			}
		}
	}
	frozen.Add(in)
	ans, err := q.Eval(frozen)
	if err != nil {
		return nil, err
	}
	out := relation.NewInstance(ans.Schema())
	for _, t := range ans.Tuples() {
		hasVar := false
		for _, val := range t {
			if isFrozen(val, marker) {
				hasVar = true
				break
			}
		}
		if !hasVar {
			out.MustInsert(t...)
		}
	}
	return out, nil
}

// freezeAs produces a domain-compatible frozen constant for non-string
// attributes (large sentinel values outside realistic active domains).
func freezeAs(a relation.Attribute, varID int) relation.Value {
	switch a.Domain.Kind() {
	case relation.KindInt:
		return relation.Int(int64(1<<60) + int64(varID))
	case relation.KindFloat:
		return relation.Float(1e18 + float64(varID))
	case relation.KindBool:
		return relation.Bool(varID%2 == 0)
	default:
		return relation.Str(fmt.Sprintf("\x02var:%d", varID))
	}
}

func isFrozen(v relation.Value, marker string) bool {
	switch v.Kind() {
	case relation.KindString:
		return strings.HasPrefix(v.StrVal(), marker)
	case relation.KindInt:
		return v.IntVal() >= 1<<60
	case relation.KindFloat:
		return v.FloatVal() >= 1e18
	default:
		return false
	}
}
