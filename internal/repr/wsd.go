package repr

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/relation"
)

// World-set decompositions (WSDs), the Section 5.3 alternative
// representation the paper discusses (Antova–Koch–Olteanu): a finite set
// of possible worlds written as the product of independent components.
// For X-repairs under key constraints the decomposition is natural — each
// conflicting key group chooses its surviving duplicate class
// independently — so a WSD of linear size represents the exponentially
// many repairs of the Example 5.1 family.

// Choice is one local world of a component: the tuples that survive when
// the choice is taken.
type Choice struct {
	Tuples []relation.Tuple
}

// Component is an independent factor of the world set.
type Component struct {
	Choices []Choice
}

// WSD is a world-set decomposition over one schema: the fixed base tuples
// crossed with the product of component choices.
type WSD struct {
	schema *relation.Schema
	base   []relation.Tuple
	comps  []Component
}

// Schema returns the schema.
func (w *WSD) Schema() *relation.Schema { return w.schema }

// Components returns the number of components.
func (w *WSD) Components() int { return len(w.comps) }

// WorldCount returns the number of represented worlds (capped at
// math.MaxInt64 on overflow, with the second result false).
func (w *WSD) WorldCount() (int64, bool) {
	count := int64(1)
	for _, c := range w.comps {
		n := int64(len(c.Choices))
		if n == 0 {
			return 0, true
		}
		if count > math.MaxInt64/n {
			return math.MaxInt64, false
		}
		count *= n
	}
	return count, true
}

// Size returns the number of tuples stored by the decomposition — the
// measure on which WSDs are exponentially more succinct than enumerating
// worlds.
func (w *WSD) Size() int {
	n := len(w.base)
	for _, c := range w.comps {
		for _, ch := range c.Choices {
			n += len(ch.Tuples)
		}
	}
	return n
}

// String summarizes the decomposition.
func (w *WSD) String() string {
	count, exact := w.WorldCount()
	suffix := ""
	if !exact {
		suffix = "+"
	}
	return fmt.Sprintf("WSD over %s: %d base tuples × %d components = %d%s worlds (size %d)",
		w.schema.Name(), len(w.base), len(w.comps), count, suffix, w.Size())
}

// Worlds materializes up to limit worlds (0 = all; beware the product).
func (w *WSD) Worlds(limit int) []*relation.Instance {
	var out []*relation.Instance
	choice := make([]int, len(w.comps))
	for {
		in := relation.NewInstance(w.schema)
		for _, t := range w.base {
			in.MustInsert(t...)
		}
		for ci, c := range w.comps {
			for _, t := range c.Choices[choice[ci]].Tuples {
				in.MustInsert(t...)
			}
		}
		out = append(out, in)
		if limit > 0 && len(out) >= limit {
			return out
		}
		// Advance the odometer.
		i := 0
		for ; i < len(choice); i++ {
			choice[i]++
			if choice[i] < len(w.comps[i].Choices) {
				break
			}
			choice[i] = 0
		}
		if i == len(choice) {
			return out
		}
	}
}

// WSDFromKeyRepairs decomposes the X-repair world set of an instance
// under a key: tuples in clean key groups form the base; each dirty group
// becomes a component whose choices are its duplicate classes (fully
// equal tuples survive together; distinct classes conflict pairwise).
func WSDFromKeyRepairs(in *relation.Instance, keyAttrs []string) (*WSD, error) {
	s := in.Schema()
	keyPos, err := s.Positions(keyAttrs)
	if err != nil {
		return nil, fmt.Errorf("repr: %v", err)
	}
	w := &WSD{schema: s}
	ix := relation.BuildIndex(in, keyPos)
	type group struct {
		key string
		ids []relation.TID
	}
	var groups []group
	ix.Groups(1, func(k string, ids []relation.TID) {
		groups = append(groups, group{k, ids})
	})
	sort.Slice(groups, func(i, j int) bool { return groups[i].key < groups[j].key })
	for _, g := range groups {
		classes := make(map[string][]relation.Tuple)
		var order []string
		for _, id := range g.ids {
			t, _ := in.Tuple(id)
			k := t.Key()
			if _, ok := classes[k]; !ok {
				order = append(order, k)
			}
			classes[k] = append(classes[k], t)
		}
		sort.Strings(order)
		if len(order) == 1 {
			w.base = append(w.base, classes[order[0]]...)
			continue
		}
		comp := Component{}
		for _, k := range order {
			comp.Choices = append(comp.Choices, Choice{Tuples: classes[k]})
		}
		w.comps = append(w.comps, comp)
	}
	return w, nil
}
