// Package denial implements denial constraints (Section 2.3 of Fan,
// PODS 2008): universally quantified sentences
//
//	∀x̄1...x̄m ¬(R1(x̄1) ∧ ... ∧ Rm(x̄m) ∧ ϕ(x̄1,...,x̄m))
//
// where ϕ is a conjunction of built-in predicates (=, ≠, <, >, ≤, ≥).
// Traditional FDs and keys are special cases. The Section 5 repair and
// consistent-query-answering results are largely stated for this class;
// the repair package consumes the conflicts this package detects.
package denial

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/algebra"
	"repro/internal/relation"
)

// DC is a denial constraint. Atoms and Conds form the forbidden
// conjunction: an instance satisfies the constraint iff no assignment of
// tuples to atoms satisfies every atom and condition.
type DC struct {
	Name  string
	Atoms []algebra.Atom
	Conds []algebra.Cond
}

// String renders the constraint as ¬(body).
func (d DC) String() string {
	parts := make([]string, 0, len(d.Atoms)+len(d.Conds))
	for _, a := range d.Atoms {
		parts = append(parts, a.String())
	}
	for _, c := range d.Conds {
		parts = append(parts, c.String())
	}
	name := d.Name
	if name == "" {
		name = "dc"
	}
	return fmt.Sprintf("%s: ¬(%s)", name, strings.Join(parts, " ∧ "))
}

// cq views the constraint body as a Boolean conjunctive query.
func (d DC) cq() algebra.CQ {
	return algebra.CQ{Atoms: d.Atoms, Conds: d.Conds}
}

// Validate checks the body against db's schemas.
func (d DC) Validate(db *relation.Database) error { return d.cq().Validate(db) }

// Satisfies reports whether db satisfies the denial constraint, i.e. the
// forbidden pattern has no match.
func Satisfies(db *relation.Database, d DC) bool {
	sat, err := d.cq().Satisfied(db)
	return err == nil && !sat
}

// SatisfiesAll reports db ⊨ Σ.
func SatisfiesAll(db *relation.Database, set []DC) bool {
	for _, d := range set {
		if !Satisfies(db, d) {
			return false
		}
	}
	return true
}

// TupleRef identifies one tuple of one relation.
type TupleRef struct {
	Rel string
	TID relation.TID
}

// String renders the reference.
func (r TupleRef) String() string { return fmt.Sprintf("%s#%d", r.Rel, r.TID) }

// Conflict is one match of a denial constraint's forbidden pattern: the
// set of participating tuples. Deleting any member resolves the match
// (the basis of X-repairs and the conflict hypergraph).
type Conflict struct {
	DC     *DC
	Tuples []TupleRef
}

// String renders the conflict.
func (c Conflict) String() string {
	parts := make([]string, len(c.Tuples))
	for i, t := range c.Tuples {
		parts[i] = t.String()
	}
	name := "dc"
	if c.DC != nil && c.DC.Name != "" {
		name = c.DC.Name
	}
	return fmt.Sprintf("%s{%s}", name, strings.Join(parts, ", "))
}

// Key returns a canonical identity for the conflict's tuple set.
func (c Conflict) Key() string {
	parts := make([]string, len(c.Tuples))
	for i, t := range c.Tuples {
		parts[i] = t.String()
	}
	sort.Strings(parts)
	return strings.Join(parts, "|")
}

// Detect returns every match of the forbidden pattern as a Conflict with
// the participating tuples deduplicated (a match binding the same tuple
// to two atoms lists it once). Limit caps the number of conflicts
// returned (0 = unlimited).
func Detect(db *relation.Database, d *DC, limit int) ([]Conflict, error) {
	if err := d.Validate(db); err != nil {
		return nil, err
	}
	var out []Conflict
	seen := make(map[string]bool)
	b := make(map[string]relation.Value)
	refs := make([]TupleRef, 0, len(d.Atoms))
	var rec func(i int) bool // returns true to stop
	rec = func(i int) bool {
		if i == len(d.Atoms) {
			for _, c := range d.Conds {
				lv, lok := resolveTerm(b, c.Left)
				rv, rok := resolveTerm(b, c.Right)
				if !lok || !rok || !c.Op.Apply(lv, rv) {
					return false
				}
			}
			conflict := Conflict{DC: d, Tuples: dedupRefs(refs)}
			k := conflict.Key()
			if !seen[k] {
				seen[k] = true
				out = append(out, conflict)
			}
			return limit > 0 && len(out) >= limit
		}
		atom := d.Atoms[i]
		in, _ := db.Instance(atom.Rel)
		for _, id := range in.IDs() {
			t, _ := in.Tuple(id)
			var bound []string
			ok := true
			for j, term := range atom.Terms {
				if !term.IsVar() {
					if !t[j].Equal(term.Const) {
						ok = false
						break
					}
					continue
				}
				if v, exists := b[term.Var]; exists {
					if !v.Equal(t[j]) {
						ok = false
						break
					}
					continue
				}
				b[term.Var] = t[j]
				bound = append(bound, term.Var)
			}
			if ok {
				refs = append(refs, TupleRef{Rel: atom.Rel, TID: id})
				stop := rec(i + 1)
				refs = refs[:len(refs)-1]
				if stop {
					for _, v := range bound {
						delete(b, v)
					}
					return true
				}
			}
			for _, v := range bound {
				delete(b, v)
			}
		}
		return false
	}
	rec(0)
	return out, nil
}

// DetectAll combines Detect over a set of constraints.
func DetectAll(db *relation.Database, set []DC, limit int) ([]Conflict, error) {
	var out []Conflict
	for i := range set {
		cs, err := Detect(db, &set[i], limit)
		if err != nil {
			return nil, err
		}
		out = append(out, cs...)
		if limit > 0 && len(out) >= limit {
			return out[:limit], nil
		}
	}
	return out, nil
}

func resolveTerm(b map[string]relation.Value, t algebra.Term) (relation.Value, bool) {
	if !t.IsVar() {
		return t.Const, true
	}
	v, ok := b[t.Var]
	return v, ok
}

func dedupRefs(refs []TupleRef) []TupleRef {
	seen := make(map[TupleRef]bool, len(refs))
	out := make([]TupleRef, 0, len(refs))
	for _, r := range refs {
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	return out
}

// FromFD expresses the traditional FD X → A over schema s as a denial
// constraint: two tuples agreeing on X and differing on A are forbidden.
// (FDs are a special case of denial constraints, Section 2.3.)
func FromFD(s *relation.Schema, lhs []string, rhs string) (DC, error) {
	lp, err := s.Positions(lhs)
	if err != nil {
		return DC{}, err
	}
	rp, ok := s.Lookup(rhs)
	if !ok {
		return DC{}, fmt.Errorf("denial: no attribute %q", rhs)
	}
	mkTerms := func(suffix string) []algebra.Term {
		terms := make([]algebra.Term, s.Arity())
		for i := 0; i < s.Arity(); i++ {
			shared := false
			for _, p := range lp {
				if p == i {
					shared = true
					break
				}
			}
			switch {
			case shared:
				terms[i] = algebra.V(fmt.Sprintf("x%d", i))
			case i == rp:
				terms[i] = algebra.V("y" + suffix)
			default:
				terms[i] = algebra.V(fmt.Sprintf("z%d%s", i, suffix))
			}
		}
		return terms
	}
	return DC{
		Name:  fmt.Sprintf("fd:%s:%s->%s", s.Name(), strings.Join(lhs, ","), rhs),
		Atoms: []algebra.Atom{{Rel: s.Name(), Terms: mkTerms("1")}, {Rel: s.Name(), Terms: mkTerms("2")}},
		Conds: []algebra.Cond{{Left: algebra.V("y1"), Op: algebra.OpNe, Right: algebra.V("y2")}},
	}, nil
}

// Key expresses "X is a key of s" as denial constraints, one per non-key
// attribute.
func Key(s *relation.Schema, keyAttrs []string) ([]DC, error) {
	isKey := make(map[string]bool, len(keyAttrs))
	for _, a := range keyAttrs {
		isKey[a] = true
	}
	var out []DC
	for _, a := range s.Attrs() {
		if isKey[a.Name] {
			continue
		}
		dc, err := FromFD(s, keyAttrs, a.Name)
		if err != nil {
			return nil, err
		}
		out = append(out, dc)
	}
	return out, nil
}
