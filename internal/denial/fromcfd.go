package denial

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/cfd"
)

// FromCFD compiles a CFD into equivalent denial constraints (one or two
// per normal-form row): CFDs are universally quantified implications with
// constants, so each row X → A with pattern tp yields
//
//	¬( R(x̄1) ∧ R(x̄2) ∧ x̄1[X] = x̄2[X] ≍ tp[X] ∧ x̄1[A] ≠ x̄2[A] )
//
// and, when tp[A] is a constant c,
//
//	¬( R(x̄) ∧ x̄[X] ≍ tp[X] ∧ x̄[A] ≠ c ).
//
// Pattern constants become constant terms in the atoms; wildcard X cells
// become shared variables. The compilation makes the X-repair and
// consistent-query-answering machinery (stated for denial constraints in
// Section 5) directly available to conditional dependencies.
func FromCFD(c *cfd.CFD) ([]DC, error) {
	var out []DC
	for pieceIdx, piece := range c.Normalize() {
		s := piece.Schema()
		row := piece.Tableau()[0]
		lhs := piece.LHS()
		a := piece.RHS()[0]

		cellAt := func(pos int) (cfd.Cell, bool) {
			for j, p := range lhs {
				if p == pos {
					return row.LHS[j], true
				}
			}
			return cfd.Cell{}, false
		}
		aInX := false
		for _, p := range lhs {
			if p == a {
				aInX = true
			}
		}

		// Pair constraint (skipped when A ∈ X: equality on X subsumes it).
		if !aInX {
			mkTerms := func(copyTag string) []algebra.Term {
				terms := make([]algebra.Term, s.Arity())
				for i := 0; i < s.Arity(); i++ {
					if cell, inX := cellAt(i); inX {
						if cell.IsWildcard() {
							terms[i] = algebra.V(fmt.Sprintf("x%d", i)) // shared
						} else {
							terms[i] = algebra.C(cell.Value())
						}
						continue
					}
					if i == a {
						terms[i] = algebra.V("y" + copyTag)
						continue
					}
					terms[i] = algebra.V(fmt.Sprintf("z%d%s", i, copyTag))
				}
				return terms
			}
			out = append(out, DC{
				Name: fmt.Sprintf("cfd:%s:row%d:pair", s.Name(), pieceIdx),
				Atoms: []algebra.Atom{
					{Rel: s.Name(), Terms: mkTerms("1")},
					{Rel: s.Name(), Terms: mkTerms("2")},
				},
				Conds: []algebra.Cond{{Left: algebra.V("y1"), Op: algebra.OpNe, Right: algebra.V("y2")}},
			})
		}

		// Single-tuple constraint for a constant RHS cell. The A position
		// always carries the variable y so the ≠ condition is bound; an
		// A ∈ X pattern constant becomes an extra equality condition.
		if !row.RHS[0].IsWildcard() {
			conds := []algebra.Cond{{Left: algebra.V("y"), Op: algebra.OpNe, Right: algebra.C(row.RHS[0].Value())}}
			terms := make([]algebra.Term, s.Arity())
			for i := 0; i < s.Arity(); i++ {
				if i == a {
					terms[i] = algebra.V("y")
					if cell, inX := cellAt(i); inX && !cell.IsWildcard() {
						conds = append(conds, algebra.Cond{Left: algebra.V("y"), Op: algebra.OpEq, Right: algebra.C(cell.Value())})
					}
					continue
				}
				if cell, inX := cellAt(i); inX && !cell.IsWildcard() {
					terms[i] = algebra.C(cell.Value())
					continue
				}
				terms[i] = algebra.V(fmt.Sprintf("w%d", i))
			}
			out = append(out, DC{
				Name:  fmt.Sprintf("cfd:%s:row%d:const", s.Name(), pieceIdx),
				Atoms: []algebra.Atom{{Rel: s.Name(), Terms: terms}},
				Conds: conds,
			})
		}
	}
	return out, nil
}

// FromCFDs compiles a CFD set.
func FromCFDs(set []*cfd.CFD) ([]DC, error) {
	var out []DC
	for _, c := range set {
		dcs, err := FromCFD(c)
		if err != nil {
			return nil, err
		}
		out = append(out, dcs...)
	}
	return out, nil
}
