package denial_test

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/denial"
	"repro/internal/paperdata"
	"repro/internal/relation"
)

// salarySchema supports the classic denial-constraint example: no employee
// may earn more than their manager.
func salaryDB() *relation.Database {
	db := relation.NewDatabase()
	emp := relation.NewInstance(relation.MustSchema("emp",
		relation.Attr("name", relation.KindString),
		relation.Attr("mgr", relation.KindString),
		relation.Attr("salary", relation.KindInt),
	))
	emp.MustInsert(relation.Str("ann"), relation.Str("cat"), relation.Int(90))
	emp.MustInsert(relation.Str("bob"), relation.Str("cat"), relation.Int(70))
	emp.MustInsert(relation.Str("cat"), relation.Str("cat"), relation.Int(80))
	db.Add(emp)
	return db
}

func salaryDC() denial.DC {
	// ¬(emp(n, m, s) ∧ emp(m, m2, s2) ∧ s > s2)
	return denial.DC{
		Name: "no-higher-than-manager",
		Atoms: []algebra.Atom{
			{Rel: "emp", Terms: []algebra.Term{algebra.V("n"), algebra.V("m"), algebra.V("s")}},
			{Rel: "emp", Terms: []algebra.Term{algebra.V("m"), algebra.V("m2"), algebra.V("s2")}},
		},
		Conds: []algebra.Cond{{Left: algebra.V("s"), Op: algebra.OpGt, Right: algebra.V("s2")}},
	}
}

func TestDenialSatisfactionAndDetect(t *testing.T) {
	db := salaryDB()
	dc := salaryDC()
	if denial.Satisfies(db, dc) {
		t.Error("ann (90) earns more than manager cat (80): constraint must fail")
	}
	conflicts, err := denial.Detect(db, &dc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(conflicts) != 1 {
		t.Fatalf("conflicts = %v, want exactly the (ann, cat) pair", conflicts)
	}
	if len(conflicts[0].Tuples) != 2 {
		t.Errorf("conflict size = %d, want 2", len(conflicts[0].Tuples))
	}
	// Removing ann resolves it.
	db.MustInstance("emp").Delete(0)
	if !denial.Satisfies(db, dc) {
		t.Error("after deleting ann the constraint must hold")
	}
}

func TestDenialSelfJoinDedup(t *testing.T) {
	// A tuple matched by both atoms appears once in the conflict.
	db := relation.NewDatabase()
	r := relation.NewInstance(relation.MustSchema("r",
		relation.Attr("a", relation.KindInt), relation.Attr("b", relation.KindInt)))
	r.MustInsert(relation.Int(5), relation.Int(3)) // a > b within one tuple
	db.Add(r)
	dc := denial.DC{
		Atoms: []algebra.Atom{{Rel: "r", Terms: []algebra.Term{algebra.V("a"), algebra.V("b")}}},
		Conds: []algebra.Cond{{Left: algebra.V("a"), Op: algebra.OpGt, Right: algebra.V("b")}},
	}
	conflicts, err := denial.Detect(db, &dc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(conflicts) != 1 || len(conflicts[0].Tuples) != 1 {
		t.Errorf("conflicts = %v, want one singleton", conflicts)
	}
	_ = conflicts[0].String()
	_ = dc.String()
}

func TestFromFDMatchesCFDSemantics(t *testing.T) {
	d0 := paperdata.Figure1()
	db := relation.NewDatabase()
	db.Add(d0)
	s := d0.Schema()
	// f2: [CC,AC] → city holds on D0.
	dc, err := denial.FromFD(s, []string{"CC", "AC"}, "city")
	if err != nil {
		t.Fatal(err)
	}
	if !denial.Satisfies(db, dc) {
		t.Error("f2 as a denial constraint should hold on D0")
	}
	// Break it: t1's city → EDI makes (CC,AC)=(44,131) map to two cities.
	d0.Update(0, s.MustLookup("city"), relation.Str("EDI"))
	if denial.Satisfies(db, dc) {
		t.Error("after the update f2 must fail")
	}
	conflicts, err := denial.Detect(db, &dc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(conflicts) != 1 {
		t.Errorf("conflicts = %v, want one (t1,t2 group)", conflicts)
	}
	if _, err := denial.FromFD(s, []string{"CC"}, "nope"); err == nil {
		t.Error("want error for unknown RHS")
	}
	if _, err := denial.FromFD(s, []string{"nope"}, "city"); err == nil {
		t.Error("want error for unknown LHS")
	}
}

func TestKeyConstraints(t *testing.T) {
	s := relation.MustSchema("r",
		relation.Attr("k", relation.KindInt),
		relation.Attr("v", relation.KindString),
		relation.Attr("w", relation.KindString),
	)
	dcs, err := denial.Key(s, []string{"k"})
	if err != nil {
		t.Fatal(err)
	}
	if len(dcs) != 2 {
		t.Fatalf("key over 3-ary schema yields %d constraints, want 2", len(dcs))
	}
	db := relation.NewDatabase()
	in := relation.NewInstance(s)
	in.MustInsert(relation.Int(1), relation.Str("x"), relation.Str("p"))
	in.MustInsert(relation.Int(1), relation.Str("y"), relation.Str("p"))
	db.Add(in)
	if denial.SatisfiesAll(db, dcs) {
		t.Error("duplicate key with differing v must violate")
	}
	in.Delete(1)
	if !denial.SatisfiesAll(db, dcs) {
		t.Error("single tuple satisfies the key")
	}
}

func TestDetectLimit(t *testing.T) {
	db := relation.NewDatabase()
	r := relation.NewInstance(relation.MustSchema("r", relation.Attr("a", relation.KindInt)))
	for i := 0; i < 6; i++ {
		r.MustInsert(relation.Int(int64(i)))
	}
	db.Add(r)
	dc := denial.DC{
		Atoms: []algebra.Atom{
			{Rel: "r", Terms: []algebra.Term{algebra.V("x")}},
			{Rel: "r", Terms: []algebra.Term{algebra.V("y")}},
		},
		Conds: []algebra.Cond{{Left: algebra.V("x"), Op: algebra.OpLt, Right: algebra.V("y")}},
	}
	all, err := denial.Detect(db, &dc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 15 {
		t.Errorf("all pairs = %d, want C(6,2)=15", len(all))
	}
	few, err := denial.Detect(db, &dc, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(few) != 4 {
		t.Errorf("limited = %d, want 4", len(few))
	}
	combined, err := denial.DetectAll(db, []denial.DC{dc, dc}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(combined) != 20 {
		t.Errorf("DetectAll limit = %d, want 20", len(combined))
	}
}

func TestDetectValidates(t *testing.T) {
	db := relation.NewDatabase()
	dc := denial.DC{Atoms: []algebra.Atom{{Rel: "ghost", Terms: []algebra.Term{algebra.V("x")}}}}
	if _, err := denial.Detect(db, &dc, 0); err == nil {
		t.Error("want validation error for unknown relation")
	}
}
