package denial_test

import (
	"testing"
	"testing/quick"

	"repro/internal/cfd"
	"repro/internal/denial"
	"repro/internal/gen"
	"repro/internal/paperdata"
	"repro/internal/relation"
	"repro/internal/repair"
)

// TestFromCFDEquivalentOnFigure1: the compiled denial constraints flag
// exactly the instances the CFDs flag.
func TestFromCFDEquivalentOnFigure1(t *testing.T) {
	d0 := paperdata.Figure1()
	s := d0.Schema()
	db := relation.NewDatabase()
	db.Add(d0)
	for _, c := range []*cfd.CFD{paperdata.Phi1(s), paperdata.Phi2(s), paperdata.Phi3(s), paperdata.F1(s)} {
		dcs, err := denial.FromCFD(c)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := denial.SatisfiesAll(db, dcs), cfd.Satisfies(d0, c); got != want {
			t.Errorf("%v: denial=%v cfd=%v", c, got, want)
		}
	}
}

// TestFromCFDEquivalentProperty: random instances agree across the two
// formalisms for a mixed CFD set.
func TestFromCFDEquivalentProperty(t *testing.T) {
	s := paperdata.CustomerSchema()
	set := []*cfd.CFD{paperdata.Phi1(s), paperdata.Phi2(s)}
	dcs, err := denial.FromCFDs(set)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(seed int64) bool {
		in := gen.Customers(gen.CustomerConfig{N: 30, Seed: seed, ErrorRate: 0.3})
		db := relation.NewDatabase()
		db.Add(in)
		return denial.SatisfiesAll(db, dcs) == cfd.SatisfiesAll(in, set)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestFromCFDRHSConstInLHS covers the A ∈ X corner: [A] → [A] with a
// constant pattern forces the value.
func TestFromCFDRHSConstInLHS(t *testing.T) {
	s := relation.MustSchema("r", relation.Attr("A", relation.KindString))
	// Row (d ‖ c), d ≠ c: any tuple with A = d violates.
	c := cfd.MustNew(s, []string{"A"}, []string{"A"},
		cfd.Row([]cfd.Cell{cfd.Const(relation.Str("d"))}, []cfd.Cell{cfd.Const(relation.Str("c"))}))
	dcs, err := denial.FromCFD(c)
	if err != nil {
		t.Fatal(err)
	}
	db := relation.NewDatabase()
	in := relation.NewInstance(s)
	in.MustInsert(relation.Str("d"))
	db.Add(in)
	if got, want := denial.SatisfiesAll(db, dcs), cfd.Satisfies(in, c); got != want {
		t.Fatalf("A∈X corner: denial=%v cfd=%v", got, want)
	}
	if want := false; cfd.Satisfies(in, c) != want {
		t.Fatal("precondition: the instance violates the CFD")
	}
	in.Update(0, 0, relation.Str("e")) // no longer matches the pattern
	if !denial.SatisfiesAll(db, dcs) || !cfd.Satisfies(in, c) {
		t.Error("non-matching tuple must satisfy both")
	}
}

// TestXRepairUnderCFDs: the compilation unlocks X-repairs for conditional
// dependencies — the UK zip/street clash of Figure 1 has exactly two
// X-repairs (drop t1 or drop t2).
func TestXRepairUnderCFDs(t *testing.T) {
	d0 := paperdata.Figure1()
	s := d0.Schema()
	db := relation.NewDatabase()
	db.Add(d0)
	dcs, err := denial.FromCFD(paperdata.Phi1(s))
	if err != nil {
		t.Fatal(err)
	}
	h, err := repair.BuildHypergraph(db, dcs)
	if err != nil {
		t.Fatal(err)
	}
	repairs := h.EnumerateXRepairs(0)
	if len(repairs) != 2 {
		t.Fatalf("X-repairs under ϕ1 = %d, want 2", len(repairs))
	}
	for _, kept := range repairs {
		if len(kept) != 2 { // one of t1/t2 dropped, t3 kept
			t.Errorf("repair keeps %d tuples, want 2", len(kept))
		}
	}
}
