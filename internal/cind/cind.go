// Package cind implements conditional inclusion dependencies (CINDs) from
// Section 2.2 of Fan (PODS 2008): a CIND on schemas (R1, R2) is
// ψ = (R1[X; Xp] ⊆ R2[Y; Yp], Tp) where R1[X] ⊆ R2[Y] is the embedded
// IND and the pattern tableau Tp carries constants for the Xp (source
// condition) and Yp (target enforcement) attributes. An instance pair
// satisfies ψ iff for every pattern row tp and every t1 ∈ D1 with
// t1[Xp] = tp[Xp] there is a t2 ∈ D2 with t1[X] = t2[Y] and
// t2[Yp] = tp[Yp].
//
// The package provides satisfaction and violation detection, the O(1)
// consistency result of Theorem 4.1 (every CIND set has a nonempty
// witness, which BuildWitness constructs), chase-based implication
// matching the EXPTIME/PSPACE bounds of Theorems 4.2/4.3 (exact at chase
// fixpoint, three-valued under a depth bound for cyclic sets), a sound
// inference system, and the bounded semi-decision procedures for CFDs and
// CINDs taken together (undecidable in general — Theorems 4.1/4.2).
package cind

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/relation"
)

// PatternRow is one pattern tuple of a CIND tableau: constants for the Xp
// attributes of R1 and the Yp attributes of R2.
type PatternRow struct {
	XpVals []relation.Value
	YpVals []relation.Value
}

// String renders the row as "x1, x2 || y1".
func (r PatternRow) String() string {
	return valsString(r.XpVals) + " || " + valsString(r.YpVals)
}

func valsString(vs []relation.Value) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = v.String()
	}
	return strings.Join(parts, ", ")
}

// CIND is a conditional inclusion dependency (R1[X; Xp] ⊆ R2[Y; Yp], Tp).
type CIND struct {
	src, dst *relation.Schema
	x, y     []int // embedded IND correspondence, len(x) == len(y)
	xp, yp   []int // pattern attribute positions
	tableau  []PatternRow
}

// New builds a CIND. X and Y must have equal positive length with
// kind-compatible attributes; pattern constants must be admissible in
// their domains. A CIND with empty Xp and Yp and a single empty row is a
// traditional IND.
func New(src, dst *relation.Schema, x, y, xp, yp []string, rows ...PatternRow) (*CIND, error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, fmt.Errorf("cind: %s ⊆ %s: embedded IND needs equal-length nonempty X and Y", src.Name(), dst.Name())
	}
	xPos, err := src.Positions(x)
	if err != nil {
		return nil, fmt.Errorf("cind: %v", err)
	}
	yPos, err := dst.Positions(y)
	if err != nil {
		return nil, fmt.Errorf("cind: %v", err)
	}
	for i := range xPos {
		if src.Attr(xPos[i]).Domain.Kind() != dst.Attr(yPos[i]).Domain.Kind() {
			return nil, fmt.Errorf("cind: %s.%s and %s.%s have incompatible kinds",
				src.Name(), x[i], dst.Name(), y[i])
		}
	}
	xpPos, err := src.Positions(xp)
	if err != nil {
		return nil, fmt.Errorf("cind: %v", err)
	}
	ypPos, err := dst.Positions(yp)
	if err != nil {
		return nil, fmt.Errorf("cind: %v", err)
	}
	c := &CIND{src: src, dst: dst, x: xPos, y: yPos, xp: xpPos, yp: ypPos}
	for i, r := range rows {
		if len(r.XpVals) != len(xpPos) || len(r.YpVals) != len(ypPos) {
			return nil, fmt.Errorf("cind: row %d: pattern arity mismatch", i)
		}
		for j, v := range r.XpVals {
			if v.IsNull() || !src.Attr(xpPos[j]).Domain.Contains(v) {
				return nil, fmt.Errorf("cind: row %d: %v not admissible for %s.%s", i, v, src.Name(), xp[j])
			}
		}
		for j, v := range r.YpVals {
			if v.IsNull() || !dst.Attr(ypPos[j]).Domain.Contains(v) {
				return nil, fmt.Errorf("cind: row %d: %v not admissible for %s.%s", i, v, dst.Name(), yp[j])
			}
		}
		c.tableau = append(c.tableau, PatternRow{
			XpVals: append([]relation.Value(nil), r.XpVals...),
			YpVals: append([]relation.Value(nil), r.YpVals...),
		})
	}
	if len(c.tableau) == 0 {
		if len(xpPos) != 0 || len(ypPos) != 0 {
			return nil, fmt.Errorf("cind: pattern attributes but no pattern rows")
		}
		c.tableau = []PatternRow{{}} // traditional IND: single empty row
	}
	return c, nil
}

// MustNew is New that panics on error.
func MustNew(src, dst *relation.Schema, x, y, xp, yp []string, rows ...PatternRow) *CIND {
	c, err := New(src, dst, x, y, xp, yp, rows...)
	if err != nil {
		panic(err)
	}
	return c
}

// IND builds the traditional inclusion dependency R1[X] ⊆ R2[Y], the
// special case of a CIND with empty pattern lists.
func IND(src, dst *relation.Schema, x, y []string) (*CIND, error) {
	return New(src, dst, x, y, nil, nil)
}

// MustIND is IND that panics on error.
func MustIND(src, dst *relation.Schema, x, y []string) *CIND {
	c, err := IND(src, dst, x, y)
	if err != nil {
		panic(err)
	}
	return c
}

// Src returns the source (R1) schema.
func (c *CIND) Src() *relation.Schema { return c.src }

// Dst returns the target (R2) schema.
func (c *CIND) Dst() *relation.Schema { return c.dst }

// X returns the source correspondence positions.
func (c *CIND) X() []int { return c.x }

// Y returns the target correspondence positions.
func (c *CIND) Y() []int { return c.y }

// Xp returns the source pattern positions.
func (c *CIND) Xp() []int { return c.xp }

// Yp returns the target pattern positions.
func (c *CIND) Yp() []int { return c.yp }

// Tableau returns the pattern rows (not to be modified).
func (c *CIND) Tableau() []PatternRow { return c.tableau }

// IsIND reports whether the CIND is a traditional IND.
func (c *CIND) IsIND() bool { return len(c.xp) == 0 && len(c.yp) == 0 }

// String renders the CIND in the paper's notation.
func (c *CIND) String() string {
	names := func(s *relation.Schema, pos []int) string {
		parts := make([]string, len(pos))
		for i, p := range pos {
			parts[i] = s.Attr(p).Name
		}
		return strings.Join(parts, ", ")
	}
	rows := make([]string, len(c.tableau))
	for i, r := range c.tableau {
		rows[i] = r.String()
	}
	return fmt.Sprintf("%s[%s; %s] ⊆ %s[%s; %s], {%s}",
		c.src.Name(), names(c.src, c.x), names(c.src, c.xp),
		c.dst.Name(), names(c.dst, c.y), names(c.dst, c.yp),
		strings.Join(rows, "; "))
}

// Violation records a source tuple with no matching target tuple.
type Violation struct {
	CIND *CIND
	Row  int
	TID  relation.TID // offending tuple of the source relation
}

// String renders the violation.
func (v Violation) String() string {
	return fmt.Sprintf("%s: tuple %d of %s has no match in %s (row %d)",
		v.CIND, v.TID, v.CIND.src.Name(), v.CIND.dst.Name(), v.Row)
}

// TargetKeyPos returns the target index positions Y ∪ Yp, in the order
// the detection probe key is built (Y first, then Yp) — the position
// set whose target-relation index DetectAll and the detection engine
// share across every CIND with the same target shape.
func (c *CIND) TargetKeyPos() []int {
	return append(append(make([]int, 0, len(c.y)+len(c.yp)), c.y...), c.yp...)
}

// SourceGroupPos returns the source grouping positions X ∪ Xp (X order
// first, then the Xp positions not already in X): all tuples of one
// group agree on the embedded-IND key and on every pattern attribute,
// so the snapshot path evaluates each group with one pattern check and
// one target probe. A CIND whose X ∪ Xp equals a CFD's LHS position
// set shares that CFD's group index in the engine planner.
func (c *CIND) SourceGroupPos() []int {
	out := append(make([]int, 0, len(c.x)+len(c.xp)), c.x...)
	for _, p := range c.xp {
		seen := false
		for _, q := range c.x {
			if q == p {
				seen = true
				break
			}
		}
		if !seen {
			out = append(out, p)
		}
	}
	return out
}

// Satisfies reports (D1, D2) ⊨ ψ for the instances of ψ's relations in db.
func Satisfies(db *relation.Database, c *CIND) bool {
	var d detector
	return len(d.detect(db, c, true)) == 0
}

// SatisfiesAll reports db ⊨ Σ.
func SatisfiesAll(db *relation.Database, set []*CIND) bool {
	var d detector // share target indexes across the set, like DetectAll
	for _, c := range set {
		if len(d.detect(db, c, true)) != 0 {
			return false
		}
	}
	return true
}

// Detect returns all violations of ψ in db — source tuples matching some
// pattern row with no corresponding target tuple — in the canonical
// per-CIND order (Row, then TID).
func Detect(db *relation.Database, c *CIND) []Violation {
	var d detector
	return d.detect(db, c, false)
}

// DetectAll combines Detect over a set in the canonical reporting order
// (see SortViolations). One target index per distinct (target relation,
// key positions) and one probe key buffer are shared across the whole
// set instead of being rebuilt per CIND.
func DetectAll(db *relation.Database, set []*CIND) []Violation {
	var out []Violation
	var d detector
	for _, c := range set {
		out = append(out, d.detect(db, c, false)...)
	}
	SortViolations(out)
	return out
}

// SortViolations sorts a combined violation slice into the canonical
// reporting order: (TID, Row), stably, so violations of distinct CINDs
// that tie on both keys keep the Σ order they were gathered in — the
// CIND counterpart of cfd.SortViolations, and the comparator the
// detection engine merges mixed batches with.
func SortViolations(vs []Violation) {
	sort.SliceStable(vs, func(i, j int) bool {
		if vs[i].TID != vs[j].TID {
			return vs[i].TID < vs[j].TID
		}
		return vs[i].Row < vs[j].Row
	})
}

// detector carries the state one detection batch shares across CINDs:
// the target indexes keyed by (relation, key positions) — building one
// costs a full pass over the target relation, which used to dominate
// DetectAll for sets over few targets — and the probe key buffer, so
// the per-probe cost is appending value keys to a reused []byte instead
// of a strings.Builder and a projected tuple per source tuple.
type detector struct {
	ixs    map[string]*relation.Index
	keyBuf []byte
}

// targetIndex returns the shared index of the target relation on keyPos,
// building it on first request. A missing target relation indexes as
// empty (every probe misses), matching an empty instance.
func (d *detector) targetIndex(db *relation.Database, c *CIND, keyPos []int) *relation.Index {
	key := c.dst.Name()
	for _, p := range keyPos {
		key += "," + strconv.Itoa(p)
	}
	if ix, ok := d.ixs[key]; ok {
		return ix
	}
	dst, ok := db.Instance(c.dst.Name())
	if !ok {
		dst = relation.NewInstance(c.dst) // empty target
	}
	ix := relation.BuildIndex(dst, keyPos)
	if d.ixs == nil {
		d.ixs = make(map[string]*relation.Index)
	}
	d.ixs[key] = ix
	return ix
}

func (d *detector) detect(db *relation.Database, c *CIND, firstOnly bool) []Violation {
	var out []Violation
	src, ok := db.Instance(c.src.Name())
	if !ok {
		return nil // missing source relation: vacuously satisfied
	}
	ix := d.targetIndex(db, c, c.TargetKeyPos())
	for rowIdx, row := range c.tableau {
		for _, id := range src.IDs() {
			t, _ := src.Tuple(id)
			matches := true
			for j, p := range c.xp {
				if !t[p].Equal(row.XpVals[j]) {
					matches = false
					break
				}
			}
			if !matches {
				continue
			}
			// Want a target tuple with t2[Y] = t1[X] and t2[Yp] = tp[Yp].
			key := d.keyBuf[:0]
			for _, p := range c.x {
				key = append(t[p].AppendKey(key), '\x01')
			}
			for _, v := range row.YpVals {
				key = append(v.AppendKey(key), '\x01')
			}
			d.keyBuf = key
			if len(ix.LookupKeyBytes(key)) == 0 {
				out = append(out, Violation{CIND: c, Row: rowIdx, TID: id})
				if firstOnly {
					return out
				}
			}
		}
	}
	return out
}
