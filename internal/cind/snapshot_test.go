package cind_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/cind"
	"repro/internal/gen"
	"repro/internal/paperdata"
	"repro/internal/relation"
)

// snapDetect runs the snapshot-path detector for c over db the way the
// engine does: one frozen snapshot per relation, shared group indexes.
func snapDetect(db *relation.Database, c *cind.CIND) []cind.Violation {
	dbs := relation.NewDBSnapshot(db)
	src, _ := dbs.Snapshot(c.Src().Name())
	dst, _ := dbs.Snapshot(c.Dst().Name())
	var srcIx, dstIx *relation.CodeIndex
	if src != nil {
		srcIx = src.CodeIndexOn(c.SourceGroupPos())
	}
	if dst != nil {
		dstIx = dst.CodeIndexOn(c.TargetKeyPos())
	}
	return cind.DetectWithSnapshot(src, dst, c, srcIx, dstIx)
}

// TestSnapshotMatchesLegacy drives randomized order/book/CD databases —
// including mutation churn that grows the shared dictionaries — through
// both detectors and asserts byte-identical output per CIND, and
// identical Satisfies verdicts.
func TestSnapshotMatchesLegacy(t *testing.T) {
	phi4, phi5, phi6 := figure4()
	sigma := []*cind.CIND{phi4, phi5, phi6}
	for _, seed := range []int64{1, 7, 23} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			db := gen.Orders(gen.OrdersConfig{Books: 40, CDs: 30, Orders: 300, Seed: seed, ViolationRate: 0.2})
			for round := 0; round < 8; round++ {
				mutateOrders(r, db)
				for i, c := range sigma {
					legacy := cind.Detect(db, c)
					snap := snapDetect(db, c)
					if !reflect.DeepEqual(legacy, snap) {
						t.Fatalf("seed %d round %d ϕ%d: legacy %d violations, snapshot %d:\nlegacy   %v\nsnapshot %v",
							seed, round, i+4, len(legacy), len(snap), legacy, snap)
					}
					dbs := relation.NewDBSnapshot(db)
					src, _ := dbs.Snapshot(c.Src().Name())
					dst, _ := dbs.Snapshot(c.Dst().Name())
					if got, want := cind.SatisfiesWithSnapshot(src, dst, c, nil, nil), cind.Satisfies(db, c); got != want {
						t.Fatalf("seed %d round %d ϕ%d: SatisfiesWithSnapshot = %v, legacy %v", seed, round, i+4, got, want)
					}
				}
			}
		})
	}
}

// mutateOrders applies a small random batch across the three relations:
// order churn (source side), book/CD churn (target side), fresh values
// included so dictionaries grow.
func mutateOrders(r *rand.Rand, db *relation.Database) {
	order := db.MustInstance("order")
	book := db.MustInstance("book")
	cd := db.MustInstance("CD")
	for i := 0; i < 10; i++ {
		switch r.Intn(6) {
		case 0:
			order.MustInsert(relation.Str(fmt.Sprintf("x%d", r.Intn(10000))),
				relation.Str(fmt.Sprintf("Book Title %d", r.Intn(60))),
				relation.Str([]string{"book", "CD"}[r.Intn(2)]),
				relation.Float(float64(5+r.Intn(30))+0.99))
		case 1:
			ids := order.IDs()
			if len(ids) > 0 {
				order.Delete(ids[r.Intn(len(ids))])
			}
		case 2:
			ids := order.IDs()
			if len(ids) > 0 {
				// Retitle an order, sometimes to a brand-new string.
				title := fmt.Sprintf("Book Title %d", r.Intn(60))
				if r.Intn(3) == 0 {
					title = fmt.Sprintf("Ghost %d", r.Intn(100000))
				}
				order.Update(ids[r.Intn(len(ids))], 1, relation.Str(title))
			}
		case 3:
			book.MustInsert(relation.Str(fmt.Sprintf("nb%d", r.Intn(10000))),
				relation.Str(fmt.Sprintf("Book Title %d", r.Intn(60))),
				relation.Float(float64(5+r.Intn(30))+0.99),
				relation.Str([]string{"hard-cover", "audio"}[r.Intn(2)]))
		case 4:
			ids := book.IDs()
			if len(ids) > 0 {
				book.Delete(ids[r.Intn(len(ids))])
			}
		default:
			ids := cd.IDs()
			if len(ids) > 0 {
				cd.Update(ids[r.Intn(len(ids))], 3, relation.Str([]string{"a-book", "rock"}[r.Intn(2)]))
			}
		}
	}
}

// TestSnapshotMissingAndEmptyTargets pins the edge semantics: a missing
// source relation is vacuous, a missing or empty target relation fails
// every probe, on both paths.
func TestSnapshotMissingAndEmptyTargets(t *testing.T) {
	phi4, _, _ := figure4()
	// Missing target: every matching order tuple violates.
	db := relation.NewDatabase()
	order := relation.NewInstance(paperdata.OrderSchema())
	order.MustInsert(relation.Str("a1"), relation.Str("T1"), relation.Str("book"), relation.Float(9.99))
	order.MustInsert(relation.Str("a2"), relation.Str("T2"), relation.Str("CD"), relation.Float(7.94))
	db.Add(order)
	legacy := cind.Detect(db, phi4)
	snap := snapDetect(db, phi4)
	if !reflect.DeepEqual(legacy, snap) {
		t.Fatalf("missing target: legacy %v, snapshot %v", legacy, snap)
	}
	if len(snap) != 1 || snap[0].TID != 0 {
		t.Fatalf("missing target: want the single 'book' order flagged, got %v", snap)
	}

	// Empty target relation: same verdicts.
	db.Add(relation.NewInstance(paperdata.BookSchema()))
	legacy = cind.Detect(db, phi4)
	snap = snapDetect(db, phi4)
	if !reflect.DeepEqual(legacy, snap) {
		t.Fatalf("empty target: legacy %v, snapshot %v", legacy, snap)
	}

	// Missing source relation: vacuously satisfied.
	db2 := relation.NewDatabase()
	db2.Add(relation.NewInstance(paperdata.BookSchema()))
	if got := snapDetect(db2, phi4); got != nil {
		t.Fatalf("missing source: want nil, got %v", got)
	}
	if !cind.Satisfies(db2, phi4) {
		t.Fatal("missing source: legacy path should be vacuous too")
	}
}

// TestSnapshotForcedCollisions re-runs an equivalence round with every
// CodeIndex probe forced into one collision chain, so target matching
// survives on code verification alone.
func TestSnapshotForcedCollisions(t *testing.T) {
	defer relation.SetCodeHasherForTest(func([]uint32) uint64 { return 42 })()
	phi4, phi5, phi6 := figure4()
	db := gen.Orders(gen.OrdersConfig{Books: 25, CDs: 20, Orders: 150, Seed: 5, ViolationRate: 0.25})
	for i, c := range []*cind.CIND{phi4, phi5, phi6} {
		legacy := cind.Detect(db, c)
		snap := snapDetect(db, c)
		if !reflect.DeepEqual(legacy, snap) {
			t.Fatalf("ϕ%d under forced collisions: legacy %v, snapshot %v", i+4, legacy, snap)
		}
	}
}

// TestDetectTouchedWithSnapshot checks the incremental entry point
// against the restriction of a full detection to the touched TIDs.
func TestDetectTouchedWithSnapshot(t *testing.T) {
	phi4, _, _ := figure4()
	db := gen.Orders(gen.OrdersConfig{Books: 30, CDs: 20, Orders: 200, Seed: 11, ViolationRate: 0.2})
	dbs := relation.NewDBSnapshot(db)
	src, _ := dbs.Snapshot("order")
	dst, _ := dbs.Snapshot("book")
	full := cind.DetectWithSnapshot(src, dst, phi4, nil, nil)

	touched := []relation.TID{0, 3, 5, 7, 1000000} // unknown TIDs are skipped
	inTouched := func(id relation.TID) bool {
		for _, t := range touched {
			if t == id {
				return true
			}
		}
		return false
	}
	var want []cind.Violation
	for _, v := range full {
		if inTouched(v.TID) {
			want = append(want, v)
		}
	}
	got := cind.DetectTouchedWithSnapshot(src, dst, phi4, nil, touched)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("DetectTouched = %v, want restriction %v", got, want)
	}
}

// TestDetectAllCanonicalOrder asserts the satellite contract: DetectAll
// output is sorted by (TID, Row) with Σ order breaking ties.
func TestDetectAllCanonicalOrder(t *testing.T) {
	phi4, phi5, phi6 := figure4()
	db := gen.Orders(gen.OrdersConfig{Books: 20, CDs: 20, Orders: 150, Seed: 3, ViolationRate: 0.3})
	vs := cind.DetectAll(db, []*cind.CIND{phi4, phi5, phi6})
	if len(vs) == 0 {
		t.Fatal("expected violations at 30% violation rate")
	}
	for i := 1; i < len(vs); i++ {
		a, b := vs[i-1], vs[i]
		if a.TID > b.TID || (a.TID == b.TID && a.Row > b.Row) {
			t.Fatalf("DetectAll not in (TID, Row) order at %d: %v before %v", i, a, b)
		}
	}
}
