// Sharded CIND evaluation. A CIND is never shard-local under hash
// partitioning — a source tuple's match can live in any shard of the
// target relation — so the sharded engine evaluates it scatter-gather:
// each source shard scans its own tuples and probes a small replicated
// KeyIndex holding the Y ∪ Yp projection keys of EVERY shard's target
// tuples (the "broadcast" side of the seam: target-side changes update
// the replica, and the changed keys are broadcast to all source
// shards' touched lists). Keys are the exact bytes the legacy detector
// probes with (Value.AppendKey + '\x01' per position), so the
// key-index path reports byte-identical violations.

package cind

import (
	"sort"

	"repro/internal/relation"
)

// KeyIndex is a multiset of target-relation projection keys (Y then Yp
// positions, in TargetKeyPos order). One KeyIndex is shared by every
// CIND with the same (target relation, key positions) shape, exactly
// like the engine planner shares target indexes. It is a plain map —
// the caller (the sharded monitor) owns synchronization: maintenance is
// single-writer between detection phases, reads are concurrent.
type KeyIndex struct {
	counts map[string]int
}

// NewKeyIndex returns an empty key multiset.
func NewKeyIndex() *KeyIndex {
	return &KeyIndex{counts: make(map[string]int)}
}

// Add records one target tuple's key.
func (k *KeyIndex) Add(key []byte) { k.counts[string(key)]++ }

// Remove drops one count of the key.
func (k *KeyIndex) Remove(key []byte) {
	s := string(key)
	if n := k.counts[s]; n <= 1 {
		delete(k.counts, s)
	} else {
		k.counts[s] = n - 1
	}
}

// Has reports whether at least one target tuple carries the key.
func (k *KeyIndex) Has(key []byte) bool {
	_, ok := k.counts[string(key)]
	return ok
}

// Len returns the number of distinct keys.
func (k *KeyIndex) Len() int { return len(k.counts) }

// AppendRowKey appends the projection key of snapshot row onto buf: the
// values at pos in order, each terminated by '\x01' — the same bytes
// Tuple.KeyOn and the legacy probe build, so keys made from any
// representation of the same tuple are equal.
func AppendRowKey(buf []byte, snap *relation.Snapshot, row int, pos []int) []byte {
	for _, p := range pos {
		buf = append(snap.Value(row, p).AppendKey(buf), '\x01')
	}
	return buf
}

// AppendTupleKey is AppendRowKey for a materialized tuple.
func AppendTupleKey(buf []byte, t relation.Tuple, pos []int) []byte {
	for _, p := range pos {
		buf = append(t[p].AppendKey(buf), '\x01')
	}
	return buf
}

// appendProbeKey builds the probe for source row r under pattern row:
// t[X] values then the row's Yp constants, matching the target key
// layout of TargetKeyPos.
func appendProbeKey(buf []byte, src *relation.Snapshot, r int, c *CIND, row PatternRow) []byte {
	for _, p := range c.x {
		buf = append(src.Value(r, p).AppendKey(buf), '\x01')
	}
	for _, v := range row.YpVals {
		buf = append(v.AppendKey(buf), '\x01')
	}
	return buf
}

// DetectWithKeys returns all violations of c whose source tuple lies in
// the given source snapshot, resolving target matches through the
// replicated key multiset instead of a target snapshot. Output is in
// (Row, TID) order like DetectWithSnapshot; the caller merges across
// shards and re-sorts canonically.
func DetectWithKeys(src *relation.Snapshot, c *CIND, keys *KeyIndex) []Violation {
	if src == nil || src.Len() == 0 {
		return nil
	}
	var out []Violation
	buf := make([]byte, 0, 64)
	for rowIdx, row := range c.tableau {
		for r := 0; r < src.Len(); r++ {
			match := true
			for j, p := range c.xp {
				if !src.Value(r, p).Equal(row.XpVals[j]) {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			buf = appendProbeKey(buf[:0], src, r, c, row)
			if !keys.Has(buf) {
				out = append(out, Violation{CIND: c, Row: rowIdx, TID: src.TID(r)})
			}
		}
	}
	return out
}

// DetectTouchedWithKeys is DetectWithKeys restricted to the touched
// source TIDs — the sharded counterpart of DetectTouchedWithSnapshot.
// TIDs absent from the snapshot are skipped; each row's segment is
// sorted ascending by TID.
func DetectTouchedWithKeys(src *relation.Snapshot, c *CIND, keys *KeyIndex, touched []relation.TID) []Violation {
	if src == nil || len(touched) == 0 {
		return nil
	}
	var out []Violation
	buf := make([]byte, 0, 64)
	for rowIdx, row := range c.tableau {
		rowStart := len(out)
		for _, id := range touched {
			r, ok := src.Row(id)
			if !ok {
				continue
			}
			match := true
			for j, p := range c.xp {
				if !src.Value(r, p).Equal(row.XpVals[j]) {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			buf = appendProbeKey(buf[:0], src, r, c, row)
			if !keys.Has(buf) {
				out = append(out, Violation{CIND: c, Row: rowIdx, TID: id})
			}
		}
		seg := out[rowStart:]
		sort.Slice(seg, func(i, j int) bool { return seg[i].TID < seg[j].TID })
	}
	return out
}
