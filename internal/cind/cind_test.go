package cind_test

import (
	"testing"

	"repro/internal/cfd"
	"repro/internal/cind"
	"repro/internal/paperdata"
	"repro/internal/relation"
)

// figure4 builds the CINDs ϕ4, ϕ5, ϕ6 of Figure 4.
func figure4() (phi4, phi5, phi6 *cind.CIND) {
	order := paperdata.OrderSchema()
	book := paperdata.BookSchema()
	cd := paperdata.CDSchema()
	phi4 = cind.MustNew(order, book,
		[]string{"title", "price"}, []string{"title", "price"},
		[]string{"type"}, nil,
		cind.PatternRow{XpVals: []relation.Value{relation.Str("book")}})
	phi5 = cind.MustNew(order, cd,
		[]string{"title", "price"}, []string{"album", "price"},
		[]string{"type"}, nil,
		cind.PatternRow{XpVals: []relation.Value{relation.Str("CD")}})
	phi6 = cind.MustNew(cd, book,
		[]string{"album", "price"}, []string{"title", "price"},
		[]string{"genre"}, []string{"format"},
		cind.PatternRow{
			XpVals: []relation.Value{relation.Str("a-book")},
			YpVals: []relation.Value{relation.Str("audio")},
		})
	return
}

// TestFigure4CINDs reproduces the paper's Figure 3/4 claims: D1 satisfies
// cind1 (ϕ4) and cind2 (ϕ5) but violates cind3 (ϕ6) through t9.
func TestFigure4CINDs(t *testing.T) {
	db := paperdata.Figure3()
	phi4, phi5, phi6 := figure4()
	if !cind.Satisfies(db, phi4) {
		t.Error("D1 should satisfy ϕ4 (cind1)")
	}
	if !cind.Satisfies(db, phi5) {
		t.Error("D1 should satisfy ϕ5 (cind2)")
	}
	if cind.Satisfies(db, phi6) {
		t.Error("D1 should violate ϕ6 (cind3): t9 has no audio book match")
	}
	vs := cind.Detect(db, phi6)
	if len(vs) != 1 {
		t.Fatalf("ϕ6 violations = %v, want exactly t9", vs)
	}
	// t9 is the second CD tuple, TID 1.
	if vs[0].TID != 1 {
		t.Errorf("violating TID = %d, want 1 (t9)", vs[0].TID)
	}
	_ = vs[0].String()
}

// TestFigure4FixByInsertion checks the semantics precisely: inserting the
// demanded audio-book tuple repairs ϕ6.
func TestFigure4FixByInsertion(t *testing.T) {
	db := paperdata.Figure3()
	_, _, phi6 := figure4()
	book := db.MustInstance("book")
	book.MustInsert(relation.Str("b99"), relation.Str("Snow White"), relation.Float(7.99), relation.Str("audio"))
	if !cind.Satisfies(db, phi6) {
		t.Error("after inserting the audio edition, ϕ6 must hold")
	}
}

// TestPlainINDsMakeNoSense reproduces the paper's motivation: the
// unconditional INDs order(title,price) ⊆ book(title,price) and
// order(title,price) ⊆ CD(album,price) are both violated by D1.
func TestPlainINDsMakeNoSense(t *testing.T) {
	db := paperdata.Figure3()
	order := paperdata.OrderSchema()
	book := paperdata.BookSchema()
	cd := paperdata.CDSchema()
	ind1 := cind.MustIND(order, book, []string{"title", "price"}, []string{"title", "price"})
	ind2 := cind.MustIND(order, cd, []string{"title", "price"}, []string{"album", "price"})
	// ind1 happens to hold on D1 only because "Snow White" exists as a
	// book at the same price — a coincidence, not a semantic guarantee.
	if !cind.Satisfies(db, ind1) {
		t.Error("on this particular D1, ind1 is (coincidentally) satisfied")
	}
	if cind.Satisfies(db, ind2) {
		t.Error("the book order t5 cannot match a CD: IND must fail")
	}
	if !ind1.IsIND() {
		t.Error("pattern-free CIND should report IsIND")
	}
	if _, _, phi6 := figure4(); phi6.IsIND() {
		t.Error("ϕ6 is not a traditional IND")
	}
}

func TestCINDValidation(t *testing.T) {
	order := paperdata.OrderSchema()
	book := paperdata.BookSchema()
	if _, err := cind.New(order, book, nil, nil, nil, nil); err == nil {
		t.Error("want error for empty X")
	}
	if _, err := cind.New(order, book, []string{"title"}, []string{"title", "price"}, nil, nil); err == nil {
		t.Error("want error for unbalanced X/Y")
	}
	if _, err := cind.New(order, book, []string{"price"}, []string{"format"}, nil, nil); err == nil {
		t.Error("want error for kind mismatch (real vs string)")
	}
	if _, err := cind.New(order, book, []string{"title"}, []string{"title"}, []string{"type"}, nil); err == nil {
		t.Error("want error for pattern attrs without rows")
	}
	if _, err := cind.New(order, book, []string{"title"}, []string{"title"}, []string{"type"}, nil,
		cind.PatternRow{}); err == nil {
		t.Error("want error for row arity mismatch")
	}
	if _, err := cind.New(order, book, []string{"title"}, []string{"title"}, []string{"type"}, nil,
		cind.PatternRow{XpVals: []relation.Value{relation.Null()}}); err == nil {
		t.Error("want error for null pattern constant")
	}
	if _, err := cind.New(order, book, []string{"nope"}, []string{"title"}, nil, nil); err == nil {
		t.Error("want error for unknown attribute")
	}
}

// TestTable1CINDAlwaysConsistent exercises the O(1) consistency row of
// Table 1: arbitrary CIND sets always have a nonempty witness, and
// BuildWitness constructs one.
func TestTable1CINDAlwaysConsistent(t *testing.T) {
	phi4, phi5, phi6 := figure4()
	sets := [][]*cind.CIND{
		{phi4},
		{phi4, phi5},
		{phi4, phi5, phi6},
	}
	for i, set := range sets {
		db, err := cind.BuildWitness(set, "", 0)
		if err != nil {
			t.Fatalf("set %d: %v", i, err)
		}
		if db.Size() == 0 {
			t.Fatalf("set %d: empty witness", i)
		}
		if !cind.SatisfiesAll(db, set) {
			t.Errorf("set %d: witness does not satisfy the set", i)
		}
	}
	// Even cyclic CIND sets are consistent (shared placeholder values
	// close the cycle).
	r1 := relation.MustSchema("r1", relation.Attr("a", relation.KindString))
	r2 := relation.MustSchema("r2", relation.Attr("b", relation.KindString))
	cyc := []*cind.CIND{
		cind.MustIND(r1, r2, []string{"a"}, []string{"b"}),
		cind.MustIND(r2, r1, []string{"b"}, []string{"a"}),
	}
	db, err := cind.BuildWitness(cyc, "r1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !cind.SatisfiesAll(db, cyc) {
		t.Error("cyclic witness invalid")
	}
	if _, err := cind.BuildWitness(cyc, "ghost", 0); err == nil {
		t.Error("want error for unknown seed relation")
	}
}

// TestCINDImplicationTransitivity: {R1 ⊆ R2, R2 ⊆ R3} ⊨ R1 ⊆ R3 with
// patterns chained through Yp (the cind1 ∘ cind3 composition of the
// paper: book orders end up as book tuples; a-book CDs end up as audio
// books).
func TestCINDImplicationTransitivity(t *testing.T) {
	order := paperdata.OrderSchema()
	cd := paperdata.CDSchema()
	book := paperdata.BookSchema()
	// order(title,price; type='CD') ⊆ CD(album,price; genre='a-book') —
	// a strengthened ϕ5 whose target pattern feeds ϕ6's source pattern.
	strongPhi5 := cind.MustNew(order, cd,
		[]string{"title", "price"}, []string{"album", "price"},
		[]string{"type"}, []string{"genre"},
		cind.PatternRow{
			XpVals: []relation.Value{relation.Str("CD")},
			YpVals: []relation.Value{relation.Str("a-book")},
		})
	_, _, phi6 := figure4()
	target := cind.MustNew(order, book,
		[]string{"title", "price"}, []string{"title", "price"},
		[]string{"type"}, []string{"format"},
		cind.PatternRow{
			XpVals: []relation.Value{relation.Str("CD")},
			YpVals: []relation.Value{relation.Str("audio")},
		})
	if got := cind.Implies([]*cind.CIND{strongPhi5, phi6}, target); got != cind.Yes {
		t.Errorf("composition should be implied, got %v", got)
	}
	// Without the middle pattern guarantee it must fail: plain ϕ5 does
	// not force genre='a-book', so ϕ6 need not fire.
	phi4, phi5, _ := figure4()
	if got := cind.Implies([]*cind.CIND{phi5, phi6}, target); got != cind.No {
		t.Errorf("without the Yp guarantee implication must fail, got %v", got)
	}
	// Unrelated CIND is not implied.
	if got := cind.Implies([]*cind.CIND{phi4}, target); got != cind.No {
		t.Errorf("ϕ4 ⊭ target, got %v", got)
	}
	// Every CIND implies itself.
	if got := cind.Implies([]*cind.CIND{phi6}, phi6); got != cind.Yes {
		t.Errorf("self implication, got %v", got)
	}
	// Projection consequence: order[title;type=book] ⊆ book[title].
	proj := cind.MustNew(order, book, []string{"title"}, []string{"title"},
		[]string{"type"}, nil,
		cind.PatternRow{XpVals: []relation.Value{relation.Str("book")}})
	if got := cind.Implies([]*cind.CIND{phi4}, proj); got != cind.Yes {
		t.Errorf("projection should be implied, got %v", got)
	}
}

// TestCINDImplicationCyclicUnknown: a cyclic set can drive the chase past
// its bound, yielding Unknown rather than a wrong answer.
func TestCINDImplicationCyclicUnknown(t *testing.T) {
	r := relation.MustSchema("r", relation.Attr("a", relation.KindString), relation.Attr("b", relation.KindString))
	s := relation.MustSchema("s", relation.Attr("c", relation.KindString), relation.Attr("d", relation.KindString))
	// r[a] ⊆ s[c], s[d] ⊆ r[a]: each demanded tuple has a fresh partner
	// column, so the chase keeps generating.
	c1 := cind.MustIND(r, s, []string{"a"}, []string{"c"})
	c2 := cind.MustIND(s, r, []string{"d"}, []string{"a"})
	target := cind.MustIND(r, s, []string{"a"}, []string{"d"})
	got := cind.ImpliesBounded([]*cind.CIND{c1, c2}, target, 3)
	if got != cind.Unknown && got != cind.No {
		t.Errorf("cyclic chase should be Unknown (or a definite No at fixpoint), got %v", got)
	}
	if got := cind.Result(99).String(); got == "" {
		t.Error("Result String must not be empty")
	}
}

func TestAxiomSoundness(t *testing.T) {
	phi4, _, phi6 := figure4()
	// Permute: swap the (title, price) pairs of ϕ4.
	perm, err := cind.Permute(phi4, []int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if got := cind.Implies([]*cind.CIND{phi4}, perm); got != cind.Yes {
		t.Errorf("Permute unsound or chase incomplete: %v", got)
	}
	// Projection via Permute.
	proj, err := cind.Permute(phi4, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if got := cind.Implies([]*cind.CIND{phi4}, proj); got != cind.Yes {
		t.Errorf("projection unsound: %v", got)
	}
	if _, err := cind.Permute(phi4, nil); err == nil {
		t.Error("want error for empty Permute")
	}
	if _, err := cind.Permute(phi4, []int{7}); err == nil {
		t.Error("want error for out-of-range index")
	}

	// Transit on the strengthened chain (as in the implication test).
	order := paperdata.OrderSchema()
	cd := paperdata.CDSchema()
	strongPhi5 := cind.MustNew(order, cd,
		[]string{"title", "price"}, []string{"album", "price"},
		[]string{"type"}, []string{"genre"},
		cind.PatternRow{
			XpVals: []relation.Value{relation.Str("CD")},
			YpVals: []relation.Value{relation.Str("a-book")},
		})
	composed, err := cind.Transit(strongPhi5, phi6)
	if err != nil {
		t.Fatal(err)
	}
	if got := cind.Implies([]*cind.CIND{strongPhi5, phi6}, composed); got != cind.Yes {
		t.Errorf("Transit unsound: %v", got)
	}
	// Transit without the pattern guarantee must be rejected.
	_, phi5, _ := figure4()
	if _, err := cind.Transit(phi5, phi6); err == nil {
		t.Error("Transit must refuse composition without the Yp ⊇ Xp2 guarantee")
	}
	// Reflexivity is always implied, even by the empty set.
	refl, err := cind.Reflexive(phi4)
	if err != nil {
		t.Fatal(err)
	}
	if got := cind.Implies(nil, refl); got != cind.Yes {
		t.Errorf("identity CIND must be implied by ∅: %v", got)
	}
}

func TestInteractionSemiDecision(t *testing.T) {
	// (1) Inconsistent CFDs alone force No.
	_, bad := paperdata.Example41()
	r, _ := cind.InteractionConsistent(bad, nil, 0)
	if r != cind.No {
		t.Errorf("inconsistent CFDs: want No, got %v", r)
	}
	// (2) Consistent CFDs with compatible CINDs: Yes with a witness that
	// satisfies both sets.
	s := paperdata.CustomerSchema()
	custCFDs := []*cfd.CFD{paperdata.Phi1(s), paperdata.Phi2(s)}
	// A CIND from customer to a directory relation keyed by city.
	dir := relation.MustSchema("directory",
		relation.Attr("city", relation.KindString),
		relation.Attr("country", relation.KindString))
	toDir := cind.MustNew(s, dir, []string{"city"}, []string{"city"},
		nil, []string{"country"},
		cind.PatternRow{YpVals: []relation.Value{relation.Str("UK")}})
	res, db := cind.InteractionConsistent(custCFDs, []*cind.CIND{toDir}, 0)
	if res != cind.Yes {
		t.Fatalf("consistent combination: want Yes, got %v", res)
	}
	if db == nil || db.Size() == 0 {
		t.Fatal("no witness database returned")
	}
	if !cind.SatisfiesAll(db, []*cind.CIND{toDir}) {
		t.Error("witness violates the CIND")
	}
	cust, ok := db.Instance("customer")
	if !ok || !cfd.SatisfiesAll(cust, custCFDs) {
		t.Error("witness violates the CFDs")
	}
	// (3) CFD-only combination: Yes.
	res, _ = cind.InteractionConsistent(custCFDs, nil, 0)
	if res != cind.Yes {
		t.Errorf("CFD-only: want Yes, got %v", res)
	}
	// (4) CIND-only combination: Yes.
	res, _ = cind.InteractionConsistent(nil, []*cind.CIND{toDir}, 0)
	if res != cind.Yes {
		t.Errorf("CIND-only: want Yes, got %v", res)
	}
}

func TestInteractionImplies(t *testing.T) {
	order := paperdata.OrderSchema()
	book := paperdata.BookSchema()
	phi4 := cind.MustNew(order, book,
		[]string{"title", "price"}, []string{"title", "price"},
		[]string{"type"}, nil,
		cind.PatternRow{XpVals: []relation.Value{relation.Str("book")}})
	proj := cind.MustNew(order, book, []string{"title"}, []string{"title"},
		[]string{"type"}, nil,
		cind.PatternRow{XpVals: []relation.Value{relation.Str("book")}})
	// Pure-CIND consequences stay Yes with CFDs present.
	bookKey := cfd.MustFD(book, []string{"isbn"}, []string{"title", "price", "format"})
	if got := cind.InteractionImplies([]*cfd.CFD{bookKey}, []*cind.CIND{phi4}, proj, cind.DefaultChaseBound); got != cind.Yes {
		t.Errorf("want Yes, got %v", got)
	}
	// A non-consequence whose chase countermodel satisfies the CFDs is a
	// definite No.
	other := cind.MustNew(order, book, []string{"title"}, []string{"isbn"},
		[]string{"type"}, nil,
		cind.PatternRow{XpVals: []relation.Value{relation.Str("book")}})
	if got := cind.InteractionImplies([]*cfd.CFD{bookKey}, []*cind.CIND{phi4}, other, cind.DefaultChaseBound); got != cind.No {
		t.Errorf("want No, got %v", got)
	}
}
