package cind

import (
	"repro/internal/cfd"
	"repro/internal/relation"
)

// Interaction of CFDs and CINDs. Theorems 4.1, 4.2 and 4.4: consistency
// and implication for CFDs and CINDs taken together are undecidable, even
// without finite-domain attributes, and the combination is not finitely
// axiomatizable (Theorem 4.6(b)). Following the heuristics of Bravo, Fan
// and Ma (VLDB 2007) the package therefore ships bounded semi-decision
// procedures with three-valued answers: Yes and No are definite, Unknown
// means the resource bound was exhausted first.

// InteractionConsistent checks whether Σcfd ∪ Σcind admits a database
// whose cfdRel relation is nonempty.
//
// Procedure: (1) if the CFD set alone is inconsistent, answer No (sound:
// any witness restricted to cfdRel would satisfy the CFDs). (2) Otherwise
// enumerate the CFD consistency witnesses' candidate seed tuples, chase
// each with the CINDs (shared placeholder values, bounded), and re-check
// the CFDs on the chase result; a clean result is a witness: Yes.
// (3) When every candidate fails or a bound is hit, answer Unknown — the
// exact problem is undecidable, so a definite No is impossible in general.
func InteractionConsistent(cfds []*cfd.CFD, cinds []*CIND, maxTuples int) (Result, *relation.Database) {
	ok, witness := cfd.Consistent(cfds)
	if !ok {
		return No, nil
	}
	if len(cinds) == 0 {
		db := relation.NewDatabase()
		if len(cfds) > 0 {
			in := relation.NewInstance(cfds[0].Schema())
			if _, err := in.Insert(witness); err == nil {
				db.Add(in)
			}
		}
		return Yes, db
	}
	if len(cfds) == 0 {
		db, err := BuildWitness(cinds, "", maxTuples)
		if err != nil {
			return Unknown, nil
		}
		return Yes, db
	}

	schema := cfds[0].Schema()
	schemas := map[string]*relation.Schema{schema.Name(): schema}
	for _, c := range cinds {
		schemas[c.src.Name()] = c.src
		schemas[c.dst.Name()] = c.dst
	}

	db := relation.NewDatabase()
	for _, s := range schemas {
		db.Add(relation.NewInstance(s))
	}
	in := db.MustInstance(schema.Name())
	if _, err := in.Insert(witness); err != nil {
		return Unknown, nil
	}
	if maxTuples <= 0 {
		maxTuples = 10000
	}
	if err := chaseInsertions(db, cinds, maxTuples); err != nil {
		return Unknown, nil
	}
	// Re-check the CFDs on every relation they are defined over.
	for _, c := range cfds {
		target, ok := db.Instance(c.Schema().Name())
		if !ok {
			continue
		}
		if !cfd.Satisfies(target, c) {
			return Unknown, nil
		}
	}
	return Yes, db
}

// InteractionImplies checks Σcfd ∪ Σcind ⊨ ψ for a CIND ψ, by chasing
// ψ's generic seed with the CINDs and verifying that no CFD is violated
// along the way; Yes and No are definite for acyclic inputs within the
// bound, Unknown otherwise. (The exact problem is undecidable.)
func InteractionImplies(cfds []*cfd.CFD, cinds []*CIND, psi *CIND, depth int) Result {
	// If the CFD set is inconsistent, every instance with a nonempty
	// cfd-relation is excluded; implication over the remaining instances
	// degenerates to the pure CIND problem restricted to databases with
	// an empty CFD relation. We answer via the pure CIND chase, which is
	// sound because it never populates relations beyond demanded tuples.
	r := ImpliesBounded(cinds, psi, depth)
	if r == Yes {
		return Yes
	}
	if len(cfds) == 0 {
		return r
	}
	// CFDs can only exclude counter-models, never create witnesses the
	// CIND chase would miss; a No from the chase may thus be spurious
	// when the counterexample violates a CFD. Verify the countermodel.
	if r == No {
		// Rebuild the chase countermodel and test the CFDs on it.
		if counterModelSatisfiesCFDs(cfds, cinds, psi, depth) {
			return No
		}
		return Unknown
	}
	return Unknown
}

// counterModelSatisfiesCFDs replays the implication chase to its fixpoint
// countermodel and checks the CFDs over it.
func counterModelSatisfiesCFDs(cfds []*cfd.CFD, cinds []*CIND, psi *CIND, depth int) bool {
	for rowIdx := range psi.tableau {
		db := chaseCounterModel(cinds, psi, rowIdx, depth)
		if db == nil {
			return false
		}
		ok := true
		for _, c := range cfds {
			if in, exists := db.Instance(c.Schema().Name()); exists {
				if !cfd.Satisfies(in, c) {
					ok = false
					break
				}
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// chaseCounterModel mirrors impliesRow but returns the final database at
// fixpoint (nil when the bound is hit or a witness appears).
func chaseCounterModel(set []*CIND, psi *CIND, rowIdx, depth int) *relation.Database {
	row := psi.tableau[rowIdx]
	var fresh freshCounter
	schemas := map[string]*relation.Schema{psi.src.Name(): psi.src, psi.dst.Name(): psi.dst}
	for _, c := range set {
		schemas[c.src.Name()] = c.src
		schemas[c.dst.Name()] = c.dst
	}
	db := relation.NewDatabase()
	for _, s := range schemas {
		db.Add(relation.NewInstance(s))
	}
	seed := make(relation.Tuple, psi.src.Arity())
	for i := range seed {
		seed[i] = fresh.next(psi.src.Attr(i))
	}
	for j, p := range psi.xp {
		seed[p] = row.XpVals[j]
	}
	if _, err := db.MustInstance(psi.src.Name()).Insert(seed); err != nil {
		return nil
	}
	for level := 0; level <= depth; level++ {
		vs := DetectAll(db, set)
		if len(vs) == 0 {
			return db
		}
		for _, v := range vs {
			c := v.CIND
			src := db.MustInstance(c.src.Name())
			t, ok := src.Tuple(v.TID)
			if !ok {
				continue
			}
			prow := c.tableau[v.Row]
			dst := db.MustInstance(c.dst.Name())
			nt := make(relation.Tuple, c.dst.Arity())
			for i := range nt {
				nt[i] = fresh.next(c.dst.Attr(i))
			}
			for j, p := range c.y {
				nt[p] = t[c.x[j]]
			}
			for j, p := range c.yp {
				nt[p] = prow.YpVals[j]
			}
			if _, err := dst.Insert(nt); err != nil {
				continue
			}
		}
	}
	return nil
}
