package cind

import (
	"fmt"
)

// A sound inference system for CINDs, reflecting Theorem 4.6(a) (CINDs
// taken alone are finitely axiomatizable). The rules below are sound for
// the CIND semantics; soundness is property-tested against the chase
// decision procedure.

// Permute derives (R1[Xσ; Xp] ⊆ R2[Yσ; Yp], Tp) from a CIND by selecting
// and reordering corresponding (X[i], Y[i]) pairs; idx lists the selected
// pair indexes in their new order. This generalizes the classical
// projection-and-permutation rule for INDs.
func Permute(c *CIND, idx []int) (*CIND, error) {
	if len(idx) == 0 {
		return nil, fmt.Errorf("cind: Permute needs at least one pair")
	}
	x := make([]string, len(idx))
	y := make([]string, len(idx))
	for i, j := range idx {
		if j < 0 || j >= len(c.x) {
			return nil, fmt.Errorf("cind: Permute index %d out of range", j)
		}
		x[i] = c.src.Attr(c.x[j]).Name
		y[i] = c.dst.Attr(c.y[j]).Name
	}
	xp := make([]string, len(c.xp))
	for i, p := range c.xp {
		xp[i] = c.src.Attr(p).Name
	}
	yp := make([]string, len(c.yp))
	for i, p := range c.yp {
		yp[i] = c.dst.Attr(p).Name
	}
	return New(c.src, c.dst, x, y, xp, yp, c.tableau...)
}

// Transit derives (R1[X″; Xp1] ⊆ R3[Z; Zp], rows) from c1 = (R1[X; Xp1] ⊆
// R2[Y; Yp1], T1) and c2 = (R2[Y′; Xp2] ⊆ R3[Z; Zp], T2), row pair by row
// pair. A row pair (tp1, tp2) composes when
//
//   - every attribute of Y′ occurs in Y (the demanded R2 tuple agrees
//     with R1's X values there), and
//   - every pattern attribute of Xp2 occurs in Yp1 with tp1 and tp2
//     agreeing on its constant (so the demanded R2 tuple is guaranteed to
//     match tp2's source condition).
//
// The derived X″ maps each Y′ attribute back to its X counterpart.
func Transit(c1, c2 *CIND) (*CIND, error) {
	if c1.dst.Name() != c2.src.Name() {
		return nil, fmt.Errorf("cind: Transit needs c1's target = c2's source")
	}
	// Map R2 position → index in c1's Y.
	yIndex := make(map[int]int)
	for i, p := range c1.y {
		yIndex[p] = i
	}
	// X″ via Y′.
	x2 := make([]string, len(c2.x))
	z := make([]string, len(c2.y))
	for i, p := range c2.x {
		j, ok := yIndex[p]
		if !ok {
			return nil, fmt.Errorf("cind: Transit: %s.%s not covered by c1's Y", c2.src.Name(), c2.src.Attr(p).Name)
		}
		x2[i] = c1.src.Attr(c1.x[j]).Name
		z[i] = c2.dst.Attr(c2.y[i]).Name
	}
	// Pattern guarantee: Xp2 ⊆ Yp1 positionally by attribute.
	yp1Index := make(map[int]int)
	for i, p := range c1.yp {
		yp1Index[p] = i
	}
	xp := make([]string, len(c1.xp))
	for i, p := range c1.xp {
		xp[i] = c1.src.Attr(p).Name
	}
	zp := make([]string, len(c2.yp))
	for i, p := range c2.yp {
		zp[i] = c2.dst.Attr(p).Name
	}
	var rows []PatternRow
	for _, t1 := range c1.tableau {
		for _, t2 := range c2.tableau {
			okRow := true
			for i, p := range c2.xp {
				j, ok := yp1Index[p]
				if !ok || !t1.YpVals[j].Equal(t2.XpVals[i]) {
					okRow = false
					break
				}
			}
			if !okRow {
				continue
			}
			rows = append(rows, PatternRow{
				XpVals: t1.XpVals,
				YpVals: t2.YpVals,
			})
		}
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("cind: Transit: no composable pattern row pair")
	}
	return New(c1.src, c2.dst, x2, z, xp, zp, rows...)
}

// Reflexive derives the identity CIND R[X; ∅] ⊆ R[X; ∅], which every
// instance satisfies.
func Reflexive(c *CIND) (*CIND, error) {
	x := make([]string, len(c.x))
	for i, p := range c.x {
		x[i] = c.src.Attr(p).Name
	}
	return New(c.src, c.src, x, x, nil, nil)
}
