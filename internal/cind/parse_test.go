package cind_test

import (
	"strings"
	"testing"

	"repro/internal/cind"
	"repro/internal/paperdata"
	"repro/internal/relation"
)

func parseSchemas() map[string]*relation.Schema {
	return map[string]*relation.Schema{
		"order": paperdata.OrderSchema(),
		"book":  paperdata.BookSchema(),
		"CD":    paperdata.CDSchema(),
	}
}

func TestParseFigure4(t *testing.T) {
	text := `
# Figure 4 CINDs
cind order[title, price; type] <= book[title, price; ]
  book ||

cind order[title, price; type] <= CD[album, price;]
  CD ||

cind CD[album, price; genre] <= book[title, price; format]
  a-book || audio
`
	set, err := cind.ParseString(text, parseSchemas())
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 3 {
		t.Fatalf("parsed %d CINDs, want 3", len(set))
	}
	phi4, phi5, phi6 := figure4()
	for i, want := range []*cind.CIND{phi4, phi5, phi6} {
		if got := set[i].String(); got != want.String() {
			t.Errorf("CIND %d parsed as %s, want %s", i, got, want)
		}
	}

	// The parsed set behaves like the hand-built one on Figure 3.
	db := paperdata.Figure3()
	if !cind.Satisfies(db, set[0]) || !cind.Satisfies(db, set[1]) {
		t.Error("parsed ϕ4/ϕ5 should hold on D1")
	}
	if cind.Satisfies(db, set[2]) {
		t.Error("parsed ϕ6 should fail on D1")
	}
}

func TestParseIND(t *testing.T) {
	set, err := cind.ParseString("cind order[title] <= book[title]", parseSchemas())
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 1 || !set[0].IsIND() {
		t.Fatalf("want one traditional IND, got %v", set)
	}
}

func TestParseErrors(t *testing.T) {
	for _, text := range []string{
		"cind order[title] <= nosuch[title]",          // unknown relation
		"cind order[] <= book[title]",                 // empty X
		"cind order[title] -> book[title]",            // wrong arrow
		"book ||",                                     // row before header
		"cind order[title; type] <= book[title]\n||",  // arity mismatch
		"cind order[title; asin] <= book[title]\nx 1", // missing ||
	} {
		if _, err := cind.ParseString(text, parseSchemas()); err == nil {
			t.Errorf("ParseString(%q) should fail", text)
		}
	}
}

func TestFormatRoundTrip(t *testing.T) {
	phi4, phi5, phi6 := figure4()
	ind := cind.MustIND(paperdata.OrderSchema(), paperdata.BookSchema(), []string{"title"}, []string{"title"})
	set := []*cind.CIND{phi4, phi5, phi6, ind}
	var b strings.Builder
	if err := cind.Format(&b, set); err != nil {
		t.Fatal(err)
	}
	back, err := cind.ParseString(b.String(), parseSchemas())
	if err != nil {
		t.Fatalf("re-parsing %q: %v", b.String(), err)
	}
	if len(back) != len(set) {
		t.Fatalf("round trip lost rules: %d -> %d", len(set), len(back))
	}
	for i := range set {
		if set[i].String() != back[i].String() {
			t.Errorf("round trip changed %s into %s", set[i], back[i])
		}
	}
}
