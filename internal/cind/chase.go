package cind

import (
	"fmt"

	"repro/internal/relation"
)

// Result is a three-valued answer for the chase-based analyses: the
// combined CFD+CIND problems are undecidable (Theorems 4.1/4.2), and
// CIND implication chases can diverge on cyclic sets, so procedures
// report Unknown when a resource bound is hit before a definite answer.
type Result int

// The three answers.
const (
	No Result = iota
	Yes
	Unknown
)

// String names the result.
func (r Result) String() string {
	switch r {
	case No:
		return "no"
	case Yes:
		return "yes"
	default:
		return "unknown"
	}
}

// DefaultChaseBound is the default limit on chase derivation depth.
const DefaultChaseBound = 64

// BuildWitness constructs a nonempty database satisfying every CIND in
// the set — the constructive content of Theorem 4.1's O(1) consistency
// result. It seeds one tuple in the source relation of the first CIND
// (or in seedRel when non-empty) and chases insertions to a fixpoint.
// The chase reuses one designated fresh value per kind, which keeps the
// active domain — and hence the chase — finite; CINDs only ever demand
// the existence of tuples, so accidental value coincidences never break
// satisfaction.
func BuildWitness(set []*CIND, seedRel string, maxTuples int) (*relation.Database, error) {
	db := relation.NewDatabase()
	if len(set) == 0 {
		return db, nil
	}
	schemas := make(map[string]*relation.Schema)
	for _, c := range set {
		schemas[c.src.Name()] = c.src
		schemas[c.dst.Name()] = c.dst
	}
	for _, s := range schemas {
		db.Add(relation.NewInstance(s))
	}
	seed := set[0].src
	if seedRel != "" {
		s, ok := schemas[seedRel]
		if !ok {
			return nil, fmt.Errorf("cind: seed relation %q not mentioned by the set", seedRel)
		}
		seed = s
	}
	t := make(relation.Tuple, seed.Arity())
	for i := 0; i < seed.Arity(); i++ {
		t[i] = placeholder(seed.Attr(i))
	}
	if _, err := db.MustInstance(seed.Name()).Insert(t); err != nil {
		return nil, err
	}
	if maxTuples <= 0 {
		maxTuples = 10000
	}
	if err := chaseInsertions(db, set, maxTuples); err != nil {
		return nil, err
	}
	return db, nil
}

// placeholder picks a deterministic value for an attribute: the first
// finite-domain value, or a per-kind designated fresh value.
func placeholder(a relation.Attribute) relation.Value {
	if a.Domain.Finite() {
		return a.Domain.Values()[0]
	}
	switch a.Domain.Kind() {
	case relation.KindBool:
		return relation.Bool(false)
	case relation.KindInt:
		return relation.Int(0)
	case relation.KindFloat:
		return relation.Float(0)
	default:
		return relation.Str("\x02w")
	}
}

// chaseInsertions repairs every CIND violation by inserting the demanded
// target tuple until fixpoint or until the database exceeds maxTuples.
func chaseInsertions(db *relation.Database, set []*CIND, maxTuples int) error {
	for {
		vs := DetectAll(db, set)
		if len(vs) == 0 {
			return nil
		}
		for _, v := range vs {
			if db.Size() >= maxTuples {
				return fmt.Errorf("cind: chase exceeded %d tuples", maxTuples)
			}
			if err := insertDemanded(db, v); err != nil {
				return err
			}
		}
	}
}

// insertDemanded inserts the minimal target tuple demanded by a violation:
// Y positions copy the source X values, Yp positions take the pattern
// constants, all else placeholder values.
func insertDemanded(db *relation.Database, v Violation) error {
	c := v.CIND
	src := db.MustInstance(c.src.Name())
	t, ok := src.Tuple(v.TID)
	if !ok {
		return nil
	}
	dst := db.MustInstance(c.dst.Name())
	row := c.tableau[v.Row]
	nt := make(relation.Tuple, c.dst.Arity())
	for i := 0; i < c.dst.Arity(); i++ {
		nt[i] = placeholder(c.dst.Attr(i))
	}
	for j, p := range c.y {
		nt[p] = t[c.x[j]]
	}
	for j, p := range c.yp {
		nt[p] = row.YpVals[j]
	}
	if !dst.Contains(nt) {
		if _, err := dst.Insert(nt); err != nil {
			return fmt.Errorf("cind: chase cannot insert demanded tuple: %v", err)
		}
	}
	return nil
}
