package cind

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/relation"
)

// Text format for CINDs, mirroring the cfd/ecfd rule files:
//
//	cind order[title, price; type] <= book[title, price; format]
//	  book || audio
//
// The header names the embedded IND R1[X] ⊆ R2[Y] with the pattern
// attribute lists Xp and Yp after the semicolons (an empty or omitted
// list means no pattern side). Each pattern row gives constants for Xp,
// then '||', then constants for Yp; a CIND with no pattern attributes
// and no rows is a traditional IND. Blank lines and '#' comments are
// ignored; values parse like the relation's CSV cells.

// Parse reads CINDs in the text format; schemas are resolved by relation
// name.
func Parse(r io.Reader, schemas map[string]*relation.Schema) ([]*CIND, error) {
	sc := bufio.NewScanner(r)
	var out []*CIND
	// Rows are validated through New, which needs the whole tableau, so
	// the parser accumulates per-CIND state and flushes on the next
	// header (or EOF).
	var hdr *header
	var rows []PatternRow
	line, hdrLine := 0, 0
	flush := func() error {
		if hdr == nil {
			return nil
		}
		c, err := New(hdr.src, hdr.dst, hdr.x, hdr.y, hdr.xp, hdr.yp, rows...)
		if err != nil {
			return fmt.Errorf("cind: line %d: %v", hdrLine, err)
		}
		out = append(out, c)
		hdr, rows = nil, nil
		return nil
	}
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if strings.HasPrefix(text, "cind ") {
			if err := flush(); err != nil {
				return nil, err
			}
			h, err := parseHeader(text[5:], schemas)
			if err != nil {
				return nil, fmt.Errorf("cind: line %d: %v", line, err)
			}
			hdr, hdrLine = h, line
			continue
		}
		if hdr == nil {
			return nil, fmt.Errorf("cind: line %d: pattern row before any 'cind' header", line)
		}
		row, err := parsePatternRow(text, hdr)
		if err != nil {
			return nil, fmt.Errorf("cind: line %d: %v", line, err)
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return out, nil
}

// ParseString is Parse over a string.
func ParseString(s string, schemas map[string]*relation.Schema) ([]*CIND, error) {
	return Parse(strings.NewReader(s), schemas)
}

// header is one parsed 'cind' line before New validates it.
type header struct {
	src, dst     *relation.Schema
	x, xp, y, yp []string
	xpPos, ypPos []int
}

func parseHeader(s string, schemas map[string]*relation.Schema) (*header, error) {
	lhsPart, rhsPart, ok := strings.Cut(s, "<=")
	if !ok {
		return nil, fmt.Errorf("header %q: want 'R1[X; Xp] <= R2[Y; Yp]'", s)
	}
	src, x, xp, err := parseSide(lhsPart, schemas)
	if err != nil {
		return nil, err
	}
	dst, y, yp, err := parseSide(rhsPart, schemas)
	if err != nil {
		return nil, err
	}
	h := &header{src: src, dst: dst, x: x, xp: xp, y: y, yp: yp}
	if h.xpPos, err = src.Positions(xp); err != nil {
		return nil, err
	}
	if h.ypPos, err = dst.Positions(yp); err != nil {
		return nil, err
	}
	return h, nil
}

// parseSide parses one "rel[A, B; C]" term into its schema, the
// correspondence attributes and the pattern attributes.
func parseSide(s string, schemas map[string]*relation.Schema) (*relation.Schema, []string, []string, error) {
	s = strings.TrimSpace(s)
	open := strings.IndexByte(s, '[')
	if open < 0 || !strings.HasSuffix(s, "]") {
		return nil, nil, nil, fmt.Errorf("term %q: want 'rel[attrs; pattern-attrs]'", s)
	}
	schema, ok := schemas[strings.TrimSpace(s[:open])]
	if !ok {
		return nil, nil, nil, fmt.Errorf("unknown relation %q", strings.TrimSpace(s[:open]))
	}
	inner := s[open+1 : len(s)-1]
	corr, patt, _ := strings.Cut(inner, ";")
	names, err := splitNames(corr)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("term %q: %v", s, err)
	}
	if len(names) == 0 {
		return nil, nil, nil, fmt.Errorf("term %q: empty attribute list", s)
	}
	pnames, err := splitNames(patt)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("term %q: %v", s, err)
	}
	return schema, names, pnames, nil
}

// splitNames splits a comma-separated attribute list; an empty list is
// allowed (no pattern attributes).
func splitNames(s string) ([]string, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, len(parts))
	for i, p := range parts {
		out[i] = strings.TrimSpace(p)
		if out[i] == "" {
			return nil, fmt.Errorf("empty attribute in %q", s)
		}
	}
	return out, nil
}

func parsePatternRow(s string, h *header) (PatternRow, error) {
	xpPart, ypPart, ok := strings.Cut(s, "||")
	if !ok {
		return PatternRow{}, fmt.Errorf("pattern row %q: missing '||'", s)
	}
	xv, err := parseConsts(xpPart, h.src, h.xpPos)
	if err != nil {
		return PatternRow{}, err
	}
	yv, err := parseConsts(ypPart, h.dst, h.ypPos)
	if err != nil {
		return PatternRow{}, err
	}
	return PatternRow{XpVals: xv, YpVals: yv}, nil
}

func parseConsts(s string, schema *relation.Schema, pos []int) ([]relation.Value, error) {
	s = strings.TrimSpace(s)
	var parts []string
	if s != "" {
		parts = strings.Split(s, ",")
	}
	if len(parts) != len(pos) {
		return nil, fmt.Errorf("pattern %q: %d cells, want %d", s, len(parts), len(pos))
	}
	out := make([]relation.Value, len(parts))
	for i, cell := range parts {
		v, err := relation.ParseValue(schema.Attr(pos[i]).Domain.Kind(), strings.TrimSpace(cell))
		if err != nil {
			return nil, fmt.Errorf("cell %q for %s: %v", strings.TrimSpace(cell), schema.Attr(pos[i]).Name, err)
		}
		out[i] = v
	}
	return out, nil
}

// Format renders a CIND set in the Parse text format.
func Format(w io.Writer, set []*CIND) error {
	names := func(s *relation.Schema, pos []int) string {
		parts := make([]string, len(pos))
		for i, p := range pos {
			parts[i] = s.Attr(p).Name
		}
		return strings.Join(parts, ", ")
	}
	for _, c := range set {
		if _, err := fmt.Fprintf(w, "cind %s[%s; %s] <= %s[%s; %s]\n",
			c.src.Name(), names(c.src, c.x), names(c.src, c.xp),
			c.dst.Name(), names(c.dst, c.y), names(c.dst, c.yp)); err != nil {
			return err
		}
		if c.IsIND() {
			continue // the single empty row is implicit
		}
		for _, row := range c.tableau {
			if _, err := fmt.Fprintf(w, "  %s || %s\n", valsString(row.XpVals), valsString(row.YpVals)); err != nil {
				return err
			}
		}
	}
	return nil
}
