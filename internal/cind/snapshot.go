package cind

import (
	"slices"
	"sort"

	"repro/internal/relation"
)

// Snapshot-backed CIND violation detection: the columnar fast path of
// the detection engine. These entry points mirror the string-keyed
// detector exactly — same violations, same (Row, TID) order — but run
// over relation.Snapshots of the source and target relations and probe
// the target's relation.CodeIndex by code sequence.
//
// The representation is applied where it pays:
//
//   - Source tuples are grouped by X ∪ Xp (SourceGroupPos), so pattern
//     matching and the target probe run once per group, not once per
//     tuple — the whole group shares the embedded-IND key and every
//     pattern attribute, so one verdict covers all members.
//   - Pattern constants compile to dictionary codes once per tableau
//     row; an Xp constant missing from its source column prunes the
//     row, and a Yp constant missing from its target column fails every
//     probe of the row without hashing anything.
//   - Source X values translate to target Y codes through a per-column
//     memo (source code → target code), so a value shared by many
//     groups pays the cross-dictionary lookup once; the probe itself is
//     CodeIndex.HasCodes over a fixed-width code sequence — no string
//     key is ever built.
//
// The string-keyed path (Detect, DetectAll, ...) remains the
// compatibility/oracle path; randomized tests in internal/detect assert
// byte-identical output between the two.

// xlat memoizes cross-dictionary code translation for the embedded IND
// X → Y: tab[i] maps a source code of column x[i] to the target code of
// the Equal value in column y[i] (0 = not yet translated, -1 = the
// value never occurs in the target column, else code+1).
type xlat struct {
	src, dst *relation.Snapshot
	x, y     []int
	tab      [][]int64
}

func (t *xlat) code(i int, sc uint32) (uint32, bool) {
	tb := t.tab[i]
	if tb == nil {
		tb = make([]int64, t.src.Dict(t.x[i]).Len())
		t.tab[i] = tb
	}
	if int(sc) >= len(tb) {
		// The shared dictionary grew past the memo (another snapshot is
		// interning concurrently); translate directly.
		c, ok := t.dst.Dict(t.y[i]).Code(t.src.Dict(t.x[i]).Value(sc))
		return c, ok
	}
	switch v := tb[sc]; {
	case v > 0:
		return uint32(v - 1), true
	case v < 0:
		return 0, false
	}
	c, ok := t.dst.Dict(t.y[i]).Code(t.src.Dict(t.x[i]).Value(sc))
	if ok {
		tb[sc] = int64(c) + 1
	} else {
		tb[sc] = -1
	}
	return c, ok
}

// compiledRow is one pattern row compiled against the snapshots: Xp
// constants as source codes (dead when a constant cannot match any
// source tuple) and Yp constants as target codes (ypOK false when some
// constant never occurs in its target column — every probe of the row
// misses).
type compiledRow struct {
	dead    bool
	xpCodes []uint32
	ypOK    bool
	ypCodes []uint32
}

// compileRow resolves row's constants against the dictionaries. Xp
// matching is Value.Equal (a NaN constant equals nothing, even though
// NaN data values share one code), so a NaN or dictionary-missing
// constant kills the row; Yp matching follows the string-keyed probe,
// under which NaN keys collide — exactly what the shared NaN code
// reproduces — so only a dictionary miss fails it.
func compileRow(src, dst *relation.Snapshot, c *CIND, row PatternRow) compiledRow {
	out := compiledRow{xpCodes: make([]uint32, len(c.xp)), ypOK: dst != nil, ypCodes: make([]uint32, len(c.yp))}
	for j, p := range c.xp {
		v := row.XpVals[j]
		if v.Kind() == relation.KindFloat && v.FloatVal() != v.FloatVal() {
			out.dead = true // NaN constant: matches no tuple
			return out
		}
		code, ok := src.Dict(p).Code(v)
		if !ok {
			out.dead = true // constant never occurs in the column
			return out
		}
		out.xpCodes[j] = code
	}
	if dst == nil {
		return out
	}
	for j, p := range c.yp {
		code, ok := dst.Dict(p).Code(row.YpVals[j])
		if !ok {
			out.ypOK = false
			return out
		}
		out.ypCodes[j] = code
	}
	return out
}

// SatisfiesWithSnapshot is Satisfies on the columnar path. A nil dst
// stands for a missing target relation (every probe misses), mirroring
// the empty instance the string-keyed path substitutes.
func SatisfiesWithSnapshot(src, dst *relation.Snapshot, c *CIND, srcIx, dstIx *relation.CodeIndex) bool {
	return len(detectSnap(src, dst, c, srcIx, dstIx, true)) == 0
}

// DetectWithSnapshot is Detect on the columnar path: all violations of
// the CIND with source and target frozen in the given snapshots, in
// (Row, TID) order, byte-identical to the string-keyed detector. A nil
// src (missing source relation) is vacuously satisfied; a nil dst
// behaves as an empty target.
func DetectWithSnapshot(src, dst *relation.Snapshot, c *CIND, srcIx, dstIx *relation.CodeIndex) []Violation {
	return detectSnap(src, dst, c, srcIx, dstIx, false)
}

// srcGroupIndex validates that srcIx is an index over src on the CIND's
// source grouping positions, rebuilding it when it is not (or is nil).
func srcGroupIndex(src *relation.Snapshot, c *CIND, srcIx *relation.CodeIndex) *relation.CodeIndex {
	if srcIx == nil || srcIx.Snapshot() != src || !slices.Equal(srcIx.Positions(), c.SourceGroupPos()) {
		return relation.BuildCodeIndex(src, c.SourceGroupPos())
	}
	return srcIx
}

// dstKeyIndex is srcGroupIndex for the target index on Y ∪ Yp.
func dstKeyIndex(dst *relation.Snapshot, c *CIND, dstIx *relation.CodeIndex) *relation.CodeIndex {
	if dstIx == nil || dstIx.Snapshot() != dst || !slices.Equal(dstIx.Positions(), c.TargetKeyPos()) {
		return relation.BuildCodeIndex(dst, c.TargetKeyPos())
	}
	return dstIx
}

func detectSnap(src, dst *relation.Snapshot, c *CIND, srcIx, dstIx *relation.CodeIndex, firstOnly bool) []Violation {
	if src == nil || src.Len() == 0 {
		return nil
	}
	srcIx = srcGroupIndex(src, c, srcIx)
	if dst != nil {
		dstIx = dstKeyIndex(dst, c, dstIx)
	}
	// Hoist the grouped source columns: group-representative pattern
	// checks and probe-key builds below are pure array reads.
	gpos := srcIx.Positions()
	gcols := make([][]uint32, len(gpos))
	for i, p := range gpos {
		gcols[i] = src.Col(p)
	}
	// xpAt[j] locates Xp position c.xp[j] inside the grouped columns.
	xpAt := make([]int, len(c.xp))
	for j, p := range c.xp {
		for i, q := range gpos {
			if q == p {
				xpAt[j] = i
				break
			}
		}
	}
	xAt := make([]int, len(c.x))
	for j := range c.x {
		xAt[j] = j // SourceGroupPos lays X out first, in order
	}

	xl := &xlat{src: src, dst: dst, x: c.x, y: c.y, tab: make([][]int64, len(c.x))}
	probe := make([]uint32, len(c.y)+len(c.yp))
	var out []Violation
	for rowIdx, row := range c.tableau {
		cr := compileRow(src, dst, c, row)
		if cr.dead {
			continue
		}
		copy(probe[len(c.y):], cr.ypCodes)
		rowStart := len(out)
		stop := false
		srcIx.GroupsWhile(1, func(rows []int32) bool {
			rep := int(rows[0])
			for j := range c.xp {
				if gcols[xpAt[j]][rep] != cr.xpCodes[j] {
					return true // group fails the pattern
				}
			}
			hit := false
			if cr.ypOK {
				hit = true
				for i := range c.x {
					tc, ok := xl.code(i, gcols[xAt[i]][rep])
					if !ok {
						hit = false // source value absent from the target column
						break
					}
					probe[i] = tc
				}
				if hit {
					hit = dstIx.HasCodes(probe)
				}
			}
			if !hit {
				for _, r := range rows {
					out = append(out, Violation{CIND: c, Row: rowIdx, TID: src.TID(int(r))})
					if firstOnly {
						stop = true
						return false
					}
				}
			}
			return true
		})
		if stop {
			return out
		}
		// Groups iterate in first-appearance order; the canonical per-row
		// order is ascending TID.
		seg := out[rowStart:]
		sort.Slice(seg, func(i, j int) bool { return seg[i].TID < seg[j].TID })
	}
	return out
}

// DetectTouchedWithSnapshot returns the violations of c whose source
// tuple is among the touched TIDs, in (Row, TID) order — the
// incremental entry point the monitor diffs between a pre- and a
// post-batch snapshot pair. Touched TIDs missing from the source
// snapshot (deleted, or inserted after the freeze) are skipped. Probes
// run per touched tuple, so no source group index is needed; the target
// index is validated like DetectWithSnapshot's.
func DetectTouchedWithSnapshot(src, dst *relation.Snapshot, c *CIND, dstIx *relation.CodeIndex, touched []relation.TID) []Violation {
	if src == nil || len(touched) == 0 {
		return nil
	}
	if dst != nil {
		dstIx = dstKeyIndex(dst, c, dstIx)
	}
	xpCols := make([][]uint32, len(c.xp))
	for j, p := range c.xp {
		xpCols[j] = src.Col(p)
	}
	xCols := make([][]uint32, len(c.x))
	for i, p := range c.x {
		xCols[i] = src.Col(p)
	}
	xl := &xlat{src: src, dst: dst, x: c.x, y: c.y, tab: make([][]int64, len(c.x))}
	probe := make([]uint32, len(c.y)+len(c.yp))
	var out []Violation
	for rowIdx, row := range c.tableau {
		cr := compileRow(src, dst, c, row)
		if cr.dead {
			continue
		}
		copy(probe[len(c.y):], cr.ypCodes)
		rowStart := len(out)
		for _, id := range touched {
			r, ok := src.Row(id)
			if !ok {
				continue
			}
			match := true
			for j := range c.xp {
				if xpCols[j][r] != cr.xpCodes[j] {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			hit := false
			if cr.ypOK {
				hit = true
				for i := range c.x {
					tc, ok := xl.code(i, xCols[i][r])
					if !ok {
						hit = false
						break
					}
					probe[i] = tc
				}
				if hit {
					hit = dstIx.HasCodes(probe)
				}
			}
			if !hit {
				out = append(out, Violation{CIND: c, Row: rowIdx, TID: id})
			}
		}
		seg := out[rowStart:]
		sort.Slice(seg, func(i, j int) bool { return seg[i].TID < seg[j].TID })
	}
	return out
}
