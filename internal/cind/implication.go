package cind

import (
	"repro/internal/relation"
)

// Implication for CINDs via the initial chase (Theorem 4.2 pins the
// problem EXPTIME-complete in general; without finite-domain attributes
// and for fixed schemas it is PSPACE-complete, Theorems 4.3/4.5).
//
// To decide Σ ⊨ ψ for ψ = (R1[X; Xp] ⊆ R2[Y; Yp], tp), seed a single
// generic tuple t1 in R1: pairwise-distinct fresh values on X (and on all
// unconstrained attributes), tp's constants on Xp. Chase the seed with
// Σ's insertion rules, generating genuinely fresh values for
// unconstrained positions of demanded tuples. The chase is the most
// general model of Σ containing such a t1:
//
//   - If it produces a target witness (t2 ∈ R2 with t2[Y] = t1[X],
//     t2[Yp] = tp[Yp]), every model of Σ contains a homomorphic image of
//     the derivation, so Σ ⊨ ψ.
//   - If it reaches a fixpoint without a witness, the chase result itself
//     is a countermodel, so Σ ⊭ ψ.
//   - Cyclic CIND sets can chase forever; past the derivation-depth bound
//     the answer is Unknown.

// Implies decides Σ ⊨ ψ with the default chase bound.
func Implies(set []*CIND, psi *CIND) Result {
	return ImpliesBounded(set, psi, DefaultChaseBound)
}

// ImpliesBounded decides Σ ⊨ ψ chasing at most depth levels of demanded
// insertions per pattern row.
func ImpliesBounded(set []*CIND, psi *CIND, depth int) Result {
	out := Yes
	for rowIdx := range psi.tableau {
		switch impliesRow(set, psi, rowIdx, depth) {
		case No:
			return No
		case Unknown:
			out = Unknown
		}
	}
	return out
}

// freshCounter hands out globally distinct chase values per kind.
type freshCounter struct{ n int }

func (f *freshCounter) next(a relation.Attribute) relation.Value {
	f.n++
	if a.Domain.Finite() {
		// Finite domains have no fresh values; reuse the first element
		// (a pragmatic choice documented with the Unknown semantics —
		// chase completeness is stated for infinite domains).
		return a.Domain.Values()[0]
	}
	switch a.Domain.Kind() {
	case relation.KindBool:
		return relation.Bool(false)
	case relation.KindInt:
		return relation.Int(int64(1_000_000 + f.n))
	case relation.KindFloat:
		return relation.Float(float64(1_000_000+f.n) + 0.5)
	default:
		return relation.Str(string(rune(0x100000+f.n)) + "χ")
	}
}

func impliesRow(set []*CIND, psi *CIND, rowIdx int, depth int) Result {
	row := psi.tableau[rowIdx]
	var fresh freshCounter

	schemas := map[string]*relation.Schema{psi.src.Name(): psi.src, psi.dst.Name(): psi.dst}
	for _, c := range set {
		schemas[c.src.Name()] = c.src
		schemas[c.dst.Name()] = c.dst
	}
	db := relation.NewDatabase()
	for _, s := range schemas {
		db.Add(relation.NewInstance(s))
	}

	// Seed tuple: fresh everywhere, then Xp constants (which win over X
	// freshness on overlap, as in the definition).
	seed := make(relation.Tuple, psi.src.Arity())
	for i := range seed {
		seed[i] = fresh.next(psi.src.Attr(i))
	}
	for j, p := range psi.xp {
		seed[p] = row.XpVals[j]
	}
	srcInst := db.MustInstance(psi.src.Name())
	if _, err := srcInst.Insert(seed); err != nil {
		// The pattern is not realizable in the source domain: ψ holds
		// vacuously.
		return Yes
	}

	// wanted: the witness condition in R2.
	witnessFound := func() bool {
		dst := db.MustInstance(psi.dst.Name())
		for _, t2 := range dst.Tuples() {
			ok := true
			for j, p := range psi.y {
				if !t2[p].Equal(seed[psi.x[j]]) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			for j, p := range psi.yp {
				if !t2[p].Equal(row.YpVals[j]) {
					ok = false
					break
				}
			}
			if ok {
				return true
			}
		}
		return false
	}

	// Chase by levels: each level inserts all currently demanded tuples
	// with fresh unconstrained values.
	for level := 0; ; level++ {
		if witnessFound() {
			return Yes
		}
		vs := DetectAll(db, set)
		if len(vs) == 0 {
			return No // fixpoint countermodel
		}
		if level >= depth {
			return Unknown
		}
		for _, v := range vs {
			c := v.CIND
			src := db.MustInstance(c.src.Name())
			t, ok := src.Tuple(v.TID)
			if !ok {
				continue
			}
			prow := c.tableau[v.Row]
			dst := db.MustInstance(c.dst.Name())
			nt := make(relation.Tuple, c.dst.Arity())
			for i := range nt {
				nt[i] = fresh.next(c.dst.Attr(i))
			}
			for j, p := range c.y {
				nt[p] = t[c.x[j]]
			}
			for j, p := range c.yp {
				nt[p] = prow.YpVals[j]
			}
			if _, err := dst.Insert(nt); err != nil {
				// Demanded tuple outside the target domain: the premise
				// chain cannot be realized; treat as vacuous for this
				// branch (the offending source tuple can never exist in a
				// valid instance).
				continue
			}
		}
	}
}
