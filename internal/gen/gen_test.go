package gen_test

import (
	"testing"

	"repro/internal/cfd"
	"repro/internal/cind"
	"repro/internal/gen"
	"repro/internal/paperdata"
	"repro/internal/relation"
)

func TestCustomersCleanSatisfiesFigure2(t *testing.T) {
	in := gen.Customers(gen.CustomerConfig{N: 500, Seed: 4, ErrorRate: 0})
	s := in.Schema()
	if in.Len() != 500 {
		t.Fatalf("len = %d", in.Len())
	}
	for _, c := range []*cfd.CFD{paperdata.Phi1(s), paperdata.Phi2(s)} {
		if !cfd.Satisfies(in, c) {
			t.Errorf("clean data violates %v", c)
		}
	}
}

func TestCustomersErrorRateInjectsViolations(t *testing.T) {
	s := paperdata.CustomerSchema()
	sigma := []*cfd.CFD{paperdata.Phi1(s), paperdata.Phi2(s)}
	dirty := gen.Customers(gen.CustomerConfig{N: 500, Seed: 4, ErrorRate: 0.05})
	if len(cfd.DetectAll(dirty, sigma)) == 0 {
		t.Error("5% error rate should produce violations")
	}
	// Higher rates give (weakly) more dirty tuples.
	d1 := gen.Customers(gen.CustomerConfig{N: 500, Seed: 4, ErrorRate: 0.01})
	d10 := gen.Customers(gen.CustomerConfig{N: 500, Seed: 4, ErrorRate: 0.10})
	v1 := len(cfd.ViolatingTIDs(cfd.DetectAll(d1, sigma)))
	v10 := len(cfd.ViolatingTIDs(cfd.DetectAll(d10, sigma)))
	if v10 <= v1 {
		t.Errorf("10%% rate (%d dirty) should exceed 1%% rate (%d)", v10, v1)
	}
}

func TestCustomersDeterministic(t *testing.T) {
	a := gen.Customers(gen.CustomerConfig{N: 50, Seed: 8, ErrorRate: 0.05})
	b := gen.Customers(gen.CustomerConfig{N: 50, Seed: 8, ErrorRate: 0.05})
	if a.Len() != b.Len() {
		t.Fatal("nondeterministic size")
	}
	at, bt := a.Tuples(), b.Tuples()
	for i := range at {
		if !at[i].Equal(bt[i]) {
			t.Fatalf("tuple %d differs across runs", i)
		}
	}
	c := gen.Customers(gen.CustomerConfig{N: 50, Seed: 9, ErrorRate: 0.05})
	same := true
	ct := c.Tuples()
	for i := range at {
		if !at[i].Equal(ct[i]) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func figure4Sigma() []*cind.CIND {
	order := paperdata.OrderSchema()
	book := paperdata.BookSchema()
	cdS := paperdata.CDSchema()
	return []*cind.CIND{
		cind.MustNew(order, book, []string{"title", "price"}, []string{"title", "price"},
			[]string{"type"}, nil,
			cind.PatternRow{XpVals: []relation.Value{relation.Str("book")}}),
		cind.MustNew(order, cdS, []string{"title", "price"}, []string{"album", "price"},
			[]string{"type"}, nil,
			cind.PatternRow{XpVals: []relation.Value{relation.Str("CD")}}),
		cind.MustNew(cdS, book, []string{"album", "price"}, []string{"title", "price"},
			[]string{"genre"}, []string{"format"},
			cind.PatternRow{
				XpVals: []relation.Value{relation.Str("a-book")},
				YpVals: []relation.Value{relation.Str("audio")},
			}),
	}
}

func TestOrdersCleanSatisfiesCINDs(t *testing.T) {
	db := gen.Orders(gen.OrdersConfig{Books: 40, CDs: 40, Orders: 100, Seed: 6, ViolationRate: 0})
	if !cind.SatisfiesAll(db, figure4Sigma()) {
		t.Error("violation-free orders must satisfy ϕ4–ϕ6")
	}
	dirty := gen.Orders(gen.OrdersConfig{Books: 40, CDs: 40, Orders: 100, Seed: 6, ViolationRate: 0.3})
	if cind.SatisfiesAll(dirty, figure4Sigma()) {
		t.Error("30% violation rate should break some CIND")
	}
}

func TestCardBillingTruthAlignment(t *testing.T) {
	card, billing, truth := gen.CardBilling(gen.CardBillingConfig{NPersons: 40, Seed: 12})
	if card.Len() != 40 || billing.Len() != 40 || len(truth) != 40 {
		t.Fatalf("sizes: %d/%d/%d", card.Len(), billing.Len(), len(truth))
	}
	// Truth pairs share cno, tel/phn and email (the stable identifiers).
	cs, bs := card.Schema(), billing.Schema()
	for _, p := range truth {
		ct, _ := card.Tuple(p[0])
		bt, _ := billing.Tuple(p[1])
		if !ct[cs.MustLookup("cno")].Equal(bt[bs.MustLookup("cno")]) {
			t.Fatal("truth pair cno mismatch")
		}
		if !ct[cs.MustLookup("tel")].Equal(bt[bs.MustLookup("phn")]) {
			t.Fatal("truth pair tel/phn mismatch")
		}
		if !ct[cs.MustLookup("email")].Equal(bt[bs.MustLookup("email")]) {
			t.Fatal("truth pair email mismatch")
		}
	}
}

func TestCardBillingVariationRates(t *testing.T) {
	card, billing, truth := gen.CardBilling(gen.CardBillingConfig{
		NPersons: 200, Seed: 12, AddrDivergeRate: 0.5,
	})
	cs, bs := card.Schema(), billing.Schema()
	diverged := 0
	for _, p := range truth {
		ct, _ := card.Tuple(p[0])
		bt, _ := billing.Tuple(p[1])
		if !ct[cs.MustLookup("addr")].Equal(bt[bs.MustLookup("post")]) {
			diverged++
		}
	}
	if diverged < 60 || diverged > 140 {
		t.Errorf("diverged addresses = %d/200, want near 100", diverged)
	}
}

func TestExample51Shape(t *testing.T) {
	in := gen.Example51(5)
	if in.Len() != 10 {
		t.Fatalf("len = %d, want 10", in.Len())
	}
	// Every a_i appears exactly twice with b and b'.
	counts := map[string]int{}
	for _, tu := range in.Tuples() {
		counts[tu[0].StrVal()]++
	}
	for a, c := range counts {
		if c != 2 {
			t.Errorf("%s appears %d times", a, c)
		}
	}
	key := cfd.MustFD(in.Schema(), []string{"A"}, []string{"B"})
	if cfd.Satisfies(in, key) {
		t.Error("Example 5.1 instances violate the key by construction")
	}
}
