package gen

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/paperdata"
	"repro/internal/relation"
)

// CardBillingConfig parameterizes the Section 3.1 fraud-detection
// generator: a card relation and a billing relation describing the same
// population of card holders with cross-source representation variation.
type CardBillingConfig struct {
	// NPersons is the number of distinct card holders; each yields one
	// card tuple and one billing tuple.
	NPersons int
	Seed     int64
	// AbbrevRate is the fraction of billing tuples whose first name is
	// abbreviated ("John" → "J.").
	AbbrevRate float64
	// TypoRate is the fraction of billing tuples whose first name gets a
	// single-edit typo (still ≈d-similar).
	TypoRate float64
	// AddrDivergeRate is the fraction of billing tuples whose postal
	// address "radically differs" from the card address (the paper's
	// motivating case for derived RCKs: such pairs are only identified
	// through the [LN, tel, FN] comparison vector).
	AddrDivergeRate float64
}

// CardBilling generates the two sources plus the ground-truth match
// pairs (card TID, billing TID).
func CardBilling(cfg CardBillingConfig) (card, billing *relation.Instance, truth [][2]relation.TID) {
	r := rand.New(rand.NewSource(cfg.Seed))
	card = relation.NewInstance(paperdata.CardSchema())
	billing = relation.NewInstance(paperdata.BillingSchema())

	items := []string{"laptop", "phone", "book", "headphones", "monitor"}
	for i := 0; i < cfg.NPersons; i++ {
		fn := pick(r, firstNames)
		ln := pick(r, lastNames)
		// Distinct last names help; make them unique per person to keep
		// the ground truth unambiguous.
		ln = fmt.Sprintf("%s%02d", ln, i%100)
		addr := fmt.Sprintf("%d %s", 1+r.Intn(200), pick(r, streets))
		tel := fmt.Sprintf("+44 131 %07d", 1000000+i) // unique per person
		email := strings.ToLower(fn[:1] + ln + "@example.com")
		ssn := fmt.Sprintf("%09d", 100000000+i)
		cno := fmt.Sprintf("C%06d", i)

		cardTID := card.MustInsert(
			relation.Str(cno), relation.Str(ssn), relation.Str(fn), relation.Str(ln),
			relation.Str(addr), relation.Str(tel), relation.Str(email), relation.Str("visa"))

		bFN, bAddr := fn, addr
		switch {
		case r.Float64() < cfg.AbbrevRate:
			bFN = fn[:1] + "."
		case r.Float64() < cfg.TypoRate:
			bFN = typo(r, fn)
		}
		if r.Float64() < cfg.AddrDivergeRate {
			// A radically different representation of the address: the
			// direct [LN, addr, FN] rule cannot identify these.
			bAddr = fmt.Sprintf("PO Box %d, Sector %d", 1000+r.Intn(9000), r.Intn(50))
		}
		billTID := billing.MustInsert(
			relation.Str(cno), relation.Str(bFN), relation.Str(ln), relation.Str(bAddr),
			relation.Str(tel), relation.Str(email), relation.Str(pick(r, items)),
			relation.Float(float64(10+r.Intn(500))+0.99))
		truth = append(truth, [2]relation.TID{cardTID, billTID})
	}
	return card, billing, truth
}
