package drift_test

import (
	"testing"

	"repro/internal/cfd"
	"repro/internal/detect"
	"repro/internal/gen/drift"
	"repro/internal/paperdata"
	"repro/internal/relation"
)

// driftMonitor builds a monitor over a clean drift base with the drift
// workload's Σ = {ϕ1, ϕ2} (ϕ3 is excluded by design; see drift.go).
func driftMonitor(t *testing.T, n int) *detect.DBMonitor {
	t.Helper()
	in := drift.Customers(n, 1)
	s := in.Schema()
	db := relation.NewDatabase()
	db.Add(in)
	cs := detect.WrapCFDs([]*cfd.CFD{paperdata.Phi1(s), paperdata.Phi2(s)})
	m := detect.NewDBMonitor(nil, db, cs)
	if got := len(m.Violations()); got != 0 {
		t.Fatalf("clean drift base has %d violations, want 0", got)
	}
	return m
}

// TestDriftGroundTruth: each batch's gained count equals exactly its
// number of violating ops (one ϕ2 violation each, nothing cleared, no
// ϕ1/ϕ3 cross-talk) — the property the change-point tests rely on.
func TestDriftGroundTruth(t *testing.T) {
	m := driftMonitor(t, 200)
	batches := drift.Batches(drift.Config{
		Seed: 7, Batches: 40, OpsPerBatch: 25,
		BaseRate: 0.2, ChangeAt: 20, Factor: 8,
	})
	// Replay the same RNG decisions: count violating ops per batch by
	// the city each insert carries.
	for b, ops := range batches {
		wantGained := 0
		for _, op := range ops {
			if op.Op.Kind != detect.OpInsert {
				t.Fatalf("batch %d: op kind %v, want insert", b, op.Op.Kind)
			}
			if op.Op.Tuple[5].StrVal() == "NYC" {
				wantGained++
			}
		}
		gained, cleared, err := m.Apply(ops)
		if err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
		if len(cleared) != 0 {
			t.Fatalf("batch %d: cleared %d violations, want 0", b, len(cleared))
		}
		if len(gained) != wantGained {
			t.Fatalf("batch %d: gained %d violations, want %d", b, len(gained), wantGained)
		}
	}
}

// TestDriftStepChangesRate: the post-change mean gained rate must be
// several times the pre-change mean (the 8× step with sampling noise).
func TestDriftStepChangesRate(t *testing.T) {
	m := driftMonitor(t, 100)
	const changeAt = 30
	batches := drift.Batches(drift.Config{
		Seed: 3, Batches: 60, OpsPerBatch: 40,
		BaseRate: 0.1, ChangeAt: changeAt, Factor: 8,
	})
	var pre, post int
	for b, ops := range batches {
		gained, _, err := m.Apply(ops)
		if err != nil {
			t.Fatal(err)
		}
		if b < changeAt {
			pre += len(gained)
		} else {
			post += len(gained)
		}
	}
	preRate := float64(pre) / changeAt
	postRate := float64(post) / (60 - changeAt)
	if postRate < 4*preRate {
		t.Errorf("post-change rate %.2f not >> pre-change rate %.2f", postRate, preRate)
	}
}

// TestDriftGradualRamps: under Gradual the post-ramp rate reaches the
// factor; the stream stays deterministic per seed.
func TestDriftGradualRamps(t *testing.T) {
	cfg := drift.Config{
		Seed: 5, Batches: 80, OpsPerBatch: 40,
		BaseRate: 0.1, ChangeAt: 30, Factor: 8, Gradual: true, RampBatches: 20,
	}
	a := drift.Batches(cfg)
	b := drift.Batches(cfg)
	if len(a) != len(b) {
		t.Fatal("nondeterministic batch count")
	}
	count := func(batches [][]detect.DBOp, from, to int) int {
		n := 0
		for _, ops := range batches[from:to] {
			for _, op := range ops {
				if op.Op.Tuple[5].StrVal() == "NYC" {
					n++
				}
			}
		}
		return n
	}
	if count(a, 0, 80) != count(b, 0, 80) {
		t.Error("nondeterministic violation placement")
	}
	early := count(a, 0, 30)           // flat at BaseRate
	mid := count(a, 30, 50)            // ramping
	late := count(a, 50, 80)           // flat at BaseRate*Factor
	earlyRate := float64(early) / 30.0 // per batch
	midRate := float64(mid) / 20.0
	lateRate := float64(late) / 30.0
	if !(earlyRate < midRate && midRate < lateRate) {
		t.Errorf("rates not ramping: early %.2f, mid %.2f, late %.2f", earlyRate, midRate, lateRate)
	}
	if lateRate < 4*earlyRate {
		t.Errorf("ramp never reached the factor: early %.2f, late %.2f", earlyRate, lateRate)
	}
}
