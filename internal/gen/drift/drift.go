// Package drift generates synthetic drift workloads: op streams whose
// violation rate shifts at a known change point, for testing and
// demonstrating the change-point detector. Scored against Σ = {ϕ1, ϕ2}:
// every drift zip and phone is globally unique (disjoint from the base
// instance's), so neither ϕ1's (44, zip → street) nor ϕ2's FD row can
// ever pair a drift insert with another tuple; a violating insert is an
// Edinburgh customer (CC=44, AC=131) filed under city NYC — exactly one
// fresh ϕ2 constant-pattern violation per op, never cleared. (ϕ3, the
// unconditional FD [CC, AC] → [city], is excluded: even a clean
// Customers base violates it, and it would pair clean EDI inserts
// against violating NYC ones.) The per-commit gained series is
// therefore a Bernoulli stream at the configured rate: flat before the
// change point, stepped (or ramped) after it — the ground truth the
// detector tests score against.
//
// A separate package (not part of gen) because it emits detect.DBOp
// streams: gen itself must stay import-free of detect, whose own tests
// consume gen.
package drift

import (
	"fmt"
	"math/rand"

	"repro/internal/detect"
	"repro/internal/gen"
	"repro/internal/paperdata"
	"repro/internal/relation"
)

// Config parameterizes a drift op stream.
type Config struct {
	// Seed seeds the stream's RNG.
	Seed int64
	// Batches is the number of commit batches to generate.
	Batches int
	// OpsPerBatch is the inserts per batch.
	OpsPerBatch int
	// BaseRate is the per-op probability of a violating insert before
	// the change point.
	BaseRate float64
	// ChangeAt is the 0-based batch index of the first post-change
	// batch; Batches <= ChangeAt never shifts (a stationary control
	// stream).
	ChangeAt int
	// Factor multiplies BaseRate from ChangeAt on (e.g. 8 for the 8×
	// jump the acceptance test injects).
	Factor float64
	// Gradual ramps the rate linearly from BaseRate at ChangeAt to
	// BaseRate*Factor over RampBatches instead of stepping.
	Gradual bool
	// RampBatches is the ramp length when Gradual (default 20).
	RampBatches int
}

// Customers builds the clean base instance drift streams insert into:
// n ϕ1–ϕ3-satisfying customers (generator gen.Customers at zero error
// rate).
func Customers(n int, seed int64) *relation.Instance {
	return gen.Customers(gen.CustomerConfig{N: n, Seed: seed})
}

// Batches generates the op stream: Batches batches of OpsPerBatch
// inserts each, violating with the batch's configured rate. Ops are
// inserts into the customer relation; each violating op adds exactly
// one ϕ2 violation, each clean op adds none.
func Batches(cfg Config) [][]detect.DBOp {
	if cfg.RampBatches == 0 {
		cfg.RampBatches = 20
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	rel := paperdata.CustomerSchema().Name()
	out := make([][]detect.DBOp, cfg.Batches)
	n := 0
	for b := range out {
		rate := cfg.BaseRate
		if b >= cfg.ChangeAt {
			if cfg.Gradual {
				frac := float64(b-cfg.ChangeAt+1) / float64(cfg.RampBatches)
				if frac > 1 {
					frac = 1
				}
				rate = cfg.BaseRate * (1 + (cfg.Factor-1)*frac)
			} else {
				rate = cfg.BaseRate * cfg.Factor
			}
		}
		ops := make([]detect.DBOp, cfg.OpsPerBatch)
		for i := range ops {
			ops[i] = insert(rel, r, n, r.Float64() < rate)
			n++
		}
		out[b] = ops
	}
	return out
}

// Name pools for generated tuples; cosmetic only — no constraint reads
// name or street on a drift insert (the unique zips keep ϕ1 from ever
// pairing one).
var (
	firstNames = []string{"James", "Mary", "Robert", "Patricia", "John", "Jennifer", "Michael", "Linda"}
	lastNames  = []string{"Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller", "Davis"}
	streets    = []string{"Mayfield", "Crichton", "Mtn Ave", "Preston", "High St", "Port Rd"}
)

func pick(r *rand.Rand, xs []string) string { return xs[r.Intn(len(xs))] }

// insert builds one customer insert. The zip "DR<n> X" and the phone
// 90000000+n are globally unique across the stream and disjoint from
// anything gen.Customers generates (base phones live in [1e6, 1e7)),
// so no insert can ever pair with another tuple under ϕ1 or ϕ2's FD
// row; the only constraint a violating insert can (and always does)
// trip is ϕ2's (44, 131 ⇒ EDI) constant pattern.
func insert(rel string, r *rand.Rand, n int, violate bool) detect.DBOp {
	city := "EDI"
	if violate {
		city = "NYC"
	}
	return detect.InsertInto(rel, relation.Tuple{
		relation.Int(44), relation.Int(131),
		relation.Int(int64(90000000 + n)),
		relation.Str(pick(r, firstNames) + " " + pick(r, lastNames)),
		relation.Str(pick(r, streets)),
		relation.Str(city),
		relation.Str(fmt.Sprintf("DR%07d X", n)),
	})
}
