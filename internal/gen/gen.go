// Package gen provides deterministic synthetic workload generators for
// the benchmark harness: customer data in the Figure 1 schema with
// conflicting UK/US/NL address conventions and configurable error rates
// (the paper cites enterprise error rates of 1%–5%), order/book/CD
// databases for the Figure 3/4 CIND experiments, card/billing source
// pairs with cross-source name and address variation for the Section 3
// object-identification experiments, and the exponential-repair family of
// Example 5.1. All generators are seeded and reproducible.
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/paperdata"
	"repro/internal/relation"
)

// Word pools for synthetic values. Kept deliberately small enough to
// force collisions (the interesting case for dependencies) but large
// enough to avoid degenerate instances.
var (
	firstNames = []string{"James", "Mary", "Robert", "Patricia", "John", "Jennifer", "Michael", "Linda", "David", "Elizabeth", "William", "Barbara", "Richard", "Susan", "Joseph", "Jessica", "Thomas", "Sarah", "Charles", "Karen"}
	lastNames  = []string{"Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller", "Davis", "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez", "Wilson", "Anderson", "Taylor"}
	streets    = []string{"Mayfield Rd", "Crichton St", "Mtn Ave", "High St", "Station Rd", "Main St", "Church Ln", "Park Ave", "Victoria Rd", "King St", "Queen St", "Mill Ln", "School Rd", "North Rd", "South St", "Broad Way"}
	ukCities   = []string{"EDI", "GLA", "LDN", "MAN", "LIV"}
	usCities   = []string{"MH", "NYC", "LA", "CHI", "SF"}
	nlCities   = []string{"AMS", "RTM", "UTR"}
)

// pick returns a deterministic random element.
func pick[T any](r *rand.Rand, xs []T) T { return xs[r.Intn(len(xs))] }

// typo corrupts a string with a single random edit (substitute, delete or
// insert) — the classic dirty-data perturbation.
func typo(r *rand.Rand, s string) string {
	if s == "" {
		return "x"
	}
	rs := []rune(s)
	i := r.Intn(len(rs))
	switch r.Intn(3) {
	case 0: // substitute
		rs[i] = rune('a' + r.Intn(26))
		return string(rs)
	case 1: // delete
		return string(append(rs[:i], rs[i+1:]...))
	default: // insert
		out := make([]rune, 0, len(rs)+1)
		out = append(out, rs[:i]...)
		out = append(out, rune('a'+r.Intn(26)))
		out = append(out, rs[i:]...)
		return string(out)
	}
}

// CustomerConfig parameterizes the Figure 1-style customer generator.
type CustomerConfig struct {
	N         int     // number of tuples
	Seed      int64   // RNG seed
	ErrorRate float64 // fraction of tuples corrupted (0–1)
}

// Customers generates a customer instance that satisfies the Figure 2
// dependencies (ϕ1–ϕ3) when ErrorRate is 0: UK zip codes functionally
// determine streets, (44, 131) phones live in EDI, (01, 908) phones live
// in MH. With a positive ErrorRate, a corresponding fraction of tuples
// get a corrupted street, city or zip, producing exactly the violation
// kinds the paper narrates for Figure 1.
func Customers(cfg CustomerConfig) *relation.Instance {
	r := rand.New(rand.NewSource(cfg.Seed))
	schema := paperdata.CustomerSchema()
	in := relation.NewInstance(schema)

	// UK zip → street assignment (the ϕ1 invariant).
	nZips := cfg.N/4 + 4
	zipStreet := make(map[string]string, nZips)
	zips := make([]string, 0, nZips)
	for i := 0; i < nZips; i++ {
		z := fmt.Sprintf("EH%d %dLE", i/10+1, i%10)
		zipStreet[z] = pick(r, streets)
		zips = append(zips, z)
	}

	for i := 0; i < cfg.N; i++ {
		name := pick(r, firstNames) + " " + pick(r, lastNames)
		var cc, ac, phn int64
		var street, city, zip string
		switch r.Intn(3) {
		case 0: // UK Edinburgh customer: CC=44, AC=131, city EDI
			cc, ac = 44, 131
			phn = int64(1000000 + r.Intn(9000000))
			zip = pick(r, zips)
			street = zipStreet[zip]
			city = "EDI"
		case 1: // UK elsewhere: zip still determines street
			cc = 44
			ac = int64(132 + r.Intn(50))
			phn = int64(1000000 + r.Intn(9000000))
			zip = pick(r, zips)
			street = zipStreet[zip]
			city = pick(r, ukCities)
		default: // US Murray Hill customer: CC=01, AC=908, city MH
			cc, ac = 1, 908
			phn = int64(1000000 + r.Intn(9000000))
			zip = fmt.Sprintf("0%d", 7000+r.Intn(999))
			street = pick(r, streets)
			city = "MH"
		}
		if r.Float64() < cfg.ErrorRate {
			switch r.Intn(3) {
			case 0:
				street = typo(r, street)
			case 1:
				city = pick(r, append(append([]string{}, usCities...), ukCities...))
			default:
				zip = pick(r, zips)
			}
		}
		in.MustInsert(
			relation.Int(cc), relation.Int(ac), relation.Int(phn),
			relation.Str(name), relation.Str(street), relation.Str(city), relation.Str(zip))
	}
	return in
}

// OrdersConfig parameterizes the Figure 3-style order/book/CD generator.
type OrdersConfig struct {
	Books         int
	CDs           int
	Orders        int
	Seed          int64
	ViolationRate float64 // fraction of order/CD tuples left unmatched
}

// Orders generates a database over the order, book and CD schemas that
// satisfies the Figure 4 CINDs (ϕ4–ϕ6) up to the configured violation
// rate: book orders reference existing books, CD orders existing CDs, and
// audio-book CDs have audio book editions — except for deliberately
// injected orphans.
func Orders(cfg OrdersConfig) *relation.Database {
	r := rand.New(rand.NewSource(cfg.Seed))
	db := relation.NewDatabase()
	book := relation.NewInstance(paperdata.BookSchema())
	cd := relation.NewInstance(paperdata.CDSchema())
	order := relation.NewInstance(paperdata.OrderSchema())
	db.Add(book)
	db.Add(cd)
	db.Add(order)

	formats := []string{"hard-cover", "paper-cover"}
	genres := []string{"country", "rock", "jazz", "classical"}

	type item struct {
		title string
		price float64
	}
	var bookItems, cdItems []item
	for i := 0; i < cfg.Books; i++ {
		it := item{title: fmt.Sprintf("Book Title %d", i), price: float64(5+r.Intn(30)) + 0.99}
		bookItems = append(bookItems, it)
		book.MustInsert(relation.Str(fmt.Sprintf("b%04d", i)), relation.Str(it.title),
			relation.Float(it.price), relation.Str(pick(r, formats)))
	}
	for i := 0; i < cfg.CDs; i++ {
		it := item{title: fmt.Sprintf("Album %d", i), price: float64(4+r.Intn(20)) + 0.94}
		cdItems = append(cdItems, it)
		genre := pick(r, genres)
		if r.Intn(5) == 0 { // some CDs are audio books
			genre = "a-book"
			if r.Float64() >= cfg.ViolationRate {
				// Provide the demanded audio edition (ϕ6).
				book.MustInsert(relation.Str(fmt.Sprintf("ba%04d", i)), relation.Str(it.title),
					relation.Float(it.price), relation.Str("audio"))
			}
		}
		cd.MustInsert(relation.Str(fmt.Sprintf("c%04d", i)), relation.Str(it.title),
			relation.Float(it.price), relation.Str(genre))
	}
	for i := 0; i < cfg.Orders; i++ {
		if len(bookItems) > 0 && (len(cdItems) == 0 || r.Intn(2) == 0) {
			it := pick(r, bookItems)
			if r.Float64() < cfg.ViolationRate {
				it = item{title: fmt.Sprintf("Ghost Book %d", i), price: 1.99} // ϕ4 violation
			}
			order.MustInsert(relation.Str(fmt.Sprintf("a%05d", i)), relation.Str(it.title),
				relation.Str("book"), relation.Float(it.price))
		} else if len(cdItems) > 0 {
			it := pick(r, cdItems)
			if r.Float64() < cfg.ViolationRate {
				it = item{title: fmt.Sprintf("Ghost Album %d", i), price: 0.99} // ϕ5 violation
			}
			order.MustInsert(relation.Str(fmt.Sprintf("a%05d", i)), relation.Str(it.title),
				relation.Str("CD"), relation.Float(it.price))
		}
	}
	return db
}

// Example51 builds the instance Dn of Example 5.1 over R(A, B): tuples
// (a_i, b) and (a_i, b′) for i ∈ [1, n]. With the key A → B, Dn has 2n
// tuples and 2^n repairs.
func Example51(n int) *relation.Instance {
	s := relation.MustSchema("r",
		relation.Attr("A", relation.KindString),
		relation.Attr("B", relation.KindString),
	)
	in := relation.NewInstance(s)
	for i := 1; i <= n; i++ {
		a := fmt.Sprintf("a%d", i)
		in.MustInsert(relation.Str(a), relation.Str("b"))
		in.MustInsert(relation.Str(a), relation.Str("b'"))
	}
	return in
}
