package repair_test

import (
	"testing"

	"repro/internal/cfd"
	"repro/internal/cind"
	"repro/internal/denial"
	"repro/internal/gen"
	"repro/internal/paperdata"
	"repro/internal/relation"
	"repro/internal/repair"
)

// TestExample51RepairCount reproduces Example 5.1: Dn (2n tuples, key
// A → B) has exactly 2^n X-repairs.
func TestExample51RepairCount(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		in := gen.Example51(n)
		db := relation.NewDatabase()
		db.Add(in)
		dcs, err := denial.Key(in.Schema(), []string{"A"})
		if err != nil {
			t.Fatal(err)
		}
		h, err := repair.BuildHypergraph(db, dcs)
		if err != nil {
			t.Fatal(err)
		}
		want := 1 << n
		if got := h.CountXRepairs(0); got != want {
			t.Errorf("n=%d: repairs = %d, want 2^%d = %d", n, got, n, want)
		}
	}
}

// TestEnumeratedRepairsAreXRepairs: every enumerated repair passes the
// repair-checking predicate (Theorem 5.1's decision problem).
func TestEnumeratedRepairsAreXRepairs(t *testing.T) {
	in := gen.Example51(3)
	db := relation.NewDatabase()
	db.Add(in)
	dcs, err := denial.Key(in.Schema(), []string{"A"})
	if err != nil {
		t.Fatal(err)
	}
	h, err := repair.BuildHypergraph(db, dcs)
	if err != nil {
		t.Fatal(err)
	}
	repairs := h.EnumerateXRepairs(0)
	if len(repairs) != 8 {
		t.Fatalf("got %d repairs", len(repairs))
	}
	for i, kept := range repairs {
		// Build the sub-database of kept tuples.
		sub := db.Clone()
		keep := make(map[denial.TupleRef]bool, len(kept))
		for _, ref := range kept {
			keep[ref] = true
		}
		for _, name := range sub.Names() {
			si, _ := sub.Instance(name)
			for _, id := range si.IDs() {
				if !keep[denial.TupleRef{Rel: name, TID: id}] {
					si.Delete(id)
				}
			}
		}
		ok, err := repair.IsXRepair(db, sub, dcs)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("repair %d fails IsXRepair", i)
		}
		if ok, _ := repair.IsSRepairDenial(db, sub, dcs); !ok {
			t.Errorf("repair %d fails IsSRepairDenial (must coincide)", i)
		}
	}
	// A non-maximal consistent subset is not an X-repair.
	empty := db.Clone()
	for _, name := range empty.Names() {
		ei, _ := empty.Instance(name)
		for _, id := range ei.IDs() {
			ei.Delete(id)
		}
	}
	if ok, _ := repair.IsXRepair(db, empty, dcs); ok {
		t.Error("the empty database is consistent but not maximal")
	}
	// A non-subset is not an X-repair.
	alien := db.Clone()
	alien.MustInstance("r").MustInsert(relation.Str("zz"), relation.Str("b"))
	if ok, _ := repair.IsXRepair(db, alien, dcs); ok {
		t.Error("a superset must not be an X-repair")
	}
}

func TestGreedyXRepair(t *testing.T) {
	in := gen.Example51(4)
	db := relation.NewDatabase()
	db.Add(in)
	dcs, err := denial.Key(in.Schema(), []string{"A"})
	if err != nil {
		t.Fatal(err)
	}
	removed, err := repair.GreedyXRepair(db, dcs)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 4 {
		t.Errorf("greedy deleted %d tuples, want 4 (one per conflicting pair)", len(removed))
	}
	sub := repair.ApplyDeletions(db, removed)
	ok, err := repair.IsXRepair(db, sub, dcs)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("greedy result is not an X-repair")
	}
	// Idempotent on clean data.
	removed2, err := repair.GreedyXRepair(sub, dcs)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed2) != 0 {
		t.Errorf("clean database should need no deletions, got %v", removed2)
	}
}

func TestDisMetric(t *testing.T) {
	if repair.Dis(relation.Str("x"), relation.Str("x")) != 0 {
		t.Error("identical values have distance 0")
	}
	if d := repair.Dis(relation.Str("Mayfield"), relation.Str("Crichton")); d <= 0.5 {
		t.Errorf("unrelated streets should be distant: %v", d)
	}
	if d := repair.Dis(relation.Str("Mayfield"), relation.Str("Mayfeld")); d >= 0.3 {
		t.Errorf("typo should be close: %v", d)
	}
	if d := repair.Dis(relation.Int(100), relation.Int(101)); d >= 0.1 {
		t.Errorf("near numbers should be close: %v", d)
	}
	if d := repair.Dis(relation.Int(1), relation.Str("1")); d != 1 {
		t.Errorf("cross-kind distance = %v, want 1", d)
	}
	if d := repair.Dis(relation.Null(), relation.Str("x")); d != 1 {
		t.Errorf("null distance = %v, want 1", d)
	}
}

func TestChangeCostUsesWeights(t *testing.T) {
	d0 := paperdata.Figure1()
	s := d0.Schema()
	city := s.MustLookup("city")
	full := repair.ChangeCost(d0, 0, city, relation.Str("EDI"))
	d0.SetWeight(0, city, 0.5)
	half := repair.ChangeCost(d0, 0, city, relation.Str("EDI"))
	if half >= full || half == 0 {
		t.Errorf("weighted cost %v should be below default %v", half, full)
	}
	if repair.ChangeCost(d0, 99, city, relation.Str("EDI")) != 0 {
		t.Error("missing tuple costs 0")
	}
}

// TestHeuristicRepairFigure1 repairs the paper's dirty D0 against the
// Figure 2 CFDs: afterwards the instance satisfies ϕ1–ϕ3, and the city
// fixes are exactly what the paper prescribes (EDI for t1/t2, MH for t3).
func TestHeuristicRepairFigure1(t *testing.T) {
	d0 := paperdata.Figure1()
	s := d0.Schema()
	sigma := []*cfd.CFD{paperdata.Phi1(s), paperdata.Phi2(s), paperdata.Phi3(s)}
	report, err := repair.RepairCFDs(d0, sigma, repair.URepairOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !cfd.SatisfiesAll(d0, sigma) {
		t.Fatal("repair left violations")
	}
	city := s.MustLookup("city")
	t0, _ := d0.Tuple(0)
	t1, _ := d0.Tuple(1)
	t2, _ := d0.Tuple(2)
	if t0[city].StrVal() != "EDI" || t1[city].StrVal() != "EDI" {
		t.Errorf("UK cities = %v, %v; want EDI (cfd2)", t0[city], t1[city])
	}
	if t2[city].StrVal() != "MH" {
		t.Errorf("US city = %v; want MH (cfd3)", t2[city])
	}
	// ϕ1: t1/t2 streets must now agree.
	street := s.MustLookup("street")
	if !t0[street].Equal(t1[street]) {
		t.Errorf("streets still differ: %v vs %v", t0[street], t1[street])
	}
	if report.Cost <= 0 || len(report.Changes) == 0 {
		t.Errorf("report = %v", report)
	}
	_ = report.String()
}

// TestHeuristicRepairCleans repairs generated dirty customer data at the
// paper's 1%–5% error rates.
func TestHeuristicRepairCleans(t *testing.T) {
	s := paperdata.CustomerSchema()
	sigma := []*cfd.CFD{paperdata.Phi1(s), paperdata.Phi2(s)}
	for _, rate := range []float64{0.01, 0.05} {
		dirty := gen.Customers(gen.CustomerConfig{N: 300, Seed: 42, ErrorRate: rate})
		before := len(cfd.DetectAll(dirty, sigma))
		report, err := repair.RepairCFDs(dirty, sigma, repair.URepairOptions{})
		if err != nil {
			t.Fatalf("rate %v: %v", rate, err)
		}
		if !cfd.SatisfiesAll(dirty, sigma) {
			t.Fatalf("rate %v: still dirty", rate)
		}
		if before > 0 && len(report.Changes) == 0 {
			t.Errorf("rate %v: violations existed but no changes made", rate)
		}
	}
	// Clean data needs no changes.
	clean := gen.Customers(gen.CustomerConfig{N: 200, Seed: 1, ErrorRate: 0})
	report, err := repair.RepairCFDs(clean, sigma, repair.URepairOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Changes) != 0 {
		t.Errorf("clean data repaired with %d changes", len(report.Changes))
	}
}

// TestRepairWeightsSteerConsensus: the weighted-plurality target choice
// follows confidence weights, as the Section 5.1 metric intends.
func TestRepairWeightsSteerConsensus(t *testing.T) {
	s := relation.MustSchema("r",
		relation.Attr("k", relation.KindString),
		relation.Attr("v", relation.KindString),
	)
	key := cfd.MustFD(s, []string{"k"}, []string{"v"})
	in := relation.NewInstance(s)
	a := in.MustInsert(relation.Str("g"), relation.Str("right"))
	b := in.MustInsert(relation.Str("g"), relation.Str("wrong"))
	// Trust a's value fully, b's not at all.
	in.SetWeight(a, 1, 1.0)
	in.SetWeight(b, 1, 0.0)
	if _, err := repair.RepairCFDs(in, []*cfd.CFD{key}, repair.URepairOptions{}); err != nil {
		t.Fatal(err)
	}
	ta, _ := in.Tuple(a)
	tb, _ := in.Tuple(b)
	if ta[1].StrVal() != "right" || tb[1].StrVal() != "right" {
		t.Errorf("consensus = %v/%v, want the trusted value", ta[1], tb[1])
	}
}

func TestRepairRejectsInconsistentSigma(t *testing.T) {
	_, bad := paperdata.Example41()
	in := relation.NewInstance(bad[0].Schema())
	if _, err := repair.RepairCFDs(in, bad, repair.URepairOptions{}); err == nil {
		t.Error("inconsistent Σ must be rejected (no repair exists)")
	}
}

// TestRepairContradictoryDemands exercises the LHS-escape path: a tuple
// caught between two constant demands bends its LHS instead of
// oscillating.
func TestRepairContradictoryDemands(t *testing.T) {
	s := relation.MustSchema("r",
		relation.Attr("A", relation.KindString),
		relation.Attr("C", relation.KindString),
		relation.Attr("B", relation.KindString),
	)
	c1 := cfd.MustNew(s, []string{"A"}, []string{"B"},
		cfd.Row([]cfd.Cell{cfd.Const(relation.Str("a"))}, []cfd.Cell{cfd.Const(relation.Str("c1"))}))
	c2 := cfd.MustNew(s, []string{"C"}, []string{"B"},
		cfd.Row([]cfd.Cell{cfd.Const(relation.Str("d"))}, []cfd.Cell{cfd.Const(relation.Str("c2"))}))
	sigma := []*cfd.CFD{c1, c2}
	if ok, _ := cfd.Consistent(sigma); !ok {
		t.Fatal("Σ should be consistent (escape via A≠a or C≠d)")
	}
	in := relation.NewInstance(s)
	in.MustInsert(relation.Str("a"), relation.Str("d"), relation.Str("x"))
	if _, err := repair.RepairCFDs(in, sigma, repair.URepairOptions{}); err != nil {
		t.Fatal(err)
	}
	if !cfd.SatisfiesAll(in, sigma) {
		t.Error("contradictory demands not resolved")
	}
}

func TestInstanceCost(t *testing.T) {
	orig := paperdata.Figure1()
	same := orig.Clone()
	if c := repair.InstanceCost(orig, same); c != 0 {
		t.Errorf("identical instances cost %v", c)
	}
	mod := orig.Clone()
	mod.Update(0, orig.Schema().MustLookup("city"), relation.Str("EDI"))
	if c := repair.InstanceCost(orig, mod); c <= 0 {
		t.Error("modification must cost > 0")
	}
	del := orig.Clone()
	del.Delete(2)
	if c := repair.InstanceCost(orig, del); c < 7 {
		t.Errorf("deleting a 7-attribute tuple costs %v, want ≥ 7", c)
	}
	ins := orig.Clone()
	ins.MustInsert(relation.Int(1), relation.Int(2), relation.Int(3),
		relation.Str("x"), relation.Str("y"), relation.Str("z"), relation.Str("w"))
	if c := repair.InstanceCost(orig, ins); c < 7 {
		t.Errorf("inserting a tuple costs %v, want ≥ 7", c)
	}
}

// TestRepairCINDs exercises both repair modes on the Figure 3/4 data.
func TestRepairCINDs(t *testing.T) {
	order := paperdata.OrderSchema()
	book := paperdata.BookSchema()
	cdS := paperdata.CDSchema()
	phi6 := cind.MustNew(cdS, book,
		[]string{"album", "price"}, []string{"title", "price"},
		[]string{"genre"}, []string{"format"},
		cind.PatternRow{
			XpVals: []relation.Value{relation.Str("a-book")},
			YpVals: []relation.Value{relation.Str("audio")},
		})
	_ = order

	// Insertion mode: the missing audio edition is added.
	db := paperdata.Figure3()
	n, err := repair.RepairCINDs(db, []*cind.CIND{phi6}, repair.InsertDemanded, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("inserted %d tuples, want 1", n)
	}
	if !cind.Satisfies(db, phi6) {
		t.Error("insertion repair did not resolve ϕ6")
	}

	// Deletion mode: the a-book CD t9 is removed.
	db2 := paperdata.Figure3()
	n, err = repair.RepairCINDs(db2, []*cind.CIND{phi6}, repair.DeleteViolating, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("deleted %d tuples, want 1", n)
	}
	if !cind.Satisfies(db2, phi6) {
		t.Error("deletion repair did not resolve ϕ6")
	}
	if db2.MustInstance("CD").Len() != 1 {
		t.Errorf("CD relation = %d tuples, want 1", db2.MustInstance("CD").Len())
	}
}
