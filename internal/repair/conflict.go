package repair

import (
	"sort"

	"repro/internal/cfd"
	"repro/internal/denial"
	"repro/internal/detect"
	"repro/internal/relation"
)

// detectEngine is the package's batch violation-detection engine: repair
// gathers violations through it so the columnar snapshot and LHS group
// indexes are built once and shared across Σ, and the per-CFD scans run
// on the worker pool. Repair mutates working copies between detection
// rounds; the engine snapshots per call, so every round sees fresh data.
var detectEngine = detect.New(0)

// Conflict hypergraph machinery for X-repairs of denial constraints:
// vertices are tuples, hyperedges the conflicts (matches of a forbidden
// pattern). An X-repair is a maximal subset of tuples hitting no
// hyperedge, i.e. a maximal independent set. For the single key of
// Example 5.1 the hypergraph is n disjoint 2-cliques, giving exactly 2^n
// repairs.

// Hypergraph is the conflict hypergraph of a database w.r.t. a set of
// denial constraints.
type Hypergraph struct {
	Vertices []denial.TupleRef
	Edges    [][]int // vertex indexes per conflict
	index    map[denial.TupleRef]int
}

// BuildHypergraph detects all conflicts and assembles the hypergraph.
func BuildHypergraph(db *relation.Database, dcs []denial.DC) (*Hypergraph, error) {
	conflicts, err := denial.DetectAll(db, dcs, 0)
	if err != nil {
		return nil, err
	}
	h := &Hypergraph{index: make(map[denial.TupleRef]int)}
	// Vertices: every tuple of every relation, so that maximality is
	// judged against the whole database.
	for _, name := range db.Names() {
		in, _ := db.Instance(name)
		for _, id := range in.IDs() {
			ref := denial.TupleRef{Rel: name, TID: id}
			h.index[ref] = len(h.Vertices)
			h.Vertices = append(h.Vertices, ref)
		}
	}
	for _, c := range conflicts {
		edge := make([]int, 0, len(c.Tuples))
		for _, ref := range c.Tuples {
			edge = append(edge, h.index[ref])
		}
		sort.Ints(edge)
		h.Edges = append(h.Edges, edge)
	}
	return h, nil
}

// BuildCFDHypergraph assembles the conflict hypergraph of a single
// instance w.r.t. a set of CFDs over the instance's current snapshot
// (relation.SnapshotOf — cached, and caught up via the changelog after
// mutations rather than re-frozen). Callers that already hold a
// snapshot or a detect.Monitor should use BuildCFDHypergraphOn with it.
func BuildCFDHypergraph(in *relation.Instance, sigma []*cfd.CFD) *Hypergraph {
	return BuildCFDHypergraphOn(relation.SnapshotOf(in), sigma)
}

// BuildCFDHypergraphOn assembles the conflict hypergraph of a frozen
// snapshot w.r.t. a set of CFDs, gathering the violations through the
// parallel detection engine: vertices are the snapshot's tuples and
// every violation contributes a hyperedge — {t} for a single-tuple
// constant clash, {t1, t2} for a pair violation (deduplicated across
// RHS attributes and pattern rows, which add no new conflicts between
// the same tuples). Gathering uses the engine's exhaustive pair mode,
// so conflicts between non-representative group members are present and
// every enumerated X-repair really satisfies Σ. Detection shares the
// snapshot's cached group indexes, so iterating repair loops that keep
// the snapshot warm (e.g. through a detect.Monitor) pay only for the
// violation scan.
func BuildCFDHypergraphOn(snap *relation.Snapshot, sigma []*cfd.CFD) *Hypergraph {
	name := snap.Schema().Name()
	h := &Hypergraph{index: make(map[denial.TupleRef]int)}
	for row := 0; row < snap.Len(); row++ {
		ref := denial.TupleRef{Rel: name, TID: snap.TID(row)}
		h.index[ref] = len(h.Vertices)
		h.Vertices = append(h.Vertices, ref)
	}
	seen := make(map[[2]int]bool)
	for _, v := range detectEngine.DetectAllExhaustiveOn(snap, sigma) {
		a := h.index[denial.TupleRef{Rel: name, TID: v.T1}]
		b := h.index[denial.TupleRef{Rel: name, TID: v.T2}]
		if a > b {
			a, b = b, a
		}
		if seen[[2]int{a, b}] {
			continue
		}
		seen[[2]int{a, b}] = true
		if a == b {
			h.Edges = append(h.Edges, []int{a})
			continue
		}
		h.Edges = append(h.Edges, []int{a, b})
	}
	return h
}

// EnumerateXRepairs enumerates all X-repairs (maximal independent vertex
// sets) as sets of kept tuples, up to limit (0 = unlimited). The
// branching is the textbook one: pick an uncovered edge, branch on
// deleting each of its vertices; leaves are deduplicated and tested for
// maximality.
func (h *Hypergraph) EnumerateXRepairs(limit int) [][]denial.TupleRef {
	var out [][]denial.TupleRef
	seen := make(map[string]bool)
	deleted := make([]bool, len(h.Vertices))

	var keyOf func() string
	keyOf = func() string {
		b := make([]byte, len(deleted))
		for i, d := range deleted {
			if d {
				b[i] = '1'
			} else {
				b[i] = '0'
			}
		}
		return string(b)
	}

	edgeAlive := func(edge []int) bool {
		for _, v := range edge {
			if deleted[v] {
				return false
			}
		}
		return true
	}
	firstAlive := func() []int {
		for _, e := range h.Edges {
			if edgeAlive(e) {
				return e
			}
		}
		return nil
	}
	// isMaximal: no deleted vertex can be restored without reviving an
	// edge.
	isMaximal := func() bool {
		for v, d := range deleted {
			if !d {
				continue
			}
			deleted[v] = false
			revives := firstAlive() != nil
			deleted[v] = true
			if !revives {
				return false
			}
		}
		return true
	}

	var rec func()
	rec = func() {
		if limit > 0 && len(out) >= limit {
			return
		}
		edge := firstAlive()
		if edge == nil {
			if !isMaximal() {
				return
			}
			k := keyOf()
			if seen[k] {
				return
			}
			seen[k] = true
			var kept []denial.TupleRef
			for i, ref := range h.Vertices {
				if !deleted[i] {
					kept = append(kept, ref)
				}
			}
			out = append(out, kept)
			return
		}
		for _, v := range edge {
			if deleted[v] {
				continue
			}
			deleted[v] = true
			rec()
			deleted[v] = false
			if limit > 0 && len(out) >= limit {
				return
			}
		}
	}
	rec()
	return out
}

// CountXRepairs counts the X-repairs without materializing them when the
// limit allows; it simply enumerates with the given cap (0 = all) and
// returns the count.
func (h *Hypergraph) CountXRepairs(limit int) int {
	return len(h.EnumerateXRepairs(limit))
}

// GreedyXRepair deletes tuples greedily (highest conflict degree first)
// until no conflict remains, then restores any deletion that stays
// conflict-free — yielding a maximal consistent subset (an X-repair; not
// necessarily a maximum one, which is NP-hard). It returns the deleted
// tuple refs.
func GreedyXRepair(db *relation.Database, dcs []denial.DC) ([]denial.TupleRef, error) {
	work := db.Clone()
	var removed []denial.TupleRef
	for {
		conflicts, err := denial.DetectAll(work, dcs, 0)
		if err != nil {
			return nil, err
		}
		if len(conflicts) == 0 {
			break
		}
		degree := make(map[denial.TupleRef]int)
		for _, c := range conflicts {
			for _, ref := range c.Tuples {
				degree[ref]++
			}
		}
		var victim denial.TupleRef
		best := -1
		for ref, d := range degree {
			if d > best || (d == best && (ref.Rel < victim.Rel || (ref.Rel == victim.Rel && ref.TID < victim.TID))) {
				best = d
				victim = ref
			}
		}
		work.MustInstance(victim.Rel).Delete(victim.TID)
		removed = append(removed, victim)
	}
	// Restore pass for maximality.
	restored := true
	for restored {
		restored = false
		for i, ref := range removed {
			orig, _ := db.MustInstance(ref.Rel).Tuple(ref.TID)
			trial := work.Clone()
			if _, err := trial.MustInstance(ref.Rel).Insert(orig); err != nil {
				continue
			}
			if denial.SatisfiesAll(trial, dcs) {
				in := work.MustInstance(ref.Rel)
				if _, err := in.Insert(orig); err == nil {
					removed = append(removed[:i], removed[i+1:]...)
					restored = true
					break
				}
			}
		}
	}
	return removed, nil
}

// ApplyDeletions returns a copy of db with the listed tuples removed.
func ApplyDeletions(db *relation.Database, refs []denial.TupleRef) *relation.Database {
	out := db.Clone()
	for _, ref := range refs {
		out.MustInstance(ref.Rel).Delete(ref.TID)
	}
	return out
}
