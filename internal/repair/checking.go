package repair

import (
	"fmt"

	"repro/internal/cind"
	"repro/internal/denial"
	"repro/internal/relation"
)

// Repair checking (Section 5.1, Theorem 5.1): given D, D′ and Σ, is D′ a
// repair of D? The checks below cover the X- and S-repair models for
// denial constraints, where the two models coincide ("when only denial
// constraints are involved, X-repair and S-repair coincide, since tuple
// insertions do not help").

// IsXRepair reports whether sub is an X-repair of db w.r.t. the denial
// constraints: a subset (tuple-wise, by TID), consistent, and maximal —
// no deleted tuple can be restored without a violation.
func IsXRepair(db, sub *relation.Database, dcs []denial.DC) (bool, error) {
	// Subset check by TID.
	for _, name := range sub.Names() {
		si, _ := sub.Instance(name)
		oi, ok := db.Instance(name)
		if !ok {
			return false, fmt.Errorf("repair: relation %q not in the original", name)
		}
		for _, id := range si.IDs() {
			st, _ := si.Tuple(id)
			ot, ok := oi.Tuple(id)
			if !ok || !st.Equal(ot) {
				return false, nil // not a subset
			}
		}
	}
	if !denial.SatisfiesAll(sub, dcs) {
		return false, nil
	}
	// Maximality: restoring any deleted tuple must violate.
	for _, name := range db.Names() {
		oi, _ := db.Instance(name)
		si, ok := sub.Instance(name)
		if !ok {
			si = relation.NewInstance(oi.Schema())
		}
		for _, id := range oi.IDs() {
			if _, present := si.Tuple(id); present {
				continue
			}
			ot, _ := oi.Tuple(id)
			trial := sub.Clone()
			ti, ok := trial.Instance(name)
			if !ok {
				ti = relation.NewInstance(oi.Schema())
				trial.Add(ti)
			}
			if _, err := ti.Insert(ot); err != nil {
				continue
			}
			if denial.SatisfiesAll(trial, dcs) {
				return false, nil // restorable: not maximal
			}
		}
	}
	return true, nil
}

// IsSRepairDenial reports whether sub is an S-repair of db w.r.t. denial
// constraints. For denial constraints insertions never help, so S-repairs
// are exactly X-repairs.
func IsSRepairDenial(db, sub *relation.Database, dcs []denial.DC) (bool, error) {
	return IsXRepair(db, sub, dcs)
}

// RepairCINDMode selects how CIND violations are resolved.
type RepairCINDMode uint8

// The CIND repair modes.
const (
	// InsertDemanded adds the missing target tuples (the S-repair-style
	// fix; CINDs are tuple-generating, so insertions resolve them).
	InsertDemanded RepairCINDMode = iota
	// DeleteViolating removes unmatched source tuples (the X-repair
	// fix).
	DeleteViolating
)

// RepairCINDs resolves all CIND violations in db, in place. It returns
// the number of inserted or deleted tuples. Insertion chases to a
// fixpoint (bounded by maxOps; 0 means 10000); deletion may cascade when
// a deleted tuple was the match of another source tuple, and iterates to
// a fixpoint as well.
func RepairCINDs(db *relation.Database, set []*cind.CIND, mode RepairCINDMode, maxOps int) (int, error) {
	if maxOps <= 0 {
		maxOps = 10000
	}
	ops := 0
	for {
		vs := cind.DetectAll(db, set)
		if len(vs) == 0 {
			return ops, nil
		}
		for _, v := range vs {
			if ops >= maxOps {
				return ops, fmt.Errorf("repair: CIND repair exceeded %d operations", maxOps)
			}
			src, _ := db.Instance(v.CIND.Src().Name())
			switch mode {
			case InsertDemanded:
				t, ok := src.Tuple(v.TID)
				if !ok {
					continue
				}
				dst := db.MustInstance(v.CIND.Dst().Name())
				nt := demandedTuple(v, t)
				if !dst.Contains(nt) {
					if _, err := dst.Insert(nt); err != nil {
						return ops, fmt.Errorf("repair: %v", err)
					}
					ops++
				}
			case DeleteViolating:
				if src.Delete(v.TID) {
					ops++
				}
			}
		}
	}
}

// demandedTuple builds the minimal target tuple demanded by a violation:
// Y copies the source X values, Yp the pattern constants, and the rest
// take deterministic filler values.
func demandedTuple(v cind.Violation, src relation.Tuple) relation.Tuple {
	c := v.CIND
	nt := make(relation.Tuple, c.Dst().Arity())
	for i := 0; i < c.Dst().Arity(); i++ {
		a := c.Dst().Attr(i)
		if a.Domain.Finite() {
			nt[i] = a.Domain.Values()[0]
			continue
		}
		switch a.Domain.Kind() {
		case relation.KindBool:
			nt[i] = relation.Bool(false)
		case relation.KindInt:
			nt[i] = relation.Int(0)
		case relation.KindFloat:
			nt[i] = relation.Float(0)
		default:
			nt[i] = relation.Str("unknown")
		}
	}
	for j, p := range c.Y() {
		nt[p] = src[c.X()[j]]
	}
	row := c.Tableau()[v.Row]
	for j, p := range c.Yp() {
		nt[p] = row.YpVals[j]
	}
	return nt
}
