// Package repair implements the Section 5.1 machinery of Fan (PODS 2008):
// the three repair models (X-repair by tuple deletion, S-repair by
// symmetric difference, U-repair by value modification), repair checking,
// the weighted cost metric cost(v, v′) = w(t, A) · dis(v, v′), conflict
// graphs with exhaustive repair enumeration (Example 5.1's 2^n family),
// greedy X-repairs, the equivalence-class heuristic U-repair for CFDs and
// FDs in the style of Bohannon et al. (SIGMOD 2005) and Cong et al.
// (VLDB 2007), and insertion/deletion repair for CINDs.
package repair

import (
	"fmt"

	"repro/internal/relation"
	"repro/internal/similarity"
)

// Dis is the value distance underlying the cost metric: lower values mean
// greater similarity (the paper's dis(v, v′)). Strings use normalized
// edit distance; numbers use |a−b| / (|a|+|b|+1); values of different
// kinds (and null vs non-null) are maximally distant (1). dis(v, v) = 0.
func Dis(v, w relation.Value) float64 {
	if v.Equal(w) {
		return 0
	}
	switch {
	case v.Kind() == relation.KindString && w.Kind() == relation.KindString:
		return 1 - similarity.EditSimilarity(v.StrVal(), w.StrVal())
	case isNumeric(v) && isNumeric(w):
		a, b := v.FloatVal(), w.FloatVal()
		d := a - b
		if d < 0 {
			d = -d
		}
		den := abs(a) + abs(b) + 1
		return d / den
	default:
		return 1
	}
}

func isNumeric(v relation.Value) bool {
	return v.Kind() == relation.KindInt || v.Kind() == relation.KindFloat
}

func abs(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}

// Change records one attribute-value modification.
type Change struct {
	TID  relation.TID
	Pos  int
	From relation.Value
	To   relation.Value
	Cost float64
}

// String renders the change.
func (c Change) String() string {
	return fmt.Sprintf("t%d[%d]: %v → %v (cost %.3f)", c.TID, c.Pos, c.From, c.To, c.Cost)
}

// ChangeCost computes cost(v, v′) = w(t, A) · dis(v, v′) for updating
// attribute pos of tuple id in the instance (Section 5.1's metric).
func ChangeCost(in *relation.Instance, id relation.TID, pos int, to relation.Value) float64 {
	t, ok := in.Tuple(id)
	if !ok {
		return 0
	}
	return in.Weight(id, pos) * Dis(t[pos], to)
}

// InstanceCost computes cost(D, D′) for a U-repair: the sum of weighted
// distances over all modified cells of shared tuples. Tuples present in
// only one instance contribute their full weighted arity (deletion or
// insertion is as costly as rewriting every cell maximally).
func InstanceCost(orig, repaired *relation.Instance) float64 {
	total := 0.0
	seen := make(map[relation.TID]bool)
	for _, id := range orig.IDs() {
		seen[id] = true
		ot, _ := orig.Tuple(id)
		rt, ok := repaired.Tuple(id)
		if !ok {
			for pos := range ot {
				total += orig.Weight(id, pos) * 1
			}
			continue
		}
		for pos := range ot {
			if !ot[pos].Equal(rt[pos]) {
				total += orig.Weight(id, pos) * Dis(ot[pos], rt[pos])
			}
		}
	}
	for _, id := range repaired.IDs() {
		if !seen[id] {
			total += float64(repaired.Schema().Arity())
		}
	}
	return total
}
