package repair

import (
	"fmt"
	"sort"

	"repro/internal/cfd"
	"repro/internal/match"
	"repro/internal/md"
	"repro/internal/relation"
)

// Master-data repair — the Section 5.1 Remark of the paper: instead of
// drawing new values from the active domain, repair against master
// (reference) data, using matching dependencies and relative candidate
// keys to identify which master tuple describes the same real-world
// entity. This combines the object-identification and repairing processes
// in one dependency-based framework, exactly the unification the paper
// calls for ("data repairing and object identification interact with
// each other, and the two processes should be combined").

// MasterReport extends the repair report with matching statistics.
type MasterReport struct {
	UReport
	// Matched counts dirty tuples identified in the master data.
	Matched int
	// Unmatched counts violating tuples with no (or ambiguous) master
	// match, repaired by the consensus heuristic instead.
	Unmatched int
}

// String renders the report.
func (r MasterReport) String() string {
	return fmt.Sprintf("%s; master matches: %d, fallback: %d", r.UReport, r.Matched, r.Unmatched)
}

// RepairWithMaster repairs the instance against Σ using master data: for
// every tuple involved in a violation, the relative keys identify its
// master counterpart (rules are evaluated directly, so they must be
// relative keys — no ⇋ premises); when exactly one master tuple matches,
// the dirty tuple's attributes that exist under the same name in the
// master schema are overwritten from the master. Residual violations
// (unmatched tuples, attributes absent from the master) fall back to the
// consensus heuristic RepairCFDs.
func RepairWithMaster(in *relation.Instance, sigma []*cfd.CFD, master *relation.Instance, keys []*md.MD, opts URepairOptions) (MasterReport, error) {
	var rep MasterReport
	if ok, _ := cfd.Consistent(sigma); !ok {
		return rep, fmt.Errorf("repair: Σ is inconsistent; no repair exists")
	}
	for _, k := range keys {
		if !k.IsRelativeKey() {
			return rep, fmt.Errorf("repair: %v is not a relative key (⇋ premises cannot be evaluated directly)", k)
		}
	}
	// Attribute correspondence by name.
	type pair struct{ dirtyPos, masterPos int }
	var shared []pair
	for i, a := range in.Schema().Attrs() {
		if j, ok := master.Schema().Lookup(a.Name); ok {
			shared = append(shared, pair{i, j})
		}
	}

	// Detect over the instance's cached snapshot: during iterating repair
	// runs the snapshot catches up from the changelog after each in-place
	// Update instead of being re-frozen per call.
	dirtyTIDs := cfd.ViolatingTIDs(detectEngine.DetectAllOn(relation.SnapshotOf(in), sigma))
	masterIDs := master.IDs()
	for _, id := range dirtyTIDs {
		t, ok := in.Tuple(id)
		if !ok {
			continue
		}
		// Collect master tuples matched by any key.
		var matches []relation.TID
		for _, mid := range masterIDs {
			mt, _ := master.Tuple(mid)
			for _, k := range keys {
				if match.EvaluateKey(k, t, mt) {
					matches = append(matches, mid)
					break
				}
			}
		}
		matches = dedupTIDs(matches)
		if len(matches) != 1 {
			rep.Unmatched++
			continue
		}
		rep.Matched++
		mt, _ := master.Tuple(matches[0])
		for _, p := range shared {
			if t[p.dirtyPos].Equal(mt[p.masterPos]) {
				continue
			}
			ch := Change{
				TID: id, Pos: p.dirtyPos,
				From: t[p.dirtyPos], To: mt[p.masterPos],
				Cost: ChangeCost(in, id, p.dirtyPos, mt[p.masterPos]),
			}
			if err := in.Update(id, p.dirtyPos, mt[p.masterPos]); err != nil {
				return rep, fmt.Errorf("repair: %v", err)
			}
			rep.Changes = append(rep.Changes, ch)
		}
	}
	// Residue: consensus repair for whatever master data could not fix.
	ur, err := RepairCFDs(in, sigma, opts)
	rep.Changes = append(rep.Changes, ur.Changes...)
	rep.Passes = ur.Passes
	for _, ch := range rep.Changes {
		rep.Cost += ch.Cost
	}
	if err != nil {
		return rep, err
	}
	return rep, nil
}

func dedupTIDs(ids []relation.TID) []relation.TID {
	seen := make(map[relation.TID]bool, len(ids))
	out := ids[:0]
	for _, id := range ids {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RestoredAccuracy measures repair accuracy against a known ground truth:
// the fraction of cells that differ between dirty and truth which the
// repaired instance restored to the truth value (the paper's "precision
// and recall of repairing" concern). dirty, repaired and truth must share
// TIDs.
func RestoredAccuracy(dirtyBefore, repaired, truth *relation.Instance) (restored, corrupted int) {
	for _, id := range truth.IDs() {
		tt, ok1 := truth.Tuple(id)
		dt, ok2 := dirtyBefore.Tuple(id)
		rt, ok3 := repaired.Tuple(id)
		if !ok1 || !ok2 || !ok3 {
			continue
		}
		for p := range tt {
			if dt[p].Equal(tt[p]) {
				continue // was not corrupted
			}
			corrupted++
			if rt[p].Equal(tt[p]) {
				restored++
			}
		}
	}
	return restored, corrupted
}
