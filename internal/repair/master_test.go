package repair_test

import (
	"math/rand"
	"testing"

	"repro/internal/cfd"
	"repro/internal/md"
	"repro/internal/paperdata"
	"repro/internal/relation"
	"repro/internal/repair"
	"repro/internal/similarity"
)

// masterFixture builds a clean "truth" customer instance, a master copy
// of it, a corrupted working copy, and the phone-equality relative key
// that links them.
func masterFixture(t *testing.T, n int, corrupt int) (truth, master, dirty *relation.Instance) {
	t.Helper()
	s := paperdata.CustomerSchema()
	truth = relation.NewInstance(s)
	rng := rand.New(rand.NewSource(99))
	streets := []string{"Mayfield Rd", "Crichton St", "High St", "Park Ave"}
	for i := 0; i < n; i++ {
		zip := relation.Str("EH" + string(rune('0'+i%4)))
		street := relation.Str(streets[i%4])
		truth.MustInsert(
			relation.Int(44), relation.Int(131), relation.Int(int64(1000000+i)),
			relation.Str("Person"), street, relation.Str("EDI"), zip)
	}
	// The generator guarantees ϕ1 on the truth (zip index = street index).
	master = truth.Clone()
	dirty = truth.Clone()
	street := s.MustLookup("street")
	city := s.MustLookup("city")
	for i := 0; i < corrupt; i++ {
		id := relation.TID(rng.Intn(n))
		if rng.Intn(2) == 0 {
			dirty.Update(id, street, relation.Str("Wrong Way"))
		} else {
			dirty.Update(id, city, relation.Str("NYC"))
		}
	}
	return
}

func customerSigma() []*cfd.CFD {
	s := paperdata.CustomerSchema()
	return []*cfd.CFD{paperdata.Phi1(s), paperdata.Phi2(s)}
}

func TestRepairWithMasterRestoresTruth(t *testing.T) {
	truth, master, dirty := masterFixture(t, 24, 8)
	s := truth.Schema()
	key := md.MustRelativeKey(s, s,
		[]string{"phn"}, []string{"phn"},
		[]similarity.Op{similarity.Eq()},
		[]string{"street", "city", "zip"}, []string{"street", "city", "zip"})
	sigma := customerSigma()
	before := dirty.Clone()
	if cfd.SatisfiesAll(dirty, sigma) {
		t.Fatal("fixture should be dirty")
	}
	rep, err := repair.RepairWithMaster(dirty, sigma, master, []*md.MD{key}, repair.URepairOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !cfd.SatisfiesAll(dirty, sigma) {
		t.Fatal("master repair left violations")
	}
	if rep.Matched == 0 {
		t.Error("no master matches found")
	}
	restored, corrupted := repair.RestoredAccuracy(before, dirty, truth)
	if corrupted == 0 {
		t.Fatal("fixture produced no corrupted cells")
	}
	if restored != corrupted {
		t.Errorf("master repair restored %d/%d corrupted cells; phones are unique keys, want all", restored, corrupted)
	}
	_ = rep.String()
}

// TestMasterBeatsConsensusAccuracy is the paper's point: consensus repair
// makes the data consistent but cannot know the true values — when the
// majority of a group is corrupted (the same upstream feed, say), the
// plurality vote entrenches the error and even rewrites the one correct
// tuple. Master data restores the truth.
func TestMasterBeatsConsensusAccuracy(t *testing.T) {
	truth, master, dirty := masterFixture(t, 12, 0) // groups of exactly 3
	s := truth.Schema()
	street := s.MustLookup("street")
	zip := s.MustLookup("zip")
	// Corrupt two of the three members of zip group "EH0" to the same
	// wrong street: the majority is now wrong.
	var grp []relation.TID
	for _, id := range dirty.IDs() {
		tu, _ := dirty.Tuple(id)
		if tu[zip].StrVal() == "EH0" {
			grp = append(grp, id)
		}
	}
	if len(grp) < 3 {
		t.Fatal("fixture needs a group of ≥3")
	}
	dirty.Update(grp[0], street, relation.Str("Wrong Way"))
	dirty.Update(grp[1], street, relation.Str("Wrong Way"))

	key := md.MustRelativeKey(s, s,
		[]string{"phn"}, []string{"phn"},
		[]similarity.Op{similarity.Eq()},
		[]string{"street", "city", "zip"}, []string{"street", "city", "zip"})
	sigma := customerSigma()

	consensus := dirty.Clone()
	if _, err := repair.RepairCFDs(consensus, sigma, repair.URepairOptions{}); err != nil {
		t.Fatal(err)
	}
	consensusRestored, corrupted := repair.RestoredAccuracy(dirty, consensus, truth)
	if corrupted != 2 {
		t.Fatalf("corrupted cells = %d, want 2", corrupted)
	}
	if consensusRestored != 0 {
		t.Fatalf("the plurality vote should entrench the majority error, restored %d", consensusRestored)
	}
	// Consensus also rewrote the one correct tuple to the wrong street.
	ct, _ := consensus.Tuple(grp[2])
	if ct[street].StrVal() != "Wrong Way" {
		t.Errorf("expected the correct tuple to be dragged to the wrong consensus, got %v", ct[street])
	}

	guided := dirty.Clone()
	if _, err := repair.RepairWithMaster(guided, sigma, master, []*md.MD{key}, repair.URepairOptions{}); err != nil {
		t.Fatal(err)
	}
	masterRestored, _ := repair.RestoredAccuracy(dirty, guided, truth)
	if masterRestored != corrupted {
		t.Errorf("master repair restored %d/%d", masterRestored, corrupted)
	}
	if !cfd.SatisfiesAll(guided, sigma) {
		t.Error("master repair left violations")
	}
}

func TestRepairWithMasterFallback(t *testing.T) {
	truth, master, dirty := masterFixture(t, 12, 4)
	s := truth.Schema()
	// Remove half the master tuples: unmatched dirty tuples fall back to
	// the consensus heuristic, and the result still satisfies Σ.
	for i, id := range master.IDs() {
		if i%2 == 0 {
			master.Delete(id)
		}
	}
	key := md.MustRelativeKey(s, s,
		[]string{"phn"}, []string{"phn"},
		[]similarity.Op{similarity.Eq()},
		[]string{"street", "city", "zip"}, []string{"street", "city", "zip"})
	sigma := customerSigma()
	rep, err := repair.RepairWithMaster(dirty, sigma, master, []*md.MD{key}, repair.URepairOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !cfd.SatisfiesAll(dirty, sigma) {
		t.Fatal("fallback left violations")
	}
	if rep.Matched+rep.Unmatched == 0 {
		t.Error("no dirty tuples processed")
	}
	_ = truth
}

func TestRepairWithMasterValidation(t *testing.T) {
	truth, master, dirty := masterFixture(t, 6, 2)
	s := truth.Schema()
	// ⇋-premise rules are rejected.
	badKey := md.MustNew(s, s,
		[]md.PremiseSpec{{Left: "phn", Right: "phn", Op: similarity.MatchOp()}},
		[]string{"street"}, []string{"street"}, similarity.MatchOp())
	if _, err := repair.RepairWithMaster(dirty, customerSigma(), master, []*md.MD{badKey}, repair.URepairOptions{}); err == nil {
		t.Error("⇋-premise rule must be rejected")
	}
	// Inconsistent Σ is rejected.
	_, bad := paperdata.Example41()
	if _, err := repair.RepairWithMaster(dirty, bad, master, nil, repair.URepairOptions{}); err == nil {
		t.Error("inconsistent Σ must be rejected")
	}
}
