package repair

import (
	"fmt"
	"sort"

	"repro/internal/cfd"
	"repro/internal/relation"
)

// Heuristic U-repair for CFDs (and hence FDs), following the
// equivalence-class approach of Bohannon et al. (SIGMOD 2005) extended to
// pattern tableaux as in Cong et al. (VLDB 2007), with the Section 5.1
// weighted cost metric: resolve each violating LHS-group by rewriting RHS
// values to the cost-minimizing consensus (or the pattern constant when a
// row demands one), and escape contradictory pattern demands by modifying
// an LHS attribute away from the pattern. The algorithm always terminates
// (passes are capped) and either returns a Σ-satisfying instance or an
// explicit error; it does not guarantee cost optimality (the problem is
// NP-complete, Theorem 5.1).

// URepairOptions configures the heuristic.
type URepairOptions struct {
	// MaxPasses caps full detect-and-fix sweeps (default 50).
	MaxPasses int
}

// UReport describes a completed repair.
type UReport struct {
	Changes []Change
	Passes  int
	// Cost is the total weighted cost of all changes.
	Cost float64
}

// String renders a summary.
func (r UReport) String() string {
	return fmt.Sprintf("repair: %d changes over %d passes, cost %.3f", len(r.Changes), r.Passes, r.Cost)
}

// RepairCFDs repairs the instance in place until it satisfies Σ.
func RepairCFDs(in *relation.Instance, sigma []*cfd.CFD, opts URepairOptions) (UReport, error) {
	if opts.MaxPasses <= 0 {
		opts.MaxPasses = 50
	}
	if ok, _ := cfd.Consistent(sigma); !ok {
		return UReport{}, fmt.Errorf("repair: Σ is inconsistent; no repair exists")
	}
	norm := cfd.NormalizeSet(sigma)
	var report UReport
	// touch counts modifications per cell; a cell rewritten repeatedly is
	// caught between contradictory pattern demands and must escape via
	// its LHS instead (the Cong et al. move).
	touch := make(map[[2]int64]int)
	for pass := 1; pass <= opts.MaxPasses; pass++ {
		report.Passes = pass
		changed := false
		for _, c := range norm {
			chs, err := repairOne(in, c, touch)
			if err != nil {
				return report, err
			}
			if len(chs) > 0 {
				changed = true
				report.Changes = append(report.Changes, chs...)
			}
		}
		if !changed {
			// The snapshot behind SatisfiesAllOn catches up from the
			// changelog across passes (each pass's Updates are a small
			// delta), so per-pass checking is incremental, not a re-freeze.
			if !detectEngine.SatisfiesAllOn(relation.SnapshotOf(in), sigma) {
				return report, fmt.Errorf("repair: fixpoint reached but Σ still violated")
			}
			for _, ch := range report.Changes {
				report.Cost += ch.Cost
			}
			return report, nil
		}
	}
	if detectEngine.SatisfiesAllOn(relation.SnapshotOf(in), sigma) {
		for _, ch := range report.Changes {
			report.Cost += ch.Cost
		}
		return report, nil
	}
	return report, fmt.Errorf("repair: no fixpoint within %d passes", opts.MaxPasses)
}

// thrashLimit is the number of rewrites of one cell after which the
// repair bends the tuple's LHS away from the pattern instead of touching
// the RHS again (breaking oscillation between contradictory demands).
const thrashLimit = 3

// repairOne fixes all current violations of one normal-form CFD.
func repairOne(in *relation.Instance, c *cfd.CFD, touch map[[2]int64]int) ([]Change, error) {
	row := c.Tableau()[0]
	rhsPos := c.RHS()[0]
	rhsCell := row.RHS[0]
	lhsPos := c.LHS()

	matchLHS := func(t relation.Tuple) bool {
		for j, p := range lhsPos {
			if !row.LHS[j].Matches(t[p]) {
				return false
			}
		}
		return true
	}

	// Group matching tuples by LHS value.
	groups := make(map[string][]relation.TID)
	for _, id := range in.IDs() {
		t, _ := in.Tuple(id)
		if matchLHS(t) {
			groups[t.KeyOn(lhsPos)] = append(groups[t.KeyOn(lhsPos)], id)
		}
	}
	var keys []string
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	var out []Change
	for _, k := range keys {
		ids := groups[k]
		target, needEscape := chooseTarget(in, ids, rhsPos, rhsCell)
		if needEscape {
			// The pattern demands an RHS constant that conflicts with
			// another demand (detected upstream as an unsatisfiable
			// group); escape by bending one LHS constant cell away from
			// the pattern. This arises only when Σ's rows disagree, which
			// consistency pre-checking makes rare.
			ch, err := escapeLHS(in, ids[0], c)
			if err != nil {
				return out, err
			}
			out = append(out, ch)
			continue
		}
		for _, id := range ids {
			t, _ := in.Tuple(id)
			if t[rhsPos].Equal(target) {
				continue
			}
			cell := [2]int64{int64(id), int64(rhsPos)}
			if touch[cell] >= thrashLimit {
				ch, err := escapeLHS(in, id, c)
				if err != nil {
					return out, err
				}
				out = append(out, ch)
				continue
			}
			touch[cell]++
			ch := Change{TID: id, Pos: rhsPos, From: t[rhsPos], To: target,
				Cost: ChangeCost(in, id, rhsPos, target)}
			if err := in.Update(id, rhsPos, target); err != nil {
				return out, fmt.Errorf("repair: %v", err)
			}
			out = append(out, ch)
		}
	}
	return out, nil
}

// chooseTarget picks the consensus RHS value for a violating group: the
// pattern constant when the row demands one, else the cost-minimizing
// existing value (the weighted-plurality vote of Bohannon et al.).
func chooseTarget(in *relation.Instance, ids []relation.TID, rhsPos int, rhsCell cfd.Cell) (relation.Value, bool) {
	if !rhsCell.IsWildcard() {
		want := rhsCell.Value()
		if !in.Schema().Attr(rhsPos).Domain.Contains(want) {
			return relation.Value{}, true
		}
		return want, false
	}
	// Candidates: the distinct values present in the group; cost of a
	// candidate = sum of weighted distances from every member.
	type cand struct {
		v    relation.Value
		cost float64
		key  string
	}
	var cands []cand
	seen := make(map[string]bool)
	for _, id := range ids {
		t, _ := in.Tuple(id)
		if k := t[rhsPos].Key(); !seen[k] {
			seen[k] = true
			cands = append(cands, cand{v: t[rhsPos], key: k})
		}
	}
	for i := range cands {
		for _, id := range ids {
			cands[i].cost += ChangeCost(in, id, rhsPos, cands[i].v)
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].cost != cands[j].cost {
			return cands[i].cost < cands[j].cost
		}
		return cands[i].key < cands[j].key
	})
	return cands[0].v, false
}

// escapeLHS modifies one constant-pattern LHS attribute of the tuple so
// it no longer matches the row's pattern.
func escapeLHS(in *relation.Instance, id relation.TID, c *cfd.CFD) (Change, error) {
	row := c.Tableau()[0]
	for j, p := range c.LHS() {
		cell := row.LHS[j]
		if cell.IsWildcard() {
			continue
		}
		t, _ := in.Tuple(id)
		escape, err := escapeValue(in.Schema().Attr(p), cell.Value())
		if err != nil {
			continue
		}
		ch := Change{TID: id, Pos: p, From: t[p], To: escape, Cost: ChangeCost(in, id, p, escape)}
		if err := in.Update(id, p, escape); err != nil {
			continue
		}
		return ch, nil
	}
	return Change{}, fmt.Errorf("repair: tuple %d cannot escape pattern of %v", id, c)
}

// escapeValue produces a value of the attribute's domain different from
// avoid.
func escapeValue(a relation.Attribute, avoid relation.Value) (relation.Value, error) {
	if a.Domain.Finite() {
		for _, v := range a.Domain.Values() {
			if !v.Equal(avoid) {
				return v, nil
			}
		}
		return relation.Value{}, fmt.Errorf("repair: domain of %s has a single value", a.Name)
	}
	switch a.Domain.Kind() {
	case relation.KindString:
		return relation.Str(avoid.StrVal() + "′"), nil
	case relation.KindInt:
		return relation.Int(avoid.IntVal() + 1), nil
	case relation.KindFloat:
		return relation.Float(avoid.FloatVal() + 1), nil
	case relation.KindBool:
		return relation.Bool(!avoid.BoolVal()), nil
	default:
		return relation.Value{}, fmt.Errorf("repair: cannot escape kind %v", a.Domain.Kind())
	}
}
