package repair

import (
	"testing"

	"repro/internal/cfd"
	"repro/internal/denial"
	"repro/internal/detect"
	"repro/internal/gen"
	"repro/internal/relation"
)

// The CFD-based hypergraph of Example 5.1 must agree with the
// denial-constraint path: n disjoint 2-cliques, hence 2^n X-repairs.
func TestBuildCFDHypergraphExample51(t *testing.T) {
	const n = 4
	in := gen.Example51(n)
	key := cfd.MustFD(in.Schema(), []string{"A"}, []string{"B"})
	h := BuildCFDHypergraph(in, []*cfd.CFD{key})
	if len(h.Vertices) != 2*n {
		t.Fatalf("vertices = %d, want %d", len(h.Vertices), 2*n)
	}
	if len(h.Edges) != n {
		t.Fatalf("edges = %d, want %d (one conflict pair per a_i)", len(h.Edges), n)
	}
	if got := h.CountXRepairs(0); got != 1<<n {
		t.Fatalf("X-repairs = %d, want %d", got, 1<<n)
	}

	db := relation.NewDatabase()
	db.Add(in)
	dcs, err := denial.Key(in.Schema(), []string{"A"})
	if err != nil {
		t.Fatal(err)
	}
	hd, err := BuildHypergraph(db, dcs)
	if err != nil {
		t.Fatal(err)
	}
	if want := hd.CountXRepairs(0); want != h.CountXRepairs(0) {
		t.Fatalf("CFD path counts %d repairs, denial path %d", h.CountXRepairs(0), want)
	}
}

// A violating group of three tuples must become a triangle, not a path:
// representative-only pairs would miss the {t1, t2} edge and enumerate
// {t1, t2} as a "repair" that still violates the key.
func TestBuildCFDHypergraphExhaustivePairs(t *testing.T) {
	s := relation.MustSchema("r",
		relation.Attr("A", relation.KindString),
		relation.Attr("B", relation.KindString),
	)
	in := relation.NewInstance(s)
	in.MustInsert(relation.Str("a"), relation.Str("b1"))
	in.MustInsert(relation.Str("a"), relation.Str("b2"))
	in.MustInsert(relation.Str("a"), relation.Str("b3"))
	key := cfd.MustFD(s, []string{"A"}, []string{"B"})
	h := BuildCFDHypergraph(in, []*cfd.CFD{key})
	if len(h.Edges) != 3 {
		t.Fatalf("edges = %v, want the full triangle", h.Edges)
	}
	reps := h.EnumerateXRepairs(0)
	if len(reps) != 3 {
		t.Fatalf("got %d X-repairs, want 3 singletons", len(reps))
	}
	for _, kept := range reps {
		if len(kept) != 1 {
			t.Fatalf("repair %v keeps %d tuples, want 1", kept, len(kept))
		}
		sub := relation.NewInstance(s)
		tup, _ := in.Tuple(kept[0].TID)
		sub.MustInsert(tup...)
		if !cfd.SatisfiesAll(sub, []*cfd.CFD{key}) {
			t.Fatalf("enumerated repair %v violates the key", kept)
		}
	}
}

// BuildCFDHypergraphOn over a detect.Monitor's maintained snapshot must
// agree with the from-scratch path, across a mutation that the monitor
// absorbs incrementally.
func TestBuildCFDHypergraphOnMonitorSnapshot(t *testing.T) {
	in := gen.Customers(gen.CustomerConfig{N: 200, Seed: 31, ErrorRate: 0.1})
	s := in.Schema()
	sigma := []*cfd.CFD{
		cfd.MustFD(s, []string{"CC", "zip"}, []string{"street"}),
		cfd.MustFD(s, []string{"CC", "AC"}, []string{"city"}),
	}
	m := detect.NewMonitor(nil, in, sigma)
	check := func() {
		t.Helper()
		got := BuildCFDHypergraphOn(m.Snapshot(), sigma)
		want := BuildCFDHypergraph(in, sigma)
		if len(got.Vertices) != len(want.Vertices) || len(got.Edges) != len(want.Edges) {
			t.Fatalf("hypergraph on monitor snapshot has %d vertices / %d edges, fresh build %d / %d",
				len(got.Vertices), len(got.Edges), len(want.Vertices), len(want.Edges))
		}
	}
	check()
	id := in.IDs()[0]
	tup, _ := in.Tuple(id)
	if _, _, err := m.Apply([]detect.Op{detect.Update(id, 4, relation.Str(tup[4].StrVal()+"-x"))}); err != nil {
		t.Fatal(err)
	}
	check()
}

// Single-tuple constant violations must become unary hyperedges: the only
// X-repair deletes every clashing tuple.
func TestBuildCFDHypergraphSingleTuple(t *testing.T) {
	s := relation.MustSchema("r",
		relation.Attr("A", relation.KindString),
		relation.Attr("B", relation.KindString),
	)
	in := relation.NewInstance(s)
	in.MustInsert(relation.Str("a"), relation.Str("ok"))
	in.MustInsert(relation.Str("a"), relation.Str("bad"))
	phi := cfd.MustNew(s, []string{"A"}, []string{"B"},
		cfd.Row([]cfd.Cell{cfd.Const(relation.Str("a"))}, []cfd.Cell{cfd.Const(relation.Str("ok"))}))
	h := BuildCFDHypergraph(in, []*cfd.CFD{phi})
	reps := h.EnumerateXRepairs(0)
	if len(reps) != 1 {
		t.Fatalf("got %d X-repairs, want 1", len(reps))
	}
	// The pair violation {t0, t1} and the unary edge {t1} force deleting
	// exactly t1.
	if len(reps[0]) != 1 || reps[0][0].TID != 0 {
		t.Fatalf("repair keeps %v, want just tuple 0", reps[0])
	}
}
