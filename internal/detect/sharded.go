package detect

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cfd"
	"repro/internal/cind"
	"repro/internal/ecfd"
	"repro/internal/relation"
)

// Sharded scatter-gather detection: the engine and monitor variants
// that run over a relation.ShardedDB instead of one Database. The
// cross-shard seam is explicit and small:
//
//   - CFDs and eCFDs must be shard-local: the relation's partition key
//     must be contained in the LHS, so every LHS group lies wholly
//     inside one shard and per-shard evaluation is exactly the
//     restriction of the global one. CheckShardable rejects batches
//     that violate this (pick the key with DeriveShardKeys, or pass
//     -shard-key so every LHS contains it).
//   - CINDs are never shard-local — a source tuple's match may live in
//     any target shard — so target membership is replicated: one small
//     cind.KeyIndex per (target relation, Y ∪ Yp positions) holds every
//     shard's target keys, source shards probe it locally, and
//     target-side changes are broadcast (the replica is updated and the
//     changed Y projections are probed against every shard's source
//     index to find the flipped source tuples).
//
// Because TIDs are global (the ShardedDB allocates them) and the
// per-shard results are merged through the same SortViolations
// comparator, sharded output is byte-identical to the single-partition
// engine — the randomized oracle tests assert exactly that.

// CheckShardable reports why a constraint batch cannot run sharded
// under the partitioner, nil when it can. CFDs and eCFDs require the
// primary relation's partition key to be a subset of their LHS; CINDs
// always shard (via the replicated target-key index); constraint
// classes beyond the built-ins are rejected.
func CheckShardable(p *relation.Partitioner, cs []Constraint) error {
	for _, c := range cs {
		var lhs []int
		var sch *relation.Schema
		switch d := c.Dep().(type) {
		case *cfd.CFD:
			lhs, sch = d.LHS(), d.Schema()
		case *ecfd.ECFD:
			lhs, sch = d.LHS(), d.Schema()
		case *cind.CIND:
			continue
		default:
			return fmt.Errorf("detect: sharded evaluation supports CFD/CIND/eCFD constraints only, got %T", c.Dep())
		}
		key := p.Key(c.Primary())
		if key == nil {
			return fmt.Errorf("detect: %s on %s is not shard-local: relation %s hashes on the whole tuple; set a shard key contained in the LHS %s (see DeriveShardKeys)",
				c.Class(), c.Primary(), c.Primary(), attrNames(sch, lhs))
		}
		if !subsetOf(key, lhs) {
			return fmt.Errorf("detect: %s on %s is not shard-local: partition key %s is not contained in the LHS %s; choose a shard key every CFD/eCFD LHS of %s contains",
				c.Class(), c.Primary(), attrNames(sch, key), attrNames(sch, lhs), c.Primary())
		}
	}
	return nil
}

func subsetOf(sub, super []int) bool {
	for _, p := range sub {
		found := false
		for _, q := range super {
			if p == q {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func attrNames(sch *relation.Schema, pos []int) string {
	parts := make([]string, len(pos))
	for i, p := range pos {
		parts[i] = sch.Attr(p).Name
	}
	return "[" + strings.Join(parts, ",") + "]"
}

// DeriveShardKeys computes a partition key per relation that makes the
// batch shardable: for a relation with CFDs/eCFDs, the intersection of
// their LHS position sets (every group-defining attribute set contains
// it, so all constraints stay shard-local); a relation appearing only
// as a CIND side keys on the first CIND's X (source) or Y (target)
// positions, which co-locates same-key source tuples without being
// required for correctness. Relations whose LHSs share no attribute
// cannot be derived — the caller must pick a key (and possibly split
// the rule set).
func DeriveShardKeys(cs []Constraint) (map[string][]int, error) {
	type relInfo struct {
		hasFD   bool
		inter   map[int]bool // LHS intersection so far
		cindPos []int
	}
	infos := make(map[string]*relInfo)
	get := func(rel string) *relInfo {
		ri, ok := infos[rel]
		if !ok {
			ri = &relInfo{}
			infos[rel] = ri
		}
		return ri
	}
	mergeLHS := func(rel string, lhs []int) {
		ri := get(rel)
		if !ri.hasFD {
			ri.hasFD = true
			ri.inter = make(map[int]bool, len(lhs))
			for _, p := range lhs {
				ri.inter[p] = true
			}
			return
		}
		for p := range ri.inter {
			if !containsPos(lhs, p) {
				delete(ri.inter, p)
			}
		}
	}
	for _, c := range cs {
		switch d := c.Dep().(type) {
		case *cfd.CFD:
			mergeLHS(c.Primary(), d.LHS())
		case *ecfd.ECFD:
			mergeLHS(c.Primary(), d.LHS())
		case *cind.CIND:
			if ri := get(d.Src().Name()); ri.cindPos == nil {
				ri.cindPos = dedupSorted(d.X())
			}
			if ri := get(d.Dst().Name()); ri.cindPos == nil {
				ri.cindPos = dedupSorted(d.Y())
			}
		default:
			return nil, fmt.Errorf("detect: sharded evaluation supports CFD/CIND/eCFD constraints only, got %T", c.Dep())
		}
	}
	rels := make([]string, 0, len(infos))
	for rel := range infos {
		rels = append(rels, rel)
	}
	sort.Strings(rels)
	out := make(map[string][]int, len(infos))
	for _, rel := range rels {
		ri := infos[rel]
		if ri.hasFD {
			if len(ri.inter) == 0 {
				return nil, fmt.Errorf("detect: cannot derive a shard key for %s: its CFD/eCFD LHSs share no attribute; pass an explicit shard key", rel)
			}
			key := make([]int, 0, len(ri.inter))
			for p := range ri.inter {
				key = append(key, p)
			}
			sort.Ints(key)
			out[rel] = key
			continue
		}
		if ri.cindPos != nil {
			out[rel] = ri.cindPos
		}
	}
	return out, nil
}

func containsPos(pos []int, p int) bool {
	for _, q := range pos {
		if q == p {
			return true
		}
	}
	return false
}

func dedupSorted(pos []int) []int {
	out := append([]int(nil), pos...)
	sort.Ints(out)
	w := 0
	for i, p := range out {
		if i == 0 || p != out[w-1] {
			out[w] = p
			w++
		}
	}
	return out[:w]
}

// tkKey is the map key replicated target-key indexes share: one index
// per distinct (target relation, Y ∪ Yp positions) across the batch,
// mirroring the planner's target-index sharing.
func tkKey(c *cind.CIND) string { return relPosKey(c.Dst().Name(), c.TargetKeyPos()) }

// buildTargetKeys scans every shard's target snapshots into the
// replicated key multisets.
func buildTargetKeys(snaps []*relation.DBSnapshot, cs []Constraint) map[string]*cind.KeyIndex {
	tk := make(map[string]*cind.KeyIndex)
	for _, c := range cs {
		cc, ok := c.(cindConstraint)
		if !ok {
			continue
		}
		key := tkKey(cc.c)
		if _, ok := tk[key]; ok {
			continue
		}
		idx := cind.NewKeyIndex()
		keyPos := cc.c.TargetKeyPos()
		buf := make([]byte, 0, 64)
		for _, ds := range snaps {
			snap, ok := ds.Snapshot(cc.c.Dst().Name())
			if !ok {
				continue
			}
			for r := 0; r < snap.Len(); r++ {
				buf = cind.AppendRowKey(buf[:0], snap, r, keyPos)
				idx.Add(buf)
			}
		}
		tk[key] = idx
	}
	return tk
}

// shardedEvalAll evaluates the full batch over per-shard snapshots:
// every (constraint, shard) pair is one task on the worker pool —
// CFDs/eCFDs through their ordinary per-shard Eval (shard-locality
// makes that exact), CINDs through the replicated key index — and the
// merged stream is sorted canonically. Each source tuple lives on
// exactly one shard, so the concatenation has exactly the unsharded
// multiplicities and the final stable sort makes the output
// byte-identical to DetectBatch.
func (e *Engine) shardedEvalAll(snaps []*relation.DBSnapshot, cs []Constraint, tk map[string]*cind.KeyIndex) []Violation {
	S := len(snaps)
	ctxs := make([]*Ctx, S)
	for s := range ctxs {
		ctxs[s] = e.planBatch(snaps[s], cs)
	}
	var out []Violation
	runOrdered(e.workers(), len(cs)*S, func(k int) []Violation {
		ci, s := k/S, k%S
		if cc, ok := cs[ci].(cindConstraint); ok {
			src, _ := snaps[s].Snapshot(cc.c.Src().Name())
			return box(cind.DetectWithKeys(src, cc.c, tk[tkKey(cc.c)]))
		}
		return cs[ci].Eval(ctxs[s])
	}, func(vs []Violation) { out = append(out, vs...) })
	SortViolations(out, SigmaOf(cs))
	return out
}

// DetectBatchSharded is DetectBatch over a sharded database:
// scatter-gather evaluation of the mixed batch, byte-identical to the
// single-partition engine on the equivalent Database. It fails when the
// batch is not shardable under the database's partitioner (see
// CheckShardable). A Legacy engine silently evaluates on the columnar
// path, like the monitors.
func (e *Engine) DetectBatchSharded(sdb *relation.ShardedDB, cs []Constraint) ([]Violation, error) {
	if err := CheckShardable(sdb.Partitioner(), cs); err != nil {
		return nil, err
	}
	snaps := sdb.Snapshots()
	return e.shardedEvalAll(snaps, cs, buildTargetKeys(snaps, cs)), nil
}

// ShardedDBMonitor is DBMonitor over a ShardedDB: it owns the per-shard
// snapshots, the replicated target-key indexes and the global violation
// set, and keeps all of them consistent under routed update batches.
// The maintained invariant is the sharded twin of DBMonitor's: after
// every Apply, Violations() is byte-identical to what DetectBatch would
// report on the equivalent unsharded database.
//
// The monitor is single-writer with an explicit two-phase commit for
// callers that apply shards concurrently (the serve layer's shard
// writers):
//
//	r, err := m.Route(batch)   // sequential: validate, allocate, route
//	...apply r's sub-batches, one goroutine per shard...
//	gained, cleared := m.Sync() // sequential: diff + publish
//
// Apply bundles the three steps with a bounded worker pool for callers
// without their own writers.
type ShardedDBMonitor struct {
	engine    *Engine
	sdb       *relation.ShardedDB
	cs        []Constraint
	reads     []string
	sigma     map[any]int
	snaps     []*relation.DBSnapshot
	tkeys     map[string]*cind.KeyIndex
	current   map[Violation]struct{}
	fullSyncs int
}

// NewShardedDBMonitor builds the monitor and pays one full sharded
// detection to seed the violation set. It fails when the batch is not
// shardable under sdb's partitioner.
func NewShardedDBMonitor(e *Engine, sdb *relation.ShardedDB, cs []Constraint) (*ShardedDBMonitor, error) {
	if e == nil {
		e = New(0)
	}
	if e.Legacy {
		e = &Engine{Workers: e.Workers}
	}
	if err := CheckShardable(sdb.Partitioner(), cs); err != nil {
		return nil, err
	}
	m := &ShardedDBMonitor{
		engine:  e,
		sdb:     sdb,
		cs:      cs,
		sigma:   SigmaOf(cs),
		snaps:   sdb.Snapshots(),
		current: make(map[Violation]struct{}),
	}
	seen := make(map[string]bool)
	for _, c := range cs {
		for _, rel := range c.Reads() {
			if !seen[rel] {
				seen[rel] = true
				m.reads = append(m.reads, rel)
			}
		}
	}
	sort.Strings(m.reads)
	m.tkeys = buildTargetKeys(m.snaps, cs)
	for _, v := range e.shardedEvalAll(m.snaps, cs, m.tkeys) {
		m.current[v] = struct{}{}
	}
	return m, nil
}

// Route validates and routes a logical batch into per-shard sub-batches
// (sequential, single-writer). Semantics match DBMonitor.Apply's
// mutation step exactly: ops route in order, the first failing op stops
// the batch (the routed prefix stands) and returns the identical
// wrapped error. The returned routing MUST be applied — ApplyRouting,
// or ShardedDB.ApplyShard per sub-batch — before the next Route.
func (m *ShardedDBMonitor) Route(batch []DBOp) (*relation.Routing, error) {
	r := m.sdb.NewRouting()
	for _, op := range batch {
		if _, ok := m.sdb.Schema(op.Rel); !ok {
			return r, fmt.Errorf("dbmonitor: no relation %q", op.Rel)
		}
		switch op.Op.Kind {
		case OpInsert:
			if _, err := r.Insert(op.Rel, op.Op.Tuple); err != nil {
				return r, fmt.Errorf("dbmonitor: %v", err)
			}
		case OpDelete:
			r.Delete(op.Rel, op.Op.TID)
		case OpUpdate:
			if err := r.Update(op.Rel, op.Op.TID, op.Op.Pos, op.Op.Val); err != nil {
				return r, fmt.Errorf("dbmonitor: %v", err)
			}
		}
	}
	return r, nil
}

// ApplyRouting applies every routed sub-batch, fanning shards out over
// the engine's worker pool (each shard is applied by exactly one
// goroutine, in routed order). A failing shard — routing invariants
// broken by a poisoned batch — is reported (first shard's error, shard
// order) instead of panicking; the caller must then RebuildDir and Sync
// to restore a consistent view of whatever did apply.
func (m *ShardedDBMonitor) ApplyRouting(r *relation.Routing) error {
	per := r.PerShard()
	var firstErr error
	runOrdered(m.engine.workers(), len(per), func(s int) error {
		if len(per[s]) > 0 {
			return m.sdb.ApplyShard(s, per[s])
		}
		return nil
	}, func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	})
	return firstErr
}

// Apply routes the batch, applies the sub-batches concurrently, and
// syncs — the sharded counterpart of DBMonitor.Apply, with the same
// error-prefix semantics and the same gained/cleared contract. An
// apply-phase failure (as opposed to a routed op error) degrades: the
// directory is rebuilt from the shards and Sync restores consistency
// with what actually applied.
func (m *ShardedDBMonitor) Apply(batch []DBOp) (gained, cleared []Violation, err error) {
	r, err := m.Route(batch)
	if aerr := m.ApplyRouting(r); aerr != nil {
		m.sdb.RebuildDir()
		if err == nil {
			err = aerr
		}
	}
	gained, cleared = m.Sync()
	return gained, cleared, err
}

// Sync brings the monitor up to date with applied routings (or any
// direct single-writer mutation of the shard instances) and returns the
// canonical violation diff. The phases, in order:
//
//  1. per-shard, per-relation deltas from the instance changelogs
//     (truncation → full resync);
//  2. per-shard snapshot catch-up (each shard pays O(|its Δ|));
//  3. touched lists per (constraint, shard) — shard-local reasoning for
//     CFDs/eCFDs, and for CINDs the union of the shard's own source
//     delta with the broadcast probes of every shard's target-side
//     changes against this shard's old source index;
//  4. old-side evaluation of the touched lists (against the replicated
//     key state the old violations were computed under);
//  5. the target-key replica absorbs the batch's target-side deltas;
//  6. new-side evaluation, then the same stored-set diff as DBMonitor.
func (m *ShardedDBMonitor) Sync() (gained, cleared []Violation) {
	S := m.sdb.Shards()
	// Phase 1 fans per shard across the worker pool: shards are
	// disjoint Databases, so the changelog scans and delta netting
	// share nothing. The full-resync triggers (relation replaced,
	// changelog truncated) are gathered as per-shard flags and decided
	// sequentially after the barrier, so the fallback still runs on the
	// sequencer's goroutine.
	type shardScan struct {
		deltas map[string]*relation.Delta
		resync bool
	}
	scans := make([]shardScan, S)
	scanShard := func(s int) shardScan {
		db := m.sdb.Shard(s)
		var sc shardScan
		for _, name := range m.reads {
			in, ok := db.Instance(name)
			if !ok {
				continue // never existed: nothing to diff
			}
			oldSnap, ok := m.snaps[s].Snapshot(name)
			if !ok || oldSnap.Source() != in {
				sc.resync = true // relation added or replaced
				return sc
			}
			entries, ok := in.ChangesSince(oldSnap.Version())
			if !ok {
				sc.resync = true // changelog truncated past the snapshot
				return sc
			}
			if len(entries) == 0 {
				continue
			}
			d := relation.NetDelta(entries)
			if sc.deltas == nil {
				sc.deltas = make(map[string]*relation.Delta)
			}
			sc.deltas[name] = &d
		}
		return sc
	}
	next := 0
	runOrdered(m.engine.workers(), S, scanShard, func(sc shardScan) {
		scans[next] = sc
		next++
	})
	deltas := make([]map[string]*relation.Delta, S)
	changed := false
	for s, sc := range scans {
		if sc.resync {
			return m.fullResync()
		}
		deltas[s] = sc.deltas
		changed = changed || sc.deltas != nil
	}
	if !changed {
		return nil, nil
	}
	// Phase 2: per-shard snapshot catch-up, concurrent inside
	// ShardedDB.Snapshots (each shard pays O(|its Δ|) on its own core).
	newSnaps := m.sdb.Snapshots()

	tcs := make([]*TouchCtx, S)
	for s := 0; s < S; s++ {
		tcs[s] = &TouchCtx{
			db: m.sdb.Shard(s), old: m.snaps[s], new: newSnaps[s],
			deltas: deltas[s], coverInserts: true,
		}
	}
	yChanges := m.collectYChanges(deltas, newSnaps)
	// Phase 3 fans per shard, not per constraint: a TouchCtx memoizes
	// CoMembers lazily, so every constraint of one shard must run on
	// one goroutine, while distinct shards touch disjoint contexts and
	// snapshots. Results land in disjoint [i][s] slots and each list is
	// a pure function of per-shard pre-batch state, so scheduling
	// cannot change the outcome.
	touched := make([][][]relation.TID, len(m.cs))
	for i := range m.cs {
		touched[i] = make([][]relation.TID, S)
	}
	runOrdered(m.engine.workers(), S, func(s int) struct{} {
		for i, c := range m.cs {
			if cc, ok := c.(cindConstraint); ok {
				touched[i][s] = cindShardTouched(cc.c, tcs[s], yChanges[i])
			} else if deltas[s] != nil {
				touched[i][s] = c.Touched(tcs[s])
			}
		}
		return struct{}{}
	}, func(struct{}) {})

	// Old side first: the stored set was computed against the replica's
	// pre-batch state, so re-deriving its touched restriction must probe
	// that same state; only then does the replica absorb the deltas.
	oldTouched := m.evalTouched(m.snaps, touched)
	m.applyKeyDeltas(deltas, m.snaps, newSnaps)
	newTouched := m.evalTouched(newSnaps, touched)

	oldSet := make(map[Violation]struct{}, len(oldTouched))
	for _, v := range oldTouched {
		oldSet[v] = struct{}{}
		delete(m.current, v)
	}
	for _, v := range newTouched {
		if _, had := m.current[v]; !had {
			if _, had := oldSet[v]; !had {
				gained = append(gained, v)
			}
		}
		m.current[v] = struct{}{}
	}
	newSet := make(map[Violation]struct{}, len(newTouched))
	for _, v := range newTouched {
		newSet[v] = struct{}{}
	}
	for _, v := range oldTouched {
		if _, still := newSet[v]; !still {
			cleared = append(cleared, v)
		}
	}
	m.snaps = newSnaps
	SortViolations(gained, m.sigma)
	SortViolations(cleared, m.sigma)
	return gained, cleared
}

// collectYChanges gathers, per CIND constraint, the Y projections of
// every target tuple that entered, left, or changed its Y ∪ Yp
// projection on ANY shard — the broadcast payload probed against every
// shard's source index in phase 3.
func (m *ShardedDBMonitor) collectYChanges(deltas []map[string]*relation.Delta, newSnaps []*relation.DBSnapshot) [][][]relation.Value {
	out := make([][][]relation.Value, len(m.cs))
	for i, c := range m.cs {
		cc, ok := c.(cindConstraint)
		if !ok {
			continue
		}
		dstRel := cc.c.Dst().Name()
		keyPos := cc.c.TargetKeyPos()
		y := cc.c.Y()
		var changes [][]relation.Value
		grab := func(snap *relation.Snapshot, id relation.TID) {
			if snap == nil {
				return
			}
			r, ok := snap.Row(id)
			if !ok {
				return
			}
			vals := make([]relation.Value, len(y))
			for j, p := range y {
				vals[j] = snap.Value(r, p)
			}
			changes = append(changes, vals)
		}
		for s, ds := range deltas {
			d := ds[dstRel]
			if d == nil || d.Empty() {
				continue
			}
			oldDst, _ := m.snaps[s].Snapshot(dstRel)
			newDst, _ := newSnaps[s].Snapshot(dstRel)
			for _, id := range d.Inserted {
				grab(newDst, id)
			}
			for _, id := range d.Deleted {
				grab(oldDst, id)
			}
			for id := range d.Updated {
				if d.Touches(id, keyPos) {
					grab(oldDst, id)
					grab(newDst, id)
				}
			}
		}
		out[i] = changes
	}
	return out
}

// cindShardTouched mirrors cindConstraint.Touched for one shard: the
// shard's own source-side delta, plus the broadcast target-side changes
// probed against this shard's pre-batch source X index.
func cindShardTouched(c *cind.CIND, tc *TouchCtx, yChanges [][]relation.Value) []relation.TID {
	srcRel := c.Src().Name()
	set := make(map[relation.TID]struct{})
	srcPos := c.SourceGroupPos()
	if d := tc.Delta(srcRel); d != nil {
		for _, id := range d.Inserted {
			set[id] = struct{}{}
		}
		for _, id := range d.Deleted {
			set[id] = struct{}{}
		}
		for id := range d.Updated {
			if d.Touches(id, srcPos) {
				set[id] = struct{}{}
			}
		}
	}
	if len(yChanges) > 0 {
		if oldSrc := tc.Old(srcRel); oldSrc != nil {
			srcX := oldSrc.CodeIndexOn(c.X())
			for _, vals := range yChanges {
				for _, sid := range srcX.LookupValues(vals) {
					set[sid] = struct{}{}
				}
			}
		}
	}
	return sortedTIDs(set)
}

// evalTouched evaluates the per-(constraint, shard) touched lists over
// the given per-shard snapshots, probing the replica's CURRENT key
// state for CINDs (the caller sequences the replica update between the
// old- and new-side calls). Results feed set diffs, so no sort.
func (m *ShardedDBMonitor) evalTouched(snaps []*relation.DBSnapshot, touched [][][]relation.TID) []Violation {
	S := len(snaps)
	// Plan only the shards with touched work: a small batch lands on one
	// shard, and paying the per-shard plan (maps, lazy index handles) for
	// every idle shard twice per commit would dominate the steady state.
	ctxs := make([]*Ctx, S)
	for ci := range touched {
		for s, tl := range touched[ci] {
			if len(tl) > 0 && ctxs[s] == nil {
				ctxs[s] = m.engine.planBatch(snaps[s], m.cs)
			}
		}
	}
	var out []Violation
	runOrdered(m.engine.workers(), len(m.cs)*S, func(k int) []Violation {
		ci, s := k/S, k%S
		tl := touched[ci][s]
		if len(tl) == 0 {
			return nil
		}
		if cc, ok := m.cs[ci].(cindConstraint); ok {
			src, _ := snaps[s].Snapshot(cc.c.Src().Name())
			return box(cind.DetectTouchedWithKeys(src, cc.c, m.tkeys[tkKey(cc.c)], tl))
		}
		return m.cs[ci].EvalTouched(ctxs[s], tl)
	}, func(vs []Violation) { out = append(out, vs...) })
	return out
}

// applyKeyDeltas folds the batch's target-side deltas into every
// replicated key index: one Remove per departed key, one Add per
// arrived key, Yp-only changes included (TargetKeyPos covers them).
func (m *ShardedDBMonitor) applyKeyDeltas(deltas []map[string]*relation.Delta, oldSnaps, newSnaps []*relation.DBSnapshot) {
	done := make(map[string]bool, len(m.tkeys))
	buf := make([]byte, 0, 64)
	for _, c := range m.cs {
		cc, ok := c.(cindConstraint)
		if !ok {
			continue
		}
		key := tkKey(cc.c)
		if done[key] {
			continue
		}
		done[key] = true
		idx := m.tkeys[key]
		dstRel := cc.c.Dst().Name()
		keyPos := cc.c.TargetKeyPos()
		for s, ds := range deltas {
			d := ds[dstRel]
			if d == nil || d.Empty() {
				continue
			}
			oldDst, _ := oldSnaps[s].Snapshot(dstRel)
			newDst, _ := newSnaps[s].Snapshot(dstRel)
			rowKey := func(snap *relation.Snapshot, id relation.TID) ([]byte, bool) {
				if snap == nil {
					return nil, false
				}
				r, ok := snap.Row(id)
				if !ok {
					return nil, false
				}
				buf = cind.AppendRowKey(buf[:0], snap, r, keyPos)
				return buf, true
			}
			for _, id := range d.Inserted {
				if k, ok := rowKey(newDst, id); ok {
					idx.Add(k)
				}
			}
			for _, id := range d.Deleted {
				if k, ok := rowKey(oldDst, id); ok {
					idx.Remove(k)
				}
			}
			for id := range d.Updated {
				if !d.Touches(id, keyPos) {
					continue
				}
				if k, ok := rowKey(oldDst, id); ok {
					idx.Remove(k)
				}
				if k, ok := rowKey(newDst, id); ok {
					idx.Add(k)
				}
			}
		}
	}
}

// fullResync rebuilds everything — per-shard snapshots, replicated key
// indexes, the violation set — and diffs against the stored set, so the
// gained/cleared contract holds on the fallback path too.
func (m *ShardedDBMonitor) fullResync() (gained, cleared []Violation) {
	m.fullSyncs++
	m.snaps = m.sdb.Snapshots()
	m.tkeys = buildTargetKeys(m.snaps, m.cs)
	fresh := m.engine.shardedEvalAll(m.snaps, m.cs, m.tkeys)
	freshSet := make(map[Violation]struct{}, len(fresh))
	for _, v := range fresh {
		freshSet[v] = struct{}{}
		if _, had := m.current[v]; !had {
			gained = append(gained, v)
		}
	}
	for v := range m.current {
		if _, still := freshSet[v]; !still {
			cleared = append(cleared, v)
		}
	}
	m.current = freshSet
	SortViolations(gained, m.sigma)
	SortViolations(cleared, m.sigma)
	return gained, cleared
}

// Violations returns the current violation set in the canonical mixed
// order — byte-identical to DetectBatch of the equivalent unsharded
// database.
func (m *ShardedDBMonitor) Violations() []Violation {
	if len(m.current) == 0 {
		return nil
	}
	out := make([]Violation, 0, len(m.current))
	for v := range m.current {
		out = append(out, v)
	}
	SortViolations(out, m.sigma)
	return out
}

// Len returns the size of the current violation set.
func (m *ShardedDBMonitor) Len() int { return len(m.current) }

// ShardSnapshots returns the maintained per-shard snapshots (current as
// of the last Apply/Sync). The slice is shared; callers must not modify
// it.
func (m *ShardedDBMonitor) ShardSnapshots() []*relation.DBSnapshot { return m.snaps }

// Sharded returns the watched sharded database.
func (m *ShardedDBMonitor) Sharded() *relation.ShardedDB { return m.sdb }

// Engine returns the monitor's engine (always on the columnar path).
func (m *ShardedDBMonitor) Engine() *Engine { return m.engine }

// FullSyncs reports how many times the monitor fell back to a full
// sharded re-detection.
func (m *ShardedDBMonitor) FullSyncs() int { return m.fullSyncs }
