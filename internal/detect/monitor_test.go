package detect

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/cfd"
	"repro/internal/gen"
	"repro/internal/relation"
)

// randomOp draws one random mutation for the customer schema: inserts
// of fresh customers, deletes, and updates that churn both LHS
// attributes (zip, CC, AC — moving tuples between groups) and RHS
// attributes (street, city), regularly introducing never-seen values so
// the shared dictionaries keep growing. dead tracks TIDs deleted by
// earlier ops of a batch generated before the batch is applied.
func randomOp(r *rand.Rand, in *relation.Instance, fresh *int, dead map[relation.TID]bool) Op {
	var ids []relation.TID
	for _, id := range in.IDs() {
		if !dead[id] {
			ids = append(ids, id)
		}
	}
	switch k := r.Intn(10); {
	case k < 2 || len(ids) == 0: // insert
		*fresh++
		zip := fmt.Sprintf("EH%d %dLE", r.Intn(4)+1, r.Intn(4))
		if r.Intn(4) == 0 {
			zip = fmt.Sprintf("ZZ%d", *fresh) // brand-new zip: Dict growth
		}
		return Insert(relation.Tuple{
			relation.Int(int64([]int{44, 1}[r.Intn(2)])),
			relation.Int(int64(131 + r.Intn(3))),
			relation.Int(int64(1000000 + r.Intn(50))),
			relation.Str(fmt.Sprintf("name-%d", *fresh)),
			relation.Str(fmt.Sprintf("st%d", r.Intn(4))),
			relation.Str([]string{"EDI", "MH", "NYC"}[r.Intn(3)]),
			relation.Str(zip),
		})
	case k < 4: // delete
		id := ids[r.Intn(len(ids))]
		dead[id] = true
		return Delete(id)
	default: // update
		id := ids[r.Intn(len(ids))]
		pos := []int{0, 1, 4, 5, 6}[r.Intn(5)] // CC, AC, street, city, zip
		var v relation.Value
		switch pos {
		case 0:
			v = relation.Int(int64([]int{44, 1, 31}[r.Intn(3)]))
		case 1:
			v = relation.Int(int64(131 + r.Intn(4)))
		case 4:
			if r.Intn(3) == 0 {
				*fresh++
				v = relation.Str(fmt.Sprintf("new-street-%d", *fresh))
			} else {
				v = relation.Str(fmt.Sprintf("st%d", r.Intn(4)))
			}
		case 5:
			v = relation.Str([]string{"EDI", "MH", "NYC", "LDN"}[r.Intn(4)])
		default:
			if r.Intn(3) == 0 {
				*fresh++
				v = relation.Str(fmt.Sprintf("ZZ%d", *fresh))
			} else {
				v = relation.Str(fmt.Sprintf("EH%d %dLE", r.Intn(4)+1, r.Intn(4)))
			}
		}
		return Update(id, pos, v)
	}
}

// monitorOracleRounds drives random batches through Monitor.Apply and
// asserts, after every batch, that the maintained violation set is
// byte-identical to a fresh detection over the mutated instance — on
// both the columnar engine and the string-keyed legacy oracle — and
// that the gained/cleared diff exactly accounts for the set change.
func monitorOracleRounds(t *testing.T, seed int64, n, rounds, maxBatch int, changelogCap int) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	in := gen.Customers(gen.CustomerConfig{N: n, Seed: seed, ErrorRate: 0.15})
	if changelogCap != 0 {
		in.SetChangelogCap(changelogCap)
	}
	sigma := sigmaFigure2(in.Schema())
	m := NewMonitor(New(2), in, sigma)

	prev := m.Violations()
	fresh := 0
	for round := 0; round < rounds; round++ {
		batch := make([]Op, 1+r.Intn(maxBatch))
		dead := make(map[relation.TID]bool)
		for i := range batch {
			batch[i] = randomOp(r, in, &fresh, dead)
		}
		gained, cleared, err := m.Apply(batch)
		if err != nil {
			t.Fatalf("seed %d round %d: Apply: %v", seed, round, err)
		}
		got := m.Violations()

		// Oracle 1: the engine's fresh full detection (columnar path).
		want := New(1).DetectAll(in, sigma)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d round %d: monitor has %d violations, fresh DetectAll %d:\nmonitor %v\nfresh   %v",
				seed, round, len(got), len(want), got, want)
		}
		// Oracle 2: the string-keyed legacy path, fully independent of
		// snapshots, dictionaries and the changelog.
		if legacy := NewLegacy(1).DetectAll(in, sigma); !reflect.DeepEqual(got, legacy) {
			t.Fatalf("seed %d round %d: monitor diverges from the legacy oracle", seed, round)
		}

		// The diff must exactly transform prev into got.
		next := make(map[cfd.Violation]struct{}, len(prev))
		for _, v := range prev {
			next[v] = struct{}{}
		}
		for _, v := range cleared {
			if _, ok := next[v]; !ok {
				t.Fatalf("seed %d round %d: cleared violation %v was not held", seed, round, v)
			}
			delete(next, v)
		}
		for _, v := range gained {
			if _, ok := next[v]; ok {
				t.Fatalf("seed %d round %d: gained violation %v was already held", seed, round, v)
			}
			next[v] = struct{}{}
		}
		if len(next) != len(got) {
			t.Fatalf("seed %d round %d: prev - cleared + gained has %d violations, set has %d",
				seed, round, len(next), len(got))
		}
		for _, v := range got {
			if _, ok := next[v]; !ok {
				t.Fatalf("seed %d round %d: %v in set but not in prev - cleared + gained", seed, round, v)
			}
		}
		prev = got
	}
}

func TestMonitorMatchesFreshDetection(t *testing.T) {
	for _, seed := range []int64{3, 17, 91} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			monitorOracleRounds(t, seed, 300, 60, 8, 0)
		})
	}
}

// TestMonitorManySmallBatches is the steady-state serving shape: long
// run of tiny batches against one instance.
func TestMonitorManySmallBatches(t *testing.T) {
	monitorOracleRounds(t, 7, 150, 150, 2, 0)
}

// TestMonitorChangelogFallback shrinks the changelog below the batch
// size so Sync regularly finds the log truncated and must take the
// full-resync path — which must preserve exactness and the diff
// contract all the same.
func TestMonitorChangelogFallback(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	in := gen.Customers(gen.CustomerConfig{N: 120, Seed: 5, ErrorRate: 0.2})
	in.SetChangelogCap(6)
	sigma := sigmaFigure2(in.Schema())
	m := NewMonitor(nil, in, sigma)
	fresh := 0
	for round := 0; round < 25; round++ {
		batch := make([]Op, 10) // always larger than the cap
		dead := make(map[relation.TID]bool)
		for i := range batch {
			batch[i] = randomOp(r, in, &fresh, dead)
		}
		if _, _, err := m.Apply(batch); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if got, want := m.Violations(), New(1).DetectAll(in, sigma); !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: monitor diverges after changelog fallback", round)
		}
	}
	if m.FullSyncs() == 0 {
		t.Fatal("changelog cap of 6 with batches of 10 never forced a full resync")
	}
}

// TestMonitorExternalMutations mutates the instance directly and relies
// on Sync to pick the changes up from the changelog.
func TestMonitorExternalMutations(t *testing.T) {
	in := gen.Customers(gen.CustomerConfig{N: 100, Seed: 9, ErrorRate: 0.1})
	sigma := sigmaFigure2(in.Schema())
	m := NewMonitor(nil, in, sigma)
	r := rand.New(rand.NewSource(11))
	fresh := 0
	for round := 0; round < 20; round++ {
		for i := 0; i < 3; i++ {
			// Ops are applied immediately, so in.IDs() is always current
			// and no cross-op bookkeeping is needed.
			op := randomOp(r, in, &fresh, map[relation.TID]bool{})
			switch op.Kind {
			case OpInsert:
				in.Insert(op.Tuple)
			case OpDelete:
				in.Delete(op.TID)
			case OpUpdate:
				if err := in.Update(op.TID, op.Pos, op.Val); err != nil {
					t.Fatal(err)
				}
			}
		}
		m.Sync()
		if got, want := m.Violations(), New(1).DetectAll(in, sigma); !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: monitor missed external mutations", round)
		}
	}
}

// TestMonitorLegacyEngineUpgraded pins the constructor contract: a
// Legacy engine is upgraded to the columnar path rather than silently
// detecting the pre-batch state against the mutated instance.
func TestMonitorLegacyEngineUpgraded(t *testing.T) {
	in := gen.Customers(gen.CustomerConfig{N: 50, Seed: 2, ErrorRate: 0.1})
	sigma := sigmaFigure2(in.Schema())
	m := NewMonitor(NewLegacy(3), in, sigma)
	if m.Engine().Legacy {
		t.Fatal("monitor kept the legacy engine")
	}
	if m.Engine().Workers != 3 {
		t.Fatalf("monitor dropped the worker count: %d", m.Engine().Workers)
	}
}

// TestMonitorEmptyBatch: no ops, no diff.
func TestMonitorEmptyBatch(t *testing.T) {
	in := gen.Customers(gen.CustomerConfig{N: 30, Seed: 4, ErrorRate: 0.3})
	m := NewMonitor(nil, in, sigmaFigure2(in.Schema()))
	gained, cleared, err := m.Apply(nil)
	if err != nil || len(gained) != 0 || len(cleared) != 0 {
		t.Fatalf("empty batch: gained %v cleared %v err %v", gained, cleared, err)
	}
}

// TestMonitorBadOp: a failing op reports an error but leaves the
// monitor consistent with whatever prefix was applied.
func TestMonitorBadOp(t *testing.T) {
	in := gen.Customers(gen.CustomerConfig{N: 30, Seed: 6, ErrorRate: 0.2})
	sigma := sigmaFigure2(in.Schema())
	m := NewMonitor(nil, in, sigma)
	id := in.IDs()[0]
	_, _, err := m.Apply([]Op{
		Update(id, 4, relation.Str("applied-before-failure")),
		Update(relation.TID(999999), 4, relation.Str("x")), // no such tuple
		Update(id, 5, relation.Str("skipped")),
	})
	if err == nil {
		t.Fatal("updating a missing tuple did not error")
	}
	if got, want := m.Violations(), New(1).DetectAll(in, sigma); !reflect.DeepEqual(got, want) {
		t.Fatal("monitor inconsistent after failed op")
	}
	t1, _ := in.Tuple(id)
	if !t1[4].Equal(relation.Str("applied-before-failure")) {
		t.Fatal("prefix op was not applied")
	}
	if t1[5].Equal(relation.Str("skipped")) {
		t.Fatal("op after the failure was applied")
	}
}
