package detect

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/relation"
)

// shardableSigma is the mixed batch the sharded tests run: both CFDs,
// all three CINDs, and the second eCFD — everything whose LHS contains
// the title attribute, so a title-keyed partitioner keeps them
// shard-local. (The first eCFD groups on type only; it is the fixture
// for the CheckShardable rejection tests.)
func shardableSigma() []Constraint {
	cfds, cinds, ecfds := mixedSigma()
	return wrapMixed(cfds, cinds, ecfds[1:])
}

// shardOrders cuts a fresh copy of the database across the given shard
// count under the keys DeriveShardKeys picks for cs.
func shardOrders(t *testing.T, db *relation.Database, shards int, cs []Constraint) *relation.ShardedDB {
	t.Helper()
	keys, err := DeriveShardKeys(cs)
	if err != nil {
		t.Fatalf("DeriveShardKeys: %v", err)
	}
	p := relation.NewPartitioner(shards)
	for rel, pos := range keys {
		p.SetKey(rel, pos)
	}
	sdb, err := relation.Partition(db, p)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	return sdb
}

func TestDeriveShardKeysOrders(t *testing.T) {
	keys, err := DeriveShardKeys(shardableSigma())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]int{
		"order": {1},    // title: the LHS intersection of ϕ1, ϕ2 and the title eCFD
		"book":  {1, 2}, // CIND target key (title, price)
		"CD":    {1, 2}, // CIND target key (album, price)
	}
	if !reflect.DeepEqual(keys, want) {
		t.Fatalf("derived keys %v, want %v", keys, want)
	}
}

func TestDeriveShardKeysDisjointLHS(t *testing.T) {
	cfds, cinds, ecfds := mixedSigma()
	// ecfds[0] groups order on type; together with the title-only CFD the
	// order LHS intersection is empty.
	_, err := DeriveShardKeys(wrapMixed(cfds, cinds, ecfds))
	if err == nil || !strings.Contains(err.Error(), "share no attribute") {
		t.Fatalf("want the empty-intersection error, got %v", err)
	}
}

func TestCheckShardableRejects(t *testing.T) {
	cfds, cinds, ecfds := mixedSigma()
	cs := wrapMixed(cfds, cinds, ecfds)
	p := relation.NewPartitioner(2)
	p.SetKey("order", []int{1})
	err := CheckShardable(p, cs)
	if err == nil || !strings.Contains(err.Error(), "not contained in the LHS") {
		t.Fatalf("type-grouped eCFD under a title key must be rejected, got %v", err)
	}
	// Whole-tuple hashing makes nothing shard-local.
	err = CheckShardable(relation.NewPartitioner(2), wrapMixed(cfds, nil, nil))
	if err == nil || !strings.Contains(err.Error(), "whole tuple") {
		t.Fatalf("whole-tuple default must be rejected for CFDs, got %v", err)
	}
	// CINDs alone shard under any placement.
	if err := CheckShardable(relation.NewPartitioner(2), wrapMixed(nil, cinds, nil)); err != nil {
		t.Fatalf("CIND-only batch must always shard: %v", err)
	}
}

// TestDetectBatchShardedMatchesUnsharded is the one-shot byte-identity
// oracle: the scatter-gather evaluation must equal the single-partition
// engine exactly, across shard counts, worker counts and degenerate
// placements.
func TestDetectBatchShardedMatchesUnsharded(t *testing.T) {
	cs := shardableSigma()
	for _, seed := range []int64{3, 21} {
		db := gen.Orders(gen.OrdersConfig{Books: 40, CDs: 30, Orders: 300, Seed: seed, ViolationRate: 0.15})
		want := New(1).DetectBatch(db, cs)
		for _, shards := range []int{1, 2, 8} {
			sdb := shardOrders(t, db, shards, cs)
			for _, workers := range []int{1, 4} {
				got, err := New(workers).DetectBatchSharded(sdb, cs)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("seed %d shards %d workers %d: sharded %d violations, unsharded %d:\nsharded   %v\nunsharded %v",
						seed, shards, workers, len(got), len(want), got, want)
				}
			}
		}
	}
}

// TestDetectBatchShardedPlacementIndependence substitutes degenerate
// hashers — everything on one shard, adversarial parity splits — and
// requires identical output: correctness must never depend on where
// tuples land.
func TestDetectBatchShardedPlacementIndependence(t *testing.T) {
	cs := shardableSigma()
	db := gen.Orders(gen.OrdersConfig{Books: 30, CDs: 20, Orders: 200, Seed: 7, ViolationRate: 0.2})
	want := New(1).DetectBatch(db, cs)
	hashers := map[string]func(string, []byte) uint64{
		"all-on-one": func(string, []byte) uint64 { return 0 },
		"byte-parity": func(_ string, key []byte) uint64 {
			var s uint64
			for _, b := range key {
				s += uint64(b)
			}
			return s
		},
	}
	for name, h := range hashers {
		t.Run(name, func(t *testing.T) {
			defer relation.SetShardHasherForTest(h)()
			sdb := shardOrders(t, db, 4, cs)
			got, err := New(2).DetectBatchSharded(sdb, cs)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("hasher %s: sharded output diverges", name)
			}
		})
	}
}

// shardedOracleRounds drives the same random multi-relation batches
// through an unsharded DBMonitor (the shadow) and a ShardedDBMonitor
// over an identical partitioned copy, asserting after every batch that
// the violation sets, the gained/cleared diffs and any errors are
// byte-identical. TIDs allocate in lockstep (both sides start from the
// same instance and allocate sequentially), so ops drawn against the
// shadow are valid verbatim on the sharded side.
func shardedOracleRounds(t *testing.T, seed int64, shards, orders, rounds, maxBatch, changelogCap int) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	db := gen.Orders(gen.OrdersConfig{Books: orders / 8, CDs: orders / 10, Orders: orders, Seed: seed, ViolationRate: 0.1})
	cs := shardableSigma()
	sdb := shardOrders(t, db, shards, cs)
	if changelogCap != 0 {
		for _, name := range db.Names() {
			db.MustInstance(name).SetChangelogCap(changelogCap)
		}
		sdb.SetChangelogCap(changelogCap)
	}
	shadow := NewDBMonitor(New(1), db, cs)
	m, err := NewShardedDBMonitor(New(2), sdb, cs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m.Violations(), shadow.Violations()) {
		t.Fatalf("seed %d: seeded violation sets differ", seed)
	}

	fresh := 0
	for round := 0; round < rounds; round++ {
		batch := make([]DBOp, 1+r.Intn(maxBatch))
		dead := make(map[string]map[relation.TID]bool)
		for i := range batch {
			batch[i] = randomDBOp(r, db, &fresh, dead)
		}
		sg, sc, serr := shadow.Apply(batch)
		g, c, err := m.Apply(batch)
		if (err == nil) != (serr == nil) || (err != nil && err.Error() != serr.Error()) {
			t.Fatalf("seed %d round %d: sharded err %v, shadow err %v", seed, round, err, serr)
		}
		if !reflect.DeepEqual(g, sg) {
			t.Fatalf("seed %d round %d: gained diverges:\nsharded %v\nshadow  %v", seed, round, g, sg)
		}
		if !reflect.DeepEqual(c, sc) {
			t.Fatalf("seed %d round %d: cleared diverges:\nsharded %v\nshadow  %v", seed, round, c, sc)
		}
		if got, want := m.Violations(), shadow.Violations(); !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d round %d: sharded monitor holds %d violations, shadow %d:\nsharded %v\nshadow  %v",
				seed, round, len(got), len(want), got, want)
		}
		if sdb.Size() != db.Size() {
			t.Fatalf("seed %d round %d: sharded size %d, shadow %d", seed, round, sdb.Size(), db.Size())
		}
		if round%5 == 0 {
			// Cross-checks against the stateless paths: the one-shot
			// sharded detection, and the gather path /check runs on.
			if got, err := New(1).DetectBatchSharded(sdb, cs); err != nil || !reflect.DeepEqual(got, m.Violations()) {
				t.Fatalf("seed %d round %d: DetectBatchSharded diverges from monitor (err %v)", seed, round, err)
			}
			gathered, err := relation.GatherSnapshots(m.ShardSnapshots())
				if err != nil {
					t.Fatalf("seed %d round %d: GatherSnapshots: %v", seed, round, err)
				}
			if got := New(1).DetectBatch(gathered, cs); !reflect.DeepEqual(got, m.Violations()) {
				t.Fatalf("seed %d round %d: gathered snapshot detection diverges", seed, round)
			}
		}
	}
}

func TestShardedDBMonitorMatchesUnsharded(t *testing.T) {
	for _, tc := range []struct {
		seed   int64
		shards int
	}{{5, 1}, {29, 2}, {73, 8}} {
		t.Run(fmt.Sprintf("seed=%d/shards=%d", tc.seed, tc.shards), func(t *testing.T) {
			shardedOracleRounds(t, tc.seed, tc.shards, 200, 15, 12, 0)
		})
	}
}

// TestShardedDBMonitorForcedCollisions runs the monitor oracle with
// every tuple hashed onto one shard of four, and with an adversarial
// parity split — shard placement must be invisible in the output.
func TestShardedDBMonitorForcedCollisions(t *testing.T) {
	t.Run("all-on-one", func(t *testing.T) {
		defer relation.SetShardHasherForTest(func(string, []byte) uint64 { return 7 })()
		shardedOracleRounds(t, 83, 4, 120, 10, 10, 0)
	})
	t.Run("byte-parity", func(t *testing.T) {
		defer relation.SetShardHasherForTest(func(_ string, key []byte) uint64 {
			var s uint64
			for _, b := range key {
				s += uint64(b)
			}
			return s
		})()
		shardedOracleRounds(t, 97, 4, 120, 10, 10, 0)
	})
}

// TestShardedDBMonitorChangelogFallback shrinks every changelog (shadow
// and shards alike) so batches regularly outrun them, forcing the
// sharded full-resync path; the oracle must hold unchanged.
func TestShardedDBMonitorChangelogFallback(t *testing.T) {
	shardedOracleRounds(t, 61, 4, 150, 12, 25, 8)
}

// TestShardedCrossShardMoves pins the move protocol deterministically:
// a hasher that splits on whether the key contains 'Z' lets the test
// steer tuples between two shards by retitling, covering (a) a move
// that clears a CFD violation, (b) a move-in with a smaller TID than
// every member of the destination group — the representative-stealing
// case — and (c) same-batch insert+move through the routing overlay.
func TestShardedCrossShardMoves(t *testing.T) {
	defer relation.SetShardHasherForTest(func(_ string, key []byte) uint64 {
		for _, b := range key {
			if b == 'Z' {
				return 1
			}
		}
		return 0
	})()
	cs := shardableSigma()
	db := gen.Orders(gen.OrdersConfig{Books: 0, CDs: 0, Orders: 0, Seed: 1})
	order := db.MustInstance("order")
	str, f := relation.Str, relation.Float
	t0 := order.MustInsert(str("a0"), str("Plain"), str("book"), f(1.99))
	t1 := order.MustInsert(str("a1"), str("Z-Title"), str("book"), f(5.99))
	t2 := order.MustInsert(str("a2"), str("Z-Title"), str("book"), f(5.99))

	sdb := shardOrders(t, db, 2, cs)
	if s, _ := sdb.ShardOfTID("order", t1); s != 1 {
		t.Fatalf("Z-titled tuple should sit on shard 1, got %d", s)
	}
	shadow := NewDBMonitor(New(1), db, cs)
	m, err := NewShardedDBMonitor(New(2), sdb, cs)
	if err != nil {
		t.Fatal(err)
	}
	check := func(step string, batch ...DBOp) {
		t.Helper()
		sg, sc, serr := shadow.Apply(batch)
		g, c, err := m.Apply(batch)
		if (err == nil) != (serr == nil) {
			t.Fatalf("%s: err %v vs shadow %v", step, err, serr)
		}
		if !reflect.DeepEqual(g, sg) || !reflect.DeepEqual(c, sc) {
			t.Fatalf("%s: diff diverges: +%v -%v vs shadow +%v -%v", step, g, c, sg, sc)
		}
		if !reflect.DeepEqual(m.Violations(), shadow.Violations()) {
			t.Fatalf("%s: violation sets diverge:\nsharded %v\nshadow  %v", step, m.Violations(), shadow.Violations())
		}
	}

	// (a) Retitle t2 off the Z shard: breaks the (Z-Title → price) group
	// apart; retitling it to Plain with its old price violates ϕ1 against
	// t0 instead.
	check("move t2 to shard 0", UpdateIn("order", t2, 1, str("Plain")))
	if s, _ := sdb.ShardOfTID("order", t2); s != 0 {
		t.Fatal("t2 should have moved to shard 0")
	}
	// (b) Move t0 (the smallest TID) into the Z group: it steals the
	// group's representative on shard 1 — the coverInserts path.
	check("move t0 into the Z group", UpdateIn("order", t0, 1, str("Z-Title")))
	if s, _ := sdb.ShardOfTID("order", t0); s != 1 {
		t.Fatal("t0 should have moved to shard 1")
	}
	// (c) Same-batch insert + key update of the fresh tuple: the second
	// op resolves the tuple through the routing overlay, and the insert
	// lands directly on the Z shard.
	fresh := order.NextTID()
	check("insert then move in one batch",
		InsertInto("order", relation.Tuple{str("a3"), str("Plain"), str("book"), f(2.99)}),
		UpdateIn("order", fresh, 1, str("Z-Plain")),
		UpdateIn("order", fresh, 3, f(7.99)),
	)
	if s, ok := sdb.ShardOfTID("order", fresh); !ok || s != 1 {
		t.Fatalf("fresh tuple should sit on shard 1, got %d (ok %v)", s, ok)
	}
}

// TestShardedDBMonitorBadOps: every failing-op shape must report the
// exact error string DBMonitor reports, and both monitors must
// resynchronize with the same applied prefix.
func TestShardedDBMonitorBadOps(t *testing.T) {
	cs := shardableSigma()
	db := gen.Orders(gen.OrdersConfig{Books: 10, CDs: 5, Orders: 40, Seed: 2, ViolationRate: 0})
	sdb := shardOrders(t, db, 4, cs)
	shadow := NewDBMonitor(New(1), db, cs)
	m, err := NewShardedDBMonitor(New(2), sdb, cs)
	if err != nil {
		t.Fatal(err)
	}
	str, f := relation.Str, relation.Float
	good := InsertInto("order", relation.Tuple{str("x"), str("Some"), str("book"), f(1.99)})
	for _, tc := range []struct {
		name  string
		batch []DBOp
	}{
		{"unknown relation", []DBOp{good, {Rel: "nosuch", Op: Delete(0)}, good}},
		{"bad arity", []DBOp{good, InsertInto("order", relation.Tuple{str("x")}), good}},
		{"unknown TID", []DBOp{good, UpdateIn("order", 9999, 1, str("T")), good}},
		{"domain violation", []DBOp{good, UpdateIn("order", 0, 3, str("not-a-price")), good}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, _, serr := shadow.Apply(tc.batch)
			_, _, err := m.Apply(tc.batch)
			if serr == nil || err == nil {
				t.Fatalf("both must fail: sharded %v, shadow %v", err, serr)
			}
			if err.Error() != serr.Error() {
				t.Fatalf("error strings diverge:\nsharded %q\nshadow  %q", err, serr)
			}
			if !reflect.DeepEqual(m.Violations(), shadow.Violations()) {
				t.Fatal("monitors diverge after the failed batch")
			}
		})
	}
}

// TestNewShardedDBMonitorRejectsUnshardable: construction surfaces the
// CheckShardable error instead of silently producing wrong diffs.
func TestNewShardedDBMonitorRejectsUnshardable(t *testing.T) {
	cfds, cinds, ecfds := mixedSigma()
	cs := wrapMixed(cfds, cinds, ecfds) // ecfds[0] groups on type
	db := gen.Orders(gen.OrdersConfig{Books: 5, CDs: 5, Orders: 20, Seed: 1})
	p := relation.NewPartitioner(2)
	p.SetKey("order", []int{1})
	sdb, err := relation.Partition(db, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewShardedDBMonitor(nil, sdb, cs); err == nil {
		t.Fatal("unshardable batch must be rejected at construction")
	}
}

// randomInsertOp draws one insert-only op over the order/book/CD
// database — the batch shape that drives the append-only snapshot fast
// path end to end through the sharded monitor's parallel sync.
func randomInsertOp(r *rand.Rand, fresh *int) DBOp {
	*fresh++
	title := func() relation.Value {
		if r.Intn(4) == 0 {
			return relation.Str(fmt.Sprintf("Fresh Title %d", *fresh))
		}
		return relation.Str(fmt.Sprintf("Book Title %d", r.Intn(40)))
	}
	price := func() relation.Value { return relation.Float(float64(5+r.Intn(8)) + 0.99) }
	switch r.Intn(4) {
	case 0, 1:
		return InsertInto("order", relation.Tuple{
			relation.Str(fmt.Sprintf("a%d", *fresh)), title(),
			relation.Str([]string{"book", "CD"}[r.Intn(2)]), price()})
	case 2:
		return InsertInto("book", relation.Tuple{
			relation.Str(fmt.Sprintf("b%d", *fresh)), title(), price(),
			relation.Str([]string{"hard-cover", "audio"}[r.Intn(2)])})
	default:
		return InsertInto("CD", relation.Tuple{
			relation.Str(fmt.Sprintf("c%d", *fresh)), title(), price(),
			relation.Str([]string{"rock", "a-book"}[r.Intn(2)])})
	}
}

// TestShardedDBMonitorInsertOnlyOracle chains large insert-only batches
// — every per-shard delta takes the append fast path, every sync fans
// the shards across the worker pool — and asserts the sharded monitor
// stays byte-identical to an unsharded shadow the whole way. Run with
// -race this also exercises the parallel scan/touch phases for data
// races on the shared snapshots.
func TestShardedDBMonitorInsertOnlyOracle(t *testing.T) {
	for _, tc := range []struct {
		seed   int64
		shards int
	}{{101, 4}, {113, 8}} {
		t.Run(fmt.Sprintf("seed=%d/shards=%d", tc.seed, tc.shards), func(t *testing.T) {
			r := rand.New(rand.NewSource(tc.seed))
			db := gen.Orders(gen.OrdersConfig{Books: 40, CDs: 30, Orders: 300, Seed: tc.seed, ViolationRate: 0.1})
			cs := shardableSigma()
			sdb := shardOrders(t, db, tc.shards, cs)
			shadow := NewDBMonitor(New(1), db, cs)
			m, err := NewShardedDBMonitor(New(4), sdb, cs)
			if err != nil {
				t.Fatal(err)
			}
			fresh := 0
			for round := 0; round < 25; round++ {
				batch := make([]DBOp, 8+r.Intn(56))
				for i := range batch {
					batch[i] = randomInsertOp(r, &fresh)
				}
				sg, sc, serr := shadow.Apply(batch)
				g, c, err := m.Apply(batch)
				if (err == nil) != (serr == nil) {
					t.Fatalf("round %d: sharded err %v, shadow err %v", round, err, serr)
				}
				if !reflect.DeepEqual(g, sg) || !reflect.DeepEqual(c, sc) {
					t.Fatalf("round %d: diff diverges:\nsharded +%v -%v\nshadow  +%v -%v", round, g, c, sg, sc)
				}
				if got, want := m.Violations(), shadow.Violations(); !reflect.DeepEqual(got, want) {
					t.Fatalf("round %d: violations diverge (%d vs %d)", round, len(got), len(want))
				}
			}
		})
	}
}
