package detect

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"repro/internal/cfd"
	"repro/internal/gen"
	"repro/internal/paperdata"
	"repro/internal/relation"
)

// sigmaFigure2 is the paper's Figure 2 rule set plus the plain FDs of
// Figure 1 — five CFDs over three distinct LHS position sets, so the plan
// must share indexes.
func sigmaFigure2(s *relation.Schema) []*cfd.CFD {
	return []*cfd.CFD{
		paperdata.F1(s),
		paperdata.F2(s),
		paperdata.Phi1(s),
		paperdata.Phi2(s),
		paperdata.Phi3(s),
	}
}

// legacyDetectAll is the reference result: the sequential per-CFD path.
func legacyDetectAll(in *relation.Instance, set []*cfd.CFD) []cfd.Violation {
	return cfd.DetectAll(in, set)
}

func TestPlanSharesIndexes(t *testing.T) {
	in := gen.Customers(gen.CustomerConfig{N: 50, Seed: 1, ErrorRate: 0.1})
	sigma := sigmaFigure2(in.Schema())
	tasks := New(0).plan(in, sigma)
	if len(tasks) != len(sigma) {
		t.Fatalf("plan made %d tasks, want %d", len(tasks), len(sigma))
	}
	distinct := make(map[*sharedIndex]bool)
	for _, tk := range tasks {
		distinct[tk.ix] = true
	}
	// F1/Phi2 share [CC, AC, phn]; F2/Phi3 share [CC, AC]; Phi1 alone
	// uses [CC, zip]: 3 indexes for 5 CFDs.
	if len(distinct) != 3 {
		t.Fatalf("plan built %d shared indexes, want 3", len(distinct))
	}
}

func TestDetectAllMatchesLegacy(t *testing.T) {
	for _, n := range []int{0, 1, 50, 500, 2000} {
		for _, rate := range []float64{0, 0.05, 0.3} {
			for _, workers := range []int{1, 2, 8} {
				t.Run(fmt.Sprintf("n=%d/rate=%.2f/workers=%d", n, rate, workers), func(t *testing.T) {
					in := gen.Customers(gen.CustomerConfig{N: n, Seed: int64(n) + 7, ErrorRate: rate})
					sigma := sigmaFigure2(in.Schema())
					want := legacyDetectAll(in, sigma)
					got := New(workers).DetectAll(in, sigma)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("engine output diverges from legacy path:\n got %d violations\nwant %d violations", len(got), len(want))
					}
				})
			}
		}
	}
}

func TestDetectAllDeterministic(t *testing.T) {
	in := gen.Customers(gen.CustomerConfig{N: 1500, Seed: 42, ErrorRate: 0.2})
	sigma := sigmaFigure2(in.Schema())
	e := New(8)
	first := e.DetectAll(in, sigma)
	for i := 0; i < 5; i++ {
		again := e.DetectAll(in, sigma)
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("run %d produced a different slice", i)
		}
	}
}

func TestStreamOrderDeterministic(t *testing.T) {
	in := gen.Customers(gen.CustomerConfig{N: 1500, Seed: 3, ErrorRate: 0.2})
	sigma := sigmaFigure2(in.Schema())
	e := New(8)
	collect := func() []cfd.Violation {
		var out []cfd.Violation
		e.DetectAllStream(in, sigma, func(v cfd.Violation) { out = append(out, v) })
		return out
	}
	first := collect()
	for i := 0; i < 5; i++ {
		if again := collect(); !reflect.DeepEqual(first, again) {
			t.Fatalf("stream %d delivered a different order", i)
		}
	}
	// The stream is the Σ-ordered concatenation of per-CFD Detect results.
	var want []cfd.Violation
	for _, c := range sigma {
		want = append(want, cfd.Detect(in, c)...)
	}
	if !reflect.DeepEqual(first, want) {
		t.Fatalf("stream order is not the Σ-ordered concatenation of Detect results")
	}
}

func TestSatisfiesAllAgrees(t *testing.T) {
	for _, rate := range []float64{0, 0.1} {
		for _, workers := range []int{1, 2, 8} {
			in := gen.Customers(gen.CustomerConfig{N: 400, Seed: 11, ErrorRate: rate})
			sigma := sigmaFigure2(in.Schema())
			want := cfd.SatisfiesAll(in, sigma)
			if got := New(workers).SatisfiesAll(in, sigma); got != want {
				t.Fatalf("rate=%v workers=%d: engine says %v, legacy says %v", rate, workers, got, want)
			}
		}
	}
}

func TestSatisfiesAllEarlyCancel(t *testing.T) {
	// 64 CFDs, every one violated. With a single worker the feeder must
	// stop after the first evaluation; the remaining 63 are cancelled.
	s := relation.MustSchema("r",
		relation.Attr("A", relation.KindString),
		relation.Attr("B", relation.KindString),
	)
	in := relation.NewInstance(s)
	in.MustInsert(relation.Str("a"), relation.Str("b"))
	in.MustInsert(relation.Str("a"), relation.Str("b'"))
	var sigma []*cfd.CFD
	for i := 0; i < 64; i++ {
		sigma = append(sigma, cfd.MustFD(s, []string{"A"}, []string{"B"}))
	}
	ok, evaluated := New(1).satisfiesAll(in, sigma)
	if ok {
		t.Fatal("instance satisfies a violated key")
	}
	if evaluated != 1 {
		t.Fatalf("evaluated %d CFDs after the first violation, want 1", evaluated)
	}
	// With many workers the count may exceed 1 (in-flight tasks finish)
	// but cancellation must still keep it well below the full batch.
	ok, evaluated = New(4).satisfiesAll(in, sigma)
	if ok {
		t.Fatal("parallel run missed the violation")
	}
	if evaluated >= 64 {
		t.Fatalf("parallel run evaluated all %d CFDs; early cancel is broken", evaluated)
	}
}

func TestDetectTouchedMatchesLegacy(t *testing.T) {
	in := gen.Customers(gen.CustomerConfig{N: 800, Seed: 23, ErrorRate: 0})
	sigma := sigmaFigure2(in.Schema())
	street := in.Schema().MustLookup("street")
	city := in.Schema().MustLookup("city")
	in.Update(3, street, relation.Str("Wrong St"))
	in.Update(10, city, relation.Str("Nowhere"))
	touched := []relation.TID{3, 10}

	var want []cfd.Violation
	for _, c := range sigma {
		want = append(want, cfd.DetectTouched(in, c, touched)...)
	}
	cfd.SortViolations(want)

	for _, workers := range []int{1, 2, 8} {
		got := New(workers).DetectTouched(in, sigma, touched)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: incremental batch diverges from legacy path", workers)
		}
	}
}

// TestCodecMatchesLegacyEngine pits the default snapshot/CodeIndex path
// against the string-keyed oracle path on randomized instances across
// every engine entry point; outputs must be byte-identical.
func TestCodecMatchesLegacyEngine(t *testing.T) {
	for _, n := range []int{0, 1, 200, 1500} {
		for _, rate := range []float64{0, 0.05, 0.3} {
			for _, workers := range []int{1, 4} {
				t.Run(fmt.Sprintf("n=%d/rate=%.2f/workers=%d", n, rate, workers), func(t *testing.T) {
					in := gen.Customers(gen.CustomerConfig{N: n, Seed: int64(n)*31 + 5, ErrorRate: rate})
					sigma := sigmaFigure2(in.Schema())
					codec, legacy := New(workers), NewLegacy(workers)
					if got, want := codec.DetectAll(in, sigma), legacy.DetectAll(in, sigma); !reflect.DeepEqual(got, want) {
						t.Fatalf("DetectAll diverges: %d vs %d violations", len(got), len(want))
					}
					if got, want := codec.DetectAllExhaustive(in, sigma), legacy.DetectAllExhaustive(in, sigma); !reflect.DeepEqual(got, want) {
						t.Fatalf("DetectAllExhaustive diverges: %d vs %d violations", len(got), len(want))
					}
					if got, want := codec.SatisfiesAll(in, sigma), legacy.SatisfiesAll(in, sigma); got != want {
						t.Fatalf("SatisfiesAll diverges: codec %v, legacy %v", got, want)
					}
					var touched []relation.TID
					for _, id := range in.IDs() {
						if int(id)%7 == 0 {
							touched = append(touched, id)
						}
					}
					if got, want := codec.DetectTouched(in, sigma, touched), legacy.DetectTouched(in, sigma, touched); !reflect.DeepEqual(got, want) {
						t.Fatalf("DetectTouched diverges: %d vs %d violations", len(got), len(want))
					}
				})
			}
		}
	}
}

// TestDetectionAfterUpdateRebuilds asserts the staleness contract: the
// engine snapshots per call, so detection after an Update reflects the
// new data rather than stale groups, and a snapshot taken before the
// update is detectably stale.
func TestDetectionAfterUpdateRebuilds(t *testing.T) {
	s := relation.MustSchema("r",
		relation.Attr("A", relation.KindString),
		relation.Attr("B", relation.KindString),
	)
	in := relation.NewInstance(s)
	in.MustInsert(relation.Str("a"), relation.Str("x"))
	in.MustInsert(relation.Str("a"), relation.Str("x"))
	sigma := []*cfd.CFD{cfd.MustFD(s, []string{"A"}, []string{"B"})}
	e := New(2)
	if vs := e.DetectAll(in, sigma); len(vs) != 0 {
		t.Fatalf("clean instance yielded %d violations", len(vs))
	}
	snap := relation.NewSnapshot(in)
	if err := in.Update(1, 1, relation.Str("y")); err != nil {
		t.Fatal(err)
	}
	if !snap.Stale() {
		t.Fatal("pre-update snapshot not reported stale")
	}
	got := e.DetectAll(in, sigma)
	if len(got) == 0 {
		t.Fatal("detection after update found nothing: engine read stale groups")
	}
	want := cfd.DetectAll(in, sigma)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-update engine output diverges from legacy: %d vs %d", len(got), len(want))
	}
}

// TestCodecMatchesLegacyOnNaN pins the NaN corner: the dictionary folds
// all NaN data values onto one code (like Value.Key on the legacy path),
// so NaN-keyed LHS groups form, while Value.Equal-based RHS comparison
// still treats NaN ≠ NaN — the two paths must agree exactly.
func TestCodecMatchesLegacyOnNaN(t *testing.T) {
	s := relation.MustSchema("r",
		relation.Attr("A", relation.KindFloat),
		relation.Attr("B", relation.KindString),
	)
	in := relation.NewInstance(s)
	nan := math.NaN()
	in.MustInsert(relation.Float(nan), relation.Str("x"))
	in.MustInsert(relation.Float(nan), relation.Str("y"))
	in.MustInsert(relation.Float(2.5), relation.Str("x"))
	sigma := []*cfd.CFD{cfd.MustFD(s, []string{"A"}, []string{"B"})}
	want := NewLegacy(1).DetectAll(in, sigma)
	got := New(1).DetectAll(in, sigma)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("NaN handling diverges: codec %d violations, legacy %d", len(got), len(want))
	}
	if len(want) != 1 {
		t.Fatalf("legacy oracle found %d violations, want 1 (the NaN pair disagreeing on B)", len(want))
	}
}

// TestNilEngine pins the PR 1 contract that a nil *Engine behaves like
// the zero value on every entry point.
func TestNilEngine(t *testing.T) {
	in := gen.Customers(gen.CustomerConfig{N: 50, Seed: 1, ErrorRate: 0.1})
	sigma := sigmaFigure2(in.Schema())
	var e *Engine
	want := cfd.DetectAll(in, sigma)
	if got := e.DetectAll(in, sigma); !reflect.DeepEqual(got, want) {
		t.Fatal("nil engine DetectAll diverges from legacy")
	}
	if e.SatisfiesAll(in, sigma) != cfd.SatisfiesAll(in, sigma) {
		t.Fatal("nil engine SatisfiesAll diverges from legacy")
	}
}

func TestEmptyBatch(t *testing.T) {
	in := gen.Customers(gen.CustomerConfig{N: 10, Seed: 1, ErrorRate: 0})
	e := New(0)
	if vs := e.DetectAll(in, nil); len(vs) != 0 {
		t.Fatalf("empty Σ produced %d violations", len(vs))
	}
	if !e.SatisfiesAll(in, nil) {
		t.Fatal("every instance satisfies the empty Σ")
	}
	if vs := e.DetectTouched(in, nil, []relation.TID{0}); len(vs) != 0 {
		t.Fatalf("empty Σ produced %d incremental violations", len(vs))
	}
}
