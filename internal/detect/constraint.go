package detect

import (
	"sort"
	"sync"

	"repro/internal/cfd"
	"repro/internal/cind"
	"repro/internal/ecfd"
	"repro/internal/relation"
)

// The constraint-class abstraction: the engine's planning, index
// sharing, worker fan-out and deterministic merge are class-agnostic,
// and each dependency class plugs in through the Constraint interface —
// CFDs (the original engine workload), CINDs (two-relation inclusion
// checks) and eCFDs (set-valued pattern cells) ship here; further
// classes (MDs, denial constraints, discovered candidates) implement
// the same five operations and ride the same engine.
//
// A mixed batch evaluates through one shared relation.DBSnapshot: every
// constraint of the batch reads the same consistent freeze of every
// relation, and the planner deduplicates index requirements by
// (relation, position set) across classes — a CFD on LHS [CC, zip] and
// a CIND grouping its source on [CC, zip] share one CodeIndex build.

// Class identifies a constraint class the engine can evaluate.
type Class uint8

// The constraint classes.
const (
	ClassCFD Class = iota
	ClassCIND
	ClassECFD
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassCFD:
		return "cfd"
	case ClassCIND:
		return "cind"
	case ClassECFD:
		return "ecfd"
	default:
		return "unknown"
	}
}

// Violation is one detected violation of any constraint class: the
// dynamic type is cfd.Violation, cind.Violation or ecfd.Violation. All
// three are comparable value types, so Violations work as map keys (the
// monitor's diff sets).
type Violation interface{ String() string }

// SplitViolations separates a mixed violation stream by class,
// preserving order — each per-class slice of a DetectBatch result is
// byte-identical to the class's own canonical DetectAll output.
// Violations of classes beyond the three built-ins are not returned;
// callers running custom Constraint implementations must type-switch
// the stream themselves.
func SplitViolations(vs []Violation) (cfds []cfd.Violation, cinds []cind.Violation, ecfds []ecfd.Violation) {
	for _, v := range vs {
		switch v := v.(type) {
		case cfd.Violation:
			cfds = append(cfds, v)
		case cind.Violation:
			cinds = append(cinds, v)
		case ecfd.Violation:
			ecfds = append(ecfds, v)
		}
	}
	return
}

// IndexReq names one group index a constraint's evaluation reads: the
// relation and the attribute position sequence. The planner builds each
// distinct requirement once per batch, lazily, and shares it across
// every constraint — of any class — that requested it.
type IndexReq struct {
	Rel string
	Pos []int
}

// Constraint adapts one dependency to the engine. Implementations must
// be usable from multiple goroutines (the worker pool evaluates
// constraints concurrently) and must return violations in their class's
// canonical per-constraint order, so the engine's reorder buffer yields
// a deterministic stream.
type Constraint interface {
	// Class returns the constraint-class tag.
	Class() Class
	// Dep returns the wrapped dependency (*cfd.CFD, *cind.CIND,
	// *ecfd.ECFD) — the identity violations are attributed to.
	Dep() any
	// Primary returns the relation whose TIDs identify the constraint's
	// violations; incremental maintenance expresses touched lists in its
	// TIDs.
	Primary() string
	// Reads returns every relation the evaluation consults.
	Reads() []string
	// Reqs returns the group indexes the evaluation wants prebuilt.
	Reqs() []IndexReq
	// Eval returns the constraint's violations over the batch snapshot.
	Eval(ctx *Ctx) []Violation
	// EvalLegacy is Eval on the string-keyed oracle path, reading the
	// live database instead of a snapshot.
	EvalLegacy(db *relation.Database) []Violation
	// EvalTouched restricts Eval to violations witnessed by the given
	// primary-relation TIDs (ascending); TIDs absent from the snapshot
	// are skipped.
	EvalTouched(ctx *Ctx, touched []relation.TID) []Violation
	// Satisfied reports whether the batch snapshot satisfies the
	// constraint, stopping at the first violation.
	Satisfied(ctx *Ctx) bool
	// Touched translates a batch of per-relation deltas into the
	// primary-relation TID list whose violations may have changed — the
	// incremental-maintenance contract: stored violations outside the
	// list are guaranteed unaffected, and EvalTouched over the list on
	// the pre- and post-batch snapshots re-derives the rest exactly.
	Touched(tc *TouchCtx) []relation.TID
}

// WrapCFD adapts a CFD to the Constraint interface.
func WrapCFD(c *cfd.CFD) Constraint { return cfdConstraint{c} }

// WrapCIND adapts a CIND to the Constraint interface.
func WrapCIND(c *cind.CIND) Constraint { return cindConstraint{c} }

// WrapECFD adapts an eCFD to the Constraint interface.
func WrapECFD(e *ecfd.ECFD) Constraint { return ecfdConstraint{e} }

// WrapCFDs adapts a CFD batch.
func WrapCFDs(cs []*cfd.CFD) []Constraint {
	out := make([]Constraint, len(cs))
	for i, c := range cs {
		out[i] = cfdConstraint{c}
	}
	return out
}

// WrapCINDs adapts a CIND batch.
func WrapCINDs(cs []*cind.CIND) []Constraint {
	out := make([]Constraint, len(cs))
	for i, c := range cs {
		out[i] = cindConstraint{c}
	}
	return out
}

// WrapECFDs adapts an eCFD batch.
func WrapECFDs(es []*ecfd.ECFD) []Constraint {
	out := make([]Constraint, len(es))
	for i, e := range es {
		out[i] = ecfdConstraint{e}
	}
	return out
}

// Ctx hands a constraint its slice of the batch: the per-relation
// snapshots of the shared DBSnapshot and the planner's shared lazy
// indexes. Safe for concurrent use by the worker pool.
type Ctx struct {
	dbs *relation.DBSnapshot
	idx map[string]*lazyIndex
}

// Snapshot returns the frozen snapshot of the named relation, or nil
// when the database holds no such relation (a CIND with a missing
// source is vacuous; a missing target fails every probe).
func (ctx *Ctx) Snapshot(rel string) *relation.Snapshot {
	s, _ := ctx.dbs.Snapshot(rel)
	return s
}

// Index returns the shared group index of the relation on the given
// positions, building it on first use. Requirements the planner did not
// see resolve through the snapshot's own index cache; a missing
// relation yields nil (the class primitives rebuild or skip as their
// semantics demand).
func (ctx *Ctx) Index(rel string, pos []int) *relation.CodeIndex {
	if li, ok := ctx.idx[relPosKey(rel, pos)]; ok {
		return li.get()
	}
	s := ctx.Snapshot(rel)
	if s == nil {
		return nil
	}
	return s.CodeIndexOn(pos)
}

// lazyIndex builds its group index on first use, once, and shares it
// across every task that requested the same (relation, positions) —
// whatever the constraint class. Laziness keeps early-cancelled runs
// from paying for indexes they never touched.
type lazyIndex struct {
	once sync.Once
	snap *relation.Snapshot // nil: relation absent from the database
	pos  []int
	cx   *relation.CodeIndex
}

func (li *lazyIndex) get() *relation.CodeIndex {
	li.once.Do(func() {
		if li.snap != nil {
			li.cx = li.snap.CodeIndexOn(li.pos)
		}
	})
	return li.cx
}

// relPosKey renders a (relation, position list) requirement as the
// planner's map key.
func relPosKey(rel string, pos []int) string {
	return rel + "\x00" + lhsKey(pos)
}

// planBatch resolves the batch context: one lazy shared index per
// distinct requirement across the whole mixed batch.
func (e *Engine) planBatch(dbs *relation.DBSnapshot, cs []Constraint) *Ctx {
	ctx := &Ctx{dbs: dbs, idx: make(map[string]*lazyIndex)}
	for _, c := range cs {
		for _, rq := range c.Reqs() {
			key := relPosKey(rq.Rel, rq.Pos)
			if _, ok := ctx.idx[key]; !ok {
				s, _ := dbs.Snapshot(rq.Rel)
				ctx.idx[key] = &lazyIndex{snap: s, pos: rq.Pos}
			}
		}
	}
	return ctx
}

// DetectBatch evaluates a mixed constraint batch over the database —
// every constraint against one shared relation.DBSnapshot — and returns
// all violations in the canonical mixed order (SortViolations). Its
// per-class subsequences are byte-identical to the legacy per-class
// detectors (cfd.DetectAll / cind.DetectAll / ecfd.DetectAll).
func (e *Engine) DetectBatch(db *relation.Database, cs []Constraint) []Violation {
	return e.DetectBatchOn(relation.DBSnapshotOf(db), cs)
}

// DetectBatchOn is DetectBatch evaluated on a caller-supplied database
// snapshot (the maintained snapshot of a DBMonitor, or any freeze the
// caller holds fixed across calls). On a Legacy engine constraints
// evaluate on the string-keyed oracle path against the snapshot's
// source database, which is only equivalent while the snapshot is
// current.
func (e *Engine) DetectBatchOn(dbs *relation.DBSnapshot, cs []Constraint) []Violation {
	var out []Violation
	e.DetectBatchStreamOn(dbs, cs, func(v Violation) { out = append(out, v) })
	SortViolations(out, SigmaOf(cs))
	return out
}

// DetectBatchStream runs DetectBatch but delivers violations to sink as
// they are merged: each constraint's violations arrive as a contiguous
// run, constraints in Σ order, each run in the class's canonical
// per-constraint order — deterministic regardless of worker count.
func (e *Engine) DetectBatchStream(db *relation.Database, cs []Constraint, sink func(Violation)) {
	e.DetectBatchStreamOn(relation.DBSnapshotOf(db), cs, sink)
}

// DetectBatchStreamOn is DetectBatchStream on a caller-supplied
// snapshot.
func (e *Engine) DetectBatchStreamOn(dbs *relation.DBSnapshot, cs []Constraint, sink func(Violation)) {
	eval := func(i int) []Violation { return nil }
	if e.legacy() {
		db := dbs.Source()
		eval = func(i int) []Violation { return cs[i].EvalLegacy(db) }
	} else {
		ctx := e.planBatch(dbs, cs)
		eval = func(i int) []Violation { return cs[i].Eval(ctx) }
	}
	runOrdered(e.workers(), len(cs), eval, func(vs []Violation) {
		for _, v := range vs {
			sink(v)
		}
	})
}

// DetectBatchTouchedOn is the incremental batch entry point: violations
// of each constraint witnessed by that constraint's touched TID list
// (indexed like cs), merged canonically. The DBMonitor diffs it between
// the pre- and post-batch snapshots.
func (e *Engine) DetectBatchTouchedOn(dbs *relation.DBSnapshot, cs []Constraint, touched [][]relation.TID) []Violation {
	ctx := e.planBatch(dbs, cs)
	var out []Violation
	runOrdered(e.workers(), len(cs), func(i int) []Violation {
		if len(touched[i]) == 0 {
			return nil
		}
		return cs[i].EvalTouched(ctx, touched[i])
	}, func(vs []Violation) { out = append(out, vs...) })
	SortViolations(out, SigmaOf(cs))
	return out
}

// SatisfiesBatch reports whether the database satisfies every
// constraint of the batch, cancelling outstanding work at the first
// violation any worker finds.
func (e *Engine) SatisfiesBatch(db *relation.Database, cs []Constraint) bool {
	if e.legacy() {
		// The string-keyed path never reads the snapshot; building one
		// here would charge the legacy configuration for a columnar
		// freeze it exists to be compared against.
		ok, _ := runCancel(e.workers(), len(cs), func(i int) bool {
			return len(cs[i].EvalLegacy(db)) == 0
		})
		return ok
	}
	return e.SatisfiesBatchOn(relation.DBSnapshotOf(db), cs)
}

// SatisfiesBatchOn is SatisfiesBatch evaluated on a caller-supplied
// database snapshot — the entry point for probing a frozen view (a
// serve-layer published state) without freezing the live database
// again, and without ever reading the mutable instances: safe to run
// concurrently with a writer mutating the snapshot's source database.
// On a Legacy engine the constraints fall back to the string-keyed path
// against the snapshot's source, which is only equivalent (and only
// safe) while the snapshot is current and the database quiescent.
func (e *Engine) SatisfiesBatchOn(dbs *relation.DBSnapshot, cs []Constraint) bool {
	if e.legacy() {
		db := dbs.Source()
		ok, _ := runCancel(e.workers(), len(cs), func(i int) bool {
			return len(cs[i].EvalLegacy(db)) == 0
		})
		return ok
	}
	ctx := e.planBatch(dbs, cs)
	ok, _ := runCancel(e.workers(), len(cs), func(i int) bool {
		return cs[i].Satisfied(ctx)
	})
	return ok
}

// SigmaOf maps each wrapped dependency to its first batch position —
// the Σ tie-break of the canonical mixed order (see SortViolations).
func SigmaOf(cs []Constraint) map[any]int {
	sigma := make(map[any]int, len(cs))
	for i, c := range cs {
		if _, ok := sigma[c.Dep()]; !ok {
			sigma[c.Dep()] = i
		}
	}
	return sigma
}

// DepOf returns the dependency a violation is attributed to (*cfd.CFD,
// *cind.CIND, *ecfd.ECFD), or nil for violations of classes this
// package does not know.
func DepOf(v Violation) any {
	switch v := v.(type) {
	case cfd.Violation:
		return v.CFD
	case cind.Violation:
		return v.CIND
	case ecfd.Violation:
		return v.ECFD
	}
	return nil
}

// ClassOf returns a violation's class tag, or ^Class(0) for violations
// of classes this package does not know (a future Constraint
// implementation — the same marker SortViolations orders last).
func ClassOf(v Violation) Class {
	switch v.(type) {
	case cfd.Violation:
		return ClassCFD
	case cind.Violation:
		return ClassCIND
	case ecfd.Violation:
		return ClassECFD
	}
	return ^Class(0)
}

// RelationOf returns the primary relation a violation's TIDs live in —
// the violated CFD/eCFD's schema, a CIND's source relation — or ""
// for violations of unknown classes.
func RelationOf(v Violation) string {
	switch v := v.(type) {
	case cfd.Violation:
		return v.CFD.Schema().Name()
	case cind.Violation:
		return v.CIND.Src().Name()
	case ecfd.Violation:
		return v.ECFD.Schema().Name()
	}
	return ""
}

// violationKey is the canonical mixed sort key (see SortViolations).
type violationKey struct {
	class          Class
	t1, t2         relation.TID
	attr, row, sig int
}

func keyOfViolation(v Violation, sigma map[any]int) violationKey {
	switch v := v.(type) {
	case cfd.Violation:
		return violationKey{ClassCFD, v.T1, v.T2, v.Attr, v.Row, sigma[v.CFD]}
	case cind.Violation:
		return violationKey{ClassCIND, v.TID, 0, 0, v.Row, sigma[v.CIND]}
	case ecfd.Violation:
		return violationKey{ClassECFD, v.T1, v.T2, v.Attr, v.Row, sigma[v.ECFD]}
	default:
		// A class this package does not know (a future Constraint
		// implementation): keep its violations after the built-in
		// classes, in the stable order they streamed in.
		return violationKey{class: ^Class(0)}
	}
}

// CompareViolations orders two mixed violations by the canonical key
// (-1, 0, +1): the comparator behind SortViolations, exported so
// maintained sorted violation lists (the serve layer's published state)
// can merge sorted gained/cleared diffs without re-sorting.
func CompareViolations(a, b Violation, sigma map[any]int) int {
	ka, kb := keyOfViolation(a, sigma), keyOfViolation(b, sigma)
	switch {
	case ka.class != kb.class:
		return cmpOrder(ka.class < kb.class)
	case ka.t1 != kb.t1:
		return cmpOrder(ka.t1 < kb.t1)
	case ka.t2 != kb.t2:
		return cmpOrder(ka.t2 < kb.t2)
	case ka.attr != kb.attr:
		return cmpOrder(ka.attr < kb.attr)
	case ka.row != kb.row:
		return cmpOrder(ka.row < kb.row)
	case ka.sig != kb.sig:
		return cmpOrder(ka.sig < kb.sig)
	default:
		return 0
	}
}

func cmpOrder(less bool) int {
	if less {
		return -1
	}
	return 1
}

// SortViolations sorts a mixed violation slice into the canonical mixed
// reporting order: class (CFD, CIND, eCFD), then the class's canonical
// key — (T1, T2, Attr, Row) for CFDs and eCFDs, (TID, Row) for CINDs —
// with ties broken by Σ position (sigma maps each dependency to its
// batch index; see SigmaOf). Restricted to one class it reproduces that
// class's own SortViolations order, which is what keeps DetectBatch's
// per-class subsequences byte-identical to the legacy detectors.
func SortViolations(vs []Violation, sigma map[any]int) {
	sort.SliceStable(vs, func(i, j int) bool {
		return CompareViolations(vs[i], vs[j], sigma) < 0
	})
}
