package detect

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/cfd"
	"repro/internal/cind"
	"repro/internal/ecfd"
	"repro/internal/gen"
	"repro/internal/relation"
)

// randomDBOp draws one random mutation over the order/book/CD database,
// churning the CINDs' source side (order inserts/deletes/retitles), the
// target side (book/CD membership and key updates — including format
// and genre, the Yp attributes of ϕ6) and the CFD/eCFD attributes, with
// fresh values so dictionaries keep growing.
func randomDBOp(r *rand.Rand, db *relation.Database, fresh *int, dead map[string]map[relation.TID]bool) DBOp {
	// pickID avoids TIDs already deleted by earlier ops of the same
	// (not-yet-applied) batch.
	pickID := func(rel string, in *relation.Instance) (relation.TID, bool) {
		var ids []relation.TID
		for _, id := range in.IDs() {
			if !dead[rel][id] {
				ids = append(ids, id)
			}
		}
		if len(ids) == 0 {
			return 0, false
		}
		return ids[r.Intn(len(ids))], true
	}
	kill := func(rel string, id relation.TID) DBOp {
		if dead[rel] == nil {
			dead[rel] = make(map[relation.TID]bool)
		}
		dead[rel][id] = true
		return DeleteFrom(rel, id)
	}
	title := func() relation.Value {
		if r.Intn(4) == 0 {
			*fresh++
			return relation.Str(fmt.Sprintf("Fresh Title %d", *fresh))
		}
		return relation.Str(fmt.Sprintf("Book Title %d", r.Intn(40)))
	}
	price := func() relation.Value { return relation.Float(float64(5+r.Intn(8)) + 0.99) }
	switch r.Intn(10) {
	case 0, 1: // order insert
		*fresh++
		return InsertInto("order", relation.Tuple{
			relation.Str(fmt.Sprintf("a%d", *fresh)), title(),
			relation.Str([]string{"book", "CD"}[r.Intn(2)]), price()})
	case 2: // order delete
		if id, ok := pickID("order", db.MustInstance("order")); ok {
			return kill("order", id)
		}
		return randomDBOp(r, db, fresh, dead)
	case 3: // order retitle/reprice/retype (X, Xp and CFD attributes)
		if id, ok := pickID("order", db.MustInstance("order")); ok {
			switch r.Intn(3) {
			case 0:
				return UpdateIn("order", id, 1, title())
			case 1:
				return UpdateIn("order", id, 3, price())
			default:
				return UpdateIn("order", id, 2, relation.Str([]string{"book", "CD", "vinyl"}[r.Intn(3)]))
			}
		}
		return randomDBOp(r, db, fresh, dead)
	case 4, 5: // book churn: membership and Y/Yp updates
		book := db.MustInstance("book")
		switch r.Intn(3) {
		case 0:
			*fresh++
			return InsertInto("book", relation.Tuple{
				relation.Str(fmt.Sprintf("b%d", *fresh)), title(), price(),
				relation.Str([]string{"hard-cover", "audio"}[r.Intn(2)])})
		case 1:
			if id, ok := pickID("book", book); ok {
				return kill("book", id)
			}
		default:
			if id, ok := pickID("book", book); ok {
				pos := []int{1, 2, 3}[r.Intn(3)] // title, price, format
				switch pos {
				case 1:
					return UpdateIn("book", id, 1, title())
				case 2:
					return UpdateIn("book", id, 2, price())
				default:
					return UpdateIn("book", id, 3, relation.Str([]string{"hard-cover", "audio", "paper-cover"}[r.Intn(3)]))
				}
			}
		}
		return randomDBOp(r, db, fresh, dead)
	default: // CD churn: album/price (ϕ5 target key, ϕ6 source) and genre (ϕ6 Xp)
		cdIn := db.MustInstance("CD")
		switch r.Intn(3) {
		case 0:
			*fresh++
			return InsertInto("CD", relation.Tuple{
				relation.Str(fmt.Sprintf("c%d", *fresh)), title(), price(),
				relation.Str([]string{"rock", "a-book"}[r.Intn(2)])})
		case 1:
			if id, ok := pickID("CD", cdIn); ok && r.Intn(2) == 0 {
				return kill("CD", id)
			}
			if id, ok := pickID("CD", cdIn); ok {
				return UpdateIn("CD", id, 3, relation.Str([]string{"rock", "a-book", "jazz"}[r.Intn(3)]))
			}
		default:
			if id, ok := pickID("CD", cdIn); ok {
				if r.Intn(2) == 0 {
					return UpdateIn("CD", id, 1, title())
				}
				return UpdateIn("CD", id, 2, price())
			}
		}
		return randomDBOp(r, db, fresh, dead)
	}
}

// dbMonitorOracleRounds drives random multi-relation batches through
// DBMonitor.Apply and asserts, after every batch, that the maintained
// mixed violation set is byte-identical to a fresh DetectBatch — and to
// the per-class legacy detectors — and that gained/cleared exactly
// account for the change.
func dbMonitorOracleRounds(t *testing.T, seed int64, orders, rounds, maxBatch, changelogCap int, withECFDs bool) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	db := gen.Orders(gen.OrdersConfig{Books: orders / 8, CDs: orders / 10, Orders: orders, Seed: seed, ViolationRate: 0.1})
	if changelogCap != 0 {
		for _, name := range db.Names() {
			db.MustInstance(name).SetChangelogCap(changelogCap)
		}
	}
	cfds, cinds, ecfds := mixedSigma()
	if !withECFDs {
		ecfds = nil
	}
	cs := wrapMixed(cfds, cinds, ecfds)
	m := NewDBMonitor(New(2), db, cs)

	prev := m.Violations()
	fresh := 0
	for round := 0; round < rounds; round++ {
		batch := make([]DBOp, 1+r.Intn(maxBatch))
		dead := make(map[string]map[relation.TID]bool)
		for i := range batch {
			batch[i] = randomDBOp(r, db, &fresh, dead)
		}
		gained, cleared, err := m.Apply(batch)
		if err != nil {
			t.Fatalf("seed %d round %d: Apply: %v", seed, round, err)
		}
		got := m.Violations()

		// Oracle 1: the engine's fresh full mixed detection.
		want := New(1).DetectBatch(db, cs)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d round %d: monitor has %d violations, fresh DetectBatch %d:\nmonitor %v\nfresh   %v",
				seed, round, len(got), len(want), got, want)
		}
		// Oracle 2: the string-keyed per-class legacy detectors,
		// independent of snapshots, dictionaries and changelogs.
		gotCFD, gotCIND, gotECFD := SplitViolations(got)
		order := db.MustInstance("order")
		if !reflect.DeepEqual(gotCFD, cfd.DetectAll(order, cfds)) {
			t.Fatalf("seed %d round %d: CFD stream diverges from legacy oracle", seed, round)
		}
		if !reflect.DeepEqual(gotCIND, cind.DetectAll(db, cinds)) {
			t.Fatalf("seed %d round %d: CIND stream diverges from legacy oracle", seed, round)
		}
		if withECFDs && !reflect.DeepEqual(gotECFD, ecfd.DetectAll(order, ecfds)) {
			t.Fatalf("seed %d round %d: eCFD stream diverges from legacy oracle", seed, round)
		}

		// The diff must exactly transform prev into got.
		next := make(map[Violation]struct{}, len(prev))
		for _, v := range prev {
			next[v] = struct{}{}
		}
		for _, v := range cleared {
			if _, ok := next[v]; !ok {
				t.Fatalf("seed %d round %d: cleared violation %v was not held", seed, round, v)
			}
			delete(next, v)
		}
		for _, v := range gained {
			if _, ok := next[v]; ok {
				t.Fatalf("seed %d round %d: gained violation %v was already held", seed, round, v)
			}
			next[v] = struct{}{}
		}
		if len(next) != len(got) {
			t.Fatalf("seed %d round %d: prev - cleared + gained has %d violations, set has %d",
				seed, round, len(next), len(got))
		}
		for _, v := range got {
			if _, ok := next[v]; !ok {
				t.Fatalf("seed %d round %d: %v in set but not in prev - cleared + gained", seed, round, v)
			}
		}
		prev = got
	}
}

func TestDBMonitorMatchesFreshDetection(t *testing.T) {
	for _, seed := range []int64{5, 29, 73} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			dbMonitorOracleRounds(t, seed, 300, 25, 12, 0, true)
		})
	}
}

// TestDBMonitorMixedCFDCIND is the acceptance configuration: mixed
// CFD+CIND sets (no eCFDs), heavier churn.
func TestDBMonitorMixedCFDCIND(t *testing.T) {
	for _, seed := range []int64{11, 47} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			dbMonitorOracleRounds(t, seed, 400, 30, 20, 0, false)
		})
	}
}

// TestDBMonitorChangelogFallback shrinks the changelogs so batches
// regularly outrun them, forcing the full-resync path; the contract
// must hold unchanged.
func TestDBMonitorChangelogFallback(t *testing.T) {
	dbMonitorOracleRounds(t, 61, 200, 20, 30, 8, true)
}

// TestDBMonitorForcedCollisions runs the oracle rounds with every
// CodeIndex probe in one collision chain.
func TestDBMonitorForcedCollisions(t *testing.T) {
	defer relation.SetCodeHasherForTest(func([]uint32) uint64 { return 99 })()
	dbMonitorOracleRounds(t, 83, 120, 12, 10, 0, true)
}

// TestDBMonitorExternalMutations: mutations made directly on the
// database between calls are picked up by Sync.
func TestDBMonitorExternalMutations(t *testing.T) {
	db := gen.Orders(gen.OrdersConfig{Books: 20, CDs: 15, Orders: 150, Seed: 17, ViolationRate: 0.1})
	cfds, cinds, ecfds := mixedSigma()
	cs := wrapMixed(cfds, cinds, ecfds)
	m := NewDBMonitor(nil, db, cs)

	// Orphan an order (source side) and delete a referenced book (target
	// side) behind the monitor's back.
	order := db.MustInstance("order")
	order.MustInsert(relation.Str("zz"), relation.Str("No Such Book"), relation.Str("book"), relation.Float(3.99))
	gained, cleared := m.Sync()
	if len(gained) == 0 {
		t.Fatal("orphan insert should gain at least the ϕ4 violation")
	}
	_ = cleared
	if want := New(1).DetectBatch(db, cs); !reflect.DeepEqual(m.Violations(), want) {
		t.Fatal("monitor diverges after external mutations")
	}
	if g, c := m.Sync(); len(g) != 0 || len(c) != 0 {
		t.Fatalf("idle Sync must be empty, got +%d -%d", len(g), len(c))
	}
}

// TestDBMonitorTargetSideUpdates pins the CIND target-side protocol
// precisely: deleting a referenced target tuple gains exactly the
// orphaned sources' violations; re-inserting an equal tuple clears
// them; a Yp-only update (book format) flips ϕ6 verdicts.
func TestDBMonitorTargetSideUpdates(t *testing.T) {
	db := relation.NewDatabase()
	cfds, cinds, ecfds := mixedSigma()
	order := relation.NewInstance(cfds[0].Schema())
	book := relation.NewInstance(cinds[0].Dst())
	cdIn := relation.NewInstance(cinds[1].Dst())
	db.Add(order)
	db.Add(book)
	db.Add(cdIn)
	t1 := relation.Str("Moby Dick")
	p1 := relation.Float(10.99)
	// Both orders share asin too, so the (title, price, type) → asin FD
	// of the fixture stays clean.
	order.MustInsert(relation.Str("a1"), t1, relation.Str("book"), p1)
	order.MustInsert(relation.Str("a1"), t1, relation.Str("book"), p1)
	bid := book.MustInsert(relation.Str("b1"), t1, p1, relation.Str("hard-cover"))
	cdID := cdIn.MustInsert(relation.Str("c1"), relation.Str("Whales"), relation.Float(5.99), relation.Str("rock"))

	cs := wrapMixed(cfds, cinds, ecfds)
	m := NewDBMonitor(New(1), db, cs)
	if m.Len() != 0 {
		t.Fatalf("clean fixture should start empty, has %v", m.Violations())
	}

	// Target delete: both orders orphaned under ϕ4.
	gained, cleared, err := m.Apply([]DBOp{DeleteFrom("book", bid)})
	if err != nil {
		t.Fatal(err)
	}
	if len(gained) != 2 || len(cleared) != 0 {
		t.Fatalf("after target delete: +%v -%v, want exactly the two orphans", gained, cleared)
	}
	// Equal target re-insert (fresh TID): both clear.
	gained, cleared, err = m.Apply([]DBOp{InsertInto("book", relation.Tuple{relation.Str("b2"), t1, p1, relation.Str("paper-cover")})})
	if err != nil {
		t.Fatal(err)
	}
	if len(gained) != 0 || len(cleared) != 2 {
		t.Fatalf("after target re-insert: +%v -%v, want the two orphans cleared", gained, cleared)
	}
	// Yp-only flip: turning the CD into an audio book demands an audio
	// edition (ϕ6) — one gained violation; granting the edition via a
	// Yp-only book format update clears it.
	if _, _, err := m.Apply([]DBOp{
		UpdateIn("CD", cdID, 1, t1), UpdateIn("CD", cdID, 2, p1),
	}); err != nil {
		t.Fatal(err)
	}
	gained, _, err = m.Apply([]DBOp{UpdateIn("CD", cdID, 3, relation.Str("a-book"))})
	if err != nil {
		t.Fatal(err)
	}
	if len(gained) != 1 {
		t.Fatalf("a-book flip should gain the ϕ6 violation, got %v", gained)
	}
	bookIDs := book.IDs()
	gained, cleared, err = m.Apply([]DBOp{UpdateIn("book", bookIDs[len(bookIDs)-1], 3, relation.Str("audio"))})
	if err != nil {
		t.Fatal(err)
	}
	if len(cleared) != 1 || len(gained) != 0 {
		t.Fatalf("audio format grant should clear the ϕ6 violation, got +%v -%v", gained, cleared)
	}
	if want := New(1).DetectBatch(db, cs); !reflect.DeepEqual(m.Violations(), want) {
		t.Fatal("monitor diverges at the end of the scripted scenario")
	}
}

// TestDBMonitorBadOp: a failing op mid-batch reports the error and the
// monitor resynchronizes with the applied prefix.
func TestDBMonitorBadOp(t *testing.T) {
	db := gen.Orders(gen.OrdersConfig{Books: 10, CDs: 5, Orders: 40, Seed: 2, ViolationRate: 0})
	cfds, cinds, ecfds := mixedSigma()
	cs := wrapMixed(cfds, cinds, ecfds)
	m := NewDBMonitor(nil, db, cs)
	_, _, err := m.Apply([]DBOp{
		InsertInto("order", relation.Tuple{relation.Str("x"), relation.Str("No Such"), relation.Str("book"), relation.Float(1.99)}),
		{Rel: "nosuch", Op: Delete(0)},
		InsertInto("order", relation.Tuple{relation.Str("y"), relation.Str("Skipped"), relation.Str("book"), relation.Float(1.99)}),
	})
	if err == nil {
		t.Fatal("expected an error for the unknown relation")
	}
	if want := New(1).DetectBatch(db, cs); !reflect.DeepEqual(m.Violations(), want) {
		t.Fatal("monitor out of sync after failed batch")
	}
}

// TestDBMonitorLegacyEngineUpgraded mirrors the Monitor behavior: a
// Legacy engine is upgraded to the columnar path.
func TestDBMonitorLegacyEngineUpgraded(t *testing.T) {
	db := gen.Orders(gen.OrdersConfig{Books: 5, CDs: 5, Orders: 20, Seed: 1, ViolationRate: 0.2})
	_, cinds, _ := mixedSigma()
	m := NewDBMonitor(NewLegacy(3), db, WrapCINDs(cinds))
	if m.Engine().Legacy {
		t.Fatal("DBMonitor must upgrade a Legacy engine")
	}
	if m.Engine().Workers != 3 {
		t.Fatal("worker count should carry over")
	}
}
