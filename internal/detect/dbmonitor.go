package detect

import (
	"fmt"
	"sort"

	"repro/internal/relation"
)

// DBMonitor is the mixed-class, multi-relation counterpart of Monitor:
// it owns an engine, the live DBSnapshot of a whole database, and the
// current violation set of a mixed constraint batch (CFDs, CINDs,
// eCFDs), and keeps all of them consistent under a stream of update
// batches that may touch several relations at once:
//
//	gained, cleared, err := m.Apply(batch)
//
// routes each relation's ops through its instance changelog, catches
// the per-relation snapshots up via relation.SnapshotOf (structural
// sharing, O(|Δ|) dictionary work, spliced group indexes), asks every
// constraint for the primary-relation TIDs its violations could have
// changed on (Constraint.Touched — for a CIND that covers updates on
// both the source and the target side of the inclusion), evaluates
// those TIDs against both the pre- and the post-batch snapshots, and
// diffs the results against the stored set.
//
// The maintained invariant, asserted by randomized tests: after every
// Apply, Violations() is exactly Engine.DetectBatch of the mutated
// database.
//
// A DBMonitor is single-writer, like the instances it watches: Apply
// (and Sync) must not run concurrently with each other or with other
// mutations of the database. Mutations made between calls outside the
// monitor are fine — the next Sync picks them up from the changelogs.
// The relation set is fixed at construction: adding or replacing
// instances afterwards forces a full resync.
type DBMonitor struct {
	engine  *Engine
	db      *relation.Database
	cs      []Constraint
	reads   []string // sorted union of the constraints' Reads()
	sigma   map[any]int
	dbs     *relation.DBSnapshot
	current map[Violation]struct{}

	fullSyncs int // times the changelog fallback forced a full re-detection
}

// DBOp is one mutation of a DBMonitor batch: an Op aimed at a named
// relation.
type DBOp struct {
	Rel string
	Op  Op
}

// InsertInto returns an insert op for the named relation.
func InsertInto(rel string, t relation.Tuple) DBOp { return DBOp{Rel: rel, Op: Insert(t)} }

// DeleteFrom returns a delete op for the named relation.
func DeleteFrom(rel string, id relation.TID) DBOp { return DBOp{Rel: rel, Op: Delete(id)} }

// UpdateIn returns a single-cell update op for the named relation.
func UpdateIn(rel string, id relation.TID, pos int, v relation.Value) DBOp {
	return DBOp{Rel: rel, Op: Update(id, pos, v)}
}

// NewDBMonitor builds a monitor over the database and mixed constraint
// batch, paying one full detection to seed the violation set (and,
// through it, the DBSnapshot and every shared group index the steady
// state will reuse). A nil engine gets the default configuration; a
// Legacy engine is silently upgraded to the columnar path, which the
// monitor requires (its pre-batch detection must run against frozen
// snapshots, not the already-mutated instances).
func NewDBMonitor(e *Engine, db *relation.Database, cs []Constraint) *DBMonitor {
	if e == nil {
		e = New(0)
	}
	if e.Legacy {
		e = &Engine{Workers: e.Workers}
	}
	m := &DBMonitor{
		engine:  e,
		db:      db,
		cs:      cs,
		sigma:   SigmaOf(cs),
		dbs:     relation.DBSnapshotOf(db),
		current: make(map[Violation]struct{}),
	}
	seen := make(map[string]bool)
	for _, c := range cs {
		for _, rel := range c.Reads() {
			if !seen[rel] {
				seen[rel] = true
				m.reads = append(m.reads, rel)
			}
		}
	}
	sort.Strings(m.reads)
	for _, v := range e.DetectBatchOn(m.dbs, cs) {
		m.current[v] = struct{}{}
	}
	return m
}

// Apply applies the batch to the database and returns the violations it
// gained (newly broken) and cleared (newly fixed), each in the
// canonical mixed order. Ops are applied in sequence; on the first
// failing op the remaining ops are skipped, the monitor resynchronizes
// with whatever prefix was applied, and the error is returned alongside
// the diff.
//
// Apply is single-writer: it must not run concurrently with another
// Apply or Sync, with Violations/Len/Snapshot on the same monitor, or
// with any other mutation of the watched database — the monitor
// inherits the instances' own single-writer rule and additionally
// mutates its stored violation set. Concurrent READERS are safe only
// against values the writer has already handed off: the *DBSnapshot a
// previous Apply/Sync returned via Snapshot() stays immutable and
// readable (COW tuple arrays, append-only dictionaries) while the next
// Apply derives its successor, which is exactly the hand-off
// internal/serve's single-writer ingest loop publishes to its
// concurrent read endpoints. See serve.Service.
func (m *DBMonitor) Apply(batch []DBOp) (gained, cleared []Violation, err error) {
	for _, op := range batch {
		in, ok := m.db.Instance(op.Rel)
		if !ok {
			err = fmt.Errorf("dbmonitor: no relation %q", op.Rel)
			break
		}
		switch op.Op.Kind {
		case OpInsert:
			if _, e := in.Insert(op.Op.Tuple); e != nil {
				err = fmt.Errorf("dbmonitor: %v", e)
			}
		case OpDelete:
			in.Delete(op.Op.TID)
		case OpUpdate:
			if e := in.Update(op.Op.TID, op.Op.Pos, op.Op.Val); e != nil {
				err = fmt.Errorf("dbmonitor: %v", e)
			}
		}
		if err != nil {
			break
		}
	}
	gained, cleared = m.Sync()
	return gained, cleared, err
}

// Sync brings the monitor up to date with mutations made directly on
// the database (outside Apply) and returns the violation diff, like
// Apply without the mutation step.
//
// Sync shares Apply's single-writer contract: one goroutine at a time,
// never concurrent with Apply or with database mutations; concurrent
// readers must hold a previously returned Snapshot rather than calling
// into the monitor (see Apply).
func (m *DBMonitor) Sync() (gained, cleared []Violation) {
	old := m.dbs
	deltas := make(map[string]*relation.Delta)
	// Only relations some constraint reads can change the violation set;
	// mutations elsewhere are ignored (and their changelogs cannot force
	// a full resync).
	for _, name := range m.reads {
		in, ok := m.db.Instance(name)
		if !ok {
			continue // never existed: nothing to diff
		}
		oldSnap, ok := old.Snapshot(name)
		if !ok || oldSnap.Source() != in {
			return m.fullResync() // relation added or replaced since the seed
		}
		entries, ok := in.ChangesSince(oldSnap.Version())
		if !ok {
			return m.fullResync() // changelog truncated past the snapshot
		}
		if len(entries) == 0 {
			continue
		}
		d := relation.NetDelta(entries)
		deltas[name] = &d
	}
	if len(deltas) == 0 {
		return nil, nil
	}
	dbs := relation.DBSnapshotOf(m.db) // per-relation delta catch-up
	tc := &TouchCtx{db: m.db, old: old, new: dbs, deltas: deltas}
	touched := make([][]relation.TID, len(m.cs))
	for i, c := range m.cs {
		touched[i] = c.Touched(tc)
	}

	// The stored set equals DetectBatch(old); the touched evaluation on
	// the old side is its restriction to the touched witnesses, so
	// replacing that slice with the touched evaluation on the new side
	// re-establishes the invariant for the new snapshot (violations
	// outside every touched list carry over — that is Touched's
	// contract).
	oldTouched := m.engine.DetectBatchTouchedOn(old, m.cs, touched)
	newTouched := m.engine.DetectBatchTouchedOn(dbs, m.cs, touched)

	oldSet := make(map[Violation]struct{}, len(oldTouched))
	for _, v := range oldTouched {
		oldSet[v] = struct{}{}
		delete(m.current, v)
	}
	for _, v := range newTouched {
		// Diff against the pre-batch stored set, not oldTouched: a
		// violation re-reported by the new side that the old side did not
		// (redundantly) cover is identical to a stored one — not a gain.
		if _, had := m.current[v]; !had {
			if _, had := oldSet[v]; !had {
				gained = append(gained, v)
			}
		}
		m.current[v] = struct{}{}
	}
	newSet := make(map[Violation]struct{}, len(newTouched))
	for _, v := range newTouched {
		newSet[v] = struct{}{}
	}
	for _, v := range oldTouched {
		if _, still := newSet[v]; !still {
			cleared = append(cleared, v)
		}
	}
	m.dbs = dbs
	SortViolations(gained, m.sigma)
	SortViolations(cleared, m.sigma)
	return gained, cleared
}

// fullResync rebuilds the violation set from scratch — the fallback
// when some bounded changelog no longer reaches back to the monitor's
// snapshot — and diffs it against the stored set so Apply's contract
// (exact gained/cleared) holds on this path too.
func (m *DBMonitor) fullResync() (gained, cleared []Violation) {
	m.fullSyncs++
	m.dbs = relation.DBSnapshotOf(m.db)
	fresh := m.engine.DetectBatchOn(m.dbs, m.cs)
	freshSet := make(map[Violation]struct{}, len(fresh))
	for _, v := range fresh {
		freshSet[v] = struct{}{}
		if _, had := m.current[v]; !had {
			gained = append(gained, v)
		}
	}
	for v := range m.current {
		if _, still := freshSet[v]; !still {
			cleared = append(cleared, v)
		}
	}
	m.current = freshSet
	SortViolations(gained, m.sigma)
	SortViolations(cleared, m.sigma)
	return gained, cleared
}

// Violations returns the current violation set in the canonical mixed
// order — byte-identical to Engine.DetectBatch of the database in its
// present state.
func (m *DBMonitor) Violations() []Violation {
	if len(m.current) == 0 {
		return nil // matches DetectBatch's nil on a clean database
	}
	out := make([]Violation, 0, len(m.current))
	for v := range m.current {
		out = append(out, v)
	}
	SortViolations(out, m.sigma)
	return out
}

// Len returns the size of the current violation set.
func (m *DBMonitor) Len() int { return len(m.current) }

// Snapshot returns the maintained database snapshot (current as of the
// last Apply/Sync).
func (m *DBMonitor) Snapshot() *relation.DBSnapshot { return m.dbs }

// Database returns the watched database.
func (m *DBMonitor) Database() *relation.Database { return m.db }

// Engine returns the monitor's engine (always on the columnar path).
func (m *DBMonitor) Engine() *Engine { return m.engine }

// FullSyncs reports how many times the monitor had to fall back to a
// full re-detection.
func (m *DBMonitor) FullSyncs() int { return m.fullSyncs }

// TouchCtx is the view Constraint.Touched reasons over: the pre- and
// post-batch snapshots of every relation, the net delta each relation's
// changelog recorded between them, and a memo of group co-member lists
// shared by every constraint grouping on the same (relation, LHS
// positions).
type TouchCtx struct {
	db     *relation.Database
	old    *relation.DBSnapshot
	new    *relation.DBSnapshot
	deltas map[string]*relation.Delta
	co     map[string][]relation.TID

	// coverInserts widens CoMembers to inserted TIDs. The unsharded
	// monitor never needs it — fresh TIDs sort after every group member,
	// so an insert cannot change a group's representative — but a
	// sharded delta's inserts include cross-shard moves carrying old
	// TIDs, which can steal representativeship of the group they join;
	// the joined group then needs an old-side co-member too.
	coverInserts bool
}

// Delta returns the net delta of the named relation, or nil when the
// batch did not touch it.
func (tc *TouchCtx) Delta(rel string) *relation.Delta { return tc.deltas[rel] }

// Old returns the pre-batch snapshot of the named relation (nil when
// absent).
func (tc *TouchCtx) Old(rel string) *relation.Snapshot {
	s, _ := tc.old.Snapshot(rel)
	return s
}

// New returns the post-batch snapshot of the named relation (nil when
// absent).
func (tc *TouchCtx) New(rel string) *relation.Snapshot {
	s, _ := tc.new.Snapshot(rel)
	return s
}

// CoMembers returns, for each TID of rel leaving or joining a group of
// the given position set during the batch, one old co-member of the
// affected group — the TIDs that keep shrunken groups re-detected on
// the new side (their representative may have left) and joined groups
// re-derived on the old side (the mover may have stolen
// representativeship). Inserted TIDs never need a co-member: fresh TIDs
// sort after every member, so the destination group keeps its
// representative. The list is memoized per (relation, position set) —
// every constraint class grouping on the same LHS shares it.
func (tc *TouchCtx) CoMembers(rel string, pos []int) []relation.TID {
	key := relPosKey(rel, pos)
	if co, ok := tc.co[key]; ok {
		return co
	}
	var co []relation.TID
	d := tc.deltas[rel]
	old := tc.Old(rel)
	in, _ := tc.db.Instance(rel)
	if d != nil && old != nil && in != nil {
		deleted := make(map[relation.TID]bool, len(d.Deleted))
		for _, id := range d.Deleted {
			deleted[id] = true
		}
		cx := old.CodeIndexOn(pos)
		coMember := func(tid relation.TID) {
			row, ok := old.Row(tid)
			if !ok {
				return
			}
			for _, r := range cx.GroupOf(row) {
				id := old.TID(int(r))
				if id == tid || deleted[id] || d.Touches(id, pos) {
					continue // gone or moved itself: cannot vouch for the group
				}
				co = append(co, id)
				return
			}
		}
		for _, id := range d.Deleted {
			coMember(id)
		}
		for id := range d.Updated {
			if !d.Touches(id, pos) {
				continue // same group on both sides; id itself covers it
			}
			coMember(id)
			if t, ok := in.Tuple(id); ok {
				if ids := cx.Lookup(t); len(ids) > 0 {
					co = append(co, ids[0])
				}
			}
		}
		if tc.coverInserts {
			// An inserted TID below the group's members (a cross-shard
			// move) may become the new representative; re-derive the
			// joined group on the old side via its old representative,
			// exactly like the update-join path above.
			for _, id := range d.Inserted {
				if t, ok := in.Tuple(id); ok {
					if ids := cx.Lookup(t); len(ids) > 0 {
						co = append(co, ids[0])
					}
				}
			}
		}
	}
	if tc.co == nil {
		tc.co = make(map[string][]relation.TID)
	}
	tc.co[key] = co
	return co
}
