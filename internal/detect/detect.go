// Package detect is the batch violation-detection engine behind checking,
// repair and incremental maintenance: the hot path of Fan's framework
// ("catch inconsistencies and errors that emerge as violations of the
// dependencies") made to run as fast as the hardware allows.
//
// The engine improves on calling cfd.Detect in a loop in three ways:
//
//  1. Columnar snapshots. By default a batch freezes the instance once
//     into a relation.Snapshot — dense per-attribute arrays of
//     dictionary codes — and every group index is a relation.CodeIndex
//     hashing fixed-width code sequences to uint64. No per-tuple heap
//     strings, no map lookup per tuple, value equality as an integer
//     compare. The string-keyed relation.Index path remains available
//     (Legacy) as the compatibility/oracle path.
//
//  2. Index sharing. Detection groups tuples by the LHS of a dependency,
//     and building that index costs a full pass over the instance — for
//     FD-rich rule sets it dominates the run time. The engine plans a
//     batch by grouping CFDs on identical LHS position sets and builds
//     each index exactly once, lazily, sharing it (and the snapshot)
//     across every CFD and tableau row of the group.
//
//  3. Parallelism. Per-CFD work fans out across a configurable worker
//     pool (default runtime.GOMAXPROCS(0)). Violations stream through a
//     reorder buffer to a Sink in deterministic Σ order, and DetectAll
//     merges them with exactly the comparator of cfd.DetectAll, so the
//     engine's output is byte-identical to the legacy sequential path.
//
// SatisfiesAll additionally cancels early: the first violation found by
// any worker stops the remaining work, including snapshot and index
// builds that have not started yet.
//
// The engine core is constraint-class-agnostic: planning, index
// sharing, fan-out and the deterministic merge run over the Constraint
// interface (see constraint.go), with CFDs, CINDs and eCFDs shipped as
// its implementations. Mixed batches evaluate through one shared
// relation.DBSnapshot (Engine.DetectBatch), requirements deduplicate by
// (relation, position set) across classes, and the stateful DBMonitor
// maintains a mixed violation set incrementally across multi-relation
// update batches — including the target side of CIND inclusions. The
// CFD-typed entry points below (DetectAll, SatisfiesAll, ...) remain
// the unboxed fast path for CFD-only workloads and the Monitor.
package detect

import (
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/cfd"
	"repro/internal/relation"
)

// Engine schedules batch violation detection. The zero value is valid and
// uses one worker per available CPU and the columnar snapshot path;
// engines are stateless across calls and safe for concurrent use.
type Engine struct {
	// Workers is the size of the worker pool; <= 0 means
	// runtime.GOMAXPROCS(0).
	Workers int
	// Legacy forces the string-keyed relation.Index path instead of the
	// columnar snapshot/CodeIndex path. The outputs are byte-identical;
	// the legacy path exists as the oracle for equivalence testing and
	// for A/B benchmarking of the representations.
	Legacy bool
}

// New returns an engine with the given worker-pool size (<= 0 means one
// worker per available CPU), running on the columnar snapshot path.
func New(workers int) *Engine { return &Engine{Workers: workers} }

// NewLegacy returns an engine pinned to the string-keyed relation.Index
// path — the oracle/compatibility configuration.
func NewLegacy(workers int) *Engine { return &Engine{Workers: workers, Legacy: true} }

func (e *Engine) workers() int {
	if e != nil && e.Workers > 0 {
		return e.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Sink consumes a stream of violations. The engine invokes it from a
// single goroutine at a time; implementations must not call back into the
// same engine run.
type Sink func(cfd.Violation)

// task is one unit of work: one CFD of the batch plus the index shared by
// its LHS group.
type task struct {
	c  *cfd.CFD
	ix *sharedIndex
}

// sharedSnapshot lazily resolves the instance's version-keyed snapshot
// (relation.SnapshotOf) on first use; the whole batch shares one
// snapshot, whatever the number of LHS groups, and an unchanged instance
// reuses the previous batch's interned columns and group indexes.
// Laziness keeps early-cancelled runs from paying even the cache probe.
// The *On entry points preset the snapshot instead (a Monitor detecting
// against a specific maintained snapshot, possibly not the instance's
// latest).
type sharedSnapshot struct {
	once   sync.Once
	in     *relation.Instance
	preset *relation.Snapshot
	snap   *relation.Snapshot
}

func (s *sharedSnapshot) get() *relation.Snapshot {
	s.once.Do(func() {
		if s.preset != nil {
			s.snap = s.preset
		} else {
			s.snap = relation.SnapshotOf(s.in)
		}
	})
	return s.snap
}

// sharedIndex lazily builds the LHS group index on first use and shares
// it across every task of the same LHS group: a relation.CodeIndex over
// the batch snapshot on the snapshot path, a relation.Index otherwise.
// Laziness matters for early cancellation: a SatisfiesAll run that finds
// a violation in its first group never pays for the others' indexes.
type sharedIndex struct {
	once sync.Once
	in   *relation.Instance
	snap *sharedSnapshot // nil on the legacy path
	pos  []int
	ix   *relation.Index
	cx   *relation.CodeIndex
}

func (s *sharedIndex) get() *relation.Index {
	s.once.Do(func() { s.ix = relation.BuildIndex(s.in, s.pos) })
	return s.ix
}

func (s *sharedIndex) getCode() *relation.CodeIndex {
	s.once.Do(func() { s.cx = s.snap.get().CodeIndexOn(s.pos) })
	return s.cx
}

// plan groups the batch by identical LHS position sets: one sharedIndex
// per distinct set, one task per CFD, in Σ order; on the snapshot path
// every group additionally shares one lazily built snapshot.
func (e *Engine) plan(in *relation.Instance, set []*cfd.CFD) []task {
	return e.planOn(in, nil, set)
}

// planOn is plan with an optional caller-supplied snapshot: when preset
// is non-nil the snapshot path runs on it (and its cached group
// indexes) instead of resolving relation.SnapshotOf.
func (e *Engine) planOn(in *relation.Instance, preset *relation.Snapshot, set []*cfd.CFD) []task {
	var snap *sharedSnapshot
	if !e.legacy() { // nil-safe: a nil *Engine behaves like the zero value
		snap = &sharedSnapshot{in: in, preset: preset}
	}
	groups := make(map[string]*sharedIndex)
	tasks := make([]task, 0, len(set))
	for _, c := range set {
		key := lhsKey(c.LHS())
		ix, ok := groups[key]
		if !ok {
			ix = &sharedIndex{in: in, snap: snap, pos: c.LHS()}
			groups[key] = ix
		}
		tasks = append(tasks, task{c: c, ix: ix})
	}
	return tasks
}

func lhsKey(pos []int) string {
	b := make([]byte, 0, 3*len(pos))
	for _, p := range pos {
		b = strconv.AppendInt(b, int64(p), 10)
		b = append(b, ',')
	}
	return string(b)
}

// DetectAll returns every violation of the set in the instance, in the
// same deterministic order as cfd.DetectAll (with which it is
// output-identical), using snapshot/index sharing and the worker pool.
func (e *Engine) DetectAll(in *relation.Instance, set []*cfd.CFD) []cfd.Violation {
	var out []cfd.Violation
	e.DetectAllStream(in, set, func(v cfd.Violation) { out = append(out, v) })
	cfd.SortViolations(out)
	return out
}

// runDetect is the single representation-dispatch point of the detect
// entry points: it plans the batch and runs it through the reorder
// buffer with either the string-keyed or the snapshot-backed per-task
// evaluator, according to Engine.Legacy.
func (e *Engine) runDetect(in *relation.Instance, set []*cfd.CFD, sink Sink,
	legacyEval func(*relation.Instance, *cfd.CFD, *relation.Index) []cfd.Violation,
	snapEval func(*relation.Snapshot, *cfd.CFD, *relation.CodeIndex) []cfd.Violation,
) {
	e.runDetectOn(in, nil, set, sink, legacyEval, snapEval)
}

// runDetectOn is runDetect with an optional caller-supplied snapshot
// (see planOn).
func (e *Engine) runDetectOn(in *relation.Instance, preset *relation.Snapshot, set []*cfd.CFD, sink Sink,
	legacyEval func(*relation.Instance, *cfd.CFD, *relation.Index) []cfd.Violation,
	snapEval func(*relation.Snapshot, *cfd.CFD, *relation.CodeIndex) []cfd.Violation,
) {
	tasks := e.planOn(in, preset, set)
	eval := func(t task) []cfd.Violation {
		return snapEval(t.ix.snap.get(), t.c, t.ix.getCode())
	}
	if e.legacy() {
		eval = func(t task) []cfd.Violation {
			return legacyEval(in, t.c, t.ix.get())
		}
	}
	runOrdered(e.workers(), len(tasks),
		func(i int) []cfd.Violation { return eval(tasks[i]) },
		func(vs []cfd.Violation) {
			for _, v := range vs {
				sink(v)
			}
		})
}

// DetectAllStream runs DetectAll but delivers violations to sink as they
// are merged: each CFD's violations arrive as a contiguous run, CFDs in Σ
// order, each run sorted by (Row, T1, T2, Attr) — a deterministic stream
// regardless of worker count or scheduling.
func (e *Engine) DetectAllStream(in *relation.Instance, set []*cfd.CFD, sink Sink) {
	e.runDetect(in, set, sink, cfd.DetectWithIndex, cfd.DetectWithSnapshot)
}

// DetectAllExhaustive is DetectAll with exhaustive pair reporting (see
// cfd.DetectExhaustiveWithIndex): every pair of tuples disagreeing on an
// RHS attribute within a violating LHS group yields a violation, not just
// pairs against the group representative. Conflict-hypergraph
// construction requires this form.
func (e *Engine) DetectAllExhaustive(in *relation.Instance, set []*cfd.CFD) []cfd.Violation {
	var out []cfd.Violation
	e.runDetect(in, set, func(v cfd.Violation) { out = append(out, v) },
		cfd.DetectExhaustiveWithIndex, cfd.DetectExhaustiveWithSnapshot)
	cfd.SortViolations(out)
	return out
}

// DetectTouched returns the violations of the set whose witnesses involve
// at least one touched tuple (see cfd.DetectTouched), merged in the
// canonical order, sharing the snapshot, indexes and the worker pool
// across the batch. It is the batch entry point for incremental detection
// after updates.
func (e *Engine) DetectTouched(in *relation.Instance, set []*cfd.CFD, touched []relation.TID) []cfd.Violation {
	var out []cfd.Violation
	e.runDetect(in, set, func(v cfd.Violation) { out = append(out, v) },
		func(in *relation.Instance, c *cfd.CFD, ix *relation.Index) []cfd.Violation {
			return cfd.DetectTouchedWithIndex(in, c, ix, touched)
		},
		func(snap *relation.Snapshot, c *cfd.CFD, cx *relation.CodeIndex) []cfd.Violation {
			return cfd.DetectTouchedWithSnapshot(snap, c, cx, touched)
		})
	cfd.SortViolations(out)
	return out
}

// The *On entry points run detection against a caller-supplied snapshot
// — the maintained snapshot of a Monitor, or any snapshot the caller
// wants to hold fixed across calls (repair iterations) — instead of
// resolving relation.SnapshotOf internally. Cached group indexes of the
// snapshot are shared exactly as on the default path. On a Legacy
// engine they fall back to the string-keyed path over the snapshot's
// source instance, which is only equivalent while the snapshot is
// current (snap.Stale() == false).

// DetectAllOn is DetectAll evaluated on the given snapshot.
func (e *Engine) DetectAllOn(snap *relation.Snapshot, set []*cfd.CFD) []cfd.Violation {
	var out []cfd.Violation
	e.runDetectOn(snap.Source(), snap, set, func(v cfd.Violation) { out = append(out, v) },
		cfd.DetectWithIndex, cfd.DetectWithSnapshot)
	cfd.SortViolations(out)
	return out
}

// DetectAllExhaustiveOn is DetectAllExhaustive evaluated on the given
// snapshot.
func (e *Engine) DetectAllExhaustiveOn(snap *relation.Snapshot, set []*cfd.CFD) []cfd.Violation {
	var out []cfd.Violation
	e.runDetectOn(snap.Source(), snap, set, func(v cfd.Violation) { out = append(out, v) },
		cfd.DetectExhaustiveWithIndex, cfd.DetectExhaustiveWithSnapshot)
	cfd.SortViolations(out)
	return out
}

// DetectTouchedOn is DetectTouched evaluated on the given snapshot:
// touched TIDs absent from the snapshot are skipped, so the same
// touched list can be diffed against a pre-batch and a post-batch
// snapshot (the Monitor's core move).
func (e *Engine) DetectTouchedOn(snap *relation.Snapshot, set []*cfd.CFD, touched []relation.TID) []cfd.Violation {
	var out []cfd.Violation
	e.runDetectOn(snap.Source(), snap, set, func(v cfd.Violation) { out = append(out, v) },
		func(in *relation.Instance, c *cfd.CFD, ix *relation.Index) []cfd.Violation {
			return cfd.DetectTouchedWithIndex(in, c, ix, touched)
		},
		func(s *relation.Snapshot, c *cfd.CFD, cx *relation.CodeIndex) []cfd.Violation {
			return cfd.DetectTouchedWithSnapshot(s, c, cx, touched)
		})
	cfd.SortViolations(out)
	return out
}

// SatisfiesAll reports whether the instance satisfies every CFD of the
// set (D ⊨ Σ), cancelling outstanding work as soon as any worker finds a
// violation.
func (e *Engine) SatisfiesAll(in *relation.Instance, set []*cfd.CFD) bool {
	ok, _ := e.satisfiesAll(in, set)
	return ok
}

// SatisfiesAllOn is SatisfiesAll evaluated on the given snapshot, with
// the same early cancellation.
func (e *Engine) SatisfiesAllOn(snap *relation.Snapshot, set []*cfd.CFD) bool {
	ok, _ := e.satisfiesAllOn(snap.Source(), snap, set)
	return ok
}

func (e *Engine) legacy() bool { return e != nil && e.Legacy }

// satisfies evaluates one task on the configured representation.
func (e *Engine) satisfies(in *relation.Instance, t task) bool {
	if e.legacy() {
		return cfd.SatisfiesWithIndex(in, t.c, t.ix.get())
	}
	return cfd.SatisfiesWithSnapshot(t.ix.snap.get(), t.c, t.ix.getCode())
}

// satisfiesAll additionally reports how many CFDs were actually
// evaluated, which the tests use to observe early cancellation.
func (e *Engine) satisfiesAll(in *relation.Instance, set []*cfd.CFD) (bool, int64) {
	return e.satisfiesAllOn(in, nil, set)
}

func (e *Engine) satisfiesAllOn(in *relation.Instance, preset *relation.Snapshot, set []*cfd.CFD) (bool, int64) {
	tasks := e.planOn(in, preset, set)
	return runCancel(e.workers(), len(tasks), func(i int) bool {
		return e.satisfies(in, tasks[i])
	})
}

// runOrdered is the constraint-class-agnostic scheduler under every
// batch entry point: it fans n tasks out across a pool of workers
// goroutines and delivers each task's result batch to emit in task
// order through a reorder buffer — batch i is emitted only after
// batches 0..i-1, whatever order the workers finish in. The result type
// is opaque (a []cfd.Violation on the CFD entry points, a []Violation
// on the mixed-class ones), so every class pays zero boxing it did not
// ask for.
func runOrdered[R any](workers, n int, eval func(int) R, emit func(R)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			emit(eval(i))
		}
		return
	}
	results := make([]R, n)
	ready := make([]bool, n)
	var mu sync.Mutex
	next := 0
	queue := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range queue {
				r := eval(i)
				mu.Lock()
				results[i], ready[i] = r, true
				for next < n && ready[next] {
					emit(results[next])
					var zero R
					results[next] = zero
					next++
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < n; i++ {
		queue <- i
	}
	close(queue)
	wg.Wait()
}

// runCancel evaluates n tasks on the pool, cancelling outstanding work
// as soon as any task reports false; it returns whether every evaluated
// task reported true and how many tasks were actually evaluated (the
// observable for early-cancellation tests).
func runCancel(workers, n int, eval func(int) bool) (ok bool, evaluated int64) {
	var failed atomic.Bool
	var count atomic.Int64
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			count.Add(1)
			if !eval(i) {
				return false, count.Load()
			}
		}
		return true, count.Load()
	}
	queue := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range queue {
				if failed.Load() {
					continue // drain: a violation was already found
				}
				count.Add(1)
				if !eval(i) {
					failed.Store(true)
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		if failed.Load() {
			break
		}
		queue <- i
	}
	close(queue)
	wg.Wait()
	return !failed.Load(), count.Load()
}
