// Package detect is the batch violation-detection engine behind checking,
// repair and incremental maintenance: the hot path of Fan's framework
// ("catch inconsistencies and errors that emerge as violations of the
// dependencies") made to run as fast as the hardware allows.
//
// The engine improves on calling cfd.Detect in a loop in two ways:
//
//  1. Index sharing. Detection groups tuples by the LHS of a dependency,
//     and building that hash index costs a full pass over the instance —
//     for FD-rich rule sets it dominates the run time. The engine plans a
//     batch by grouping CFDs on identical LHS position sets and builds
//     each relation.Index exactly once, lazily, sharing it across every
//     CFD and tableau row of the group.
//
//  2. Parallelism. Per-CFD work fans out across a configurable worker
//     pool (default runtime.GOMAXPROCS(0)). Violations stream through a
//     reorder buffer to a Sink in deterministic Σ order, and DetectAll
//     merges them with exactly the comparator of cfd.DetectAll, so the
//     parallel engine's output is byte-identical to the legacy sequential
//     path.
//
// SatisfiesAll additionally cancels early: the first violation found by
// any worker stops the remaining work, including index builds that have
// not started yet.
package detect

import (
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/cfd"
	"repro/internal/relation"
)

// Engine schedules batch violation detection. The zero value is valid and
// uses one worker per available CPU; engines are stateless across calls
// and safe for concurrent use.
type Engine struct {
	// Workers is the size of the worker pool; <= 0 means
	// runtime.GOMAXPROCS(0).
	Workers int
}

// New returns an engine with the given worker-pool size (<= 0 means one
// worker per available CPU).
func New(workers int) *Engine { return &Engine{Workers: workers} }

func (e *Engine) workers() int {
	if e != nil && e.Workers > 0 {
		return e.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Sink consumes a stream of violations. The engine invokes it from a
// single goroutine at a time; implementations must not call back into the
// same engine run.
type Sink func(cfd.Violation)

// task is one unit of work: one CFD of the batch plus the index shared by
// its LHS group.
type task struct {
	c  *cfd.CFD
	ix *sharedIndex
}

// sharedIndex lazily builds a relation.Index on first use and shares it
// across every task of the same LHS group. Laziness matters for early
// cancellation: a SatisfiesAll run that finds a violation in its first
// group never pays for the others' indexes.
type sharedIndex struct {
	once sync.Once
	in   *relation.Instance
	pos  []int
	ix   *relation.Index
}

func (s *sharedIndex) get() *relation.Index {
	s.once.Do(func() { s.ix = relation.BuildIndex(s.in, s.pos) })
	return s.ix
}

// plan groups the batch by identical LHS position sets: one sharedIndex
// per distinct set, one task per CFD, in Σ order.
func plan(in *relation.Instance, set []*cfd.CFD) []task {
	groups := make(map[string]*sharedIndex)
	tasks := make([]task, 0, len(set))
	for _, c := range set {
		key := lhsKey(c.LHS())
		ix, ok := groups[key]
		if !ok {
			ix = &sharedIndex{in: in, pos: c.LHS()}
			groups[key] = ix
		}
		tasks = append(tasks, task{c: c, ix: ix})
	}
	return tasks
}

func lhsKey(pos []int) string {
	b := make([]byte, 0, 3*len(pos))
	for _, p := range pos {
		b = strconv.AppendInt(b, int64(p), 10)
		b = append(b, ',')
	}
	return string(b)
}

// DetectAll returns every violation of the set in the instance, in the
// same deterministic order as cfd.DetectAll (with which it is
// output-identical), using index sharing and the worker pool.
func (e *Engine) DetectAll(in *relation.Instance, set []*cfd.CFD) []cfd.Violation {
	var out []cfd.Violation
	e.DetectAllStream(in, set, func(v cfd.Violation) { out = append(out, v) })
	cfd.SortViolations(out)
	return out
}

// DetectAllStream runs DetectAll but delivers violations to sink as they
// are merged: each CFD's violations arrive as a contiguous run, CFDs in Σ
// order, each run sorted by (Row, T1, T2, Attr) — a deterministic stream
// regardless of worker count or scheduling.
func (e *Engine) DetectAllStream(in *relation.Instance, set []*cfd.CFD, sink Sink) {
	e.runOrdered(plan(in, set), sink, func(t task) []cfd.Violation {
		return cfd.DetectWithIndex(in, t.c, t.ix.get())
	})
}

// DetectAllExhaustive is DetectAll with exhaustive pair reporting (see
// cfd.DetectExhaustiveWithIndex): every pair of tuples disagreeing on an
// RHS attribute within a violating LHS group yields a violation, not just
// pairs against the group representative. Conflict-hypergraph
// construction requires this form.
func (e *Engine) DetectAllExhaustive(in *relation.Instance, set []*cfd.CFD) []cfd.Violation {
	var out []cfd.Violation
	e.runOrdered(plan(in, set), func(v cfd.Violation) { out = append(out, v) }, func(t task) []cfd.Violation {
		return cfd.DetectExhaustiveWithIndex(in, t.c, t.ix.get())
	})
	cfd.SortViolations(out)
	return out
}

// DetectTouched returns the violations of the set whose witnesses involve
// at least one touched tuple (see cfd.DetectTouched), merged in the
// canonical order, sharing indexes and the worker pool across the batch.
// It is the batch entry point for incremental detection after updates.
func (e *Engine) DetectTouched(in *relation.Instance, set []*cfd.CFD, touched []relation.TID) []cfd.Violation {
	var out []cfd.Violation
	e.runOrdered(plan(in, set), func(v cfd.Violation) { out = append(out, v) }, func(t task) []cfd.Violation {
		return cfd.DetectTouchedWithIndex(in, t.c, t.ix.get(), touched)
	})
	cfd.SortViolations(out)
	return out
}

// SatisfiesAll reports whether the instance satisfies every CFD of the
// set (D ⊨ Σ), cancelling outstanding work as soon as any worker finds a
// violation.
func (e *Engine) SatisfiesAll(in *relation.Instance, set []*cfd.CFD) bool {
	ok, _ := e.satisfiesAll(in, set)
	return ok
}

// satisfiesAll additionally reports how many CFDs were actually
// evaluated, which the tests use to observe early cancellation.
func (e *Engine) satisfiesAll(in *relation.Instance, set []*cfd.CFD) (bool, int64) {
	tasks := plan(in, set)
	var violated atomic.Bool
	var evaluated atomic.Int64
	nw := e.workers()
	if nw > len(tasks) {
		nw = len(tasks)
	}
	if nw <= 1 {
		for _, t := range tasks {
			evaluated.Add(1)
			if !cfd.SatisfiesWithIndex(in, t.c, t.ix.get()) {
				return false, evaluated.Load()
			}
		}
		return true, evaluated.Load()
	}
	queue := make(chan task)
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range queue {
				if violated.Load() {
					continue // drain: a violation was already found
				}
				evaluated.Add(1)
				if !cfd.SatisfiesWithIndex(in, t.c, t.ix.get()) {
					violated.Store(true)
				}
			}
		}()
	}
	for _, t := range tasks {
		if violated.Load() {
			break
		}
		queue <- t
	}
	close(queue)
	wg.Wait()
	return !violated.Load(), evaluated.Load()
}

// runOrdered fans the tasks out across the worker pool and delivers each
// task's result batch to sink in task order through a reorder buffer:
// batch i is streamed only after batches 0..i-1, whatever order the
// workers finish in.
func (e *Engine) runOrdered(tasks []task, sink Sink, eval func(task) []cfd.Violation) {
	nw := e.workers()
	if nw > len(tasks) {
		nw = len(tasks)
	}
	if nw <= 1 {
		for _, t := range tasks {
			for _, v := range eval(t) {
				sink(v)
			}
		}
		return
	}
	results := make([][]cfd.Violation, len(tasks))
	ready := make([]bool, len(tasks))
	var mu sync.Mutex
	next := 0
	queue := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range queue {
				r := eval(tasks[i])
				mu.Lock()
				results[i], ready[i] = r, true
				for next < len(tasks) && ready[next] {
					for _, v := range results[next] {
						sink(v)
					}
					results[next] = nil
					next++
				}
				mu.Unlock()
			}
		}()
	}
	for i := range tasks {
		queue <- i
	}
	close(queue)
	wg.Wait()
}
