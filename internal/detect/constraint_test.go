package detect

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/cfd"
	"repro/internal/cind"
	"repro/internal/ecfd"
	"repro/internal/gen"
	"repro/internal/paperdata"
	"repro/internal/relation"
)

// mixedSigma builds the mixed fixture over the order/book/CD schemas:
// two CFDs and two eCFDs on order, the three Figure 4 CINDs — one CFD's
// LHS position sequence equals ϕ4's source group positions, so the
// planner must share that index across classes.
func mixedSigma() (cfds []*cfd.CFD, cinds []*cind.CIND, ecfds []*ecfd.ECFD) {
	order := paperdata.OrderSchema()
	book := paperdata.BookSchema()
	cd := paperdata.CDSchema()
	cfds = []*cfd.CFD{
		cfd.MustFD(order, []string{"title"}, []string{"price"}),
		cfd.MustFD(order, []string{"title", "price", "type"}, []string{"asin"}),
	}
	cinds = []*cind.CIND{
		cind.MustNew(order, book,
			[]string{"title", "price"}, []string{"title", "price"},
			[]string{"type"}, nil,
			cind.PatternRow{XpVals: []relation.Value{relation.Str("book")}}),
		cind.MustNew(order, cd,
			[]string{"title", "price"}, []string{"album", "price"},
			[]string{"type"}, nil,
			cind.PatternRow{XpVals: []relation.Value{relation.Str("CD")}}),
		cind.MustNew(cd, book,
			[]string{"album", "price"}, []string{"title", "price"},
			[]string{"genre"}, []string{"format"},
			cind.PatternRow{
				XpVals: []relation.Value{relation.Str("a-book")},
				YpVals: []relation.Value{relation.Str("audio")},
			}),
	}
	ecfds = []*ecfd.ECFD{
		ecfd.MustNew(order, []string{"type"}, []string{"price"},
			ecfd.Row{LHS: []ecfd.Cell{ecfd.NotIn(relation.Str("book"), relation.Str("CD"))},
				RHS: []ecfd.Cell{ecfd.Any()}}),
		ecfd.MustNew(order, []string{"title"}, []string{"type"},
			ecfd.Row{LHS: []ecfd.Cell{ecfd.Any()},
				RHS: []ecfd.Cell{ecfd.In(relation.Str("book"), relation.Str("CD"))}}),
	}
	return
}

func wrapMixed(cfds []*cfd.CFD, cinds []*cind.CIND, ecfds []*ecfd.ECFD) []Constraint {
	var cs []Constraint
	cs = append(cs, WrapCFDs(cfds)...)
	cs = append(cs, WrapCINDs(cinds)...)
	cs = append(cs, WrapECFDs(ecfds)...)
	return cs
}

// TestDetectBatchMatchesClassDetectors is the acceptance assertion: a
// mixed CFD+CIND+eCFD batch through one shared DBSnapshot splits into
// per-class streams byte-identical to the legacy per-class detectors,
// on every worker count and on the Legacy engine.
func TestDetectBatchMatchesClassDetectors(t *testing.T) {
	cfds, cinds, ecfds := mixedSigma()
	cs := wrapMixed(cfds, cinds, ecfds)
	for _, seed := range []int64{1, 13, 99} {
		db := gen.Orders(gen.OrdersConfig{Books: 40, CDs: 30, Orders: 400, Seed: seed, ViolationRate: 0.15})
		order := db.MustInstance("order")
		wantCFD := cfd.DetectAll(order, cfds)
		wantCIND := cind.DetectAll(db, cinds)
		wantECFD := ecfd.DetectAll(order, ecfds)
		for _, workers := range []int{1, 2, 8} {
			for _, legacy := range []bool{false, true} {
				e := &Engine{Workers: workers, Legacy: legacy}
				got := e.DetectBatch(db, cs)
				gotCFD, gotCIND, gotECFD := SplitViolations(got)
				if !reflect.DeepEqual(gotCFD, wantCFD) {
					t.Fatalf("seed %d workers %d legacy %v: CFD stream diverges:\ngot  %v\nwant %v",
						seed, workers, legacy, gotCFD, wantCFD)
				}
				if !reflect.DeepEqual(gotCIND, wantCIND) {
					t.Fatalf("seed %d workers %d legacy %v: CIND stream diverges:\ngot  %v\nwant %v",
						seed, workers, legacy, gotCIND, wantCIND)
				}
				if !reflect.DeepEqual(gotECFD, wantECFD) {
					t.Fatalf("seed %d workers %d legacy %v: eCFD stream diverges:\ngot  %v\nwant %v",
						seed, workers, legacy, gotECFD, wantECFD)
				}
				if len(got) != len(wantCFD)+len(wantCIND)+len(wantECFD) {
					t.Fatalf("seed %d: mixed batch dropped violations", seed)
				}
			}
		}
	}
}

// TestDetectBatchDeterministic: repeated runs and stream runs agree.
func TestDetectBatchDeterministic(t *testing.T) {
	cfds, cinds, ecfds := mixedSigma()
	cs := wrapMixed(cfds, cinds, ecfds)
	db := gen.Orders(gen.OrdersConfig{Books: 30, CDs: 20, Orders: 300, Seed: 7, ViolationRate: 0.2})
	e := New(4)
	first := e.DetectBatch(db, cs)
	for i := 0; i < 4; i++ {
		if again := e.DetectBatch(db, cs); !reflect.DeepEqual(first, again) {
			t.Fatalf("DetectBatch not deterministic:\nfirst %v\nagain %v", first, again)
		}
	}
	// The stream delivers per-constraint contiguous runs in Σ order.
	var streamed []Violation
	e.DetectBatchStream(db, cs, func(v Violation) { streamed = append(streamed, v) })
	SortViolations(streamed, SigmaOf(cs))
	if !reflect.DeepEqual(first, streamed) {
		t.Fatal("sorted stream diverges from DetectBatch")
	}
}

// TestPlanBatchSharesAcrossClasses: the CFD on LHS (title, price, type)
// and ϕ4's source grouping resolve to the same lazy index, and the two
// order-CINDs share both requirements outright.
func TestPlanBatchSharesAcrossClasses(t *testing.T) {
	cfds, cinds, ecfds := mixedSigma()
	cs := wrapMixed(cfds, cinds, ecfds)
	db := gen.Orders(gen.OrdersConfig{Books: 5, CDs: 5, Orders: 20, Seed: 1})
	e := New(1)
	ctx := e.planBatch(relation.DBSnapshotOf(db), cs)

	sharedCFD := cfds[1] // LHS title, price, type
	sharedCIND := cinds[0]
	keyCFD := relPosKey("order", sharedCFD.LHS())
	keyCIND := relPosKey(sharedCIND.Src().Name(), sharedCIND.SourceGroupPos())
	if keyCFD != keyCIND {
		t.Fatalf("expected the CFD LHS and CIND source-group keys to match: %q vs %q", keyCFD, keyCIND)
	}
	li, ok := ctx.idx[keyCFD]
	if !ok {
		t.Fatal("planner did not register the shared requirement")
	}
	if got := ctx.Index("order", sharedCFD.LHS()); got != li.get() {
		t.Fatal("CFD resolves a different index than the planner's shared one")
	}
	if got := ctx.Index("order", sharedCIND.SourceGroupPos()); got != li.get() {
		t.Fatal("CIND resolves a different index than the planner's shared one")
	}
	// Distinct requirement count: order[title] (FD), order[title,price,type]
	// (CFD2+ϕ4src+ϕ5src), book[title,price] (ϕ4dst), CD[album,price] (ϕ5dst),
	// CD[album,price,genre] (ϕ6src), book[title,price,format] (ϕ6dst),
	// order[type] (ecfd1). ecfd2's order[title] folds into the FD's.
	if len(ctx.idx) != 7 {
		keys := make([]string, 0, len(ctx.idx))
		for k := range ctx.idx {
			keys = append(keys, k)
		}
		t.Fatalf("planner built %d requirements, want 7: %q", len(ctx.idx), keys)
	}
}

// TestSatisfiesBatch agrees with per-class checks on clean and dirty
// databases.
func TestSatisfiesBatch(t *testing.T) {
	cfds, cinds, ecfds := mixedSigma()
	cs := wrapMixed(cfds, cinds, ecfds)
	for _, rate := range []float64{0, 0.3} {
		db := gen.Orders(gen.OrdersConfig{Books: 30, CDs: 20, Orders: 200, Seed: 3, ViolationRate: rate})
		order := db.MustInstance("order")
		want := cfd.SatisfiesAll(order, cfds) && cind.SatisfiesAll(db, cinds) && ecfd.SatisfiesAll(order, ecfds)
		for _, e := range []*Engine{New(1), New(4), NewLegacy(2)} {
			if got := e.SatisfiesBatch(db, cs); got != want {
				t.Fatalf("rate %v: SatisfiesBatch = %v, want %v", rate, got, want)
			}
		}
	}
}

// TestDetectBatchMissingRelations: constraints over relations absent
// from the database behave like the class detectors (CFD/eCFD vacuous,
// CIND with missing source vacuous, missing target all-violating).
func TestDetectBatchMissingRelations(t *testing.T) {
	cfds, cinds, ecfds := mixedSigma()
	cs := wrapMixed(cfds, cinds, ecfds)
	db := relation.NewDatabase()
	order := relation.NewInstance(paperdata.OrderSchema())
	order.MustInsert(relation.Str("a1"), relation.Str("T"), relation.Str("book"), relation.Float(1.99))
	order.MustInsert(relation.Str("a2"), relation.Str("T"), relation.Str("CD"), relation.Float(2.99))
	db.Add(order) // book and CD missing entirely
	got := e4(t, db, cs)
	gotCFD, gotCIND, gotECFD := SplitViolations(got)
	if !reflect.DeepEqual(gotCFD, cfd.DetectAll(order, cfds)) {
		t.Fatal("CFD stream diverges with missing relations")
	}
	if !reflect.DeepEqual(gotCIND, cind.DetectAll(db, cinds)) {
		t.Fatal("CIND stream diverges with missing relations")
	}
	if !reflect.DeepEqual(gotECFD, ecfd.DetectAll(order, ecfds)) {
		t.Fatal("eCFD stream diverges with missing relations")
	}
	// Both orders probe missing targets: two CIND violations.
	if len(gotCIND) != 2 {
		t.Fatalf("want both orders flagged against missing targets, got %v", gotCIND)
	}
}

func e4(t *testing.T, db *relation.Database, cs []Constraint) []Violation {
	t.Helper()
	return New(4).DetectBatch(db, cs)
}

// TestDetectBatchForcedCollisions re-runs the acceptance equivalence
// with every CodeIndex probe in one collision chain.
func TestDetectBatchForcedCollisions(t *testing.T) {
	defer relation.SetCodeHasherForTest(func([]uint32) uint64 { return 3 })()
	cfds, cinds, ecfds := mixedSigma()
	cs := wrapMixed(cfds, cinds, ecfds)
	db := gen.Orders(gen.OrdersConfig{Books: 20, CDs: 15, Orders: 150, Seed: 21, ViolationRate: 0.25})
	order := db.MustInstance("order")
	got := New(2).DetectBatch(db, cs)
	gotCFD, gotCIND, gotECFD := SplitViolations(got)
	if !reflect.DeepEqual(gotCFD, cfd.DetectAll(order, cfds)) ||
		!reflect.DeepEqual(gotCIND, cind.DetectAll(db, cinds)) ||
		!reflect.DeepEqual(gotECFD, ecfd.DetectAll(order, ecfds)) {
		t.Fatal("mixed batch diverges from class detectors under forced collisions")
	}
}

// TestWrapAccessors covers the adapter surface the engine relies on.
func TestWrapAccessors(t *testing.T) {
	cfds, cinds, ecfds := mixedSigma()
	c := WrapCFD(cfds[0])
	if c.Class() != ClassCFD || c.Dep() != cfds[0] || c.Primary() != "order" {
		t.Fatal("CFD wrapper accessors broken")
	}
	ci := WrapCIND(cinds[0])
	if ci.Class() != ClassCIND || ci.Primary() != "order" || len(ci.Reads()) != 2 || len(ci.Reqs()) != 2 {
		t.Fatal("CIND wrapper accessors broken")
	}
	ec := WrapECFD(ecfds[0])
	if ec.Class() != ClassECFD || ec.Dep() != ecfds[0] {
		t.Fatal("eCFD wrapper accessors broken")
	}
	for _, cl := range []Class{ClassCFD, ClassCIND, ClassECFD} {
		if cl.String() == "" {
			t.Fatal("Class.String empty")
		}
	}
	if s := fmt.Sprint(c.Reqs()); s == "" {
		t.Fatal("Reqs render empty")
	}
}
