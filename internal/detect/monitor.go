package detect

import (
	"fmt"
	"sort"

	"repro/internal/cfd"
	"repro/internal/relation"
)

// Monitor is the stateful face of incremental detection: it owns an
// engine, the live columnar snapshot of one instance, that snapshot's
// LHS group indexes, and the current violation set of a CFD batch, and
// keeps all of them consistent under a stream of update batches. Where
// Engine.DetectAll answers "what is wrong now" from scratch, a Monitor
// answers "what just broke and what just got fixed" for the price of
// the touched groups only:
//
//	Monitor.Apply(batch) -> (gained, cleared)
//
// routes the batch through the instance changelog, catches the snapshot
// up via relation.Snapshot.Apply (structural sharing, O(|Δ|) dictionary
// work, spliced group indexes), runs DetectTouched against both the
// pre- and the post-batch snapshot — the pre-batch snapshot stays
// readable because updates are copy-on-write and dictionaries are
// append-only — and diffs the two against the stored set. Steady-state
// cost is O(|Δ| · touched-group size) with zero full-instance work; a
// monitor that has fallen behind a truncated changelog falls back to
// one full re-detection and keeps going.
//
// The maintained invariant, asserted by randomized tests: after every
// Apply, Violations() is exactly Engine.DetectAll of the mutated
// instance.
//
// A Monitor is single-writer, like the instance it watches: Apply (and
// Sync) must not run concurrently with each other or with other
// mutations of the instance. Mutations made between calls outside the
// Monitor are fine — the next Sync picks them up from the changelog.
type Monitor struct {
	engine   *Engine
	in       *relation.Instance
	set      []*cfd.CFD
	lhsSets  [][]int          // deduplicated LHS position sets of the batch
	relevant [][]bool         // per CFD: attribute position ∈ LHS ∪ RHS
	sigma    map[*cfd.CFD]int // CFD -> first index in set (canonical order)
	snap     *relation.Snapshot
	current  map[cfd.Violation]struct{}

	fullSyncs int // times the changelog fallback forced a full re-detection
}

// OpKind is the kind of a Monitor operation.
type OpKind uint8

// The operation kinds.
const (
	OpInsert OpKind = iota
	OpDelete
	OpUpdate
)

// Op is one mutation of a Monitor batch.
type Op struct {
	Kind  OpKind
	TID   relation.TID   // Delete, Update
	Pos   int            // Update: attribute position
	Val   relation.Value // Update: new value
	Tuple relation.Tuple // Insert: the new tuple
}

// Insert returns an insert op.
func Insert(t relation.Tuple) Op { return Op{Kind: OpInsert, Tuple: t} }

// Delete returns a delete op (a no-op if the TID does not exist).
func Delete(id relation.TID) Op { return Op{Kind: OpDelete, TID: id} }

// Update returns a single-cell update op.
func Update(id relation.TID, pos int, v relation.Value) Op {
	return Op{Kind: OpUpdate, TID: id, Pos: pos, Val: v}
}

// NewMonitor builds a monitor over the instance and CFD batch, paying
// one full detection to seed the violation set (and, through it, the
// snapshot and every LHS group index the steady state will reuse).
// A nil engine gets the default configuration; a Legacy engine is
// silently upgraded to the columnar path, which the monitor requires
// (its pre-batch detection must run against a frozen snapshot, not the
// already-mutated instance).
func NewMonitor(e *Engine, in *relation.Instance, set []*cfd.CFD) *Monitor {
	if e == nil {
		e = New(0)
	}
	if e.Legacy {
		e = &Engine{Workers: e.Workers}
	}
	m := &Monitor{
		engine:  e,
		in:      in,
		set:     set,
		sigma:   make(map[*cfd.CFD]int, len(set)),
		current: make(map[cfd.Violation]struct{}),
	}
	seen := make(map[string]bool)
	arity := in.Schema().Arity()
	for i, c := range set {
		if _, ok := m.sigma[c]; !ok {
			m.sigma[c] = i
		}
		if key := lhsKey(c.LHS()); !seen[key] {
			seen[key] = true
			m.lhsSets = append(m.lhsSets, c.LHS())
		}
		rel := make([]bool, arity)
		for _, p := range c.LHS() {
			rel[p] = true
		}
		for _, p := range c.RHS() {
			rel[p] = true
		}
		m.relevant = append(m.relevant, rel)
	}
	m.snap = relation.SnapshotOf(in)
	for _, v := range e.DetectAllOn(m.snap, set) {
		m.current[v] = struct{}{}
	}
	return m
}

// Apply applies the batch to the instance and returns the violations it
// gained (newly broken) and cleared (newly fixed), each in canonical
// order. Ops are applied in sequence; on the first failing op the
// remaining ops are skipped, the monitor resynchronizes with whatever
// prefix was applied, and the error is returned alongside the diff.
func (m *Monitor) Apply(batch []Op) (gained, cleared []cfd.Violation, err error) {
	for _, op := range batch {
		switch op.Kind {
		case OpInsert:
			if _, e := m.in.Insert(op.Tuple); e != nil {
				err = fmt.Errorf("monitor: %v", e)
			}
		case OpDelete:
			m.in.Delete(op.TID)
		case OpUpdate:
			if e := m.in.Update(op.TID, op.Pos, op.Val); e != nil {
				err = fmt.Errorf("monitor: %v", e)
			}
		}
		if err != nil {
			break
		}
	}
	gained, cleared = m.Sync()
	return gained, cleared, err
}

// Sync brings the monitor up to date with mutations made directly on
// the instance (outside Apply) and returns the violation diff, like
// Apply without the mutation step.
func (m *Monitor) Sync() (gained, cleared []cfd.Violation) {
	old := m.snap
	entries, ok := m.in.ChangesSince(old.Version())
	if !ok {
		return m.fullResync()
	}
	if len(entries) == 0 {
		return nil, nil
	}
	d := relation.NetDelta(entries)
	snap := relation.SnapshotOf(m.in) // delta catch-up, or rebuild when too far behind
	perCFD := m.touchedPerCFD(old, &d)

	// The stored set equals DetectAll(old); DetectTouched(old) is its
	// restriction to the touched groups, so replacing that slice with
	// DetectTouched(new) re-establishes the invariant for the new
	// snapshot. Groups no member of a CFD's touched list can name
	// changed neither membership nor values, so their stored violations
	// carry over. Each CFD gets its own list — an update that intersects
	// neither the CFD's LHS nor its RHS cannot change its violations, so
	// its (possibly large) group is not rescanned for that CFD.
	var oldTouched, newTouched []cfd.Violation
	for i, c := range m.set {
		touched := perCFD[i]
		if len(touched) == 0 {
			continue
		}
		oldTouched = append(oldTouched,
			cfd.DetectTouchedWithSnapshot(old, c, old.CodeIndexOn(c.LHS()), touched)...)
		newTouched = append(newTouched,
			cfd.DetectTouchedWithSnapshot(snap, c, snap.CodeIndexOn(c.LHS()), touched)...)
	}

	oldSet := make(map[cfd.Violation]struct{}, len(oldTouched))
	for _, v := range oldTouched {
		oldSet[v] = struct{}{}
		delete(m.current, v)
	}
	for _, v := range newTouched {
		// Diff against the pre-batch stored set, not oldTouched: a group
		// re-reported by the new side that was not (redundantly) covered
		// by the old side contributes identical violations, which are
		// not gains.
		if _, had := m.current[v]; !had {
			if _, had := oldSet[v]; !had {
				gained = append(gained, v)
			}
		}
		m.current[v] = struct{}{}
	}
	newSet := make(map[cfd.Violation]struct{}, len(newTouched))
	for _, v := range newTouched {
		newSet[v] = struct{}{}
	}
	for _, v := range oldTouched {
		if _, still := newSet[v]; !still {
			cleared = append(cleared, v)
		}
	}
	m.snap = snap
	m.sortCanonical(gained)
	m.sortCanonical(cleared)
	return gained, cleared
}

// touchedPerCFD assembles, per CFD, the TID list whose groups cover
// every violation of that CFD that can change across the delta:
//
//   - every inserted or deleted TID — membership changes concern every
//     CFD; an updated TID only concerns CFDs whose LHS ∪ RHS intersects
//     the updated positions (others can neither gain nor lose
//     violations from it, so its — possibly large — group is not
//     rescanned for them);
//   - for each LHS position set S and each TID leaving an S-group
//     (deleted, or updated on an attribute of S): one surviving
//     co-member of the old group, so the shrunken group is re-detected
//     on the new side (its representative may have left with the TID);
//   - for each TID moving into an S-group by update: one old member of
//     the destination group, so the group's pre-batch violations are
//     re-derived on the old side (the mover may have a lower TID than
//     the old representative, changing every pair violation's
//     identity). Inserted TIDs never need this: fresh TIDs sort after
//     every member, so the destination group keeps its representative
//     and its old violations stay valid verbatim.
func (m *Monitor) touchedPerCFD(old *relation.Snapshot, d *relation.Delta) [][]relation.TID {
	deleted := make(map[relation.TID]bool, len(d.Deleted))
	for _, id := range d.Deleted {
		deleted[id] = true
	}
	// Group co-members are a property of the LHS position set, shared by
	// every CFD drawn from it.
	coByLHS := make(map[string][]relation.TID, len(m.lhsSets))
	for _, S := range m.lhsSets {
		var co []relation.TID
		cx := old.CodeIndexOn(S)
		coMember := func(tid relation.TID) {
			row, ok := old.Row(tid)
			if !ok {
				return
			}
			for _, r := range cx.GroupOf(row) {
				id := old.TID(int(r))
				if id == tid || deleted[id] || d.Touches(id, S) {
					continue // gone or moved itself: cannot vouch for the group
				}
				co = append(co, id)
				return
			}
		}
		for _, id := range d.Deleted {
			coMember(id)
		}
		for id := range d.Updated {
			if !d.Touches(id, S) {
				continue // same group on both sides; id itself covers it
			}
			coMember(id)
			if t, ok := m.in.Tuple(id); ok {
				if ids := cx.Lookup(t); len(ids) > 0 {
					co = append(co, ids[0])
				}
			}
		}
		coByLHS[lhsKey(S)] = co
	}

	out := make([][]relation.TID, len(m.set))
	for i, c := range m.set {
		rel := m.relevant[i]
		set := make(map[relation.TID]struct{})
		for _, id := range d.Inserted {
			set[id] = struct{}{}
		}
		for _, id := range d.Deleted {
			set[id] = struct{}{}
		}
		for id, ps := range d.Updated {
			for _, p := range ps {
				if rel[p] {
					set[id] = struct{}{}
					break
				}
			}
		}
		for _, id := range coByLHS[lhsKey(c.LHS())] {
			set[id] = struct{}{}
		}
		if len(set) == 0 {
			continue
		}
		list := make([]relation.TID, 0, len(set))
		for id := range set {
			list = append(list, id)
		}
		sort.Slice(list, func(a, b int) bool { return list[a] < list[b] })
		out[i] = list
	}
	return out
}

// fullResync rebuilds the violation set from scratch — the fallback
// when the bounded changelog no longer reaches back to the monitor's
// snapshot — and diffs it against the stored set so Apply's contract
// (exact gained/cleared) holds on this path too.
func (m *Monitor) fullResync() (gained, cleared []cfd.Violation) {
	m.fullSyncs++
	m.snap = relation.SnapshotOf(m.in)
	fresh := m.engine.DetectAllOn(m.snap, m.set)
	freshSet := make(map[cfd.Violation]struct{}, len(fresh))
	for _, v := range fresh {
		freshSet[v] = struct{}{}
		if _, had := m.current[v]; !had {
			gained = append(gained, v)
		}
	}
	for v := range m.current {
		if _, still := freshSet[v]; !still {
			cleared = append(cleared, v)
		}
	}
	m.current = freshSet
	m.sortCanonical(gained)
	m.sortCanonical(cleared)
	return gained, cleared
}

// Violations returns the current violation set in the canonical
// reporting order — byte-identical to Engine.DetectAll of the instance
// in its present state.
func (m *Monitor) Violations() []cfd.Violation {
	out := make([]cfd.Violation, 0, len(m.current))
	for v := range m.current {
		out = append(out, v)
	}
	m.sortCanonical(out)
	return out
}

// sortCanonical orders violations by (T1, T2, Attr, Row), ties broken
// by Σ position — exactly the order cfd.SortViolations' stable merge
// produces when violations are gathered per CFD in Σ order.
func (m *Monitor) sortCanonical(vs []cfd.Violation) {
	sort.Slice(vs, func(i, j int) bool {
		if vs[i].T1 != vs[j].T1 {
			return vs[i].T1 < vs[j].T1
		}
		if vs[i].T2 != vs[j].T2 {
			return vs[i].T2 < vs[j].T2
		}
		if vs[i].Attr != vs[j].Attr {
			return vs[i].Attr < vs[j].Attr
		}
		if vs[i].Row != vs[j].Row {
			return vs[i].Row < vs[j].Row
		}
		return m.sigma[vs[i].CFD] < m.sigma[vs[j].CFD]
	})
}

// Len returns the size of the current violation set.
func (m *Monitor) Len() int { return len(m.current) }

// Snapshot returns the maintained snapshot (current as of the last
// Apply/Sync); callers such as repair can detect against it through the
// engine's *On entry points without re-freezing the instance.
func (m *Monitor) Snapshot() *relation.Snapshot { return m.snap }

// Instance returns the watched instance.
func (m *Monitor) Instance() *relation.Instance { return m.in }

// Engine returns the monitor's engine (always on the columnar path).
func (m *Monitor) Engine() *Engine { return m.engine }

// FullSyncs reports how many times the monitor had to fall back to a
// full re-detection because the changelog had been truncated past its
// snapshot.
func (m *Monitor) FullSyncs() int { return m.fullSyncs }
