package detect

import (
	"sort"

	"repro/internal/cfd"
	"repro/internal/cind"
	"repro/internal/ecfd"
	"repro/internal/relation"
)

// The three shipped Constraint implementations. Each is a thin adapter:
// the scan work lives in the class packages' *WithSnapshot primitives
// (and their string-keyed legacy twins), and the adapters wire those to
// the engine's shared snapshots, shared indexes and touched-list
// protocol.

// box lifts a class's typed violation slice into the mixed stream; any
// class whose violation type satisfies Violation rides it unchanged.
func box[T Violation](vs []T) []Violation {
	out := make([]Violation, len(vs))
	for i, v := range vs {
		out[i] = v
	}
	return out
}

// --- CFDs ----------------------------------------------------------------

type cfdConstraint struct{ c *cfd.CFD }

func (w cfdConstraint) Class() Class     { return ClassCFD }
func (w cfdConstraint) Dep() any         { return w.c }
func (w cfdConstraint) Primary() string  { return w.c.Schema().Name() }
func (w cfdConstraint) Reads() []string  { return []string{w.c.Schema().Name()} }
func (w cfdConstraint) Reqs() []IndexReq { return []IndexReq{{Rel: w.Primary(), Pos: w.c.LHS()}} }

func (w cfdConstraint) Eval(ctx *Ctx) []Violation {
	snap := ctx.Snapshot(w.Primary())
	if snap == nil {
		return nil
	}
	return box(cfd.DetectWithSnapshot(snap, w.c, ctx.Index(w.Primary(), w.c.LHS())))
}

func (w cfdConstraint) EvalLegacy(db *relation.Database) []Violation {
	in, ok := db.Instance(w.Primary())
	if !ok {
		return nil
	}
	return box(cfd.Detect(in, w.c))
}

func (w cfdConstraint) EvalTouched(ctx *Ctx, touched []relation.TID) []Violation {
	snap := ctx.Snapshot(w.Primary())
	if snap == nil {
		return nil
	}
	return box(cfd.DetectTouchedWithSnapshot(snap, w.c, ctx.Index(w.Primary(), w.c.LHS()), touched))
}

func (w cfdConstraint) Satisfied(ctx *Ctx) bool {
	snap := ctx.Snapshot(w.Primary())
	if snap == nil {
		return true
	}
	return cfd.SatisfiesWithSnapshot(snap, w.c, ctx.Index(w.Primary(), w.c.LHS()))
}

func (w cfdConstraint) Touched(tc *TouchCtx) []relation.TID {
	return fdTouched(tc, w.Primary(), w.c.LHS(), w.c.RHS())
}

// --- eCFDs ---------------------------------------------------------------

type ecfdConstraint struct{ e *ecfd.ECFD }

func (w ecfdConstraint) Class() Class     { return ClassECFD }
func (w ecfdConstraint) Dep() any         { return w.e }
func (w ecfdConstraint) Primary() string  { return w.e.Schema().Name() }
func (w ecfdConstraint) Reads() []string  { return []string{w.e.Schema().Name()} }
func (w ecfdConstraint) Reqs() []IndexReq { return []IndexReq{{Rel: w.Primary(), Pos: w.e.LHS()}} }

func (w ecfdConstraint) Eval(ctx *Ctx) []Violation {
	snap := ctx.Snapshot(w.Primary())
	if snap == nil {
		return nil
	}
	return box(ecfd.DetectWithSnapshot(snap, w.e, ctx.Index(w.Primary(), w.e.LHS())))
}

func (w ecfdConstraint) EvalLegacy(db *relation.Database) []Violation {
	in, ok := db.Instance(w.Primary())
	if !ok {
		return nil
	}
	return box(ecfd.Detect(in, w.e))
}

func (w ecfdConstraint) EvalTouched(ctx *Ctx, touched []relation.TID) []Violation {
	snap := ctx.Snapshot(w.Primary())
	if snap == nil {
		return nil
	}
	return box(ecfd.DetectTouchedWithSnapshot(snap, w.e, ctx.Index(w.Primary(), w.e.LHS()), touched))
}

func (w ecfdConstraint) Satisfied(ctx *Ctx) bool {
	snap := ctx.Snapshot(w.Primary())
	if snap == nil {
		return true
	}
	return ecfd.SatisfiesWithSnapshot(snap, w.e, ctx.Index(w.Primary(), w.e.LHS()))
}

func (w ecfdConstraint) Touched(tc *TouchCtx) []relation.TID {
	return fdTouched(tc, w.Primary(), w.e.LHS(), w.e.RHS())
}

// --- CINDs ---------------------------------------------------------------

type cindConstraint struct{ c *cind.CIND }

func (w cindConstraint) Class() Class    { return ClassCIND }
func (w cindConstraint) Dep() any        { return w.c }
func (w cindConstraint) Primary() string { return w.c.Src().Name() }

func (w cindConstraint) Reads() []string {
	src, dst := w.c.Src().Name(), w.c.Dst().Name()
	if src == dst {
		return []string{src}
	}
	return []string{src, dst}
}

func (w cindConstraint) Reqs() []IndexReq {
	return []IndexReq{
		{Rel: w.c.Src().Name(), Pos: w.c.SourceGroupPos()},
		{Rel: w.c.Dst().Name(), Pos: w.c.TargetKeyPos()},
	}
}

// snapshots resolves the CIND's source and target snapshots and shared
// indexes; dst stays nil for a missing target relation (every probe
// misses, like the empty instance the legacy path substitutes).
func (w cindConstraint) snapshots(ctx *Ctx) (src, dst *relation.Snapshot, srcIx, dstIx *relation.CodeIndex) {
	src = ctx.Snapshot(w.c.Src().Name())
	dst = ctx.Snapshot(w.c.Dst().Name())
	if src != nil {
		srcIx = ctx.Index(w.c.Src().Name(), w.c.SourceGroupPos())
	}
	if dst != nil {
		dstIx = ctx.Index(w.c.Dst().Name(), w.c.TargetKeyPos())
	}
	return
}

func (w cindConstraint) Eval(ctx *Ctx) []Violation {
	src, dst, srcIx, dstIx := w.snapshots(ctx)
	return box(cind.DetectWithSnapshot(src, dst, w.c, srcIx, dstIx))
}

func (w cindConstraint) EvalLegacy(db *relation.Database) []Violation {
	return box(cind.Detect(db, w.c))
}

func (w cindConstraint) EvalTouched(ctx *Ctx, touched []relation.TID) []Violation {
	src, dst, _, dstIx := w.snapshots(ctx)
	return box(cind.DetectTouchedWithSnapshot(src, dst, w.c, dstIx, touched))
}

func (w cindConstraint) Satisfied(ctx *Ctx) bool {
	src, dst, srcIx, dstIx := w.snapshots(ctx)
	return cind.SatisfiesWithSnapshot(src, dst, w.c, srcIx, dstIx)
}

// Touched covers both sides of the inclusion:
//
//   - source side: inserted and deleted source TIDs, plus source TIDs
//     updated on X ∪ Xp — any of these can change which pattern rows
//     the tuple matches or the key it probes with;
//   - target side: a target tuple entering, leaving, or changing its
//     Y ∪ Yp projection can flip the verdict of exactly the source
//     tuples whose X values equal its Y values, on either side of the
//     batch — those are found by probing the pre-batch source index on
//     X with the target tuple's old and new Y projections. (Probing the
//     old index suffices: a source tuple that itself moved is already
//     in the list via the source side.) Yp-only changes ride the same
//     probes, since Y is then unchanged.
func (w cindConstraint) Touched(tc *TouchCtx) []relation.TID {
	c := w.c
	srcRel, dstRel := c.Src().Name(), c.Dst().Name()
	set := make(map[relation.TID]struct{})
	srcPos := c.SourceGroupPos()
	if d := tc.Delta(srcRel); d != nil {
		for _, id := range d.Inserted {
			set[id] = struct{}{}
		}
		for _, id := range d.Deleted {
			set[id] = struct{}{}
		}
		for id := range d.Updated {
			if d.Touches(id, srcPos) {
				set[id] = struct{}{}
			}
		}
	}
	if d := tc.Delta(dstRel); d != nil && !d.Empty() {
		oldSrc := tc.Old(srcRel)
		oldDst, newDst := tc.Old(dstRel), tc.New(dstRel)
		if oldSrc != nil {
			srcX := oldSrc.CodeIndexOn(c.X())
			keyPos := c.TargetKeyPos()
			vals := make([]relation.Value, len(c.Y()))
			probe := func(snap *relation.Snapshot, id relation.TID) {
				if snap == nil {
					return
				}
				r, ok := snap.Row(id)
				if !ok {
					return
				}
				for i, p := range c.Y() {
					vals[i] = snap.Value(r, p)
				}
				for _, sid := range srcX.LookupValues(vals) {
					set[sid] = struct{}{}
				}
			}
			for _, id := range d.Inserted {
				probe(newDst, id)
			}
			for _, id := range d.Deleted {
				probe(oldDst, id)
			}
			for id := range d.Updated {
				if d.Touches(id, keyPos) {
					probe(oldDst, id)
					probe(newDst, id)
				}
			}
		}
	}
	return sortedTIDs(set)
}

// --- shared touched-list machinery ---------------------------------------

// fdTouched is the shared CFD/eCFD touched-list builder: both classes
// group the primary relation by an LHS position set and report
// violations within groups, so the same delta reasoning applies —
// every inserted or deleted TID; updated TIDs whose positions intersect
// LHS ∪ RHS; and the group co-members that keep shrunken or joined
// groups covered on both sides of the batch (see TouchCtx.CoMembers).
func fdTouched(tc *TouchCtx, rel string, lhs, rhs []int) []relation.TID {
	d := tc.Delta(rel)
	if d == nil || d.Empty() {
		return nil
	}
	set := make(map[relation.TID]struct{})
	for _, id := range d.Inserted {
		set[id] = struct{}{}
	}
	for _, id := range d.Deleted {
		set[id] = struct{}{}
	}
	for id := range d.Updated {
		if d.Touches(id, lhs) || d.Touches(id, rhs) {
			set[id] = struct{}{}
		}
	}
	for _, id := range tc.CoMembers(rel, lhs) {
		set[id] = struct{}{}
	}
	if len(set) == 0 {
		return nil
	}
	return sortedTIDs(set)
}

func sortedTIDs(set map[relation.TID]struct{}) []relation.TID {
	if len(set) == 0 {
		return nil
	}
	out := make([]relation.TID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
