// Package fault is the deterministic fault-injection layer behind the
// chaos and fault-matrix tests: an injectable filesystem seam (FS/File)
// that internal/wal and relation.WriteCheckpoint write through, plus an
// Injector that wraps the real filesystem and fires scripted faults —
// fail the Nth write, short-write a frame, ENOSPC, EIO on fsync, added
// latency — exactly where a scenario spec says to.
//
// The design splits "where faults can happen" from "which faults
// happen". The seam is the FS interface: production code takes an FS
// (defaulting to OS, a thin passthrough to package os) and never calls
// os.* directly on its durability paths. Faults are data: a Scenario is
// a named list of Fault rules, each matching an operation class and a
// path substring and firing on a counted occurrence. Tests enumerate a
// fault matrix by iterating scenarios instead of hand-rolling one-off
// mock writers; the Injector records every fired fault so a test can
// assert the schedule actually happened (a scenario whose trigger never
// matched is a broken test, not a passing one).
//
// Errors are injected as real errno values (syscall.ENOSPC, syscall.EIO)
// wrapped in *os.PathError, so production classification — retryable
// ENOSPC vs fail-stop EIO — exercises the same errors.Is paths a real
// kernel failure would.
package fault

import (
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"syscall"
	"time"
)

// Op is the class of filesystem operation a Fault matches.
type Op string

const (
	OpOpen     Op = "open"     // OpenFile (any flags)
	OpWrite    Op = "write"    // File.Write
	OpSync     Op = "sync"     // File.Sync
	OpTruncate Op = "truncate" // File.Truncate
	OpClose    Op = "close"    // File.Close
	OpRename   Op = "rename"   // FS.Rename (matched on the new path)
	OpRemove   Op = "remove"   // FS.Remove / FS.RemoveAll
	OpMkdir    Op = "mkdir"    // FS.MkdirAll
	OpRead     Op = "read"     // File.Read
)

// Errors commonly injected; real errnos so errors.Is classification in
// production code sees exactly what a kernel failure would produce.
var (
	ENOSPC = syscall.ENOSPC
	EIO    = syscall.EIO
)

// File is the subset of *os.File the durability paths use.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	io.Seeker
	Sync() error
	Truncate(size int64) error
	Stat() (os.FileInfo, error)
}

// FS is the filesystem seam. OS is the passthrough implementation;
// NewInjector wraps any FS with scripted faults.
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Open(name string) (File, error)
	MkdirAll(path string, perm os.FileMode) error
	Rename(oldpath, newpath string) error
	Remove(name string) error
	RemoveAll(path string) error
	ReadDir(name string) ([]os.DirEntry, error)
	ReadFile(name string) ([]byte, error)
	Stat(name string) (os.FileInfo, error)
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) Open(name string) (File, error)               { return os.Open(name) }
func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) RemoveAll(path string) error                  { return os.RemoveAll(path) }
func (osFS) ReadDir(name string) ([]os.DirEntry, error)   { return os.ReadDir(name) }
func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) Stat(name string) (os.FileInfo, error)        { return os.Stat(name) }

// Fault is one injection rule. A rule matches calls by operation class
// and path substring; occurrences of matching calls are counted per
// rule, and the rule fires on occurrences [Nth, Nth+Count-1] (Nth == 0
// means every occurrence; Count == 0 with Nth > 0 means exactly once).
// What firing does:
//
//   - Delay > 0: sleep before the operation proceeds (with Err == nil
//     and Short == 0 the operation then runs normally — a pure latency
//     fault).
//   - Short > 0 (OpWrite only): write only the first Short bytes to the
//     underlying file, then report Err (io.ErrShortWrite when Err is
//     nil) — a torn write: the partial bytes ARE on the file.
//   - Err != nil: return Err wrapped in *os.PathError without invoking
//     the underlying operation.
type Fault struct {
	Op    Op
	Path  string // substring the path must contain; "" matches any
	Nth   int    // 1-based first matching occurrence to fire on; 0 = all
	Count int    // occurrences to fire for from Nth on; 0 = once (or all when Nth == 0)
	Err   error
	Short int
	Delay time.Duration
}

// matches reports whether the rule covers this call at all (class and
// path), independent of the occurrence count.
func (f *Fault) matches(op Op, path string) bool {
	return f.Op == op && (f.Path == "" || strings.Contains(path, f.Path))
}

// Scenario is a named fault schedule — the unit the fault-matrix tests
// enumerate.
type Scenario struct {
	Name   string
	Faults []Fault
}

// Event records one fired fault for test assertions.
type Event struct {
	Op   Op
	Path string
	N    int // the occurrence number that fired
	Err  error
}

func (e Event) String() string {
	return fmt.Sprintf("%s %s #%d -> %v", e.Op, e.Path, e.N, e.Err)
}

// Injector is an FS that fires a Scenario's faults over a base FS. All
// methods are safe for concurrent use.
type Injector struct {
	base FS

	mu    sync.Mutex
	rules []*rule
	log   []Event
}

type rule struct {
	Fault
	seen int // matching occurrences so far
}

// NewInjector wraps base with the scenario's fault schedule.
func NewInjector(base FS, sc Scenario) *Injector {
	inj := &Injector{base: base}
	for _, f := range sc.Faults {
		inj.rules = append(inj.rules, &rule{Fault: f})
	}
	return inj
}

// Fired returns the events injected so far, in firing order.
func (inj *Injector) Fired() []Event {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return append([]Event(nil), inj.log...)
}

// FiredCount returns how many faults have fired.
func (inj *Injector) FiredCount() int {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return len(inj.log)
}

// Disarm clears the remaining schedule: subsequent calls pass through
// untouched. The fired log is kept.
func (inj *Injector) Disarm() {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.rules = nil
}

// hit consults the schedule for one call. It returns the fault to apply
// (nil = proceed normally) after any injected latency has elapsed.
func (inj *Injector) hit(op Op, path string) *Fault {
	inj.mu.Lock()
	var fired *Fault
	var delay time.Duration
	var n int
	for _, r := range inj.rules {
		if !r.matches(op, path) {
			continue
		}
		r.seen++
		fire := false
		switch {
		case r.Nth == 0:
			fire = true
		case r.seen >= r.Nth:
			count := r.Count
			if count == 0 {
				count = 1
			}
			fire = r.seen < r.Nth+count
		}
		if fire {
			f := r.Fault
			fired, delay, n = &f, r.Delay, r.seen
			break
		}
	}
	if fired != nil && (fired.Err != nil || fired.Short > 0) {
		inj.log = append(inj.log, Event{Op: op, Path: path, N: n, Err: fired.Err})
	}
	inj.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	return fired
}

// pathErr wraps an injected errno the way the os package would.
func pathErr(op Op, path string, err error) error {
	return &os.PathError{Op: string(op), Path: path, Err: err}
}

func (inj *Injector) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if f := inj.hit(OpOpen, name); f != nil && f.Err != nil {
		return nil, pathErr(OpOpen, name, f.Err)
	}
	file, err := inj.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injFile{inj: inj, f: file, name: name}, nil
}

func (inj *Injector) Open(name string) (File, error) {
	return inj.OpenFile(name, os.O_RDONLY, 0)
}

func (inj *Injector) MkdirAll(path string, perm os.FileMode) error {
	if f := inj.hit(OpMkdir, path); f != nil && f.Err != nil {
		return pathErr(OpMkdir, path, f.Err)
	}
	return inj.base.MkdirAll(path, perm)
}

func (inj *Injector) Rename(oldpath, newpath string) error {
	if f := inj.hit(OpRename, newpath); f != nil && f.Err != nil {
		return pathErr(OpRename, newpath, f.Err)
	}
	return inj.base.Rename(oldpath, newpath)
}

func (inj *Injector) Remove(name string) error {
	if f := inj.hit(OpRemove, name); f != nil && f.Err != nil {
		return pathErr(OpRemove, name, f.Err)
	}
	return inj.base.Remove(name)
}

func (inj *Injector) RemoveAll(path string) error {
	if f := inj.hit(OpRemove, path); f != nil && f.Err != nil {
		return pathErr(OpRemove, path, f.Err)
	}
	return inj.base.RemoveAll(path)
}

func (inj *Injector) ReadDir(name string) ([]os.DirEntry, error) { return inj.base.ReadDir(name) }
func (inj *Injector) ReadFile(name string) ([]byte, error)       { return inj.base.ReadFile(name) }
func (inj *Injector) Stat(name string) (os.FileInfo, error)      { return inj.base.Stat(name) }

// injFile applies write/sync/truncate/read faults on one open file.
type injFile struct {
	inj  *Injector
	f    File
	name string
}

func (w *injFile) Write(p []byte) (int, error) {
	switch f := w.inj.hit(OpWrite, w.name); {
	case f == nil:
		return w.f.Write(p)
	case f.Short > 0:
		short := f.Short
		if short > len(p) {
			short = len(p)
		}
		n, err := w.f.Write(p[:short])
		if err != nil {
			return n, err
		}
		if f.Err != nil {
			return n, pathErr(OpWrite, w.name, f.Err)
		}
		return n, io.ErrShortWrite
	case f.Err != nil:
		return 0, pathErr(OpWrite, w.name, f.Err)
	default: // pure latency
		return w.f.Write(p)
	}
}

func (w *injFile) Read(p []byte) (int, error) {
	if f := w.inj.hit(OpRead, w.name); f != nil && f.Err != nil {
		return 0, pathErr(OpRead, w.name, f.Err)
	}
	return w.f.Read(p)
}

func (w *injFile) Sync() error {
	if f := w.inj.hit(OpSync, w.name); f != nil && f.Err != nil {
		return pathErr(OpSync, w.name, f.Err)
	}
	return w.f.Sync()
}

func (w *injFile) Truncate(size int64) error {
	if f := w.inj.hit(OpTruncate, w.name); f != nil && f.Err != nil {
		return pathErr(OpTruncate, w.name, f.Err)
	}
	return w.f.Truncate(size)
}

func (w *injFile) Close() error {
	if f := w.inj.hit(OpClose, w.name); f != nil && f.Err != nil {
		w.f.Close() // still release the descriptor
		return pathErr(OpClose, w.name, f.Err)
	}
	return w.f.Close()
}

func (w *injFile) Seek(offset int64, whence int) (int64, error) { return w.f.Seek(offset, whence) }
func (w *injFile) Stat() (os.FileInfo, error)                   { return w.f.Stat() }
