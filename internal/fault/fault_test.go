package fault

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func writeThrough(t *testing.T, fs FS, path string, chunks ...[]byte) error {
	t.Helper()
	f, err := fs.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	for _, c := range chunks {
		if _, err := f.Write(c); err != nil {
			return err
		}
	}
	return f.Sync()
}

// TestFailNthWrite: only the scheduled occurrence fails; the file keeps
// the bytes of the writes around it.
func TestFailNthWrite(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS, Scenario{Name: "nth", Faults: []Fault{
		{Op: OpWrite, Nth: 2, Err: ENOSPC},
	}})
	path := filepath.Join(dir, "f")
	f, err := inj.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("aa")); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	if _, err := f.Write([]byte("bb")); !errors.Is(err, ENOSPC) {
		t.Fatalf("write 2: err = %v, want ENOSPC", err)
	}
	if _, err := f.Write([]byte("cc")); err != nil {
		t.Fatalf("write 3: %v", err)
	}
	data, _ := os.ReadFile(path)
	if string(data) != "aacc" {
		t.Fatalf("file = %q, want %q", data, "aacc")
	}
	if got := inj.FiredCount(); got != 1 {
		t.Fatalf("fired %d, want 1", got)
	}
}

// TestShortWrite: the partial prefix lands on disk and the caller sees
// a short-write error.
func TestShortWrite(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS, Scenario{Faults: []Fault{
		{Op: OpWrite, Nth: 1, Short: 3},
	}})
	path := filepath.Join(dir, "f")
	f, _ := inj.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	defer f.Close()
	n, err := f.Write([]byte("abcdef"))
	if n != 3 || !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("short write: n=%d err=%v", n, err)
	}
	data, _ := os.ReadFile(path)
	if string(data) != "abc" {
		t.Fatalf("file = %q, want %q", data, "abc")
	}
}

// TestCountWindow: Nth+Count fires a contiguous window then stops.
func TestCountWindow(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS, Scenario{Faults: []Fault{
		{Op: OpSync, Nth: 2, Count: 2, Err: EIO},
	}})
	path := filepath.Join(dir, "f")
	f, _ := inj.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	defer f.Close()
	got := []bool{}
	for i := 0; i < 5; i++ {
		got = append(got, f.Sync() != nil)
	}
	want := []bool{false, true, true, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sync %d failed=%v, want %v (all %v)", i+1, got[i], want[i], got)
		}
	}
}

// TestPathFilter: faults only fire on paths containing the substring.
func TestPathFilter(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS, Scenario{Faults: []Fault{
		{Op: OpSync, Path: ".wal", Nth: 0, Err: EIO},
	}})
	if err := writeThrough(t, inj, filepath.Join(dir, "plain.dat"), []byte("x")); err != nil {
		t.Fatalf("plain file hit the fault: %v", err)
	}
	err := writeThrough(t, inj, filepath.Join(dir, "0001.wal"), []byte("x"))
	if !errors.Is(err, EIO) {
		t.Fatalf("wal sync err = %v, want EIO", err)
	}
}

// TestErrnoWrapping: injected errors come wrapped as *os.PathError over
// the real errno, like a kernel failure.
func TestErrnoWrapping(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS, Scenario{Faults: []Fault{
		{Op: OpWrite, Nth: 1, Err: ENOSPC},
	}})
	f, _ := inj.OpenFile(filepath.Join(dir, "f"), os.O_RDWR|os.O_CREATE, 0o644)
	defer f.Close()
	_, err := f.Write([]byte("x"))
	var pe *os.PathError
	if !errors.As(err, &pe) || !errors.Is(err, ENOSPC) {
		t.Fatalf("err = %#v, want *os.PathError wrapping ENOSPC", err)
	}
}

// TestLatencyOnly: a Delay-only fault slows the call but does not fail
// it or log an event.
func TestLatencyOnly(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS, Scenario{Faults: []Fault{
		{Op: OpWrite, Nth: 1, Delay: 20 * time.Millisecond},
	}})
	f, _ := inj.OpenFile(filepath.Join(dir, "f"), os.O_RDWR|os.O_CREATE, 0o644)
	defer f.Close()
	start := time.Now()
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatalf("latency fault failed the write: %v", err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("write took %v, want >= 20ms of injected latency", d)
	}
	if inj.FiredCount() != 0 {
		t.Fatal("latency-only fault logged an error event")
	}
}

// TestDisarm: after Disarm the schedule is inert.
func TestDisarm(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS, Scenario{Faults: []Fault{
		{Op: OpWrite, Nth: 0, Err: EIO},
	}})
	inj.Disarm()
	if err := writeThrough(t, inj, filepath.Join(dir, "f"), []byte("x")); err != nil {
		t.Fatalf("disarmed injector still fired: %v", err)
	}
}
