// Package discovery implements dependency profiling: discovering FDs and
// constant CFDs that hold in a given instance. The paper motivates
// dependency-based cleaning with "profiling methods for dependencies ...
// for deducing and discovering rules for cleaning the data" (Section 1);
// this package provides the classic partition-refinement (TANE-style)
// levelwise search for minimal FDs and a frequent-pattern miner for
// constant CFDs (CFDMiner-style), both exact on the given instance.
package discovery

import (
	"fmt"
	"sort"

	"repro/internal/cfd"
	"repro/internal/relation"
)

// Options bounds the search.
type Options struct {
	// MaxLHS bounds the size of discovered left-hand sides (default 3).
	MaxLHS int
	// MinSupport is the minimum number of tuples a constant pattern must
	// cover to be reported (default 2).
	MinSupport int
}

func (o Options) withDefaults() Options {
	if o.MaxLHS <= 0 {
		o.MaxLHS = 3
	}
	if o.MinSupport <= 0 {
		o.MinSupport = 2
	}
	return o
}

// partition is the stripped partition of an attribute set: the tuple
// groups sharing a projection, singletons dropped.
type partition struct {
	groups [][]relation.TID
	nTotal int // total tuples covered by non-singleton groups
}

// partitionOf computes the partition of the instance under positions.
func partitionOf(in *relation.Instance, pos []int) partition {
	buckets := make(map[string][]relation.TID)
	for _, id := range in.IDs() {
		t, _ := in.Tuple(id)
		buckets[t.KeyOn(pos)] = append(buckets[t.KeyOn(pos)], id)
	}
	var p partition
	var keys []string
	for k := range buckets {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		g := buckets[k]
		if len(g) > 1 {
			p.groups = append(p.groups, g)
			p.nTotal += len(g)
		}
	}
	return p
}

// errorOf counts how many tuples would need to change for X → A to hold:
// within each X-group, all but the plurality A-value are errors.
func errorOf(in *relation.Instance, lhs []int, a int) int {
	p := partitionOf(in, lhs)
	errs := 0
	for _, g := range p.groups {
		counts := make(map[string]int)
		best := 0
		for _, id := range g {
			t, _ := in.Tuple(id)
			k := t[a].Key()
			counts[k]++
			if counts[k] > best {
				best = counts[k]
			}
		}
		errs += len(g) - best
	}
	return errs
}

// DiscoverFDs finds the minimal traditional FDs X → A (|X| ≤ MaxLHS)
// holding in the instance, returned as CFDs. Minimality: no proper subset
// of X determines A; trivial FDs (A ∈ X) are excluded.
func DiscoverFDs(in *relation.Instance, opts Options) []*cfd.CFD {
	opts = opts.withDefaults()
	s := in.Schema()
	n := s.Arity()

	holds := func(lhs []int, a int) bool { return errorOf(in, lhs, a) == 0 }

	// found[a] collects the minimal LHSs per RHS attribute.
	found := make(map[int][][]int)
	isMinimal := func(lhs []int, a int) bool {
		for _, prev := range found[a] {
			if subset(prev, lhs) {
				return false
			}
		}
		return true
	}

	var out []*cfd.CFD
	var subsets func(start int, cur []int)
	levels := make([][][]int, opts.MaxLHS+1)
	subsets = func(start int, cur []int) {
		if len(cur) > 0 && len(cur) <= opts.MaxLHS {
			levels[len(cur)] = append(levels[len(cur)], append([]int(nil), cur...))
		}
		if len(cur) == opts.MaxLHS {
			return
		}
		for i := start; i < n; i++ {
			subsets(i+1, append(cur, i))
		}
	}
	subsets(0, nil)

	for size := 1; size <= opts.MaxLHS; size++ {
		for _, lhs := range levels[size] {
			for a := 0; a < n; a++ {
				if contains(lhs, a) || !isMinimal(lhs, a) {
					continue
				}
				if holds(lhs, a) {
					found[a] = append(found[a], lhs)
					out = append(out, cfd.MustFD(s, names(s, lhs), []string{s.Attr(a).Name}))
				}
			}
		}
	}
	return out
}

// ConstantCFD is a discovered constant pattern: when the LHS attributes
// take the listed constants, the RHS attribute always takes its constant.
type ConstantCFD struct {
	LHS     []int
	LHSVals []relation.Value
	RHS     int
	RHSVal  relation.Value
	Support int
}

// String renders the discovered rule.
func (c ConstantCFD) String() string {
	return fmt.Sprintf("lhs=%v vals=%v → attr %d = %v (support %d)", c.LHS, c.LHSVals, c.RHS, c.RHSVal, c.Support)
}

// DiscoverConstantCFDs mines constant CFDs: for every LHS set (|X| ≤
// MaxLHS) and every X-value combination with at least MinSupport tuples,
// if all covered tuples agree on some attribute A ∉ X, the constant rule
// (X = x̄ → A = a) is reported. Rules implied by a reported rule with a
// smaller LHS on the same RHS value are pruned.
func DiscoverConstantCFDs(in *relation.Instance, opts Options) []*cfd.CFD {
	opts = opts.withDefaults()
	s := in.Schema()
	n := s.Arity()

	var raw []ConstantCFD
	var lhsSets [][]int
	var subsets func(start int, cur []int)
	subsets = func(start int, cur []int) {
		if len(cur) > 0 && len(cur) <= opts.MaxLHS {
			lhsSets = append(lhsSets, append([]int(nil), cur...))
		}
		if len(cur) == opts.MaxLHS {
			return
		}
		for i := start; i < n; i++ {
			subsets(i+1, append(cur, i))
		}
	}
	subsets(0, nil)

	for _, lhs := range lhsSets {
		buckets := make(map[string][]relation.TID)
		for _, id := range in.IDs() {
			t, _ := in.Tuple(id)
			buckets[t.KeyOn(lhs)] = append(buckets[t.KeyOn(lhs)], id)
		}
		var keys []string
		for k := range buckets {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			g := buckets[k]
			if len(g) < opts.MinSupport {
				continue
			}
			t0, _ := in.Tuple(g[0])
			for a := 0; a < n; a++ {
				if contains(lhs, a) {
					continue
				}
				same := true
				for _, id := range g[1:] {
					t, _ := in.Tuple(id)
					if !t[a].Equal(t0[a]) {
						same = false
						break
					}
				}
				if !same {
					continue
				}
				raw = append(raw, ConstantCFD{
					LHS:     lhs,
					LHSVals: t0.Project(lhs),
					RHS:     a,
					RHSVal:  t0[a],
					Support: len(g),
				})
			}
		}
	}

	// Prune: a rule is redundant if some reported rule with a subset LHS
	// (and matching constants there) already forces the same RHS value.
	pruned := raw[:0]
	for i, c := range raw {
		redundant := false
		for j, d := range raw {
			if i == j || c.RHS != d.RHS || !c.RHSVal.Equal(d.RHSVal) {
				continue
			}
			if len(d.LHS) < len(c.LHS) && lhsSubsumes(d, c) {
				redundant = true
				break
			}
		}
		if !redundant {
			pruned = append(pruned, c)
		}
	}

	// Assemble into CFDs, one tableau per (LHS set, RHS attribute).
	type groupKey struct {
		lhsKey string
		rhs    int
	}
	grouped := make(map[groupKey][]ConstantCFD)
	var order []groupKey
	for _, c := range pruned {
		k := groupKey{fmt.Sprint(c.LHS), c.RHS}
		if _, ok := grouped[k]; !ok {
			order = append(order, k)
		}
		grouped[k] = append(grouped[k], c)
	}
	var out []*cfd.CFD
	for _, k := range order {
		rules := grouped[k]
		lhsNames := names(s, rules[0].LHS)
		rhsName := s.Attr(rules[0].RHS).Name
		var rows []cfd.PatternRow
		for _, r := range rules {
			cells := make([]cfd.Cell, len(r.LHSVals))
			for i, v := range r.LHSVals {
				cells[i] = cfd.Const(v)
			}
			rows = append(rows, cfd.Row(cells, []cfd.Cell{cfd.Const(r.RHSVal)}))
		}
		c, err := cfd.New(s, lhsNames, []string{rhsName}, rows...)
		if err == nil {
			out = append(out, c)
		}
	}
	return out
}

// lhsSubsumes reports whether d's LHS (with its constants) is a subset of
// c's LHS bindings.
func lhsSubsumes(d, c ConstantCFD) bool {
	for i, p := range d.LHS {
		found := false
		for j, q := range c.LHS {
			if p == q && d.LHSVals[i].Equal(c.LHSVals[j]) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// ApproxFDError returns the fraction of tuples that must change for
// X → A to hold (the g3 error measure of approximate FD discovery).
func ApproxFDError(in *relation.Instance, lhs []string, rhs string) (float64, error) {
	s := in.Schema()
	lp, err := s.Positions(lhs)
	if err != nil {
		return 0, fmt.Errorf("discovery: %v", err)
	}
	rp, ok := s.Lookup(rhs)
	if !ok {
		return 0, fmt.Errorf("discovery: no attribute %q", rhs)
	}
	if in.Len() == 0 {
		return 0, nil
	}
	return float64(errorOf(in, lp, rp)) / float64(in.Len()), nil
}

func names(s *relation.Schema, pos []int) []string {
	out := make([]string, len(pos))
	for i, p := range pos {
		out[i] = s.Attr(p).Name
	}
	return out
}

func contains(xs []int, x int) bool {
	for _, y := range xs {
		if y == x {
			return true
		}
	}
	return false
}

func subset(a, b []int) bool {
	for _, x := range a {
		if !contains(b, x) {
			return false
		}
	}
	return true
}
