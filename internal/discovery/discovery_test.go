package discovery_test

import (
	"testing"

	"repro/internal/cfd"
	"repro/internal/discovery"
	"repro/internal/gen"
	"repro/internal/paperdata"
	"repro/internal/relation"
)

func TestDiscoverFDsBasic(t *testing.T) {
	s := relation.MustSchema("r",
		relation.Attr("a", relation.KindString),
		relation.Attr("b", relation.KindString),
		relation.Attr("c", relation.KindString),
	)
	in := relation.NewInstance(s)
	// a determines b; c is free.
	in.MustInsert(relation.Str("a1"), relation.Str("b1"), relation.Str("x"))
	in.MustInsert(relation.Str("a1"), relation.Str("b1"), relation.Str("y"))
	in.MustInsert(relation.Str("a2"), relation.Str("b2"), relation.Str("x"))
	in.MustInsert(relation.Str("a2"), relation.Str("b2"), relation.Str("y"))
	fds := discovery.DiscoverFDs(in, discovery.Options{MaxLHS: 2})
	if !hasFD(fds, []string{"a"}, "b") {
		t.Errorf("a → b not discovered: %v", fds)
	}
	if hasFD(fds, []string{"a"}, "c") {
		t.Error("a → c does not hold")
	}
	// Minimality: since a → b holds, (a, c) → b must not be reported.
	if hasFD(fds, []string{"a", "c"}, "b") {
		t.Error("non-minimal FD reported")
	}
	// Every reported FD actually holds.
	for _, f := range fds {
		if !cfd.Satisfies(in, f) {
			t.Errorf("discovered FD %v does not hold", f)
		}
	}
}

func hasFD(fds []*cfd.CFD, lhs []string, rhs string) bool {
	for _, f := range fds {
		if len(f.RHSNames()) != 1 || f.RHSNames()[0] != rhs {
			continue
		}
		if len(f.LHSNames()) != len(lhs) {
			continue
		}
		ok := true
		for i, n := range f.LHSNames() {
			if n != lhs[i] {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// TestDiscoverCFDsOnCustomer re-discovers the Figure 2 invariants from
// clean generated customer data: UK zips determine streets, and the
// (CC, AC) → city rule shows up as constant patterns (44,131 → EDI).
func TestDiscoverCFDsOnCustomer(t *testing.T) {
	in := gen.Customers(gen.CustomerConfig{N: 150, Seed: 5, ErrorRate: 0})
	s := in.Schema()

	// Constant CFDs: (CC=44, AC=131) → city=EDI must be mined.
	consts := discovery.DiscoverConstantCFDs(in, discovery.Options{MaxLHS: 2, MinSupport: 3})
	foundEDI := false
	for _, c := range consts {
		if len(c.RHSNames()) == 1 && c.RHSNames()[0] == "city" {
			for _, row := range c.Tableau() {
				if !row.RHS[0].IsWildcard() && row.RHS[0].Value().StrVal() == "EDI" {
					// LHS must pin CC=44, AC=131 (as a sub-pattern).
					lhsNames := c.LHSNames()
					vals := map[string]string{}
					for i, cell := range row.LHS {
						if !cell.IsWildcard() {
							vals[lhsNames[i]] = cell.Value().String()
						}
					}
					if vals["AC"] == "131" {
						foundEDI = true
					}
				}
			}
		}
	}
	if !foundEDI {
		t.Error("constant CFD AC=131 → city=EDI not mined")
	}
	// Every mined rule holds on the data.
	for _, c := range consts {
		if !cfd.Satisfies(in, c) {
			t.Errorf("mined rule %v does not hold", c)
		}
	}
	_ = s
}

func TestDiscoveryFindsViolatedRulesApproximately(t *testing.T) {
	clean := gen.Customers(gen.CustomerConfig{N: 200, Seed: 9, ErrorRate: 0})
	dirty := gen.Customers(gen.CustomerConfig{N: 200, Seed: 9, ErrorRate: 0.05})
	// ϕ1's embedded FD zip → street holds exactly on the UK slice of the
	// clean data — and only there, which is exactly the paper's point
	// about conditional dependencies (US zips do not determine streets).
	ukOnly := func(in *relation.Instance) *relation.Instance {
		s := in.Schema()
		cc := s.MustLookup("CC")
		out := relation.NewInstance(s)
		for _, tu := range in.Tuples() {
			if tu[cc].IntVal() == 44 {
				out.MustInsert(tu...)
			}
		}
		return out
	}
	errClean, err := discovery.ApproxFDError(ukOnly(clean), []string{"zip"}, "street")
	if err != nil {
		t.Fatal(err)
	}
	if errClean != 0 {
		t.Errorf("clean UK g3 error = %v, want 0", errClean)
	}
	errDirty, err := discovery.ApproxFDError(ukOnly(dirty), []string{"zip"}, "street")
	if err != nil {
		t.Fatal(err)
	}
	if errDirty <= 0 || errDirty > 0.25 {
		t.Errorf("dirty UK g3 error = %v, want small positive", errDirty)
	}
	if _, err := discovery.ApproxFDError(clean, []string{"ghost"}, "street"); err == nil {
		t.Error("want error for unknown attribute")
	}
	if _, err := discovery.ApproxFDError(clean, []string{"CC"}, "ghost"); err == nil {
		t.Error("want error for unknown RHS")
	}
	empty := relation.NewInstance(paperdata.CustomerSchema())
	if e, err := discovery.ApproxFDError(empty, []string{"CC"}, "street"); err != nil || e != 0 {
		t.Errorf("empty instance error = %v, %v", e, err)
	}
}

func TestConstantCFDPruning(t *testing.T) {
	s := relation.MustSchema("r",
		relation.Attr("a", relation.KindString),
		relation.Attr("b", relation.KindString),
		relation.Attr("c", relation.KindString),
	)
	in := relation.NewInstance(s)
	// a=x forces c=z (support 4); the longer rule (a=x, b=*) → c=z is
	// redundant.
	in.MustInsert(relation.Str("x"), relation.Str("p"), relation.Str("z"))
	in.MustInsert(relation.Str("x"), relation.Str("p"), relation.Str("z"))
	in.MustInsert(relation.Str("x"), relation.Str("q"), relation.Str("z"))
	in.MustInsert(relation.Str("x"), relation.Str("q"), relation.Str("z"))
	rules := discovery.DiscoverConstantCFDs(in, discovery.Options{MaxLHS: 2, MinSupport: 2})
	for _, r := range rules {
		if len(r.LHSNames()) == 2 && r.RHSNames()[0] == "c" {
			for _, row := range r.Tableau() {
				if row.RHS[0].Value().StrVal() == "z" {
					t.Errorf("redundant longer rule survived pruning: %v", r)
				}
			}
		}
	}
	// The short rule is there.
	found := false
	for _, r := range rules {
		if len(r.LHSNames()) == 1 && r.LHSNames()[0] == "a" && r.RHSNames()[0] == "c" {
			found = true
		}
	}
	if !found {
		t.Errorf("a=x → c=z missing: %v", rules)
	}
}

func TestDiscoveredRulesDetectInjectedErrors(t *testing.T) {
	// Rules mined from clean data catch errors in dirty data — the
	// profiling-to-cleaning loop of Section 1.
	clean := gen.Customers(gen.CustomerConfig{N: 300, Seed: 21, ErrorRate: 0})
	dirty := gen.Customers(gen.CustomerConfig{N: 300, Seed: 21, ErrorRate: 0.05})
	rules := discovery.DiscoverConstantCFDs(clean, discovery.Options{MaxLHS: 2, MinSupport: 5})
	if len(rules) == 0 {
		t.Fatal("no rules mined")
	}
	violations := 0
	for _, r := range rules {
		violations += len(cfd.Detect(dirty, r))
	}
	if violations == 0 {
		t.Error("mined rules caught no injected errors")
	}
}
