// Streaming quality analytics: per-constraint violation-count time
// series over fixed-capacity ring buffers, sliding-window rate
// summaries, and a bootstrap change-point detector in the CUSUM style
// (Taylor's change-point analysis): a regime change in the
// gained-per-commit series is located at the CUSUM extremum and scored
// by how often random shuffles of the window reproduce an excursion as
// large — the confidence. Magnitude guards (minimum mean shift and
// before/after factor) keep stationary noise from alerting, and the
// cheap guard runs before the bootstrap so the steady-state cost per
// commit is one O(window) pass per constraint.
package obs

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
)

// Series is a fixed-capacity ring buffer of (seq, value) points,
// oldest first. Not safe for concurrent use; the Tracker serializes
// access.
type Series struct {
	seqs  []uint64
	vals  []float64
	start int
	n     int
}

// NewSeries returns an empty series holding at most capacity points;
// appending past capacity evicts the oldest.
func NewSeries(capacity int) *Series {
	if capacity < 1 {
		capacity = 1
	}
	return &Series{seqs: make([]uint64, capacity), vals: make([]float64, capacity)}
}

// Append records one point, evicting the oldest when full.
func (s *Series) Append(seq uint64, v float64) {
	i := (s.start + s.n) % len(s.vals)
	s.seqs[i] = seq
	s.vals[i] = v
	if s.n < len(s.vals) {
		s.n++
	} else {
		s.start = (s.start + 1) % len(s.vals)
	}
}

// Len returns the number of held points.
func (s *Series) Len() int { return s.n }

// At returns the i-th point, oldest first (0 <= i < Len).
func (s *Series) At(i int) (seq uint64, v float64) {
	j := (s.start + i) % len(s.vals)
	return s.seqs[j], s.vals[j]
}

// after appends to dst the values of every point with seq > anchor,
// capped to the most recent max points (0 = uncapped), alongside the
// matching seqs. Helper for the detector window.
func (s *Series) after(anchor uint64, max int, seqs []uint64, vals []float64) ([]uint64, []float64) {
	first := 0
	for ; first < s.n; first++ {
		if seq, _ := s.At(first); seq > anchor {
			break
		}
	}
	if max > 0 && s.n-first > max {
		first = s.n - max
	}
	for i := first; i < s.n; i++ {
		seq, v := s.At(i)
		seqs = append(seqs, seq)
		vals = append(vals, v)
	}
	return seqs, vals
}

// DetectorConfig tunes the bootstrap change-point detector. The zero
// value gets usable defaults.
type DetectorConfig struct {
	// MinSegment is the minimum points required on each side of a
	// candidate change point (default 3): the floor on detection
	// latency and the guard against one-sample "regimes".
	MinSegment int
	// MaxWindow caps how many trailing points the detector examines per
	// commit (default 128) — bounds the per-commit cost.
	MaxWindow int
	// Bootstraps is the number of random shuffles scoring a candidate
	// (default 199). Only candidates that pass the magnitude guards pay
	// this cost.
	Bootstraps int
	// Confidence is the minimum bootstrap confidence to flag a change
	// point (default 0.95).
	Confidence float64
	// MinFactor is the minimum before/after (or after/before) mean
	// ratio (default 2.0): a regime change must at least double or
	// halve the rate. Guards stationary noise.
	MinFactor float64
	// MinDelta is the minimum absolute mean shift (default 1.0):
	// a doubling from 0.01 to 0.02 violations/commit is not a regime.
	MinDelta float64
	// Seed seeds the bootstrap shuffles (default 1); fixed so runs are
	// reproducible.
	Seed int64
}

func (c DetectorConfig) withDefaults() DetectorConfig {
	if c.MinSegment == 0 {
		c.MinSegment = 3
	}
	if c.MaxWindow == 0 {
		c.MaxWindow = 128
	}
	if c.Bootstraps == 0 {
		c.Bootstraps = 199
	}
	if c.Confidence == 0 {
		c.Confidence = 0.95
	}
	if c.MinFactor == 0 {
		c.MinFactor = 2.0
	}
	if c.MinDelta == 0 {
		c.MinDelta = 1.0
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// ChangePoint is one detected regime change in a constraint's
// gained-per-commit series.
type ChangePoint struct {
	// Seq is the first commit of the new regime.
	Seq uint64 `json:"seq"`
	// DetectedSeq is the commit at which the detector flagged it; the
	// difference is the detection latency in commits.
	DetectedSeq uint64 `json:"detectedSeq"`
	// Confidence is the bootstrap score in [0, 1].
	Confidence float64 `json:"confidence"`
	// Before and After are the segment means (violations gained per
	// commit) on each side of the change.
	Before float64 `json:"before"`
	After  float64 `json:"after"`
}

// Factor is the rate multiple of the change: After/Before, with a zero
// Before reported as +Inf.
func (cp ChangePoint) Factor() float64 {
	if cp.Before == 0 {
		return math.Inf(1)
	}
	return cp.After / cp.Before
}

// cusumDiff computes the CUSUM excursion of vals around their mean:
// Sdiff = max(S) − min(S), plus the index of the extreme |S| restricted
// to splits leaving minSeg points on each side (−1 when none allowed).
func cusumDiff(vals []float64, minSeg int) (sdiff float64, split int) {
	var sum float64
	for _, v := range vals {
		sum += v
	}
	mean := sum / float64(len(vals))
	var s, minS, maxS, bestAbs float64
	split = -1
	for i, v := range vals {
		s += v - mean
		if s < minS {
			minS = s
		}
		if s > maxS {
			maxS = s
		}
		// Split after index i: [0..i] | [i+1..n-1].
		if i >= minSeg-1 && i <= len(vals)-1-minSeg && math.Abs(s) >= bestAbs {
			bestAbs = math.Abs(s)
			split = i
		}
	}
	return maxS - minS, split
}

// detectStep runs one detection pass over vals. It returns the split
// index (last point of the old regime), the bootstrap confidence, and
// whether a change point passing every guard was found.
func detectStep(vals []float64, cfg DetectorConfig, rng *rand.Rand, scratch []float64) (int, float64, bool) {
	n := len(vals)
	if n < 2*cfg.MinSegment {
		return 0, 0, false
	}
	sdiff, split := cusumDiff(vals, cfg.MinSegment)
	if split < 0 || sdiff == 0 {
		return 0, 0, false
	}
	// Magnitude guards first — they are O(n) and reject stationary
	// noise before the O(n·B) bootstrap runs.
	var a, b float64
	for _, v := range vals[:split+1] {
		a += v
	}
	for _, v := range vals[split+1:] {
		b += v
	}
	before := a / float64(split+1)
	after := b / float64(n-split-1)
	if math.Abs(after-before) < cfg.MinDelta {
		return 0, 0, false
	}
	lo, hi := before, after
	if lo > hi {
		lo, hi = hi, lo
	}
	if lo > 0 && hi/lo < cfg.MinFactor {
		return 0, 0, false
	}
	// Bootstrap: how often does a random reordering of the same values
	// produce an excursion as large? Rarely ⇒ the ordering carries the
	// signal ⇒ high confidence.
	scratch = append(scratch[:0], vals...)
	under := 0
	for i := 0; i < cfg.Bootstraps; i++ {
		rng.Shuffle(len(scratch), func(a, b int) { scratch[a], scratch[b] = scratch[b], scratch[a] })
		d, _ := cusumDiff(scratch, cfg.MinSegment)
		if d < sdiff {
			under++
		}
	}
	conf := float64(under) / float64(cfg.Bootstraps)
	if conf < cfg.Confidence {
		return 0, 0, false
	}
	return split, conf, true
}

// Alert is one fired change-point notification, as fanned out over the
// service's delta stream ("alert" SSE events).
type Alert struct {
	// Seq is the commit the alert fired at.
	Seq uint64 `json:"seq"`
	// Constraint labels the affected rule.
	Constraint string `json:"constraint"`
	// ChangePoint carries the detected regime change.
	ChangePoint ChangePoint `json:"changePoint"`
	// Message is the human-readable one-liner.
	Message string `json:"message"`
}

// Stat is one constraint's contribution to one commit: the outstanding
// violation count after the commit and the commit's gained/cleared
// deltas.
type Stat struct {
	Count   int
	Gained  int
	Cleared int
}

// TrackerConfig tunes a Tracker. The zero value gets usable defaults.
type TrackerConfig struct {
	// Window is the per-constraint ring capacity in commits (default
	// 512) — how much history /trends can serve.
	Window int
	// SummaryWindow is the sliding window for rate summaries in commits
	// (default 32).
	SummaryWindow int
	// Detector tunes the change-point detector.
	Detector DetectorConfig
}

// Tracker maintains per-constraint violation time series fed from
// commit deltas, runs the change-point detector on every observation,
// and serves consistent snapshots for /trends. Safe for concurrent use:
// the sequencer Observes, any number of readers call Trends.
type Tracker struct {
	mu      sync.Mutex
	window  int
	summary int
	det     DetectorConfig
	rng     *rand.Rand
	order   []string
	keys    map[string]*keySeries

	// detection scratch, reused across Observe calls
	seqBuf  []uint64
	valBuf  []float64
	bootBuf []float64
}

type keySeries struct {
	counts  *Series // outstanding violations after each commit
	gained  *Series // violations gained per commit (the detector input)
	cleared *Series
	anchor  uint64 // detector only examines points with seq > anchor
	cps     []ChangePoint
}

// NewTracker builds a tracker.
func NewTracker(cfg TrackerConfig) *Tracker {
	if cfg.Window == 0 {
		cfg.Window = 512
	}
	if cfg.SummaryWindow == 0 {
		cfg.SummaryWindow = 32
	}
	det := cfg.Detector.withDefaults()
	return &Tracker{
		window:  cfg.Window,
		summary: cfg.SummaryWindow,
		det:     det,
		rng:     rand.New(rand.NewSource(det.Seed)),
		keys:    make(map[string]*keySeries),
	}
}

// Track registers a constraint key. Keys observe in registration
// order; observing an unregistered key registers it implicitly.
func (t *Tracker) Track(key string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.trackLocked(key)
}

func (t *Tracker) trackLocked(key string) *keySeries {
	if ks, ok := t.keys[key]; ok {
		return ks
	}
	ks := &keySeries{
		counts:  NewSeries(t.window),
		gained:  NewSeries(t.window),
		cleared: NewSeries(t.window),
	}
	t.keys[key] = ks
	t.order = append(t.order, key)
	return ks
}

// Observe records one commit's per-constraint stats (a key absent from
// stats observes zero gained/cleared at its previous count — quiet
// constraints keep aligned series) and returns any alerts the detector
// fired at this commit.
func (t *Tracker) Observe(seq uint64, stats map[string]Stat) []Alert {
	t.mu.Lock()
	defer t.mu.Unlock()
	var alerts []Alert
	for _, key := range t.order {
		ks := t.keys[key]
		st, ok := stats[key]
		if !ok {
			// Quiet commit for this constraint: count carries over.
			if n := ks.counts.Len(); n > 0 {
				_, last := ks.counts.At(n - 1)
				st.Count = int(last)
			}
		}
		ks.counts.Append(seq, float64(st.Count))
		ks.gained.Append(seq, float64(st.Gained))
		ks.cleared.Append(seq, float64(st.Cleared))

		t.seqBuf, t.valBuf = ks.gained.after(ks.anchor, t.det.MaxWindow, t.seqBuf[:0], t.valBuf[:0])
		split, conf, ok := detectStep(t.valBuf, t.det, t.rng, t.bootBuf)
		if !ok {
			continue
		}
		cp := ChangePoint{
			Seq:         t.seqBuf[split+1],
			DetectedSeq: seq,
			Confidence:  conf,
			Before:      mean(t.valBuf[:split+1]),
			After:       mean(t.valBuf[split+1:]),
		}
		ks.cps = append(ks.cps, cp)
		// Anchor past the old regime so the detector now watches the new
		// one — the same shift is never re-flagged.
		ks.anchor = t.seqBuf[split]
		alerts = append(alerts, Alert{
			Seq:         seq,
			Constraint:  key,
			ChangePoint: cp,
			Message:     alertMessage(key, cp),
		})
	}
	return alerts
}

func mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var s float64
	for _, v := range vals {
		s += v
	}
	return s / float64(len(vals))
}

// alertMessage renders the one-liner: "violations for φ3 jumped 8.0× at
// seq 41872 (0.5 → 4.0 gained/commit, confidence 0.97)".
func alertMessage(key string, cp ChangePoint) string {
	verb := "jumped"
	if cp.After < cp.Before {
		verb = "dropped"
	}
	factor := cp.Factor()
	fs := "∞"
	if !math.IsInf(factor, 1) {
		if factor < 1 && factor > 0 {
			factor = 1 / factor
		}
		fs = fmt.Sprintf("%.1f×", factor)
	}
	return fmt.Sprintf("violations for %s %s %s at seq %d (%.2f → %.2f gained/commit, confidence %.2f)",
		key, verb, fs, cp.Seq, cp.Before, cp.After, cp.Confidence)
}

// Point is one commit's sample of a constraint's series.
type Point struct {
	Seq     uint64 `json:"seq"`
	Count   int    `json:"count"`
	Gained  int    `json:"gained"`
	Cleared int    `json:"cleared"`
}

// WindowStats summarizes the sliding window's rates for one constraint.
type WindowStats struct {
	Commits          int     `json:"commits"`
	GainedPerCommit  float64 `json:"gainedPerCommit"`
	ClearedPerCommit float64 `json:"clearedPerCommit"`
	MeanCount        float64 `json:"meanCount"`
	LastCount        int     `json:"lastCount"`
}

// Trend is one constraint's exported time series: ring-buffer points
// (oldest first), detected change points, and the sliding-window
// summary.
type Trend struct {
	Constraint   string        `json:"constraint"`
	Points       []Point       `json:"points"`
	ChangePoints []ChangePoint `json:"changePoints,omitempty"`
	Window       WindowStats   `json:"window"`
}

// Trends snapshots every tracked constraint, in registration (Σ)
// order. maxPoints caps the points returned per constraint (0 = the
// whole ring) — the knob /trends uses to bound response size.
func (t *Tracker) Trends(maxPoints int) []Trend {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Trend, 0, len(t.order))
	for _, key := range t.order {
		ks := t.keys[key]
		n := ks.counts.Len()
		first := 0
		if maxPoints > 0 && n > maxPoints {
			first = n - maxPoints
		}
		tr := Trend{Constraint: key, Points: make([]Point, 0, n-first)}
		for i := first; i < n; i++ {
			seq, c := ks.counts.At(i)
			_, g := ks.gained.At(i)
			_, cl := ks.cleared.At(i)
			tr.Points = append(tr.Points, Point{Seq: seq, Count: int(c), Gained: int(g), Cleared: int(cl)})
		}
		tr.ChangePoints = append([]ChangePoint(nil), ks.cps...)
		w := t.summary
		if w > n {
			w = n
		}
		if w > 0 {
			var g, cl, c float64
			for i := n - w; i < n; i++ {
				_, gv := ks.gained.At(i)
				_, cv := ks.cleared.At(i)
				_, cc := ks.counts.At(i)
				g, cl, c = g+gv, cl+cv, c+cc
			}
			_, last := ks.counts.At(n - 1)
			tr.Window = WindowStats{
				Commits:          w,
				GainedPerCommit:  g / float64(w),
				ClearedPerCommit: cl / float64(w),
				MeanCount:        c / float64(w),
				LastCount:        int(last),
			}
		}
		out = append(out, tr)
	}
	return out
}

// Alerts returns every change point detected so far, flattened in
// detection order across constraints (by DetectedSeq).
func (t *Tracker) ChangePointCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, ks := range t.keys {
		n += len(ks.cps)
	}
	return n
}
