package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Labels are constant labels attached to one metric at registration —
// the variant key within a family (e.g. stage="wal_append"). Nil means
// no labels.
type Labels map[string]string

// Registry collects named metrics and renders them in the Prometheus
// text exposition format. Metrics within one name (a family) share
// HELP/TYPE and differ by labels. Registration is typically done once
// at startup; collection and exposition are safe concurrently.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	names    []string // sorted family names
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

type family struct {
	name    string
	help    string
	kind    metricKind
	metrics []*labeledMetric // sorted by rendered label string
}

type labeledMetric struct {
	labels  string // rendered {k="v",...}; "" when unlabeled
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// renderLabels renders a deterministic {k="v",...} string, keys sorted.
func renderLabels(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// register adds one labeled metric, creating the family as needed.
// Duplicate (name, labels) or a kind clash within a family panics:
// both are programmer errors a test catches on first run.
func (r *Registry) register(name, help string, kind metricKind, labels Labels, m *labeledMetric) {
	m.labels = renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind}
		r.families[name] = f
		i := sort.SearchStrings(r.names, name)
		r.names = append(r.names, "")
		copy(r.names[i+1:], r.names[i:])
		r.names[i] = name
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %s registered as both %s and %s", name, f.kind, kind))
	}
	for _, ex := range f.metrics {
		if ex.labels == m.labels {
			panic(fmt.Sprintf("obs: duplicate metric %s%s", name, m.labels))
		}
	}
	i := sort.Search(len(f.metrics), func(i int) bool { return f.metrics[i].labels >= m.labels })
	f.metrics = append(f.metrics, nil)
	copy(f.metrics[i+1:], f.metrics[i:])
	f.metrics[i] = m
}

// Counter registers and returns a counter.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	c := &Counter{}
	r.register(name, help, kindCounter, labels, &labeledMetric{counter: c})
	return c
}

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	g := &Gauge{}
	r.register(name, help, kindGauge, labels, &labeledMetric{gauge: g})
	return g
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape
// time — the idiom for values already maintained elsewhere (queue
// depths, WAL bytes, health state): zero hot-path cost, fn must be safe
// to call from any goroutine.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.register(name, help, kindGauge, labels, &labeledMetric{fn: fn})
}

// Histogram registers and returns a histogram over bounds (nil uses
// DefLatencyBuckets).
func (r *Registry) Histogram(name, help string, labels Labels, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefLatencyBuckets
	}
	h := NewHistogram(bounds)
	r.register(name, help, kindHistogram, labels, &labeledMetric{hist: h})
	return h
}

// formatFloat renders a sample value; integral values print without an
// exponent so counters read naturally.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format (version 0.0.4), families sorted by name,
// variants sorted by label string — deterministic output, which is what
// the golden test locks down.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, m := range f.metrics {
			switch {
			case m.counter != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, m.labels, formatFloat(float64(m.counter.Value())))
			case m.gauge != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, m.labels, formatFloat(float64(m.gauge.Value())))
			case m.fn != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, m.labels, formatFloat(m.fn()))
			case m.hist != nil:
				writeHistogram(&b, f.name, m.labels, m.hist)
			}
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram renders one histogram's _bucket/_sum/_count series.
// Bucket counts are cumulative, as the format requires. The le label is
// appended to the metric's own labels.
func writeHistogram(b *strings.Builder, name, labels string, h *Histogram) {
	open := "{"
	if labels != "" {
		open = labels[:len(labels)-1] + ","
	}
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket%sle=\"%s\"} %d\n", name, open, formatFloat(bound), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket%sle=\"+Inf\"} %d\n", name, open, cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, labels, formatFloat(h.Sum()))
	// _count repeats the +Inf cumulative count rather than re-loading
	// h.count: under a concurrent Observe the two can differ by the
	// in-flight observation, and the format requires them equal.
	fmt.Fprintf(b, "%s_count%s %d\n", name, labels, cum)
}

// Handler serves the registry as a Prometheus scrape endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
