package obs

import (
	"math/rand"
	"testing"
)

func TestSeriesRing(t *testing.T) {
	s := NewSeries(3)
	for i := uint64(1); i <= 5; i++ {
		s.Append(i, float64(i)*10)
	}
	if s.Len() != 3 {
		t.Fatalf("len = %d, want 3", s.Len())
	}
	wantSeqs := []uint64{3, 4, 5}
	for i, want := range wantSeqs {
		seq, v := s.At(i)
		if seq != want || v != float64(want)*10 {
			t.Errorf("At(%d) = (%d, %v), want (%d, %v)", i, seq, v, want, float64(want)*10)
		}
	}
}

// stepStats builds a per-commit stats stream for one key with a known
// step change: rate base before changeAt, base*factor from changeAt on,
// Poisson-ish noise via a seeded rng.
func stepStats(key string, commits int, changeAt int, base, factor float64, seed int64) []map[string]Stat {
	rng := rand.New(rand.NewSource(seed))
	out := make([]map[string]Stat, commits)
	count := 0
	for i := range out {
		rate := base
		if i >= changeAt {
			rate *= factor
		}
		// Small integer noise around the rate, like real gained-per-commit
		// series: floor(rate) plus a Bernoulli for the fraction.
		g := int(rate)
		if rng.Float64() < rate-float64(g) {
			g++
		}
		count += g
		out[i] = map[string]Stat{key: {Count: count, Gained: g}}
	}
	return out
}

// TestDetectorTruePositive: an 8x jump in gained-per-commit must be
// flagged within 5 commits of the injected change point.
func TestDetectorTruePositive(t *testing.T) {
	const changeAt = 30
	stats := stepStats("phi2", 60, changeAt, 0.5, 8, 42)
	tr := NewTracker(TrackerConfig{})
	tr.Track("phi2")
	var got []Alert
	for i, st := range stats {
		got = append(got, tr.Observe(uint64(i+1), st)...)
	}
	if len(got) == 0 {
		t.Fatal("8x step change not detected")
	}
	a := got[0]
	// Commit seq is 1-based: the change point's first new-regime commit
	// is changeAt+1.
	// Localization wanders a few commits when boundary noise leans the
	// CUSUM; the hard requirement is detection latency, below.
	wantSeq := uint64(changeAt + 1)
	if a.ChangePoint.Seq < wantSeq-4 || a.ChangePoint.Seq > wantSeq+4 {
		t.Errorf("located change at seq %d, want ~%d", a.ChangePoint.Seq, wantSeq)
	}
	latency := int(a.Seq) - (changeAt + 1)
	if latency > 5 {
		t.Errorf("detection latency = %d commits, want <= 5 (alerted at seq %d)", latency, a.Seq)
	}
	if a.ChangePoint.Confidence < 0.95 {
		t.Errorf("confidence = %v, want >= 0.95", a.ChangePoint.Confidence)
	}
	if a.ChangePoint.After <= a.ChangePoint.Before {
		t.Errorf("means: before %v, after %v — want a jump", a.ChangePoint.Before, a.ChangePoint.After)
	}
	if a.Message == "" {
		t.Error("empty alert message")
	}
}

// TestDetectorNoFalsePositives: a stationary stream must never alert.
func TestDetectorNoFalsePositives(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		stats := stepStats("phi1", 200, 200, 0.5, 1, seed)
		tr := NewTracker(TrackerConfig{})
		tr.Track("phi1")
		for i, st := range stats {
			if alerts := tr.Observe(uint64(i+1), st); len(alerts) > 0 {
				t.Fatalf("seed %d: false positive at commit %d: %+v", seed, i+1, alerts[0])
			}
		}
	}
}

// TestDetectorAnchoring: after an alert fires the same shift must not
// re-fire, but a later second shift must.
func TestDetectorAnchoring(t *testing.T) {
	tr := NewTracker(TrackerConfig{})
	tr.Track("k")
	rng := rand.New(rand.NewSource(7))
	seq := uint64(0)
	emit := func(commits int, rate float64) []Alert {
		var all []Alert
		for i := 0; i < commits; i++ {
			seq++
			g := int(rate)
			if rng.Float64() < rate-float64(g) {
				g++
			}
			all = append(all, tr.Observe(seq, map[string]Stat{"k": {Count: int(seq), Gained: g}})...)
		}
		return all
	}
	emit(30, 0.5)
	first := emit(20, 4) // 8x jump
	if len(first) != 1 {
		t.Fatalf("first shift: got %d alerts, want exactly 1 (no re-fires)", len(first))
	}
	second := emit(20, 16) // 4x jump on top
	if len(second) != 1 {
		t.Fatalf("second shift: got %d alerts, want exactly 1, got %+v", len(second), second)
	}
	if second[0].ChangePoint.Seq <= first[0].ChangePoint.Seq {
		t.Errorf("second change at seq %d not after first at %d", second[0].ChangePoint.Seq, first[0].ChangePoint.Seq)
	}
}

// TestDetectorGradualDrift: a slow ramp should eventually flag without
// demanding the precision of a step.
func TestDetectorGradualDrift(t *testing.T) {
	tr := NewTracker(TrackerConfig{})
	tr.Track("k")
	rng := rand.New(rand.NewSource(3))
	var alerts []Alert
	for i := 1; i <= 100; i++ {
		rate := 0.5
		if i > 40 {
			// Ramp from 0.5 to 4.5 over 40 commits.
			rate = 0.5 + float64(min(i-40, 40))*0.1
		}
		g := int(rate)
		if rng.Float64() < rate-float64(g) {
			g++
		}
		alerts = append(alerts, tr.Observe(uint64(i), map[string]Stat{"k": {Gained: g}})...)
	}
	if len(alerts) == 0 {
		t.Fatal("gradual drift never detected")
	}
}

func TestTrackerQuietKeyCarriesCount(t *testing.T) {
	tr := NewTracker(TrackerConfig{})
	tr.Track("a")
	tr.Track("b")
	tr.Observe(1, map[string]Stat{"a": {Count: 5, Gained: 5}})
	tr.Observe(2, map[string]Stat{"b": {Count: 2, Gained: 2}})
	trends := tr.Trends(0)
	if len(trends) != 2 {
		t.Fatalf("trends = %d keys, want 2", len(trends))
	}
	// Key "a" was quiet at commit 2: its count must carry over, gained 0.
	a := trends[0]
	if a.Constraint != "a" || len(a.Points) != 2 {
		t.Fatalf("unexpected first trend: %+v", a)
	}
	if p := a.Points[1]; p.Seq != 2 || p.Count != 5 || p.Gained != 0 {
		t.Errorf("quiet point = %+v, want seq 2 count 5 gained 0", p)
	}
	if a.Window.LastCount != 5 || a.Window.Commits != 2 {
		t.Errorf("window = %+v, want lastCount 5 over 2 commits", a.Window)
	}
}

func TestTrendsMaxPoints(t *testing.T) {
	tr := NewTracker(TrackerConfig{})
	tr.Track("k")
	for i := 1; i <= 50; i++ {
		tr.Observe(uint64(i), map[string]Stat{"k": {Count: i, Gained: 1}})
	}
	trends := tr.Trends(10)
	if n := len(trends[0].Points); n != 10 {
		t.Fatalf("points = %d, want 10", n)
	}
	if trends[0].Points[0].Seq != 41 {
		t.Fatalf("first capped point seq = %d, want 41", trends[0].Points[0].Seq)
	}
}

// BenchmarkTrendsIngest measures the per-commit analytics cost on a
// stationary stream (the steady-state path: CUSUM + guards, no
// bootstrap) across 3 tracked constraints.
func BenchmarkTrendsIngest(b *testing.B) {
	tr := NewTracker(TrackerConfig{})
	keys := []string{"phi1", "phi2", "phi3"}
	for _, k := range keys {
		tr.Track(k)
	}
	rng := rand.New(rand.NewSource(1))
	stats := map[string]Stat{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, k := range keys {
			g := 0
			if rng.Float64() < 0.5 {
				g = 1
			}
			stats[k] = Stat{Count: i, Gained: g}
		}
		tr.Observe(uint64(i+1), stats)
	}
}
