package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	// Uniform observations over [0, 100) against fine bucketing: bucket
	// interpolation should land within one bucket width of the exact
	// quantile.
	bounds := make([]float64, 100)
	for i := range bounds {
		bounds[i] = float64(i + 1)
	}
	h := NewHistogram(bounds)
	for i := 0; i < 10000; i++ {
		h.Observe(float64(i%100) + 0.5)
	}
	for _, tc := range []struct {
		q, want float64
	}{
		{0.50, 50}, {0.95, 95}, {0.99, 99},
	} {
		got := h.Quantile(tc.q)
		if math.Abs(got-tc.want) > 1.0 {
			t.Errorf("Quantile(%v) = %v, want %v ± 1", tc.q, got, tc.want)
		}
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
	// Everything in the +Inf bucket clamps to the last finite bound.
	h.Observe(100)
	h.Observe(200)
	if got := h.Quantile(0.5); got != 4 {
		t.Fatalf("+Inf-bucket quantile = %v, want clamp to 4", got)
	}
	if h.Count() != 2 || h.Sum() != 300 {
		t.Fatalf("count/sum = %d/%v, want 2/300", h.Count(), h.Sum())
	}
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-ascending bounds")
		}
	}()
	NewHistogram([]float64{1, 1})
}

// TestExpositionGolden locks the exposition format byte-for-byte:
// family ordering, HELP/TYPE lines, label rendering, cumulative
// histogram buckets.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("dq_ops_total", "Total ops.", nil)
	c.Add(12)
	g := r.Gauge("dq_queue_depth", "Queue depth.", nil)
	g.Set(3)
	r.GaugeFunc("dq_uptime_seconds", "Uptime.", nil, func() float64 { return 1.5 })
	h := r.Histogram("dq_stage_seconds", "Stage timings.", Labels{"stage": "wal_append"}, []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(5)
	cb := r.Counter("dq_commits_total", "Commits.", Labels{"shard": "0"})
	cb.Inc()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP dq_commits_total Commits.
# TYPE dq_commits_total counter
dq_commits_total{shard="0"} 1
# HELP dq_ops_total Total ops.
# TYPE dq_ops_total counter
dq_ops_total 12
# HELP dq_queue_depth Queue depth.
# TYPE dq_queue_depth gauge
dq_queue_depth 3
# HELP dq_stage_seconds Stage timings.
# TYPE dq_stage_seconds histogram
dq_stage_seconds_bucket{stage="wal_append",le="0.001"} 1
dq_stage_seconds_bucket{stage="wal_append",le="0.01"} 1
dq_stage_seconds_bucket{stage="wal_append",le="0.1"} 2
dq_stage_seconds_bucket{stage="wal_append",le="+Inf"} 3
dq_stage_seconds_sum{stage="wal_append"} 5.0505
dq_stage_seconds_count{stage="wal_append"} 3
# HELP dq_uptime_seconds Uptime.
# TYPE dq_uptime_seconds gauge
dq_uptime_seconds 1.5
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate registration")
		}
	}()
	r.Counter("x_total", "", nil)
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("esc_total", "", Labels{"rule": "a\"b\\c\nd"})
	c.Inc()
	var b strings.Builder
	r.WritePrometheus(&b)
	want := `esc_total{rule="a\"b\\c\nd"} 1`
	if !strings.Contains(b.String(), want) {
		t.Errorf("escaped label missing: got %q, want substring %q", b.String(), want)
	}
}

// TestMetricsConcurrent exercises collection racing exposition; run
// under -race this asserts the whole surface is data-race-free.
func TestMetricsConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cc_total", "", nil)
	g := r.Gauge("gg", "", nil)
	h := r.Histogram("hh_seconds", "", nil, nil)
	var writers sync.WaitGroup
	stop := make(chan struct{})
	scraperDone := make(chan struct{})
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < 5000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%1000) * 1e-6)
			}
		}()
	}
	go func() {
		defer close(scraperDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			var b strings.Builder
			r.WritePrometheus(&b)
			h.Quantile(0.95)
		}
	}()
	writers.Wait()
	close(stop)
	<-scraperDone
	if c.Value() != 20000 {
		t.Fatalf("counter = %d, want 20000", c.Value())
	}
	if h.Count() != 20000 {
		t.Fatalf("histogram count = %d, want 20000", h.Count())
	}
}
