// Package obs is the runtime observability core: zero-dependency,
// low-overhead metrics primitives (atomic counters, gauges and
// fixed-bucket latency histograms) collected in a named Registry with
// Prometheus text exposition, plus streaming quality analytics —
// per-constraint violation-count time series over ring buffers, a
// bootstrap change-point detector in the CUSUM style, and
// sliding-window rate summaries (trend.go).
//
// Design constraints, in order: (1) a disabled or absent metric costs
// nothing on the hot path (callers nil-check one pointer); (2) an
// enabled metric costs one atomic RMW (Counter/Gauge) or one binary
// search plus two atomic RMWs (Histogram) — safe to call from the
// single-writer ingest loop and from every reader goroutine at once;
// (3) exposition never blocks collection: scraping reads the atomics
// while writers race ahead, yielding a momentary (not point-in-time
// consistent) view, which is what Prometheus semantics ask for.
package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing uint64 metric. The zero value
// is ready to use. All methods are safe for concurrent use.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable int64 metric. The zero value is ready to use.
// All methods are safe for concurrent use.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (negative to decrement).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefLatencyBuckets is the default histogram bucketing for stage
// timings in seconds: 1µs to 10s, roughly 2.5× per step — wide enough
// for an fsync window and fine enough to separate a 50µs validate from
// a 500µs detect.
var DefLatencyBuckets = []float64{
	1e-6, 2.5e-6, 5e-6,
	1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// DefSizeBuckets is the default bucketing for size-like distributions
// (coalesced batch ops, delta sizes): powers of two to 8192.
var DefSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192}

// Histogram is a fixed-bucket distribution metric: cumulative counts
// per upper bound plus a running sum, all atomics, so Observe is
// lock-free and wait-free apart from the sum's CAS loop. Quantiles are
// estimated by linear interpolation inside the covering bucket.
type Histogram struct {
	bounds []float64 // sorted ascending upper bounds; +Inf is implicit
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

// NewHistogram builds a histogram over the given upper bounds, which
// must be sorted ascending. The +Inf bucket is implicit. The bounds
// slice is retained; callers must not mutate it.
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds not strictly ascending")
		}
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start — the stage
// timing idiom: stamp time.Now before the stage, ObserveSince after.
func (h *Histogram) ObserveSince(start time.Time) { h.Observe(time.Since(start).Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile estimates the q-quantile (0 < q <= 1) by bucket
// interpolation: find the bucket holding the q·count-th observation and
// interpolate linearly between its bounds. Observations in the +Inf
// bucket clamp to the highest finite bound (the histogram cannot say
// more). Returns 0 on an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for i := range h.counts {
		c := float64(h.counts[i].Load())
		if c == 0 {
			cum += c
			continue
		}
		if cum+c >= rank {
			if i == len(h.bounds) {
				// +Inf bucket: clamp to the last finite bound.
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			frac := (rank - cum) / c
			if frac < 0 {
				frac = 0
			}
			return lo + frac*(h.bounds[i]-lo)
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}
