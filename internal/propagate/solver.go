package propagate

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/cfd"
	"repro/internal/relation"
)

// The symbolic solver: a union-find over cell slots of the pulled-back
// source tuples, with per-class constant bindings and disequality
// constraints. Chasing Σ's rows to a fixpoint either derives a
// contradiction (the violation scenario is impossible: propagation holds
// for this case) or leaves a consistent state whose canonical instance is
// a counterexample in the infinite-domain regime.

// symTuple is one symbolic source tuple: slot ids per attribute.
type symTuple struct {
	rel   string
	slots []int
}

// solver carries the union-find state.
type solver struct {
	parent []int
	bound  []relation.Value
	has    []bool
	// disequalities: slot pairs that must differ, and slot/constant
	// avoidances.
	neqPairs  [][2]int
	neqConsts []struct {
		slot int
		val  relation.Value
	}
	failed bool
}

func (s *solver) newSlot() int {
	id := len(s.parent)
	s.parent = append(s.parent, id)
	s.bound = append(s.bound, relation.Value{})
	s.has = append(s.has, false)
	return id
}

func (s *solver) find(i int) int {
	for s.parent[i] != i {
		s.parent[i] = s.parent[s.parent[i]]
		i = s.parent[i]
	}
	return i
}

func (s *solver) union(i, j int) bool {
	ri, rj := s.find(i), s.find(j)
	if ri == rj {
		return false
	}
	s.parent[rj] = ri
	if s.has[rj] {
		if s.has[ri] && !s.bound[ri].Equal(s.bound[rj]) {
			s.failed = true
		}
		s.bound[ri] = s.bound[rj]
		s.has[ri] = true
	}
	return true
}

func (s *solver) bind(i int, v relation.Value) bool {
	r := s.find(i)
	if s.has[r] {
		if !s.bound[r].Equal(v) {
			s.failed = true
		}
		return false
	}
	s.bound[r] = v
	s.has[r] = true
	return true
}

func (s *solver) boundTo(i int) (relation.Value, bool) {
	r := s.find(i)
	return s.bound[r], s.has[r]
}

// equal reports slot equality in the freest interpretation.
func (s *solver) equal(i, j int) bool {
	if s.find(i) == s.find(j) {
		return true
	}
	vi, oki := s.boundTo(i)
	vj, okj := s.boundTo(j)
	return oki && okj && vi.Equal(vj)
}

// matches reports whether slot i matches a CFD pattern cell in the
// freest interpretation.
func (s *solver) matches(i int, cell cfd.Cell) bool {
	if cell.IsWildcard() {
		return true
	}
	v, ok := s.boundTo(i)
	return ok && v.Equal(cell.Value())
}

// consistent verifies the disequality constraints after the chase.
func (s *solver) consistent() bool {
	if s.failed {
		return false
	}
	for _, p := range s.neqPairs {
		if s.find(p[0]) == s.find(p[1]) {
			return false
		}
		vi, oki := s.boundTo(p[0])
		vj, okj := s.boundTo(p[1])
		if oki && okj && vi.Equal(vj) {
			return false
		}
	}
	for _, nc := range s.neqConsts {
		if v, ok := s.boundTo(nc.slot); ok && v.Equal(nc.val) {
			return false
		}
	}
	return true
}

// violationSatisfiable builds the two symbolic view embeddings (branches
// bi and bj), imposes ϕ's premise and the chosen violation shape, chases
// with Σ, and reports whether a consistent state survives.
func violationSatisfiable(schemas map[string]*relation.Schema, sigma []*cfd.CFD, v View, bi, bj int, target *cfd.CFD, shape violationShape) (bool, error) {
	s := &solver{}
	// Instantiate each branch copy: one slot per variable, constants bind
	// immediately; atoms become symbolic tuples.
	var tuples []symTuple
	headSlots := make([][]int, 2) // per copy, slot per view column
	for copyIdx, branch := range [2]Branch{v.Branches[bi], v.Branches[bj]} {
		varSlot := make(map[string]int)
		slotOf := func(term algebra.Term, kindHint relation.Kind) int {
			if term.IsVar() {
				if id, ok := varSlot[term.Var]; ok {
					return id
				}
				id := s.newSlot()
				varSlot[term.Var] = id
				return id
			}
			id := s.newSlot()
			s.bind(id, term.Const)
			_ = kindHint
			return id
		}
		for _, atom := range branch.Atoms {
			schema := schemas[atom.Rel]
			st := symTuple{rel: atom.Rel, slots: make([]int, len(atom.Terms))}
			for j, term := range atom.Terms {
				st.slots[j] = slotOf(term, schema.Attr(j).Domain.Kind())
			}
			tuples = append(tuples, st)
		}
		headSlots[copyIdx] = make([]int, len(branch.Head))
		for k, term := range branch.Head {
			headSlots[copyIdx][k] = slotOf(term, relation.KindString)
		}
	}

	// ϕ's premise: view tuples equal on X and matching the pattern.
	row := target.Tableau()[0]
	for j, col := range target.LHS() {
		a, b := headSlots[0][col], headSlots[1][col]
		s.union(a, b)
		if cell := row.LHS[j]; !cell.IsWildcard() {
			s.bind(a, cell.Value())
		}
		if s.failed {
			return false, nil
		}
	}
	// The violation shape on the RHS attribute.
	rhsCol := target.RHS()[0]
	a, b := headSlots[0][rhsCol], headSlots[1][rhsCol]
	switch {
	case shape.diff:
		s.neqPairs = append(s.neqPairs, [2]int{a, b})
	case shape.notConst:
		s.union(a, b)
		if row.RHS[0].IsWildcard() {
			return false, fmt.Errorf("propagate: notConst shape needs a constant RHS pattern")
		}
		s.neqConsts = append(s.neqConsts,
			struct {
				slot int
				val  relation.Value
			}{a, row.RHS[0].Value()})
	}
	if s.failed {
		return false, nil
	}

	// Chase with Σ over all symbolic tuple pairs of matching relations.
	norm := cfd.NormalizeSet(sigma)
	for changed := true; changed && !s.failed; {
		changed = false
		for _, c := range norm {
			crow := c.Tableau()[0]
			relName := c.Schema().Name()
			for ti := range tuples {
				if tuples[ti].rel != relName {
					continue
				}
				for tj := range tuples {
					if tuples[tj].rel != relName {
						continue
					}
					fires := true
					for j, p := range c.LHS() {
						si, sj := tuples[ti].slots[p], tuples[tj].slots[p]
						if !s.equal(si, sj) || !s.matches(si, crow.LHS[j]) {
							fires = false
							break
						}
					}
					if !fires {
						continue
					}
					rp := c.RHS()[0]
					si, sj := tuples[ti].slots[rp], tuples[tj].slots[rp]
					if s.union(si, sj) {
						changed = true
					}
					if !crow.RHS[0].IsWildcard() {
						if s.bind(si, crow.RHS[0].Value()) {
							changed = true
						}
					}
					if s.failed {
						return false, nil
					}
				}
			}
		}
	}
	return s.consistent(), nil
}
