// Package propagate implements CFD propagation through views (dependency
// propagation, Section 4.1 of Fan, PODS 2008, Theorem 4.7 and
// Example 4.2): given source CFDs Σ and a view σ defined as a union of
// select-project-product (SPC) branches, decide Σ ⊨σ ϕ — whether every
// view of a Σ-satisfying source database satisfies the view CFD ϕ.
//
// The decision procedure pulls a hypothetical view violation of ϕ back
// through the view into symbolic source tuples (two embeddings of the
// branch bodies, sharing ϕ's LHS through the heads), chases them with
// Σ's rows as equality/constant-generating rules over a union-find with
// constant bindings and disequality constraints, and reports propagation
// iff every branch pair and every violation shape is inconsistent. The
// analysis is exact in the absence of finite-domain attributes (the PTIME
// regime of Theorem 4.7); with finite domains it stays sound for
// "not propagated" answers and the general problem is coNP-complete.
package propagate

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/cfd"
	"repro/internal/relation"
)

// Branch is one SPC branch of a view: a conjunctive body over source
// relations with a head term per view column. Selections are expressed by
// constants and shared variables in the atoms (σ and ⋈ via repetition).
type Branch struct {
	Atoms []algebra.Atom
	Head  []algebra.Term
}

// View is a union of SPC branches with named output columns.
type View struct {
	Name     string
	Cols     []string
	Branches []Branch
}

// Schema derives the view's output schema from the source schemas: a head
// variable takes the kind of its first body occurrence; a head constant
// its own kind.
func (v View) Schema(schemas map[string]*relation.Schema) (*relation.Schema, error) {
	if len(v.Branches) == 0 {
		return nil, fmt.Errorf("propagate: view %s has no branches", v.Name)
	}
	attrs := make([]relation.Attribute, len(v.Cols))
	b := v.Branches[0]
	if len(b.Head) != len(v.Cols) {
		return nil, fmt.Errorf("propagate: branch head arity %d, want %d", len(b.Head), len(v.Cols))
	}
	for i, term := range b.Head {
		kind, err := termKind(term, b, schemas)
		if err != nil {
			return nil, err
		}
		attrs[i] = relation.Attr(v.Cols[i], kind)
	}
	return relation.NewSchema(v.Name, attrs...)
}

func termKind(term algebra.Term, b Branch, schemas map[string]*relation.Schema) (relation.Kind, error) {
	if !term.IsVar() {
		return term.Const.Kind(), nil
	}
	for _, a := range b.Atoms {
		s, ok := schemas[a.Rel]
		if !ok {
			return 0, fmt.Errorf("propagate: unknown relation %q", a.Rel)
		}
		for j, t := range a.Terms {
			if t.IsVar() && t.Var == term.Var {
				return s.Attr(j).Domain.Kind(), nil
			}
		}
	}
	return 0, fmt.Errorf("propagate: head variable %q not bound in body", term.Var)
}

// Eval materializes the view over a database (for testing the view
// definition itself).
func (v View) Eval(db *relation.Database, schemas map[string]*relation.Schema) (*relation.Instance, error) {
	schema, err := v.Schema(schemas)
	if err != nil {
		return nil, err
	}
	out := relation.NewInstance(schema)
	seen := make(map[string]bool)
	for _, b := range v.Branches {
		q := algebra.CQ{Head: b.Head, Atoms: b.Atoms, OutName: v.Name, OutAttrs: v.Cols}
		ans, err := q.Eval(db)
		if err != nil {
			return nil, err
		}
		for _, t := range ans.Tuples() {
			if k := t.Key(); !seen[k] {
				seen[k] = true
				if _, err := out.Insert(t); err != nil {
					return nil, err
				}
			}
		}
	}
	return out, nil
}

// Propagates decides Σ ⊨σ ϕ for a view CFD ϕ defined over v's schema.
func Propagates(schemas map[string]*relation.Schema, sigma []*cfd.CFD, v View, phi *cfd.CFD) (bool, error) {
	for _, b := range v.Branches {
		if len(b.Head) != len(v.Cols) {
			return false, fmt.Errorf("propagate: branch head arity %d, want %d", len(b.Head), len(v.Cols))
		}
		for _, a := range b.Atoms {
			s, ok := schemas[a.Rel]
			if !ok {
				return false, fmt.Errorf("propagate: unknown relation %q", a.Rel)
			}
			if len(a.Terms) != s.Arity() {
				return false, fmt.Errorf("propagate: atom %v arity mismatch", a)
			}
		}
	}
	for _, target := range phi.Normalize() {
		row := target.Tableau()[0]
		// Violation shapes: (a) conclusion values differ; (b) conclusion
		// values equal but clash with a constant RHS pattern.
		shapes := []violationShape{{diff: true}}
		if !row.RHS[0].IsWildcard() {
			shapes = append(shapes, violationShape{notConst: true})
		}
		for bi := range v.Branches {
			for bj := range v.Branches {
				for _, shape := range shapes {
					sat, err := violationSatisfiable(schemas, sigma, v, bi, bj, target, shape)
					if err != nil {
						return false, err
					}
					if sat {
						return false, nil // counterexample scenario survives
					}
				}
			}
		}
	}
	return true, nil
}

// violationShape distinguishes how ϕ's conclusion fails: the two view
// tuples differ on the RHS attribute (diff), or they agree but the shared
// value avoids the RHS pattern constant (notConst).
type violationShape struct {
	diff     bool
	notConst bool
}
