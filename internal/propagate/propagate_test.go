package propagate_test

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/cfd"
	"repro/internal/propagate"
	"repro/internal/relation"
)

// example42 builds the three-source setting of Example 4.2: R1 (UK), R2
// (US), R3 (Netherlands), each with zip, street, AC, city, and the union
// view that adds the country code.
func example42() (schemas map[string]*relation.Schema, sigma []*cfd.CFD, view propagate.View) {
	mk := func(name string) *relation.Schema {
		return relation.MustSchema(name,
			relation.Attr("zip", relation.KindString),
			relation.Attr("street", relation.KindString),
			relation.Attr("AC", relation.KindInt),
			relation.Attr("city", relation.KindString),
		)
	}
	r1, r2, r3 := mk("R1"), mk("R2"), mk("R3")
	schemas = map[string]*relation.Schema{"R1": r1, "R2": r2, "R3": r3}

	// Σ0: f3 = R1: zip → street; f3+i = Ri: AC → city.
	sigma = []*cfd.CFD{
		cfd.MustFD(r1, []string{"zip"}, []string{"street"}),
		cfd.MustFD(r1, []string{"AC"}, []string{"city"}),
		cfd.MustFD(r2, []string{"AC"}, []string{"city"}),
		cfd.MustFD(r3, []string{"AC"}, []string{"city"}),
	}

	// σ0: union of the three sources, each branch tagging its country
	// code (44 UK, 1 US, 31 NL).
	branch := func(rel string, cc int64) propagate.Branch {
		return propagate.Branch{
			Atoms: []algebra.Atom{{Rel: rel, Terms: []algebra.Term{
				algebra.V("z"), algebra.V("s"), algebra.V("a"), algebra.V("c")}}},
			Head: []algebra.Term{
				algebra.C(relation.Int(cc)), algebra.V("z"), algebra.V("s"), algebra.V("a"), algebra.V("c")},
		}
	}
	view = propagate.View{
		Name: "R",
		Cols: []string{"CC", "zip", "street", "AC", "city"},
		Branches: []propagate.Branch{
			branch("R1", 44), branch("R2", 1), branch("R3", 31),
		},
	}
	return
}

// TestExample42Propagation reproduces the paper's Example 4.2: the plain
// FDs f3 and f3+i do NOT propagate to the union view, but the CFDs ϕ7 and
// ϕ8 (conditioned on the country code) DO.
func TestExample42Propagation(t *testing.T) {
	schemas, sigma, view := example42()
	vs, err := view.Schema(schemas)
	if err != nil {
		t.Fatal(err)
	}

	// f3 on the view: zip → street, unconditionally. Not propagated
	// (US zips do not determine streets).
	f3 := cfd.MustFD(vs, []string{"zip"}, []string{"street"})
	ok, err := propagate.Propagates(schemas, sigma, view, f3)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("f3 must NOT propagate: R2 has no zip→street FD")
	}

	// AC → city unconditionally. Not propagated: area code 20 is London
	// in the UK and Amsterdam in the Netherlands.
	acCity := cfd.MustFD(vs, []string{"AC"}, []string{"city"})
	ok, err = propagate.Propagates(schemas, sigma, view, acCity)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("AC→city must NOT propagate across countries")
	}

	// ϕ7 = R([CC, zip] → [street], {(44, _ ‖ _)}): propagated.
	phi7 := cfd.MustNew(vs, []string{"CC", "zip"}, []string{"street"},
		cfd.Row([]cfd.Cell{cfd.Const(relation.Int(44)), cfd.Any()}, []cfd.Cell{cfd.Any()}))
	ok, err = propagate.Propagates(schemas, sigma, view, phi7)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("ϕ7 must propagate (UK zips determine streets)")
	}

	// ϕ8 = R([CC, AC] → [city], {(c, _ ‖ _)}) for c ∈ {44, 1, 31}:
	// propagated.
	phi8 := cfd.MustNew(vs, []string{"CC", "AC"}, []string{"city"},
		cfd.Row([]cfd.Cell{cfd.Const(relation.Int(44)), cfd.Any()}, []cfd.Cell{cfd.Any()}),
		cfd.Row([]cfd.Cell{cfd.Const(relation.Int(1)), cfd.Any()}, []cfd.Cell{cfd.Any()}),
		cfd.Row([]cfd.Cell{cfd.Const(relation.Int(31)), cfd.Any()}, []cfd.Cell{cfd.Any()}))
	ok, err = propagate.Propagates(schemas, sigma, view, phi8)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("ϕ8 must propagate (per-country AC→city)")
	}

	// A CFD for a country code no branch produces propagates vacuously.
	phiGhost := cfd.MustNew(vs, []string{"CC", "zip"}, []string{"street"},
		cfd.Row([]cfd.Cell{cfd.Const(relation.Int(99)), cfd.Any()}, []cfd.Cell{cfd.Any()}))
	ok, err = propagate.Propagates(schemas, sigma, view, phiGhost)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("a pattern matching no branch is vacuously propagated")
	}
}

// TestPropagationConstantRHS exercises the notConst violation shape:
// a selection view fixes an attribute, so a constant-RHS view CFD is
// propagated from the selection itself, without any source dependency.
func TestPropagationConstantRHS(t *testing.T) {
	s := relation.MustSchema("src",
		relation.Attr("a", relation.KindString),
		relation.Attr("b", relation.KindString),
	)
	schemas := map[string]*relation.Schema{"src": s}
	// View selects b = 'x': every view tuple has b = x.
	view := propagate.View{
		Name: "V",
		Cols: []string{"a", "b"},
		Branches: []propagate.Branch{{
			Atoms: []algebra.Atom{{Rel: "src", Terms: []algebra.Term{algebra.V("a"), algebra.C(relation.Str("x"))}}},
			Head:  []algebra.Term{algebra.V("a"), algebra.C(relation.Str("x"))},
		}},
	}
	vs, err := view.Schema(schemas)
	if err != nil {
		t.Fatal(err)
	}
	phi := cfd.MustNew(vs, []string{"a"}, []string{"b"},
		cfd.Row([]cfd.Cell{cfd.Any()}, []cfd.Cell{cfd.Const(relation.Str("x"))}))
	ok, err := propagate.Propagates(schemas, nil, view, phi)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("σ_{b=x} must propagate b=x as a view CFD with no source Σ")
	}
	// And b = 'y' must not.
	phiY := cfd.MustNew(vs, []string{"a"}, []string{"b"},
		cfd.Row([]cfd.Cell{cfd.Any()}, []cfd.Cell{cfd.Const(relation.Str("y"))}))
	ok, err = propagate.Propagates(schemas, nil, view, phiY)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("b=y must not propagate")
	}
}

// TestPropagationJoinView: a product/join view propagates FDs through
// join keys.
func TestPropagationJoinView(t *testing.T) {
	emp := relation.MustSchema("emp",
		relation.Attr("eid", relation.KindInt),
		relation.Attr("dept", relation.KindString),
	)
	dept := relation.MustSchema("dept",
		relation.Attr("dname", relation.KindString),
		relation.Attr("city", relation.KindString),
	)
	schemas := map[string]*relation.Schema{"emp": emp, "dept": dept}
	sigma := []*cfd.CFD{
		cfd.MustFD(emp, []string{"eid"}, []string{"dept"}),
		cfd.MustFD(dept, []string{"dname"}, []string{"city"}),
	}
	view := propagate.View{
		Name: "ED",
		Cols: []string{"eid", "dept", "city"},
		Branches: []propagate.Branch{{
			Atoms: []algebra.Atom{
				{Rel: "emp", Terms: []algebra.Term{algebra.V("e"), algebra.V("d")}},
				{Rel: "dept", Terms: []algebra.Term{algebra.V("d"), algebra.V("c")}},
			},
			Head: []algebra.Term{algebra.V("e"), algebra.V("d"), algebra.V("c")},
		}},
	}
	vs, err := view.Schema(schemas)
	if err != nil {
		t.Fatal(err)
	}
	// eid → city propagates: eid → dept (source), join on dept = dname,
	// dname → city (source).
	phi := cfd.MustFD(vs, []string{"eid"}, []string{"city"})
	ok, err := propagate.Propagates(schemas, sigma, view, phi)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("eid→city must propagate through the join")
	}
	// city → eid must not.
	rev := cfd.MustFD(vs, []string{"city"}, []string{"eid"})
	ok, err = propagate.Propagates(schemas, sigma, view, rev)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("city→eid must not propagate")
	}
}

// TestViewEvalMatchesPropagation sanity-checks the view evaluator: a
// materialized Σ-satisfying source yields a view satisfying the
// propagated CFDs.
func TestViewEvalMatchesPropagation(t *testing.T) {
	schemas, sigma, view := example42()
	db := relation.NewDatabase()
	r1 := relation.NewInstance(schemas["R1"])
	r1.MustInsert(relation.Str("EH4"), relation.Str("Mayfield"), relation.Int(131), relation.Str("EDI"))
	r1.MustInsert(relation.Str("EH4"), relation.Str("Mayfield"), relation.Int(20), relation.Str("LDN"))
	db.Add(r1)
	r2 := relation.NewInstance(schemas["R2"])
	r2.MustInsert(relation.Str("07974"), relation.Str("Mtn Ave"), relation.Int(908), relation.Str("MH"))
	db.Add(r2)
	r3 := relation.NewInstance(schemas["R3"])
	r3.MustInsert(relation.Str("1011"), relation.Str("Damrak"), relation.Int(20), relation.Str("AMS"))
	db.Add(r3)
	for _, c := range sigma {
		in, _ := db.Instance(c.Schema().Name())
		if !cfd.Satisfies(in, c) {
			t.Fatalf("source violates %v", c)
		}
	}
	out, err := view.Eval(db, schemas)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 4 {
		t.Fatalf("view rows = %d, want 4", out.Len())
	}
	vs := out.Schema()
	phi7 := cfd.MustNew(vs, []string{"CC", "zip"}, []string{"street"},
		cfd.Row([]cfd.Cell{cfd.Const(relation.Int(44)), cfd.Any()}, []cfd.Cell{cfd.Any()}))
	if !cfd.Satisfies(out, phi7) {
		t.Error("materialized view violates ϕ7")
	}
	// The unconditional AC→city is indeed violated on this view (area
	// code 20 in both London and Amsterdam) — the paper's point.
	acCity := cfd.MustFD(vs, []string{"AC"}, []string{"city"})
	if cfd.Satisfies(out, acCity) {
		t.Error("expected the AC=20 London/Amsterdam clash on the view")
	}
}

func TestPropagateValidation(t *testing.T) {
	schemas, sigma, view := example42()
	vs, _ := view.Schema(schemas)
	phi := cfd.MustFD(vs, []string{"zip"}, []string{"street"})
	bad := view
	bad.Branches = append([]propagate.Branch(nil), view.Branches...)
	bad.Branches[0] = propagate.Branch{
		Atoms: []algebra.Atom{{Rel: "ghost", Terms: []algebra.Term{algebra.V("x")}}},
		Head:  view.Branches[0].Head,
	}
	if _, err := propagate.Propagates(schemas, sigma, bad, phi); err == nil {
		t.Error("want error for unknown source relation")
	}
	empty := propagate.View{Name: "E", Cols: []string{"a"}}
	if _, err := empty.Schema(schemas); err == nil {
		t.Error("want error for empty view")
	}
}
