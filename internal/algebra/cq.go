package algebra

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/relation"
)

// Term is a variable or constant in a conjunctive query atom.
type Term struct {
	Var   string         // non-empty for a variable
	Const relation.Value // used when Var == ""
}

// V returns a variable term.
func V(name string) Term { return Term{Var: name} }

// C returns a constant term.
func C(v relation.Value) Term { return Term{Const: v} }

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return t.Var != "" }

// String renders the term.
func (t Term) String() string {
	if t.IsVar() {
		return t.Var
	}
	return "'" + t.Const.String() + "'"
}

// Atom is a relation atom R(term1, ..., termk).
type Atom struct {
	Rel   string
	Terms []Term
}

// String renders the atom.
func (a Atom) String() string {
	parts := make([]string, len(a.Terms))
	for i, t := range a.Terms {
		parts[i] = t.String()
	}
	return a.Rel + "(" + strings.Join(parts, ",") + ")"
}

// Cond is a built-in comparison between two terms, e.g. x < 5 or x ≠ y.
type Cond struct {
	Left  Term
	Op    CmpOp
	Right Term
}

// String renders the condition.
func (c Cond) String() string {
	return fmt.Sprintf("%s%s%s", c.Left, c.Op, c.Right)
}

// CQ is a conjunctive query with built-in predicates:
//
//	ans(Head) :- Atoms, Conds.
//
// An empty Head makes the query Boolean. OutName and OutAttrs name the
// answer relation and columns (defaults are "ans" and the head variable
// names).
type CQ struct {
	Head     []Term
	Atoms    []Atom
	Conds    []Cond
	OutName  string
	OutAttrs []string
}

// String renders the query in Datalog notation.
func (q CQ) String() string {
	head := make([]string, len(q.Head))
	for i, t := range q.Head {
		head[i] = t.String()
	}
	body := make([]string, 0, len(q.Atoms)+len(q.Conds))
	for _, a := range q.Atoms {
		body = append(body, a.String())
	}
	for _, c := range q.Conds {
		body = append(body, c.String())
	}
	return fmt.Sprintf("ans(%s) :- %s", strings.Join(head, ","), strings.Join(body, ", "))
}

// Boolean reports whether the query has an empty head.
func (q CQ) Boolean() bool { return len(q.Head) == 0 }

// Vars returns the distinct variables of the query, body-first then head,
// in first-occurrence order.
func (q CQ) Vars() []string {
	seen := make(map[string]bool)
	var out []string
	add := func(t Term) {
		if t.IsVar() && !seen[t.Var] {
			seen[t.Var] = true
			out = append(out, t.Var)
		}
	}
	for _, a := range q.Atoms {
		for _, t := range a.Terms {
			add(t)
		}
	}
	for _, c := range q.Conds {
		add(c.Left)
		add(c.Right)
	}
	for _, t := range q.Head {
		add(t)
	}
	return out
}

// Validate checks that the query is safe (every head and condition
// variable occurs in some relation atom) and well-formed against db's
// schemas.
func (q CQ) Validate(db *relation.Database) error {
	bodyVars := make(map[string]bool)
	for _, a := range q.Atoms {
		in, ok := db.Instance(a.Rel)
		if !ok {
			return fmt.Errorf("algebra: query references unknown relation %q", a.Rel)
		}
		if len(a.Terms) != in.Schema().Arity() {
			return fmt.Errorf("algebra: atom %s has arity %d, schema wants %d", a, len(a.Terms), in.Schema().Arity())
		}
		for _, t := range a.Terms {
			if t.IsVar() {
				bodyVars[t.Var] = true
			}
		}
	}
	for _, t := range q.Head {
		if t.IsVar() && !bodyVars[t.Var] {
			return fmt.Errorf("algebra: unsafe head variable %q", t.Var)
		}
	}
	for _, c := range q.Conds {
		for _, t := range []Term{c.Left, c.Right} {
			if t.IsVar() && !bodyVars[t.Var] {
				return fmt.Errorf("algebra: unsafe condition variable %q", t.Var)
			}
		}
	}
	return nil
}

// binding maps variable names to values during evaluation.
type binding map[string]relation.Value

func (b binding) resolve(t Term) (relation.Value, bool) {
	if !t.IsVar() {
		return t.Const, true
	}
	v, ok := b[t.Var]
	return v, ok
}

// Eval evaluates the query over db. For Boolean queries the result has a
// single zero-arity... Go's relational model needs at least presence, so
// Boolean queries return an instance of schema ans(sat:bool) containing a
// single tuple (true) when satisfied and no tuple otherwise.
func (q CQ) Eval(db *relation.Database) (*relation.Instance, error) {
	if err := q.Validate(db); err != nil {
		return nil, err
	}
	outName := q.OutName
	if outName == "" {
		outName = "ans"
	}
	if q.Boolean() {
		sat, err := q.Satisfied(db)
		if err != nil {
			return nil, err
		}
		schema := relation.MustSchema(outName, relation.Attr("sat", relation.KindBool))
		out := relation.NewInstance(schema)
		if sat {
			out.MustInsert(relation.Bool(true))
		}
		return out, nil
	}
	schema, err := q.outSchema(db, outName)
	if err != nil {
		return nil, err
	}
	out := relation.NewInstance(schema)
	seen := make(map[string]bool)
	err = q.enumerate(db, func(b binding) error {
		row := make(relation.Tuple, len(q.Head))
		for i, t := range q.Head {
			v, ok := b.resolve(t)
			if !ok {
				return fmt.Errorf("algebra: unbound head term %s", t)
			}
			row[i] = v
		}
		if k := row.Key(); !seen[k] {
			seen[k] = true
			if _, err := out.Insert(row); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Satisfied evaluates the query as Boolean: does any satisfying binding
// exist?
func (q CQ) Satisfied(db *relation.Database) (bool, error) {
	if err := q.Validate(db); err != nil {
		return false, err
	}
	found := false
	err := q.enumerate(db, func(binding) error {
		found = true
		return errStop
	})
	if err != nil && err != errStop {
		return false, err
	}
	return found, nil
}

var errStop = fmt.Errorf("algebra: stop enumeration")

// enumerate backtracks over atoms, invoking fn for every satisfying
// binding. fn may return errStop to cut the search.
func (q CQ) enumerate(db *relation.Database, fn func(binding) error) error {
	b := make(binding)
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(q.Atoms) {
			for _, c := range q.Conds {
				lv, ok1 := b.resolve(c.Left)
				rv, ok2 := b.resolve(c.Right)
				if !ok1 || !ok2 {
					return fmt.Errorf("algebra: unbound condition %s", c)
				}
				if !c.Op.Apply(lv, rv) {
					return nil
				}
			}
			return fn(b)
		}
		atom := q.Atoms[i]
		in, _ := db.Instance(atom.Rel)
		for _, t := range in.Tuples() {
			var bound []string
			ok := true
			for j, term := range atom.Terms {
				if !term.IsVar() {
					if !t[j].Equal(term.Const) {
						ok = false
						break
					}
					continue
				}
				if v, exists := b[term.Var]; exists {
					if !v.Equal(t[j]) {
						ok = false
						break
					}
					continue
				}
				b[term.Var] = t[j]
				bound = append(bound, term.Var)
			}
			if ok {
				if err := rec(i + 1); err != nil {
					for _, v := range bound {
						delete(b, v)
					}
					return err
				}
			}
			for _, v := range bound {
				delete(b, v)
			}
		}
		return nil
	}
	return rec(0)
}

// outSchema builds the answer schema: output attribute kinds come from the
// first body occurrence of each head variable (constants keep their own
// kind).
func (q CQ) outSchema(db *relation.Database, outName string) (*relation.Schema, error) {
	kindOf := make(map[string]relation.Kind)
	for _, a := range q.Atoms {
		in, _ := db.Instance(a.Rel)
		for j, t := range a.Terms {
			if t.IsVar() {
				if _, ok := kindOf[t.Var]; !ok {
					kindOf[t.Var] = in.Schema().Attr(j).Domain.Kind()
				}
			}
		}
	}
	attrs := make([]relation.Attribute, len(q.Head))
	used := make(map[string]int)
	for i, t := range q.Head {
		var name string
		var kind relation.Kind
		if t.IsVar() {
			name, kind = t.Var, kindOf[t.Var]
		} else {
			name, kind = fmt.Sprintf("c%d", i), t.Const.Kind()
		}
		if i < len(q.OutAttrs) && q.OutAttrs[i] != "" {
			name = q.OutAttrs[i]
		}
		if n := used[name]; n > 0 {
			name = fmt.Sprintf("%s_%d", name, n)
		}
		used[name]++
		attrs[i] = relation.Attr(name, kind)
	}
	return relation.NewSchema(outName, attrs...)
}

// JoinsNonKeyToKeyFull is a helper for the Ctree query class of
// Theorem 5.2 (Fuxman–Miller): it reports, for a query whose atoms all
// have primary keys given by keys[rel] (attribute positions), whether
// every join variable that occurs in a non-key position of one atom covers
// the entire key of every other atom it occurs in. This is a conservative
// syntactic check used by the cqa package's rewriting eligibility test.
func (q CQ) JoinsNonKeyToKeyFull(keys map[string][]int) bool {
	// occurrence lists per variable: (atom, position)
	type occ struct{ atom, pos int }
	occs := make(map[string][]occ)
	for ai, a := range q.Atoms {
		for pi, t := range a.Terms {
			if t.IsVar() {
				occs[t.Var] = append(occs[t.Var], occ{ai, pi})
			}
		}
	}
	isKeyPos := func(rel string, pos int) bool {
		for _, p := range keys[rel] {
			if p == pos {
				return true
			}
		}
		return false
	}
	for _, os := range occs {
		if len(os) < 2 {
			continue
		}
		// A variable shared across atoms joins them. For every pair of
		// distinct atoms (A, B) it joins, if it sits at a non-key position
		// of A then its occurrences in B must cover B's entire key.
		for _, oa := range os {
			if isKeyPos(q.Atoms[oa.atom].Rel, oa.pos) {
				continue
			}
			for bi := range q.Atoms {
				if bi == oa.atom {
					continue
				}
				joinsB := false
				coveredKey := make(map[int]bool)
				for _, ob := range os {
					if ob.atom != bi {
						continue
					}
					joinsB = true
					if isKeyPos(q.Atoms[bi].Rel, ob.pos) {
						coveredKey[ob.pos] = true
					}
				}
				if !joinsB {
					continue
				}
				key := keys[q.Atoms[bi].Rel]
				if len(key) == 0 || len(coveredKey) < len(key) {
					return false
				}
			}
		}
	}
	return true
}

// SortedTuples returns the result tuples of an instance sorted
// lexicographically; a convenience for deterministic test assertions.
func SortedTuples(in *relation.Instance) []relation.Tuple {
	ts := in.Tuples()
	sort.Slice(ts, func(i, j int) bool {
		for k := range ts[i] {
			if c := ts[i][k].Compare(ts[j][k]); c != 0 {
				return c < 0
			}
		}
		return false
	})
	return ts
}
