package algebra

import (
	"testing"

	"repro/internal/relation"
)

func testDB() *relation.Database {
	db := relation.NewDatabase()

	emp := relation.NewInstance(relation.MustSchema("emp",
		relation.Attr("id", relation.KindInt),
		relation.Attr("name", relation.KindString),
		relation.Attr("dept", relation.KindString),
		relation.Attr("salary", relation.KindInt),
	))
	emp.MustInsert(relation.Int(1), relation.Str("ann"), relation.Str("db"), relation.Int(90))
	emp.MustInsert(relation.Int(2), relation.Str("bob"), relation.Str("db"), relation.Int(70))
	emp.MustInsert(relation.Int(3), relation.Str("cat"), relation.Str("os"), relation.Int(80))
	db.Add(emp)

	dept := relation.NewInstance(relation.MustSchema("dept",
		relation.Attr("name", relation.KindString),
		relation.Attr("city", relation.KindString),
	))
	dept.MustInsert(relation.Str("db"), relation.Str("EDI"))
	dept.MustInsert(relation.Str("os"), relation.Str("NYC"))
	db.Add(dept)
	return db
}

func TestSelect(t *testing.T) {
	db := testDB()
	out, err := Select{Pred: AttrConst{Attr: "dept", Op: OpEq, Const: relation.Str("db")}, Input: Rel{"emp"}}.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Errorf("σ[dept=db] = %d rows, want 2", out.Len())
	}
	out, err = Select{Pred: AttrConst{Attr: "salary", Op: OpGt, Const: relation.Int(75)}, Input: Rel{"emp"}}.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Errorf("σ[salary>75] = %d rows, want 2", out.Len())
	}
}

func TestSelectUnknownAttr(t *testing.T) {
	db := testDB()
	_, err := Select{Pred: AttrConst{Attr: "nope", Op: OpEq, Const: relation.Int(1)}, Input: Rel{"emp"}}.Eval(db)
	if err == nil {
		t.Error("want error for unknown attribute")
	}
}

func TestProjectDedups(t *testing.T) {
	db := testDB()
	out, err := Project{Attrs: []string{"dept"}, Input: Rel{"emp"}}.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Errorf("π[dept] = %d rows, want 2 (set semantics)", out.Len())
	}
}

func TestProduct(t *testing.T) {
	db := testDB()
	p := Product{Left: Rel{"emp"}, Right: Rel{"dept"}}
	out, err := p.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 6 {
		t.Errorf("emp × dept = %d rows, want 6", out.Len())
	}
	// Clashing attribute "name" is prefixed.
	if _, ok := out.Schema().Lookup("dept.name"); !ok {
		t.Errorf("schema = %v; want dept.name attr", out.Schema())
	}
	s, err := p.OutSchema(db)
	if err != nil || s.Arity() != 6 {
		t.Errorf("OutSchema = %v, %v", s, err)
	}
}

func TestJoinViaSelectProduct(t *testing.T) {
	db := testDB()
	join := Select{
		Pred:  AttrAttr{Left: "dept", Op: OpEq, Right: "dept.name"},
		Input: Product{Left: Rel{"emp"}, Right: Rel{"dept"}},
	}
	out, err := Project{Attrs: []string{"name", "city"}, Input: join}.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 {
		t.Errorf("join = %d rows, want 3", out.Len())
	}
}

func TestUnionDiff(t *testing.T) {
	db := testDB()
	dbNames := Project{Attrs: []string{"dept"}, As: "d", Input: Rel{"emp"}}
	deptNames := Project{Attrs: []string{"name"}, As: "d", Input: Rel{"dept"}}
	u, err := Union{Left: dbNames, Right: deptNames}.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() != 2 {
		t.Errorf("union = %d rows, want 2", u.Len())
	}
	d, err := Diff{Left: deptNames, Right: dbNames}.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 0 {
		t.Errorf("diff = %d rows, want 0", d.Len())
	}
}

func TestUnionIncompatible(t *testing.T) {
	db := testDB()
	if _, err := (Union{Left: Rel{"emp"}, Right: Rel{"dept"}}).Eval(db); err == nil {
		t.Error("want arity incompatibility error")
	}
}

func TestRename(t *testing.T) {
	db := testDB()
	r := Rename{As: "people", Attrs: map[string]string{"name": "who"}, Input: Rel{"emp"}}
	out, err := r.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if out.Schema().Name() != "people" {
		t.Errorf("renamed relation = %q", out.Schema().Name())
	}
	if _, ok := out.Schema().Lookup("who"); !ok {
		t.Error("attribute rename lost")
	}
}

func TestRelMissing(t *testing.T) {
	db := testDB()
	if _, err := (Rel{"ghost"}).Eval(db); err == nil {
		t.Error("want error for missing relation")
	}
	if _, err := (Rel{"ghost"}).OutSchema(db); err == nil {
		t.Error("want schema error for missing relation")
	}
}

func TestPredicateOps(t *testing.T) {
	cases := []struct {
		op   CmpOp
		v, w relation.Value
		want bool
	}{
		{OpEq, relation.Int(1), relation.Int(1), true},
		{OpNe, relation.Int(1), relation.Int(2), true},
		{OpLt, relation.Int(1), relation.Int(2), true},
		{OpLe, relation.Int(2), relation.Int(2), true},
		{OpGt, relation.Str("b"), relation.Str("a"), true},
		{OpGe, relation.Float(1.5), relation.Int(1), true},
		{OpEq, relation.Null(), relation.Null(), true},
		{OpLt, relation.Int(2), relation.Int(1), false},
	}
	for _, c := range cases {
		if got := c.op.Apply(c.v, c.w); got != c.want {
			t.Errorf("%v %v %v = %v, want %v", c.v, c.op, c.w, got, c.want)
		}
	}
}

func TestParseCmpOp(t *testing.T) {
	for s, want := range map[string]CmpOp{"=": OpEq, "==": OpEq, "!=": OpNe, "<>": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe} {
		got, err := ParseCmpOp(s)
		if err != nil || got != want {
			t.Errorf("ParseCmpOp(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseCmpOp("~"); err == nil {
		t.Error("want error for unknown op")
	}
}

func TestBooleanPredicates(t *testing.T) {
	db := testDB()
	emp, _ := db.Instance("emp")
	s := emp.Schema()
	t0 := emp.Tuples()[0] // ann, db, 90
	p := And{
		AttrConst{Attr: "dept", Op: OpEq, Const: relation.Str("db")},
		Or{
			AttrConst{Attr: "salary", Op: OpGt, Const: relation.Int(100)},
			Not{AttrConst{Attr: "name", Op: OpEq, Const: relation.Str("bob")}},
		},
	}
	ok, err := p.Holds(s, t0)
	if err != nil || !ok {
		t.Errorf("compound predicate = %v, %v; want true", ok, err)
	}
	if ok, _ := (And{}).Holds(s, t0); !ok {
		t.Error("empty And should be true")
	}
	if ok, _ := (Or{}).Holds(s, t0); ok {
		t.Error("empty Or should be false")
	}
	if ok, _ := (True{}).Holds(s, t0); !ok {
		t.Error("True should hold")
	}
}

func TestCQEval(t *testing.T) {
	db := testDB()
	// ans(n, c) :- emp(_, n, d, _), dept(d, c).
	q := CQ{
		Head: []Term{V("n"), V("c")},
		Atoms: []Atom{
			{Rel: "emp", Terms: []Term{V("i"), V("n"), V("d"), V("s")}},
			{Rel: "dept", Terms: []Term{V("d"), V("c")}},
		},
	}
	out, err := q.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 {
		t.Fatalf("cq join = %d rows, want 3", out.Len())
	}
	ts := SortedTuples(out)
	if ts[0][0].StrVal() != "ann" || ts[0][1].StrVal() != "EDI" {
		t.Errorf("first row = %v", ts[0])
	}
}

func TestCQWithConstsAndConds(t *testing.T) {
	db := testDB()
	// ans(n) :- emp(_, n, 'db', s), s > 75.
	q := CQ{
		Head: []Term{V("n")},
		Atoms: []Atom{
			{Rel: "emp", Terms: []Term{V("i"), V("n"), C(relation.Str("db")), V("s")}},
		},
		Conds: []Cond{{Left: V("s"), Op: OpGt, Right: C(relation.Int(75))}},
	}
	out, err := q.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 || out.Tuples()[0][0].StrVal() != "ann" {
		t.Errorf("result = %v", out.Tuples())
	}
}

func TestCQBoolean(t *testing.T) {
	db := testDB()
	q := CQ{Atoms: []Atom{{Rel: "emp", Terms: []Term{V("i"), V("n"), C(relation.Str("os")), V("s")}}}}
	sat, err := q.Satisfied(db)
	if err != nil || !sat {
		t.Errorf("sat = %v, %v; want true", sat, err)
	}
	out, err := q.Eval(db)
	if err != nil || out.Len() != 1 {
		t.Errorf("boolean eval = %v, %v", out, err)
	}
	q2 := CQ{Atoms: []Atom{{Rel: "emp", Terms: []Term{V("i"), V("n"), C(relation.Str("hr")), V("s")}}}}
	sat, err = q2.Satisfied(db)
	if err != nil || sat {
		t.Errorf("sat = %v, %v; want false", sat, err)
	}
}

func TestCQValidate(t *testing.T) {
	db := testDB()
	bad := CQ{Head: []Term{V("x")}, Atoms: []Atom{{Rel: "emp", Terms: []Term{V("i"), V("n"), V("d"), V("s")}}}}
	if err := bad.Validate(db); err == nil {
		t.Error("want unsafe-head error")
	}
	bad2 := CQ{Atoms: []Atom{{Rel: "ghost", Terms: []Term{V("x")}}}}
	if err := bad2.Validate(db); err == nil {
		t.Error("want unknown-relation error")
	}
	bad3 := CQ{Atoms: []Atom{{Rel: "dept", Terms: []Term{V("x")}}}}
	if err := bad3.Validate(db); err == nil {
		t.Error("want arity error")
	}
	bad4 := CQ{
		Atoms: []Atom{{Rel: "dept", Terms: []Term{V("x"), V("y")}}},
		Conds: []Cond{{Left: V("z"), Op: OpEq, Right: C(relation.Int(1))}},
	}
	if err := bad4.Validate(db); err == nil {
		t.Error("want unsafe-condition error")
	}
}

func TestCQRepeatedVariable(t *testing.T) {
	db := relation.NewDatabase()
	r := relation.NewInstance(relation.MustSchema("r",
		relation.Attr("a", relation.KindInt), relation.Attr("b", relation.KindInt)))
	r.MustInsert(relation.Int(1), relation.Int(1))
	r.MustInsert(relation.Int(1), relation.Int(2))
	db.Add(r)
	q := CQ{Head: []Term{V("x")}, Atoms: []Atom{{Rel: "r", Terms: []Term{V("x"), V("x")}}}}
	out, err := q.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 || out.Tuples()[0][0].IntVal() != 1 {
		t.Errorf("repeated var result = %v", out.Tuples())
	}
}

func TestCQVars(t *testing.T) {
	q := CQ{
		Head:  []Term{V("n")},
		Atoms: []Atom{{Rel: "emp", Terms: []Term{V("i"), V("n"), V("d"), V("s")}}},
		Conds: []Cond{{Left: V("s"), Op: OpGt, Right: C(relation.Int(0))}},
	}
	vars := q.Vars()
	if len(vars) != 4 || vars[0] != "i" {
		t.Errorf("vars = %v", vars)
	}
}

func TestJoinsNonKeyToKeyFull(t *testing.T) {
	keys := map[string][]int{"emp": {0}, "dept": {0}}
	// emp joins dept on dept(name): non-key position in emp (pos 2),
	// key position 0 in dept, covering dept's full key. OK.
	good := CQ{Atoms: []Atom{
		{Rel: "emp", Terms: []Term{V("i"), V("n"), V("d"), V("s")}},
		{Rel: "dept", Terms: []Term{V("d"), V("c")}},
	}}
	if !good.JoinsNonKeyToKeyFull(keys) {
		t.Error("full non-key-to-key join rejected")
	}
	// Join on dept.city (non-key on both sides) is not full.
	bad := CQ{Atoms: []Atom{
		{Rel: "emp", Terms: []Term{V("i"), V("x"), V("d"), V("s")}},
		{Rel: "dept", Terms: []Term{V("d2"), V("x")}},
	}}
	if bad.JoinsNonKeyToKeyFull(keys) {
		t.Error("non-key-to-non-key join accepted")
	}
}
