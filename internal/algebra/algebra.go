// Package algebra implements the SPCU relational algebra fragment the
// paper's Section 5.2 states its consistent-query-answering results for:
// selection (σ), projection (π), Cartesian product (×), union (∪) and set
// difference (−), plus renaming and natural join as conveniences. It also
// provides conjunctive queries with built-in predicates, the query class of
// Theorems 5.2 and 5.4.
//
// Expressions evaluate over a relation.Database to a fresh
// relation.Instance; evaluation is set-semantics (duplicates removed).
package algebra

import (
	"fmt"
	"strings"

	"repro/internal/relation"
)

// Expr is a relational algebra expression. OutSchema resolves the result
// schema against the database's schemas without evaluating; Eval computes
// the result instance.
type Expr interface {
	// Eval evaluates the expression over db.
	Eval(db *relation.Database) (*relation.Instance, error)
	// OutSchema resolves the output schema against db.
	OutSchema(db *relation.Database) (*relation.Schema, error)
	// String renders the expression in algebra notation.
	String() string
}

// Rel is a base-relation reference.
type Rel struct{ Name string }

// Eval returns a copy of the named instance (set semantics).
func (r Rel) Eval(db *relation.Database) (*relation.Instance, error) {
	in, ok := db.Instance(r.Name)
	if !ok {
		return nil, fmt.Errorf("algebra: no relation %q", r.Name)
	}
	out := in.Clone()
	out.Dedup()
	return out, nil
}

// OutSchema implements Expr.
func (r Rel) OutSchema(db *relation.Database) (*relation.Schema, error) {
	in, ok := db.Instance(r.Name)
	if !ok {
		return nil, fmt.Errorf("algebra: no relation %q", r.Name)
	}
	return in.Schema(), nil
}

func (r Rel) String() string { return r.Name }

// Select is σ_pred(Input).
type Select struct {
	Pred  Predicate
	Input Expr
}

// Eval implements Expr.
func (s Select) Eval(db *relation.Database) (*relation.Instance, error) {
	in, err := s.Input.Eval(db)
	if err != nil {
		return nil, err
	}
	out := relation.NewInstance(in.Schema())
	for _, t := range in.Tuples() {
		ok, err := s.Pred.Holds(in.Schema(), t)
		if err != nil {
			return nil, err
		}
		if ok {
			if _, err := out.Insert(t); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// OutSchema implements Expr.
func (s Select) OutSchema(db *relation.Database) (*relation.Schema, error) {
	return s.Input.OutSchema(db)
}

func (s Select) String() string {
	return fmt.Sprintf("σ[%s](%s)", s.Pred, s.Input)
}

// Project is π_Attrs(Input). As renders the result under a new relation
// name; when empty the input's name is kept.
type Project struct {
	Attrs []string
	As    string
	Input Expr
}

// Eval implements Expr.
func (p Project) Eval(db *relation.Database) (*relation.Instance, error) {
	in, err := p.Input.Eval(db)
	if err != nil {
		return nil, err
	}
	schema, err := p.schemaFrom(in.Schema())
	if err != nil {
		return nil, err
	}
	pos, err := in.Schema().Positions(p.Attrs)
	if err != nil {
		return nil, err
	}
	out := relation.NewInstance(schema)
	seen := make(map[string]bool)
	for _, t := range in.Tuples() {
		pt := t.Project(pos)
		k := pt.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		if _, err := out.Insert(pt); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (p Project) schemaFrom(s *relation.Schema) (*relation.Schema, error) {
	name := p.As
	if name == "" {
		name = s.Name()
	}
	return s.Project(name, p.Attrs)
}

// OutSchema implements Expr.
func (p Project) OutSchema(db *relation.Database) (*relation.Schema, error) {
	s, err := p.Input.OutSchema(db)
	if err != nil {
		return nil, err
	}
	return p.schemaFrom(s)
}

func (p Project) String() string {
	return fmt.Sprintf("π[%s](%s)", strings.Join(p.Attrs, ","), p.Input)
}

// Product is Left × Right. Attribute name clashes are resolved by
// prefixing the right operand's clashing attributes with its relation name
// and a dot. As names the result relation (default "product").
type Product struct {
	Left, Right Expr
	As          string
}

func (p Product) outName() string {
	if p.As != "" {
		return p.As
	}
	return "product"
}

func (p Product) joinSchemas(ls, rs *relation.Schema) (*relation.Schema, error) {
	attrs := append([]relation.Attribute(nil), ls.Attrs()...)
	for _, a := range rs.Attrs() {
		name := a.Name
		if _, clash := ls.Lookup(name); clash {
			name = rs.Name() + "." + name
		}
		attrs = append(attrs, relation.Attribute{Name: name, Domain: a.Domain})
	}
	return relation.NewSchema(p.outName(), attrs...)
}

// Eval implements Expr.
func (p Product) Eval(db *relation.Database) (*relation.Instance, error) {
	l, err := p.Left.Eval(db)
	if err != nil {
		return nil, err
	}
	r, err := p.Right.Eval(db)
	if err != nil {
		return nil, err
	}
	schema, err := p.joinSchemas(l.Schema(), r.Schema())
	if err != nil {
		return nil, err
	}
	out := relation.NewInstance(schema)
	for _, lt := range l.Tuples() {
		for _, rt := range r.Tuples() {
			t := make(relation.Tuple, 0, len(lt)+len(rt))
			t = append(t, lt...)
			t = append(t, rt...)
			if _, err := out.Insert(t); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// OutSchema implements Expr.
func (p Product) OutSchema(db *relation.Database) (*relation.Schema, error) {
	ls, err := p.Left.OutSchema(db)
	if err != nil {
		return nil, err
	}
	rs, err := p.Right.OutSchema(db)
	if err != nil {
		return nil, err
	}
	return p.joinSchemas(ls, rs)
}

func (p Product) String() string { return fmt.Sprintf("(%s × %s)", p.Left, p.Right) }

// Union is Left ∪ Right (schemas must be arity- and kind-compatible).
type Union struct{ Left, Right Expr }

// Eval implements Expr.
func (u Union) Eval(db *relation.Database) (*relation.Instance, error) {
	l, err := u.Left.Eval(db)
	if err != nil {
		return nil, err
	}
	r, err := u.Right.Eval(db)
	if err != nil {
		return nil, err
	}
	if err := compatible(l.Schema(), r.Schema()); err != nil {
		return nil, err
	}
	out := relation.NewInstance(l.Schema())
	seen := make(map[string]bool)
	for _, src := range []*relation.Instance{l, r} {
		for _, t := range src.Tuples() {
			if k := t.Key(); !seen[k] {
				seen[k] = true
				if _, err := out.Insert(t); err != nil {
					return nil, err
				}
			}
		}
	}
	return out, nil
}

// OutSchema implements Expr.
func (u Union) OutSchema(db *relation.Database) (*relation.Schema, error) {
	return u.Left.OutSchema(db)
}

func (u Union) String() string { return fmt.Sprintf("(%s ∪ %s)", u.Left, u.Right) }

// Diff is Left − Right.
type Diff struct{ Left, Right Expr }

// Eval implements Expr.
func (d Diff) Eval(db *relation.Database) (*relation.Instance, error) {
	l, err := d.Left.Eval(db)
	if err != nil {
		return nil, err
	}
	r, err := d.Right.Eval(db)
	if err != nil {
		return nil, err
	}
	if err := compatible(l.Schema(), r.Schema()); err != nil {
		return nil, err
	}
	drop := make(map[string]bool, r.Len())
	for _, t := range r.Tuples() {
		drop[t.Key()] = true
	}
	out := relation.NewInstance(l.Schema())
	for _, t := range l.Tuples() {
		if !drop[t.Key()] {
			if _, err := out.Insert(t); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// OutSchema implements Expr.
func (d Diff) OutSchema(db *relation.Database) (*relation.Schema, error) {
	return d.Left.OutSchema(db)
}

func (d Diff) String() string { return fmt.Sprintf("(%s − %s)", d.Left, d.Right) }

// Rename renames the result relation and, optionally, attributes
// (old → new pairs in Attrs).
type Rename struct {
	As    string
	Attrs map[string]string
	Input Expr
}

func (r Rename) rename(s *relation.Schema) (*relation.Schema, error) {
	name := r.As
	if name == "" {
		name = s.Name()
	}
	attrs := make([]relation.Attribute, s.Arity())
	for i, a := range s.Attrs() {
		if n, ok := r.Attrs[a.Name]; ok {
			a.Name = n
		}
		attrs[i] = a
	}
	return relation.NewSchema(name, attrs...)
}

// Eval implements Expr.
func (r Rename) Eval(db *relation.Database) (*relation.Instance, error) {
	in, err := r.Input.Eval(db)
	if err != nil {
		return nil, err
	}
	schema, err := r.rename(in.Schema())
	if err != nil {
		return nil, err
	}
	out := relation.NewInstance(schema)
	for _, t := range in.Tuples() {
		if _, err := out.Insert(t); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// OutSchema implements Expr.
func (r Rename) OutSchema(db *relation.Database) (*relation.Schema, error) {
	s, err := r.Input.OutSchema(db)
	if err != nil {
		return nil, err
	}
	return r.rename(s)
}

func (r Rename) String() string { return fmt.Sprintf("ρ[%s](%s)", r.As, r.Input) }

// compatible checks union/difference compatibility (same arity and kinds).
func compatible(a, b *relation.Schema) error {
	if a.Arity() != b.Arity() {
		return fmt.Errorf("algebra: incompatible schemas %s and %s (arity)", a.Name(), b.Name())
	}
	for i := 0; i < a.Arity(); i++ {
		if a.Attr(i).Domain.Kind() != b.Attr(i).Domain.Kind() {
			return fmt.Errorf("algebra: incompatible schemas %s and %s at position %d", a.Name(), b.Name(), i)
		}
	}
	return nil
}
