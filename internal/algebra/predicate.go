package algebra

import (
	"fmt"

	"repro/internal/relation"
)

// CmpOp is a built-in comparison predicate: =, ≠, <, ≤, >, ≥ — the
// predicates denial constraints and conjunctive queries range over
// (Section 2.3 of the paper).
type CmpOp uint8

// The comparison operators.
const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String renders the operator symbol.
func (op CmpOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "≠"
	case OpLt:
		return "<"
	case OpLe:
		return "≤"
	case OpGt:
		return ">"
	case OpGe:
		return "≥"
	default:
		return "?"
	}
}

// ParseCmpOp parses an ASCII operator token (=, !=, <, <=, >, >=).
func ParseCmpOp(s string) (CmpOp, error) {
	switch s {
	case "=", "==":
		return OpEq, nil
	case "!=", "<>", "≠":
		return OpNe, nil
	case "<":
		return OpLt, nil
	case "<=", "≤":
		return OpLe, nil
	case ">":
		return OpGt, nil
	case ">=", "≥":
		return OpGe, nil
	default:
		return OpEq, fmt.Errorf("algebra: unknown comparison operator %q", s)
	}
}

// Apply evaluates v op w. Comparisons involving null are false except
// null = null and null ≥/≤ null, matching two-valued semantics over the
// Compare order.
func (op CmpOp) Apply(v, w relation.Value) bool {
	c := v.Compare(w)
	eq := v.Equal(w)
	switch op {
	case OpEq:
		return eq
	case OpNe:
		return !eq
	case OpLt:
		return c < 0
	case OpLe:
		return c <= 0
	case OpGt:
		return c > 0
	case OpGe:
		return c >= 0
	default:
		return false
	}
}

// Predicate is a boolean selection condition over a tuple.
type Predicate interface {
	// Holds evaluates the predicate on tuple t of schema s.
	Holds(s *relation.Schema, t relation.Tuple) (bool, error)
	String() string
}

// AttrConst compares attribute Attr against constant Const.
type AttrConst struct {
	Attr  string
	Op    CmpOp
	Const relation.Value
}

// Holds implements Predicate.
func (p AttrConst) Holds(s *relation.Schema, t relation.Tuple) (bool, error) {
	i, ok := s.Lookup(p.Attr)
	if !ok {
		return false, fmt.Errorf("algebra: predicate references unknown attribute %q", p.Attr)
	}
	return p.Op.Apply(t[i], p.Const), nil
}

func (p AttrConst) String() string { return fmt.Sprintf("%s%s%s", p.Attr, p.Op, p.Const) }

// AttrAttr compares two attributes of the same tuple.
type AttrAttr struct {
	Left  string
	Op    CmpOp
	Right string
}

// Holds implements Predicate.
func (p AttrAttr) Holds(s *relation.Schema, t relation.Tuple) (bool, error) {
	i, ok := s.Lookup(p.Left)
	if !ok {
		return false, fmt.Errorf("algebra: predicate references unknown attribute %q", p.Left)
	}
	j, ok := s.Lookup(p.Right)
	if !ok {
		return false, fmt.Errorf("algebra: predicate references unknown attribute %q", p.Right)
	}
	return p.Op.Apply(t[i], t[j]), nil
}

func (p AttrAttr) String() string { return fmt.Sprintf("%s%s%s", p.Left, p.Op, p.Right) }

// And is the conjunction of its operands (true when empty).
type And []Predicate

// Holds implements Predicate.
func (ps And) Holds(s *relation.Schema, t relation.Tuple) (bool, error) {
	for _, p := range ps {
		ok, err := p.Holds(s, t)
		if err != nil || !ok {
			return false, err
		}
	}
	return true, nil
}

func (ps And) String() string {
	out := ""
	for i, p := range ps {
		if i > 0 {
			out += " ∧ "
		}
		out += p.String()
	}
	return out
}

// Or is the disjunction of its operands (false when empty).
type Or []Predicate

// Holds implements Predicate.
func (ps Or) Holds(s *relation.Schema, t relation.Tuple) (bool, error) {
	for _, p := range ps {
		ok, err := p.Holds(s, t)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

func (ps Or) String() string {
	out := ""
	for i, p := range ps {
		if i > 0 {
			out += " ∨ "
		}
		out += p.String()
	}
	return "(" + out + ")"
}

// Not negates a predicate.
type Not struct{ P Predicate }

// Holds implements Predicate.
func (n Not) Holds(s *relation.Schema, t relation.Tuple) (bool, error) {
	ok, err := n.P.Holds(s, t)
	return !ok, err
}

func (n Not) String() string { return "¬(" + n.P.String() + ")" }

// True is the always-true predicate.
type True struct{}

// Holds implements Predicate.
func (True) Holds(*relation.Schema, relation.Tuple) (bool, error) { return true, nil }

func (True) String() string { return "true" }
