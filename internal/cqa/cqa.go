// Package cqa implements consistent query answering (Section 5.2 of Fan,
// PODS 2008): computing the certain answers of a query — the tuples in
// the answer over every repair of an inconsistent database — without
// editing the data. It provides an exact engine by X-repair enumeration
// (exponential, matching the coNP-/Πp2-hardness landscape of Theorems
// 5.2–5.4), the PTIME first-order rewriting for key-based
// selection/projection queries in the style of Fuxman and Miller
// (Theorem 5.2's Ctree fragment), and scalar aggregation ranges in the
// style of Arenas et al.
package cqa

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/denial"
	"repro/internal/relation"
	"repro/internal/repair"
)

// CertainAnswers computes the certain answers of q over db w.r.t. the
// denial constraints by enumerating all X-repairs and intersecting the
// answers. maxRepairs guards the exponential blow-up (0 = 10000); the
// error reports when the bound is exceeded. For Boolean queries the
// result instance is nonempty iff the query is certainly true.
func CertainAnswers(db *relation.Database, dcs []denial.DC, q algebra.CQ, maxRepairs int) (*relation.Instance, int, error) {
	if maxRepairs <= 0 {
		maxRepairs = 10000
	}
	h, err := repair.BuildHypergraph(db, dcs)
	if err != nil {
		return nil, 0, err
	}
	repairs := h.EnumerateXRepairs(maxRepairs + 1)
	if len(repairs) > maxRepairs {
		return nil, 0, fmt.Errorf("cqa: more than %d repairs", maxRepairs)
	}
	if len(repairs) == 0 {
		return nil, 0, fmt.Errorf("cqa: no repairs (unsatisfiable constraints)")
	}
	var result *relation.Instance
	for _, kept := range repairs {
		sub := subDatabase(db, kept)
		ans, err := q.Eval(sub)
		if err != nil {
			return nil, 0, err
		}
		if result == nil {
			result = ans
			continue
		}
		result = intersect(result, ans)
		if result.Len() == 0 {
			break // early exit: intersection can only shrink
		}
	}
	return result, len(repairs), nil
}

// CertainlyTrue reports whether a Boolean query holds in every repair.
func CertainlyTrue(db *relation.Database, dcs []denial.DC, q algebra.CQ, maxRepairs int) (bool, error) {
	ans, _, err := CertainAnswers(db, dcs, q, maxRepairs)
	if err != nil {
		return false, err
	}
	return ans.Len() > 0, nil
}

// subDatabase builds the repair database keeping only the listed tuples.
func subDatabase(db *relation.Database, kept []denial.TupleRef) *relation.Database {
	keep := make(map[denial.TupleRef]bool, len(kept))
	for _, ref := range kept {
		keep[ref] = true
	}
	out := db.Clone()
	for _, name := range out.Names() {
		in, _ := out.Instance(name)
		for _, id := range in.IDs() {
			if !keep[denial.TupleRef{Rel: name, TID: id}] {
				in.Delete(id)
			}
		}
	}
	return out
}

// intersect keeps the tuples of a that also occur in b.
func intersect(a, b *relation.Instance) *relation.Instance {
	present := make(map[string]bool, b.Len())
	for _, t := range b.Tuples() {
		present[t.Key()] = true
	}
	out := relation.NewInstance(a.Schema())
	for _, t := range a.Tuples() {
		if present[t.Key()] {
			out.MustInsert(t...)
		}
	}
	return out
}

// CertainByKeyRewriting computes the certain answers of the
// selection/projection query π_out(σ_pred(R)) under the primary key
// keyAttrs of R, in PTIME, by the group-based first-order rewriting: a
// projected row is certain iff some key group has every member satisfying
// the selection and agreeing on the output attributes. For single-atom
// queries this is exact (see Fuxman–Miller): if no group guarantees a
// row, the repair picking each group's failing member omits it.
func CertainByKeyRewriting(in *relation.Instance, keyAttrs []string, pred algebra.Predicate, outAttrs []string) (*relation.Instance, error) {
	s := in.Schema()
	keyPos, err := s.Positions(keyAttrs)
	if err != nil {
		return nil, fmt.Errorf("cqa: %v", err)
	}
	outPos, err := s.Positions(outAttrs)
	if err != nil {
		return nil, fmt.Errorf("cqa: %v", err)
	}
	outSchema, err := s.Project("ans", outAttrs)
	if err != nil {
		return nil, err
	}
	if pred == nil {
		pred = algebra.True{}
	}
	out := relation.NewInstance(outSchema)
	seen := make(map[string]bool)
	ix := relation.BuildIndex(in, keyPos)
	ix.Groups(1, func(_ string, ids []relation.TID) {
		var row relation.Tuple
		ok := true
		for _, id := range ids {
			t, _ := in.Tuple(id)
			holds, err := pred.Holds(s, t)
			if err != nil || !holds {
				ok = false
				break
			}
			pt := t.Project(outPos)
			if row == nil {
				row = pt
			} else if !row.Equal(pt) {
				ok = false
				break
			}
		}
		if ok && row != nil {
			if k := row.Key(); !seen[k] {
				seen[k] = true
				out.MustInsert(row...)
			}
		}
	})
	return out, nil
}

// EligibleForRewriting reports whether a conjunctive query falls in the
// fragment our rewriting covers exactly: a single atom over a relation
// with the given key, no repeated variables beyond the usual pattern, and
// conditions only over that atom's variables — plus the Ctree join
// condition for multi-atom queries (which we conservatively reject here).
func EligibleForRewriting(q algebra.CQ, keys map[string][]int) bool {
	if len(q.Atoms) != 1 {
		return false
	}
	if len(keys[q.Atoms[0].Rel]) == 0 {
		return false
	}
	return q.JoinsNonKeyToKeyFull(keys)
}
