package cqa

import (
	"fmt"
	"math"

	"repro/internal/denial"
	"repro/internal/relation"
	"repro/internal/repair"
)

// Scalar aggregation over inconsistent data (Arenas et al., cited as [8]
// in the paper): since different repairs yield different aggregate
// values, the consistent answer is the tightest interval [glb, lub]
// containing the aggregate over every repair.

// AggKind selects the aggregate function.
type AggKind uint8

// The aggregates.
const (
	Count AggKind = iota
	Sum
	Min
	Max
)

// String names the aggregate.
func (k AggKind) String() string {
	switch k {
	case Count:
		return "COUNT"
	case Sum:
		return "SUM"
	case Min:
		return "MIN"
	default:
		return "MAX"
	}
}

// Range is a [GLB, LUB] interval of aggregate values over all repairs.
type Range struct {
	GLB, LUB float64
}

// AggregateRange computes the consistent-answer interval of the aggregate
// over attribute attr of relation rel, across all X-repairs of db
// w.r.t. the denial constraints (exact, by enumeration; maxRepairs as in
// CertainAnswers).
func AggregateRange(db *relation.Database, dcs []denial.DC, rel, attr string, kind AggKind, maxRepairs int) (Range, error) {
	if maxRepairs <= 0 {
		maxRepairs = 10000
	}
	in, ok := db.Instance(rel)
	if !ok {
		return Range{}, fmt.Errorf("cqa: no relation %q", rel)
	}
	pos, ok := in.Schema().Lookup(attr)
	if !ok {
		return Range{}, fmt.Errorf("cqa: no attribute %q", attr)
	}
	h, err := repair.BuildHypergraph(db, dcs)
	if err != nil {
		return Range{}, err
	}
	repairs := h.EnumerateXRepairs(maxRepairs + 1)
	if len(repairs) > maxRepairs {
		return Range{}, fmt.Errorf("cqa: more than %d repairs", maxRepairs)
	}
	if len(repairs) == 0 {
		return Range{}, fmt.Errorf("cqa: no repairs")
	}
	out := Range{GLB: math.Inf(1), LUB: math.Inf(-1)}
	for _, kept := range repairs {
		sub := subDatabase(db, kept)
		v := aggregate(sub.MustInstance(rel), pos, kind)
		if v < out.GLB {
			out.GLB = v
		}
		if v > out.LUB {
			out.LUB = v
		}
	}
	return out, nil
}

func aggregate(in *relation.Instance, pos int, kind AggKind) float64 {
	switch kind {
	case Count:
		return float64(in.Len())
	case Sum:
		s := 0.0
		for _, t := range in.Tuples() {
			s += t[pos].FloatVal()
		}
		return s
	case Min:
		m := math.Inf(1)
		for _, t := range in.Tuples() {
			if v := t[pos].FloatVal(); v < m {
				m = v
			}
		}
		return m
	default:
		m := math.Inf(-1)
		for _, t := range in.Tuples() {
			if v := t[pos].FloatVal(); v > m {
				m = v
			}
		}
		return m
	}
}

// SumRangeUnderKey computes the SUM(attr) interval under a single primary
// key in closed form, without enumeration: within a key group, an
// X-repair keeps exactly the tuples of one duplicate class (tuples that
// are fully equal do not conflict and survive together), so the bounds
// sum the per-group minimum and maximum class contributions. This is the
// PTIME scalar-aggregation result for one key constraint.
func SumRangeUnderKey(in *relation.Instance, keyAttrs []string, attr string) (Range, error) {
	s := in.Schema()
	keyPos, err := s.Positions(keyAttrs)
	if err != nil {
		return Range{}, fmt.Errorf("cqa: %v", err)
	}
	pos, ok := s.Lookup(attr)
	if !ok {
		return Range{}, fmt.Errorf("cqa: no attribute %q", attr)
	}
	var r Range
	ix := relation.BuildIndex(in, keyPos)
	ix.Groups(1, func(_ string, ids []relation.TID) {
		// Group tuples into duplicate classes; each class contributes
		// (class size × value) when chosen.
		classSum := make(map[string]float64)
		for _, id := range ids {
			t, _ := in.Tuple(id)
			classSum[t.Key()] += t[pos].FloatVal()
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range classSum {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		r.GLB += lo
		r.LUB += hi
	})
	return r, nil
}
