package cqa_test

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/cqa"
	"repro/internal/denial"
	"repro/internal/gen"
	"repro/internal/relation"
)

// accountsDB builds a small inconsistent instance: account balances with
// a duplicated key.
func accountsDB() (*relation.Database, *relation.Instance, []denial.DC) {
	s := relation.MustSchema("acct",
		relation.Attr("id", relation.KindInt),
		relation.Attr("owner", relation.KindString),
		relation.Attr("balance", relation.KindInt),
	)
	in := relation.NewInstance(s)
	in.MustInsert(relation.Int(1), relation.Str("ann"), relation.Int(100)) // t0
	in.MustInsert(relation.Int(1), relation.Str("ann"), relation.Int(250)) // t1: conflicting balance
	in.MustInsert(relation.Int(2), relation.Str("bob"), relation.Int(80))  // t2: clean
	in.MustInsert(relation.Int(3), relation.Str("cat"), relation.Int(10))  // t3
	in.MustInsert(relation.Int(3), relation.Str("dan"), relation.Int(10))  // t4: conflicting owner
	db := relation.NewDatabase()
	db.Add(in)
	dcs, err := denial.Key(s, []string{"id"})
	if err != nil {
		panic(err)
	}
	return db, in, dcs
}

func TestCertainAnswersEnumeration(t *testing.T) {
	db, _, dcs := accountsDB()
	// ans(o) :- acct(i, o, b): owners certain to exist.
	q := algebra.CQ{
		Head:  []algebra.Term{algebra.V("o")},
		Atoms: []algebra.Atom{{Rel: "acct", Terms: []algebra.Term{algebra.V("i"), algebra.V("o"), algebra.V("b")}}},
	}
	ans, nRepairs, err := cqa.CertainAnswers(db, dcs, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if nRepairs != 4 { // 2 choices for id=1 × 2 choices for id=3
		t.Errorf("repairs = %d, want 4", nRepairs)
	}
	// ann survives in both id=1 repairs; bob is clean. cat/dan each miss
	// in one repair.
	got := map[string]bool{}
	for _, tu := range ans.Tuples() {
		got[tu[0].StrVal()] = true
	}
	if !got["ann"] || !got["bob"] || got["cat"] || got["dan"] {
		t.Errorf("certain owners = %v, want {ann, bob}", got)
	}
}

func TestCertainAnswersBooleanAndConds(t *testing.T) {
	db, _, dcs := accountsDB()
	// Is there certainly an account with balance ≥ 100? In every repair,
	// id=1 keeps a balance of 100 or 250, so yes.
	q := algebra.CQ{
		Atoms: []algebra.Atom{{Rel: "acct", Terms: []algebra.Term{algebra.V("i"), algebra.V("o"), algebra.V("b")}}},
		Conds: []algebra.Cond{{Left: algebra.V("b"), Op: algebra.OpGe, Right: algebra.C(relation.Int(100))}},
	}
	ok, err := cqa.CertainlyTrue(db, dcs, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("balance ≥ 100 holds in every repair")
	}
	// Is there certainly a balance ≥ 200? Only in the repair keeping 250.
	q.Conds[0].Right = algebra.C(relation.Int(200))
	ok, err = cqa.CertainlyTrue(db, dcs, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("balance ≥ 200 fails in the repair keeping 100")
	}
}

// TestRewritingMatchesEnumeration cross-checks the PTIME key rewriting
// against exhaustive enumeration on selection/projection queries.
func TestCQARewritingMatchesEnumeration(t *testing.T) {
	db, in, dcs := accountsDB()
	cases := []struct {
		name string
		pred algebra.Predicate
		out  []string
	}{
		{"all-owners", nil, []string{"owner"}},
		{"rich", algebra.AttrConst{Attr: "balance", Op: algebra.OpGe, Const: relation.Int(50)}, []string{"id"}},
		{"owner-balance", nil, []string{"owner", "balance"}},
		{"balance10", algebra.AttrConst{Attr: "balance", Op: algebra.OpEq, Const: relation.Int(10)}, []string{"balance"}},
	}
	for _, c := range cases {
		rew, err := cqa.CertainByKeyRewriting(in, []string{"id"}, c.pred, c.out)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		// Equivalent CQ for the enumeration engine.
		terms := []algebra.Term{algebra.V("i"), algebra.V("o"), algebra.V("b")}
		varOf := map[string]string{"id": "i", "owner": "o", "balance": "b"}
		var head []algebra.Term
		for _, a := range c.out {
			head = append(head, algebra.V(varOf[a]))
		}
		q := algebra.CQ{Head: head, Atoms: []algebra.Atom{{Rel: "acct", Terms: terms}}}
		if c.pred != nil {
			ac := c.pred.(algebra.AttrConst)
			q.Conds = []algebra.Cond{{Left: algebra.V(varOf[ac.Attr]), Op: ac.Op, Right: algebra.C(ac.Const)}}
		}
		enum, _, err := cqa.CertainAnswers(db, dcs, q, 0)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got, want := tuplesKey(rew), tuplesKey(enum); got != want {
			t.Errorf("%s: rewriting %v vs enumeration %v", c.name, rew.Tuples(), enum.Tuples())
		}
	}
}

func tuplesKey(in *relation.Instance) string {
	out := ""
	for _, t := range algebra.SortedTuples(in) {
		out += t.Key() + ";"
	}
	return out
}

func TestCQAOnExample51Scale(t *testing.T) {
	// The Example 5.1 family has 2^n repairs; certain answers over it are
	// the shared (a_i) values.
	in := gen.Example51(6)
	db := relation.NewDatabase()
	db.Add(in)
	dcs, _ := denial.Key(in.Schema(), []string{"A"})
	q := algebra.CQ{
		Head:  []algebra.Term{algebra.V("a")},
		Atoms: []algebra.Atom{{Rel: "r", Terms: []algebra.Term{algebra.V("a"), algebra.V("b")}}},
	}
	ans, n, err := cqa.CertainAnswers(db, dcs, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 64 {
		t.Errorf("repairs = %d, want 64", n)
	}
	if ans.Len() != 6 {
		t.Errorf("certain a-values = %d, want 6", ans.Len())
	}
	// The repair cap triggers.
	if _, _, err := cqa.CertainAnswers(db, dcs, q, 10); err == nil {
		t.Error("want cap error with maxRepairs=10")
	}
}

func TestEligibleForRewriting(t *testing.T) {
	keys := map[string][]int{"acct": {0}}
	single := algebra.CQ{
		Head:  []algebra.Term{algebra.V("o")},
		Atoms: []algebra.Atom{{Rel: "acct", Terms: []algebra.Term{algebra.V("i"), algebra.V("o"), algebra.V("b")}}},
	}
	if !cqa.EligibleForRewriting(single, keys) {
		t.Error("single-atom key query should be eligible")
	}
	multi := algebra.CQ{Atoms: []algebra.Atom{
		{Rel: "acct", Terms: []algebra.Term{algebra.V("i"), algebra.V("o"), algebra.V("b")}},
		{Rel: "acct", Terms: []algebra.Term{algebra.V("j"), algebra.V("o"), algebra.V("c")}},
	}}
	if cqa.EligibleForRewriting(multi, keys) {
		t.Error("multi-atom queries are conservatively rejected")
	}
	if cqa.EligibleForRewriting(single, map[string][]int{}) {
		t.Error("no key: ineligible")
	}
}

func TestAggregateRanges(t *testing.T) {
	db, in, dcs := accountsDB()
	r, err := cqa.AggregateRange(db, dcs, "acct", "balance", cqa.Sum, 0)
	if err != nil {
		t.Fatal(err)
	}
	// id=1 contributes 100 or 250; id=2 contributes 80; id=3 contributes
	// 10 either way. SUM ∈ [190, 340].
	if r.GLB != 190 || r.LUB != 340 {
		t.Errorf("SUM range = %+v, want [190, 340]", r)
	}
	// The closed form agrees.
	cf, err := cqa.SumRangeUnderKey(in, []string{"id"}, "balance")
	if err != nil {
		t.Fatal(err)
	}
	if cf != r {
		t.Errorf("closed form %+v vs enumeration %+v", cf, r)
	}
	// COUNT is 3 in every repair: one tuple from each of the id=1 and
	// id=3 groups plus the clean id=2 tuple.
	rc, err := cqa.AggregateRange(db, dcs, "acct", "balance", cqa.Count, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rc.GLB != 3 || rc.LUB != 3 {
		t.Errorf("COUNT range = %+v, want [3, 3]", rc)
	}
	rmin, err := cqa.AggregateRange(db, dcs, "acct", "balance", cqa.Min, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rmin.GLB != 10 || rmin.LUB != 10 {
		t.Errorf("MIN range = %+v, want [10, 10]", rmin)
	}
	rmax, err := cqa.AggregateRange(db, dcs, "acct", "balance", cqa.Max, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rmax.GLB != 100 || rmax.LUB != 250 {
		t.Errorf("MAX range = %+v, want [100, 250]", rmax)
	}
	for _, k := range []cqa.AggKind{cqa.Count, cqa.Sum, cqa.Min, cqa.Max} {
		if k.String() == "" {
			t.Error("AggKind.String empty")
		}
	}
}

func TestSumRangeDuplicateClasses(t *testing.T) {
	// Duplicate tuples survive together: {(a,5),(a,5),(a,7)} sums to 10
	// or 7.
	s := relation.MustSchema("r",
		relation.Attr("k", relation.KindString),
		relation.Attr("v", relation.KindInt),
	)
	in := relation.NewInstance(s)
	in.MustInsert(relation.Str("a"), relation.Int(5))
	in.MustInsert(relation.Str("a"), relation.Int(5))
	in.MustInsert(relation.Str("a"), relation.Int(7))
	db := relation.NewDatabase()
	db.Add(in)
	dcs, _ := denial.Key(s, []string{"k"})
	enum, err := cqa.AggregateRange(db, dcs, "r", "v", cqa.Sum, 0)
	if err != nil {
		t.Fatal(err)
	}
	cf, err := cqa.SumRangeUnderKey(in, []string{"k"}, "v")
	if err != nil {
		t.Fatal(err)
	}
	if enum != cf {
		t.Errorf("enumeration %+v vs closed form %+v", enum, cf)
	}
	if cf.GLB != 7 || cf.LUB != 10 {
		t.Errorf("range = %+v, want [7, 10]", cf)
	}
}

func TestAggregateErrors(t *testing.T) {
	db, in, dcs := accountsDB()
	if _, err := cqa.AggregateRange(db, dcs, "ghost", "balance", cqa.Sum, 0); err == nil {
		t.Error("want error for unknown relation")
	}
	if _, err := cqa.AggregateRange(db, dcs, "acct", "ghost", cqa.Sum, 0); err == nil {
		t.Error("want error for unknown attribute")
	}
	if _, err := cqa.SumRangeUnderKey(in, []string{"ghost"}, "balance"); err == nil {
		t.Error("want error for unknown key attribute")
	}
	if _, err := cqa.SumRangeUnderKey(in, []string{"id"}, "ghost"); err == nil {
		t.Error("want error for unknown aggregate attribute")
	}
	if _, err := cqa.CertainByKeyRewriting(in, []string{"ghost"}, nil, []string{"owner"}); err == nil {
		t.Error("want error for unknown key attribute in rewriting")
	}
	if _, err := cqa.CertainByKeyRewriting(in, []string{"id"}, nil, []string{"ghost"}); err == nil {
		t.Error("want error for unknown output attribute in rewriting")
	}
}
