// Native fuzz target for the op-log wire parser: arbitrary byte
// streams must never panic the Reader, and anything it parses must
// survive a Format → Parse round trip bit for bit. Seeded from the
// corpus the unit tests exercise; CI runs a short -fuzz smoke on top
// of the seeds.
package oplog

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func FuzzParse(f *testing.F) {
	seeds := []string{
		"insert customer 44,131,1234567,Mike,Mayfield,NYC,EH4 8LE\ncommit\n",
		"insert order B1,\"Harry Potter\",book,17.99\nupdate order 0 price=19.99\ndelete order 0\ncommit\n",
		"# comment\n\ninsert book B2,\"Title, with comma\",9.99,hard-cover\ncommit\ncommit\n",
		"update customer 3 city=EDI\n",
		"delete order 7\ncommit\ninsert order B9,T,CD,5.99\n",
		"insert order \"quoted\"\"asin\",T,book,1.0\ncommit\n",
		"bogus line\n",
		"insert nosuch 1,2\n",
		"insert order too,few\n",
		"update order notanumber price=1\n",
		"update order 3 nosuchattr=1\n",
		"commit\n\n#\n",
		strings.Repeat("insert order a,b,book,1.5\n", 40) + "commit\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		schemas := testSchemas()
		batches, err := Parse(bytes.NewReader(data), schemas)
		if err != nil {
			return // a clean rejection is a valid outcome
		}
		for _, batch := range batches {
			if len(batch) == 0 {
				t.Fatal("Parse delivered an empty batch")
			}
			if len(batch) > MaxBatchOps {
				t.Fatalf("Parse delivered a %d-op batch over the %d cap", len(batch), MaxBatchOps)
			}
		}
		// Whatever parsed AND formats must round-trip byte for byte.
		// Format may legitimately refuse values the line format cannot
		// re-carry — a quoted CSV cell smuggles edge whitespace or a bare
		// CR past the parser's line trim — so a Format error just ends
		// the property; a successful Format must re-parse identically.
		var buf bytes.Buffer
		if err := Format(&buf, batches, schemas); err != nil {
			return
		}
		again, err := Parse(bytes.NewReader(buf.Bytes()), schemas)
		if err != nil {
			t.Fatalf("re-Parse of Format output: %v\nwire: %q", err, buf.Bytes())
		}
		if !reflect.DeepEqual(batches, again) {
			t.Fatalf("round trip diverges:\n first: %+v\nsecond: %+v\n wire: %q", batches, again, buf.Bytes())
		}
	})
}
