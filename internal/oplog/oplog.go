// Package oplog is the line-oriented update-log wire format shared by
// cmd/dqdetect's -follow mode and cmd/dqserve's POST /batch endpoint:
// a stream of insert/update/delete ops batched by commit markers, each
// batch the unit a detect.DBMonitor applies atomically.
//
//	insert customer 44,131,1234567,Mike,Mayfield,NYC,EH4 8LE
//	update customer 3 city=EDI
//	delete customer 7
//	commit
//
// Comments (#) and blank lines are skipped; "commit" closes the batch
// accumulated so far (EOF closes the tail implicitly, and empty commits
// are dropped); insert values are one CSV record in schema order;
// update values parse like the relation's CSV cells, with the empty
// text standing for null. Parse errors carry the 1-based line they
// were raised on (SyntaxError), so front ends can point at the
// offending input line.
package oplog

import (
	"bufio"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/detect"
	"repro/internal/relation"
)

// SyntaxError is a parse failure pinned to its input position.
type SyntaxError struct {
	Line int   // 1-based line of the offending input
	Err  error // the underlying error
}

func (e *SyntaxError) Error() string { return fmt.Sprintf("line %d: %v", e.Line, e.Err) }

func (e *SyntaxError) Unwrap() error { return e.Err }

// ParseOp parses one op line — insert/update/delete, not commit —
// against the schemas of the relations it may name.
func ParseOp(text string, schemas map[string]*relation.Schema) (detect.DBOp, error) {
	verb, rest, _ := strings.Cut(text, " ")
	rel, rest, _ := strings.Cut(strings.TrimSpace(rest), " ")
	s, ok := schemas[rel]
	if !ok {
		return detect.DBOp{}, fmt.Errorf("unknown relation %q", rel)
	}
	rest = strings.TrimSpace(rest)
	switch verb {
	case "insert":
		// The remainder is one CSV record in schema order.
		cr := csv.NewReader(strings.NewReader(rest))
		rec, err := cr.Read()
		if err != nil {
			return detect.DBOp{}, fmt.Errorf("insert %s: %v", rel, err)
		}
		if len(rec) != s.Arity() {
			return detect.DBOp{}, fmt.Errorf("insert %s: %d fields, want %d", rel, len(rec), s.Arity())
		}
		t := make(relation.Tuple, len(rec))
		for i, cell := range rec {
			v, err := relation.ParseValue(s.Attr(i).Domain.Kind(), cell)
			if err != nil {
				return detect.DBOp{}, fmt.Errorf("insert %s column %s: %v", rel, s.Attr(i).Name, err)
			}
			t[i] = v
		}
		return detect.InsertInto(rel, t), nil
	case "delete":
		id, err := strconv.Atoi(rest)
		if err != nil {
			return detect.DBOp{}, fmt.Errorf("delete %s: bad TID %q", rel, rest)
		}
		return detect.DeleteFrom(rel, relation.TID(id)), nil
	case "update":
		idText, assign, ok := strings.Cut(rest, " ")
		if !ok {
			return detect.DBOp{}, fmt.Errorf("update %s: want \"update %s <tid> <attr>=<value>\"", rel, rel)
		}
		id, err := strconv.Atoi(idText)
		if err != nil {
			return detect.DBOp{}, fmt.Errorf("update %s: bad TID %q", rel, idText)
		}
		attr, valText, ok := strings.Cut(assign, "=")
		if !ok {
			return detect.DBOp{}, fmt.Errorf("update %s: want <attr>=<value>, got %q", rel, assign)
		}
		pos, ok := s.Lookup(strings.TrimSpace(attr))
		if !ok {
			return detect.DBOp{}, fmt.Errorf("update %s: no attribute %q", rel, attr)
		}
		v, err := relation.ParseValue(s.Attr(pos).Domain.Kind(), valText)
		if err != nil {
			return detect.DBOp{}, fmt.Errorf("update %s.%s: %v", rel, attr, err)
		}
		return detect.UpdateIn(rel, relation.TID(id), pos, v), nil
	default:
		return detect.DBOp{}, fmt.Errorf("unknown op %q (want insert/update/delete/commit)", verb)
	}
}

// FormatOp renders one op as its wire line (no trailing newline). It
// fails on values the line-oriented format cannot round-trip: strings
// containing line breaks, and strings with leading or trailing
// whitespace — the parser trims whole lines, so padding on a record's
// edge cells (and on every update value) would be silently eaten on
// the way back in.
func FormatOp(op detect.DBOp, schemas map[string]*relation.Schema) (string, error) {
	s, ok := schemas[op.Rel]
	if !ok {
		return "", fmt.Errorf("oplog: unknown relation %q", op.Rel)
	}
	switch op.Op.Kind {
	case detect.OpInsert:
		if len(op.Op.Tuple) != s.Arity() {
			return "", fmt.Errorf("oplog: insert %s: %d values, want %d", op.Rel, len(op.Op.Tuple), s.Arity())
		}
		rec := make([]string, len(op.Op.Tuple))
		for i, v := range op.Op.Tuple {
			cell, err := cellText(v)
			if err != nil {
				return "", fmt.Errorf("oplog: insert %s column %s: %v", op.Rel, s.Attr(i).Name, err)
			}
			rec[i] = cell
		}
		var b strings.Builder
		cw := csv.NewWriter(&b)
		if err := cw.Write(rec); err != nil {
			return "", fmt.Errorf("oplog: insert %s: %v", op.Rel, err)
		}
		cw.Flush()
		return fmt.Sprintf("insert %s %s", op.Rel, strings.TrimSuffix(b.String(), "\n")), nil
	case detect.OpDelete:
		return fmt.Sprintf("delete %s %d", op.Rel, op.Op.TID), nil
	case detect.OpUpdate:
		if op.Op.Pos < 0 || op.Op.Pos >= s.Arity() {
			return "", fmt.Errorf("oplog: update %s: no attribute at position %d", op.Rel, op.Op.Pos)
		}
		cell, err := cellText(op.Op.Val)
		if err != nil {
			return "", fmt.Errorf("oplog: update %s.%s: %v", op.Rel, s.Attr(op.Op.Pos).Name, err)
		}
		return fmt.Sprintf("update %s %d %s=%s", op.Rel, op.Op.TID, s.Attr(op.Op.Pos).Name, cell), nil
	default:
		return "", fmt.Errorf("oplog: unknown op kind %v", op.Op.Kind)
	}
}

// cellText renders a value as the text ParseValue reads back: empty
// for null, Value.String otherwise. Line breaks break the framing;
// leading/trailing whitespace does not survive the parser's line trim
// when the cell sits on a record's edge (csv.Writer does not quote
// trailing spaces), so both are rejected outright.
func cellText(v relation.Value) (string, error) {
	if v.IsNull() {
		return "", nil
	}
	text := v.String()
	if text == "" {
		// The empty text is the wire encoding of null: an empty string
		// value would silently come back as Null.
		return "", errors.New("empty string value is not representable (parses back as null)")
	}
	if strings.ContainsAny(text, "\n\r") {
		return "", fmt.Errorf("value %q contains a line break", text)
	}
	if strings.TrimSpace(text) != text {
		return "", fmt.Errorf("value %q has leading or trailing whitespace", text)
	}
	return text, nil
}

// Reader decodes a wire stream batch by batch.
type Reader struct {
	sc      *bufio.Scanner
	schemas map[string]*relation.Schema
	line    int
	done    bool
}

// MaxLineBytes is the op-line ceiling a Reader accepts — far above any
// reasonable tuple, far below the default ingest body limits.
const MaxLineBytes = 1 << 20

// MaxBatchOps is the per-batch op ceiling a Reader accepts: a stream
// that accumulates more ops without a commit marker is rejected with a
// SyntaxError instead of buffering without bound. (The WAL encodes one
// commit per record, so this is also the widest batch the durability
// layer will round-trip.)
const MaxBatchOps = 1 << 16

// NewReader returns a Reader decoding ops against the given schemas.
func NewReader(r io.Reader, schemas map[string]*relation.Schema) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), MaxLineBytes)
	return &Reader{sc: sc, schemas: schemas}
}

// Next returns the next non-empty committed batch, io.EOF at the end of
// the stream, or a *SyntaxError. The batch before an EOF is committed
// implicitly.
func (r *Reader) Next() ([]detect.DBOp, error) {
	if r.done {
		return nil, io.EOF
	}
	var batch []detect.DBOp
	for r.sc.Scan() {
		r.line++
		text := strings.TrimSpace(r.sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if text == "commit" {
			if len(batch) == 0 {
				continue // empty commit: nothing to deliver
			}
			return batch, nil
		}
		op, err := ParseOp(text, r.schemas)
		if err != nil {
			r.done = true
			// A read error (body-size cap, broken connection) makes the
			// scanner deliver whatever it buffered as a final partial
			// line; a parse failure there is a symptom, not the cause —
			// report the I/O error so callers can tell 413 from 400.
			if rerr := r.sc.Err(); rerr != nil {
				return nil, &SyntaxError{Line: r.line, Err: rerr}
			}
			return nil, &SyntaxError{Line: r.line, Err: err}
		}
		if len(batch) >= MaxBatchOps {
			r.done = true
			return nil, &SyntaxError{Line: r.line,
				Err: fmt.Errorf("batch exceeds %d ops without a commit marker", MaxBatchOps)}
		}
		batch = append(batch, op)
	}
	r.done = true
	if err := r.sc.Err(); err != nil {
		// Scanner failures (an over-long line, an I/O error) happen on
		// the line after the last delivered one — position them too.
		if errors.Is(err, bufio.ErrTooLong) {
			err = fmt.Errorf("op line exceeds %d bytes: %w", MaxLineBytes, err)
		}
		return nil, &SyntaxError{Line: r.line + 1, Err: err}
	}
	if len(batch) > 0 {
		return batch, nil // implicit commit of the tail
	}
	return nil, io.EOF
}

// Parse decodes a whole stream into its batches.
func Parse(rd io.Reader, schemas map[string]*relation.Schema) ([][]detect.DBOp, error) {
	r := NewReader(rd, schemas)
	var batches [][]detect.DBOp
	for {
		batch, err := r.Next()
		if errors.Is(err, io.EOF) {
			return batches, nil
		}
		if err != nil {
			return nil, err
		}
		batches = append(batches, batch)
	}
}

// Format encodes batches in the wire format, one op per line, each
// batch closed by a commit marker — the exact stream Parse reads back.
func Format(w io.Writer, batches [][]detect.DBOp, schemas map[string]*relation.Schema) error {
	bw := bufio.NewWriter(w)
	for _, batch := range batches {
		if len(batch) == 0 {
			continue
		}
		for _, op := range batch {
			line, err := FormatOp(op, schemas)
			if err != nil {
				return err
			}
			if _, err := bw.WriteString(line + "\n"); err != nil {
				return err
			}
		}
		if _, err := bw.WriteString("commit\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}
