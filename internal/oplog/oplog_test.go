package oplog

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/detect"
	"repro/internal/paperdata"
	"repro/internal/relation"
)

func testSchemas() map[string]*relation.Schema {
	return map[string]*relation.Schema{
		"customer": paperdata.CustomerSchema(),
		"order":    paperdata.OrderSchema(),
		"book":     paperdata.BookSchema(),
	}
}

func TestParseOpLines(t *testing.T) {
	schemas := testSchemas()
	op, err := ParseOp("insert customer 44,131,1234567,Mike,Mayfield,NYC,EH4 8LE", schemas)
	if err != nil {
		t.Fatal(err)
	}
	if op.Rel != "customer" || op.Op.Kind != detect.OpInsert || len(op.Op.Tuple) != 7 {
		t.Fatalf("bad insert op: %+v", op)
	}
	if got := op.Op.Tuple[3].StrVal(); got != "Mike" {
		t.Fatalf("name = %q, want Mike", got)
	}

	op, err = ParseOp("update customer 3 city=EDI", schemas)
	if err != nil {
		t.Fatal(err)
	}
	pos, _ := schemas["customer"].Lookup("city")
	if op.Op.Kind != detect.OpUpdate || op.Op.TID != 3 || op.Op.Pos != pos || op.Op.Val.StrVal() != "EDI" {
		t.Fatalf("bad update op: %+v", op)
	}

	op, err = ParseOp("delete order 7", schemas)
	if err != nil {
		t.Fatal(err)
	}
	if op.Rel != "order" || op.Op.Kind != detect.OpDelete || op.Op.TID != 7 {
		t.Fatalf("bad delete op: %+v", op)
	}
}

func TestParseOpErrors(t *testing.T) {
	schemas := testSchemas()
	for _, bad := range []string{
		"insert nosuch 1,2",
		"insert customer 44,131",           // wrong arity
		"update customer x city=EDI",       // bad TID
		"update customer 3 nosuch=EDI",     // unknown attribute
		"update customer 3 city",           // missing =
		"delete customer x",                // bad TID
		"upsert customer 3 city=EDI",       // unknown verb
		"insert customer 44,131,x,a,b,c,d", // bad int cell (phn)
	} {
		if _, err := ParseOp(bad, schemas); err == nil {
			t.Errorf("ParseOp(%q) succeeded, want error", bad)
		}
	}
}

// TestSyntaxErrorPosition pins parse failures to their 1-based input
// line, counting comments, blanks and commit markers.
func TestSyntaxErrorPosition(t *testing.T) {
	const stream = `# a comment
insert customer 44,131,1234567,Mike,Mayfield,NYC,EH4 8LE
commit

update customer 0 city=EDI
bogus line here
`
	_, err := Parse(strings.NewReader(stream), testSchemas())
	var se *SyntaxError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *SyntaxError", err)
	}
	if se.Line != 6 {
		t.Fatalf("error line = %d, want 6", se.Line)
	}
	if !strings.Contains(se.Error(), "line 6:") {
		t.Fatalf("error text %q does not carry the position", se.Error())
	}
}

// TestReaderBatching checks commit framing: explicit commits, skipped
// empty commits, and the implicit commit of the tail.
func TestReaderBatching(t *testing.T) {
	const stream = `
insert order B001,Harry Potter,book,17.99
update order 0 price=15.99
commit
commit
# tail batch, no trailing commit
delete order 0
`
	batches, err := Parse(strings.NewReader(stream), testSchemas())
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 2 {
		t.Fatalf("got %d batches, want 2", len(batches))
	}
	if len(batches[0]) != 2 || len(batches[1]) != 1 {
		t.Fatalf("batch sizes = %d,%d, want 2,1", len(batches[0]), len(batches[1]))
	}
	if batches[1][0].Op.Kind != detect.OpDelete {
		t.Fatalf("tail op = %+v, want delete", batches[1][0])
	}
}

// TestRoundTrip formats randomized multi-relation batches and parses
// them back, demanding the exact op stream — the contract that lets
// dqserve clients replay logs dqdetect wrote and vice versa.
func TestRoundTrip(t *testing.T) {
	schemas := testSchemas()
	r := rand.New(rand.NewSource(7))
	titles := []string{"Harry Potter", "Snow White", "A Tale, Quoted \"Twice\"", "biały"}
	randOp := func() detect.DBOp {
		switch r.Intn(4) {
		case 0:
			return detect.InsertInto("order", relation.Tuple{
				relation.Str("B001"), relation.Str(titles[r.Intn(len(titles))]),
				relation.Str("book"), relation.Float(17.99)})
		case 1:
			return detect.InsertInto("customer", relation.Tuple{
				relation.Int(44), relation.Int(131), relation.Int(1234567),
				relation.Str("Mike"), relation.Null(), relation.Str("NYC"),
				relation.Str("EH4 8LE")})
		case 2:
			return detect.UpdateIn("order", relation.TID(r.Intn(50)), 1,
				relation.Str(titles[r.Intn(len(titles))]))
		default:
			return detect.DeleteFrom("book", relation.TID(r.Intn(50)))
		}
	}
	var batches [][]detect.DBOp
	for i := 0; i < 25; i++ {
		batch := make([]detect.DBOp, 1+r.Intn(6))
		for j := range batch {
			batch[j] = randOp()
		}
		batches = append(batches, batch)
	}

	var buf bytes.Buffer
	if err := Format(&buf, batches, schemas); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(bytes.NewReader(buf.Bytes()), schemas)
	if err != nil {
		t.Fatalf("parse of formatted stream: %v\n%s", err, buf.String())
	}
	if !reflect.DeepEqual(got, batches) {
		t.Fatalf("round trip diverged:\nin  %v\nout %v\nwire:\n%s", batches, got, buf.String())
	}

	// A second format of the parsed stream must reproduce the wire bytes
	// (the format is canonical, not just equivalence-preserving).
	var buf2 bytes.Buffer
	if err := Format(&buf2, got, schemas); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatalf("re-format diverged:\n%s\nvs\n%s", buf.String(), buf2.String())
	}
}

// TestFormatOpRejectsUnframeable pins the values the line format cannot
// carry: line breaks anywhere, and update values the line trim would
// mangle.
func TestFormatOpRejectsUnframeable(t *testing.T) {
	schemas := testSchemas()
	if _, err := FormatOp(detect.UpdateIn("order", 1, 1, relation.Str("two\nlines")), schemas); err == nil {
		t.Error("update with a newline formatted, want error")
	}
	if _, err := FormatOp(detect.UpdateIn("order", 1, 1, relation.Str(" padded ")), schemas); err == nil {
		t.Error("update with padded value formatted, want error")
	}
	if _, err := FormatOp(detect.InsertInto("order", relation.Tuple{
		relation.Str("B001"), relation.Str("a\nb"), relation.Str("book"), relation.Float(1)}), schemas); err == nil {
		t.Error("insert with a newline formatted, want error")
	}
	// Trailing whitespace in a record's last cell is not quoted by
	// csv.Writer and the parser trims whole lines, so Format→Parse
	// would silently yield a different tuple — reject it instead.
	if _, err := FormatOp(detect.InsertInto("book", relation.Tuple{
		relation.Str("b1"), relation.Str("T"), relation.Float(1), relation.Str("audio ")}), schemas); err == nil {
		t.Error("insert with a trailing-whitespace cell formatted, want error")
	}
	if _, err := FormatOp(detect.DeleteFrom("nosuch", 1), schemas); err == nil {
		t.Error("delete of unknown relation formatted, want error")
	}
	// The empty text is the null encoding; an empty *string* value would
	// come back as Null — a silent type change, so it must be rejected.
	if _, err := FormatOp(detect.UpdateIn("order", 1, 1, relation.Str("")), schemas); err == nil {
		t.Error("update with an empty string value formatted, want error")
	}
	if _, err := FormatOp(detect.InsertInto("order", relation.Tuple{
		relation.Str(""), relation.Str("T"), relation.Str("book"), relation.Float(1)}), schemas); err == nil {
		t.Error("insert with an empty string cell formatted, want error")
	}
}

// TestOverlongLinePositioned: a line past MaxLineBytes fails as a
// positioned SyntaxError, not a bare scanner error.
func TestOverlongLinePositioned(t *testing.T) {
	stream := "delete order 1\ncommit\ninsert order " + strings.Repeat("x", MaxLineBytes+1) + ",T,book,1\n"
	_, err := Parse(strings.NewReader(stream), testSchemas())
	var se *SyntaxError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *SyntaxError", err)
	}
	if se.Line != 3 {
		t.Fatalf("error line = %d, want 3", se.Line)
	}
	if !errors.Is(err, bufio.ErrTooLong) {
		t.Fatalf("err = %v, want to wrap bufio.ErrTooLong", err)
	}
}

// TestNullRoundTrip: null cells ride as empty text in both insert
// records and update values.
func TestNullRoundTrip(t *testing.T) {
	schemas := testSchemas()
	ops := [][]detect.DBOp{{
		detect.InsertInto("customer", relation.Tuple{
			relation.Int(44), relation.Int(131), relation.Int(1234567),
			relation.Null(), relation.Null(), relation.Str("NYC"), relation.Str("EH4 8LE")}),
		detect.UpdateIn("customer", 2, 5, relation.Null()),
	}}
	var buf bytes.Buffer
	if err := Format(&buf, ops, schemas); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(&buf, schemas)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ops) {
		t.Fatalf("null round trip diverged: %v vs %v", got, ops)
	}
}

// TestReaderAfterError: a Reader that raised a syntax error stays done.
func TestReaderAfterError(t *testing.T) {
	r := NewReader(strings.NewReader("bogus\ninsert order B1,T,book,1.0\n"), testSchemas())
	if _, err := r.Next(); err == nil {
		t.Fatal("want syntax error")
	}
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("Next after error = %v, want EOF", err)
	}
}
