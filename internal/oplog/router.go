package oplog

import (
	"repro/internal/detect"
	"repro/internal/relation"
)

// Router splits parsed op batches into per-shard sub-batches for
// sharded front ends: pre-partitioning an update log into per-shard
// files, or fanning one POST /batch commit out to shard writers. The
// split is purely positional — ops keep their relative order inside
// each sub-batch, and a SplitBatch remembers the original interleaving,
// so Join reconstructs the input exactly (the round-trip the tests
// pin). One input batch maps to at most one sub-batch per shard, never
// more: a commit stays one commit on every shard it touches, which is
// what keeps cross-shard batches atomic end to end.
//
// The assign function sees ops before they are applied, so it must
// route by CURRENT placement; an op it cannot place (an insert's shard
// depends on the tuple's key, a delete's on the directory) goes to the
// shard it returns regardless — the authoritative placement, including
// cross-shard moves and same-batch overlays, happens later in
// relation.Routing. For a live ShardedDB, DBRouter wires that up.
type Router struct {
	shards int
	assign func(detect.DBOp) int
}

// NewRouter returns a Router over the given shard count. assign maps an
// op to its shard; out-of-range assignments are clamped to shard 0.
func NewRouter(shards int, assign func(detect.DBOp) int) *Router {
	if shards < 1 {
		shards = 1
	}
	return &Router{shards: shards, assign: assign}
}

// DBRouter returns a Router that places ops where the sharded database
// currently holds (or would hash) them: inserts by partition key,
// deletes and updates by the tuple directory. Unknown TIDs and unknown
// relations route to shard 0, where application will surface the same
// error the unsharded path reports.
func DBRouter(s *relation.ShardedDB) *Router {
	return NewRouter(s.Shards(), func(op detect.DBOp) int {
		if op.Op.Kind == detect.OpInsert {
			if _, ok := s.Schema(op.Rel); !ok {
				return 0
			}
			return s.Partitioner().ShardOf(op.Rel, op.Op.Tuple)
		}
		if shard, ok := s.ShardOfTID(op.Rel, op.Op.TID); ok {
			return shard
		}
		return 0
	})
}

// Shards returns the router's shard count.
func (r *Router) Shards() int { return r.shards }

// SplitBatch is one commit batch cut into per-shard sub-batches plus
// the interleaving needed to reassemble it.
type SplitBatch struct {
	perShard [][]detect.DBOp
	order    []int // shard of each original op, in input order
}

// Split routes one commit batch. The result holds every op exactly
// once; sub-batches of shards the batch never touches are nil.
func (r *Router) Split(batch []detect.DBOp) *SplitBatch {
	s := &SplitBatch{
		perShard: make([][]detect.DBOp, r.shards),
		order:    make([]int, 0, len(batch)),
	}
	for _, op := range batch {
		shard := r.assign(op)
		if shard < 0 || shard >= r.shards {
			shard = 0
		}
		s.perShard[shard] = append(s.perShard[shard], op)
		s.order = append(s.order, shard)
	}
	return s
}

// PerShard returns the sub-batches, indexed by shard. Callers must not
// modify the slices.
func (s *SplitBatch) PerShard() [][]detect.DBOp { return s.perShard }

// Shard returns one shard's sub-batch (nil when untouched).
func (s *SplitBatch) Shard(i int) []detect.DBOp { return s.perShard[i] }

// Ops returns the total op count across sub-batches.
func (s *SplitBatch) Ops() int { return len(s.order) }

// Touched returns the shards with non-empty sub-batches, ascending.
func (s *SplitBatch) Touched() []int {
	var out []int
	for i, ops := range s.perShard {
		if len(ops) > 0 {
			out = append(out, i)
		}
	}
	return out
}

// Join reassembles the original batch: ops interleave back into input
// order, so Split followed by Join is the identity on every batch.
func (s *SplitBatch) Join() []detect.DBOp {
	if len(s.order) == 0 {
		return nil
	}
	next := make([]int, len(s.perShard))
	out := make([]detect.DBOp, 0, len(s.order))
	for _, shard := range s.order {
		out = append(out, s.perShard[shard][next[shard]])
		next[shard]++
	}
	return out
}
