package oplog

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/detect"
	"repro/internal/relation"
)

// randomBatch draws random ops over the customer/order schemas —
// contents do not matter to the router, only positions do.
func randomBatch(r *rand.Rand, n int) []detect.DBOp {
	batch := make([]detect.DBOp, n)
	for i := range batch {
		rel := []string{"customer", "order"}[r.Intn(2)]
		switch r.Intn(3) {
		case 0:
			batch[i] = detect.DeleteFrom(rel, relation.TID(r.Intn(100)))
		case 1:
			pos := 1 // order title
			if rel == "customer" {
				pos = 5 // city
			}
			batch[i] = detect.UpdateIn(rel, relation.TID(r.Intn(100)), pos, relation.Str(fmt.Sprintf("v%d", i)))
		default:
			batch[i] = detect.InsertInto("order", relation.Tuple{
				relation.Str(fmt.Sprintf("a%d", i)), relation.Str("T"),
				relation.Str("book"), relation.Float(1.99)})
		}
	}
	return batch
}

// TestRouterRoundTrip: Split followed by Join is the identity on random
// batches under random assignments, every op lands on exactly one
// shard, and relative order inside each sub-batch is preserved.
func TestRouterRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, shards := range []int{1, 2, 4, 8} {
		router := NewRouter(shards, func(detect.DBOp) int { return r.Intn(shards) })
		for trial := 0; trial < 50; trial++ {
			batch := randomBatch(r, 1+r.Intn(30))
			split := router.Split(batch)
			if split.Ops() != len(batch) {
				t.Fatalf("shards %d: split holds %d ops, want %d", shards, split.Ops(), len(batch))
			}
			total := 0
			for _, sub := range split.PerShard() {
				total += len(sub)
			}
			if total != len(batch) {
				t.Fatalf("shards %d: sub-batches hold %d ops, want %d", shards, total, len(batch))
			}
			if got := split.Join(); !reflect.DeepEqual(got, batch) {
				t.Fatalf("shards %d trial %d: Join does not reconstruct the batch:\ngot  %v\nwant %v",
					shards, trial, got, batch)
			}
		}
	}
}

// TestRouterCommitAtomicity: a stream of commits, split per batch and
// re-encoded per shard, yields per-shard streams whose k-th commit
// contains exactly the k-th input commit's ops for that shard (batches
// a shard does not participate in vanish rather than appearing as empty
// commits), and joining the k-th sub-batches reassembles the k-th input
// commit.
func TestRouterCommitAtomicity(t *testing.T) {
	schemas := testSchemas()
	r := rand.New(rand.NewSource(23))
	const shards = 3
	router := NewRouter(shards, func(op detect.DBOp) int {
		return int(op.Op.TID) % shards
	})
	var batches [][]detect.DBOp
	for i := 0; i < 10; i++ {
		batches = append(batches, randomBatch(r, 1+r.Intn(12)))
	}
	perShardBatches := make([][][]detect.DBOp, shards)
	for k, batch := range batches {
		split := router.Split(batch)
		for s := 0; s < shards; s++ {
			if sub := split.Shard(s); len(sub) > 0 {
				perShardBatches[s] = append(perShardBatches[s], sub)
			}
		}
		if got := split.Join(); !reflect.DeepEqual(got, batches[k]) {
			t.Fatalf("commit %d does not reassemble", k)
		}
	}
	// Each shard's stream must survive the wire format: one commit in,
	// at most one commit out per shard.
	for s := 0; s < shards; s++ {
		var buf bytes.Buffer
		if err := Format(&buf, perShardBatches[s], schemas); err != nil {
			t.Fatalf("shard %d: Format: %v", s, err)
		}
		got, err := Parse(&buf, schemas)
		if err != nil {
			t.Fatalf("shard %d: Parse: %v", s, err)
		}
		if !reflect.DeepEqual(got, perShardBatches[s]) {
			t.Fatalf("shard %d: wire round trip diverges", s)
		}
	}
}

// TestRouterTouchedAndClamp: Touched lists exactly the non-empty
// shards; out-of-range assignments clamp to shard 0.
func TestRouterTouchedAndClamp(t *testing.T) {
	router := NewRouter(4, func(op detect.DBOp) int {
		if op.Op.Kind == detect.OpDelete {
			return 99 // out of range: clamps to 0
		}
		return 2
	})
	split := router.Split([]detect.DBOp{
		detect.DeleteFrom("customer", 1),
		detect.UpdateIn("customer", 2, 1, relation.Str("x")),
	})
	if got := split.Touched(); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Fatalf("Touched = %v, want [0 2]", got)
	}
	if len(split.Shard(0)) != 1 || len(split.Shard(2)) != 1 {
		t.Fatal("clamped op must land on shard 0")
	}
}

// TestDBRouterPlacement: the ShardedDB-backed router agrees with the
// database's directory for existing tuples and with the partitioner for
// inserts.
func TestDBRouterPlacement(t *testing.T) {
	schemas := testSchemas()
	db := relation.NewDatabase()
	in := relation.NewInstance(schemas["order"])
	db.Add(in)
	var ids []relation.TID
	for i := 0; i < 20; i++ {
		ids = append(ids, in.MustInsert(
			relation.Str(fmt.Sprintf("a%d", i)), relation.Str(fmt.Sprintf("Title %d", i%7)),
			relation.Str("book"), relation.Float(float64(i)+0.99)))
	}
	p := relation.NewPartitioner(4)
	p.SetKey("order", []int{1})
	sdb, err := relation.Partition(db, p)
	if err != nil {
		t.Fatal(err)
	}
	router := DBRouter(sdb)
	for _, id := range ids {
		want, _ := sdb.ShardOfTID("order", id)
		split := router.Split([]detect.DBOp{detect.DeleteFrom("order", id)})
		if got := split.Touched(); len(got) != 1 || got[0] != want {
			t.Fatalf("delete of %d routed to %v, directory says %d", id, got, want)
		}
	}
	t2 := relation.Tuple{relation.Str("zz"), relation.Str("Title 3"), relation.Str("book"), relation.Float(3.99)}
	split := router.Split([]detect.DBOp{detect.InsertInto("order", t2)})
	if got, want := split.Touched()[0], p.ShardOf("order", t2); got != want {
		t.Fatalf("insert routed to %d, partitioner says %d", got, want)
	}
	// Unknown TIDs and relations fall back to shard 0.
	split = router.Split([]detect.DBOp{detect.DeleteFrom("order", 9999), detect.InsertInto("nosuch", t2)})
	if got := split.Touched(); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("fallback ops should land on shard 0, got %v", got)
	}
}
