// Package paperdata provides executable fixtures for every figure and
// worked example of Fan (PODS 2008): the customer instance D0 of Figure 1
// with its FDs f1, f2 and CFDs ϕ1–ϕ3 of Figure 2; the order/book/CD
// instance D1 of Figure 3 with the CINDs ϕ4–ϕ6 of Figure 4; the
// inconsistent CFD pair of Example 4.1; and the schemas of the Section 3
// card/billing fraud-detection scenario. Tests, benchmarks and the example
// programs all build on these fixtures so that the reproduction asserts
// exactly the satisfaction/violation outcomes the paper states.
package paperdata

import (
	"repro/internal/cfd"
	"repro/internal/relation"
)

// CustomerSchema returns the Section 2.1 schema
// customer(CC:int, AC:int, phn:int, name, street, city, zip:string).
func CustomerSchema() *relation.Schema {
	return relation.MustSchema("customer",
		relation.Attr("CC", relation.KindInt),
		relation.Attr("AC", relation.KindInt),
		relation.Attr("phn", relation.KindInt),
		relation.Attr("name", relation.KindString),
		relation.Attr("street", relation.KindString),
		relation.Attr("city", relation.KindString),
		relation.Attr("zip", relation.KindString),
	)
}

// Figure1 returns the instance D0 of Figure 1: three customer tuples t1,
// t2, t3 (TIDs 0, 1, 2).
func Figure1() *relation.Instance {
	in := relation.NewInstance(CustomerSchema())
	in.MustInsert(relation.Int(44), relation.Int(131), relation.Int(1234567),
		relation.Str("Mike"), relation.Str("Mayfield"), relation.Str("NYC"), relation.Str("EH4 8LE"))
	in.MustInsert(relation.Int(44), relation.Int(131), relation.Int(3456789),
		relation.Str("Rick"), relation.Str("Crichton"), relation.Str("NYC"), relation.Str("EH4 8LE"))
	in.MustInsert(relation.Int(1), relation.Int(908), relation.Int(3456789),
		relation.Str("Joe"), relation.Str("Mtn Ave"), relation.Str("NYC"), relation.Str("07974"))
	return in
}

// F1 returns the FD f1: [CC, AC, phn] → [street, city, zip].
func F1(s *relation.Schema) *cfd.CFD {
	return cfd.MustFD(s, []string{"CC", "AC", "phn"}, []string{"street", "city", "zip"})
}

// F2 returns the FD f2: [CC, AC] → [city].
func F2(s *relation.Schema) *cfd.CFD {
	return cfd.MustFD(s, []string{"CC", "AC"}, []string{"city"})
}

// Phi1 returns ϕ1 of Figure 2: ([CC, zip] → [street], T1) with the single
// pattern row (44, _ ‖ _) — cfd1, "in the UK, zip determines street".
func Phi1(s *relation.Schema) *cfd.CFD {
	return cfd.MustNew(s, []string{"CC", "zip"}, []string{"street"},
		cfd.Row(
			[]cfd.Cell{cfd.Const(relation.Int(44)), cfd.Any()},
			[]cfd.Cell{cfd.Any()},
		))
}

// Phi2 returns ϕ2 of Figure 2: ([CC, AC, phn] → [street, city, zip], T2)
// with rows (_, _, _ ‖ _, _, _) for f1, (44, 131, _ ‖ _, EDI, _) for cfd2
// and (01, 908, _ ‖ _, MH, _) for cfd3.
func Phi2(s *relation.Schema) *cfd.CFD {
	return cfd.MustNew(s, []string{"CC", "AC", "phn"}, []string{"street", "city", "zip"},
		cfd.Row(
			[]cfd.Cell{cfd.Any(), cfd.Any(), cfd.Any()},
			[]cfd.Cell{cfd.Any(), cfd.Any(), cfd.Any()},
		),
		cfd.Row(
			[]cfd.Cell{cfd.Const(relation.Int(44)), cfd.Const(relation.Int(131)), cfd.Any()},
			[]cfd.Cell{cfd.Any(), cfd.Const(relation.Str("EDI")), cfd.Any()},
		),
		cfd.Row(
			[]cfd.Cell{cfd.Const(relation.Int(1)), cfd.Const(relation.Int(908)), cfd.Any()},
			[]cfd.Cell{cfd.Any(), cfd.Const(relation.Str("MH")), cfd.Any()},
		))
}

// Phi3 returns ϕ3 of Figure 2: ([CC, AC] → [city], T3) with the single
// all-wildcard row — the FD f2 written as a CFD.
func Phi3(s *relation.Schema) *cfd.CFD {
	return cfd.MustNew(s, []string{"CC", "AC"}, []string{"city"},
		cfd.Row([]cfd.Cell{cfd.Any(), cfd.Any()}, []cfd.Cell{cfd.Any()}))
}

// Example41 returns the inconsistent CFD pair of Example 4.1 over
// R(A:bool, B:string): ψ1 = ([A] → [B], {(true ‖ b1), (false ‖ b2)}) and
// ψ2 = ([B] → [A], {(b1 ‖ false), (b2 ‖ true)}). No nonempty instance
// satisfies both.
func Example41() (*relation.Schema, []*cfd.CFD) {
	s := relation.MustSchema("r",
		relation.Attr("A", relation.KindBool),
		relation.Attr("B", relation.KindString),
	)
	b1, b2 := relation.Str("b1"), relation.Str("b2")
	psi1 := cfd.MustNew(s, []string{"A"}, []string{"B"},
		cfd.Row([]cfd.Cell{cfd.Const(relation.Bool(true))}, []cfd.Cell{cfd.Const(b1)}),
		cfd.Row([]cfd.Cell{cfd.Const(relation.Bool(false))}, []cfd.Cell{cfd.Const(b2)}),
	)
	psi2 := cfd.MustNew(s, []string{"B"}, []string{"A"},
		cfd.Row([]cfd.Cell{cfd.Const(b1)}, []cfd.Cell{cfd.Const(relation.Bool(false))}),
		cfd.Row([]cfd.Cell{cfd.Const(b2)}, []cfd.Cell{cfd.Const(relation.Bool(true))}),
	)
	return s, []*cfd.CFD{psi1, psi2}
}

// OrderSchema returns the Section 2.2 source schema
// order(asin, title, type:string, price:real).
func OrderSchema() *relation.Schema {
	return relation.MustSchema("order",
		relation.Attr("asin", relation.KindString),
		relation.Attr("title", relation.KindString),
		relation.Attr("type", relation.KindString),
		relation.Attr("price", relation.KindFloat),
	)
}

// BookSchema returns the Section 2.2 target schema
// book(isbn, title:string, price:real, format:string).
func BookSchema() *relation.Schema {
	return relation.MustSchema("book",
		relation.Attr("isbn", relation.KindString),
		relation.Attr("title", relation.KindString),
		relation.Attr("price", relation.KindFloat),
		relation.Attr("format", relation.KindString),
	)
}

// CDSchema returns the Section 2.2 target schema
// CD(id, album:string, price:real, genre:string).
func CDSchema() *relation.Schema {
	return relation.MustSchema("CD",
		relation.Attr("id", relation.KindString),
		relation.Attr("album", relation.KindString),
		relation.Attr("price", relation.KindFloat),
		relation.Attr("genre", relation.KindString),
	)
}

// Figure3 returns the instance D1 of Figure 3 as a database with the
// order (t4, t5), book (t6, t7) and CD (t8, t9) relations.
func Figure3() *relation.Database {
	db := relation.NewDatabase()

	order := relation.NewInstance(OrderSchema())
	order.MustInsert(relation.Str("a23"), relation.Str("Snow White"), relation.Str("CD"), relation.Float(7.99))
	order.MustInsert(relation.Str("a12"), relation.Str("Harry Potter"), relation.Str("book"), relation.Float(17.99))
	db.Add(order)

	book := relation.NewInstance(BookSchema())
	book.MustInsert(relation.Str("b32"), relation.Str("Harry Potter"), relation.Float(17.99), relation.Str("hard-cover"))
	book.MustInsert(relation.Str("b65"), relation.Str("Snow White"), relation.Float(7.99), relation.Str("paper-cover"))
	db.Add(book)

	cdRel := relation.NewInstance(CDSchema())
	cdRel.MustInsert(relation.Str("c12"), relation.Str("J. Denver"), relation.Float(7.94), relation.Str("country"))
	cdRel.MustInsert(relation.Str("c58"), relation.Str("Snow White"), relation.Float(7.99), relation.Str("a-book"))
	db.Add(cdRel)

	return db
}

// CardSchema returns the Section 3.1 source schema
// card(c#, SSN, FN, LN, addr, tel, email, type).
func CardSchema() *relation.Schema {
	return relation.MustSchema("card",
		relation.Attr("cno", relation.KindString),
		relation.Attr("SSN", relation.KindString),
		relation.Attr("FN", relation.KindString),
		relation.Attr("LN", relation.KindString),
		relation.Attr("addr", relation.KindString),
		relation.Attr("tel", relation.KindString),
		relation.Attr("email", relation.KindString),
		relation.Attr("type", relation.KindString),
	)
}

// BillingSchema returns the Section 3.1 source schema
// billing(c#, FN, SN, post, phn, email, item, price).
func BillingSchema() *relation.Schema {
	return relation.MustSchema("billing",
		relation.Attr("cno", relation.KindString),
		relation.Attr("FN", relation.KindString),
		relation.Attr("SN", relation.KindString),
		relation.Attr("post", relation.KindString),
		relation.Attr("phn", relation.KindString),
		relation.Attr("email", relation.KindString),
		relation.Attr("item", relation.KindString),
		relation.Attr("price", relation.KindFloat),
	)
}

// Yc returns the card-side identity attribute list of Section 3.1:
// [FN, LN, addr, tel, email].
func Yc() []string { return []string{"FN", "LN", "addr", "tel", "email"} }

// Yb returns the billing-side identity attribute list of Section 3.1:
// [FN, SN, post, phn, email].
func Yb() []string { return []string{"FN", "SN", "post", "phn", "email"} }
