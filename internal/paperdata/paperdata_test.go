package paperdata_test

import (
	"testing"

	"repro/internal/paperdata"
	"repro/internal/relation"
)

// TestFigure1Values pins the fixture to the exact values printed in the
// paper's Figure 1.
func TestFigure1Values(t *testing.T) {
	in := paperdata.Figure1()
	if in.Len() != 3 {
		t.Fatalf("len = %d, want 3", in.Len())
	}
	s := in.Schema()
	want := [][]string{
		{"44", "131", "1234567", "Mike", "Mayfield", "NYC", "EH4 8LE"},
		{"44", "131", "3456789", "Rick", "Crichton", "NYC", "EH4 8LE"},
		{"1", "908", "3456789", "Joe", "Mtn Ave", "NYC", "07974"},
	}
	for i, tu := range in.Tuples() {
		for j, v := range tu {
			if v.String() != want[i][j] {
				t.Errorf("t%d[%s] = %v, want %s", i+1, s.Attr(j).Name, v, want[i][j])
			}
		}
	}
}

// TestFigure3Values pins the order/book/CD fixture to Figure 3.
func TestFigure3Values(t *testing.T) {
	db := paperdata.Figure3()
	order := db.MustInstance("order")
	if order.Len() != 2 {
		t.Fatalf("order len = %d", order.Len())
	}
	t4 := order.Tuples()[0]
	if t4[0].StrVal() != "a23" || t4[1].StrVal() != "Snow White" || t4[2].StrVal() != "CD" || t4[3].FloatVal() != 7.99 {
		t.Errorf("t4 = %v", t4)
	}
	book := db.MustInstance("book")
	t7 := book.Tuples()[1]
	if t7[3].StrVal() != "paper-cover" {
		t.Errorf("t7 format = %v, want paper-cover (the reason ϕ6 fails)", t7[3])
	}
	cd := db.MustInstance("CD")
	t9 := cd.Tuples()[1]
	if t9[3].StrVal() != "a-book" {
		t.Errorf("t9 genre = %v, want a-book", t9[3])
	}
}

func TestSchemasAndIdentityLists(t *testing.T) {
	card := paperdata.CardSchema()
	billing := paperdata.BillingSchema()
	if card.Arity() != 8 || billing.Arity() != 8 {
		t.Error("Section 3.1 schemas have 8 attributes each")
	}
	yc, yb := paperdata.Yc(), paperdata.Yb()
	if len(yc) != 5 || len(yb) != 5 {
		t.Fatalf("identity lists: %d/%d, want 5/5", len(yc), len(yb))
	}
	for _, a := range yc {
		if _, ok := card.Lookup(a); !ok {
			t.Errorf("Yc attribute %q missing from card", a)
		}
	}
	for _, a := range yb {
		if _, ok := billing.Lookup(a); !ok {
			t.Errorf("Yb attribute %q missing from billing", a)
		}
	}
	// Example 4.1's schema has the crucial bool domain.
	s, set := paperdata.Example41()
	if s.Attr(0).Domain.Kind() != relation.KindBool {
		t.Error("Example 4.1 needs a bool attribute")
	}
	if len(set) != 2 {
		t.Error("Example 4.1 has two CFDs")
	}
}
