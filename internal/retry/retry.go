// Package retry implements capped exponential backoff for transient
// failures on the durability paths — most prominently checkpoint writes
// hitting a full disk (ENOSPC), which an operator can fix while the
// service keeps answering reads. The policy is deliberately small:
// deterministic delays (no jitter — single-writer loops have no
// thundering herd to spread), a hard cap, and an errno-based
// transience classifier so fail-stop conditions (EIO after a failed
// fsync) are never retried into silent data loss.
package retry

import (
	"context"
	"errors"
	"syscall"
	"time"
)

// Default policy values (used by Policy's zero fields).
const (
	DefaultBase   = 50 * time.Millisecond
	DefaultMax    = 5 * time.Second
	DefaultFactor = 2.0
)

// Policy is a capped exponential backoff schedule.
type Policy struct {
	// Base is the delay before the first retry (default DefaultBase).
	Base time.Duration
	// Max caps every delay (default DefaultMax).
	Max time.Duration
	// Factor multiplies the delay per attempt (default DefaultFactor;
	// values <= 1 make the schedule constant at Base).
	Factor float64
}

// Delay returns the backoff before retry number attempt (0-based): Base
// × Factor^attempt, capped at Max.
func (p Policy) Delay(attempt int) time.Duration {
	base := p.Base
	if base <= 0 {
		base = DefaultBase
	}
	max := p.Max
	if max <= 0 {
		max = DefaultMax
	}
	factor := p.Factor
	if factor <= 1 {
		factor = DefaultFactor
	}
	if p.Factor > 0 && p.Factor <= 1 {
		return min(base, max)
	}
	d := float64(base)
	for i := 0; i < attempt; i++ {
		d *= factor
		if d >= float64(max) {
			return max
		}
	}
	return min(time.Duration(d), max)
}

// Transient reports whether err is worth retrying: out-of-space and
// interruption conditions that operator action or time can clear.
// Media and memory errors (EIO and friends) are NOT transient — on the
// write path they mean the file state is unknown, which is a fail-stop
// condition, not a retry loop.
func Transient(err error) bool {
	return errors.Is(err, syscall.ENOSPC) ||
		errors.Is(err, syscall.EDQUOT) ||
		errors.Is(err, syscall.EAGAIN) ||
		errors.Is(err, syscall.EINTR) ||
		errors.Is(err, syscall.EBUSY)
}

// Do runs f until it succeeds, sleeping the policy's delay between
// attempts. It stops early — returning f's last error — when f fails
// attempts times (attempts <= 0 means unlimited), when the error is not
// transient by the classifier (nil classifier retries every error), or
// when ctx is done (returning ctx.Err() wrapped over the last f error,
// if any).
func Do(ctx context.Context, p Policy, attempts int, transient func(error) bool, f func() error) error {
	var last error
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			if last != nil {
				return errors.Join(err, last)
			}
			return err
		}
		last = f()
		if last == nil {
			return nil
		}
		if transient != nil && !transient(last) {
			return last
		}
		if attempts > 0 && attempt+1 >= attempts {
			return last
		}
		t := time.NewTimer(p.Delay(attempt))
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return errors.Join(ctx.Err(), last)
		}
	}
}
