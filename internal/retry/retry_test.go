package retry

import (
	"context"
	"errors"
	"fmt"
	"os"
	"syscall"
	"testing"
	"time"
)

func TestDelaySchedule(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Factor: 2}
	want := []time.Duration{10, 20, 40, 80, 80, 80}
	for i, w := range want {
		if got := p.Delay(i); got != w*time.Millisecond {
			t.Fatalf("Delay(%d) = %v, want %v", i, got, w*time.Millisecond)
		}
	}
}

func TestDelayDefaults(t *testing.T) {
	var p Policy
	if got := p.Delay(0); got != DefaultBase {
		t.Fatalf("zero policy Delay(0) = %v, want %v", got, DefaultBase)
	}
	if got := p.Delay(1000); got != DefaultMax {
		t.Fatalf("zero policy Delay(1000) = %v, want %v", got, DefaultMax)
	}
}

func TestDelayConstantFactor(t *testing.T) {
	p := Policy{Base: 7 * time.Millisecond, Factor: 1}
	for i := 0; i < 4; i++ {
		if got := p.Delay(i); got != 7*time.Millisecond {
			t.Fatalf("Delay(%d) = %v, want constant 7ms", i, got)
		}
	}
}

func TestTransient(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{syscall.ENOSPC, true},
		{&os.PathError{Op: "write", Path: "x", Err: syscall.ENOSPC}, true},
		{fmt.Errorf("checkpoint: %w", syscall.ENOSPC), true},
		{syscall.EINTR, true},
		{syscall.EIO, false},
		{&os.PathError{Op: "sync", Path: "x", Err: syscall.EIO}, false},
		{errors.New("opaque"), false},
		{nil, false},
	}
	for _, c := range cases {
		if got := Transient(c.err); got != c.want {
			t.Fatalf("Transient(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestDoRetriesUntilSuccess(t *testing.T) {
	n := 0
	err := Do(context.Background(), Policy{Base: time.Millisecond}, 10, Transient, func() error {
		n++
		if n < 3 {
			return syscall.ENOSPC
		}
		return nil
	})
	if err != nil || n != 3 {
		t.Fatalf("err=%v n=%d, want nil/3", err, n)
	}
}

func TestDoStopsOnNonTransient(t *testing.T) {
	n := 0
	err := Do(context.Background(), Policy{Base: time.Millisecond}, 10, Transient, func() error {
		n++
		return syscall.EIO
	})
	if !errors.Is(err, syscall.EIO) || n != 1 {
		t.Fatalf("err=%v n=%d, want EIO after exactly 1 attempt", err, n)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	n := 0
	err := Do(context.Background(), Policy{Base: time.Millisecond}, 3, Transient, func() error {
		n++
		return syscall.ENOSPC
	})
	if !errors.Is(err, syscall.ENOSPC) || n != 3 {
		t.Fatalf("err=%v n=%d, want ENOSPC after 3 attempts", err, n)
	}
}

func TestDoContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	err := Do(ctx, Policy{Base: time.Hour}, 0, Transient, func() error {
		n++
		return syscall.ENOSPC
	})
	if !errors.Is(err, context.Canceled) || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("err=%v, want Canceled joined with last ENOSPC", err)
	}
	if n != 1 {
		t.Fatalf("n=%d, want 1 attempt before the hour-long backoff", n)
	}
}
