// Package core is the facade of the dependency-based data-quality
// framework reproduced from Fan (PODS 2008). It ties the dependency
// classes (CFDs, eCFDs, CINDs, denial constraints, MDs) and the engines
// built on them (static analysis, violation detection, repairing,
// object identification) into a single pipeline:
//
//	rules := &core.Ruleset{CFDs: ..., CINDs: ...}
//	static := core.Analyze(rules)          // Section 4: is Σ itself clean?
//	report, _ := core.Detect(db, rules)    // Section 2: find the errors
//	clean, _ := core.Clean(db, rules, opts)// Section 5.1: repair them
//
// Every step mirrors a section of the paper; the individual packages
// expose the full APIs when finer control is needed.
package core

import (
	"fmt"
	"strings"

	"repro/internal/cfd"
	"repro/internal/cind"
	"repro/internal/denial"
	"repro/internal/ecfd"
	"repro/internal/md"
	"repro/internal/relation"
	"repro/internal/repair"
)

// Ruleset bundles the dependencies used to specify data quality.
type Ruleset struct {
	CFDs    []*cfd.CFD
	ECFDs   []*ecfd.ECFD
	CINDs   []*cind.CIND
	Denials []denial.DC
	MDs     []*md.MD
}

// StaticReport summarizes the Section 4 static analyses of a ruleset.
type StaticReport struct {
	// CFDConsistent reports whether the CFDs admit a nonempty instance
	// (Theorem 4.1); an inconsistent ruleset is itself dirty.
	CFDConsistent bool
	// CFDWitness is a satisfying tuple when consistent.
	CFDWitness relation.Tuple
	// ECFDConsistent is the analogous check for the eCFDs.
	ECFDConsistent bool
	// CINDsAlwaysConsistent is constant true (Theorem 4.1's O(1) row),
	// recorded for the report.
	CINDsAlwaysConsistent bool
	// CombinedConsistency is the three-valued answer for CFDs and CINDs
	// taken together (undecidable in general; Yes/No are definite).
	CombinedConsistency cind.Result
	// RedundantCFDs counts normalized CFD rows implied by the rest (a
	// minimal cover would drop them).
	RedundantCFDs int
}

// String renders the report.
func (r StaticReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CFDs consistent: %v\n", r.CFDConsistent)
	fmt.Fprintf(&b, "eCFDs consistent: %v\n", r.ECFDConsistent)
	fmt.Fprintf(&b, "CINDs consistent: %v (always, Theorem 4.1)\n", r.CINDsAlwaysConsistent)
	fmt.Fprintf(&b, "CFDs+CINDs combined: %v\n", r.CombinedConsistency)
	fmt.Fprintf(&b, "redundant CFD rows: %d\n", r.RedundantCFDs)
	return b.String()
}

// Analyze runs the static analyses on the ruleset.
func Analyze(rules *Ruleset) StaticReport {
	var rep StaticReport
	rep.CINDsAlwaysConsistent = true
	rep.CFDConsistent, rep.CFDWitness = cfd.Consistent(rules.CFDs)
	if len(rules.ECFDs) == 0 {
		rep.ECFDConsistent = true
	} else {
		rep.ECFDConsistent, _ = ecfd.Consistent(rules.ECFDs)
	}
	rep.CombinedConsistency, _ = cind.InteractionConsistent(rules.CFDs, rules.CINDs, 0)
	norm := cfd.NormalizeSet(rules.CFDs)
	cover := cfd.MinimalCover(rules.CFDs)
	rep.RedundantCFDs = len(norm) - len(cover)
	return rep
}

// ViolationReport lists every violation found in a database.
type ViolationReport struct {
	CFD    []cfd.Violation
	ECFD   []ecfd.Violation
	CIND   []cind.Violation
	Denial []denial.Conflict
}

// Total returns the number of violations across all classes.
func (r *ViolationReport) Total() int {
	return len(r.CFD) + len(r.ECFD) + len(r.CIND) + len(r.Denial)
}

// Clean reports whether no violation was found.
func (r *ViolationReport) Clean() bool { return r.Total() == 0 }

// String renders a summary.
func (r *ViolationReport) String() string {
	return fmt.Sprintf("violations: %d CFD, %d eCFD, %d CIND, %d denial",
		len(r.CFD), len(r.ECFD), len(r.CIND), len(r.Denial))
}

// Detect finds every violation of the ruleset in the database. CFD and
// eCFD violations are detected per relation; CINDs across relations;
// denial constraints over the whole database.
func Detect(db *relation.Database, rules *Ruleset) (*ViolationReport, error) {
	rep := &ViolationReport{}
	for _, c := range rules.CFDs {
		in, ok := db.Instance(c.Schema().Name())
		if !ok {
			continue
		}
		rep.CFD = append(rep.CFD, cfd.Detect(in, c)...)
	}
	for _, e := range rules.ECFDs {
		in, ok := db.Instance(e.Schema().Name())
		if !ok {
			continue
		}
		rep.ECFD = append(rep.ECFD, ecfd.Detect(in, e)...)
	}
	rep.CIND = cind.DetectAll(db, rules.CINDs)
	if len(rules.Denials) > 0 {
		conflicts, err := denial.DetectAll(db, rules.Denials, 0)
		if err != nil {
			return nil, err
		}
		rep.Denial = conflicts
	}
	return rep, nil
}

// CleanOptions configures the repair pipeline.
type CleanOptions struct {
	// CINDMode selects insertion or deletion repair for CINDs.
	CINDMode repair.RepairCINDMode
	// MaxPasses caps the CFD repair sweeps per relation.
	MaxPasses int
	// MaxCINDOps caps CIND repair operations.
	MaxCINDOps int
	// DeleteDenialConflicts resolves denial-constraint conflicts by
	// greedy X-repair (tuple deletion) after the value-modification
	// phase. Off by default: deletions lose information, the paper's
	// argument for U-repairs.
	DeleteDenialConflicts bool
}

// CleanReport summarizes a repair run.
type CleanReport struct {
	// PerRelation maps relation names to their CFD repair reports.
	PerRelation map[string]repair.UReport
	// CINDOps counts CIND insertions or deletions.
	CINDOps int
	// Deleted counts tuples removed by denial-conflict X-repair.
	Deleted int
	// Before and After are the violation totals around the run.
	Before, After int
}

// String renders the report.
func (r *CleanReport) String() string {
	changes := 0
	cost := 0.0
	for _, ur := range r.PerRelation {
		changes += len(ur.Changes)
		cost += ur.Cost
	}
	return fmt.Sprintf("clean: %d→%d violations, %d value changes (cost %.3f), %d CIND ops, %d deletions",
		r.Before, r.After, changes, cost, r.CINDOps, r.Deleted)
}

// Clean repairs the database in place against the ruleset: CFD violations
// by cost-based value modification (Section 5.1's U-repair), CIND
// violations by insertion or deletion, iterating so that CIND-inserted
// tuples are themselves subject to the CFDs. Denial constraints and
// eCFDs are detected but not repaired automatically (use the repair
// package's X-repair machinery for those).
func Clean(db *relation.Database, rules *Ruleset, opts CleanOptions) (*CleanReport, error) {
	before, err := Detect(db, rules)
	if err != nil {
		return nil, err
	}
	rep := &CleanReport{PerRelation: make(map[string]repair.UReport), Before: before.Total()}

	// Group CFDs per relation.
	perRel := make(map[string][]*cfd.CFD)
	for _, c := range rules.CFDs {
		perRel[c.Schema().Name()] = append(perRel[c.Schema().Name()], c)
	}
	for _, round := range []int{1, 2} {
		for name, set := range perRel {
			in, ok := db.Instance(name)
			if !ok {
				continue
			}
			ur, err := repair.RepairCFDs(in, set, repair.URepairOptions{MaxPasses: opts.MaxPasses})
			if err != nil {
				return rep, fmt.Errorf("core: repairing %s: %v", name, err)
			}
			prev := rep.PerRelation[name]
			prev.Changes = append(prev.Changes, ur.Changes...)
			prev.Passes += ur.Passes
			prev.Cost += ur.Cost
			rep.PerRelation[name] = prev
		}
		if len(rules.CINDs) == 0 {
			break
		}
		n, err := repair.RepairCINDs(db, rules.CINDs, opts.CINDMode, opts.MaxCINDOps)
		if err != nil {
			return rep, fmt.Errorf("core: repairing CINDs: %v", err)
		}
		rep.CINDOps += n
		if round == 2 && n > 0 {
			// One more CFD sweep over the inserted tuples would follow;
			// the fixed two-round schedule keeps the pipeline total. The
			// After count below reports any residue faithfully.
			break
		}
	}
	if opts.DeleteDenialConflicts && len(rules.Denials) > 0 {
		removed, err := repair.GreedyXRepair(db, rules.Denials)
		if err != nil {
			return rep, fmt.Errorf("core: denial X-repair: %v", err)
		}
		for _, ref := range removed {
			if in, ok := db.Instance(ref.Rel); ok {
				in.Delete(ref.TID)
			}
		}
		rep.Deleted = len(removed)
	}
	after, err := Detect(db, rules)
	if err != nil {
		return rep, err
	}
	rep.After = after.Total()
	return rep, nil
}
