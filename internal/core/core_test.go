package core_test

import (
	"testing"

	"repro/internal/algebra"

	"repro/internal/cfd"
	"repro/internal/cind"
	"repro/internal/core"
	"repro/internal/denial"
	"repro/internal/gen"
	"repro/internal/paperdata"
	"repro/internal/relation"
	"repro/internal/repair"
)

func figureRules() (*relation.Schema, *core.Ruleset) {
	s := paperdata.CustomerSchema()
	return s, &core.Ruleset{
		CFDs: []*cfd.CFD{paperdata.Phi1(s), paperdata.Phi2(s), paperdata.Phi3(s)},
	}
}

func TestAnalyzeFigureRules(t *testing.T) {
	_, rules := figureRules()
	rep := core.Analyze(rules)
	if !rep.CFDConsistent {
		t.Error("Figure 2 CFDs are consistent")
	}
	if !rep.ECFDConsistent || !rep.CINDsAlwaysConsistent {
		t.Error("vacuous classes must report consistent")
	}
	if rep.CombinedConsistency != cind.Yes {
		t.Errorf("combined = %v, want yes", rep.CombinedConsistency)
	}
	if rep.String() == "" {
		t.Error("report must render")
	}
	// Adding a redundant CFD is reported.
	s := paperdata.CustomerSchema()
	rules.CFDs = append(rules.CFDs, cfd.MustFD(s, []string{"CC", "AC", "phn"}, []string{"city"}))
	rep = core.Analyze(rules)
	if rep.RedundantCFDs == 0 {
		t.Error("the augmented FD is implied by ϕ3 and must be counted redundant")
	}
	// An inconsistent ruleset is flagged.
	_, bad := paperdata.Example41()
	rep = core.Analyze(&core.Ruleset{CFDs: bad})
	if rep.CFDConsistent {
		t.Error("Example 4.1 must be flagged inconsistent")
	}
}

func TestDetectAcrossClasses(t *testing.T) {
	_, rules := figureRules()
	db := relation.NewDatabase()
	db.Add(paperdata.Figure1())
	rep, err := core.Detect(db, rules)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() || len(rep.CFD) == 0 {
		t.Errorf("Figure 1 must show CFD violations: %v", rep)
	}
	// Add the Figure 3/4 CIND side.
	f3 := paperdata.Figure3()
	for _, name := range f3.Names() {
		in, _ := f3.Instance(name)
		db.Add(in)
	}
	rules.CINDs = []*cind.CIND{
		cind.MustNew(paperdata.CDSchema(), paperdata.BookSchema(),
			[]string{"album", "price"}, []string{"title", "price"},
			[]string{"genre"}, []string{"format"},
			cind.PatternRow{
				XpVals: []relation.Value{relation.Str("a-book")},
				YpVals: []relation.Value{relation.Str("audio")},
			}),
	}
	rep, err = core.Detect(db, rules)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.CIND) != 1 {
		t.Errorf("CIND violations = %d, want 1 (t9)", len(rep.CIND))
	}
	if rep.Total() != len(rep.CFD)+1 {
		t.Errorf("total = %d", rep.Total())
	}
}

func TestCleanPipeline(t *testing.T) {
	_, rules := figureRules()
	db := relation.NewDatabase()
	db.Add(paperdata.Figure1())
	rep, err := core.Clean(db, rules, core.CleanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.After != 0 {
		t.Errorf("residual violations: %d", rep.After)
	}
	if rep.Before == 0 {
		t.Error("dirty input must report violations before")
	}
	if rep.String() == "" {
		t.Error("report renders")
	}
	// The repaired instance satisfies all CFDs.
	in, _ := db.Instance("customer")
	if !cfd.SatisfiesAll(in, rules.CFDs) {
		t.Error("clean run left CFD violations")
	}
}

func TestCleanWithCINDs(t *testing.T) {
	db := gen.Orders(gen.OrdersConfig{Books: 20, CDs: 20, Orders: 40, Seed: 3, ViolationRate: 0.2})
	order := db.MustInstance("order").Schema()
	book := db.MustInstance("book").Schema()
	cdS := db.MustInstance("CD").Schema()
	rules := &core.Ruleset{
		CINDs: []*cind.CIND{
			cind.MustNew(order, book, []string{"title", "price"}, []string{"title", "price"},
				[]string{"type"}, nil,
				cind.PatternRow{XpVals: []relation.Value{relation.Str("book")}}),
			cind.MustNew(order, cdS, []string{"title", "price"}, []string{"album", "price"},
				[]string{"type"}, nil,
				cind.PatternRow{XpVals: []relation.Value{relation.Str("CD")}}),
		},
	}
	before, err := core.Detect(db, rules)
	if err != nil {
		t.Fatal(err)
	}
	if before.Clean() {
		t.Fatal("generator should have injected CIND violations")
	}
	rep, err := core.Clean(db, rules, core.CleanOptions{CINDMode: repair.InsertDemanded})
	if err != nil {
		t.Fatal(err)
	}
	if rep.After != 0 {
		t.Errorf("residual violations: %d", rep.After)
	}
	if rep.CINDOps == 0 {
		t.Error("insertion repair should have added tuples")
	}
}

func TestCleanRejectsInconsistentRules(t *testing.T) {
	_, bad := paperdata.Example41()
	db := relation.NewDatabase()
	in := relation.NewInstance(bad[0].Schema())
	in.MustInsert(relation.Bool(true), relation.Str("b1"))
	db.Add(in)
	if _, err := core.Clean(db, &core.Ruleset{CFDs: bad}, core.CleanOptions{}); err == nil {
		t.Error("cleaning against an inconsistent ruleset must fail")
	}
}

func TestCleanDeletesDenialConflicts(t *testing.T) {
	s := relation.MustSchema("emp",
		relation.Attr("name", relation.KindString),
		relation.Attr("mgr", relation.KindString),
		relation.Attr("salary", relation.KindInt),
	)
	in := relation.NewInstance(s)
	in.MustInsert(relation.Str("ann"), relation.Str("cat"), relation.Int(90))
	in.MustInsert(relation.Str("cat"), relation.Str("cat"), relation.Int(80))
	db := relation.NewDatabase()
	db.Add(in)
	dc := denial.DC{
		Name: "no-higher-than-manager",
		Atoms: []algebra.Atom{
			{Rel: "emp", Terms: []algebra.Term{algebra.V("n"), algebra.V("m"), algebra.V("s")}},
			{Rel: "emp", Terms: []algebra.Term{algebra.V("m"), algebra.V("m2"), algebra.V("s2")}},
		},
		Conds: []algebra.Cond{{Left: algebra.V("s"), Op: algebra.OpGt, Right: algebra.V("s2")}},
	}
	rules := &core.Ruleset{Denials: []denial.DC{dc}}
	rep, err := core.Clean(db, rules, core.CleanOptions{DeleteDenialConflicts: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.After != 0 {
		t.Errorf("residual denial conflicts: %d", rep.After)
	}
	if rep.Deleted == 0 {
		t.Error("a deletion was required")
	}
	// Without the flag, denial conflicts are reported but kept.
	db2 := relation.NewDatabase()
	in2 := in.Clone()
	in2.MustInsert(relation.Str("ann"), relation.Str("cat"), relation.Int(90))
	db2.Add(in2)
	rep2, err := core.Clean(db2, rules, core.CleanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Deleted != 0 || rep2.After == 0 {
		t.Errorf("default mode must not delete: %v", rep2)
	}
}
