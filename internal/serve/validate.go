// Ingest-edge validation: every Submit request is checked op by op
// against the writer-local tip BEFORE it is WAL-logged or applied, so a
// malformed request is rejected with a structured OpError — naming the
// op index and the reason — while the monitor state (and the log) stay
// untouched. Validation is per request, not per coalesced batch: one
// bad request in a coalesced commit rejects only itself; the valid
// requests around it commit normally.
package serve

import (
	"fmt"

	"repro/internal/detect"
	"repro/internal/oplog"
	"repro/internal/relation"
)

// OpError reports the first invalid op of a rejected Submit: its index
// in the request's op slice and the reason it was refused. The request
// was not applied — not even a prefix — and the published state did not
// change.
type OpError struct {
	Index  int
	Reason string
}

func (e *OpError) Error() string {
	return fmt.Sprintf("serve: op %d: %s", e.Index, e.Reason)
}

// relDelta is one relation's speculative state while validating the
// requests of one coalesced commit: inserts allocate TIDs upward from
// the live next-TID, deletes tombstone existing (or just-inserted)
// TIDs. Accepted requests' effects are visible to the requests after
// them — matching the order the monitor will apply them in.
type relDelta struct {
	nextTID relation.TID
	inserts relation.TID // TIDs [nextTID, nextTID+inserts) are pending inserts
	deleted map[relation.TID]bool
}

func (d *relDelta) clone() *relDelta {
	cp := &relDelta{nextTID: d.nextTID, inserts: d.inserts,
		deleted: make(map[relation.TID]bool, len(d.deleted))}
	for id := range d.deleted {
		cp.deleted[id] = true
	}
	return cp
}

// validator validates requests against the writer-local tip plus the
// accepted requests before them. Sequencer-only: it reads the live
// database / tuple directory, which only the ingest loop mutates.
type validator struct {
	s    *Service
	rels map[string]*relDelta // accepted view, per touched relation
}

func (s *Service) newValidator() *validator {
	return &validator{s: s, rels: make(map[string]*relDelta)}
}

// accepted returns the accepted-view delta for one relation, creating
// it from the live allocator position on first use; ok is false for an
// unknown relation.
func (v *validator) accepted(name string) (*relDelta, bool) {
	if d, ok := v.rels[name]; ok {
		return d, true
	}
	if _, ok := v.s.schemas[name]; !ok {
		return nil, false
	}
	d := &relDelta{deleted: make(map[relation.TID]bool)}
	if v.s.shardedDB != nil {
		d.nextTID = v.s.shardedDB.NextTID(name)
	} else {
		d.nextTID = v.s.db.MustInstance(name).NextTID()
	}
	v.rels[name] = d
	return d, true
}

// exists reports whether the TID is live under the delta: pending
// insertion or present in the store, and not tombstoned.
func (v *validator) exists(name string, d *relDelta, id relation.TID) bool {
	if d.deleted[id] {
		return false
	}
	if id >= d.nextTID {
		return id < d.nextTID+d.inserts
	}
	if v.s.shardedDB != nil {
		_, ok := v.s.shardedDB.ShardOfTID(name, id)
		return ok
	}
	_, ok := v.s.db.MustInstance(name).Tuple(id)
	return ok
}

// validate checks one request's ops in order. On success the request's
// effects are folded into the cumulative view and nil is returned; on
// the first invalid op the view is left exactly as before the call (the
// request will not be applied) and the *OpError describes the op.
func (v *validator) validate(ops []detect.DBOp) error {
	if len(ops) > oplog.MaxBatchOps {
		// One commit is one WAL record in the oplog wire format; a wider
		// request could never be replayed, so it is refused up front.
		return &OpError{Index: oplog.MaxBatchOps, Reason: fmt.Sprintf(
			"request of %d ops exceeds the %d-op ceiling", len(ops), oplog.MaxBatchOps)}
	}
	// Stage effects on clones; fold into v.rels only if every op passes.
	staged := make(map[string]*relDelta)
	for i, op := range ops {
		sd := staged[op.Rel]
		if sd == nil {
			d, ok := v.accepted(op.Rel)
			if !ok {
				return &OpError{Index: i, Reason: fmt.Sprintf("unknown relation %q", op.Rel)}
			}
			sd = d.clone()
			staged[op.Rel] = sd
		}
		sch := v.s.schemas[op.Rel]
		switch op.Op.Kind {
		case detect.OpInsert:
			if len(op.Op.Tuple) != sch.Arity() {
				return &OpError{Index: i, Reason: fmt.Sprintf(
					"%s: insert arity %d, want %d", op.Rel, len(op.Op.Tuple), sch.Arity())}
			}
			for p, val := range op.Op.Tuple {
				if !sch.Attr(p).Domain.Contains(val) {
					return &OpError{Index: i, Reason: fmt.Sprintf(
						"%s: value %v not in dom(%s)", op.Rel, val, sch.Attr(p).Name)}
				}
			}
			sd.inserts++
		case detect.OpDelete:
			if sd.deleted[op.Op.TID] {
				return &OpError{Index: i, Reason: fmt.Sprintf(
					"%s: duplicate delete of tuple %d", op.Rel, op.Op.TID)}
			}
			if !v.exists(op.Rel, sd, op.Op.TID) {
				return &OpError{Index: i, Reason: fmt.Sprintf(
					"%s: delete of missing tuple %d", op.Rel, op.Op.TID)}
			}
			sd.deleted[op.Op.TID] = true
		case detect.OpUpdate:
			if op.Op.Pos < 0 || op.Op.Pos >= sch.Arity() {
				return &OpError{Index: i, Reason: fmt.Sprintf(
					"%s: update position %d out of range (arity %d)", op.Rel, op.Op.Pos, sch.Arity())}
			}
			if !sch.Attr(op.Op.Pos).Domain.Contains(op.Op.Val) {
				return &OpError{Index: i, Reason: fmt.Sprintf(
					"%s: value %v not in dom(%s)", op.Rel, op.Op.Val, sch.Attr(op.Op.Pos).Name)}
			}
			if !v.exists(op.Rel, sd, op.Op.TID) {
				return &OpError{Index: i, Reason: fmt.Sprintf(
					"%s: update of missing tuple %d", op.Rel, op.Op.TID)}
			}
		default:
			return &OpError{Index: i, Reason: fmt.Sprintf("unknown op kind %d", op.Op.Kind)}
		}
	}
	for name, sd := range staged {
		v.rels[name] = sd
	}
	return nil
}
