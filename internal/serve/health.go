// Health state machine: healthy → read-only (degraded) → broken, one
// way only. Durability failures demote the service rather than kill it:
// a WAL fsync failure means new commits cannot be made durable, so
// writes stop being accepted (read-only) while every read endpoint
// keeps serving the last published State; a panic escaping the ingest
// loop means even the in-memory state can no longer advance (broken).
// An operator repairs the underlying condition and restarts — recovery
// replays checkpoint + WAL, which is exactly the acknowledged history.
package serve

import (
	"errors"
	"fmt"
)

// Health is the service's write-availability state.
type Health int32

const (
	// Healthy: reads and writes both served.
	Healthy Health = iota
	// ReadOnly: a durability failure stopped writes; reads keep serving
	// the last published State. Submit fails fast with ErrReadOnly.
	ReadOnly
	// Broken: the ingest loop is gone (a panic escaped it); the last
	// published State still serves reads, but nothing will ever advance
	// it. /healthz reports failure so an orchestrator restarts the
	// process.
	Broken
)

func (h Health) String() string {
	switch h {
	case Healthy:
		return "ok"
	case ReadOnly:
		return "read-only"
	case Broken:
		return "broken"
	default:
		return fmt.Sprintf("Health(%d)", int32(h))
	}
}

// ErrReadOnly is returned by Submit once the service has degraded:
// writes are refused, reads keep working. The error text carries the
// degradation reason.
var ErrReadOnly = errors.New("serve: service is read-only")

// healthState is the atomically-published (state, reason) pair.
type healthState struct {
	h      Health
	reason string
}

// Health returns the current state and, when degraded, the reason for
// the first demotion (later demotions to a worse state replace it).
func (s *Service) Health() (Health, string) {
	hs := s.health.Load()
	if hs == nil {
		return Healthy, ""
	}
	return hs.h, hs.reason
}

// degrade demotes the service to h. Transitions are one-way: a demotion
// to a state no worse than the current one is ignored, so the first
// reason at each severity wins and the service can never silently heal.
func (s *Service) degrade(h Health, reason string) {
	for {
		old := s.health.Load()
		cur := Healthy
		if old != nil {
			cur = old.h
		}
		if h <= cur {
			return
		}
		if s.health.CompareAndSwap(old, &healthState{h: h, reason: reason}) {
			s.logger.Error("service degraded", "state", h.String(), "reason", reason)
			return
		}
	}
}

// healthErr renders the degraded state as the error Submit returns.
func (s *Service) healthErr() error {
	h, reason := s.Health()
	switch h {
	case Broken:
		return fmt.Errorf("%w: %s", ErrStopped, reason)
	case ReadOnly:
		return fmt.Errorf("%w: %s", ErrReadOnly, reason)
	default:
		return nil
	}
}
