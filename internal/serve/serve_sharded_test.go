package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"reflect"
	"testing"

	"repro/internal/cfd"
	"repro/internal/cind"
	"repro/internal/detect"
	"repro/internal/ecfd"
	"repro/internal/paperdata"
	"repro/internal/relation"
)

// shardableServeSigma is serveSigma with the type-grouped eCFD swapped
// for a title-grouped one, so every CFD/eCFD LHS contains title and the
// derived order key keeps the batch shard-local.
func shardableServeSigma() []detect.Constraint {
	order := paperdata.OrderSchema()
	book := paperdata.BookSchema()
	cd := paperdata.CDSchema()
	cfds := []*cfd.CFD{
		cfd.MustFD(order, []string{"title"}, []string{"price"}),
		cfd.MustFD(order, []string{"title", "price", "type"}, []string{"asin"}),
	}
	cinds := []*cind.CIND{
		cind.MustNew(order, book,
			[]string{"title", "price"}, []string{"title", "price"},
			[]string{"type"}, nil,
			cind.PatternRow{XpVals: []relation.Value{relation.Str("book")}}),
		cind.MustNew(order, cd,
			[]string{"title", "price"}, []string{"album", "price"},
			[]string{"type"}, nil,
			cind.PatternRow{XpVals: []relation.Value{relation.Str("CD")}}),
	}
	ecfds := []*ecfd.ECFD{
		ecfd.MustNew(order, []string{"title"}, []string{"type"},
			ecfd.Row{LHS: []ecfd.Cell{ecfd.Any()},
				RHS: []ecfd.Cell{ecfd.In(relation.Str("book"), relation.Str("CD"), relation.Str("vinyl"))}}),
	}
	var cs []detect.Constraint
	cs = append(cs, detect.WrapCFDs(cfds)...)
	cs = append(cs, detect.WrapCINDs(cinds)...)
	cs = append(cs, detect.WrapECFDs(ecfds)...)
	return cs
}

// TestServiceShardedOracle drives randomized batches through a sharded
// service and an unsharded one side by side and requires, every round,
// that both published violation lists equal a fresh DetectBatch on a
// shadow database mutated by the same ops — the end-to-end
// byte-identity the sharding seam promises.
func TestServiceShardedOracle(t *testing.T) {
	for _, shards := range []int{2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			seed := int64(31 + shards)
			cs := shardableServeSigma()
			db := ordersDB(seed, 150)
			shadow := db.Clone()
			svc, err := New(Config{DB: db, Constraints: cs, Engine: detect.New(2), Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			defer svc.Stop(context.Background())
			flat, err := New(Config{DB: db.Clone(), Constraints: cs, Engine: detect.New(1)})
			if err != nil {
				t.Fatal(err)
			}
			defer flat.Stop(context.Background())
			if svc.Shards() != shards || flat.Shards() != 1 {
				t.Fatalf("Shards() = %d/%d, want %d/1", svc.Shards(), flat.Shards(), shards)
			}

			oracle := detect.New(1)
			r := rand.New(rand.NewSource(seed))
			fresh := 0
			ctx := context.Background()
			for round := 0; round < 12; round++ {
				batch := make([]detect.DBOp, 1+r.Intn(10))
				dead := make(map[string]map[relation.TID]bool)
				for i := range batch {
					batch[i] = randomServeOp(r, shadow, &fresh, dead)
				}
				res, err := svc.Submit(ctx, batch)
				if err != nil {
					t.Fatalf("round %d: sharded Submit: %v", round, err)
				}
				fres, err := flat.Submit(ctx, batch)
				if err != nil {
					t.Fatalf("round %d: flat Submit: %v", round, err)
				}
				if res.Gained != fres.Gained || res.Cleared != fres.Cleared {
					t.Fatalf("round %d: diff sizes diverge: +%d -%d vs +%d -%d",
						round, res.Gained, res.Cleared, fres.Gained, fres.Cleared)
				}
				if err := applyShadow(shadow, batch); err != nil {
					t.Fatalf("round %d: shadow apply: %v", round, err)
				}
				want := oracle.DetectBatch(shadow, cs)
				if got := svc.Violations(); !reflect.DeepEqual(got, want) {
					t.Fatalf("round %d: sharded service has %d violations, shadow detection %d:\nservice %v\nfresh   %v",
						round, len(got), len(want), got, want)
				}
				if got := flat.Violations(); !reflect.DeepEqual(got, want) {
					t.Fatalf("round %d: flat service diverges from shadow", round)
				}

				st := svc.State()
				if st.Snapshot != nil || len(st.Shards) != shards {
					t.Fatalf("round %d: sharded State should publish %d shard snapshots and no merged one", round, shards)
				}
				sum := 0
				for _, n := range st.ShardViolations {
					sum += n
				}
				if sum != len(st.Violations) {
					t.Fatalf("round %d: per-shard violation counts sum to %d, total is %d", round, sum, len(st.Violations))
				}
				// The cross-partition read path: /check's gather must agree
				// with the shadow on the monitored rules.
				_, ok, err := svc.Check(cs)
				if err != nil {
					t.Fatalf("round %d: Check: %v", round, err)
				}
				if ok != (len(want) == 0) {
					t.Fatalf("round %d: sharded Check = %v with %d violations", round, ok, len(want))
				}
			}
		})
	}
}

// TestServiceShardedRejectsUnshardable: a rule set without a common
// shard key fails at New, not at first commit.
func TestServiceShardedRejectsUnshardable(t *testing.T) {
	_, err := New(Config{DB: ordersDB(1, 20), Constraints: serveSigma(), Shards: 2})
	if err == nil {
		t.Fatal("serveSigma's type-grouped eCFD must not be shardable under the derived title key")
	}
}

// TestServiceShardedExplicitKeys: Config.ShardKeys overrides
// derivation; a key outside every LHS is rejected.
func TestServiceShardedExplicitKeys(t *testing.T) {
	cs := shardableServeSigma()
	svc, err := New(Config{DB: ordersDB(3, 40), Constraints: cs, Shards: 2,
		ShardKeys: map[string][]int{"order": {1}, "book": {1, 2}, "CD": {1, 2}}})
	if err != nil {
		t.Fatal(err)
	}
	svc.Stop(context.Background())
	_, err = New(Config{DB: ordersDB(3, 40), Constraints: cs, Shards: 2,
		ShardKeys: map[string][]int{"order": {0}}}) // asin: in no LHS
	if err == nil {
		t.Fatal("asin key must be rejected: not contained in the CFD LHSs")
	}
}

// TestHandlerShardedStats covers the sharded fields of the HTTP
// surface: /healthz exposes the shard count, /stats carries shardCount
// plus per-shard tuple/violation/queue-depth rows consistent with the
// totals.
func TestHandlerShardedStats(t *testing.T) {
	cs := shardableServeSigma()
	svc, err := New(Config{DB: ordersDB(9, 120), Constraints: cs, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Stop(context.Background())
	h := NewHandler(svc)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	var health struct {
		Status string `json:"status"`
		Shards int    `json:"shards"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Shards != 4 {
		t.Fatalf("healthz = %+v, want ok with 4 shards", health)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/stats", nil))
	var stats struct {
		Relations  map[string]int `json:"relations"`
		Violations int            `json:"violations"`
		ShardCount int            `json:"shardCount"`
		Shards     []struct {
			Shard      int `json:"shard"`
			Tuples     int `json:"tuples"`
			Violations int `json:"violations"`
			QueueDepth int `json:"queueDepth"`
		} `json:"shards"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.ShardCount != 4 || len(stats.Shards) != 4 {
		t.Fatalf("stats shardCount %d with %d shard rows, want 4/4", stats.ShardCount, len(stats.Shards))
	}
	wantTuples := 0
	for _, n := range stats.Relations {
		wantTuples += n
	}
	gotTuples, gotViolations := 0, 0
	for i, sh := range stats.Shards {
		if sh.Shard != i {
			t.Fatalf("shard row %d labeled %d", i, sh.Shard)
		}
		gotTuples += sh.Tuples
		gotViolations += sh.Violations
	}
	if gotTuples != wantTuples {
		t.Fatalf("per-shard tuples sum to %d, relations sum to %d", gotTuples, wantTuples)
	}
	if gotViolations != stats.Violations {
		t.Fatalf("per-shard violations sum to %d, total is %d", gotViolations, stats.Violations)
	}

	// An unsharded service reports shardCount 1 and no shard rows.
	flat, err := New(Config{DB: ordersDB(9, 30), Constraints: cs})
	if err != nil {
		t.Fatal(err)
	}
	defer flat.Stop(context.Background())
	rec = httptest.NewRecorder()
	NewHandler(flat).ServeHTTP(rec, httptest.NewRequest("GET", "/stats", nil))
	var flatStats struct {
		ShardCount int             `json:"shardCount"`
		Shards     json.RawMessage `json:"shards"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &flatStats); err != nil {
		t.Fatal(err)
	}
	if flatStats.ShardCount != 1 || len(flatStats.Shards) != 0 {
		t.Fatalf("unsharded stats: shardCount %d, shards %q", flatStats.ShardCount, flatStats.Shards)
	}
}
