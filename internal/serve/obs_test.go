package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cfd"
	"repro/internal/detect"
	"repro/internal/gen/drift"
	"repro/internal/obs"
	"repro/internal/paperdata"
	"repro/internal/relation"
)

// driftService builds an observability-enabled service over the drift
// workload's clean customer base with its Σ = {ϕ1, ϕ2}.
func driftService(t *testing.T, extra Config) *Service {
	t.Helper()
	in := drift.Customers(200, 1)
	db := relation.NewDatabase()
	db.Add(in)
	s := in.Schema()
	extra.DB = db
	extra.Constraints = detect.WrapCFDs([]*cfd.CFD{paperdata.Phi1(s), paperdata.Phi2(s)})
	if extra.Obs == nil {
		extra.Obs = &ObsConfig{}
	}
	return mustNew(t, extra)
}

// submitDrift pushes every drift batch as one commit and returns the
// sequence of the first post-change commit.
func submitDrift(t *testing.T, svc *Service, cfg drift.Config) uint64 {
	t.Helper()
	base := svc.State().Seq
	for _, ops := range drift.Batches(cfg) {
		if _, err := svc.Submit(context.Background(), ops); err != nil {
			t.Fatal(err)
		}
	}
	return base + uint64(cfg.ChangeAt) + 1
}

// expositionLine matches one Prometheus text sample: a metric name, an
// optional label set, and a value.
var expositionLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? \S+$`)

// checkExposition validates the scrape is well-formed line by line and
// returns the set of sample names seen (bucket/sum/count suffixes
// included).
func checkExposition(t *testing.T, body string) map[string]bool {
	t.Helper()
	names := make(map[string]bool)
	for i, line := range strings.Split(strings.TrimSuffix(body, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Fatalf("line %d: malformed exposition line %q", i+1, line)
		}
		name := line
		if j := strings.IndexAny(name, "{ "); j >= 0 {
			name = name[:j]
		}
		val := line[strings.LastIndexByte(line, ' ')+1:]
		if _, err := strconv.ParseFloat(val, 64); err != nil && val != "+Inf" && val != "-Inf" && val != "NaN" {
			t.Fatalf("line %d: unparseable value %q in %q", i+1, val, line)
		}
		names[name] = true
	}
	return names
}

// TestMetricsEndpointE2E scrapes GET /metrics after real commits: the
// exposition must be well-formed and every core pipeline series
// present, and /stats must carry the new uptime and queue gauges.
func TestMetricsEndpointE2E(t *testing.T) {
	svc := driftService(t, Config{})
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()

	submitDrift(t, svc, drift.Config{
		Seed: 7, Batches: 10, OpsPerBatch: 20,
		BaseRate: 0.2, ChangeAt: 10, // stationary: never shifts
	})

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s: %s", resp.Status, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	names := checkExposition(t, string(body))
	for _, want := range []string{
		"dq_commits_total", "dq_ops_total",
		"dq_violations_gained_total", "dq_violations_cleared_total",
		"dq_batch_ops_bucket", "dq_batch_ops_sum", "dq_batch_ops_count",
		"dq_stage_seconds_bucket", "dq_stage_seconds_count",
		"dq_seq", "dq_violations", "dq_uptime_seconds",
		"dq_ingest_queue_depth", "dq_ingest_queue_cap",
		"dq_subscribers", "dq_health_state", "dq_alerts_total",
	} {
		if !names[want] {
			t.Errorf("scrape missing core series %s", want)
		}
	}
	// The counters must reflect the ingest: 10 commits of 20 ops each.
	if !strings.Contains(string(body), "dq_commits_total 10\n") {
		t.Errorf("dq_commits_total != 10 in scrape")
	}
	if !strings.Contains(string(body), "dq_ops_total 200\n") {
		t.Errorf("dq_ops_total != 200 in scrape")
	}

	var stats struct {
		UptimeSeconds float64 `json:"uptimeSeconds"`
		QueueCap      int     `json:"queueCap"`
		Seq           uint64  `json:"seq"`
	}
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.UptimeSeconds <= 0 {
		t.Errorf("stats uptimeSeconds = %v, want > 0", stats.UptimeSeconds)
	}
	if stats.QueueCap != DefaultQueueCap {
		t.Errorf("stats queueCap = %d, want %d", stats.QueueCap, DefaultQueueCap)
	}
	if stats.Seq != 10 {
		t.Errorf("stats seq = %d, want 10", stats.Seq)
	}
}

// TestMetricsDisabled: a service built without ObsConfig serves 404 on
// /metrics and /trends — a scraper misconfiguration is loud, not an
// empty 200.
func TestMetricsDisabled(t *testing.T) {
	cs := serveSigma()
	svc := mustNew(t, Config{DB: ordersDB(11, 80), Constraints: cs})
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()
	for _, path := range []string{"/metrics", "/trends"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s on obs-less service: %s, want 404", path, resp.Status)
		}
	}
}

// TestTrendsChangePointE2E drives the acceptance workload through the
// full service: an 8× violation-rate step at a known commit must be
// flagged within 5 commits, and a stationary control stream must fire
// nothing.
func TestTrendsChangePointE2E(t *testing.T) {
	svc := driftService(t, Config{})
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()

	changeSeq := submitDrift(t, svc, drift.Config{
		Seed: 7, Batches: 40, OpsPerBatch: 25,
		BaseRate: 0.1, ChangeAt: 20, Factor: 8,
	})

	var trends struct {
		Seq          uint64      `json:"seq"`
		ChangePoints int         `json:"changePoints"`
		Trends       []obs.Trend `json:"trends"`
	}
	getJSON(t, ts.URL+"/trends", &trends)
	if trends.Seq != 40 {
		t.Fatalf("trends seq = %d, want 40", trends.Seq)
	}
	if len(trends.Trends) != 2 {
		t.Fatalf("got %d tracked constraints, want 2 (ϕ1, ϕ2)", len(trends.Trends))
	}
	var cps []obs.ChangePoint
	for _, tr := range trends.Trends {
		cps = append(cps, tr.ChangePoints...)
	}
	if len(cps) != 1 {
		t.Fatalf("detected %d change points, want exactly 1 (got %+v)", len(cps), cps)
	}
	cp := cps[0]
	if latency := int64(cp.DetectedSeq) - int64(changeSeq); latency < 0 || latency > 5 {
		t.Errorf("detected at seq %d, change at seq %d: latency %d commits, want <= 5",
			cp.DetectedSeq, changeSeq, latency)
	}
	if cp.Confidence < 0.95 {
		t.Errorf("confidence %.3f, want >= 0.95", cp.Confidence)
	}
	if cp.After <= cp.Before {
		t.Errorf("change point means not a jump: before %.2f, after %.2f", cp.Before, cp.After)
	}

	// ?points caps the series length; garbage is a 400.
	getJSON(t, ts.URL+"/trends?points=5", &trends)
	for _, tr := range trends.Trends {
		if len(tr.Points) > 5 {
			t.Errorf("points=5 returned %d points for %s", len(tr.Points), tr.Constraint)
		}
	}
	resp, err := http.Get(ts.URL + "/trends?points=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("points=bogus: %s, want 400", resp.Status)
	}

	// Control: a fresh stationary run must stay silent end to end.
	ctrl := driftService(t, Config{})
	submitDrift(t, ctrl, drift.Config{
		Seed: 19, Batches: 40, OpsPerBatch: 25,
		BaseRate: 0.1, ChangeAt: 40, // never shifts
	})
	for _, tr := range ctrl.Trends(0) {
		if len(tr.ChangePoints) != 0 {
			t.Errorf("control stream: false positive change point on %s: %+v",
				tr.Constraint, tr.ChangePoints)
		}
	}
}

// TestStreamAlertSSE: the change-point alert rides the SSE stream as an
// "alert" event right after the delta that fired it.
func TestStreamAlertSSE(t *testing.T) {
	svc := driftService(t, Config{})
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	events := make(chan sseEvent, 512)
	go readSSE(resp.Body, events)
	if ev := <-events; ev.Event != "hello" {
		t.Fatalf("first event %q, want hello", ev.Event)
	}

	changeSeq := submitDrift(t, svc, drift.Config{
		Seed: 7, Batches: 40, OpsPerBatch: 25,
		BaseRate: 0.1, ChangeAt: 20, Factor: 8,
	})

	deadline := time.After(10 * time.Second)
	var prevDeltaSeq uint64
	for {
		select {
		case ev := <-events:
			switch ev.Event {
			case "delta":
				var d wireDelta
				if err := json.Unmarshal([]byte(ev.Data), &d); err != nil {
					t.Fatal(err)
				}
				prevDeltaSeq = d.Seq
			case "alert":
				var a obs.Alert
				if err := json.Unmarshal([]byte(ev.Data), &a); err != nil {
					t.Fatal(err)
				}
				if a.Seq != prevDeltaSeq {
					t.Errorf("alert seq %d did not follow its delta (last delta seq %d)", a.Seq, prevDeltaSeq)
				}
				if latency := int64(a.ChangePoint.DetectedSeq) - int64(changeSeq); latency < 0 || latency > 5 {
					t.Errorf("alert detected at seq %d, change at %d: latency %d, want <= 5",
						a.ChangePoint.DetectedSeq, changeSeq, latency)
				}
				if a.Constraint == "" || a.Message == "" {
					t.Errorf("alert missing constraint/message: %+v", a)
				}
				return
			}
		case <-deadline:
			t.Fatal("no alert event within 10s")
		}
	}
}

// TestHealthzDurableFields: on a durable service /healthz reports the
// checkpoint lag and WAL size; a memory-only service omits both.
func TestHealthzDurableFields(t *testing.T) {
	svc := driftService(t, Config{Durable: &DurableConfig{Dir: t.TempDir()}})
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()

	submitDrift(t, svc, drift.Config{
		Seed: 7, Batches: 5, OpsPerBatch: 10, BaseRate: 0.2, ChangeAt: 5,
	})

	var hz map[string]any
	getJSON(t, ts.URL+"/healthz", &hz)
	lag, ok := hz["checkpointLagSeqs"].(float64)
	if !ok {
		t.Fatalf("durable /healthz missing checkpointLagSeqs: %v", hz)
	}
	if lag > 5 {
		t.Errorf("checkpointLagSeqs = %v, want <= 5", lag)
	}
	if wb, ok := hz["walBytes"].(float64); !ok || wb <= 0 {
		t.Errorf("durable /healthz walBytes = %v, want > 0", hz["walBytes"])
	}

	mem := driftService(t, Config{})
	ts2 := httptest.NewServer(NewHandler(mem))
	defer ts2.Close()
	hz = nil
	getJSON(t, ts2.URL+"/healthz", &hz)
	if _, present := hz["checkpointLagSeqs"]; present {
		t.Error("memory-only /healthz leaked checkpointLagSeqs")
	}
	if _, present := hz["walBytes"]; present {
		t.Error("memory-only /healthz leaked walBytes")
	}
}

// TestMetricsRace hammers ingest while scraping /metrics and /trends —
// the -race job's proof that the observability layer is safe under
// concurrent readers.
func TestMetricsRace(t *testing.T) {
	svc := driftService(t, Config{})
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()

	done := make(chan struct{})
	var scrapers sync.WaitGroup
	for _, path := range []string{"/metrics", "/trends", "/stats"} {
		scrapers.Add(1)
		go func(path string) {
			defer scrapers.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := http.Get(ts.URL + path)
				if err != nil {
					t.Errorf("GET %s: %v", path, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(path)
	}
	submitDrift(t, svc, drift.Config{
		Seed: 7, Batches: 30, OpsPerBatch: 20,
		BaseRate: 0.2, ChangeAt: 15, Factor: 8,
	})
	close(done)
	scrapers.Wait()
}
