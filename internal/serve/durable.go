// Durability layer: a write-ahead op log plus checkpointed snapshots.
//
// Every commit batch is encoded in the oplog wire format and appended
// to the WAL — fsynced (possibly as part of a group-commit window) —
// BEFORE it is applied, published or acknowledged, so an ack means the
// commit survives kill -9. A background checkpointer periodically
// persists the published snapshot with relation.WriteCheckpoint and
// truncates the covered WAL prefix; restart is checkpoint-load plus a
// replay of the WAL tail through the ordinary monitor machinery, which
// reconstructs the exact acknowledged state — byte-identical
// violations included.
package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/detect"
	"repro/internal/fault"
	"repro/internal/oplog"
	"repro/internal/relation"
	"repro/internal/retry"
	"repro/internal/wal"
)

// DefaultCheckpointEvery is how many commits may accumulate in the WAL
// before the background checkpointer persists a snapshot.
const DefaultCheckpointEvery = 4096

// checkpointPoll is how often the checkpointer re-examines the
// published state.
const checkpointPoll = 100 * time.Millisecond

// ErrBusy is returned by Submit when the ingest queue stays full past
// Config.SubmitTimeout: shed the load now and retry shortly.
var ErrBusy = errors.New("serve: ingest queue full")

// ErrWAL wraps write-ahead-log failures. A commit acknowledged with an
// ErrWAL is NOT durable (and was not applied when the append itself
// failed); once the log reports itself broken the service is fail-stop
// for writes — reads keep serving the published state — until
// restarted over the repaired directory.
var ErrWAL = errors.New("serve: write-ahead log failure")

// DurableConfig configures the durability layer under one data
// directory: WAL segments in Dir/wal, checkpoint directories and the
// CURRENT pointer at the top level.
type DurableConfig struct {
	// Dir is the data directory (required).
	Dir string
	// SyncEvery is the WAL group-commit window in commits: <= 1 fsyncs
	// every commit before its ack (full durability); larger windows
	// amortize the fsync across bursts, holding acks until the window
	// fills, the queue idles, or SyncInterval elapses.
	SyncEvery int
	// SyncInterval bounds how long a commit ack may be held for group
	// commit when SyncEvery > 1 (default 5ms).
	SyncInterval time.Duration
	// SegmentBytes is the WAL segment rotation threshold (default
	// wal.DefaultSegmentBytes).
	SegmentBytes int64
	// CheckpointEvery is how many commits may accumulate before the
	// checkpointer persists a snapshot and truncates the covered WAL
	// prefix (default DefaultCheckpointEvery; < 0 disables
	// checkpointing entirely, including the final pass at Stop).
	CheckpointEvery int
	// CheckpointInterval, when > 0, also triggers a checkpoint whenever
	// this much time has passed since the last one and commits arrived.
	CheckpointInterval time.Duration
	// Wrap is the fault-injection seam, threaded to wal.Options.Wrap:
	// tests wrap the segment writer to return errors, short writes, or
	// silently drop bytes ("crash at byte N"). Production leaves it nil.
	Wrap func(io.Writer) io.Writer
	// FS is the filesystem the WAL and checkpoints are written through
	// (default fault.OS). The fault-matrix and chaos tests pass a
	// fault.Injector to script ENOSPC, EIO-on-fsync, short writes and
	// latency at exact call counts. Production leaves it nil.
	FS fault.FS
	// Preallocate reserves each WAL segment at SegmentBytes when it is
	// created, so steady-state appends overwrite reserved blocks instead
	// of growing the file (and its metadata) on every frame. Best-effort;
	// see wal.Options.Preallocate.
	Preallocate bool
}

// openDurable loads the checkpoint (if any) and opens the WAL. It
// returns the database the monitor must be built over: the recovered
// checkpoint when one exists, cfg.DB otherwise.
func (s *Service) openDurable(cfg Config) (*relation.Database, relation.CheckpointInfo, bool, error) {
	d := cfg.Durable
	if d.Dir == "" {
		return nil, relation.CheckpointInfo{}, false, errors.New("serve: DurableConfig.Dir is required")
	}
	s.dataDir = d.Dir
	s.fsys = d.FS
	if s.fsys == nil {
		s.fsys = fault.OS
	}
	db := cfg.DB
	var info relation.CheckpointInfo
	have := false
	recovered, ckinfo, err := relation.LoadCheckpoint(d.Dir, s.schemas)
	switch {
	case errors.Is(err, relation.ErrNoCheckpoint):
		// First boot: start from Config.DB as given.
		s.logger.Info("recovery: no checkpoint, starting fresh", "dir", d.Dir)
	case err != nil:
		return nil, info, false, fmt.Errorf("serve: recover: %v", err)
	default:
		db = recovered
		info = ckinfo
		have = true
		s.logger.Info("recovery: checkpoint loaded", "dir", d.Dir, "seq", ckinfo.Seq)
	}
	w, err := wal.Open(walDir(d.Dir), wal.Options{
		SyncEvery:    d.SyncEvery,
		SyncInterval: d.SyncInterval,
		SegmentBytes: d.SegmentBytes,
		Preallocate:  d.Preallocate,
		Wrap:         d.Wrap,
		FS:           d.FS,
	})
	if err != nil {
		return nil, info, false, fmt.Errorf("serve: recover: %v", err)
	}
	s.wal = w
	return db, info, have, nil
}

// replayWAL replays every WAL record past the checkpoint through the
// already-seeded monitor, advancing seed in place. One record is one
// coalesced commit batch in the oplog wire format; op errors replay
// exactly as they originally ran (the prefix before the failing op
// applied, the suffix skipped), so the replayed state matches the
// acknowledged one byte for byte.
func (s *Service) replayWAL(seed *State) error {
	start := time.Now()
	from := seed.Seq
	records := 0
	err := s.wal.Replay(seed.Seq, func(seq uint64, payload []byte) error {
		records++
		ops, err := decodeBatch(payload, s.schemas)
		if err != nil {
			return fmt.Errorf("serve: recover: wal record %d: %v", seq, err)
		}
		var gained, cleared []detect.Violation
		var aerr error
		if s.smonitor != nil {
			gained, cleared, aerr = s.commitSharded(ops)
		} else {
			gained, cleared, aerr = s.monitor.Apply(ops)
		}
		seed.Seq = seq
		seed.Ops += uint64(len(ops))
		seed.Gained += uint64(len(gained))
		seed.Cleared += uint64(len(cleared))
		if aerr != nil {
			seed.Errs++
		}
		return nil
	})
	if err == nil && records > 0 {
		s.logger.Info("recovery: wal tail replayed",
			"fromSeq", from, "toSeq", seed.Seq, "records", records,
			"elapsed", time.Since(start))
	}
	return err
}

// decodeBatch parses one WAL record back into the commit batch it
// logged.
func decodeBatch(payload []byte, schemas map[string]*relation.Schema) ([]detect.DBOp, error) {
	return oplog.NewReader(bytes.NewReader(payload), schemas).Next()
}

// encBufs pools the wire-encode scratch buffers: one commit encode per
// Get/Put, so steady-state ingest stops allocating a fresh buffer (and
// its doublings) per batch. The returned payload aliases the buffer —
// Put only after the WAL append consumed it.
var encBufs = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// encodeBatchInto renders one commit batch as a WAL record payload into
// buf (reset first). The returned slice aliases buf's storage.
func encodeBatchInto(buf *bytes.Buffer, ops []detect.DBOp, schemas map[string]*relation.Schema) ([]byte, error) {
	buf.Reset()
	if err := oplog.Format(buf, [][]detect.DBOp{ops}, schemas); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// walDir is where the log segments live under a data directory.
func walDir(dataDir string) string { return dataDir + "/wal" }

// captureNextTIDs snapshots each relation's next TID — sequencer-only,
// called at commit time so a checkpoint of the published State can
// preserve the allocator positions replay depends on.
func (s *Service) captureNextTIDs() map[string]relation.TID {
	out := make(map[string]relation.TID, len(s.schemas))
	for name := range s.schemas {
		if s.shardedDB != nil {
			out[name] = s.shardedDB.NextTID(name)
		} else {
			out[name] = s.db.MustInstance(name).NextTID()
		}
	}
	return out
}

// finalCheckpointAttempts bounds the retry loop of the final
// checkpoint pass at Stop — a few tries for a condition the operator
// may be fixing right now, not an unbounded stall of shutdown.
const finalCheckpointAttempts = 3

// checkpointer is the background persistence loop: whenever enough
// commits (CheckpointEvery) or time (CheckpointInterval) accumulated
// past the last checkpoint — or none exists yet, or the service is
// stopping with unpersisted commits — it writes the published State as
// a checkpoint and truncates the covered WAL prefix. Checkpoints read
// only immutable published snapshots, so the loop never blocks or
// races the writer. A failed attempt is counted and retried with
// capped exponential backoff (retry.Policy defaults): transient
// conditions like a full disk heal without hammering the device, and a
// recovered condition resumes checkpointing automatically.
func (s *Service) checkpointer(have bool, last uint64) {
	defer close(s.ckptDone)
	ticker := time.NewTicker(checkpointPoll)
	defer ticker.Stop()
	lastAt := time.Now()
	var pol retry.Policy // zero value: DefaultBase/DefaultMax/DefaultFactor
	fails := 0
	var notBefore time.Time
	for {
		final := false
		select {
		case <-ticker.C:
		case <-s.done:
			final = true
		}
		st := s.state.Load()
		due := !have || (st.Seq > last &&
			(final ||
				st.Seq-last >= uint64(s.ckptEvery) ||
				(s.ckptInterval > 0 && time.Since(lastAt) >= s.ckptInterval)))
		if s.ckptEvery < 0 {
			due = false
		}
		if due && !final && time.Now().Before(notBefore) {
			due = false // backing off after a failed attempt
		}
		if due {
			var err error
			if final {
				// Last chance before the WAL closes: retry transient
				// failures (an ENOSPC the operator may be clearing) a few
				// times instead of losing the pass to one bad attempt.
				err = retry.Do(context.Background(), pol, finalCheckpointAttempts,
					retry.Transient, func() error { return s.writeCheckpoint(st) })
			} else {
				err = s.writeCheckpoint(st)
			}
			if err != nil {
				s.ckptErrs.Add(1)
				fails++
				notBefore = time.Now().Add(pol.Delay(fails - 1))
				s.logger.Error("checkpoint failed",
					"seq", st.Seq, "attempt", fails, "err", err,
					"retryAt", notBefore)
			} else {
				have, last, lastAt = true, st.Seq, time.Now()
				fails = 0
				notBefore = time.Time{}
			}
		}
		if final {
			return
		}
	}
}

// writeCheckpoint persists one published State and drops the WAL
// prefix it covers.
func (s *Service) writeCheckpoint(st *State) error {
	dbs := st.Snapshot
	if st.Shards != nil {
		db, err := relation.GatherSnapshots(st.Shards)
		if err != nil {
			return err
		}
		dbs = relation.NewDBSnapshot(db)
	}
	info := relation.CheckpointInfo{Seq: st.Seq, NextTIDs: st.NextTIDs, ShardKeys: s.shardKeys}
	start := time.Now()
	n, err := relation.WriteCheckpointFS(s.fsys, s.dataDir, dbs, info)
	if err != nil {
		return err
	}
	if err := s.wal.TruncateTo(st.Seq); err != nil {
		return err
	}
	s.ckptSeq.Store(st.Seq)
	s.ckptCount.Add(1)
	s.ckptBytes.Add(n)
	s.logger.Info("checkpoint written",
		"seq", st.Seq, "bytes", n, "elapsed", time.Since(start))
	return nil
}

// DurabilityStats summarizes the durability layer for monitoring.
type DurabilityStats struct {
	WAL               wal.Stats `json:"wal"`
	LastCheckpointSeq uint64    `json:"lastCheckpointSeq"`
	Checkpoints       uint64    `json:"checkpoints"`
	CheckpointErrs    uint64    `json:"checkpointErrs"`
	CheckpointBytes   int64     `json:"checkpointBytes"`
}

// Durability reports the WAL and checkpoint state; ok is false on a
// non-durable service.
func (s *Service) Durability() (DurabilityStats, bool) {
	if s.wal == nil {
		return DurabilityStats{}, false
	}
	return DurabilityStats{
		WAL:               s.wal.Stats(),
		LastCheckpointSeq: s.ckptSeq.Load(),
		Checkpoints:       s.ckptCount.Load(),
		CheckpointErrs:    s.ckptErrs.Load(),
		CheckpointBytes:   s.ckptBytes.Load(),
	}, true
}
