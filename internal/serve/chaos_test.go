// Fault-matrix and chaos tests: scripted filesystem faults (via
// fault.Injector under DurableConfig.FS) and scheduling faults (via
// Config.shardHook) against the durable service, checking the
// robustness contract end to end — the server either answers
// byte-identically to a fault-free shadow run or reports itself
// degraded; it never serves a wrong answer and never loses an
// acknowledged commit.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/detect"
	"repro/internal/fault"
	"repro/internal/relation"
)

// detectText is the fault-free oracle: a fresh full detection over db,
// rendered in the same canonical text the service publishes.
func detectText(db *relation.Database, cs []detect.Constraint) string {
	return ViolationsText(detect.New(2).DetectBatch(db, cs))
}

// faultyDrive drives n sequential one-request commits against a
// possibly-faulty service, mirroring each SUCCESSFUL ack onto the
// shadow database and collecting the rejected batches with their
// errors. The shadow therefore tracks exactly the acknowledged
// history.
type faultyDrive struct {
	lastAcked uint64
	acked     int
	rejected  [][]detect.DBOp
	rejErrs   []error
}

func driveFaulty(t *testing.T, svc *Service, shadow *relation.Database, r *rand.Rand, fresh *int, n int) *faultyDrive {
	t.Helper()
	ctx := context.Background()
	d := &faultyDrive{lastAcked: svc.State().Seq}
	for i := 0; i < n; i++ {
		dead := map[string]map[relation.TID]bool{}
		nops := 1 + r.Intn(4)
		ops := make([]detect.DBOp, 0, nops)
		for j := 0; j < nops; j++ {
			ops = append(ops, randomServeOp(r, shadow, fresh, dead))
		}
		res, err := svc.Submit(ctx, ops)
		if err != nil {
			d.rejected = append(d.rejected, ops)
			d.rejErrs = append(d.rejErrs, err)
			continue
		}
		d.lastAcked = res.Seq
		d.acked++
		if aerr := applyShadow(shadow, ops); aerr != nil {
			t.Fatalf("batch %d: shadow: %v", i, aerr)
		}
	}
	return d
}

// checkRecovery reopens the data directory with a CLEAN filesystem and
// asserts zero acked-commit loss: the recovered Seq covers every
// acknowledged commit, and the recovered violation set matches the
// shadow — or, when the WAL held one sync-failed (appended but
// rejected) batch, the shadow plus exactly that batch. Anything else
// is a wrong answer.
func checkRecovery(t *testing.T, dir string, cs []detect.Constraint, base *relation.Database,
	shadow *relation.Database, d *faultyDrive) {
	t.Helper()
	svc2 := mustNew(t, Config{DB: base, Constraints: cs, Durable: &DurableConfig{Dir: dir}})
	st := svc2.State()
	if st.Seq < d.lastAcked {
		t.Fatalf("recovered Seq %d < last acked %d: acknowledged commit lost", st.Seq, d.lastAcked)
	}
	got := ViolationsText(st.Violations)
	if st.Seq == d.lastAcked {
		if want := detectText(shadow, cs); got != want {
			t.Fatalf("recovered state diverges from acked history:\n got: %q\nwant: %q", got, want)
		}
		return
	}
	if st.Seq != d.lastAcked+1 {
		t.Fatalf("recovered Seq %d, acked %d: at most one un-acked batch can survive in the WAL",
			st.Seq, d.lastAcked)
	}
	// One un-acked record survived: legal — a batch whose append hit the
	// file before its fsync failed is rejected but may still be durable.
	// The log goes fail-stop the moment that happens, so it is exactly
	// one of the rejected batches, applied on top of the acked history.
	for _, ops := range d.rejected {
		extra := shadow.Clone()
		if err := applyShadow(extra, ops); err != nil {
			continue
		}
		if got == detectText(extra, cs) {
			return
		}
	}
	t.Fatalf("recovered Seq %d (acked %d) matches neither the acked history nor an un-acked tail:\n got: %q",
		st.Seq, d.lastAcked, got)
}

// TestFaultMatrix enumerates scripted single-fault scenarios over the
// durable write path and checks each one's contracted behavior: which
// commits fail, what health state results, and that restart over the
// repaired (clean) filesystem loses nothing acknowledged.
func TestFaultMatrix(t *testing.T) {
	// Occurrences on the segment file: write #1 and sync #1 are the
	// magic header at segment creation, so write/sync #N+1 is commit N
	// (SyncEvery=1 syncs inline before each ack).
	cases := []struct {
		name         string
		faults       []fault.Fault
		wantRejected int
		wantHealth   Health
		wantFired    int
	}{
		{
			// fsync EIO: fail-stop. The faulted commit is rejected, the
			// service degrades to read-only, every later write fails fast.
			name:         "wal-sync-eio",
			faults:       []fault.Fault{{Op: fault.OpSync, Path: "/wal/", Nth: 4, Err: fault.EIO}},
			wantRejected: 3, // commit 3 (ErrWAL) + commits 4,5 (ErrReadOnly)
			wantHealth:   ReadOnly,
			wantFired:    1,
		},
		{
			// ENOSPC on an append write: the partial frame is repaired
			// away, only that commit is rejected, and the log stays
			// healthy for the commits after it.
			name:         "wal-write-enospc",
			faults:       []fault.Fault{{Op: fault.OpWrite, Path: "/wal/", Nth: 3, Err: fault.ENOSPC}},
			wantRejected: 1,
			wantHealth:   Healthy,
			wantFired:    1,
		},
		{
			// Short write: a torn frame hits the file; repair truncates it
			// and the log continues.
			name:         "wal-write-short",
			faults:       []fault.Fault{{Op: fault.OpWrite, Path: "/wal/", Nth: 3, Short: 5}},
			wantRejected: 1,
			wantHealth:   Healthy,
			wantFired:    1,
		},
		{
			// Pure latency on every fsync: slower, never wrong.
			name:         "wal-sync-latency",
			faults:       []fault.Fault{{Op: fault.OpSync, Path: "/wal/", Delay: 2 * time.Millisecond}},
			wantRejected: 0,
			wantHealth:   Healthy,
			wantFired:    0, // delays are not error events
		},
	}
	cs := serveSigma()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			inj := fault.NewInjector(fault.OS, fault.Scenario{Name: tc.name, Faults: tc.faults})
			db := ordersDB(11, 100)
			shadow := db.Clone()
			svc := mustNew(t, Config{DB: db, Constraints: cs,
				Durable: &DurableConfig{Dir: dir, SyncEvery: 1, FS: inj}})
			r := rand.New(rand.NewSource(42))
			fresh := 0
			d := driveFaulty(t, svc, shadow, r, &fresh, 5)

			if got := len(d.rejected); got != tc.wantRejected {
				t.Fatalf("rejected %d commit(s) (%v), want %d", got, d.rejErrs, tc.wantRejected)
			}
			for _, err := range d.rejErrs {
				if !errors.Is(err, ErrWAL) && !errors.Is(err, ErrReadOnly) {
					t.Fatalf("rejection is neither ErrWAL nor ErrReadOnly: %v", err)
				}
			}
			if h, reason := svc.Health(); h != tc.wantHealth {
				t.Fatalf("health %v (%q), want %v", h, reason, tc.wantHealth)
			}
			if got := inj.FiredCount(); got != tc.wantFired {
				t.Fatalf("injector fired %d fault(s) (%v), want %d", got, inj.Fired(), tc.wantFired)
			}
			// Reads keep serving the acknowledged state, byte-identical to
			// the fault-free shadow — degraded or not.
			if got, want := ViolationsText(svc.Violations()), detectText(shadow, cs); got != want {
				t.Fatalf("published state diverges from acked history:\n got: %q\nwant: %q", got, want)
			}
			mustStop(t, svc)
			checkRecovery(t, dir, cs, ordersDB(11, 100), shadow, d)
		})
	}
}

// TestWALSyncFaultDegradesHealthz drives the WAL-fsync fault through
// the HTTP surface: /healthz flips to a structured degraded report
// (still 200 — the process must not be killed over a sick disk),
// POST /batch turns 503 with the reason, and GET /violations keeps
// serving the last published state.
func TestWALSyncFaultDegradesHealthz(t *testing.T) {
	cs := serveSigma()
	dir := t.TempDir()
	inj := fault.NewInjector(fault.OS, fault.Scenario{
		Name:   "sync-eio",
		Faults: []fault.Fault{{Op: fault.OpSync, Path: "/wal/", Nth: 3, Err: fault.EIO}},
	})
	db := ordersDB(3, 80)
	shadow := db.Clone()
	svc := mustNew(t, Config{DB: db, Constraints: cs,
		Durable: &DurableConfig{Dir: dir, SyncEvery: 1, FS: inj}})
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	post := func(body string) (*http.Response, map[string]any) {
		t.Helper()
		resp, err := http.Post(srv.URL+"/batch", "text/plain", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]any
		json.NewDecoder(resp.Body).Decode(&m)
		return resp, m
	}
	ins := func(i int) string {
		return fmt.Sprintf("insert order \"a9%d\",\"Chaos Title %d\",book,9.99\ncommit\n", i, i)
	}

	// Healthy before the fault.
	if resp, _ := post(ins(1)); resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-fault ingest: status %d", resp.StatusCode)
	}
	applyShadow(shadow, []detect.DBOp{detect.InsertInto("order", relation.Tuple{
		relation.Str("a91"), relation.Str("Chaos Title 1"), relation.Str("book"), relation.Float(9.99)})})

	// The second commit's fsync fails: 503, and the service is read-only.
	resp, _ := post(ins(2))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("faulted ingest: status %d, want 503", resp.StatusCode)
	}
	resp, body := post(ins(3))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-fault ingest: status %d, want 503", resp.StatusCode)
	}
	if body["status"] != "read-only" || body["reason"] == "" {
		t.Fatalf("post-fault ingest body %v, want structured read-only reason", body)
	}

	hz, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d, want 200 (degraded is not dead)", hz.StatusCode)
	}
	var h struct {
		Status   string `json:"status"`
		Writable bool   `json:"writable"`
		Reason   string `json:"reason"`
	}
	json.NewDecoder(hz.Body).Decode(&h)
	if h.Status != "read-only" || h.Writable || !strings.Contains(h.Reason, "sync") {
		t.Fatalf("healthz %+v, want read-only with a sync reason", h)
	}

	// Reads still serve the acknowledged state.
	vi, err := http.Get(srv.URL + "/violations?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer vi.Body.Close()
	if vi.StatusCode != http.StatusOK {
		t.Fatalf("violations status %d after degradation", vi.StatusCode)
	}
	if got, want := ViolationsText(svc.Violations()), detectText(shadow, cs); got != want {
		t.Fatalf("degraded reads diverge:\n got: %q\nwant: %q", got, want)
	}
}

// TestCheckpointRetryBackoff scripts transient ENOSPC on the
// checkpoint install: the checkpointer counts the failures, backs off,
// and — once the condition clears — recovers on its own, with ingest
// never disturbed.
func TestCheckpointRetryBackoff(t *testing.T) {
	cs := serveSigma()
	dir := t.TempDir()
	inj := fault.NewInjector(fault.OS, fault.Scenario{
		Name: "ckpt-enospc",
		Faults: []fault.Fault{
			{Op: fault.OpRename, Path: "checkpoint-", Nth: 1, Count: 2, Err: fault.ENOSPC},
		},
	})
	db := ordersDB(17, 80)
	shadow := db.Clone()
	svc := mustNew(t, Config{DB: db, Constraints: cs,
		Durable: &DurableConfig{Dir: dir, SyncEvery: 1, CheckpointEvery: 2, FS: inj}})
	r := rand.New(rand.NewSource(5))
	fresh := 0
	d := driveFaulty(t, svc, shadow, r, &fresh, 6)
	if len(d.rejected) != 0 {
		t.Fatalf("checkpoint faults must not reject commits: %v", d.rejErrs)
	}

	// The first two install attempts fail; backoff, then success.
	deadline := time.Now().Add(15 * time.Second)
	for {
		ds, ok := svc.Durability()
		if !ok {
			t.Fatal("no durability stats")
		}
		if ds.Checkpoints >= 1 {
			if ds.CheckpointErrs < 2 {
				t.Fatalf("CheckpointErrs %d, want >= 2 failed attempts before recovery", ds.CheckpointErrs)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("checkpointer never recovered: %+v (fired %v)", ds, inj.Fired())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := inj.FiredCount(); got != 2 {
		t.Fatalf("injector fired %d fault(s), want 2: %v", got, inj.Fired())
	}
	if h, reason := svc.Health(); h != Healthy {
		t.Fatalf("transient checkpoint failure degraded the service: %v (%q)", h, reason)
	}
	if got, want := ViolationsText(svc.Violations()), detectText(shadow, cs); got != want {
		t.Fatalf("state diverged during checkpoint retries:\n got: %q\nwant: %q", got, want)
	}
}

// TestShardWriterPanicIsolation injects a panic into one shard writer
// mid-commit: the panic is recovered into a per-shard error, the
// sequencer resynchronizes against whatever prefix applied, the
// service stays healthy and live, and the published state remains
// self-consistent (violations == a fresh detection over the published
// shard snapshots).
func TestShardWriterPanicIsolation(t *testing.T) {
	cs := shardableServeSigma()
	var panicked atomic.Bool
	db := ordersDB(9, 120)
	gendb := db.Clone()
	svc := mustNew(t, Config{DB: db, Constraints: cs, Shards: 2,
		shardHook: func(shard int, ops []relation.ShardedOp) {
			if panicked.CompareAndSwap(false, true) {
				panic("injected shard fault")
			}
		}})
	r := rand.New(rand.NewSource(77))
	fresh := 0

	selfConsistent := func(when string) {
		t.Helper()
		st := svc.State()
		merged, err := relation.GatherSnapshots(st.Shards)
		if err != nil {
			t.Fatalf("%s: gather: %v", when, err)
		}
		if got, want := ViolationsText(st.Violations), detectText(merged, cs); got != want {
			t.Fatalf("%s: published violations inconsistent with published snapshots:\n got: %q\nwant: %q",
				when, got, want)
		}
	}

	dead := map[string]map[relation.TID]bool{}
	ops := []detect.DBOp{randomServeOp(r, gendb, &fresh, dead), randomServeOp(r, gendb, &fresh, dead)}
	_, err := svc.Submit(context.Background(), ops)
	if err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("panicked commit acked with err %v, want a shard panic error", err)
	}
	if got := svc.ShardPanics(); got != 1 {
		t.Fatalf("ShardPanics %d, want 1", got)
	}
	if h, reason := svc.Health(); h != Healthy {
		t.Fatalf("a recovered shard panic degraded the service: %v (%q)", h, reason)
	}
	selfConsistent("after panic")

	// Still live: later commits apply cleanly.
	for i := 0; i < 5; i++ {
		dead := map[string]map[relation.TID]bool{}
		ops := []detect.DBOp{randomServeOp(r, gendb, &fresh, dead)}
		if res, err := svc.Submit(context.Background(), ops); err != nil {
			// The generator tracks its own database, which the panicked
			// partial apply may have diverged from — a validation rejection
			// is fine, a health error is not.
			var oe *OpError
			if !errors.As(err, &oe) {
				t.Fatalf("post-panic commit %d: %v (res %+v)", i, err, res)
			}
		}
	}
	selfConsistent("after recovery commits")
}

// TestShardWriterStall stalls one shard writer with injected latency:
// the commit barrier absorbs the skew and the result is byte-identical
// to the fault-free shadow.
func TestShardWriterStall(t *testing.T) {
	cs := shardableServeSigma()
	var stalls atomic.Int64
	db := ordersDB(13, 120)
	shadow := db.Clone()
	svc := mustNew(t, Config{DB: db, Constraints: cs, Shards: 2,
		shardHook: func(shard int, ops []relation.ShardedOp) {
			if shard == 0 && stalls.Add(1) <= 3 {
				time.Sleep(2 * time.Millisecond)
			}
		}})
	r := rand.New(rand.NewSource(31))
	fresh := 0
	d := driveFaulty(t, svc, shadow, r, &fresh, 10)
	if len(d.rejected) != 0 {
		t.Fatalf("stalls must not reject commits: %v", d.rejErrs)
	}
	if got, want := ViolationsText(svc.Violations()), detectText(shadow, cs); got != want {
		t.Fatalf("stalled run diverges from shadow:\n got: %q\nwant: %q", got, want)
	}
}

// chaosFaultKinds builds one randomized fault schedule. Occurrence
// numbers stay above the service's boot-time filesystem traffic so a
// schedule never fails New itself — the matrix covers boot faults
// deterministically.
func chaosScenario(r *rand.Rand) fault.Scenario {
	var fs []fault.Fault
	n := 2 + r.Intn(3)
	for i := 0; i < n; i++ {
		switch r.Intn(5) {
		case 0:
			fs = append(fs, fault.Fault{Op: fault.OpSync, Path: "/wal/", Nth: 2 + r.Intn(30), Err: fault.EIO})
		case 1:
			fs = append(fs, fault.Fault{Op: fault.OpWrite, Path: "/wal/", Nth: 3 + r.Intn(30), Err: fault.ENOSPC})
		case 2:
			fs = append(fs, fault.Fault{Op: fault.OpWrite, Path: "/wal/", Nth: 3 + r.Intn(30), Short: 1 + r.Intn(8)})
		case 3:
			fs = append(fs, fault.Fault{Op: fault.OpSync, Path: "/wal/", Nth: 1 + r.Intn(20),
				Count: 1 + r.Intn(5), Delay: time.Millisecond})
		case 4:
			fs = append(fs, fault.Fault{Op: fault.OpRename, Path: "checkpoint-", Nth: 1 + r.Intn(3), Err: fault.ENOSPC})
		}
	}
	return fault.Scenario{Name: "chaos", Faults: fs}
}

// TestChaosHarness is the headline robustness test: randomized fault
// schedules over a deterministic op stream, against a durable
// SyncEvery=1 service. Invariants, per seed:
//
//   - every acknowledged commit is applied and every rejected one is
//     not, so the published violation set stays byte-identical to a
//     fault-free shadow run of the acked history — a fault may degrade
//     the service, it may never produce a wrong answer;
//   - rejections carry structured errors (ErrWAL / ErrReadOnly), and
//     once read-only the service stays read-only;
//   - restart over the repaired filesystem recovers every acknowledged
//     commit (an un-acked sync-failed tail batch may legally appear).
func TestChaosHarness(t *testing.T) {
	cs := serveSigma()
	totalFired := 0
	for seed := int64(1); seed <= 4; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			sc := chaosScenario(r)
			inj := fault.NewInjector(fault.OS, sc)
			dir := t.TempDir()
			db := ordersDB(seed, 80)
			shadow := db.Clone()
			svc := mustNew(t, Config{DB: db, Constraints: cs,
				Durable: &DurableConfig{Dir: dir, SyncEvery: 1, CheckpointEvery: 10, FS: inj}})

			fresh := 0
			d := driveFaulty(t, svc, shadow, r, &fresh, 50)
			t.Logf("seed %d: %d acked, %d rejected, faults fired: %v",
				seed, d.acked, len(d.rejected), inj.Fired())
			totalFired += inj.FiredCount()

			sawReadOnly := false
			for _, err := range d.rejErrs {
				switch {
				case errors.Is(err, ErrReadOnly):
					sawReadOnly = true
				case errors.Is(err, ErrWAL):
					if sawReadOnly {
						t.Fatalf("ErrWAL after ErrReadOnly: a degraded service accepted a write: %v", err)
					}
				default:
					t.Fatalf("unstructured rejection: %v", err)
				}
			}
			if h, _ := svc.Health(); sawReadOnly && h == Healthy {
				t.Fatal("Submit reported read-only but Health() says healthy")
			}

			// Never a wrong answer: the published set matches the fault-free
			// shadow of the acked history exactly, degraded or not.
			if got, want := ViolationsText(svc.Violations()), detectText(shadow, cs); got != want {
				t.Fatalf("published state diverges from acked history:\n got: %q\nwant: %q", got, want)
			}
			mustStop(t, svc)
			checkRecovery(t, dir, cs, ordersDB(seed, 80), shadow, d)
		})
	}
	if totalFired == 0 {
		t.Fatal("no chaos fault ever fired: the schedules are dead and the harness tests nothing")
	}
}

// TestChaosSharded turns the scheduling-fault dial: random stalls and
// occasional panics inside the shard writers while commits stream in.
// The shadow oracle does not apply here (a panicked commit legally
// applies only a prefix), so the invariant is self-consistency: after
// every few commits the published violation set must equal a fresh
// detection over the published shard snapshots, and the service must
// stay healthy and live throughout.
func TestChaosSharded(t *testing.T) {
	cs := shardableServeSigma()
	var mu sync.Mutex
	hookRand := rand.New(rand.NewSource(303))
	var panics atomic.Int64
	db := ordersDB(21, 120)
	gendb := db.Clone()
	svc := mustNew(t, Config{DB: db, Constraints: cs, Shards: 2,
		shardHook: func(shard int, ops []relation.ShardedOp) {
			mu.Lock()
			roll := hookRand.Intn(20)
			mu.Unlock()
			switch {
			case roll == 0:
				panics.Add(1)
				panic("chaos shard panic")
			case roll < 4:
				time.Sleep(time.Duration(roll) * 100 * time.Microsecond)
			}
		}})
	r := rand.New(rand.NewSource(404))
	fresh := 0
	ctx := context.Background()
	lastSeq := svc.State().Seq
	for i := 0; i < 40; i++ {
		dead := map[string]map[relation.TID]bool{}
		nops := 1 + r.Intn(3)
		ops := make([]detect.DBOp, 0, nops)
		for j := 0; j < nops; j++ {
			ops = append(ops, randomServeOp(r, gendb, &fresh, dead))
		}
		_, err := svc.Submit(ctx, ops)
		var oe *OpError
		if err != nil && !errors.As(err, &oe) && !strings.Contains(err.Error(), "panic") {
			t.Fatalf("commit %d: unexpected error class: %v", i, err)
		}
		if err == nil {
			applyShadow(gendb, ops)
		}
		st := svc.State()
		if st.Seq < lastSeq {
			t.Fatalf("published Seq went backwards: %d -> %d", lastSeq, st.Seq)
		}
		lastSeq = st.Seq
		if i%10 == 9 {
			merged, err := relation.GatherSnapshots(st.Shards)
			if err != nil {
				t.Fatalf("commit %d: gather: %v", i, err)
			}
			if got, want := ViolationsText(st.Violations), detectText(merged, cs); got != want {
				t.Fatalf("commit %d: published state inconsistent with its own snapshots:\n got: %q\nwant: %q",
					i, got, want)
			}
		}
	}
	if h, reason := svc.Health(); h != Healthy {
		t.Fatalf("scheduling chaos degraded the service: %v (%q)", h, reason)
	}
	if got := svc.ShardPanics(); got != uint64(panics.Load()) {
		t.Fatalf("ShardPanics %d, injected %d", got, panics.Load())
	}
	t.Logf("sharded chaos: %d panics recovered", panics.Load())
}

// TestHealthTransitionsOneWay pins the state machine: demotions only
// move forward, the first reason at each severity wins, and healthErr
// renders each state as the right Submit error.
func TestHealthTransitionsOneWay(t *testing.T) {
	svc := mustNew(t, Config{DB: ordersDB(1, 40), Constraints: serveSigma()})
	if h, _ := svc.Health(); h != Healthy {
		t.Fatalf("fresh service health %v", h)
	}
	if err := svc.healthErr(); err != nil {
		t.Fatalf("healthy healthErr: %v", err)
	}
	svc.degrade(ReadOnly, "first")
	svc.degrade(ReadOnly, "second")
	if h, reason := svc.Health(); h != ReadOnly || reason != "first" {
		t.Fatalf("got %v (%q), want ReadOnly with the first reason", h, reason)
	}
	if err := svc.healthErr(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("read-only healthErr: %v", err)
	}
	svc.degrade(Healthy, "nope")
	if h, _ := svc.Health(); h != ReadOnly {
		t.Fatal("service silently healed")
	}
	svc.degrade(Broken, "loop gone")
	svc.degrade(ReadOnly, "late demotion")
	if h, reason := svc.Health(); h != Broken || reason != "loop gone" {
		t.Fatalf("got %v (%q), want Broken", h, reason)
	}
	if err := svc.healthErr(); !errors.Is(err, ErrStopped) {
		t.Fatalf("broken healthErr: %v", err)
	}
	if _, err := svc.Submit(context.Background(), nil); !errors.Is(err, ErrStopped) {
		t.Fatalf("Submit on a broken service: %v", err)
	}
}

// BenchmarkDegradedReads measures read throughput after a WAL fsync
// fault has flipped the service read-only, against the same service
// while healthy (E28). Reads serve the immutable snapshot published by
// the last good commit, so degrading the write path must cost the
// read path nothing — "read-only" means writes are refused, not that
// reads got slower.
func BenchmarkDegradedReads(b *testing.B) {
	cs := serveSigma()
	ctx := context.Background()
	run := func(b *testing.B, degraded bool) {
		var faults []fault.Fault
		if degraded {
			// Write/sync #1 on the segment is the magic header, so sync #4
			// fails commit 3 and the service degrades read-only.
			faults = []fault.Fault{{Op: fault.OpSync, Path: "/wal/", Nth: 4, Err: fault.EIO}}
		}
		inj := fault.NewInjector(fault.OS, fault.Scenario{Name: "bench-degraded", Faults: faults})
		svc, err := New(Config{DB: ordersDB(7, 2000), Constraints: cs,
			Durable: &DurableConfig{Dir: b.TempDir(), SyncEvery: 1, CheckpointEvery: -1, FS: inj}})
		if err != nil {
			b.Fatal(err)
		}
		defer svc.Stop(ctx)
		for i := 0; i < 5; i++ {
			_, err := svc.Submit(ctx, []detect.DBOp{detect.InsertInto("order", relation.Tuple{
				relation.Str(fmt.Sprintf("bench-%d", i)), relation.Str("Bench Title"),
				relation.Str("book"), relation.Float(9.99)})})
			if err != nil && !degraded {
				b.Fatal(err)
			}
		}
		if h, _ := svc.Health(); degraded != (h == ReadOnly) {
			b.Fatalf("health %v, degraded=%v", h, degraded)
		}
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				st := svc.State()
				if len(st.Violations) == 0 {
					b.Fatal("published snapshot has no violations to read")
				}
			}
		})
	}
	b.Run("healthy", func(b *testing.B) { run(b, false) })
	b.Run("read-only", func(b *testing.B) { run(b, true) })
}
