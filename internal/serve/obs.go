// Observability wiring: the serve-side half of internal/obs. One
// serveMetrics value holds every pipeline metric; scrape-time gauges
// (GaugeFunc) read the same racy informational sources /stats already
// exposes, so the hot path pays only for what it observes — a handful
// of time.Now stamps and atomic adds per commit, nothing per op. The
// quality-analytics tracker is fed from the sequencer (enqueueCommit),
// which is the single place every commit's gained/cleared diff passes
// through; alerts ride the commit's Delta to subscribers.
package serve

import (
	"log/slog"
	"strconv"
	"time"

	"repro/internal/detect"
	"repro/internal/obs"
)

// ObsConfig turns on the observability layer: pipeline metrics in a
// Registry (served at /metrics) and per-constraint violation trend
// analytics with change-point alerts (served at /trends, fanned out as
// SSE alert events).
type ObsConfig struct {
	// Registry receives every metric; nil gets a fresh one (read it back
	// with Service.Metrics).
	Registry *obs.Registry
	// Trends tunes the per-constraint analytics; the zero value gets
	// obs.TrackerConfig defaults.
	Trends obs.TrackerConfig
}

// Pipeline stage labels of the dq_stage_seconds histogram, in commit
// order. On the flat (unsharded) path the apply and diff are one
// monitor call, timed under "detect"; "wal_sync" covers explicit sync
// calls (group-commit flush), while a synced-inline append accounts its
// fsync under "wal_append".
const (
	stageQueueWait = "queue_wait"
	stageValidate  = "validate"
	stageWALAppend = "wal_append"
	stageWALSync   = "wal_sync"
	stageRoute     = "route"
	stageScatter   = "scatter"
	stageDetect    = "detect"
	stageMerge     = "merge"
	stagePublish   = "publish"
)

// serveMetrics is every hot-path metric the service maintains. A nil
// *serveMetrics (observability off) costs one pointer check per site.
type serveMetrics struct {
	reg *obs.Registry

	commits *obs.Counter
	ops     *obs.Counter
	gained  *obs.Counter
	cleared *obs.Counter
	opErrs  *obs.Counter
	rejects *obs.Counter
	alerts  *obs.Counter

	batchOps *obs.Histogram
	stages   map[string]*obs.Histogram
}

func newServeMetrics(reg *obs.Registry) *serveMetrics {
	m := &serveMetrics{
		reg:     reg,
		commits: reg.Counter("dq_commits_total", "Commit batches applied.", nil),
		ops:     reg.Counter("dq_ops_total", "Mutation ops accepted into commits.", nil),
		gained:  reg.Counter("dq_violations_gained_total", "Violations gained across commits.", nil),
		cleared: reg.Counter("dq_violations_cleared_total", "Violations cleared across commits.", nil),
		opErrs:  reg.Counter("dq_commit_op_errors_total", "Commits that ended in an op error.", nil),
		rejects: reg.Counter("dq_batch_rejects_total", "Coalesced batches rejected before apply (validation, WAL, health).", nil),
		alerts:  reg.Counter("dq_alerts_total", "Change-point alerts fired.", nil),
		batchOps: reg.Histogram("dq_batch_ops", "Ops per coalesced commit batch.",
			nil, obs.DefSizeBuckets),
		stages: make(map[string]*obs.Histogram),
	}
	for _, stage := range []string{
		stageQueueWait, stageValidate, stageWALAppend, stageWALSync,
		stageRoute, stageScatter, stageDetect, stageMerge, stagePublish,
	} {
		m.stages[stage] = reg.Histogram("dq_stage_seconds",
			"Per-commit pipeline stage latency in seconds.",
			obs.Labels{"stage": stage}, nil)
	}
	return m
}

// observeStage records one stage timing; nil-receiver safe so call
// sites stay unconditional.
func (m *serveMetrics) observeStage(stage string, start time.Time) {
	if m == nil {
		return
	}
	m.stages[stage].ObserveSince(start)
}

// now stamps a stage start; the zero time when metrics are off, which
// the nil-receiver observeStage then never reads — together they keep
// the disabled hot path free of clock reads.
func (m *serveMetrics) now() time.Time {
	if m == nil {
		return time.Time{}
	}
	return time.Now()
}

// setupObs builds the metrics, the trend tracker and the scrape-time
// gauges. Called from New after the seed State exists (the tracker's
// running counts start from the seeded violation set).
func (s *Service) setupObs(cfg *ObsConfig, queueCap int, seed *State) {
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s.met = newServeMetrics(reg)
	s.started = time.Now()

	// Constraint → trend key, in Σ order (the same class+rule label
	// /stats reports per constraint). Duplicate deps collapse, matching
	// countsFor.
	s.depKey = make(map[any]string, len(s.cs))
	s.tracker = obs.NewTracker(cfg.Trends)
	for _, c := range s.cs {
		if _, ok := s.depKey[c.Dep()]; ok {
			continue
		}
		key := c.Class().String() + " " + ruleText(c.Dep())
		s.depKey[c.Dep()] = key
		s.tracker.Track(key)
	}
	s.trendCounts = make(map[string]int, len(s.depKey))
	for _, v := range seed.Violations {
		if key, ok := s.depKey[detect.DepOf(v)]; ok {
			s.trendCounts[key]++
		}
	}

	reg.GaugeFunc("dq_uptime_seconds", "Seconds since the service started.", nil,
		func() float64 { return time.Since(s.started).Seconds() })
	reg.GaugeFunc("dq_seq", "Latest published commit sequence.", nil,
		func() float64 { return float64(s.state.Load().Seq) })
	reg.GaugeFunc("dq_violations", "Published outstanding violations.", nil,
		func() float64 { return float64(len(s.state.Load().Violations)) })
	reg.GaugeFunc("dq_ingest_queue_depth", "Submit requests waiting in the ingest queue.", nil,
		func() float64 { return float64(len(s.queue)) })
	reg.GaugeFunc("dq_ingest_queue_cap", "Ingest queue capacity.", nil,
		func() float64 { return float64(queueCap) })
	reg.GaugeFunc("dq_subscribers", "Live delta subscribers.", nil,
		func() float64 { return float64(s.NumSubscribers()) })
	reg.GaugeFunc("dq_health_state", "Write-availability state: 0 healthy, 1 read-only, 2 broken.", nil,
		func() float64 { h, _ := s.Health(); return float64(h) })
	reg.GaugeFunc("dq_shard_panics", "Shard-writer panics recovered since start.", nil,
		func() float64 { return float64(s.shardPanics.Load()) })
	for i := range s.shardPending {
		shard := i
		reg.GaugeFunc("dq_shard_queue_depth", "Ops in flight to one shard writer.",
			obs.Labels{"shard": strconv.Itoa(shard)},
			func() float64 { return float64(s.shardPending[shard].Load()) })
	}
	if s.wal != nil {
		reg.GaugeFunc("dq_wal_bytes", "Valid bytes across live WAL segments.", nil,
			func() float64 { return float64(s.wal.Stats().Bytes) })
		reg.GaugeFunc("dq_wal_segments", "Live WAL segment files.", nil,
			func() float64 { return float64(s.wal.Stats().Segments) })
		reg.GaugeFunc("dq_wal_appended_bytes", "WAL frame bytes appended since open (survives truncation).", nil,
			func() float64 { return float64(s.wal.Stats().AppendedBytes) })
		reg.GaugeFunc("dq_wal_syncs", "WAL fsyncs since open.", nil,
			func() float64 { return float64(s.wal.Stats().Syncs) })
		reg.GaugeFunc("dq_checkpoint_seq", "Sequence of the last installed checkpoint.", nil,
			func() float64 { return float64(s.ckptSeq.Load()) })
		reg.GaugeFunc("dq_checkpoint_lag_seqs", "Commits past the last checkpoint (WAL replay cost on restart).", nil,
			func() float64 { return float64(s.state.Load().Seq - s.ckptSeq.Load()) })
		reg.GaugeFunc("dq_checkpoints", "Checkpoints installed since start.", nil,
			func() float64 { return float64(s.ckptCount.Load()) })
		reg.GaugeFunc("dq_checkpoint_errors", "Failed checkpoint attempts since start.", nil,
			func() float64 { return float64(s.ckptErrs.Load()) })
		reg.GaugeFunc("dq_checkpoint_bytes", "Data bytes written by checkpoints since start.", nil,
			func() float64 { return float64(s.ckptBytes.Load()) })
	}
}

// observeTrends folds one commit's diff into the per-constraint running
// counts and feeds the tracker. Sequencer-only (trendCounts is
// unsynchronized); returns the alerts fired at this commit.
func (s *Service) observeTrends(seq uint64, gained, cleared []detect.Violation) []obs.Alert {
	if s.tracker == nil {
		return nil
	}
	stats := make(map[string]obs.Stat, len(s.depKey))
	for _, v := range gained {
		key, ok := s.depKey[detect.DepOf(v)]
		if !ok {
			continue
		}
		st := stats[key]
		st.Gained++
		stats[key] = st
	}
	for _, v := range cleared {
		key, ok := s.depKey[detect.DepOf(v)]
		if !ok {
			continue
		}
		st := stats[key]
		st.Cleared++
		stats[key] = st
	}
	for key, st := range stats {
		s.trendCounts[key] += st.Gained - st.Cleared
		st.Count = s.trendCounts[key]
		stats[key] = st
	}
	alerts := s.tracker.Observe(seq, stats)
	if len(alerts) > 0 {
		s.met.alerts.Add(uint64(len(alerts)))
		for _, a := range alerts {
			s.logger.Warn("change-point alert",
				"seq", a.Seq, "constraint", a.Constraint,
				"changeSeq", a.ChangePoint.Seq, "confidence", a.ChangePoint.Confidence,
				"before", a.ChangePoint.Before, "after", a.ChangePoint.After)
		}
	}
	return alerts
}

// Metrics returns the service's registry; nil when observability is
// off.
func (s *Service) Metrics() *obs.Registry {
	if s.met == nil {
		return nil
	}
	return s.met.reg
}

// Trends snapshots the per-constraint violation time series, detected
// change points and sliding-window rates; nil when observability is
// off. maxPoints caps the points per constraint (0 = all held).
func (s *Service) Trends(maxPoints int) []obs.Trend {
	if s.tracker == nil {
		return nil
	}
	return s.tracker.Trends(maxPoints)
}

// Uptime reports time since New; zero when observability is off.
func (s *Service) Uptime() time.Duration {
	if s.started.IsZero() {
		return 0
	}
	return time.Since(s.started)
}

// discardLogger is the nil-Config.Logger default: every slog call site
// stays unconditional.
func discardLogger() *slog.Logger { return slog.New(slog.DiscardHandler) }
