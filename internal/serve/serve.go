// Package serve turns the batch-oriented detection stack into a
// long-lived, goroutine-safe violation-monitoring service: one
// detect.DBMonitor owned by a single-writer ingest loop, fed through a
// bounded queue that coalesces submitted mutation batches into commit
// batches (amortizing snapshot catch-up), with every read — the full
// violation list, per-constraint and per-relation counts, satisfaction
// probes — served off an immutable published State without ever
// blocking the writer, and gained/cleared deltas fanned out to
// subscribers over buffered channels under a slow-consumer drop policy.
//
// The concurrency design in one paragraph: the DBMonitor (and the
// relation.Instances under it) is single-writer, so exactly one
// goroutine — the ingest loop — ever calls Apply or touches the
// database. After every commit the loop publishes a fresh *State
// through an atomic pointer: the post-commit DBSnapshot (immutable by
// construction: COW tuple arrays, append-only dictionaries) plus the
// full violation list in canonical order (rebuilt by merging the
// commit's sorted gained/cleared diff into the previous list — O(|V|)
// copying, no re-sort, never mutated after publication). Readers load
// the pointer and work on a consistent frozen view while the writer
// races ahead; subscribers get the same deltas the merge consumed, or
// — if they fall behind their channel buffer — a closed channel with
// Lost() set, the signal to resync from Violations().
package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/detect"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/wal"
)

// Defaults for Config's zero fields.
const (
	DefaultQueueCap    = 256
	DefaultMaxBatchOps = 4096
	DefaultSubBuf      = 64
)

// ErrStopped is returned by Submit once Stop has been called (or for
// requests stranded in the queue when the loop exits).
var ErrStopped = errors.New("serve: service stopped")

// Config parameterizes New.
type Config struct {
	// Engine runs detection; nil gets the default configuration. A
	// Legacy engine is upgraded to the columnar path (the monitor and
	// the reader hand-off require frozen snapshots).
	Engine *detect.Engine
	// DB is the watched database. The service owns its mutation from
	// New on: callers must not write to it directly anymore.
	DB *relation.Database
	// Constraints is the monitored mixed batch Σ.
	Constraints []detect.Constraint
	// QueueCap bounds the ingest queue in pending Submit requests
	// (default DefaultQueueCap). A full queue applies backpressure:
	// Submit blocks until the loop drains or its context expires.
	QueueCap int
	// MaxBatchOps caps how many ops the loop coalesces into one commit
	// batch (default DefaultMaxBatchOps). Larger batches amortize
	// snapshot catch-up and index splicing; smaller ones bound
	// per-commit latency and delta size.
	MaxBatchOps int
	// SubBuf is the per-subscriber delta channel buffer (default
	// DefaultSubBuf). A subscriber that falls this many commits behind
	// is dropped and must resync.
	SubBuf int
	// Shards > 1 runs the service sharded: DB is hash-partitioned into
	// that many shards at New, each commit is routed once by the
	// sequencer and applied by per-shard writer goroutines, and one
	// merged State is published per commit — byte-identical to the
	// single-partition service. 0 or 1 keeps the single-writer path.
	Shards int
	// ShardKeys sets the partition key (attribute positions) per
	// relation when Shards > 1. Nil derives keys from the constraint
	// batch (detect.DeriveShardKeys); New fails when no key keeps every
	// CFD/eCFD shard-local.
	ShardKeys map[string][]int
	// SubmitTimeout bounds how long Submit waits for queue space before
	// shedding the load with ErrBusy (front ends turn it into 503 +
	// Retry-After). 0 waits indefinitely — until the context expires or
	// the service stops.
	SubmitTimeout time.Duration
	// Durable, when non-nil, turns on the durability layer: every
	// commit is appended to a write-ahead log and fsynced before it is
	// acknowledged or published, and a background checkpointer persists
	// snapshots so a restart replays only the WAL tail. When
	// Durable.Dir holds a previous run's state, New recovers from it —
	// Config.DB then only supplies the schemas (its tuples are
	// ignored).
	Durable *DurableConfig
	// Obs, when non-nil, turns on the observability layer: pipeline
	// metrics collected in a Registry (Service.Metrics) and
	// per-constraint violation trend analytics with change-point alerts
	// (Service.Trends; alerts ride each commit's Delta).
	Obs *ObsConfig
	// Logger receives structured events — recovery, checkpoints, health
	// degradation, change-point alerts. Nil discards.
	Logger *slog.Logger

	// shardHook, when non-nil, runs in each shard writer just before it
	// applies a sub-batch — the scheduling-fault seam: chaos tests stall
	// one writer (latency) or panic in it (crash isolation). Unexported:
	// only package-internal tests can set it.
	shardHook func(shard int, ops []relation.ShardedOp)
}

// State is one published, immutable view of the service: everything a
// read endpoint needs, consistent as of commit Seq. Readers must treat
// the Violations slice and the Snapshot as read-only; the writer never
// mutates a published State.
type State struct {
	// Seq counts commits: 0 is the seeded initial detection, each
	// applied commit batch increments it.
	Seq uint64
	// Snapshot is the post-commit freeze of the whole database. Nil on
	// a sharded service, which publishes Shards instead.
	Snapshot *relation.DBSnapshot
	// Shards holds the per-shard post-commit freezes when the service
	// runs sharded; nil in single-partition mode. Cross-partition
	// readers merge them with relation.GatherSnapshots.
	Shards []*relation.DBSnapshot
	// ShardViolations counts the published violations per shard (by the
	// shard holding each violation's primary tuple at Seq); nil in
	// single-partition mode.
	ShardViolations []int
	// Violations is the full violation set in canonical mixed order —
	// byte-identical to Engine.DetectBatch of the database at Seq.
	Violations []detect.Violation
	// NextTIDs snapshots each relation's next TID as of Seq — what a
	// checkpoint must preserve so post-recovery inserts allocate the
	// same TIDs the uninterrupted run would have. Durable services
	// only; nil otherwise.
	NextTIDs map[string]relation.TID

	// Cumulative counters since New.
	Ops     uint64 // mutation ops accepted into commits (a commit that hit an op error — see Errs — applied only the prefix before the failing op)
	Gained  uint64 // violations gained
	Cleared uint64 // violations cleared
	Errs    uint64 // commits that ended in an op error

	// FullSyncs counts the monitor's changelog-fallback resyncs.
	FullSyncs int
}

// Result acknowledges one Submit: the commit that carried the
// request's ops (possibly coalesced with other requests), its diff
// sizes, and the first op error of that commit, if any.
type Result struct {
	Seq     uint64
	Gained  int
	Cleared int
	Err     error
}

// Delta is one commit's violation diff, as fanned out to subscribers.
// The slices are shared with the published State's history: read-only.
type Delta struct {
	Seq     uint64
	Gained  []detect.Violation
	Cleared []detect.Violation
	// Alerts are the change-point alerts the quality analytics fired at
	// this commit; nil on most commits, and always nil with
	// observability off.
	Alerts []obs.Alert
}

// request is one Submit in flight to the ingest loop.
type request struct {
	ops  []detect.DBOp
	done chan Result // buffered (1): the loop never blocks on an ack
	at   time.Time   // enqueue time; zero with observability off
}

// shardWork is one commit's sub-batch for one shard writer.
type shardWork struct {
	ops []relation.ShardedOp
	wg  *sync.WaitGroup
	err *error // the writer's error slot; the sequencer reads it after wg.Wait
}

// pendingCommit is a committed-but-unsynced batch: applied to the
// monitor and the writer-local tip, but its WAL frame is not yet on
// stable storage, so it is neither published nor acknowledged. The
// group-commit flush releases held commits in order.
type pendingCommit struct {
	st    *State
	delta Delta
	reqs  []request
	res   Result
}

// Service is the running monitor; construct with New, stop with Stop.
type Service struct {
	engine  *detect.Engine
	monitor *detect.DBMonitor // single-partition mode; nil when sharded
	cs      []detect.Constraint
	sigma   map[any]int
	schemas map[string]*relation.Schema
	maxOps  int
	subBuf  int

	// Sharded mode (Config.Shards > 1): the sequencer (the run loop)
	// routes each commit, the shard writers apply the sub-batches behind
	// a WaitGroup barrier, and the sequencer syncs and publishes one
	// merged State. shardPending are racy per-shard in-flight op gauges
	// for /stats.
	smonitor     *detect.ShardedDBMonitor
	shardedDB    *relation.ShardedDB
	shardCh      []chan shardWork
	shardPending []atomic.Int64
	// Per-shard violation attribution, maintained incrementally from
	// each commit's gained/cleared diff (O(|Δ|), not O(V)) and rebuilt
	// from scratch only when a commit moved tuples across shards.
	// Sequencer-only: both read the live tuple directory.
	shardViol []int
	violShard map[detect.Violation]int

	queue chan request
	state atomic.Pointer[State]

	// Durability (Config.Durable != nil). tip is the writer-local
	// latest committed State — ahead of the published one while commits
	// sit in the group-commit window — and pending holds those
	// committed-but-unsynced batches. Non-durable services keep tip ==
	// published (every commit flushes immediately).
	db            *relation.Database // flat-mode live database (sequencer-owned)
	shardKeys     map[string][]int   // resolved partition keys (sharded mode)
	wal           *wal.Log
	dataDir       string
	fsys          fault.FS // checkpoint/WAL filesystem (fault.OS in production)
	tip           *State
	pending       []pendingCommit
	syncTicker    *time.Ticker
	syncCh        <-chan time.Time
	submitTimeout time.Duration

	// Checkpointer configuration and stats.
	ckptEvery    int
	ckptInterval time.Duration
	ckptDone     chan struct{} // closed when the checkpointer's final pass is done
	ckptSeq      atomic.Uint64
	ckptCount    atomic.Uint64
	ckptErrs     atomic.Uint64
	ckptBytes    atomic.Int64
	walClose     sync.Once

	// Observability (Config.Obs != nil). met/tracker are nil when off;
	// trendCounts and depKey are sequencer-only.
	met         *serveMetrics
	tracker     *obs.Tracker
	trendCounts map[string]int
	depKey      map[any]string
	started     time.Time
	logger      *slog.Logger

	// Health state machine (health.go): healthy → read-only → broken,
	// one-way. shardPanics counts shard-writer panics recovered into
	// per-shard errors.
	health      atomic.Pointer[healthState]
	shardPanics atomic.Uint64
	shardHook   func(shard int, ops []relation.ShardedOp)

	mu      sync.Mutex
	subs    map[*Sub]struct{}
	stopped bool // loop exited; guarded by mu

	stopOnce sync.Once
	stopping chan struct{} // closed by Stop: no new Submits, loop drains
	done     chan struct{} // closed when the loop has exited
}

// New seeds a monitor over the database (paying one full detection),
// publishes the initial State and starts the ingest loop. With
// Config.Durable set, New first recovers: load the latest checkpoint,
// open the WAL (truncating a torn tail), and replay every record past
// the checkpoint — reconstructing exactly the acknowledged commits —
// before the monitor seeds and the loop starts.
func New(cfg Config) (*Service, error) {
	if cfg.DB == nil {
		return nil, errors.New("serve: Config.DB is required")
	}
	if cfg.QueueCap < 0 || cfg.MaxBatchOps < 0 || cfg.SubBuf < 0 {
		return nil, errors.New("serve: negative Config sizes")
	}
	if cfg.Shards < 0 {
		return nil, errors.New("serve: negative Config.Shards")
	}
	queueCap := cfg.QueueCap
	if queueCap == 0 {
		queueCap = DefaultQueueCap
	}
	maxOps := cfg.MaxBatchOps
	if maxOps == 0 {
		maxOps = DefaultMaxBatchOps
	}
	subBuf := cfg.SubBuf
	if subBuf == 0 {
		subBuf = DefaultSubBuf
	}
	schemas := make(map[string]*relation.Schema, len(cfg.DB.Names()))
	for _, name := range cfg.DB.Names() {
		schemas[name] = cfg.DB.MustInstance(name).Schema()
	}
	s := &Service{
		cs:            cfg.Constraints,
		sigma:         detect.SigmaOf(cfg.Constraints),
		schemas:       schemas,
		maxOps:        maxOps,
		subBuf:        subBuf,
		submitTimeout: cfg.SubmitTimeout,
		shardHook:     cfg.shardHook,
		queue:         make(chan request, queueCap),
		subs:          make(map[*Sub]struct{}),
		stopping:      make(chan struct{}),
		done:          make(chan struct{}),
	}
	s.logger = cfg.Logger
	if s.logger == nil {
		s.logger = discardLogger()
	}

	// Durable recovery phase one: resolve the database the monitor is
	// built over — the loaded checkpoint when one exists, cfg.DB
	// otherwise — and open the WAL.
	db := cfg.DB
	var ckptInfo relation.CheckpointInfo
	haveCkpt := false
	if cfg.Durable != nil {
		var err error
		db, ckptInfo, haveCkpt, err = s.openDurable(cfg)
		if err != nil {
			return nil, err
		}
	}
	s.db = db
	fail := func(err error) (*Service, error) {
		for _, ch := range s.shardCh {
			close(ch)
		}
		if s.wal != nil {
			s.wal.Close()
		}
		return nil, err
	}

	if cfg.Shards > 1 {
		keys := cfg.ShardKeys
		if keys == nil {
			derived, err := detect.DeriveShardKeys(cfg.Constraints)
			if err != nil {
				return fail(fmt.Errorf("serve: %v", err))
			}
			keys = derived
		}
		s.shardKeys = keys
		p := relation.NewPartitioner(cfg.Shards)
		for rel, pos := range keys {
			p.SetKey(rel, pos)
		}
		sdb, err := relation.Partition(db, p)
		if err != nil {
			return fail(fmt.Errorf("serve: %v", err))
		}
		m, err := detect.NewShardedDBMonitor(cfg.Engine, sdb, cfg.Constraints)
		if err != nil {
			return fail(fmt.Errorf("serve: %v", err))
		}
		s.engine = m.Engine()
		s.smonitor = m
		s.shardedDB = sdb
		s.shardCh = make([]chan shardWork, cfg.Shards)
		s.shardPending = make([]atomic.Int64, cfg.Shards)
		for i := range s.shardCh {
			s.shardCh[i] = make(chan shardWork, 1)
			go s.shardWriter(i)
		}
		s.rebuildShardViol(m.Violations())
	} else {
		m := detect.NewDBMonitor(cfg.Engine, db, cfg.Constraints)
		s.engine = m.Engine()
		s.monitor = m
	}

	// Recovery phase two: replay the WAL tail through the seeded
	// monitor, then capture the post-replay state as the seed.
	seed := &State{Seq: ckptInfo.Seq}
	if s.wal != nil {
		if err := s.replayWAL(seed); err != nil {
			return fail(err)
		}
	}
	if s.smonitor != nil {
		seed.Shards = s.smonitor.ShardSnapshots()
		seed.Violations = s.smonitor.Violations()
		seed.ShardViolations = append([]int(nil), s.shardViol...)
		seed.FullSyncs = s.smonitor.FullSyncs()
	} else {
		seed.Snapshot = s.monitor.Snapshot()
		seed.Violations = s.monitor.Violations()
		seed.FullSyncs = s.monitor.FullSyncs()
	}
	if s.wal != nil {
		seed.NextTIDs = s.captureNextTIDs()
	}
	s.tip = seed
	s.state.Store(seed)
	if cfg.Obs != nil {
		s.setupObs(cfg.Obs, queueCap, seed)
	}

	if s.wal != nil && cfg.Durable.SyncEvery > 1 {
		iv := cfg.Durable.SyncInterval
		if iv <= 0 {
			iv = 5 * time.Millisecond
		}
		s.syncTicker = time.NewTicker(iv)
		s.syncCh = s.syncTicker.C
	}
	go s.run()
	if s.wal != nil {
		s.ckptEvery = cfg.Durable.CheckpointEvery
		if s.ckptEvery == 0 {
			s.ckptEvery = DefaultCheckpointEvery
		}
		s.ckptInterval = cfg.Durable.CheckpointInterval
		s.ckptDone = make(chan struct{})
		if haveCkpt {
			s.ckptSeq.Store(ckptInfo.Seq)
		}
		go s.checkpointer(haveCkpt, ckptInfo.Seq)
	}
	return s, nil
}

// shardWriter applies routed sub-batches for one shard, in commit
// order; the sequencer's WaitGroup barrier keeps commits atomic across
// writers.
func (s *Service) shardWriter(shard int) {
	for w := range s.shardCh[shard] {
		s.applyShardWork(shard, w)
	}
}

// applyShardWork applies one sub-batch with panic isolation: a panic in
// the apply (or the test hook) is recovered into the commit's per-shard
// error slot instead of crashing the process, and the sequencer's
// existing partial-failure path (RebuildDir + resync) restores
// consistency against whatever prefix actually applied. The barrier is
// always released exactly once.
func (s *Service) applyShardWork(shard int, w shardWork) {
	defer func() {
		if r := recover(); r != nil {
			s.shardPanics.Add(1)
			if w.err != nil {
				*w.err = fmt.Errorf("serve: shard %d writer panic: %v", shard, r)
			}
		}
		s.shardPending[shard].Add(-int64(len(w.ops)))
		w.wg.Done()
	}()
	if s.shardHook != nil {
		s.shardHook(shard, w.ops)
	}
	if err := s.shardedDB.ApplyShard(shard, w.ops); err != nil && w.err != nil {
		*w.err = err
	}
}

// ShardPanics reports how many shard-writer panics have been recovered
// since New (racy, informational).
func (s *Service) ShardPanics() uint64 { return s.shardPanics.Load() }

// rebuildShardViol recomputes the per-shard violation attribution from
// scratch: each violation counts toward the shard holding its primary
// tuple. Sequencer-only: it reads the live tuple directory, which the
// route phase mutates.
func (s *Service) rebuildShardViol(vs []detect.Violation) {
	s.shardViol = make([]int, s.shardedDB.Shards())
	s.violShard = make(map[detect.Violation]int, len(vs))
	for _, v := range vs {
		if shard, ok := s.shardedDB.ShardOfTID(detect.RelationOf(v), primaryTID(v)); ok {
			s.shardViol[shard]++
			s.violShard[v] = shard
		}
	}
}

// applyShardViol folds one commit's diff into the per-shard violation
// attribution. Only valid when the commit moved no tuple across shards
// — a move can re-home a persisting violation the diff never mentions,
// which is commitSharded's cue to rebuild instead. Sequencer-only.
func (s *Service) applyShardViol(gained, cleared []detect.Violation) {
	for _, v := range cleared {
		if shard, ok := s.violShard[v]; ok {
			s.shardViol[shard]--
			delete(s.violShard, v)
		}
	}
	for _, v := range gained {
		if shard, ok := s.shardedDB.ShardOfTID(detect.RelationOf(v), primaryTID(v)); ok {
			s.shardViol[shard]++
			s.violShard[v] = shard
		}
	}
}

// run is the single-writer ingest loop: the only goroutine that ever
// calls monitor.Apply or mutates the database.
func (s *Service) run() {
	defer func() {
		if r := recover(); r != nil {
			// A panic escaped the ingest loop: nothing will ever advance
			// the published State again. Mark the service broken (reads
			// keep serving the last State), end the subscriber streams,
			// and let the closed done channel fail queued Submits.
			s.degrade(Broken, fmt.Sprintf("ingest loop panic: %v", r))
			s.closeSubs()
		}
		if s.syncTicker != nil {
			s.syncTicker.Stop()
		}
		for _, ch := range s.shardCh {
			close(ch)
		}
		close(s.done)
	}()
	for {
		select {
		case req := <-s.queue:
			s.coalesce(req)
			if len(s.queue) == 0 {
				// Idle: no batch is on its way to fill the group-commit
				// window, so sync now rather than hold acks for the timer.
				s.flushWAL()
			}
		case <-s.syncCh:
			// SyncInterval tick (durable mode with SyncEvery > 1): bound
			// how long an ack can be held. Spurious ticks are no-ops.
			s.flushWAL()
		case <-s.stopping:
			// Graceful drain: apply everything already queued, release
			// the group-commit window, then shut the subscriber streams.
			for {
				select {
				case req := <-s.queue:
					s.coalesce(req)
				default:
					s.flushWAL()
					s.closeSubs()
					return
				}
			}
		}
	}
}

// coalesce folds queued requests into first's commit batch until the
// queue runs dry or the batch hits MaxBatchOps, then commits — the
// amortization knob: under load, snapshot catch-up, index splicing and
// state publication are paid once per coalesced batch, not once per
// Submit.
func (s *Service) coalesce(first request) {
	reqs := []request{first}
	n := len(first.ops)
	for n < s.maxOps {
		select {
		case req := <-s.queue:
			reqs = append(reqs, req)
			n += len(req.ops)
		default:
			s.commit(reqs, n)
			return
		}
	}
	s.commit(reqs, n)
}

// commit applies one coalesced batch against the writer-local tip.
// Each request is validated upfront against the tip plus the accepted
// requests before it: an invalid request is acknowledged with its
// *OpError at the unchanged tip sequence — nothing of it logged or
// applied — while the valid requests around it commit normally. In
// durable mode the surviving batch is WAL-logged first — a batch the
// log cannot take is rejected without being applied, so memory and log
// always agree — and the successor State is published and acknowledged
// only once its frame is fsynced: immediately when the append synced,
// otherwise from the group-commit flush.
func (s *Service) commit(reqs []request, n int) {
	if err := s.healthErr(); err != nil {
		s.reject(reqs, err)
		return
	}
	if s.met != nil {
		now := time.Now()
		for _, r := range reqs {
			s.met.stages[stageQueueWait].Observe(now.Sub(r.at).Seconds())
		}
		s.met.batchOps.Observe(float64(n))
	}

	vt := s.met.now()
	v := s.newValidator()
	valid := make([]request, 0, len(reqs))
	ops := make([]detect.DBOp, 0, n)
	for _, r := range reqs {
		if verr := v.validate(r.ops); verr != nil {
			r.done <- Result{Seq: s.tip.Seq, Err: verr} // buffered: never blocks
			continue
		}
		valid = append(valid, r)
		ops = append(ops, r.ops...)
	}
	s.met.observeStage(stageValidate, vt)
	if len(valid) == 0 {
		return
	}
	reqs = valid

	if s.wal != nil && s.smonitor != nil {
		// Sharded durable commits overlap the WAL work with the shard
		// machinery instead of running the phases back to back.
		s.commitShardedDurable(reqs, ops)
		return
	}

	synced := true
	if s.wal != nil {
		buf := encBufs.Get().(*bytes.Buffer)
		payload, err := encodeBatchInto(buf, ops, s.schemas)
		if err != nil {
			encBufs.Put(buf)
			s.reject(reqs, err)
			return
		}
		at := s.met.now()
		ok, err := s.wal.Append(s.tip.Seq+1, payload)
		s.met.observeStage(stageWALAppend, at)
		encBufs.Put(buf)
		if err != nil {
			if errors.Is(err, wal.ErrBroken) {
				// The log cannot take any further writes: degrade to
				// read-only. Reads keep serving the published State; every
				// later Submit fails fast with ErrReadOnly.
				s.degrade(ReadOnly, fmt.Sprintf("write-ahead log broken: %v", err))
			}
			s.reject(reqs, fmt.Errorf("%w: %v", ErrWAL, err))
			return
		}
		synced = ok
	}

	var gained, cleared []detect.Violation
	var err error
	if s.smonitor != nil {
		gained, cleared, err = s.commitSharded(ops)
	} else {
		dt := s.met.now()
		gained, cleared, err = s.monitor.Apply(ops)
		s.met.observeStage(stageDetect, dt)
	}
	s.enqueueCommit(reqs, ops, gained, cleared, err)
	if synced {
		s.flushPending(nil)
	}
}

// enqueueCommit builds the successor State from the applied batch,
// advances the writer-local tip and holds the commit for publication
// (flushPending releases it once its frame is durable — or
// immediately, when there is no WAL).
func (s *Service) enqueueCommit(reqs []request, ops []detect.DBOp, gained, cleared []detect.Violation, err error) {
	old := s.tip
	mt := s.met.now()
	merged := mergeDiff(old.Violations, gained, cleared, s.sigma)
	s.met.observeStage(stageMerge, mt)
	st := &State{
		Seq:        old.Seq + 1,
		Violations: merged,
		Ops:        old.Ops + uint64(len(ops)),
		Gained:     old.Gained + uint64(len(gained)),
		Cleared:    old.Cleared + uint64(len(cleared)),
		Errs:       old.Errs,
	}
	if s.smonitor != nil {
		st.Shards = s.smonitor.ShardSnapshots()
		st.ShardViolations = append([]int(nil), s.shardViol...)
		st.FullSyncs = s.smonitor.FullSyncs()
	} else {
		st.Snapshot = s.monitor.Snapshot()
		st.FullSyncs = s.monitor.FullSyncs()
	}
	if s.wal != nil {
		st.NextTIDs = s.captureNextTIDs()
	}
	if err != nil {
		st.Errs++
	}
	if s.met != nil {
		s.met.commits.Inc()
		s.met.ops.Add(uint64(len(ops)))
		s.met.gained.Add(uint64(len(gained)))
		s.met.cleared.Add(uint64(len(cleared)))
		if err != nil {
			s.met.opErrs.Inc()
		}
	}
	alerts := s.observeTrends(st.Seq, gained, cleared)
	s.tip = st
	s.pending = append(s.pending, pendingCommit{
		st:    st,
		delta: Delta{Seq: st.Seq, Gained: gained, Cleared: cleared, Alerts: alerts},
		reqs:  reqs,
		res:   Result{Seq: st.Seq, Gained: len(gained), Cleared: len(cleared), Err: err},
	})
}

// commitShardedDurable is the sharded commit path with a WAL: the wire
// encode runs concurrently with the sequential route pass, the append
// (without its fsync) gates the apply exactly as on the flat path —
// a batch the log cannot take is rejected with the routing undone, so
// memory and log still agree — and when the group-commit window is due
// the fsync overlaps the scatter and incremental sync, joining only at
// publication time.
func (s *Service) commitShardedDurable(reqs []request, ops []detect.DBOp) {
	buf := encBufs.Get().(*bytes.Buffer)
	type encoded struct {
		payload []byte
		err     error
	}
	encCh := make(chan encoded, 1)
	go func() {
		p, err := encodeBatchInto(buf, ops, s.schemas)
		encCh <- encoded{p, err}
	}()

	// Route eagerly mutates only the TID allocators and the tuple
	// directory; capture the allocators so a failed append can revert
	// both (RebuildDir restores the directory from the instances, which
	// are untouched until the scatter below).
	tids := s.shardedDB.NextTIDs()
	rt := s.met.now()
	r, rerr := s.smonitor.Route(ops)
	s.met.observeStage(stageRoute, rt)

	enc := <-encCh
	var syncDue bool
	err := enc.err
	at := s.met.now()
	if err == nil {
		syncDue, err = s.wal.AppendNoSync(s.tip.Seq+1, enc.payload)
	}
	s.met.observeStage(stageWALAppend, at)
	encBufs.Put(buf)
	if err != nil {
		s.shardedDB.SetNextTIDs(tids)
		s.shardedDB.RebuildDir()
		if enc.err == nil {
			if errors.Is(err, wal.ErrBroken) {
				s.degrade(ReadOnly, fmt.Sprintf("write-ahead log broken: %v", err))
			}
			err = fmt.Errorf("%w: %v", ErrWAL, err)
		}
		s.reject(reqs, err)
		return
	}

	var syncCh chan error
	if syncDue {
		syncCh = make(chan error, 1)
		go func() {
			st := s.met.now()
			err := s.wal.Sync()
			s.met.observeStage(stageWALSync, st)
			syncCh <- err
		}()
	}
	gained, cleared, aerr := s.applyRouted(r, rerr)
	s.enqueueCommit(reqs, ops, gained, cleared, aerr)
	if syncCh != nil {
		// A failed fsync here has group-commit-failure semantics: the
		// batch is applied in memory, flushPending publishes it, every
		// held ack reports ErrWAL, and the service degrades to read-only.
		s.flushPending(<-syncCh)
	}
}

// reject refuses one coalesced batch without applying it: every
// request is acknowledged with the error at the unchanged tip
// sequence.
func (s *Service) reject(reqs []request, err error) {
	if s.met != nil {
		s.met.rejects.Inc()
	}
	res := Result{Seq: s.tip.Seq, Err: err}
	for _, r := range reqs {
		r.done <- res // buffered: never blocks
	}
}

// flushWAL drains the group-commit window: fsync whatever the WAL has
// buffered, then release the held commits. Called after a synced
// append, when the queue runs idle, on the SyncInterval tick and at
// drain.
func (s *Service) flushWAL() {
	if len(s.pending) == 0 {
		return
	}
	var err error
	if s.wal != nil {
		st := s.met.now()
		err = s.wal.Sync()
		s.met.observeStage(stageWALSync, st)
	}
	s.flushPending(err)
}

// flushPending publishes and acknowledges every held commit, in order.
// A sync failure still publishes — the in-memory state is consistent
// and reads keep working — but every held ack reports ErrWAL: the
// commits are not on stable storage, and the broken log makes the
// service fail-stop for subsequent writes.
func (s *Service) flushPending(syncErr error) {
	if len(s.pending) == 0 {
		return
	}
	if syncErr != nil {
		// The held commits are applied in memory but not on stable
		// storage, and the log is now fail-stop: no future commit can be
		// made durable either. Degrade to read-only — reads keep serving
		// the (consistent) published state, writes are refused.
		s.degrade(ReadOnly, fmt.Sprintf("write-ahead log sync failed: %v", syncErr))
	}

	// Publication and fan-out under one lock so Subscribe's registration
	// seq is exact: a subscriber registered at state Seq receives every
	// delta with Seq' > Seq and none twice.
	pt := s.met.now()
	s.mu.Lock()
	s.state.Store(s.pending[len(s.pending)-1].st)
	for _, p := range s.pending {
		for sub := range s.subs {
			select {
			case sub.ch <- p.delta:
			default:
				// Slow consumer: the buffer is full, so rather than block the
				// writer (or buffer unboundedly), drop the stream. The closed
				// channel plus Lost() tells the subscriber to resync from
				// Violations(), which is exactly as current as the deltas it
				// missed.
				sub.lost.Store(true)
				delete(s.subs, sub)
				close(sub.ch)
			}
		}
	}
	s.mu.Unlock()
	s.met.observeStage(stagePublish, pt)

	for _, p := range s.pending {
		res := p.res
		if syncErr != nil {
			res.Err = fmt.Errorf("%w: %v", ErrWAL, syncErr)
		}
		for _, r := range p.reqs {
			r.done <- res // buffered: never blocks
		}
	}
	s.pending = s.pending[:0]
}

// commitSharded is the sequencer's half of a sharded commit: one
// sequential route pass (validation, TID allocation, move decisions),
// a scatter to the shard writers with a barrier, then the merged
// incremental sync. Error semantics match DBMonitor.Apply: the routed
// prefix before a failing op is applied and the error returned with
// the diff.
func (s *Service) commitSharded(ops []detect.DBOp) (gained, cleared []detect.Violation, err error) {
	rt := s.met.now()
	r, rerr := s.smonitor.Route(ops)
	s.met.observeStage(stageRoute, rt)
	return s.applyRouted(r, rerr)
}

// applyRouted scatters an already-routed batch to the shard writers,
// waits out the barrier, runs the merged incremental sync and
// maintains the per-shard violation attribution. Factored out of
// commitSharded so the durable path can route before the WAL append
// and apply after it.
func (s *Service) applyRouted(r *relation.Routing, err error) (gained, cleared []detect.Violation, _ error) {
	st := s.met.now()
	errs := make([]error, len(s.shardCh))
	var wg sync.WaitGroup
	for shard, sub := range r.PerShard() {
		if len(sub) == 0 {
			continue
		}
		wg.Add(1)
		s.shardPending[shard].Add(int64(len(sub)))
		s.shardCh[shard] <- shardWork{ops: sub, wg: &wg, err: &errs[shard]}
	}
	wg.Wait()
	s.met.observeStage(stageScatter, st)
	var aerr error
	for _, e := range errs {
		if e != nil {
			aerr = e
			break
		}
	}
	if aerr != nil {
		// A sub-batch stopped mid-way: the tuple directory no longer
		// matches the shard instances. Rebuild it before syncing so the
		// monitor resynchronizes against the applied prefix. The route
		// error keeps precedence — it names the op the caller sent wrong.
		s.shardedDB.RebuildDir()
		if err == nil {
			err = aerr
		}
	}
	dt := s.met.now()
	gained, cleared = s.smonitor.Sync()
	s.met.observeStage(stageDetect, dt)
	if r.Moves() > 0 || aerr != nil {
		s.rebuildShardViol(s.smonitor.Violations())
	} else {
		s.applyShardViol(gained, cleared)
	}
	return gained, cleared, err
}

// mergeDiff derives the successor violation list from the predecessor
// and a commit's sorted gained/cleared diff: one linear merge, no
// re-sort, the predecessor list untouched.
func mergeDiff(cur, gained, cleared []detect.Violation, sigma map[any]int) []detect.Violation {
	if len(gained) == 0 && len(cleared) == 0 {
		return cur
	}
	dead := make(map[detect.Violation]struct{}, len(cleared))
	for _, v := range cleared {
		dead[v] = struct{}{}
	}
	out := make([]detect.Violation, 0, len(cur)+len(gained)-len(cleared))
	gi := 0
	for _, v := range cur {
		for gi < len(gained) && detect.CompareViolations(gained[gi], v, sigma) < 0 {
			out = append(out, gained[gi])
			gi++
		}
		if _, gone := dead[v]; !gone {
			out = append(out, v)
		}
	}
	out = append(out, gained[gi:]...)
	if len(out) == 0 {
		return nil // matches DetectBatch's nil on a clean database
	}
	return out
}

// Submit enqueues one mutation batch and waits for the commit that
// applies it. The queue is bounded; when it is full Submit blocks
// (backpressure) until space frees, the context expires, or the
// service stops. A Result with a non-nil Err means the commit hit a
// failing op: the failing op's suffix was skipped but the service
// resynchronized and remains consistent.
func (s *Service) Submit(ctx context.Context, ops []detect.DBOp) (Result, error) {
	if err := s.healthErr(); err != nil {
		// Degraded: fail fast instead of queueing work the loop will
		// reject anyway (or never drain, when broken).
		return Result{}, err
	}
	if len(ops) == 0 {
		return Result{Seq: s.state.Load().Seq}, nil
	}
	req := request{ops: ops, done: make(chan Result, 1)}
	if s.met != nil {
		req.at = time.Now()
	}
	var timeout <-chan time.Time
	if s.submitTimeout > 0 {
		t := time.NewTimer(s.submitTimeout)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case s.queue <- req:
	case <-timeout:
		// The queue stayed full for the whole SubmitTimeout: shed the
		// load instead of stacking blocked submitters without bound.
		return Result{}, ErrBusy
	case <-s.stopping:
		return Result{}, ErrStopped
	case <-ctx.Done():
		return Result{}, ctx.Err()
	}
	select {
	case res := <-req.done:
		return res, res.Err
	case <-s.done:
		// The loop exited while our request was queued. The drain makes
		// this window tiny (an enqueue racing the final queue sweep), but
		// it exists; one last non-blocking look, then give up.
		select {
		case res := <-req.done:
			return res, res.Err
		default:
			return Result{}, ErrStopped
		}
	case <-ctx.Done():
		// The ops may still be applied; the caller only loses the ack.
		return Result{}, ctx.Err()
	}
}

// Stop makes Submit reject new work, waits (up to the context) for the
// ingest loop to drain the queued requests, and closes every
// subscriber stream. On a durable service it then waits for the
// checkpointer's final pass and closes the WAL. Idempotent.
func (s *Service) Stop(ctx context.Context) error {
	s.stopOnce.Do(func() { close(s.stopping) })
	select {
	case <-s.done:
	case <-ctx.Done():
		return ctx.Err()
	}
	if s.wal == nil {
		return nil
	}
	select {
	case <-s.ckptDone:
	case <-ctx.Done():
		return ctx.Err()
	}
	s.walClose.Do(func() { s.wal.Close() })
	return nil
}

// State returns the latest published view. Treat it as read-only.
func (s *Service) State() *State { return s.state.Load() }

// Violations returns the published violation list in canonical mixed
// order — byte-identical to Engine.DetectBatch of the database as of
// State().Seq. The slice is shared and must not be mutated.
func (s *Service) Violations() []detect.Violation { return s.state.Load().Violations }

// Check evaluates a caller-supplied constraint batch against the
// published snapshot (not the live database): a consistent
// SatisfiesBatch probe that never blocks or races the writer. It
// returns the probed Seq alongside the verdict.
func (s *Service) Check(cs []detect.Constraint) (uint64, bool, error) {
	return s.CheckContext(context.Background(), cs)
}

// CheckContext is Check under a deadline: on a sharded service the
// probe first gathers every shard snapshot — O(total rows) — so
// request-scoped callers pass their context and a cancelled request
// stops the merge early instead of finishing work nobody will read.
func (s *Service) CheckContext(ctx context.Context, cs []detect.Constraint) (uint64, bool, error) {
	st := s.state.Load()
	if st.Shards != nil {
		// Cross-partition read: merge the per-shard freezes into one
		// detached database and probe that — the caller's rules need not
		// be shardable.
		db, err := relation.GatherSnapshotsCtx(ctx, st.Shards)
		if err != nil {
			return st.Seq, false, err
		}
		return st.Seq, s.engine.SatisfiesBatch(db, cs), nil
	}
	return st.Seq, s.engine.SatisfiesBatchOn(st.Snapshot, cs), nil
}

// Shards returns the shard count the service runs with (1 when
// single-partition).
func (s *Service) Shards() int {
	if s.shardedDB == nil {
		return 1
	}
	return s.shardedDB.Shards()
}

// ShardQueueDepths reports the ops currently in flight to each shard
// writer (racy, informational); nil on a single-partition service.
func (s *Service) ShardQueueDepths() []int {
	if s.shardPending == nil {
		return nil
	}
	out := make([]int, len(s.shardPending))
	for i := range s.shardPending {
		out[i] = int(s.shardPending[i].Load())
	}
	return out
}

// Constraints returns the monitored batch Σ (read-only).
func (s *Service) Constraints() []detect.Constraint { return s.cs }

// Sigma returns the Σ-position map of the monitored batch, the
// tie-break CompareViolations needs (read-only).
func (s *Service) Sigma() map[any]int { return s.sigma }

// Schemas returns the watched relations' schemas keyed by name
// (read-only) — what front ends parse ops and rules against.
func (s *Service) Schemas() map[string]*relation.Schema { return s.schemas }

// Engine returns the service's engine (always the columnar path).
func (s *Service) Engine() *detect.Engine { return s.engine }

// QueueDepth reports how many Submit requests are pending (racy,
// informational).
func (s *Service) QueueDepth() int { return len(s.queue) }

// QueueCap reports the ingest queue capacity.
func (s *Service) QueueCap() int { return cap(s.queue) }

// Counts summarizes the published violation list.
type Counts struct {
	Seq          uint64            `json:"seq"`
	Total        int               `json:"total"`
	ByClass      map[string]int    `json:"byClass,omitempty"`
	ByRelation   map[string]int    `json:"byRelation,omitempty"`
	ByConstraint []ConstraintCount `json:"byConstraint"`
}

// ConstraintCount is one constraint's slice of the violation set, in Σ
// order.
type ConstraintCount struct {
	Class string `json:"class"`
	Rule  string `json:"rule"`
	Count int    `json:"count"`
}

// Counts aggregates the published violation list per class, relation
// and constraint — computed from the immutable State, so concurrent
// with (and unaffected by) the writer.
func (s *Service) Counts() Counts { return s.countsFor(s.state.Load()) }

// countsFor is Counts over a caller-held State — what a handler that
// already loaded the state uses to keep one response on one consistent
// view.
func (s *Service) countsFor(st *State) Counts {
	out := Counts{
		Seq:        st.Seq,
		Total:      len(st.Violations),
		ByClass:    make(map[string]int),
		ByRelation: make(map[string]int),
	}
	perDep := make(map[any]int, len(s.cs))
	for _, v := range st.Violations {
		out.ByClass[detect.ClassOf(v).String()]++
		out.ByRelation[detect.RelationOf(v)]++
		perDep[detect.DepOf(v)]++
	}
	seen := make(map[any]bool, len(s.cs))
	for _, c := range s.cs {
		if seen[c.Dep()] {
			continue
		}
		seen[c.Dep()] = true
		out.ByConstraint = append(out.ByConstraint, ConstraintCount{
			Class: c.Class().String(),
			Rule:  ruleText(c.Dep()),
			Count: perDep[c.Dep()],
		})
	}
	return out
}

// NumSubscribers reports the live subscriber count (racy,
// informational).
func (s *Service) NumSubscribers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.subs)
}

// Sub is one delta subscription. Receive from Events until it closes;
// then Lost distinguishes a slow-consumer drop (resync required) from
// an orderly Close or service stop.
type Sub struct {
	svc  *Service
	ch   chan Delta
	seq  uint64 // state Seq at registration; deltas start at seq+1
	lost atomic.Bool
}

// Events is the delta stream: every commit after Seq(), in order,
// until the channel closes.
func (sub *Sub) Events() <-chan Delta { return sub.ch }

// Seq returns the published Seq the subscription started at: the
// subscriber's copy of Violations at that Seq plus every delivered
// delta reconstructs the live set.
func (sub *Sub) Seq() uint64 { return sub.seq }

// Lost reports whether the stream was dropped for falling behind
// (meaningful once Events is closed). A lost subscriber resyncs by
// re-reading Violations and resubscribing.
func (sub *Sub) Lost() bool { return sub.lost.Load() }

// Close unsubscribes. Idempotent; safe concurrently with the writer.
func (sub *Sub) Close() { sub.svc.unsubscribe(sub) }

// Subscribe registers a delta subscriber with the configured buffer.
// The registration is exact: deltas for every commit after the
// returned Sub's Seq will be delivered (or the stream dropped). On a
// stopped service the returned Sub's stream is already closed.
func (s *Service) Subscribe() *Sub { return s.SubscribeBuf(s.subBuf) }

// SubscribeBuf is Subscribe with an explicit per-subscriber buffer —
// the lag budget (in commits) this consumer gets before the drop
// policy disconnects it.
func (s *Service) SubscribeBuf(buf int) *Sub {
	if buf < 1 {
		buf = 1
	}
	sub := &Sub{svc: s, ch: make(chan Delta, buf)}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		close(sub.ch)
		sub.seq = s.state.Load().Seq
		return sub
	}
	sub.seq = s.state.Load().Seq
	s.subs[sub] = struct{}{}
	return sub
}

func (s *Service) unsubscribe(sub *Sub) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.subs[sub]; ok {
		delete(s.subs, sub)
		close(sub.ch)
	}
}

// closeSubs ends every stream at loop exit (an orderly close: Lost
// stays false).
func (s *Service) closeSubs() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stopped = true
	for sub := range s.subs {
		delete(s.subs, sub)
		close(sub.ch)
	}
}

// ruleText renders a wrapped dependency for reports (the same %v the
// command-line reports print).
func ruleText(dep any) string { return fmt.Sprint(dep) }
