package serve

import (
	"bufio"
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/detect"
	"repro/internal/relation"
)

// crashSeed parameterizes the kill -9 end-to-end run. The child and
// the parent's shadow replay both derive every batch from this seed
// over the same base database, so batch i depends only on the state
// after batch i-1 and the parent can regenerate exactly the stream the
// child submitted.
const (
	crashSeed   = 42
	crashOrders = 300
)

// crashBatch draws commit batch number seq (1-based) from the shared
// deterministic stream and applies nothing: the caller decides whether
// it goes to a live service or a shadow monitor.
func crashBatch(r *rand.Rand, shadow *relation.Database, fresh *int) []detect.DBOp {
	dead := map[string]map[relation.TID]bool{}
	nops := 1 + r.Intn(4)
	ops := make([]detect.DBOp, 0, nops)
	for j := 0; j < nops; j++ {
		ops = append(ops, randomServeOp(r, shadow, fresh, dead))
	}
	return ops
}

// TestCrashServerHelper is the child half of TestKillRecoverE2E: a
// durable service ingesting the deterministic batch stream forever,
// printing "ack <seq>" after every fsynced commit, until the parent
// delivers SIGKILL. Skipped unless re-executed with DQ_CRASH_HELPER=1.
func TestCrashServerHelper(t *testing.T) {
	if os.Getenv("DQ_CRASH_HELPER") != "1" {
		t.Skip("helper process for TestKillRecoverE2E")
	}
	dir := os.Getenv("DQ_CRASH_DIR")
	if dir == "" {
		t.Fatal("DQ_CRASH_DIR not set")
	}
	// Watchdog: if the parent dies without killing us, don't run forever.
	time.AfterFunc(2*time.Minute, func() { os.Exit(3) })

	cs := serveSigma()
	db := ordersDB(crashSeed, crashOrders)
	shadow := db.Clone()
	svc, err := New(Config{DB: db, Constraints: cs,
		Durable: &DurableConfig{Dir: dir, SyncEvery: 1, CheckpointEvery: 10}})
	if err != nil {
		t.Fatalf("helper: %v", err)
	}
	r := rand.New(rand.NewSource(crashSeed))
	fresh := 0
	ctx := context.Background()
	for {
		ops := crashBatch(r, shadow, &fresh)
		res, err := svc.Submit(ctx, ops)
		if err != nil {
			t.Fatalf("helper submit: %v", err)
		}
		if err := applyShadow(shadow, ops); err != nil {
			t.Fatalf("helper shadow: %v", err)
		}
		fmt.Printf("ack %d\n", res.Seq)
	}
}

// TestKillRecoverE2E is the headline durability test: re-exec the test
// binary as a durable server ingesting the deterministic stream, kill
// it with SIGKILL mid-flight after ~50 acknowledged commits, then
// recover the data directory in-process and require that (a) every
// acknowledged commit survived and (b) GET /violations is
// byte-identical to an uninterrupted shadow run of the same batches.
func TestKillRecoverE2E(t *testing.T) {
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run", "TestCrashServerHelper$", "-test.v")
	cmd.Env = append(os.Environ(), "DQ_CRASH_HELPER=1", "DQ_CRASH_DIR="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	var maxAck uint64
	acks := 0
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		seq, ok := strings.CutPrefix(line, "ack ")
		if !ok {
			continue
		}
		n, err := strconv.ParseUint(seq, 10, 64)
		if err != nil {
			t.Fatalf("bad ack line %q: %v", line, err)
		}
		maxAck = n
		if acks++; acks >= 50 {
			break
		}
	}
	if acks < 50 {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("helper exited after only %d acks (scanner err %v)", acks, sc.Err())
	}
	// kill -9: no defers, no flushes, no Stop — the fsync before each
	// ack is all the durability there is.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	// Recover in-process over the same directory.
	cs := serveSigma()
	svc := mustNew(t, Config{DB: ordersDB(crashSeed, crashOrders), Constraints: cs,
		Durable: &DurableConfig{Dir: dir}})
	recovered := svc.State().Seq
	if recovered < maxAck {
		t.Fatalf("recovered Seq %d < last acknowledged %d: acknowledged commits lost", recovered, maxAck)
	}

	// Shadow: the uninterrupted run of batches 1..recovered (the child
	// may have logged a commit it never got to print).
	shadow := ordersDB(crashSeed, crashOrders)
	m := detect.NewDBMonitor(nil, shadow, cs)
	r := rand.New(rand.NewSource(crashSeed))
	fresh := 0
	for seq := uint64(1); seq <= recovered; seq++ {
		ops := crashBatch(r, shadow, &fresh)
		if _, _, err := m.Apply(ops); err != nil {
			t.Fatalf("shadow batch %d: %v", seq, err)
		}
	}
	wantText := ViolationsText(m.Violations())
	if got := ViolationsText(svc.Violations()); got != wantText {
		t.Fatalf("recovered violations diverge from the uninterrupted run at seq %d", recovered)
	}
	// And over the HTTP surface, byte for byte.
	h := NewHandler(svc)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/violations?format=text", nil))
	if rec.Code != 200 || rec.Body.String() != wantText {
		t.Fatalf("GET /violations after recovery: status %d, body diverges (%d vs %d bytes)",
			rec.Code, rec.Body.Len(), len(wantText))
	}
}
