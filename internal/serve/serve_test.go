package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/cfd"
	"repro/internal/cind"
	"repro/internal/detect"
	"repro/internal/ecfd"
	"repro/internal/gen"
	"repro/internal/paperdata"
	"repro/internal/relation"
)

// serveSigma builds the mixed rule fixture over the order/book/CD
// schemas (the detect-package test fixture, rebuilt here): two CFDs
// and one eCFD on order plus two Figure 4 CINDs.
func serveSigma() []detect.Constraint {
	order := paperdata.OrderSchema()
	book := paperdata.BookSchema()
	cd := paperdata.CDSchema()
	cfds := []*cfd.CFD{
		cfd.MustFD(order, []string{"title"}, []string{"price"}),
		cfd.MustFD(order, []string{"title", "price", "type"}, []string{"asin"}),
	}
	cinds := []*cind.CIND{
		cind.MustNew(order, book,
			[]string{"title", "price"}, []string{"title", "price"},
			[]string{"type"}, nil,
			cind.PatternRow{XpVals: []relation.Value{relation.Str("book")}}),
		cind.MustNew(order, cd,
			[]string{"title", "price"}, []string{"album", "price"},
			[]string{"type"}, nil,
			cind.PatternRow{XpVals: []relation.Value{relation.Str("CD")}}),
	}
	ecfds := []*ecfd.ECFD{
		ecfd.MustNew(order, []string{"type"}, []string{"price"},
			ecfd.Row{LHS: []ecfd.Cell{ecfd.NotIn(relation.Str("book"), relation.Str("CD"))},
				RHS: []ecfd.Cell{ecfd.Any()}}),
	}
	var cs []detect.Constraint
	cs = append(cs, detect.WrapCFDs(cfds)...)
	cs = append(cs, detect.WrapCINDs(cinds)...)
	cs = append(cs, detect.WrapECFDs(ecfds)...)
	return cs
}

// ordersDB is the generated order/book/CD fixture database.
func ordersDB(seed int64, orders int) *relation.Database {
	return gen.Orders(gen.OrdersConfig{
		Books: orders / 8, CDs: orders / 10, Orders: orders,
		Seed: seed, ViolationRate: 0.1,
	})
}

// randomServeOp draws one random mutation over the order/book/CD
// database, generated against the given (shadow) database so service
// and shadow stay TID-aligned. dead tracks TIDs deleted earlier in the
// same not-yet-applied batch.
func randomServeOp(r *rand.Rand, db *relation.Database, fresh *int, dead map[string]map[relation.TID]bool) detect.DBOp {
	pickID := func(rel string) (relation.TID, bool) {
		in := db.MustInstance(rel)
		var ids []relation.TID
		for _, id := range in.IDs() {
			if !dead[rel][id] {
				ids = append(ids, id)
			}
		}
		if len(ids) == 0 {
			return 0, false
		}
		return ids[r.Intn(len(ids))], true
	}
	kill := func(rel string, id relation.TID) detect.DBOp {
		if dead[rel] == nil {
			dead[rel] = make(map[relation.TID]bool)
		}
		dead[rel][id] = true
		return detect.DeleteFrom(rel, id)
	}
	title := func() relation.Value {
		if r.Intn(4) == 0 {
			*fresh++
			return relation.Str(fmt.Sprintf("Fresh Title %d", *fresh))
		}
		return relation.Str(fmt.Sprintf("Book Title %d", r.Intn(40)))
	}
	price := func() relation.Value { return relation.Float(float64(5+r.Intn(8)) + 0.99) }
	switch r.Intn(8) {
	case 0, 1: // order insert
		*fresh++
		return detect.InsertInto("order", relation.Tuple{
			relation.Str(fmt.Sprintf("a%d", *fresh)), title(),
			relation.Str([]string{"book", "CD", "vinyl"}[r.Intn(3)]), price()})
	case 2: // order delete
		if id, ok := pickID("order"); ok {
			return kill("order", id)
		}
		return randomServeOp(r, db, fresh, dead)
	case 3, 4: // order update (title/type/price)
		if id, ok := pickID("order"); ok {
			switch r.Intn(3) {
			case 0:
				return detect.UpdateIn("order", id, 1, title())
			case 1:
				return detect.UpdateIn("order", id, 2, relation.Str([]string{"book", "CD", "vinyl"}[r.Intn(3)]))
			default:
				return detect.UpdateIn("order", id, 3, price())
			}
		}
		return randomServeOp(r, db, fresh, dead)
	case 5: // book churn
		switch r.Intn(3) {
		case 0:
			*fresh++
			return detect.InsertInto("book", relation.Tuple{
				relation.Str(fmt.Sprintf("b%d", *fresh)), title(), price(),
				relation.Str([]string{"hard-cover", "audio"}[r.Intn(2)])})
		case 1:
			if id, ok := pickID("book"); ok {
				return kill("book", id)
			}
		default:
			if id, ok := pickID("book"); ok {
				if r.Intn(2) == 0 {
					return detect.UpdateIn("book", id, 1, title())
				}
				return detect.UpdateIn("book", id, 2, price())
			}
		}
		return randomServeOp(r, db, fresh, dead)
	default: // CD churn
		switch r.Intn(3) {
		case 0:
			*fresh++
			return detect.InsertInto("CD", relation.Tuple{
				relation.Str(fmt.Sprintf("c%d", *fresh)), title(), price(),
				relation.Str([]string{"rock", "jazz"}[r.Intn(2)])})
		case 1:
			if id, ok := pickID("CD"); ok {
				return kill("CD", id)
			}
		default:
			if id, ok := pickID("CD"); ok {
				if r.Intn(2) == 0 {
					return detect.UpdateIn("CD", id, 1, title())
				}
				return detect.UpdateIn("CD", id, 2, price())
			}
		}
		return randomServeOp(r, db, fresh, dead)
	}
}

// applyShadow replicates DBMonitor.Apply's mutation semantics on the
// shadow database: ops in sequence, stop at the first failing op.
func applyShadow(db *relation.Database, ops []detect.DBOp) error {
	for _, op := range ops {
		in, ok := db.Instance(op.Rel)
		if !ok {
			return fmt.Errorf("no relation %q", op.Rel)
		}
		switch op.Op.Kind {
		case detect.OpInsert:
			if _, err := in.Insert(op.Op.Tuple); err != nil {
				return err
			}
		case detect.OpDelete:
			in.Delete(op.Op.TID)
		case detect.OpUpdate:
			if err := in.Update(op.Op.TID, op.Op.Pos, op.Op.Val); err != nil {
				return err
			}
		}
	}
	return nil
}

func mustNew(t *testing.T, cfg Config) *Service {
	t.Helper()
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		svc.Stop(ctx)
	})
	return svc
}

// TestServiceOracle drives randomized batches through Submit and
// asserts, after every commit, that the published violation list is
// byte-identical (and DeepEqual) to a fresh Engine.DetectBatch on an
// equivalent shadow database mutated by the same ops.
func TestServiceOracle(t *testing.T) {
	for _, seed := range []int64{3, 17} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cs := serveSigma()
			db := ordersDB(seed, 400)
			shadow := db.Clone()
			svc := mustNew(t, Config{DB: db, Constraints: cs})
			oracle := detect.New(2)

			r := rand.New(rand.NewSource(seed))
			fresh := 0
			ctx := context.Background()
			for round := 0; round < 30; round++ {
				batch := make([]detect.DBOp, 1+r.Intn(10))
				dead := make(map[string]map[relation.TID]bool)
				for i := range batch {
					batch[i] = randomServeOp(r, shadow, &fresh, dead)
				}
				res, err := svc.Submit(ctx, batch)
				if err != nil {
					t.Fatalf("seed %d round %d: Submit: %v", seed, round, err)
				}
				if err := applyShadow(shadow, batch); err != nil {
					t.Fatalf("seed %d round %d: shadow apply error %v but service accepted", seed, round, err)
				}

				got := svc.Violations()
				want := oracle.DetectBatch(shadow, cs)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("seed %d round %d (seq %d): service has %d violations, fresh DetectBatch on shadow %d:\nservice %v\nfresh   %v",
						seed, round, res.Seq, len(got), len(want), got, want)
				}
				if gotText, wantText := ViolationsText(got), ViolationsText(want); gotText != wantText {
					t.Fatalf("seed %d round %d: text rendering diverged:\n%s\nvs\n%s", seed, round, gotText, wantText)
				}
				if st := svc.State(); st.Seq != res.Seq || len(st.Violations) != len(got) {
					t.Fatalf("seed %d round %d: published state (seq %d, %d violations) behind ack (seq %d, %d)",
						seed, round, st.Seq, len(st.Violations), res.Seq, len(got))
				}
			}
		})
	}
}

// TestSubscribeExactness: a subscriber registered at Seq s receives
// exactly the deltas s+1, s+2, ... and replaying them onto the
// violation list published at s reproduces every later list.
func TestSubscribeExactness(t *testing.T) {
	cs := serveSigma()
	db := ordersDB(5, 300)
	shadow := db.Clone()
	svc := mustNew(t, Config{DB: db, Constraints: cs, SubBuf: 128})

	sub := svc.Subscribe()
	defer sub.Close()
	start := svc.State()
	if sub.Seq() != start.Seq {
		t.Fatalf("subscription seq %d, published %d", sub.Seq(), start.Seq)
	}

	held := make(map[detect.Violation]struct{}, len(start.Violations))
	for _, v := range start.Violations {
		held[v] = struct{}{}
	}

	r := rand.New(rand.NewSource(23))
	fresh := 0
	const rounds = 40
	for round := 0; round < rounds; round++ {
		batch := make([]detect.DBOp, 1+r.Intn(6))
		dead := make(map[string]map[relation.TID]bool)
		for i := range batch {
			batch[i] = randomServeOp(r, shadow, &fresh, dead)
		}
		if _, err := svc.Submit(context.Background(), batch); err != nil {
			t.Fatal(err)
		}
		if err := applyShadow(shadow, batch); err != nil {
			t.Fatal(err)
		}
	}

	for i := 0; i < rounds; i++ {
		select {
		case delta, ok := <-sub.Events():
			if !ok {
				t.Fatalf("stream closed after %d deltas (lost=%v), want %d", i, sub.Lost(), rounds)
			}
			if want := sub.Seq() + uint64(i) + 1; delta.Seq != want {
				t.Fatalf("delta %d has seq %d, want %d", i, delta.Seq, want)
			}
			for _, v := range delta.Cleared {
				if _, ok := held[v]; !ok {
					t.Fatalf("delta %d cleared %v which was not held", i, v)
				}
				delete(held, v)
			}
			for _, v := range delta.Gained {
				if _, ok := held[v]; ok {
					t.Fatalf("delta %d gained %v which was already held", i, v)
				}
				held[v] = struct{}{}
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out waiting for delta %d", i)
		}
	}

	final := svc.Violations()
	if len(held) != len(final) {
		t.Fatalf("replayed set has %d violations, published %d", len(held), len(final))
	}
	for _, v := range final {
		if _, ok := held[v]; !ok {
			t.Fatalf("published violation %v missing from replayed set", v)
		}
	}
}

// TestSlowSubscriberDropped: a subscriber that stops draining past its
// buffer is dropped — channel closed, Lost set — while fast
// subscribers and the writer proceed; resyncing from Violations gives
// the exact current set.
func TestSlowSubscriberDropped(t *testing.T) {
	cs := serveSigma()
	db := ordersDB(9, 200)
	shadow := db.Clone()
	svc := mustNew(t, Config{DB: db, Constraints: cs})

	slow := svc.SubscribeBuf(2) // never drained
	fast := svc.SubscribeBuf(1024)
	done := make(chan int)
	go func() {
		n := 0
		for range fast.Events() {
			n++
		}
		done <- n
	}()

	r := rand.New(rand.NewSource(31))
	fresh := 0
	const rounds = 10
	for round := 0; round < rounds; round++ {
		batch := []detect.DBOp{randomServeOp(r, shadow, &fresh, map[string]map[relation.TID]bool{})}
		if _, err := svc.Submit(context.Background(), batch); err != nil {
			t.Fatal(err)
		}
		if err := applyShadow(shadow, batch); err != nil {
			t.Fatal(err)
		}
	}

	// The slow stream must be closed with Lost set, having delivered at
	// most its buffer.
	n := 0
	for range slow.Events() {
		n++
	}
	if !slow.Lost() {
		t.Fatal("slow subscriber not marked lost")
	}
	if n > 2 {
		t.Fatalf("slow subscriber got %d buffered deltas, cap is 2", n)
	}
	if svc.NumSubscribers() != 1 {
		t.Fatalf("%d subscribers left, want 1 (the fast one)", svc.NumSubscribers())
	}

	// Resync: the published list equals a fresh detection on the shadow.
	want := detect.New(2).DetectBatch(shadow, cs)
	if !reflect.DeepEqual(svc.Violations(), want) {
		t.Fatal("resynced violation list diverges from fresh detection")
	}

	// The fast subscriber saw every commit; an orderly stop closes its
	// stream with Lost unset.
	if err := svc.Stop(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := <-done; got != rounds {
		t.Fatalf("fast subscriber got %d deltas, want %d", got, rounds)
	}
	if fast.Lost() {
		t.Fatal("fast subscriber marked lost on orderly stop")
	}
}

// TestConcurrentReadersRace is the single-writer hand-off assertion,
// meant for -race: readers hammer the published state — full list,
// counts, satisfaction probes on the published snapshot — while the
// writer applies batches. No reader ever touches the monitor or the
// live database.
func TestConcurrentReadersRace(t *testing.T) {
	cs := serveSigma()
	db := ordersDB(13, 300)
	genDB := db.Clone() // op generator source; mutated in lockstep
	svc := mustNew(t, Config{DB: db, Constraints: cs})

	probe := serveSigma() // an independent batch for Check
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := svc.State()
				n := 0
				for _, v := range st.Violations {
					_ = v.String()
					n++
				}
				if c := svc.Counts(); c.Total != len(st.Violations) && c.Seq == st.Seq {
					t.Errorf("counts total %d != %d at seq %d", c.Total, len(st.Violations), st.Seq)
					return
				}
				svc.Check(probe)
			}
		}()
	}

	r := rand.New(rand.NewSource(41))
	fresh := 0
	for round := 0; round < 60; round++ {
		batch := make([]detect.DBOp, 1+r.Intn(8))
		dead := make(map[string]map[relation.TID]bool)
		for i := range batch {
			batch[i] = randomServeOp(r, genDB, &fresh, dead)
		}
		if _, err := svc.Submit(context.Background(), batch); err != nil {
			t.Fatal(err)
		}
		if err := applyShadow(genDB, batch); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	want := detect.New(2).DetectBatch(genDB, cs)
	if !reflect.DeepEqual(svc.Violations(), want) {
		t.Fatal("final violation list diverges from fresh detection")
	}
}

// TestStopDrainsQueue: Stop applies everything already queued before
// the loop exits, and late Submits are rejected with ErrStopped.
func TestStopDrainsQueue(t *testing.T) {
	cs := serveSigma()
	db := ordersDB(19, 200)
	shadow := db.Clone()
	// QueueCap large enough to hold every async batch below.
	svc, err := New(Config{DB: db, Constraints: cs, QueueCap: 64})
	if err != nil {
		t.Fatal(err)
	}

	r := rand.New(rand.NewSource(53))
	fresh := 0
	var batches [][]detect.DBOp
	for i := 0; i < 20; i++ {
		batch := make([]detect.DBOp, 1+r.Intn(4))
		dead := make(map[string]map[relation.TID]bool)
		for j := range batch {
			batch[j] = randomServeOp(r, shadow, &fresh, dead)
		}
		batches = append(batches, batch)
		if err := applyShadow(shadow, batch); err != nil {
			t.Fatal(err)
		}
	}

	// Fire all submits concurrently, then stop while they are in flight.
	var wg sync.WaitGroup
	errs := make([]error, len(batches))
	for i, batch := range batches {
		wg.Add(1)
		go func(i int, ops []detect.DBOp) {
			defer wg.Done()
			_, errs[i] = svc.Submit(context.Background(), ops)
		}(i, batch)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := svc.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	applied := 0
	for _, err := range errs {
		if err == nil {
			applied++
		} else if err != ErrStopped {
			t.Fatalf("Submit error %v, want nil or ErrStopped", err)
		}
	}
	// Every acked batch was applied; the service's final set must match
	// a fresh detection over its own database (batch order may differ
	// from the shadow's, so compare against the service's db directly —
	// safe now: the writer has exited).
	want := detect.New(2).DetectBatch(db, cs)
	if !reflect.DeepEqual(svc.Violations(), want) {
		t.Fatalf("final violation list diverges from fresh detection (%d batches applied)", applied)
	}

	if _, err := svc.Submit(context.Background(), batches[0]); err != ErrStopped {
		t.Fatalf("Submit after Stop = %v, want ErrStopped", err)
	}
	// A subscription on a stopped service is born closed.
	sub := svc.Subscribe()
	if _, ok := <-sub.Events(); ok {
		t.Fatal("subscription on stopped service delivered a delta")
	}
}

// TestCoalescing: concurrent Submits can share one commit; every ack
// carries that commit's seq and the published state is consistent.
func TestCoalescing(t *testing.T) {
	cs := serveSigma()
	db := ordersDB(29, 200)
	shadow := db.Clone()
	svc := mustNew(t, Config{DB: db, Constraints: cs, QueueCap: 64})

	r := rand.New(rand.NewSource(71))
	fresh := 0
	var batches [][]detect.DBOp
	for i := 0; i < 30; i++ {
		batch := make([]detect.DBOp, 1+r.Intn(3))
		dead := make(map[string]map[relation.TID]bool)
		for j := range batch {
			batch[j] = randomServeOp(r, shadow, &fresh, dead)
		}
		batches = append(batches, batch)
		if err := applyShadow(shadow, batch); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for _, batch := range batches {
		wg.Add(1)
		go func(ops []detect.DBOp) {
			defer wg.Done()
			if _, err := svc.Submit(context.Background(), ops); err != nil {
				t.Errorf("Submit: %v", err)
			}
		}(batch)
	}
	wg.Wait()

	st := svc.State()
	if st.Seq > uint64(len(batches)) {
		t.Fatalf("%d commits for %d batches: coalescing never happened under max contention is fine, but seq must not exceed batch count", st.Seq, len(batches))
	}
	want := detect.New(2).DetectBatch(db, cs)
	if !reflect.DeepEqual(svc.Violations(), want) {
		t.Fatal("post-coalescing violation list diverges from fresh detection")
	}
	if st.Ops == 0 {
		t.Fatal("no ops recorded")
	}
}

// TestSubmitOpError: a request with an invalid op is rejected upfront
// with a structured *OpError naming the op index and reason, nothing of
// it is applied (not even the valid prefix), and the published state is
// untouched.
func TestSubmitOpError(t *testing.T) {
	cs := serveSigma()
	db := ordersDB(37, 100)
	svc := mustNew(t, Config{DB: db, Constraints: cs})
	seq0 := svc.State().Seq

	bad := []detect.DBOp{
		detect.InsertInto("order", relation.Tuple{
			relation.Str("aX"), relation.Str("Fresh Title X"), relation.Str("book"), relation.Float(9.99)}),
		detect.UpdateIn("order", relation.TID(1_000_000), 1, relation.Str("nope")), // missing TID
		detect.InsertInto("order", relation.Tuple{
			relation.Str("aY"), relation.Str("Fresh Title Y"), relation.Str("book"), relation.Float(9.99)}),
	}
	res, err := svc.Submit(context.Background(), bad)
	if err == nil {
		t.Fatal("Submit with an invalid op succeeded")
	}
	var oe *OpError
	if !errors.As(err, &oe) {
		t.Fatalf("err = %v (%T), want *OpError", err, err)
	}
	if oe.Index != 1 {
		t.Fatalf("OpError.Index = %d, want 1 (the bad update)", oe.Index)
	}
	if res.Err == nil {
		t.Fatal("Result.Err unset on op error")
	}
	if res.Seq != seq0 {
		t.Fatalf("rejected request acknowledged at seq %d, want unchanged tip %d", res.Seq, seq0)
	}
	// Nothing was applied: the service still matches a fresh detection
	// of the untouched database, and the counters never moved.
	want := detect.New(2).DetectBatch(db, cs)
	if !reflect.DeepEqual(svc.Violations(), want) {
		t.Fatal("violation list diverges after rejected request")
	}
	st := svc.State()
	if st.Seq != seq0 || st.Ops != 0 || st.Errs != 0 {
		t.Fatalf("state moved on a rejected request: seq=%d ops=%d errs=%d", st.Seq, st.Ops, st.Errs)
	}

	// A valid request right after still commits normally.
	good := []detect.DBOp{detect.InsertInto("order", relation.Tuple{
		relation.Str("aZ"), relation.Str("Fresh Title Z"), relation.Str("book"), relation.Float(9.99)})}
	if _, err := svc.Submit(context.Background(), good); err != nil {
		t.Fatalf("valid submit after rejection: %v", err)
	}
	if got := svc.State().Seq; got != seq0+1 {
		t.Fatalf("seq after valid submit = %d, want %d", got, seq0+1)
	}
}

// TestCounts cross-checks the aggregation against the raw list.
func TestCounts(t *testing.T) {
	cs := serveSigma()
	db := ordersDB(43, 300)
	svc := mustNew(t, Config{DB: db, Constraints: cs})

	c := svc.Counts()
	vs := svc.Violations()
	if c.Total != len(vs) {
		t.Fatalf("Total = %d, want %d", c.Total, len(vs))
	}
	byClass := 0
	for _, n := range c.ByClass {
		byClass += n
	}
	if byClass != c.Total {
		t.Fatalf("class counts sum to %d, want %d", byClass, c.Total)
	}
	byRule := 0
	for _, cc := range c.ByConstraint {
		byRule += cc.Count
	}
	if byRule != c.Total {
		t.Fatalf("constraint counts sum to %d, want %d", byRule, c.Total)
	}
	if len(c.ByConstraint) != len(cs) {
		t.Fatalf("%d constraint rows, want %d", len(c.ByConstraint), len(cs))
	}
}
