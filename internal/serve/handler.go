package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/cfd"
	"repro/internal/cind"
	"repro/internal/detect"
	"repro/internal/ecfd"
	"repro/internal/obs"
	"repro/internal/oplog"
	"repro/internal/relation"
)

// Handler is the HTTP/JSON front end cmd/dqserve mounts:
//
//	POST /batch       ingest an op-log stream (internal/oplog wire
//	                  format); each commit becomes one Submit
//	GET  /violations  the full published violation list (JSON, or one
//	                  String() per line with ?format=text)
//	GET  /stats       counters, per-class/-relation/-constraint counts
//	GET  /stream      Server-Sent Events of per-commit gained/cleared
//	                  deltas; a dropped slow consumer gets a final
//	                  "resync" event
//	POST /check       SatisfiesBatch probe: rule texts evaluated
//	                  against the published snapshot
//	GET  /healthz     liveness
//	GET  /metrics     Prometheus text exposition (404 when the service
//	                  was built without an ObsConfig)
//	GET  /trends      per-constraint violation time series, change
//	                  points and window rates (?points=N caps points)
//
// Every read is served off the immutable published State; only POST
// /batch talks to the single-writer ingest loop.
type Handler struct {
	Svc *Service
	// OnEvent, when non-nil, runs after each SSE event is written and
	// flushed — a test seam: blocking here models a consumer that has
	// stopped draining its stream.
	OnEvent func(event string)
	// MaxBatchBytes overrides the POST /batch body cap (default
	// DefaultMaxBatchBytes). A body over the cap is rejected with 413.
	MaxBatchBytes int64

	mux *http.ServeMux
}

// NewHandler mounts the endpoints for a service.
func NewHandler(svc *Service) *Handler {
	h := &Handler{Svc: svc}
	h.mux = http.NewServeMux()
	h.mux.HandleFunc("POST /batch", h.handleBatch)
	h.mux.HandleFunc("GET /violations", h.handleViolations)
	h.mux.HandleFunc("GET /stats", h.handleStats)
	h.mux.HandleFunc("GET /stream", h.handleStream)
	h.mux.HandleFunc("POST /check", h.handleCheck)
	h.mux.HandleFunc("GET /healthz", h.handleHealthz)
	h.mux.HandleFunc("GET /metrics", h.handleMetrics)
	h.mux.HandleFunc("GET /trends", h.handleTrends)
	return h
}

func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) { h.mux.ServeHTTP(w, r) }

// writeJSON renders one response object.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// Request body ceilings: an op-log ingest is bounded ops, not a bulk
// load (use the CSV loading path for that); a rule probe is a rule
// file.
const (
	// DefaultMaxBatchBytes is the POST /batch body cap when
	// Handler.MaxBatchBytes is unset.
	DefaultMaxBatchBytes = 64 << 20

	maxCheckBytes = 1 << 20
)

// handleBatch ingests an op-log stream: parse it all first (a syntax
// error rejects the whole request with its line position, before any
// mutation), then Submit each commit batch in order and wait for the
// acks.
func (h *Handler) handleBatch(w http.ResponseWriter, r *http.Request) {
	maxBody := h.MaxBatchBytes
	if maxBody <= 0 {
		maxBody = DefaultMaxBatchBytes
	}
	batches, err := oplog.Parse(http.MaxBytesReader(w, r.Body, maxBody), h.Svc.Schemas())
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			// The cap tripped mid-read: the client sent more than the
			// server will buffer for one ingest. 413, not 400 — the stream
			// may be perfectly well-formed, just too large.
			writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", mbe.Limit)
			return
		}
		var se *oplog.SyntaxError
		if errors.As(err, &se) {
			writeJSON(w, http.StatusBadRequest, map[string]any{
				"error": se.Err.Error(),
				"line":  se.Line,
			})
			return
		}
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp := struct {
		Seq     uint64 `json:"seq"`
		Batches int    `json:"batches"`
		Ops     int    `json:"ops"`
		Gained  int    `json:"gained"`
		Cleared int    `json:"cleared"`
		Error   string `json:"error,omitempty"`
	}{Seq: h.Svc.State().Seq}
	for _, batch := range batches {
		res, err := h.Svc.Submit(r.Context(), batch)
		var oe *OpError
		if errors.As(err, &oe) {
			// The request failed validation: nothing of this batch was
			// applied (the earlier batches' commits stand) and the service
			// state is untouched. 400 with the op position and reason.
			writeJSON(w, http.StatusBadRequest, map[string]any{
				"error": oe.Reason,
				"op":    oe.Index,
				"batch": resp.Batches, // index of the rejected batch in the stream
				"seq":   resp.Seq,
			})
			return
		}
		if errors.Is(err, ErrReadOnly) {
			// Degraded: writes refused, reads still served. Structured
			// reason so clients and probes can tell this from overload.
			hs, reason := h.Svc.Health()
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{
				"error":  "service is read-only",
				"status": hs.String(),
				"reason": reason,
			})
			return
		}
		if errors.Is(err, ErrStopped) {
			writeError(w, http.StatusServiceUnavailable, "service stopping")
			return
		}
		if errors.Is(err, ErrBusy) || errors.Is(err, ErrWAL) {
			// Overload or a durability failure: the client should back off
			// and retry (against this process for ErrBusy, against the
			// restarted one for ErrWAL — either way reads keep working).
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, "%v", err)
			return
		}
		if err != nil && res.Err == nil {
			// Not a commit verdict but a transport condition (the request
			// context was cancelled before the ack): the batch may or may
			// not still be applied, and the client is gone — don't count
			// it, don't dress it up as an op conflict.
			return
		}
		resp.Seq = res.Seq
		resp.Batches++
		resp.Ops += len(batch)
		resp.Gained += res.Gained
		resp.Cleared += res.Cleared
		if err != nil {
			// An op error: the batch's applied prefix stands and the
			// service stayed consistent, but the client's stream was not
			// applied in full — stop here and say so.
			resp.Error = err.Error()
			writeJSON(w, http.StatusConflict, resp)
			return
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// violationJSON is one violation on the wire.
type violationJSON struct {
	Class string        `json:"class"`
	Rule  string        `json:"rule"`
	Rel   string        `json:"rel"`
	Row   int           `json:"row"`
	T1    relation.TID  `json:"t1"`
	T2    *relation.TID `json:"t2,omitempty"`
	Attr  string        `json:"attr,omitempty"`
	Text  string        `json:"text"`
}

func violationWire(v detect.Violation) violationJSON {
	out := violationJSON{
		Class: detect.ClassOf(v).String(),
		Rule:  ruleText(detect.DepOf(v)),
		Rel:   detect.RelationOf(v),
		Text:  v.String(),
	}
	switch v := v.(type) {
	case cfd.Violation:
		out.Row, out.T1, out.Attr = v.Row, v.T1, v.CFD.Schema().Attr(v.Attr).Name
		t2 := v.T2
		out.T2 = &t2
	case cind.Violation:
		out.Row, out.T1 = v.Row, v.TID
	case ecfd.Violation:
		out.Row, out.T1, out.Attr = v.Row, v.T1, v.ECFD.Schema().Attr(v.Attr).Name
		t2 := v.T2
		out.T2 = &t2
	}
	return out
}

// primaryTID extracts the violation's primary-relation tuple — the TID
// shard placement is accounted by.
func primaryTID(v detect.Violation) relation.TID {
	switch v := v.(type) {
	case cfd.Violation:
		return v.T1
	case cind.Violation:
		return v.TID
	case ecfd.Violation:
		return v.T1
	}
	return 0
}

func violationsWire(vs []detect.Violation) []violationJSON {
	out := make([]violationJSON, len(vs))
	for i, v := range vs {
		out[i] = violationWire(v)
	}
	return out
}

// ViolationsText renders a violation list as the canonical plain-text
// report: one String() per line. GET /violations?format=text returns
// exactly these bytes, which is what the oracle tests compare against
// a fresh Engine.DetectBatch.
func ViolationsText(vs []detect.Violation) string {
	var b strings.Builder
	for _, v := range vs {
		b.WriteString(v.String())
		b.WriteByte('\n')
	}
	return b.String()
}

func (h *Handler) handleViolations(w http.ResponseWriter, r *http.Request) {
	st := h.Svc.State()
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, ViolationsText(st.Violations))
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Seq        uint64          `json:"seq"`
		Total      int             `json:"total"`
		Violations []violationJSON `json:"violations"`
	}{st.Seq, len(st.Violations), violationsWire(st.Violations)})
}

// shardStatsJSON is one shard's slice of /stats: its tuple count
// (summed over relations), its violation count (violations whose
// primary tuple it holds), and the ops in flight to its writer.
type shardStatsJSON struct {
	Shard      int `json:"shard"`
	Tuples     int `json:"tuples"`
	Violations int `json:"violations"`
	QueueDepth int `json:"queueDepth"`
}

// shardStatsFor assembles the per-shard section from an immutable
// State: tuples from the published shard snapshots, violations from
// the sequencer's tally, queue depths from the writer gauges.
func (h *Handler) shardStatsFor(st *State) []shardStatsJSON {
	if st.Shards == nil {
		return nil
	}
	depths := h.Svc.ShardQueueDepths()
	out := make([]shardStatsJSON, len(st.Shards))
	for i, ds := range st.Shards {
		out[i].Shard = i
		for _, name := range ds.Names() {
			if snap, ok := ds.Snapshot(name); ok {
				out[i].Tuples += snap.Len()
			}
		}
		if i < len(st.ShardViolations) {
			out[i].Violations = st.ShardViolations[i]
		}
		if i < len(depths) {
			out[i].QueueDepth = depths[i]
		}
	}
	return out
}

func (h *Handler) handleStats(w http.ResponseWriter, r *http.Request) {
	st := h.Svc.State()
	relations := make(map[string]int)
	if st.Snapshot != nil {
		for _, name := range st.Snapshot.Names() {
			if snap, ok := st.Snapshot.Snapshot(name); ok {
				relations[name] = snap.Len()
			}
		}
	} else {
		for _, ds := range st.Shards {
			for _, name := range ds.Names() {
				if snap, ok := ds.Snapshot(name); ok {
					relations[name] += snap.Len()
				}
			}
		}
	}
	var durability *DurabilityStats
	if ds, ok := h.Svc.Durability(); ok {
		durability = &ds
	}
	writeJSON(w, http.StatusOK, struct {
		Seq           uint64           `json:"seq"`
		UptimeSeconds float64          `json:"uptimeSeconds"`
		Relations     map[string]int   `json:"relations"`
		Constraints   int              `json:"constraints"`
		Violations    int              `json:"violations"`
		Ops           uint64           `json:"ops"`
		Gained        uint64           `json:"gained"`
		Cleared       uint64           `json:"cleared"`
		Errors        uint64           `json:"errors"`
		FullSyncs     int              `json:"fullSyncs"`
		Subscribers   int              `json:"subscribers"`
		QueueDepth    int              `json:"queueDepth"`
		QueueCap      int              `json:"queueCap"`
		ShardCount    int              `json:"shardCount"`
		Shards        []shardStatsJSON `json:"shards,omitempty"`
		Durability    *DurabilityStats `json:"durability,omitempty"`
		Counts        Counts           `json:"counts"`
	}{
		Seq:           st.Seq,
		UptimeSeconds: h.Svc.Uptime().Seconds(),
		Relations:     relations,
		Constraints:   len(h.Svc.Constraints()),
		Violations:    len(st.Violations),
		Ops:           st.Ops,
		Gained:        st.Gained,
		Cleared:       st.Cleared,
		Errors:        st.Errs,
		FullSyncs:     st.FullSyncs,
		Subscribers:   h.Svc.NumSubscribers(),
		QueueDepth:    h.Svc.QueueDepth(),
		QueueCap:      h.Svc.QueueCap(),
		ShardCount:    h.Svc.Shards(),
		Shards:        h.shardStatsFor(st),
		Durability:    durability,
		Counts:        h.Svc.countsFor(st), // same State as the top-level fields
	})
}

// deltaJSON is one commit's diff on the SSE wire.
type deltaJSON struct {
	Seq     uint64          `json:"seq"`
	Gained  []violationJSON `json:"gained"`
	Cleared []violationJSON `json:"cleared"`
}

// handleStream serves the delta subscription as Server-Sent Events:
// a "hello" event naming the subscription Seq (the client's resync
// anchor: GET /violations at or after that Seq plus the deltas
// reconstructs every later state), then one "delta" event per commit.
// A consumer that falls behind the channel buffer is dropped by the
// ingest loop and gets a terminal "resync" event: reconnect and
// re-read /violations.
func (h *Handler) handleStream(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	sub := h.Svc.Subscribe()
	defer sub.Close()

	// The server's global Read/Write timeouts are sized for one-shot
	// requests; an SSE stream is long-lived by design. Clear the
	// per-connection deadlines for this response only (best-effort: a
	// middleware wrapper without the controller seam keeps the global
	// policy).
	rc := http.NewResponseController(w)
	rc.SetReadDeadline(time.Time{})
	rc.SetWriteDeadline(time.Time{})

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	writeEvent := func(event string, payload any) bool {
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		enc.SetEscapeHTML(false)
		if err := enc.Encode(payload); err != nil {
			return false
		}
		data := bytes.TrimSuffix(buf.Bytes(), []byte("\n"))
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data); err != nil {
			return false
		}
		flusher.Flush()
		if h.OnEvent != nil {
			h.OnEvent(event)
		}
		return true
	}

	if !writeEvent("hello", map[string]uint64{"seq": sub.Seq()}) {
		return
	}
	for {
		select {
		case delta, ok := <-sub.Events():
			if !ok {
				if sub.Lost() {
					writeEvent("resync", map[string]any{
						"seq":    h.Svc.State().Seq,
						"reason": "slow consumer: delta buffer overflowed",
					})
				}
				return
			}
			if !writeEvent("delta", deltaJSON{
				Seq:     delta.Seq,
				Gained:  violationsWire(delta.Gained),
				Cleared: violationsWire(delta.Cleared),
			}) {
				return
			}
			// Change-point alerts ride the same commit's Delta; emit them
			// after the delta event so a consumer sees the diff that fired
			// the alert before the alert itself.
			for _, a := range delta.Alerts {
				if !writeEvent("alert", a) {
					return
				}
			}
		case <-r.Context().Done():
			return
		}
	}
}

// checkRequest carries rule-file texts for a satisfaction probe.
type checkRequest struct {
	CFDs  string `json:"cfds,omitempty"`
	CINDs string `json:"cinds,omitempty"`
	ECFDs string `json:"ecfds,omitempty"`
}

// handleCheck parses the posted rules against the served schemas and
// evaluates them on the published snapshot — a read: it never touches
// the live database or the ingest loop.
func (h *Handler) handleCheck(w http.ResponseWriter, r *http.Request) {
	var req checkRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxCheckBytes)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	schemas := h.Svc.Schemas()
	var cs []detect.Constraint
	if req.CFDs != "" {
		rules, err := cfd.Parse(strings.NewReader(req.CFDs), schemas)
		if err != nil {
			writeError(w, http.StatusBadRequest, "cfds: %v", err)
			return
		}
		cs = append(cs, detect.WrapCFDs(rules)...)
	}
	if req.CINDs != "" {
		rules, err := cind.Parse(strings.NewReader(req.CINDs), schemas)
		if err != nil {
			writeError(w, http.StatusBadRequest, "cinds: %v", err)
			return
		}
		cs = append(cs, detect.WrapCINDs(rules)...)
	}
	if req.ECFDs != "" {
		rules, err := ecfd.Parse(strings.NewReader(req.ECFDs), schemas)
		if err != nil {
			writeError(w, http.StatusBadRequest, "ecfds: %v", err)
			return
		}
		cs = append(cs, detect.WrapECFDs(rules)...)
	}
	if len(cs) == 0 {
		writeError(w, http.StatusBadRequest, "no rules in request")
		return
	}
	seq, ok, err := h.Svc.CheckContext(r.Context(), cs)
	if err != nil {
		if r.Context().Err() != nil {
			return // client gone: the gather was cancelled, nobody is reading
		}
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Seq       uint64 `json:"seq"`
		Rules     int    `json:"rules"`
		Satisfied bool   `json:"satisfied"`
	}{seq, len(cs), ok})
}

// handleHealthz reports the health state machine: "ok" while writes
// are accepted, "read-only" (still 200 — reads work, probes must not
// kill the process over a degraded disk) once durability failed, and
// "broken" with 503 once the ingest loop is gone and a restart is the
// only way forward.
func (h *Handler) handleHealthz(w http.ResponseWriter, r *http.Request) {
	hs, reason := h.Svc.Health()
	status := http.StatusOK
	if hs == Broken {
		status = http.StatusServiceUnavailable
	}
	st := h.Svc.State()
	resp := struct {
		Status   string `json:"status"`
		Writable bool   `json:"writable"`
		Reason   string `json:"reason,omitempty"`
		Seq      uint64 `json:"seq"`
		Shards   int    `json:"shards"`
		// Durable services only: how far the WAL tail has grown past the
		// last checkpoint — the replay cost a restart would pay right now.
		CheckpointLagSeqs *uint64 `json:"checkpointLagSeqs,omitempty"`
		WALBytes          *int64  `json:"walBytes,omitempty"`
	}{Status: hs.String(), Writable: hs == Healthy, Reason: reason,
		Seq: st.Seq, Shards: h.Svc.Shards()}
	if ds, ok := h.Svc.Durability(); ok {
		lag := st.Seq - ds.LastCheckpointSeq
		resp.CheckpointLagSeqs = &lag
		resp.WALBytes = &ds.WAL.Bytes
	}
	writeJSON(w, status, resp)
}

// handleMetrics serves the observability registry in Prometheus text
// exposition format. A service built without an ObsConfig has nothing
// to scrape: 404, so a scraper config error is loud rather than an
// empty-but-200 page.
func (h *Handler) handleMetrics(w http.ResponseWriter, r *http.Request) {
	reg := h.Svc.Metrics()
	if reg == nil {
		writeError(w, http.StatusNotFound, "observability disabled: service built without ObsConfig")
		return
	}
	reg.Handler().ServeHTTP(w, r)
}

// handleTrends serves the quality analytics: one entry per constraint
// with its violation-count time series, detected change points and
// sliding-window rates. ?points=N caps the points per constraint
// (default 128, 0 or "all" returns the whole ring).
func (h *Handler) handleTrends(w http.ResponseWriter, r *http.Request) {
	if h.Svc.Metrics() == nil {
		writeError(w, http.StatusNotFound, "observability disabled: service built without ObsConfig")
		return
	}
	points := 128
	if q := r.URL.Query().Get("points"); q != "" {
		if q == "all" {
			points = 0
		} else {
			n, err := strconv.Atoi(q)
			if err != nil || n < 0 {
				writeError(w, http.StatusBadRequest, "bad points=%q: want a non-negative integer or \"all\"", q)
				return
			}
			points = n
		}
	}
	trends := h.Svc.Trends(points)
	changePoints := 0
	for _, tr := range trends {
		changePoints += len(tr.ChangePoints)
	}
	writeJSON(w, http.StatusOK, struct {
		Seq           uint64      `json:"seq"`
		UptimeSeconds float64     `json:"uptimeSeconds"`
		ChangePoints  int         `json:"changePoints"`
		Trends        []obs.Trend `json:"trends"`
	}{h.Svc.State().Seq, h.Svc.Uptime().Seconds(), changePoints, trends})
}
