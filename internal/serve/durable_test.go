package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/detect"
	"repro/internal/relation"
)

// driveBatches submits n deterministic random batches, mirroring each
// onto the shadow database after its ack, and returns the last acked
// seq. Submissions are sequential, so each batch is one commit.
func driveBatches(t *testing.T, svc *Service, shadow *relation.Database, r *rand.Rand, fresh *int, n int) uint64 {
	t.Helper()
	ctx := context.Background()
	var last uint64
	for i := 0; i < n; i++ {
		dead := map[string]map[relation.TID]bool{}
		nops := 1 + r.Intn(4)
		ops := make([]detect.DBOp, 0, nops)
		for j := 0; j < nops; j++ {
			ops = append(ops, randomServeOp(r, shadow, fresh, dead))
		}
		res, err := svc.Submit(ctx, ops)
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		last = res.Seq
		if err := applyShadow(shadow, ops); err != nil {
			t.Fatalf("batch %d: shadow: %v", i, err)
		}
	}
	return last
}

func mustStop(t *testing.T, svc *Service) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := svc.Stop(ctx); err != nil {
		t.Fatalf("Stop: %v", err)
	}
}

// TestDurableRestart: a durable service stopped and reopened over the
// same data directory recovers the exact acknowledged state — same
// Seq, byte-identical violations — and stays live and TID-aligned for
// further commits.
func TestDurableRestart(t *testing.T) {
	cs := serveSigma()
	dir := t.TempDir()
	db := ordersDB(7, 150)
	shadow := db.Clone()
	svc := mustNew(t, Config{DB: db, Constraints: cs,
		Durable: &DurableConfig{Dir: dir, CheckpointEvery: 7}})
	r := rand.New(rand.NewSource(99))
	fresh := 0
	last := driveBatches(t, svc, shadow, r, &fresh, 40)
	wantSeq := svc.State().Seq
	if wantSeq != last {
		t.Fatalf("published Seq %d, last ack %d", wantSeq, last)
	}
	wantText := ViolationsText(svc.Violations())
	mustStop(t, svc)

	// Restart: Config.DB only supplies the schemas.
	svc2 := mustNew(t, Config{DB: ordersDB(7, 0), Constraints: cs,
		Durable: &DurableConfig{Dir: dir}})
	if got := svc2.State().Seq; got != wantSeq {
		t.Fatalf("recovered Seq %d, want %d", got, wantSeq)
	}
	if got := ViolationsText(svc2.Violations()); got != wantText {
		t.Fatalf("recovered violations diverge:\n got: %q\nwant: %q", got, wantText)
	}
	// Live and TID-aligned: the same ops against the shadow produce the
	// same violation set a fresh full detection computes.
	driveBatches(t, svc2, shadow, r, &fresh, 5)
	oracle := detect.New(2)
	if got, want := ViolationsText(svc2.Violations()), ViolationsText(oracle.DetectBatch(shadow, cs)); got != want {
		t.Fatalf("post-recovery commits diverge from shadow detection:\n got: %q\nwant: %q", got, want)
	}
}

// TestDurableRestartSharded runs the restart cycle with the
// scatter-gather paths: sharded service, group-commit window, sharded
// recovery replay.
func TestDurableRestartSharded(t *testing.T) {
	cs := shardableServeSigma()
	dir := t.TempDir()
	db := ordersDB(5, 120)
	shadow := db.Clone()
	svc := mustNew(t, Config{DB: db, Constraints: cs, Shards: 2,
		Durable: &DurableConfig{Dir: dir, SyncEvery: 8, SyncInterval: time.Millisecond, CheckpointEvery: 9}})
	r := rand.New(rand.NewSource(23))
	fresh := 0
	driveBatches(t, svc, shadow, r, &fresh, 30)
	wantSeq := svc.State().Seq
	wantText := ViolationsText(svc.Violations())
	mustStop(t, svc)

	svc2 := mustNew(t, Config{DB: ordersDB(5, 0), Constraints: cs, Shards: 2,
		Durable: &DurableConfig{Dir: dir}})
	if got := svc2.State().Seq; got != wantSeq {
		t.Fatalf("recovered Seq %d, want %d", got, wantSeq)
	}
	if got := ViolationsText(svc2.Violations()); got != wantText {
		t.Fatalf("sharded recovery diverges:\n got: %q\nwant: %q", got, wantText)
	}
	driveBatches(t, svc2, shadow, r, &fresh, 5)
	oracle := detect.New(2)
	if got, want := ViolationsText(svc2.Violations()), ViolationsText(oracle.DetectBatch(shadow, cs)); got != want {
		t.Fatalf("post-recovery sharded commits diverge:\n got: %q\nwant: %q", got, want)
	}
}

// TestDurableGroupCommitConcurrent: concurrent submitters under a wide
// group-commit window all get acked (the idle flush and the interval
// tick release held commits), and a restart reproduces the exact
// published state even when one WAL record carries several coalesced
// requests.
func TestDurableGroupCommitConcurrent(t *testing.T) {
	cs := serveSigma()
	dir := t.TempDir()
	svc := mustNew(t, Config{DB: ordersDB(13, 80), Constraints: cs,
		Durable: &DurableConfig{Dir: dir, SyncEvery: 16, SyncInterval: 2 * time.Millisecond, CheckpointEvery: -1}})
	ctx := context.Background()
	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				ops := []detect.DBOp{detect.InsertInto("order", relation.Tuple{
					relation.Str(fmt.Sprintf("gc%d-%d", g, i)),
					relation.Str(fmt.Sprintf("Book Title %d", (g*20+i)%13)),
					relation.Str("book"),
					relation.Float(float64(5+i%8) + 0.99),
				})}
				if _, err := svc.Submit(ctx, ops); err != nil {
					errCh <- fmt.Errorf("submitter %d batch %d: %v", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	wantSeq := svc.State().Seq
	wantText := ViolationsText(svc.Violations())
	if ops := svc.State().Ops; ops != 80 {
		t.Fatalf("published Ops %d, want 80", ops)
	}
	mustStop(t, svc)

	// Checkpointing was disabled, so the WAL holds only the deltas: the
	// restart supplies the same base database the first boot started
	// from (regenerated — the seed is deterministic).
	svc2 := mustNew(t, Config{DB: ordersDB(13, 80), Constraints: cs,
		Durable: &DurableConfig{Dir: dir}})
	if got := svc2.State().Seq; got != wantSeq {
		t.Fatalf("recovered Seq %d, want %d", got, wantSeq)
	}
	if got := ViolationsText(svc2.Violations()); got != wantText {
		t.Fatalf("group-commit recovery diverges")
	}
}

// flakyWriter is the fault-injection seam for hard WAL failures: after
// the byte budget is spent, every write errors.
type flakyWriter struct{ budget int }

func (f *flakyWriter) wrap(w io.Writer) io.Writer { return &flakyW{f: f, w: w} }

type flakyW struct {
	f *flakyWriter
	w io.Writer
}

func (fw *flakyW) Write(p []byte) (int, error) {
	if fw.f.budget < len(p) {
		return 0, errors.New("injected write failure")
	}
	fw.f.budget -= len(p)
	return fw.w.Write(p)
}

// TestDurableWALFailure: when the log stops taking writes, commits are
// rejected with ErrWAL without being applied, reads keep serving the
// published state, and the HTTP front end degrades to 503 +
// Retry-After.
func TestDurableWALFailure(t *testing.T) {
	cs := serveSigma()
	dir := t.TempDir()
	fw := &flakyWriter{budget: 300}
	svc := mustNew(t, Config{DB: ordersDB(3, 60), Constraints: cs,
		Durable: &DurableConfig{Dir: dir, CheckpointEvery: -1, Wrap: fw.wrap}})
	ctx := context.Background()
	op := func(i int) []detect.DBOp {
		return []detect.DBOp{detect.InsertInto("order", relation.Tuple{
			relation.Str(fmt.Sprintf("wf%d", i)), relation.Str("Book Title 1"),
			relation.Str("book"), relation.Float(7.99)})}
	}
	acked, failed := 0, 0
	var firstErr error
	for i := 0; i < 20; i++ {
		res, err := svc.Submit(ctx, op(i))
		if err == nil {
			acked++
			continue
		}
		failed++
		if firstErr == nil {
			firstErr = err
		}
		if !errors.Is(err, ErrWAL) {
			t.Fatalf("batch %d: err = %v, want ErrWAL", i, err)
		}
		if res.Seq != svc.State().Seq {
			t.Fatalf("rejected batch acked at seq %d, published %d", res.Seq, svc.State().Seq)
		}
	}
	if acked == 0 || failed == 0 {
		t.Fatalf("want both acks and failures, got %d acks, %d failures (budget wrong?)", acked, failed)
	}
	// A rejected commit was not applied: the published state counts
	// exactly the acked inserts.
	if got := svc.State().Ops; got != uint64(acked) {
		t.Fatalf("published Ops %d, want %d (rejected commits must not apply)", got, acked)
	}
	// Reads still serve, and POST /batch maps the failure to a 503 with
	// Retry-After.
	_ = svc.Violations()
	h := NewHandler(svc)
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/batch",
		strings.NewReader("insert order wfx,Book Title 2,book,8.99\ncommit\n"))
	h.ServeHTTP(rec, req)
	if rec.Code != 503 {
		t.Fatalf("POST /batch with broken WAL = %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("503 response missing Retry-After")
	}
}

// discardWriter simulates kill -9 at byte N: the first budget bytes
// reach the file, everything after is silently dropped while the
// writer keeps reporting success — the service acks commits whose
// frames never landed, exactly what a crash between write and ack
// looks like to the recovering process.
type discardWriter struct{ budget int }

func (d *discardWriter) wrap(w io.Writer) io.Writer { return &discardW{d: d, w: w} }

type discardW struct {
	d *discardWriter
	w io.Writer
}

func (dw *discardW) Write(p []byte) (int, error) {
	if dw.d.budget > 0 {
		k := len(p)
		if k > dw.d.budget {
			k = dw.d.budget
		}
		if _, err := dw.w.Write(p[:k]); err != nil {
			return 0, err
		}
		dw.d.budget -= k
	}
	return len(p), nil
}

// TestDurableCrashTornTail: recovery from a log whose tail is torn
// mid-frame lands on the longest persisted prefix, byte-identical to
// the uninterrupted run at that seq. Checkpointing is disabled so the
// final Stop cannot paper over the torn tail.
func TestDurableCrashTornTail(t *testing.T) {
	cs := serveSigma()
	dir := t.TempDir()
	db := ordersDB(11, 100)
	shadow := db.Clone()
	m := detect.NewDBMonitor(nil, shadow, cs)
	dw := &discardWriter{budget: 2500}
	svc := mustNew(t, Config{DB: db, Constraints: cs,
		Durable: &DurableConfig{Dir: dir, CheckpointEvery: -1, Wrap: dw.wrap}})
	ctx := context.Background()
	r := rand.New(rand.NewSource(31))
	fresh := 0
	const rounds = 30
	texts := []string{ViolationsText(m.Violations())} // texts[seq]
	for i := 0; i < rounds; i++ {
		dead := map[string]map[relation.TID]bool{}
		nops := 1 + r.Intn(4)
		ops := make([]detect.DBOp, 0, nops)
		for j := 0; j < nops; j++ {
			ops = append(ops, randomServeOp(r, shadow, &fresh, dead))
		}
		if _, err := svc.Submit(ctx, ops); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if _, _, err := m.Apply(ops); err != nil {
			t.Fatalf("batch %d: shadow: %v", i, err)
		}
		texts = append(texts, ViolationsText(m.Violations()))
	}
	mustStop(t, svc)

	// No checkpoint exists (disabled), so the restart supplies the same
	// base database and the WAL prefix replays on top of it.
	svc2 := mustNew(t, Config{DB: ordersDB(11, 100), Constraints: cs,
		Durable: &DurableConfig{Dir: dir}})
	got := svc2.State().Seq
	if got == 0 || got >= rounds {
		t.Fatalf("recovered Seq %d: want a strict prefix of %d commits (budget wrong?)", got, rounds)
	}
	if text := ViolationsText(svc2.Violations()); text != texts[got] {
		t.Fatalf("recovered state at seq %d diverges from the uninterrupted run", got)
	}
}

// TestDurableCheckpointTruncates: once the checkpointer has covered
// the whole history, a restart loads the checkpoint and replays
// nothing.
func TestDurableCheckpointTruncates(t *testing.T) {
	cs := serveSigma()
	dir := t.TempDir()
	db := ordersDB(19, 100)
	shadow := db.Clone()
	svc := mustNew(t, Config{DB: db, Constraints: cs,
		Durable: &DurableConfig{Dir: dir, CheckpointEvery: 1}})
	r := rand.New(rand.NewSource(77))
	fresh := 0
	driveBatches(t, svc, shadow, r, &fresh, 10)
	wantSeq := svc.State().Seq
	deadline := time.Now().Add(10 * time.Second)
	for {
		ds, ok := svc.Durability()
		if !ok {
			t.Fatal("Durability() not ok on a durable service")
		}
		if ds.LastCheckpointSeq == wantSeq {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("checkpointer never caught up: at %d, want %d", ds.LastCheckpointSeq, wantSeq)
		}
		time.Sleep(10 * time.Millisecond)
	}
	wantText := ViolationsText(svc.Violations())
	mustStop(t, svc)

	svc2 := mustNew(t, Config{DB: ordersDB(19, 0), Constraints: cs,
		Durable: &DurableConfig{Dir: dir}})
	if got := svc2.State().Seq; got != wantSeq {
		t.Fatalf("recovered Seq %d, want %d", got, wantSeq)
	}
	// Nothing replayed: the seed counters only count WAL records.
	if got := svc2.State().Ops; got != 0 {
		t.Fatalf("recovered Ops %d, want 0 (the truncated WAL should replay nothing)", got)
	}
	if got := ViolationsText(svc2.Violations()); got != wantText {
		t.Fatalf("checkpoint-only recovery diverges")
	}
}

// BenchmarkColdStart compares the two ways to rebuild service state
// after a restart: loading a checkpoint versus replaying the whole
// ingest history from the WAL (both then pay the same seed detection).
func BenchmarkColdStart(b *testing.B) {
	cs := serveSigma()
	const orders = 5000
	ctx := context.Background()

	// A checkpoint-covered directory and a WAL-only directory holding
	// the same database.
	ckptDir, walOnlyDir := b.TempDir(), b.TempDir()
	full := ordersDB(1, orders)
	{
		svc, err := New(Config{DB: full.Clone(), Constraints: cs,
			Durable: &DurableConfig{Dir: ckptDir}})
		if err != nil {
			b.Fatal(err)
		}
		for {
			if ds, _ := svc.Durability(); ds.Checkpoints > 0 {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		if err := svc.Stop(ctx); err != nil {
			b.Fatal(err)
		}
	}
	{
		svc, err := New(Config{DB: ordersDB(1, 0), Constraints: cs,
			Durable: &DurableConfig{Dir: walOnlyDir, CheckpointEvery: -1}})
		if err != nil {
			b.Fatal(err)
		}
		for _, name := range full.Names() {
			in := full.MustInstance(name)
			ids := in.IDs()
			for off := 0; off < len(ids); off += 1000 {
				end := off + 1000
				if end > len(ids) {
					end = len(ids)
				}
				ops := make([]detect.DBOp, 0, end-off)
				for _, id := range ids[off:end] {
					tu, _ := in.Tuple(id)
					ops = append(ops, detect.InsertInto(name, tu))
				}
				if _, err := svc.Submit(ctx, ops); err != nil {
					b.Fatal(err)
				}
			}
		}
		if err := svc.Stop(ctx); err != nil {
			b.Fatal(err)
		}
	}

	bench := func(dir string) func(*testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				svc, err := New(Config{DB: ordersDB(1, 0), Constraints: cs,
					Durable: &DurableConfig{Dir: dir, CheckpointEvery: -1}})
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				if err := svc.Stop(ctx); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
		}
	}
	b.Run("checkpoint", bench(ckptDir))
	b.Run("wal-replay", bench(walOnlyDir))
}
