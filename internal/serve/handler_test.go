package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/detect"
	"repro/internal/oplog"
	"repro/internal/relation"
)

// sseEvent is one parsed Server-Sent Event.
type sseEvent struct {
	Event string
	Data  string
}

// readSSE parses events off an open stream body into the channel,
// closing it at EOF.
func readSSE(body io.Reader, ch chan<- sseEvent) {
	defer close(ch)
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	var ev sseEvent
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if ev.Event != "" || ev.Data != "" {
				ch <- ev
				ev = sseEvent{}
			}
		case strings.HasPrefix(line, "event: "):
			ev.Event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			ev.Data = strings.TrimPrefix(line, "data: ")
		}
	}
}

// wireViolation mirrors violationJSON on the client side.
type wireViolation struct {
	Class string `json:"class"`
	Rule  string `json:"rule"`
	Rel   string `json:"rel"`
	Row   int    `json:"row"`
	T1    int    `json:"t1"`
	T2    *int   `json:"t2"`
	Attr  string `json:"attr"`
	Text  string `json:"text"`
}

// key is the violation's client-side identity.
func (v wireViolation) key() string {
	t2 := -1
	if v.T2 != nil {
		t2 = *v.T2
	}
	return fmt.Sprintf("%s|%s|%d|%d|%d|%s", v.Class, v.Rule, v.Row, v.T1, t2, v.Attr)
}

type wireDelta struct {
	Seq     uint64          `json:"seq"`
	Gained  []wireViolation `json:"gained"`
	Cleared []wireViolation `json:"cleared"`
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: %s: %s", url, resp.Status, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

func getText(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s: %s", url, resp.Status, body)
	}
	return string(body)
}

func postBatch(t *testing.T, url string, ops []detect.DBOp, schemas map[string]*relation.Schema) map[string]any {
	t.Helper()
	var buf bytes.Buffer
	if err := oplog.Format(&buf, [][]detect.DBOp{ops}, schemas); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/batch", "text/plain", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /batch: %s: %s", resp.Status, body)
	}
	var out map[string]any
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestEndToEndSmoke is the CI race-job smoke: ingest through POST
// /batch, watch the delta arrive on GET /stream, see GET /stats and
// /healthz reflect it, and probe POST /check — the whole service
// surface in one pass.
func TestEndToEndSmoke(t *testing.T) {
	cs := serveSigma()
	db := ordersDB(101, 200)
	svc := mustNew(t, Config{DB: db, Constraints: cs})
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()

	var health struct {
		Status string `json:"status"`
		Seq    uint64 `json:"seq"`
	}
	getJSON(t, ts.URL+"/healthz", &health)
	if health.Status != "ok" {
		t.Fatalf("healthz status %q", health.Status)
	}

	// Open the stream and wait for the hello event.
	resp, err := http.Get(ts.URL + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	events := make(chan sseEvent, 64)
	go readSSE(resp.Body, events)
	select {
	case ev := <-events:
		if ev.Event != "hello" {
			t.Fatalf("first event %q, want hello", ev.Event)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no hello event")
	}

	// Ingest: two same-title different-price orders violate the
	// title→price FD, guaranteeing a non-empty delta.
	before := svc.State()
	out := postBatch(t, ts.URL, []detect.DBOp{
		detect.InsertInto("order", relation.Tuple{
			relation.Str("smoke1"), relation.Str("Smoke Title"), relation.Str("vinyl"), relation.Float(1.99)}),
		detect.InsertInto("order", relation.Tuple{
			relation.Str("smoke2"), relation.Str("Smoke Title"), relation.Str("vinyl"), relation.Float(2.99)}),
	}, svc.Schemas())
	if out["batches"].(float64) != 1 || out["ops"].(float64) != 2 {
		t.Fatalf("batch ack %v", out)
	}
	if out["gained"].(float64) < 1 {
		t.Fatalf("expected gained violations, got %v", out)
	}

	select {
	case ev := <-events:
		if ev.Event != "delta" {
			t.Fatalf("event %q, want delta", ev.Event)
		}
		var d wireDelta
		if err := json.Unmarshal([]byte(ev.Data), &d); err != nil {
			t.Fatal(err)
		}
		if d.Seq != before.Seq+1 || len(d.Gained) < 1 {
			t.Fatalf("delta %+v, want seq %d with gains", d, before.Seq+1)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no delta event")
	}

	var stats struct {
		Seq        uint64         `json:"seq"`
		Relations  map[string]int `json:"relations"`
		Violations int            `json:"violations"`
		Ops        uint64         `json:"ops"`
		Counts     Counts         `json:"counts"`
	}
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.Seq != before.Seq+1 || stats.Ops != before.Ops+2 {
		t.Fatalf("stats %+v after ingest at seq %d", stats, before.Seq)
	}
	if stats.Relations["order"] != db.MustInstance("order").Len() {
		t.Fatalf("stats order count %d, want %d", stats.Relations["order"], db.MustInstance("order").Len())
	}
	if stats.Violations != len(svc.Violations()) || stats.Counts.Total != stats.Violations {
		t.Fatalf("stats violation counts inconsistent: %+v", stats)
	}

	// Probe: the title→price FD is violated (we just broke it), an
	// always-true pattern CFD is not.
	check := func(body string) bool {
		resp, err := http.Post(ts.URL+"/check", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out struct {
			Satisfied bool `json:"satisfied"`
		}
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			t.Fatalf("POST /check: %s: %s", resp.Status, b)
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out.Satisfied
	}
	if check(`{"cfds": "cfd order: [title] -> [price]\n  _ || _\n"}`) {
		t.Fatal("violated FD probed as satisfied")
	}
	if !check(`{"cfds": "cfd order: [asin] -> [asin]\n  _ || _\n"}`) {
		t.Fatal("trivial FD probed as violated")
	}

	// Bad requests: syntax errors carry their line, unknown rules 400.
	resp2, err := http.Post(ts.URL+"/batch", "text/plain", strings.NewReader("insert order A,B\ncommit\n"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), `"line":1`) {
		t.Fatalf("bad batch: %s: %s", resp2.Status, body)
	}
}

// TestHTTPOracle is the acceptance test: randomized op sequences
// through POST /batch, after each commit GET /violations is
// byte-identical to SortViolations-ordered fresh Engine.DetectBatch on
// an equivalent database, and at the end the concatenated GET /stream
// deltas replay to the same set. Run it under -race: the SSE reader,
// the HTTP posts and the ingest loop all overlap.
func TestHTTPOracle(t *testing.T) {
	cs := serveSigma()
	db := ordersDB(7, 300)
	shadow := db.Clone()
	svc := mustNew(t, Config{DB: db, Constraints: cs, SubBuf: 256})
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()
	oracle := detect.New(2)

	// Stream client: runs for the whole test.
	resp, err := http.Get(ts.URL + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	events := make(chan sseEvent, 1024)
	go readSSE(resp.Body, events)
	hello := <-events
	if hello.Event != "hello" {
		t.Fatalf("first event %q, want hello", hello.Event)
	}

	// The replay baseline: the violation set at subscription time.
	held := make(map[string]bool)
	var initial struct {
		Violations []wireViolation `json:"violations"`
	}
	getJSON(t, ts.URL+"/violations", &initial)
	for _, v := range initial.Violations {
		held[v.key()] = true
	}

	r := rand.New(rand.NewSource(19))
	fresh := 0
	rounds := 0
	for round := 0; round < 25; round++ {
		batch := make([]detect.DBOp, 1+r.Intn(8))
		dead := make(map[string]map[relation.TID]bool)
		for i := range batch {
			batch[i] = randomServeOp(r, shadow, &fresh, dead)
		}
		postBatch(t, ts.URL, batch, svc.Schemas())
		if err := applyShadow(shadow, batch); err != nil {
			t.Fatal(err)
		}
		rounds++

		got := getText(t, ts.URL+"/violations?format=text")
		want := ViolationsText(oracle.DetectBatch(shadow, cs))
		if got != want {
			t.Fatalf("round %d: GET /violations diverges from fresh DetectBatch on the equivalent database:\n--- served\n%s--- fresh\n%s", round, got, want)
		}
	}

	// Replay: each delta's cleared keys must be held, gained keys new;
	// the final replayed set must equal the final served set.
	for i := 0; i < rounds; i++ {
		select {
		case ev, ok := <-events:
			if !ok {
				t.Fatalf("stream ended after %d deltas", i)
			}
			if ev.Event != "delta" {
				t.Fatalf("event %q mid-stream, want delta", ev.Event)
			}
			var d wireDelta
			if err := json.Unmarshal([]byte(ev.Data), &d); err != nil {
				t.Fatal(err)
			}
			for _, v := range d.Cleared {
				if !held[v.key()] {
					t.Fatalf("delta %d cleared %q which was not held", d.Seq, v.key())
				}
				delete(held, v.key())
			}
			for _, v := range d.Gained {
				if held[v.key()] {
					t.Fatalf("delta %d gained %q which was already held", d.Seq, v.key())
				}
				held[v.key()] = true
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("timed out waiting for delta %d", i)
		}
	}
	var final struct {
		Violations []wireViolation `json:"violations"`
	}
	getJSON(t, ts.URL+"/violations", &final)
	if len(final.Violations) != len(held) {
		t.Fatalf("replayed set has %d violations, served %d", len(held), len(final.Violations))
	}
	for _, v := range final.Violations {
		if !held[v.key()] {
			t.Fatalf("served violation %q missing from replayed set", v.key())
		}
	}
}

// TestStreamSlowConsumerResync: an SSE client that stalls past the
// subscriber buffer is disconnected with a terminal "resync" event,
// and a reconnecting client sees a violation set byte-identical to a
// fresh Engine.DetectBatch on an equivalent database.
func TestStreamSlowConsumerResync(t *testing.T) {
	cs := serveSigma()
	db := ordersDB(11, 200)
	shadow := db.Clone()
	svc := mustNew(t, Config{DB: db, Constraints: cs, SubBuf: 1})
	h := NewHandler(svc)
	// The stall: after writing any event, the handler blocks until the
	// gate opens — the server-side image of a consumer that stopped
	// reading (without having to fill kernel socket buffers).
	gate := make(chan struct{})
	h.OnEvent = func(string) { <-gate }
	ts := httptest.NewServer(h)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	events := make(chan sseEvent, 64)
	go readSSE(resp.Body, events)
	if ev := <-events; ev.Event != "hello" {
		t.Fatalf("first event %q, want hello", ev.Event)
	}
	// The handler is now stalled in OnEvent("hello"): it will not drain
	// its subscription channel (buffer 1). Two commits overflow it.
	r := rand.New(rand.NewSource(59))
	fresh := 0
	for i := 0; i < 3; i++ {
		batch := []detect.DBOp{randomServeOp(r, shadow, &fresh, map[string]map[relation.TID]bool{})}
		postBatch(t, ts.URL, batch, svc.Schemas())
		if err := applyShadow(shadow, batch); err != nil {
			t.Fatal(err)
		}
	}
	// The drop policy must have disconnected the subscriber.
	deadline := time.Now().Add(5 * time.Second)
	for svc.NumSubscribers() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow subscriber never dropped")
		}
		time.Sleep(time.Millisecond)
	}
	close(gate) // release the handler: it drains the buffered delta, then sees the drop

	sawResync := false
	for ev := range events {
		if ev.Event == "resync" {
			sawResync = true
			if !strings.Contains(ev.Data, "slow consumer") {
				t.Fatalf("resync data %q lacks the reason", ev.Data)
			}
		}
	}
	if !sawResync {
		t.Fatal("stream ended without a resync marker")
	}

	// Reconnect: the resynced view equals a fresh batch detection on the
	// equivalent database, byte for byte.
	got := getText(t, ts.URL+"/violations?format=text")
	want := ViolationsText(detect.New(2).DetectBatch(shadow, cs))
	if got != want {
		t.Fatalf("post-resync violations diverge:\n--- served\n%s--- fresh\n%s", got, want)
	}
	// And a new stream works.
	resp2, err := http.Get(ts.URL + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	events2 := make(chan sseEvent, 4)
	go readSSE(resp2.Body, events2)
	if ev := <-events2; ev.Event != "hello" {
		t.Fatalf("reconnect first event %q, want hello", ev.Event)
	}
}

// TestGracefulShutdownDrains: Stop waits for queued ingest; the last
// published state reflects every acked batch.
func TestGracefulShutdownDrains(t *testing.T) {
	cs := serveSigma()
	db := ordersDB(67, 150)
	shadow := db.Clone()
	svc, err := New(Config{DB: db, Constraints: cs, QueueCap: 32})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()

	r := rand.New(rand.NewSource(83))
	fresh := 0
	for i := 0; i < 5; i++ {
		batch := []detect.DBOp{randomServeOp(r, shadow, &fresh, map[string]map[relation.TID]bool{})}
		postBatch(t, ts.URL, batch, svc.Schemas())
		if err := applyShadow(shadow, batch); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := svc.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	// Reads still serve the final state after the writer exited.
	got := getText(t, ts.URL+"/violations?format=text")
	want := ViolationsText(detect.New(2).DetectBatch(shadow, cs))
	if got != want {
		t.Fatal("post-shutdown violations diverge from fresh detection")
	}
	// Ingest is refused.
	resp, err := http.Post(ts.URL+"/batch", "text/plain", strings.NewReader("delete order 0\ncommit\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST /batch after stop: %s, want 503", resp.Status)
	}
}

// TestBatchBodyCap413: a POST /batch body over Handler.MaxBatchBytes
// is refused with 413 whether the truncated prefix is well-formed or
// garbage — the size cap must win over the parse error the truncation
// itself causes (the scanner hands the parser a partial final line) —
// and a body under the cap commits normally.
func TestBatchBodyCap413(t *testing.T) {
	svc := mustNew(t, Config{DB: ordersDB(31, 50), Constraints: serveSigma()})
	h := NewHandler(svc)
	h.MaxBatchBytes = 512
	ts := httptest.NewServer(h)
	defer ts.Close()

	post := func(body string) (int, string) {
		resp, err := http.Post(ts.URL+"/batch", "text/plain", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	valid := strings.Repeat("update order 0 price=9.99\n", 40) + "commit\n"
	if code, body := post(valid); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("well-formed oversized body: %d %s, want 413", code, body)
	}
	if code, body := post(strings.Repeat("a", 2048)); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("garbage oversized body: %d %s, want 413", code, body)
	}
	if got := svc.State().Seq; got != 0 {
		t.Fatalf("an oversized body committed: seq %d", got)
	}
	if code, body := post("update order 0 price=9.99\ncommit\n"); code != http.StatusOK {
		t.Fatalf("under-cap body: %d %s, want 200", code, body)
	}
	if got := svc.State().Seq; got != 1 {
		t.Fatalf("seq %d after the good commit, want 1", got)
	}
}
