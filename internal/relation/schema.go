package relation

import (
	"fmt"
	"sort"
	"strings"
)

// Domain describes dom(A) for an attribute: the kind of values it ranges
// over, and — when finite — the exact set of admissible values. Finite
// domains are first-class because they change the complexity of the static
// analyses of conditional dependencies (Theorem 4.1 vs. Theorem 4.3 in the
// paper).
type Domain struct {
	kind   Kind
	finite []Value // nil ⇒ infinite domain
}

// Dom returns an infinite domain of the given kind.
func Dom(kind Kind) Domain { return Domain{kind: kind} }

// FiniteDom returns a finite domain with exactly the listed values.
// The values are defensively copied and deduplicated.
func FiniteDom(kind Kind, values ...Value) Domain {
	seen := make(map[string]bool, len(values))
	out := make([]Value, 0, len(values))
	for _, v := range values {
		if k := v.Key(); !seen[k] {
			seen[k] = true
			out = append(out, v)
		}
	}
	return Domain{kind: kind, finite: out}
}

// BoolDom returns the two-valued boolean domain {false, true}.
func BoolDom() Domain { return FiniteDom(KindBool, Bool(false), Bool(true)) }

// Kind reports the kind of values in the domain.
func (d Domain) Kind() Kind { return d.kind }

// Finite reports whether the domain is finite.
func (d Domain) Finite() bool { return d.finite != nil }

// Values returns the values of a finite domain (nil when infinite). The
// returned slice must not be modified.
func (d Domain) Values() []Value { return d.finite }

// Size returns the cardinality of a finite domain and -1 when infinite.
func (d Domain) Size() int {
	if d.finite == nil {
		return -1
	}
	return len(d.finite)
}

// Contains reports whether v is admissible in the domain. Null is always
// admissible; for infinite domains any value of the right kind (or any
// number for numeric kinds) is admissible.
func (d Domain) Contains(v Value) bool {
	if v.IsNull() {
		return true
	}
	if d.finite != nil {
		for _, w := range d.finite {
			if w.Equal(v) {
				return true
			}
		}
		return false
	}
	if v.numeric() && (d.kind == KindInt || d.kind == KindFloat) {
		return true
	}
	return v.Kind() == d.kind
}

// String renders the domain, e.g. "string" or "bool{false,true}".
func (d Domain) String() string {
	if d.finite == nil {
		return d.kind.String()
	}
	parts := make([]string, len(d.finite))
	for i, v := range d.finite {
		parts[i] = v.String()
	}
	return d.kind.String() + "{" + strings.Join(parts, ",") + "}"
}

// Attribute is a named, typed column of a relation schema.
type Attribute struct {
	Name   string
	Domain Domain
}

// Attr is shorthand for an attribute with an infinite domain.
func Attr(name string, kind Kind) Attribute {
	return Attribute{Name: name, Domain: Dom(kind)}
}

// FiniteAttr is shorthand for an attribute with a finite domain.
func FiniteAttr(name string, d Domain) Attribute {
	return Attribute{Name: name, Domain: d}
}

// Schema is a relation schema R(A1:dom1, ..., An:domn). Schemas are
// immutable after construction.
type Schema struct {
	name  string
	attrs []Attribute
	index map[string]int
}

// NewSchema builds a schema. Attribute names must be non-empty and unique.
func NewSchema(name string, attrs ...Attribute) (*Schema, error) {
	if name == "" {
		return nil, fmt.Errorf("relation: schema needs a name")
	}
	s := &Schema{name: name, attrs: append([]Attribute(nil), attrs...), index: make(map[string]int, len(attrs))}
	for i, a := range s.attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("relation: schema %s: attribute %d has no name", name, i)
		}
		if _, dup := s.index[a.Name]; dup {
			return nil, fmt.Errorf("relation: schema %s: duplicate attribute %q", name, a.Name)
		}
		s.index[a.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; for tests and fixtures.
func MustSchema(name string, attrs ...Attribute) *Schema {
	s, err := NewSchema(name, attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Name returns the relation name.
func (s *Schema) Name() string { return s.name }

// Arity returns the number of attributes.
func (s *Schema) Arity() int { return len(s.attrs) }

// Attrs returns the attributes in declaration order. The returned slice
// must not be modified.
func (s *Schema) Attrs() []Attribute { return s.attrs }

// Attr returns the i-th attribute.
func (s *Schema) Attr(i int) Attribute { return s.attrs[i] }

// Lookup returns the position of the named attribute.
func (s *Schema) Lookup(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// MustLookup is Lookup that panics when the attribute is missing.
func (s *Schema) MustLookup(name string) int {
	i, ok := s.index[name]
	if !ok {
		panic(fmt.Sprintf("relation: schema %s has no attribute %q", s.name, name))
	}
	return i
}

// Positions resolves a list of attribute names to positions.
func (s *Schema) Positions(names []string) ([]int, error) {
	out := make([]int, len(names))
	for i, n := range names {
		p, ok := s.index[n]
		if !ok {
			return nil, fmt.Errorf("relation: schema %s has no attribute %q", s.name, n)
		}
		out[i] = p
	}
	return out, nil
}

// Names returns the attribute names in declaration order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.attrs))
	for i, a := range s.attrs {
		out[i] = a.Name
	}
	return out
}

// HasFiniteDomain reports whether any attribute of the schema has a finite
// domain. The static analyses use this to pick the fast path of
// Theorem 4.3.
func (s *Schema) HasFiniteDomain() bool {
	for _, a := range s.attrs {
		if a.Domain.Finite() {
			return true
		}
	}
	return false
}

// String renders the schema as R(A:kind, ...).
func (s *Schema) String() string {
	parts := make([]string, len(s.attrs))
	for i, a := range s.attrs {
		parts[i] = a.Name + ":" + a.Domain.String()
	}
	return s.name + "(" + strings.Join(parts, ", ") + ")"
}

// Project returns a new schema with the named attributes, in the given
// order, under the given relation name.
func (s *Schema) Project(name string, attrNames []string) (*Schema, error) {
	attrs := make([]Attribute, len(attrNames))
	for i, n := range attrNames {
		p, ok := s.index[n]
		if !ok {
			return nil, fmt.Errorf("relation: schema %s has no attribute %q", s.name, n)
		}
		attrs[i] = s.attrs[p]
	}
	return NewSchema(name, attrs...)
}

// SortedNames returns the attribute names sorted lexicographically; used
// for deterministic output.
func (s *Schema) SortedNames() []string {
	out := s.Names()
	sort.Strings(out)
	return out
}
