package relation

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// mutateRandom applies one random mutation batch to the instance:
// inserts (including brand-new values that force Dict growth), updates
// (drawn both from the small collision-heavy domains and from fresh
// values), and deletes. Returns the number of ops applied.
func mutateRandom(r *rand.Rand, in *Instance, ops int, fresh *int) int {
	applied := 0
	for i := 0; i < ops; i++ {
		ids := in.IDs()
		switch k := r.Intn(10); {
		case k < 3 || len(ids) == 0: // insert
			*fresh++
			in.MustInsert(
				Int(int64(r.Intn(3))), Int(int64(r.Intn(4))), Int(int64(*fresh)),
				Str(fmt.Sprintf("n%d", r.Intn(6))), Str(fmt.Sprintf("s%d", r.Intn(3))),
				Str(fmt.Sprintf("c%d", r.Intn(2))), Str(fmt.Sprintf("z%d", r.Intn(4))),
			)
			applied++
		case k < 5: // delete
			in.Delete(ids[r.Intn(len(ids))])
			applied++
		default: // update, sometimes with a never-seen value (Dict growth)
			id := ids[r.Intn(len(ids))]
			pos := r.Intn(in.Schema().Arity())
			var v Value
			switch in.Schema().Attr(pos).Domain.Kind() {
			case KindInt:
				if r.Intn(3) == 0 {
					*fresh++
					v = Int(int64(1000 + *fresh))
				} else {
					v = Int(int64(r.Intn(4)))
				}
			default:
				if r.Intn(3) == 0 {
					*fresh++
					v = Str(fmt.Sprintf("new-%d", *fresh))
				} else {
					v = Str(fmt.Sprintf("v%d", r.Intn(4)))
				}
			}
			if err := in.Update(id, pos, v); err != nil {
				t := fmt.Sprintf("update t%d.%d = %v: %v", id, pos, v, err)
				panic(t)
			}
			applied++
		}
	}
	return applied
}

// assertSnapshotsEqual compares a maintained snapshot against a freshly
// frozen one cell by cell (decoded values, not codes: the shared
// dictionaries legitimately assign different code numbers than a fresh
// build).
func assertSnapshotsEqual(t *testing.T, round int, got, want *Snapshot) {
	t.Helper()
	if !reflect.DeepEqual(got.ids, want.ids) {
		t.Fatalf("round %d: ids diverge:\n got %v\nwant %v", round, got.ids, want.ids)
	}
	if got.Version() != want.Version() {
		t.Fatalf("round %d: version = %d, want %d", round, got.Version(), want.Version())
	}
	for p := 0; p < got.Schema().Arity(); p++ {
		for row := 0; row < want.Len(); row++ {
			g, w := got.Value(row, p), want.Value(row, p)
			if !g.Equal(w) {
				t.Fatalf("round %d: cell (%d,%d) = %v, want %v", round, row, p, g, w)
			}
		}
	}
}

// TestSnapshotApplyMatchesFresh drives random mutation batches through
// Snapshot.Apply and asserts the maintained snapshot is cell-identical
// to a fresh NewSnapshot of the mutated instance, across many rounds
// (so deltas chain: shared dictionaries keep growing, columns keep
// being spliced).
func TestSnapshotApplyMatchesFresh(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		r := rand.New(rand.NewSource(seed))
		in := randomInstance(60, seed)
		snap := NewSnapshot(in)
		// Pre-intern a few columns so Apply exercises both the shared
		// and the lazy paths; leave the rest unbuilt.
		snap.Col(0)
		snap.Col(5)
		fresh := 0
		for round := 0; round < 40; round++ {
			v0 := snap.Version()
			mutateRandom(r, in, 1+r.Intn(8), &fresh)
			entries, ok := in.ChangesSince(v0)
			if !ok {
				t.Fatalf("round %d: changelog lost %d versions", round, in.Version()-v0)
			}
			snap = snap.Apply(entries)
			if snap.Stale() {
				t.Fatalf("round %d: applied snapshot still stale", round)
			}
			assertSnapshotsEqual(t, round, snap, NewSnapshot(in))
		}
	}
}

// TestSnapshotApplySharesUntouchedColumns asserts the structural
// sharing contract: an update-only delta leaves untouched interned
// columns aliased to the old snapshot's backing arrays, and shares the
// dictionary of touched ones.
func TestSnapshotApplySharesUntouchedColumns(t *testing.T) {
	in := randomInstance(50, 3)
	snap := NewSnapshot(in)
	for p := 0; p < in.Schema().Arity(); p++ {
		snap.Col(p)
	}
	v0 := snap.Version()
	id := in.IDs()[0]
	if err := in.Update(id, 3, Str("fresh-name")); err != nil {
		t.Fatal(err)
	}
	entries, _ := in.ChangesSince(v0)
	ns := snap.Apply(entries)
	for p := 0; p < in.Schema().Arity(); p++ {
		if p == 3 {
			if &ns.cols[p][0] == &snap.cols[p][0] {
				t.Fatalf("touched column %d still aliases the old array", p)
			}
		} else if &ns.cols[p][0] != &snap.cols[p][0] {
			t.Fatalf("untouched column %d was copied", p)
		}
		if ns.dicts[p] != snap.dicts[p] {
			t.Fatalf("column %d dictionary not shared", p)
		}
	}
	// The old snapshot still decodes its frozen (pre-update) value.
	row, _ := snap.Row(id)
	if got := snap.Value(row, 3); got.Equal(Str("fresh-name")) {
		t.Fatalf("old snapshot sees the new value %v", got)
	}
}

// TestCodeIndexApplyMatchesBuild chains random deltas through the
// cxCache migration (Snapshot.Apply -> CodeIndex apply) and asserts the
// maintained group index always matches both a fresh BuildCodeIndex and
// the string-keyed Index oracle — including under a constant hash that
// forces every probe into one collision chain.
func TestCodeIndexApplyMatchesBuild(t *testing.T) {
	posSets := [][]int{{0}, {0, 1}, {5, 6}, {2, 3, 4}}
	hashers := map[string]codeHasher{
		"fnv":     hashCodes,
		"collide": func([]uint32) uint64 { return 42 },
	}
	for hname, h := range hashers {
		for _, seed := range []int64{11, 23} {
			t.Run(fmt.Sprintf("%s/seed=%d", hname, seed), func(t *testing.T) {
				r := rand.New(rand.NewSource(seed))
				in := randomInstance(80, seed)
				snap := NewSnapshot(in)
				// Seed the cache with indexes built under the chosen hasher
				// so migration inherits it.
				for _, pos := range posSets {
					cx := buildCodeIndex(snap, pos, h)
					snap.cxMu.Lock()
					if snap.cxCache == nil {
						snap.cxCache = make(map[string]*CodeIndex)
					}
					snap.cxCache[posKey(pos)] = cx
					snap.cxMu.Unlock()
				}
				fresh := 0
				for round := 0; round < 30; round++ {
					v0 := snap.Version()
					mutateRandom(r, in, 1+r.Intn(6), &fresh)
					entries, ok := in.ChangesSince(v0)
					if !ok {
						t.Fatalf("round %d: changelog truncated", round)
					}
					snap = snap.Apply(entries)
					for _, pos := range posSets {
						cx := snap.CodeIndexOn(pos) // the migrated index
						ix := BuildIndex(in, pos)
						if got, want := codeIndexGroupSets(cx), indexGroupSets(ix); !reflect.DeepEqual(got, want) {
							t.Fatalf("round %d pos %v: groups diverge:\n got %v\nwant %v", round, pos, got, want)
						}
						ids := in.IDs()
						for i := 0; i < 10 && i < len(ids); i++ {
							tup, _ := in.Tuple(ids[r.Intn(len(ids))])
							if got, want := cx.Lookup(tup), ix.Lookup(tup); !reflect.DeepEqual(got, want) {
								t.Fatalf("round %d pos %v: Lookup(%v) = %v, want %v", round, pos, tup, got, want)
							}
						}
					}
				}
			})
		}
	}
}

// TestChangelogBasics pins the ChangesSince contract: contiguity,
// truncation, disabled logging, and cache eviction on truncation.
func TestChangelogBasics(t *testing.T) {
	in := NewInstance(customerSchema())
	if _, ok := in.ChangesSince(0); !ok {
		t.Fatal("empty instance cannot answer ChangesSince(0)")
	}
	id := in.MustInsert(Int(1), Int(2), Int(3), Str("a"), Str("b"), Str("c"), Str("d"))
	in.Update(id, 3, Str("a2"))
	in.Delete(id)
	entries, ok := in.ChangesSince(0)
	if !ok || len(entries) != 3 {
		t.Fatalf("ChangesSince(0) = %v, %v; want 3 entries", entries, ok)
	}
	want := []ChangeEntry{
		{Version: 1, Op: ChangeInsert, TID: id, Pos: -1},
		{Version: 2, Op: ChangeUpdate, TID: id, Pos: 3},
		{Version: 3, Op: ChangeDelete, TID: id, Pos: -1},
	}
	if !reflect.DeepEqual(entries, want) {
		t.Fatalf("entries = %v, want %v", entries, want)
	}
	if sub, ok := in.ChangesSince(2); !ok || len(sub) != 1 || sub[0].Op != ChangeDelete {
		t.Fatalf("ChangesSince(2) = %v, %v", sub, ok)
	}
	if _, ok := in.ChangesSince(99); ok {
		t.Fatal("ChangesSince beyond the current version succeeded")
	}

	// Truncation: a tiny cap drops old entries and strands old readers.
	in2 := NewInstance(customerSchema())
	in2.SetChangelogCap(4)
	for i := 0; i < 10; i++ {
		in2.MustInsert(Int(int64(i)), Int(0), Int(0), Str(""), Str(""), Str(""), Str(""))
	}
	if _, ok := in2.ChangesSince(0); ok {
		t.Fatal("truncated changelog still answers ChangesSince(0)")
	}
	if got, ok := in2.ChangesSince(in2.Version() - 1); !ok || len(got) != 1 {
		t.Fatalf("recent ChangesSince = %v, %v", got, ok)
	}

	// Disabled logging (n <= 0, including the 0 boundary): nothing is
	// retained, and logging does not silently resume on later mutations.
	in3 := NewInstance(customerSchema())
	in3.SetChangelogCap(0)
	in3.MustInsert(Int(1), Int(0), Int(0), Str(""), Str(""), Str(""), Str(""))
	if _, ok := in3.ChangesSince(0); ok {
		t.Fatal("disabled changelog answered ChangesSince")
	}
	if in3.ChangelogLen() != 0 {
		t.Fatalf("disabled changelog retained %d entries", in3.ChangelogLen())
	}
	// With logging disabled, a mutation strands the cached snapshot and
	// must evict it (there is no truncation event to do it later).
	SnapshotOf(in3)
	in3.MustInsert(Int(2), Int(0), Int(0), Str(""), Str(""), Str(""), Str(""))
	in3.mu.Lock()
	alive := in3.snapCache
	in3.mu.Unlock()
	if alive != nil {
		t.Fatal("stranded snapshot still cached under disabled logging")
	}
}

// TestSnapshotCacheEvictedOnTruncation asserts the bounded-cache
// satellite: when the changelog is truncated past the cached snapshot's
// version, the snapshot is dropped instead of being pinned forever.
func TestSnapshotCacheEvictedOnTruncation(t *testing.T) {
	in := randomInstance(20, 9)
	in.SetChangelogCap(8)
	s := SnapshotOf(in)
	if in.snapCache != s {
		t.Fatal("SnapshotOf did not cache")
	}
	// Fewer mutations than the cap: the cache must survive (it can still
	// catch up).
	fresh := 0
	mutateRandom(rand.New(rand.NewSource(1)), in, 3, &fresh)
	in.mu.Lock()
	alive := in.snapCache
	in.mu.Unlock()
	if alive != s {
		t.Fatal("cache evicted while the changelog still reached it")
	}
	// Blow past the cap: truncation strands the snapshot and must evict.
	mutateRandom(rand.New(rand.NewSource(2)), in, 20, &fresh)
	in.mu.Lock()
	alive = in.snapCache
	in.mu.Unlock()
	if alive != nil {
		t.Fatal("stranded snapshot still cached after changelog truncation")
	}
}

// TestSnapshotOfCatchesUp asserts SnapshotOf's delta path: after a
// small mutation batch the returned snapshot shares untouched columns
// with its predecessor instead of re-interning them.
func TestSnapshotOfCatchesUp(t *testing.T) {
	in := randomInstance(100, 13)
	s1 := SnapshotOf(in)
	for p := 0; p < in.Schema().Arity(); p++ {
		s1.Col(p)
	}
	id := in.IDs()[3]
	if err := in.Update(id, 6, Str("z-new")); err != nil {
		t.Fatal(err)
	}
	s2 := SnapshotOf(in)
	if s2 == s1 {
		t.Fatal("SnapshotOf returned the stale snapshot")
	}
	if s2.Stale() {
		t.Fatal("SnapshotOf result is stale")
	}
	if &s2.cols[0][0] != &s1.cols[0][0] {
		t.Fatal("catch-up did not share the untouched column")
	}
	assertSnapshotsEqual(t, 0, s2, NewSnapshot(in))
	// A delta larger than the instance falls back to a full rebuild
	// (fresh dictionaries, nothing shared).
	for i := 0; i < 120; i++ {
		fresh := i
		mutateRandom(rand.New(rand.NewSource(int64(i))), in, 1, &fresh)
	}
	s3 := SnapshotOf(in)
	if s3.dicts[0] == s2.dicts[0] && s3.cols[0] != nil {
		t.Log("large delta unexpectedly shared dictionaries (heuristic changed?)")
	}
	assertSnapshotsEqual(t, 1, s3, NewSnapshot(in))
}
