package relation

import "sync"

// Dict is a per-attribute dictionary interning Values as dense uint32
// codes: two values receive the same code iff they are Equal. Snapshots
// build one Dict per attribute so that tuple cells become fixed-width
// codes, value equality becomes an integer compare, and projection keys
// become short code sequences instead of heap strings.
//
// Interning never materializes a per-cell key string. Values are
// canonicalized (folding the cross-kind equalities of Value.Equal: an
// integral float equals the same integer) and then dispatched by kind to
// Go's fast int64/string map paths; the rare remaining kinds (null,
// bool, non-integral floats) go through a small fallback map.
//
// Dict is append-only: a code, once assigned, never changes meaning.
// That is what makes incremental snapshot maintenance sound — when
// Snapshot.Apply derives a new snapshot it shares the old snapshot's
// dictionaries and interns only the changed cells, and every code held
// by the old snapshot's columns (and by any CodeIndex over them) stays
// valid. Because an old snapshot's readers may look codes up while a
// catch-up appends, the maps are guarded by an RWMutex; the bulk
// interning of a whole column during a snapshot build runs on a private
// unpublished Dict and pays no locking per cell.
type Dict struct {
	mu    sync.RWMutex
	ints  map[int64]uint32  // KindInt (and integral floats, canonicalized)
	strs  map[string]uint32 // KindString
	other map[Value]uint32  // null, bool, non-integral floats
	nan   *uint32           // the shared code of all NaN floats, if any
	vals  []Value           // code -> first value interned with that code
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{
		ints: make(map[int64]uint32),
		strs: make(map[string]uint32),
	}
}

// canonicalValue maps v to a representative such that two values are
// Equal iff their representatives are == as Go values. The only non-
// identity case is the numeric tower: an integral float equals the
// corresponding int, folded exactly as Value.Key folds it. (Beyond 2^53,
// where float64 cannot represent every int64, Value.Equal's
// float-compare admits equalities that Value.Key — and therefore this
// canonicalization — does not; that Key/Equal inconsistency predates
// the dictionary layer, and codes side with Key, i.e. with how the
// string-keyed index has always grouped.)
func canonicalValue(v Value) Value {
	if v.kind == KindFloat {
		if i := int64(v.f); v.f == float64(i) {
			return Value{kind: KindInt, i: i}
		}
	}
	return v
}

// Intern returns the code of v, assigning the next free code when v has
// not been seen before. All NaN floats share one code, exactly as they
// share one Value.Key on the string-keyed path (NaN cannot be a map key
// — as a Go map key every NaN is distinct — so it gets a dedicated
// slot); within-group RHS comparisons still use Value.Equal, under
// which NaN ≠ NaN, so detection semantics match the legacy path.
func (d *Dict) Intern(v Value) uint32 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.intern(v)
}

// intern is Intern without the lock, for bulk column builds over a
// not-yet-published Dict.
func (d *Dict) intern(v Value) uint32 {
	c := canonicalValue(v)
	if c.kind == KindFloat && c.f != c.f { // NaN
		if d.nan != nil {
			return *d.nan
		}
		code := uint32(len(d.vals))
		d.nan = &code
		d.vals = append(d.vals, v)
		return code
	}
	switch c.kind {
	case KindInt:
		if code, ok := d.ints[c.i]; ok {
			return code
		}
		code := uint32(len(d.vals))
		d.ints[c.i] = code
		d.vals = append(d.vals, v)
		return code
	case KindString:
		if code, ok := d.strs[c.s]; ok {
			return code
		}
		code := uint32(len(d.vals))
		d.strs[c.s] = code
		d.vals = append(d.vals, v)
		return code
	default:
		if code, ok := d.other[c]; ok {
			return code
		}
		if d.other == nil {
			d.other = make(map[Value]uint32)
		}
		code := uint32(len(d.vals))
		d.other[c] = code
		d.vals = append(d.vals, v)
		return code
	}
}

// Code returns the code of v and whether v was ever interned. Detection
// uses the miss case to prune pattern rows whose constants do not occur
// in the column at all.
func (d *Dict) Code(v Value) (uint32, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	c := canonicalValue(v)
	if c.kind == KindFloat && c.f != c.f { // NaN
		if d.nan != nil {
			return *d.nan, true
		}
		return 0, false
	}
	switch c.kind {
	case KindInt:
		code, ok := d.ints[c.i]
		return code, ok
	case KindString:
		code, ok := d.strs[c.s]
		return code, ok
	default:
		code, ok := d.other[c]
		return code, ok
	}
}

// Value decodes a code back to a value Equal to every value interned
// under it (the first one interned is returned verbatim).
func (d *Dict) Value(code uint32) Value {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.vals[code]
}

// Len returns the number of distinct values interned.
func (d *Dict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.vals)
}
