package relation

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/fault"
)

// Checkpoint persistence: a goclaims-style on-disk layout for the
// columnar snapshot model. A checkpoint is one directory
//
//	checkpoint-<seq>/
//	  MANIFEST.json     schema, row counts, next TIDs, shard keys, seq
//	  <rel>.tids        row -> TID, uvarint delta-coded, ascending
//	  <rel>.col<i>      row -> dictionary code of attribute i, uvarint
//	  <rel>.dict<i>     code -> value for attribute i (kind byte + payload)
//
// mirroring goclaims' one-binary-file-per-variable buckets with a JSON
// dtypes manifest: the snapshot's per-attribute code columns serialize
// as uvarint code streams against a compacted per-attribute dictionary
// (only codes the column actually uses are written, renumbered densely
// in first-use order), so the dominant on-disk cost is one short varint
// per cell. Cell confidence weights are not persisted — the serve layer
// never sets them; a checkpoint restores tuples, TIDs and schemas.
//
// Atomicity follows the temp-dir-plus-rename protocol: the directory is
// written and fsynced under a .tmp name, renamed into place, and only
// then does the CURRENT pointer file move to it (itself via write-tmp +
// rename + directory fsync). A crash at any point leaves CURRENT naming
// a complete checkpoint or absent; partial directories are garbage
// collected on the next successful write.

// checkpointFormatVersion is bumped on incompatible layout changes.
const checkpointFormatVersion = 1

const (
	manifestName = "MANIFEST.json"
	currentName  = "CURRENT"
)

// ErrNoCheckpoint is returned by LoadCheckpoint when the directory has
// no CURRENT pointer (a fresh data dir, or one that never completed a
// checkpoint).
var ErrNoCheckpoint = errors.New("relation: no checkpoint")

// CheckpointInfo is the metadata stored alongside (and recovered with)
// a checkpoint.
type CheckpointInfo struct {
	// Seq is the WAL sequence the checkpoint covers: replay resumes at
	// Seq+1.
	Seq uint64
	// NextTIDs records each relation's next-TID allocator so recovered
	// inserts reuse no TID that ever existed — required for replay to be
	// byte-identical when the highest tuples were deleted before the
	// checkpoint.
	NextTIDs map[string]TID
	// ShardKeys records the partition key (attribute positions) per
	// relation when the writing service ran sharded; nil otherwise.
	ShardKeys map[string][]int
}

type checkpointManifest struct {
	FormatVersion int                `json:"formatVersion"`
	Seq           uint64             `json:"seq"`
	Relations     []relationManifest `json:"relations"`
}

type relationManifest struct {
	Name     string         `json:"name"`
	Attrs    []attrManifest `json:"attrs"`
	Rows     int            `json:"rows"`
	NextTID  TID            `json:"nextTID"`
	ShardKey []int          `json:"shardKey,omitempty"`
}

type attrManifest struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	// Finite lists a finite domain's values as ParseValue-compatible
	// text; nil means an infinite domain. (A finite string domain
	// containing the empty string would round-trip it to null — such
	// domains do not occur here, as ParseValue can never produce that
	// value either.)
	Finite []string `json:"finite,omitempty"`
}

// WriteCheckpoint atomically installs a checkpoint of the snapshot
// under dataDir and points CURRENT at it, then garbage-collects older
// checkpoint directories. Writing is safe concurrently with readers of
// the snapshot (snapshots are immutable; lazy column interning is
// internally synchronized).
func WriteCheckpoint(dataDir string, dbs *DBSnapshot, info CheckpointInfo) error {
	_, err := WriteCheckpointFS(fault.OS, dataDir, dbs, info)
	return err
}

// WriteCheckpointFS is WriteCheckpoint over an explicit filesystem seam.
// The fault-matrix and chaos tests pass a fault.Injector to script
// ENOSPC and torn-write failures at exact points in the install
// protocol; production uses fault.OS via WriteCheckpoint. It returns the
// checkpoint's data size in bytes (0 when an existing checkpoint at this
// seq was reused) for monitoring.
func WriteCheckpointFS(fs fault.FS, dataDir string, dbs *DBSnapshot, info CheckpointInfo) (int64, error) {
	if err := fs.MkdirAll(dataDir, 0o755); err != nil {
		return 0, fmt.Errorf("relation: checkpoint: %w", err)
	}
	name := fmt.Sprintf("checkpoint-%016d", info.Seq)
	final := filepath.Join(dataDir, name)
	if _, err := fs.Stat(final); err == nil {
		// A checkpoint at this seq is already installed (e.g. the final
		// checkpoint at Stop when nothing committed since the last one).
		return 0, ensureCurrent(fs, dataDir, name)
	}
	tmp := final + ".tmp"
	if err := fs.RemoveAll(tmp); err != nil {
		return 0, fmt.Errorf("relation: checkpoint: %w", err)
	}
	if err := fs.MkdirAll(tmp, 0o755); err != nil {
		return 0, fmt.Errorf("relation: checkpoint: %w", err)
	}
	var bytes int64
	man := checkpointManifest{FormatVersion: checkpointFormatVersion, Seq: info.Seq}
	for _, rel := range dbs.Names() {
		if err := checkRelationFilename(rel); err != nil {
			return 0, err
		}
		snap, _ := dbs.Snapshot(rel)
		rm, n, err := writeRelation(fs, tmp, rel, snap, info)
		if err != nil {
			return 0, err
		}
		bytes += n
		man.Relations = append(man.Relations, rm)
	}
	n, err := writeFileSync(fs, filepath.Join(tmp, manifestName), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(man)
	})
	if err != nil {
		return 0, err
	}
	bytes += n
	if err := fsyncDir(fs, tmp); err != nil {
		return 0, err
	}
	if err := fs.Rename(tmp, final); err != nil {
		return 0, fmt.Errorf("relation: checkpoint: %w", err)
	}
	if err := fsyncDir(fs, dataDir); err != nil {
		return 0, err
	}
	if err := ensureCurrent(fs, dataDir, name); err != nil {
		return 0, err
	}
	gcCheckpoints(fs, dataDir, name)
	return bytes, nil
}

// ensureCurrent atomically points the CURRENT file at name.
func ensureCurrent(fs fault.FS, dataDir, name string) error {
	cur := filepath.Join(dataDir, currentName)
	if data, err := fs.ReadFile(cur); err == nil && strings.TrimSpace(string(data)) == name {
		return nil
	}
	tmp := cur + ".tmp"
	if _, err := writeFileSync(fs, tmp, func(w io.Writer) error {
		_, err := io.WriteString(w, name+"\n")
		return err
	}); err != nil {
		return err
	}
	if err := fs.Rename(tmp, cur); err != nil {
		return fmt.Errorf("relation: checkpoint: %w", err)
	}
	return fsyncDir(fs, dataDir)
}

// gcCheckpoints removes every checkpoint-* directory except keep.
// Best-effort: a leftover directory costs disk, not correctness.
func gcCheckpoints(fs fault.FS, dataDir, keep string) {
	entries, err := fs.ReadDir(dataDir)
	if err != nil {
		return
	}
	for _, e := range entries {
		n := e.Name()
		if !e.IsDir() || !strings.HasPrefix(n, "checkpoint-") || n == keep {
			continue
		}
		fs.RemoveAll(filepath.Join(dataDir, n))
	}
}

// writeRelation serializes one relation's snapshot into dir and returns
// its manifest entry and serialized size in bytes.
func writeRelation(fs fault.FS, dir, rel string, snap *Snapshot, info CheckpointInfo) (relationManifest, int64, error) {
	var bytes int64
	sch := snap.Schema()
	rm := relationManifest{Name: rel, Rows: snap.Len()}
	for i := 0; i < sch.Arity(); i++ {
		a := sch.Attr(i)
		am := attrManifest{Name: a.Name, Kind: a.Domain.Kind().String()}
		if a.Domain.Finite() {
			am.Finite = make([]string, 0, len(a.Domain.Values()))
			for _, v := range a.Domain.Values() {
				am.Finite = append(am.Finite, valueText(v))
			}
		}
		rm.Attrs = append(rm.Attrs, am)
	}
	if info.NextTIDs != nil {
		rm.NextTID = info.NextTIDs[rel]
	}
	maxID := TID(-1)
	if n := snap.Len(); n > 0 {
		maxID = snap.TID(n - 1)
	}
	if rm.NextTID <= maxID {
		rm.NextTID = maxID + 1
	}
	if info.ShardKeys != nil {
		rm.ShardKey = info.ShardKeys[rel]
	}

	// TIDs: uvarint deltas over the ascending row order.
	n, err := writeFileSync(fs, filepath.Join(dir, rel+".tids"), func(w io.Writer) error {
		bw := bufio.NewWriter(w)
		prev := TID(-1)
		for row := 0; row < snap.Len(); row++ {
			id := snap.TID(row)
			if err := putUvarint(bw, uint64(id-prev)); err != nil {
				return err
			}
			prev = id
		}
		return bw.Flush()
	})
	if err != nil {
		return rm, 0, err
	}
	bytes += n

	// Per-attribute code column + compacted dictionary.
	for p := 0; p < sch.Arity(); p++ {
		col := snap.Col(p)
		dict := snap.Dict(p)
		remap := make(map[uint32]uint32)
		var vals []Value
		n, err := writeFileSync(fs, filepath.Join(dir, fmt.Sprintf("%s.col%d", rel, p)), func(w io.Writer) error {
			bw := bufio.NewWriter(w)
			for _, code := range col {
				local, ok := remap[code]
				if !ok {
					local = uint32(len(vals))
					remap[code] = local
					vals = append(vals, dict.Value(code))
				}
				if err := putUvarint(bw, uint64(local)); err != nil {
					return err
				}
			}
			return bw.Flush()
		})
		if err != nil {
			return rm, 0, err
		}
		bytes += n
		n, err = writeFileSync(fs, filepath.Join(dir, fmt.Sprintf("%s.dict%d", rel, p)), func(w io.Writer) error {
			bw := bufio.NewWriter(w)
			if err := putUvarint(bw, uint64(len(vals))); err != nil {
				return err
			}
			for _, v := range vals {
				if err := encodeValue(bw, v); err != nil {
					return err
				}
			}
			return bw.Flush()
		})
		if err != nil {
			return rm, 0, err
		}
		bytes += n
	}
	return rm, bytes, nil
}

// LoadCheckpoint opens the checkpoint CURRENT points at and rebuilds
// the database. When schemas is non-nil the recovered instances are
// built over those exact *Schema values (so constraints parsed against
// them keep working) after validating the manifest structurally matches
// — same relations, attribute names and kinds; nil reconstructs schemas
// from the manifest.
func LoadCheckpoint(dataDir string, schemas map[string]*Schema) (*Database, CheckpointInfo, error) {
	data, err := os.ReadFile(filepath.Join(dataDir, currentName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, CheckpointInfo{}, ErrNoCheckpoint
		}
		return nil, CheckpointInfo{}, fmt.Errorf("relation: checkpoint: %w", err)
	}
	name := strings.TrimSpace(string(data))
	if name == "" || strings.ContainsAny(name, "/\\") {
		return nil, CheckpointInfo{}, fmt.Errorf("relation: checkpoint: bad CURRENT pointer %q", name)
	}
	dir := filepath.Join(dataDir, name)
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, CheckpointInfo{}, fmt.Errorf("relation: checkpoint: %w", err)
	}
	var man checkpointManifest
	if err := json.Unmarshal(raw, &man); err != nil {
		return nil, CheckpointInfo{}, fmt.Errorf("relation: checkpoint manifest: %w", err)
	}
	if man.FormatVersion != checkpointFormatVersion {
		return nil, CheckpointInfo{}, fmt.Errorf("relation: checkpoint format version %d, want %d", man.FormatVersion, checkpointFormatVersion)
	}
	if schemas != nil {
		if err := validateManifestSchemas(man, schemas); err != nil {
			return nil, CheckpointInfo{}, err
		}
	}
	info := CheckpointInfo{Seq: man.Seq, NextTIDs: make(map[string]TID, len(man.Relations))}
	db := NewDatabase()
	for _, rm := range man.Relations {
		sch := schemas[rm.Name] // nil map lookup is fine
		if sch == nil {
			sch, err = schemaFromManifest(rm)
			if err != nil {
				return nil, CheckpointInfo{}, err
			}
		}
		in, err := loadRelation(dir, rm, sch)
		if err != nil {
			return nil, CheckpointInfo{}, err
		}
		db.Add(in)
		info.NextTIDs[rm.Name] = in.nextID
		if rm.ShardKey != nil {
			if info.ShardKeys == nil {
				info.ShardKeys = make(map[string][]int)
			}
			info.ShardKeys[rm.Name] = rm.ShardKey
		}
	}
	return db, info, nil
}

// validateManifestSchemas checks the manifest names the same relations
// with the same attribute names and kinds as the caller's schemas.
func validateManifestSchemas(man checkpointManifest, schemas map[string]*Schema) error {
	if len(man.Relations) != len(schemas) {
		return fmt.Errorf("relation: checkpoint has %d relations, database has %d", len(man.Relations), len(schemas))
	}
	for _, rm := range man.Relations {
		sch, ok := schemas[rm.Name]
		if !ok {
			return fmt.Errorf("relation: checkpoint has relation %q, database does not", rm.Name)
		}
		if len(rm.Attrs) != sch.Arity() {
			return fmt.Errorf("relation: checkpoint %s has arity %d, schema has %d", rm.Name, len(rm.Attrs), sch.Arity())
		}
		for i, am := range rm.Attrs {
			a := sch.Attr(i)
			if am.Name != a.Name {
				return fmt.Errorf("relation: checkpoint %s attribute %d is %q, schema has %q", rm.Name, i, am.Name, a.Name)
			}
			kind, err := ParseKind(am.Kind)
			if err != nil || kind != a.Domain.Kind() {
				return fmt.Errorf("relation: checkpoint %s.%s has kind %q, schema has %q", rm.Name, am.Name, am.Kind, a.Domain.Kind())
			}
		}
	}
	return nil
}

// schemaFromManifest reconstructs a schema when the caller supplied
// none (cold batch loads, e.g. dqdetect -checkpoint).
func schemaFromManifest(rm relationManifest) (*Schema, error) {
	attrs := make([]Attribute, len(rm.Attrs))
	for i, am := range rm.Attrs {
		kind, err := ParseKind(am.Kind)
		if err != nil {
			return nil, fmt.Errorf("relation: checkpoint %s.%s: %w", rm.Name, am.Name, err)
		}
		if am.Finite == nil {
			attrs[i] = Attr(am.Name, kind)
			continue
		}
		vals := make([]Value, len(am.Finite))
		for j, text := range am.Finite {
			v, err := ParseValue(kind, text)
			if err != nil {
				return nil, fmt.Errorf("relation: checkpoint %s.%s: %w", rm.Name, am.Name, err)
			}
			vals[j] = v
		}
		attrs[i] = FiniteAttr(am.Name, FiniteDom(kind, vals...))
	}
	return NewSchema(rm.Name, attrs...)
}

// loadRelation reads one relation's column files and bulk-builds its
// instance: tuples installed directly (no per-insert validation — the
// checkpoint is this process's own prior output), version advanced past
// an empty changelog, next-TID allocator restored from the manifest.
func loadRelation(dir string, rm relationManifest, sch *Schema) (*Instance, error) {
	badf := func(file string, err error) error {
		return fmt.Errorf("relation: checkpoint %s: %w", file, err)
	}
	ids := make([]TID, rm.Rows)
	{
		file := rm.Name + ".tids"
		r, closef, err := openBuf(filepath.Join(dir, file))
		if err != nil {
			return nil, badf(file, err)
		}
		prev := TID(-1)
		for row := range ids {
			d, err := binary.ReadUvarint(r)
			if err != nil {
				closef()
				return nil, badf(file, err)
			}
			prev += TID(d)
			ids[row] = prev
		}
		closef()
	}
	cols := make([][]Value, sch.Arity()) // cols[p][row], decoded
	for p := 0; p < sch.Arity(); p++ {
		dictFile := fmt.Sprintf("%s.dict%d", rm.Name, p)
		r, closef, err := openBuf(filepath.Join(dir, dictFile))
		if err != nil {
			return nil, badf(dictFile, err)
		}
		n, err := binary.ReadUvarint(r)
		if err != nil {
			closef()
			return nil, badf(dictFile, err)
		}
		if n > uint64(rm.Rows) {
			closef()
			return nil, badf(dictFile, fmt.Errorf("dictionary of %d values for %d rows", n, rm.Rows))
		}
		vals := make([]Value, n)
		for i := range vals {
			if vals[i], err = decodeValue(r); err != nil {
				closef()
				return nil, badf(dictFile, err)
			}
		}
		closef()
		colFile := fmt.Sprintf("%s.col%d", rm.Name, p)
		r, closef, err = openBuf(filepath.Join(dir, colFile))
		if err != nil {
			return nil, badf(colFile, err)
		}
		col := make([]Value, rm.Rows)
		for row := range col {
			code, err := binary.ReadUvarint(r)
			if err != nil {
				closef()
				return nil, badf(colFile, err)
			}
			if code >= uint64(len(vals)) {
				closef()
				return nil, badf(colFile, fmt.Errorf("code %d out of range (dictionary has %d)", code, len(vals)))
			}
			col[row] = vals[code]
		}
		closef()
		cols[p] = col
	}
	in := NewInstance(sch)
	arity := sch.Arity()
	for row, id := range ids {
		t := make(Tuple, arity)
		for p := 0; p < arity; p++ {
			t[p] = cols[p][row]
		}
		in.tuples[id] = t
	}
	in.nextID = rm.NextTID
	if n := len(ids); n > 0 && ids[n-1] >= in.nextID {
		in.nextID = ids[n-1] + 1
	}
	in.version = uint64(len(ids))
	in.logStart = in.version
	return in, nil
}

// valueText renders v so ParseValue(kind, text) round-trips it. Null is
// the empty string; floats use the shortest exact representation.
func valueText(v Value) string {
	if v.IsNull() {
		return ""
	}
	return v.String()
}

// Value wire encoding inside dictionary files: one kind byte, then a
// kind-specific payload. Independent of the column's schema kind — a
// column may hold nulls (any kind) or integral values in a real column.
func encodeValue(w *bufio.Writer, v Value) error {
	if err := w.WriteByte(byte(v.Kind())); err != nil {
		return err
	}
	switch v.Kind() {
	case KindNull:
		return nil
	case KindBool:
		b := byte(0)
		if v.BoolVal() {
			b = 1
		}
		return w.WriteByte(b)
	case KindInt:
		var buf [binary.MaxVarintLen64]byte
		n := binary.PutVarint(buf[:], v.IntVal())
		_, err := w.Write(buf[:n])
		return err
	case KindFloat:
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v.FloatVal()))
		_, err := w.Write(buf[:])
		return err
	case KindString:
		s := v.StrVal()
		if err := putUvarint(w, uint64(len(s))); err != nil {
			return err
		}
		_, err := w.WriteString(s)
		return err
	default:
		return fmt.Errorf("unknown value kind %d", v.Kind())
	}
}

func decodeValue(r *bufio.Reader) (Value, error) {
	kb, err := r.ReadByte()
	if err != nil {
		return Value{}, err
	}
	switch Kind(kb) {
	case KindNull:
		return Null(), nil
	case KindBool:
		b, err := r.ReadByte()
		if err != nil {
			return Value{}, err
		}
		return Bool(b != 0), nil
	case KindInt:
		i, err := binary.ReadVarint(r)
		if err != nil {
			return Value{}, err
		}
		return Int(i), nil
	case KindFloat:
		var buf [8]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return Value{}, err
		}
		return Float(math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))), nil
	case KindString:
		n, err := binary.ReadUvarint(r)
		if err != nil {
			return Value{}, err
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return Value{}, err
		}
		return Str(string(buf)), nil
	default:
		return Value{}, fmt.Errorf("unknown value kind %d", kb)
	}
}

func putUvarint(w *bufio.Writer, x uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], x)
	_, err := w.Write(buf[:n])
	return err
}

// checkRelationFilename rejects relation names that cannot be file name
// stems.
func checkRelationFilename(rel string) error {
	if rel == "" || rel == "." || rel == ".." ||
		strings.ContainsAny(rel, "/\\\x00") || strings.HasPrefix(rel, ".") {
		return fmt.Errorf("relation: checkpoint: relation name %q is not file-safe", rel)
	}
	return nil
}

// writeFileSync creates path, streams content through write, and
// fsyncs before closing — no partially-durable file survives a clean
// return. It returns the number of bytes written.
func writeFileSync(fs fault.FS, path string, write func(w io.Writer) error) (int64, error) {
	f, err := fs.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, fmt.Errorf("relation: checkpoint: %w", err)
	}
	cw := &countingWriter{w: f}
	if err := write(cw); err != nil {
		f.Close()
		return 0, fmt.Errorf("relation: checkpoint %s: %w", filepath.Base(path), err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return 0, fmt.Errorf("relation: checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		return 0, fmt.Errorf("relation: checkpoint: %w", err)
	}
	return cw.n, nil
}

// countingWriter counts bytes as they pass through to w.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func openBuf(path string) (*bufio.Reader, func(), error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	return bufio.NewReaderSize(f, 1<<16), func() { f.Close() }, nil
}

func fsyncDir(fs fault.FS, dir string) error {
	d, err := fs.Open(dir)
	if err != nil {
		return fmt.Errorf("relation: checkpoint: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("relation: checkpoint: %w", err)
	}
	return nil
}
