package relation

// Index is a hash index over a list of attribute positions of an instance.
// It maps each projection key to the TIDs whose tuples share that
// projection. Indexes are built once over a snapshot of the instance; they
// are the workhorse of violation detection, which groups tuples by the LHS
// of a dependency.
type Index struct {
	pos     []int
	buckets map[string][]TID
}

// BuildIndex builds a hash index of in on the given attribute positions.
func BuildIndex(in *Instance, pos []int) *Index {
	ix := &Index{pos: append([]int(nil), pos...), buckets: make(map[string][]TID)}
	for _, id := range in.IDs() {
		t, _ := in.Tuple(id)
		k := t.KeyOn(ix.pos)
		ix.buckets[k] = append(ix.buckets[k], id)
	}
	return ix
}

// Lookup returns the TIDs whose projection equals that of t (a tuple of the
// indexed instance's full arity).
func (ix *Index) Lookup(t Tuple) []TID {
	return ix.buckets[t.KeyOn(ix.pos)]
}

// LookupKey returns the TIDs stored under a precomputed projection key.
func (ix *Index) LookupKey(key string) []TID { return ix.buckets[key] }

// LookupKeyBytes is LookupKey over a byte buffer: the string(key)
// conversion happens inside the map index expression, which the
// compiler recognizes and keeps off the heap, so probe loops can build
// keys into one reused buffer (Value.AppendKey) without allocating per
// probe.
func (ix *Index) LookupKeyBytes(key []byte) []TID { return ix.buckets[string(key)] }

// Groups invokes fn for every bucket with at least minSize members.
// Iteration order over buckets is unspecified; callers that need
// determinism should sort the result themselves.
func (ix *Index) Groups(minSize int, fn func(key string, ids []TID)) {
	for k, ids := range ix.buckets {
		if len(ids) >= minSize {
			fn(k, ids)
		}
	}
}

// GroupsWhile is Groups with early termination: iteration stops as soon
// as fn returns false. Satisfaction checking uses it to abandon the scan
// at the first violation instead of visiting every remaining bucket.
func (ix *Index) GroupsWhile(minSize int, fn func(key string, ids []TID) bool) {
	for k, ids := range ix.buckets {
		if len(ids) >= minSize && !fn(k, ids) {
			return
		}
	}
}

// Positions returns the indexed attribute positions.
func (ix *Index) Positions() []int { return ix.pos }

// Len returns the number of distinct projection keys.
func (ix *Index) Len() int { return len(ix.buckets) }
