package relation

import (
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Snapshot is a frozen columnar view of an Instance: tuples in ascending
// TID order are laid out as dense per-attribute arrays of dictionary
// codes. It is the representation the batch detection engine runs on —
// projection keys hash fixed-width code sequences instead of building
// per-tuple strings, value equality is an integer compare, and iteration
// is a linear array walk instead of a map lookup per TID.
//
// Columns are interned lazily, one attribute at a time, on first touch
// (Col, Dict, Code, Value, or an index build): a batch whose rules
// mention three of seven attributes never pays for the other four. Lazy
// builds are synchronized, so a snapshot is safe for concurrent readers.
//
// A snapshot is genuinely frozen: it holds the tuple set as of build
// time, and Instance.Update replaces tuples copy-on-write, so later
// mutations never change values under a snapshot's readers (columns may
// safely be interned even after the instance moved on). The snapshot
// captures the instance version at build time; mutating the instance
// makes it detectably stale (Stale), and readers that need freshness
// rebuild — SnapshotOf does so automatically — rather than reading
// outdated groups.
type Snapshot struct {
	source  *Instance
	schema  *Schema
	version uint64
	ids     []TID         // row -> TID, ascending
	tuples  []Tuple       // row -> tuple, frozen at build time
	over    map[int]Tuple // sparse overlay of updated rows over a shared tuples array (Apply)
	once    []sync.Once
	built   []atomic.Bool // built[attr]: cols/dicts[attr] published (set after once fires)
	cols    [][]uint32    // cols[attr][row], nil until interned
	dicts   []*Dict       // one per attribute, nil until interned

	// extend arbitrates the spare capacity past the visible length of
	// the row-shaped backing arrays (tuples and interned cols): Apply's
	// append-only fast path extends them in place, which is safe for
	// exactly one derivation per backing — readers of this snapshot
	// never look past their own length, but two extenders would write
	// the same tail. The first derivation to CAS the flag wins the
	// tail; later ones copy. Snapshots that share backing arrays
	// (structural Apply children) share the flag.
	extend *atomic.Bool

	// cxMu guards cxCache, the per-position-set CodeIndex cache
	// (CodeIndexOn). Snapshots are immutable, so a group index never
	// goes stale while its snapshot is live; batches and repeated runs
	// share them.
	cxMu    sync.Mutex
	cxCache map[string]*CodeIndex
}

// NewSnapshot freezes the instance into columnar form. The constructor
// itself is a single cheap pass (collecting the tuple pointers in TID
// order); per-attribute dictionary interning happens lazily on first use
// of each column.
func NewSnapshot(in *Instance) *Snapshot {
	arity := in.Schema().Arity()
	// Aliasing the cached IDs slice is safe: the instance never mutates
	// the visible range of a handed-out slice (Insert appends past it,
	// Delete replaces it wholesale).
	ids := in.IDs()
	s := &Snapshot{
		source:  in,
		schema:  in.Schema(),
		version: in.Version(),
		ids:     ids,
		tuples:  make([]Tuple, len(ids)),
		once:    make([]sync.Once, arity),
		built:   make([]atomic.Bool, arity),
		cols:    make([][]uint32, arity),
		dicts:   make([]*Dict, arity),
		extend:  new(atomic.Bool),
	}
	for row, id := range s.ids {
		t, _ := in.Tuple(id)
		s.tuples[row] = t
	}
	return s
}

// ensure interns column p if it has not been yet. The fresh Dict is
// private until published, so the bulk pass pays no per-cell locking.
func (s *Snapshot) ensure(p int) {
	s.once[p].Do(func() {
		d := NewDict()
		col := make([]uint32, len(s.ids))
		if s.over == nil {
			for row, t := range s.tuples {
				col[row] = d.intern(t[p])
			}
		} else {
			for row := range col {
				col[row] = d.intern(s.TupleAt(row)[p])
			}
		}
		s.cols[p] = col
		s.dicts[p] = d
		s.built[p].Store(true)
	})
}

// Schema returns the snapshotted schema.
func (s *Snapshot) Schema() *Schema { return s.schema }

// Len returns the number of rows (tuples) frozen.
func (s *Snapshot) Len() int { return len(s.ids) }

// TID maps a dense row index back to the tuple identifier.
func (s *Snapshot) TID(row int) TID { return s.ids[row] }

// TupleAt returns the frozen tuple at a dense row index — an array
// access, unlike Instance.Tuple's map lookup (snapshots derived by
// Apply may route a few recently-updated rows through a sparse
// overlay). The tuple must not be modified.
func (s *Snapshot) TupleAt(row int) Tuple {
	if s.over != nil {
		if t, ok := s.over[row]; ok {
			return t
		}
	}
	return s.tuples[row]
}

// Row maps a tuple identifier to its dense row index by binary search
// over the ascending TID array.
func (s *Snapshot) Row(id TID) (int, bool) {
	row := sort.Search(len(s.ids), func(i int) bool { return s.ids[i] >= id })
	if row < len(s.ids) && s.ids[row] == id {
		return row, true
	}
	return 0, false
}

// Code returns the dictionary code of cell (row, pos). Hot loops should
// hoist Col(pos) instead of calling Code per cell.
func (s *Snapshot) Code(row, pos int) uint32 {
	s.ensure(pos)
	return s.cols[pos][row]
}

// Col returns the full code column of attribute pos (row-indexed),
// interning it on first touch. The slice must not be modified.
func (s *Snapshot) Col(pos int) []uint32 {
	s.ensure(pos)
	return s.cols[pos]
}

// Dict returns the dictionary of attribute pos, interning the column on
// first touch.
func (s *Snapshot) Dict(pos int) *Dict {
	s.ensure(pos)
	return s.dicts[pos]
}

// Value decodes cell (row, pos) back to a Value Equal to the original.
func (s *Snapshot) Value(row, pos int) Value {
	s.ensure(pos)
	return s.dicts[pos].Value(s.cols[pos][row])
}

// CodeIndexOn returns the snapshot's CodeIndex on the given attribute
// positions, building and caching it on first request. Since snapshots
// are immutable the cached index can never go stale; every batch (and
// every repeated run over an unchanged instance, via SnapshotOf) shares
// it. Concurrent first requests may build twice; the last stored wins
// and both are equivalent.
func (s *Snapshot) CodeIndexOn(pos []int) *CodeIndex {
	key := posKey(pos)
	s.cxMu.Lock()
	if cx, ok := s.cxCache[key]; ok {
		s.cxMu.Unlock()
		return cx
	}
	s.cxMu.Unlock()
	cx := BuildCodeIndex(s, pos)
	s.cxMu.Lock()
	if s.cxCache == nil {
		s.cxCache = make(map[string]*CodeIndex)
	}
	s.cxCache[key] = cx
	s.cxMu.Unlock()
	return cx
}

// posKey renders a position list as a compact cache key.
func posKey(pos []int) string {
	b := make([]byte, 0, 3*len(pos))
	for _, p := range pos {
		b = strconv.AppendInt(b, int64(p), 10)
		b = append(b, ',')
	}
	return string(b)
}

// Version returns the instance version the snapshot was built at.
func (s *Snapshot) Version() uint64 { return s.version }

// Source returns the instance the snapshot was frozen from.
func (s *Snapshot) Source() *Instance { return s.source }

// Stale reports whether the source instance has been mutated (Insert,
// Delete or Update) since the snapshot was built.
func (s *Snapshot) Stale() bool { return s.source.Version() != s.version }

// Apply derives the snapshot of the source instance's current state
// from this snapshot plus the changelog entries recorded since it was
// built (exactly the slice ChangesSince(s.Version()) returns). It is
// the incremental-maintenance counterpart of NewSnapshot: instead of
// re-freezing and re-interning the whole instance it
//
//   - structurally shares every interned code column untouched by the
//     delta (same backing array — zero work) when no row was inserted
//     or deleted, and otherwise splices columns with a straight copy
//     (no per-cell hashing);
//   - shares the per-attribute dictionaries outright — Dict is
//     append-only, so every code frozen into the old columns stays
//     valid — and interns only the changed cells (O(|Δ|) hash work);
//   - migrates every cached CodeIndex to the new snapshot via the same
//     splice-not-rebuild strategy (see CodeIndex apply).
//
// The old snapshot remains fully usable (its columns are never written;
// shared dictionaries only grow), which is what lets the detect.Monitor
// diff detection results between the pre- and post-batch snapshots.
//
// Apply must not run concurrently with mutations of the source
// instance (the usual single-writer contract); concurrent readers of
// either snapshot are fine.
func (s *Snapshot) Apply(entries []ChangeEntry) *Snapshot {
	if len(entries) == 0 {
		return s
	}
	d := NetDelta(entries)
	in := s.source
	arity := s.schema.Arity()
	nOld := len(s.ids)
	// structural: no row was inserted or deleted, so row indexes are
	// stable and everything row-shaped can be shared or memcpy'd.
	structural := len(d.Inserted) == 0 && len(d.Deleted) == 0

	// Insert-only deltas — the dominant ingest shape — take the
	// append-only fast path: O(|Δ|) instead of an O(n) column splice.
	if !structural && len(d.Deleted) == 0 && len(d.Updated) == 0 {
		if ns := s.applyAppend(&d, entries[len(entries)-1].Version); ns != nil {
			return ns
		}
	}

	ns := &Snapshot{
		source:  in,
		schema:  s.schema,
		version: entries[len(entries)-1].Version,
		once:    make([]sync.Once, arity),
		built:   make([]atomic.Bool, arity),
		cols:    make([][]uint32, arity),
		dicts:   make([]*Dict, arity),
	}

	// rowMap: old row -> new row, -1 for deleted rows; nil means the
	// identity (structural deltas). Surviving rows keep their relative
	// order; inserted TIDs are strictly larger than every pre-existing
	// TID, so they all append at the tail.
	var rowMap []int32
	firstNew := nOld
	if structural {
		// The child shares row-shaped backing arrays (untouched columns,
		// possibly tuples) with its parent, so they share the extension
		// claim too; a splice child gets fresh arrays and a fresh claim.
		ns.extend = s.extend
		ns.ids = s.ids // shared: immutable
		// Updated tuples ride a sparse overlay over the shared tuples
		// array (the instance replaces tuples copy-on-write, so the
		// current pointer reflects every update of the delta). The
		// overlay is copied forward each Apply (the old snapshot's
		// readers share the old map), so it is compacted into a flat
		// copy once it stops being small relative to the batch — that
		// keeps the per-batch copy O(|Δ|) and amortizes the flat copies
		// over many batches, instead of letting a long stream of small
		// batches accumulate an ever-growing map that each batch re-pays.
		over := make(map[int]Tuple, len(s.over)+len(d.Updated))
		for row, t := range s.over {
			over[row] = t
		}
		for id := range d.Updated {
			if t, ok := in.Tuple(id); ok {
				row, _ := s.Row(id)
				over[row] = t
			}
		}
		if len(over) > max(256, 4*len(d.Updated)) || len(over) > nOld/8+64 {
			flat := make([]Tuple, nOld)
			copy(flat, s.tuples)
			for row, t := range over {
				flat[row] = t
			}
			ns.tuples = flat
		} else {
			ns.tuples = s.tuples
			ns.over = over
		}
	} else {
		ns.extend = new(atomic.Bool)
		deleted := make(map[TID]bool, len(d.Deleted))
		for _, id := range d.Deleted {
			deleted[id] = true
		}
		rowMap = make([]int32, nOld)
		newIDs := make([]TID, 0, nOld-len(d.Deleted)+len(d.Inserted))
		tuples := make([]Tuple, 0, nOld-len(d.Deleted)+len(d.Inserted))
		for row, id := range s.ids {
			if deleted[id] {
				rowMap[row] = -1
				continue
			}
			rowMap[row] = int32(len(newIDs))
			newIDs = append(newIDs, id)
			tuples = append(tuples, s.TupleAt(row))
		}
		firstNew = len(newIDs)
		for _, id := range d.Inserted {
			t, _ := in.Tuple(id)
			newIDs = append(newIDs, id)
			tuples = append(tuples, t)
		}
		for id := range d.Updated {
			if t, ok := in.Tuple(id); ok {
				row, _ := s.Row(id)
				tuples[rowMap[row]] = t
			}
		}
		ns.ids = newIDs
		ns.tuples = tuples
	}
	// newRowOf maps a surviving pre-existing TID to its new row.
	newRowOf := func(id TID) int32 {
		row, _ := s.Row(id)
		if rowMap == nil {
			return int32(row)
		}
		return rowMap[row]
	}

	// Columns. Only columns the old snapshot interned are materialized;
	// the rest stay lazy on the new snapshot too.
	posTouched := make([]bool, arity)
	for _, ps := range d.Updated {
		for _, p := range ps {
			posTouched[p] = true
		}
	}
	for p := 0; p < arity; p++ {
		if !s.built[p].Load() {
			continue
		}
		dict := s.dicts[p]
		if structural && !posTouched[p] {
			// Untouched column, same rows: share the backing array.
			ns.cols[p] = s.cols[p]
			ns.dicts[p] = dict
			ns.once[p].Do(func() {})
			ns.built[p].Store(true)
			continue
		}
		col := make([]uint32, len(ns.ids))
		old := s.cols[p]
		if structural {
			copy(col, old)
		} else {
			for row, c := range old {
				if nr := rowMap[row]; nr >= 0 {
					col[nr] = c
				}
			}
		}
		for id, ps := range d.Updated {
			for _, q := range ps {
				if q == p {
					nr := newRowOf(id)
					col[nr] = dict.Intern(ns.TupleAt(int(nr))[p])
					break
				}
			}
		}
		for i := range d.Inserted {
			nr := firstNew + i
			col[nr] = dict.Intern(ns.tuples[nr][p])
		}
		ns.cols[p] = col
		ns.dicts[p] = dict
		ns.once[p].Do(func() {})
		ns.built[p].Store(true)
	}

	// Migrate the cached group indexes: every index the old snapshot
	// carried is spliced onto the new one, so steady-state detection
	// (the Monitor, or SnapshotOf-backed engines) never rebuilds an
	// index it already had.
	s.cxMu.Lock()
	oldCache := make(map[string]*CodeIndex, len(s.cxCache))
	for k, cx := range s.cxCache {
		oldCache[k] = cx
	}
	s.cxMu.Unlock()
	if len(oldCache) > 0 {
		ns.cxCache = make(map[string]*CodeIndex, len(oldCache))
		for k, cx := range oldCache {
			ns.cxCache[k] = cx.apply(ns, &d, rowMap, firstNew)
		}
	}
	return ns
}

// applyAppend is Apply's fast path for insert-only deltas. Inserted
// TIDs are strictly above every pre-existing one, so the new rows are
// a pure tail: instead of splicing every interned column (an O(n)
// copy per batch) the old snapshot's backing arrays are extended in
// place — the spare capacity past the old length is invisible to the
// old snapshot's readers, and the extend claim guarantees a single
// writer per backing. A batch then costs O(|Δ|) interning plus a tail
// append; when the claim is lost (a concurrent double-derivation, or
// a second child of the same base) or capacity runs out, append's
// geometric growth pays one amortized copy. Cached group indexes are
// absorbed without re-laying the arena (CodeIndex applyAppend).
//
// Returns nil when the instance's current TID set is not exactly
// old-prefix + inserted-tail — the caller falls back to the splice.
func (s *Snapshot) applyAppend(d *Delta, version uint64) *Snapshot {
	in := s.source
	nOld := len(s.ids)
	ids := in.IDs()
	if len(ids) != nOld+len(d.Inserted) ||
		(nOld > 0 && (ids[nOld-1] != s.ids[nOld-1] || d.Inserted[0] <= s.ids[nOld-1])) {
		return nil
	}
	arity := s.schema.Arity()
	ns := &Snapshot{
		source:  in,
		schema:  s.schema,
		version: version,
		ids:     ids,
		over:    s.over, // shared read-only; appended rows are never overlaid
		once:    make([]sync.Once, arity),
		built:   make([]atomic.Bool, arity),
		cols:    make([][]uint32, arity),
		dicts:   make([]*Dict, arity),
		extend:  new(atomic.Bool),
	}
	ins := make([]Tuple, len(d.Inserted))
	for i, id := range d.Inserted {
		t, _ := in.Tuple(id)
		ins[i] = t
	}
	claimed := s.extend.CompareAndSwap(false, true)
	ns.tuples = extendTuples(s.tuples, ins, claimed)
	codes := make([]uint32, len(ins))
	for p := 0; p < arity; p++ {
		if !s.built[p].Load() {
			continue
		}
		dict := s.dicts[p]
		for i, t := range ins {
			codes[i] = dict.Intern(t[p])
		}
		ns.cols[p] = extendCodes(s.cols[p], codes, claimed)
		ns.dicts[p] = dict
		ns.once[p].Do(func() {})
		ns.built[p].Store(true)
	}
	s.cxMu.Lock()
	oldCache := make(map[string]*CodeIndex, len(s.cxCache))
	for k, cx := range s.cxCache {
		oldCache[k] = cx
	}
	s.cxMu.Unlock()
	if len(oldCache) > 0 {
		ns.cxCache = make(map[string]*CodeIndex, len(oldCache))
		for k, cx := range oldCache {
			ns.cxCache[k] = cx.applyAppend(ns, nOld)
		}
	}
	return ns
}

// extendTuples appends ins to old. With the claim won the append may
// land in old's spare capacity (writes past the old visible length,
// which no old-snapshot reader sees); without it the base is copied
// first so the parent's tail is never touched.
func extendTuples(old, ins []Tuple, claimed bool) []Tuple {
	if !claimed {
		cp := make([]Tuple, len(old), len(old)+len(ins))
		copy(cp, old)
		old = cp
	}
	return append(old, ins...)
}

// extendCodes is extendTuples for code columns.
func extendCodes(old, codes []uint32, claimed bool) []uint32 {
	if !claimed {
		cp := make([]uint32, len(old), len(old)+len(codes))
		copy(cp, old)
		old = cp
	}
	return append(old, codes...)
}
