package relation

import (
	"sort"
	"strconv"
	"sync"
)

// Snapshot is a frozen columnar view of an Instance: tuples in ascending
// TID order are laid out as dense per-attribute arrays of dictionary
// codes. It is the representation the batch detection engine runs on —
// projection keys hash fixed-width code sequences instead of building
// per-tuple strings, value equality is an integer compare, and iteration
// is a linear array walk instead of a map lookup per TID.
//
// Columns are interned lazily, one attribute at a time, on first touch
// (Col, Dict, Code, Value, or an index build): a batch whose rules
// mention three of seven attributes never pays for the other four. Lazy
// builds are synchronized, so a snapshot is safe for concurrent readers.
//
// A snapshot is genuinely frozen: it holds the tuple set as of build
// time, and Instance.Update replaces tuples copy-on-write, so later
// mutations never change values under a snapshot's readers (columns may
// safely be interned even after the instance moved on). The snapshot
// captures the instance version at build time; mutating the instance
// makes it detectably stale (Stale), and readers that need freshness
// rebuild — SnapshotOf does so automatically — rather than reading
// outdated groups.
type Snapshot struct {
	source  *Instance
	schema  *Schema
	version uint64
	ids     []TID      // row -> TID, ascending
	tuples  []Tuple    // row -> tuple, frozen at build time
	once    []sync.Once
	cols    [][]uint32 // cols[attr][row], nil until interned
	dicts   []*Dict    // one per attribute, nil until interned

	// cxMu guards cxCache, the per-position-set CodeIndex cache
	// (CodeIndexOn). Snapshots are immutable, so a group index never
	// goes stale while its snapshot is live; batches and repeated runs
	// share them.
	cxMu    sync.Mutex
	cxCache map[string]*CodeIndex
}

// NewSnapshot freezes the instance into columnar form. The constructor
// itself is a single cheap pass (collecting the tuple pointers in TID
// order); per-attribute dictionary interning happens lazily on first use
// of each column.
func NewSnapshot(in *Instance) *Snapshot {
	arity := in.Schema().Arity()
	// Aliasing the cached IDs slice is safe: the instance never mutates
	// the visible range of a handed-out slice (Insert appends past it,
	// Delete replaces it wholesale).
	ids := in.IDs()
	s := &Snapshot{
		source:  in,
		schema:  in.Schema(),
		version: in.Version(),
		ids:     ids,
		tuples:  make([]Tuple, len(ids)),
		once:    make([]sync.Once, arity),
		cols:    make([][]uint32, arity),
		dicts:   make([]*Dict, arity),
	}
	for row, id := range s.ids {
		t, _ := in.Tuple(id)
		s.tuples[row] = t
	}
	return s
}

// ensure interns column p if it has not been yet.
func (s *Snapshot) ensure(p int) {
	s.once[p].Do(func() {
		d := NewDict()
		col := make([]uint32, len(s.tuples))
		for row, t := range s.tuples {
			col[row] = d.Intern(t[p])
		}
		s.cols[p] = col
		s.dicts[p] = d
	})
}

// Schema returns the snapshotted schema.
func (s *Snapshot) Schema() *Schema { return s.schema }

// Len returns the number of rows (tuples) frozen.
func (s *Snapshot) Len() int { return len(s.ids) }

// TID maps a dense row index back to the tuple identifier.
func (s *Snapshot) TID(row int) TID { return s.ids[row] }

// TupleAt returns the frozen tuple at a dense row index — an array
// access, unlike Instance.Tuple's map lookup. The tuple must not be
// modified.
func (s *Snapshot) TupleAt(row int) Tuple { return s.tuples[row] }

// Row maps a tuple identifier to its dense row index by binary search
// over the ascending TID array.
func (s *Snapshot) Row(id TID) (int, bool) {
	row := sort.Search(len(s.ids), func(i int) bool { return s.ids[i] >= id })
	if row < len(s.ids) && s.ids[row] == id {
		return row, true
	}
	return 0, false
}

// Code returns the dictionary code of cell (row, pos). Hot loops should
// hoist Col(pos) instead of calling Code per cell.
func (s *Snapshot) Code(row, pos int) uint32 {
	s.ensure(pos)
	return s.cols[pos][row]
}

// Col returns the full code column of attribute pos (row-indexed),
// interning it on first touch. The slice must not be modified.
func (s *Snapshot) Col(pos int) []uint32 {
	s.ensure(pos)
	return s.cols[pos]
}

// Dict returns the dictionary of attribute pos, interning the column on
// first touch.
func (s *Snapshot) Dict(pos int) *Dict {
	s.ensure(pos)
	return s.dicts[pos]
}

// Value decodes cell (row, pos) back to a Value Equal to the original.
func (s *Snapshot) Value(row, pos int) Value {
	s.ensure(pos)
	return s.dicts[pos].Value(s.cols[pos][row])
}

// CodeIndexOn returns the snapshot's CodeIndex on the given attribute
// positions, building and caching it on first request. Since snapshots
// are immutable the cached index can never go stale; every batch (and
// every repeated run over an unchanged instance, via SnapshotOf) shares
// it. Concurrent first requests may build twice; the last stored wins
// and both are equivalent.
func (s *Snapshot) CodeIndexOn(pos []int) *CodeIndex {
	key := posKey(pos)
	s.cxMu.Lock()
	if cx, ok := s.cxCache[key]; ok {
		s.cxMu.Unlock()
		return cx
	}
	s.cxMu.Unlock()
	cx := BuildCodeIndex(s, pos)
	s.cxMu.Lock()
	if s.cxCache == nil {
		s.cxCache = make(map[string]*CodeIndex)
	}
	s.cxCache[key] = cx
	s.cxMu.Unlock()
	return cx
}

// posKey renders a position list as a compact cache key.
func posKey(pos []int) string {
	b := make([]byte, 0, 3*len(pos))
	for _, p := range pos {
		b = strconv.AppendInt(b, int64(p), 10)
		b = append(b, ',')
	}
	return string(b)
}

// Version returns the instance version the snapshot was built at.
func (s *Snapshot) Version() uint64 { return s.version }

// Stale reports whether the source instance has been mutated (Insert,
// Delete or Update) since the snapshot was built.
func (s *Snapshot) Stale() bool { return s.source.Version() != s.version }

