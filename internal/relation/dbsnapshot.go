package relation

// DBSnapshot is a frozen columnar view of a whole Database: one Snapshot
// per relation, all taken at construction time. It is the unit the
// multi-relation detection engine runs on — a CIND reads its source and
// target relations through one DBSnapshot, so both sides are evaluated
// against the same consistent freeze even while the underlying instances
// keep mutating.
//
// Construction is cheap in the steady state: each per-relation snapshot
// resolves through SnapshotOf, so an unchanged instance contributes its
// cached snapshot (interned columns and group indexes included) and a
// slightly-changed one catches up through its changelog instead of
// re-freezing. DBSnapshotOf additionally caches the DBSnapshot itself on
// the database, version-keyed: while no member instance has been
// mutated, repeated calls return the identical *DBSnapshot.
type DBSnapshot struct {
	db    *Database
	snaps map[string]*Snapshot
}

// NewDBSnapshot freezes every instance of the database (via SnapshotOf,
// so unchanged instances reuse their cached snapshots), bypassing the
// database-level cache.
func NewDBSnapshot(db *Database) *DBSnapshot {
	d := &DBSnapshot{db: db, snaps: make(map[string]*Snapshot, len(db.instances))}
	for name, in := range db.instances {
		d.snaps[name] = SnapshotOf(in)
	}
	return d
}

// DBSnapshotOf returns the version-keyed cached snapshot of the
// database, building one when none exists or any member instance has
// been mutated since the last build. Like SnapshotOf it is safe for
// concurrent readers; concurrent cache misses may build twice, last
// stored wins (both results are equivalent).
func DBSnapshotOf(db *Database) *DBSnapshot {
	db.mu.Lock()
	d := db.snapCache
	db.mu.Unlock()
	if d != nil && !d.Stale() {
		return d
	}
	d = NewDBSnapshot(db)
	db.mu.Lock()
	db.snapCache = d
	db.mu.Unlock()
	return d
}

// Snapshot returns the frozen snapshot of the named relation, or
// (nil, false) when the database holds no such relation.
func (d *DBSnapshot) Snapshot(name string) (*Snapshot, bool) {
	s, ok := d.snaps[name]
	return s, ok
}

// Names returns the snapshotted relation names in sorted order.
func (d *DBSnapshot) Names() []string { return d.db.Names() }

// Source returns the database the snapshot was frozen from.
func (d *DBSnapshot) Source() *Database { return d.db }

// Stale reports whether any member instance has been mutated (or the
// relation set changed) since the snapshot was built.
func (d *DBSnapshot) Stale() bool {
	d.db.mu.Lock()
	defer d.db.mu.Unlock()
	if len(d.db.instances) != len(d.snaps) {
		return true
	}
	for name, in := range d.db.instances {
		s, ok := d.snaps[name]
		if !ok || s.Source() != in || s.Stale() {
			return true
		}
	}
	return false
}
