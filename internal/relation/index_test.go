package relation

import "testing"

// GroupsWhile must stop visiting buckets as soon as fn returns false —
// the primitive behind first-violation satisfaction checking.
func TestGroupsWhileStops(t *testing.T) {
	s := MustSchema("r",
		Attr("A", KindString),
		Attr("B", KindString),
	)
	in := NewInstance(s)
	for i := 0; i < 20; i++ {
		a := Str(string(rune('a' + i%10))) // 10 buckets of 2 tuples each
		in.MustInsert(a, Str("x"))
		in.MustInsert(a, Str("y"))
	}
	ix := BuildIndex(in, []int{0})
	calls := 0
	ix.GroupsWhile(2, func(string, []TID) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Fatalf("GroupsWhile visited %d buckets after fn returned false, want 1", calls)
	}
	calls = 0
	ix.GroupsWhile(2, func(string, []TID) bool {
		calls++
		return true
	})
	if calls != 10 {
		t.Fatalf("GroupsWhile visited %d buckets, want all 10", calls)
	}
}
